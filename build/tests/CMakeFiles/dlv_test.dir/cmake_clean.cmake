file(REMOVE_RECURSE
  "CMakeFiles/dlv_test.dir/dlv_test.cc.o"
  "CMakeFiles/dlv_test.dir/dlv_test.cc.o.d"
  "dlv_test"
  "dlv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
