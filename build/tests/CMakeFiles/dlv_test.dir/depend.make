# Empty dependencies file for dlv_test.
# This may be replaced when dependencies are built.
