# Empty dependencies file for segment_delta_test.
# This may be replaced when dependencies are built.
