file(REMOVE_RECURSE
  "CMakeFiles/segment_delta_test.dir/segment_delta_test.cc.o"
  "CMakeFiles/segment_delta_test.dir/segment_delta_test.cc.o.d"
  "segment_delta_test"
  "segment_delta_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_delta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
