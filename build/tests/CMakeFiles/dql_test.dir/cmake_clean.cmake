file(REMOVE_RECURSE
  "CMakeFiles/dql_test.dir/dql_test.cc.o"
  "CMakeFiles/dql_test.dir/dql_test.cc.o.d"
  "dql_test"
  "dql_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
