# Empty dependencies file for dql_test.
# This may be replaced when dependencies are built.
