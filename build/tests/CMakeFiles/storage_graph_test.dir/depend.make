# Empty dependencies file for storage_graph_test.
# This may be replaced when dependencies are built.
