file(REMOVE_RECURSE
  "CMakeFiles/storage_graph_test.dir/storage_graph_test.cc.o"
  "CMakeFiles/storage_graph_test.dir/storage_graph_test.cc.o.d"
  "storage_graph_test"
  "storage_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
