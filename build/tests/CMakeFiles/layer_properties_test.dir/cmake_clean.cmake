file(REMOVE_RECURSE
  "CMakeFiles/layer_properties_test.dir/layer_properties_test.cc.o"
  "CMakeFiles/layer_properties_test.dir/layer_properties_test.cc.o.d"
  "layer_properties_test"
  "layer_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layer_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
