# Empty dependencies file for layer_properties_test.
# This may be replaced when dependencies are built.
