file(REMOVE_RECURSE
  "CMakeFiles/network_def_test.dir/network_def_test.cc.o"
  "CMakeFiles/network_def_test.dir/network_def_test.cc.o.d"
  "network_def_test"
  "network_def_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_def_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
