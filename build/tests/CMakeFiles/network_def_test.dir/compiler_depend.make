# Empty compiler generated dependencies file for network_def_test.
# This may be replaced when dependencies are built.
