file(REMOVE_RECURSE
  "CMakeFiles/float_encoding_test.dir/float_encoding_test.cc.o"
  "CMakeFiles/float_encoding_test.dir/float_encoding_test.cc.o.d"
  "float_encoding_test"
  "float_encoding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/float_encoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
