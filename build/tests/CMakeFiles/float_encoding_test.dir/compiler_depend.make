# Empty compiler generated dependencies file for float_encoding_test.
# This may be replaced when dependencies are built.
