file(REMOVE_RECURSE
  "libmodelhub.a"
)
