
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/coding.cc" "src/CMakeFiles/modelhub.dir/common/coding.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/common/coding.cc.o.d"
  "/root/repo/src/common/crc32.cc" "src/CMakeFiles/modelhub.dir/common/crc32.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/common/crc32.cc.o.d"
  "/root/repo/src/common/env.cc" "src/CMakeFiles/modelhub.dir/common/env.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/common/env.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/modelhub.dir/common/status.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/common/status.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/modelhub.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/compress/codec.cc" "src/CMakeFiles/modelhub.dir/compress/codec.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/compress/codec.cc.o.d"
  "/root/repo/src/compress/deflate_lite.cc" "src/CMakeFiles/modelhub.dir/compress/deflate_lite.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/compress/deflate_lite.cc.o.d"
  "/root/repo/src/compress/huffman.cc" "src/CMakeFiles/modelhub.dir/compress/huffman.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/compress/huffman.cc.o.d"
  "/root/repo/src/compress/lz77.cc" "src/CMakeFiles/modelhub.dir/compress/lz77.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/compress/lz77.cc.o.d"
  "/root/repo/src/compress/rle_codec.cc" "src/CMakeFiles/modelhub.dir/compress/rle_codec.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/compress/rle_codec.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/modelhub.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/synthetic_modeler.cc" "src/CMakeFiles/modelhub.dir/data/synthetic_modeler.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/data/synthetic_modeler.cc.o.d"
  "/root/repo/src/dlv/catalog.cc" "src/CMakeFiles/modelhub.dir/dlv/catalog.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/dlv/catalog.cc.o.d"
  "/root/repo/src/dlv/report.cc" "src/CMakeFiles/modelhub.dir/dlv/report.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/dlv/report.cc.o.d"
  "/root/repo/src/dlv/repository.cc" "src/CMakeFiles/modelhub.dir/dlv/repository.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/dlv/repository.cc.o.d"
  "/root/repo/src/dql/engine.cc" "src/CMakeFiles/modelhub.dir/dql/engine.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/dql/engine.cc.o.d"
  "/root/repo/src/dql/lexer.cc" "src/CMakeFiles/modelhub.dir/dql/lexer.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/dql/lexer.cc.o.d"
  "/root/repo/src/dql/parser.cc" "src/CMakeFiles/modelhub.dir/dql/parser.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/dql/parser.cc.o.d"
  "/root/repo/src/hub/hub.cc" "src/CMakeFiles/modelhub.dir/hub/hub.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/hub/hub.cc.o.d"
  "/root/repo/src/nn/gemm.cc" "src/CMakeFiles/modelhub.dir/nn/gemm.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/nn/gemm.cc.o.d"
  "/root/repo/src/nn/interval_eval.cc" "src/CMakeFiles/modelhub.dir/nn/interval_eval.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/nn/interval_eval.cc.o.d"
  "/root/repo/src/nn/layer_def.cc" "src/CMakeFiles/modelhub.dir/nn/layer_def.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/nn/layer_def.cc.o.d"
  "/root/repo/src/nn/network.cc" "src/CMakeFiles/modelhub.dir/nn/network.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/nn/network.cc.o.d"
  "/root/repo/src/nn/network_def.cc" "src/CMakeFiles/modelhub.dir/nn/network_def.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/nn/network_def.cc.o.d"
  "/root/repo/src/nn/trainer.cc" "src/CMakeFiles/modelhub.dir/nn/trainer.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/nn/trainer.cc.o.d"
  "/root/repo/src/nn/zoo.cc" "src/CMakeFiles/modelhub.dir/nn/zoo.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/nn/zoo.cc.o.d"
  "/root/repo/src/pas/archive.cc" "src/CMakeFiles/modelhub.dir/pas/archive.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/pas/archive.cc.o.d"
  "/root/repo/src/pas/chunk_store.cc" "src/CMakeFiles/modelhub.dir/pas/chunk_store.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/pas/chunk_store.cc.o.d"
  "/root/repo/src/pas/delta.cc" "src/CMakeFiles/modelhub.dir/pas/delta.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/pas/delta.cc.o.d"
  "/root/repo/src/pas/float_encoding.cc" "src/CMakeFiles/modelhub.dir/pas/float_encoding.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/pas/float_encoding.cc.o.d"
  "/root/repo/src/pas/progressive.cc" "src/CMakeFiles/modelhub.dir/pas/progressive.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/pas/progressive.cc.o.d"
  "/root/repo/src/pas/segment.cc" "src/CMakeFiles/modelhub.dir/pas/segment.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/pas/segment.cc.o.d"
  "/root/repo/src/pas/solver.cc" "src/CMakeFiles/modelhub.dir/pas/solver.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/pas/solver.cc.o.d"
  "/root/repo/src/pas/storage_graph.cc" "src/CMakeFiles/modelhub.dir/pas/storage_graph.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/pas/storage_graph.cc.o.d"
  "/root/repo/src/tensor/float_matrix.cc" "src/CMakeFiles/modelhub.dir/tensor/float_matrix.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/tensor/float_matrix.cc.o.d"
  "/root/repo/src/tensor/interval.cc" "src/CMakeFiles/modelhub.dir/tensor/interval.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/tensor/interval.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/modelhub.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/modelhub.dir/tensor/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
