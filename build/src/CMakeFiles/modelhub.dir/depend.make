# Empty dependencies file for modelhub.
# This may be replaced when dependencies are built.
