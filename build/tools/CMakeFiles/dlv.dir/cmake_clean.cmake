file(REMOVE_RECURSE
  "CMakeFiles/dlv.dir/dlv_main.cc.o"
  "CMakeFiles/dlv.dir/dlv_main.cc.o.d"
  "dlv"
  "dlv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
