# Empty dependencies file for dlv.
# This may be replaced when dependencies are built.
