file(REMOVE_RECURSE
  "CMakeFiles/residual_finetune.dir/residual_finetune.cpp.o"
  "CMakeFiles/residual_finetune.dir/residual_finetune.cpp.o.d"
  "residual_finetune"
  "residual_finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/residual_finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
