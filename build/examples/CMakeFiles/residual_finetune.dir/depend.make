# Empty dependencies file for residual_finetune.
# This may be replaced when dependencies are built.
