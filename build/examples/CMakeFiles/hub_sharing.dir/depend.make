# Empty dependencies file for hub_sharing.
# This may be replaced when dependencies are built.
