file(REMOVE_RECURSE
  "CMakeFiles/hub_sharing.dir/hub_sharing.cpp.o"
  "CMakeFiles/hub_sharing.dir/hub_sharing.cpp.o.d"
  "hub_sharing"
  "hub_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hub_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
