file(REMOVE_RECURSE
  "CMakeFiles/progressive_inference.dir/progressive_inference.cpp.o"
  "CMakeFiles/progressive_inference.dir/progressive_inference.cpp.o.d"
  "progressive_inference"
  "progressive_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/progressive_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
