# Empty dependencies file for progressive_inference.
# This may be replaced when dependencies are built.
