# Empty dependencies file for dql_tour.
# This may be replaced when dependencies are built.
