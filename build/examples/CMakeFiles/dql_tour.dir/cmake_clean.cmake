file(REMOVE_RECURSE
  "CMakeFiles/dql_tour.dir/dql_tour.cpp.o"
  "CMakeFiles/dql_tour.dir/dql_tour.cpp.o.d"
  "dql_tour"
  "dql_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dql_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
