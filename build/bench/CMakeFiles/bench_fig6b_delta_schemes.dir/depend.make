# Empty dependencies file for bench_fig6b_delta_schemes.
# This may be replaced when dependencies are built.
