file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6b_delta_schemes.dir/bench_fig6b_delta_schemes.cc.o"
  "CMakeFiles/bench_fig6b_delta_schemes.dir/bench_fig6b_delta_schemes.cc.o.d"
  "bench_fig6b_delta_schemes"
  "bench_fig6b_delta_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6b_delta_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
