# Empty dependencies file for bench_ablation_solver_scale.
# This may be replaced when dependencies are built.
