file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6c_archival_solvers.dir/bench_fig6c_archival_solvers.cc.o"
  "CMakeFiles/bench_fig6c_archival_solvers.dir/bench_fig6c_archival_solvers.cc.o.d"
  "bench_fig6c_archival_solvers"
  "bench_fig6c_archival_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6c_archival_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
