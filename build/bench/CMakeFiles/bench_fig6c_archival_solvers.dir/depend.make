# Empty dependencies file for bench_fig6c_archival_solvers.
# This may be replaced when dependencies are built.
