# Empty compiler generated dependencies file for bench_fig6a_float_schemes.
# This may be replaced when dependencies are built.
