file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6d_progressive.dir/bench_fig6d_progressive.cc.o"
  "CMakeFiles/bench_fig6d_progressive.dir/bench_fig6d_progressive.cc.o.d"
  "bench_fig6d_progressive"
  "bench_fig6d_progressive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6d_progressive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
