file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_retrieval.dir/bench_table5_retrieval.cc.o"
  "CMakeFiles/bench_table5_retrieval.dir/bench_table5_retrieval.cc.o.d"
  "bench_table5_retrieval"
  "bench_table5_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
