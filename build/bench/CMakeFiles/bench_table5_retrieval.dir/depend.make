# Empty dependencies file for bench_table5_retrieval.
# This may be replaced when dependencies are built.
