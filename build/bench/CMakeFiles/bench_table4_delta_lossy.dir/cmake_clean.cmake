file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_delta_lossy.dir/bench_table4_delta_lossy.cc.o"
  "CMakeFiles/bench_table4_delta_lossy.dir/bench_table4_delta_lossy.cc.o.d"
  "bench_table4_delta_lossy"
  "bench_table4_delta_lossy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_delta_lossy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
