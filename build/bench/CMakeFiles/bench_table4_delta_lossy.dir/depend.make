# Empty dependencies file for bench_table4_delta_lossy.
# This may be replaced when dependencies are built.
