// Residual fine-tune lifecycle: train a residual (skip-connection) model,
// fine-tune it on a shifted task, and use the repository's comparison
// queries (Sec. IV-A (c)/(d)): parameter-level diff and prediction
// agreement. Finishes with a PAS archive whose delta encoding exploits the
// fine-tune similarity.
//
// Run: ./residual_finetune [workdir]

#include <cstdio>
#include <string>

#include "common/env.h"
#include "data/dataset.h"
#include "dlv/repository.h"
#include "nn/network.h"
#include "nn/trainer.h"
#include "nn/zoo.h"

namespace {

void Check(const modelhub::Status& status, const char* step) {
  if (!status.ok()) {
    std::fprintf(stderr, "[%s] %s\n", step, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace modelhub;
  const std::string root = argc > 1 ? argv[1] : "residual_repo";
  Env* env = Env::Default();

  auto repo = Repository::Init(env, root);
  Check(repo.status(), "dlv init");

  // Base: a residual network (two skip blocks) on the glyph task.
  const Dataset base_task = MakeGlyphDataset(
      {.num_samples = 320, .num_classes = 6, .image_size = 16, .seed = 71});
  NetworkDef def = MiniResNet(6, 16, 2, 8);
  def.set_name("resnet_base");
  auto net = Network::Create(def);
  Check(net.status(), "create residual net");
  Rng rng(7);
  net->InitializeWeights(&rng);
  TrainOptions options;
  options.iterations = 150;
  options.batch_size = 24;
  options.base_learning_rate = 0.05f;
  options.snapshot_every = 75;
  auto trained = TrainNetwork(&*net, base_task, options);
  Check(trained.status(), "train base");
  std::printf("resnet_base: %.1f%% accuracy (%lld params, %zu nodes, "
              "2 residual blocks)\n",
              trained->final_accuracy * 100,
              static_cast<long long>(net->ParameterCount()),
              def.nodes().size());

  CommitRequest base_commit;
  base_commit.name = "resnet_base";
  base_commit.network = def;
  base_commit.snapshots = trained->snapshots;
  base_commit.log = trained->log;
  base_commit.hyperparams = {{"base_lr", "0.05"}};
  Check(repo->Commit(base_commit).status(), "commit base");

  // Fine-tune on a shifted glyph distribution (new seed = new jitter and
  // noise realization), warm-starting from the base weights.
  const Dataset shifted_task = MakeGlyphDataset(
      {.num_samples = 256, .num_classes = 6, .image_size = 16, .seed = 72});
  auto finetune_net = Network::Create(def);
  Check(finetune_net.status(), "create finetune");
  Rng ft_rng(9);
  finetune_net->InitializeWeights(&ft_rng);
  Check(finetune_net->SetParameters(net->GetParameters()), "warm start");
  TrainOptions ft_options;
  ft_options.iterations = 60;
  ft_options.base_learning_rate = 0.005f;
  ft_options.snapshot_every = 30;
  auto finetuned = TrainNetwork(&*finetune_net, shifted_task, ft_options);
  Check(finetuned.status(), "finetune");
  std::printf("resnet_ft: %.1f%% on the shifted task\n",
              finetuned->final_accuracy * 100);

  NetworkDef ft_def = def;
  ft_def.set_name("resnet_ft");
  CommitRequest ft_commit;
  ft_commit.name = "resnet_ft";
  ft_commit.network = ft_def;
  ft_commit.snapshots = finetuned->snapshots;
  ft_commit.log = finetuned->log;
  ft_commit.parent = "resnet_base";
  ft_commit.message = "fine-tune on shifted glyphs";
  Check(repo->Commit(ft_commit).status(), "commit finetune");

  // Parameter-level diff (Sec. IV-A query (c)).
  std::printf("\n== parameter diff base..ft ==\n");
  auto diff = repo->DiffParameters("resnet_base", "resnet_ft");
  Check(diff.status(), "pdiff");
  for (const auto& entry : *diff) {
    std::printf("  %-16s L2=%.4f (%.2f%% relative)\n", entry.name.c_str(),
                entry.l2_distance, entry.relative_distance * 100);
  }

  // Prediction agreement on fresh data (Sec. IV-A query (d)).
  const Dataset probe = MakeGlyphDataset(
      {.num_samples = 64, .num_classes = 6, .image_size = 16, .seed = 73});
  auto comparison =
      repo->CompareOnData("resnet_base", "resnet_ft", probe.images);
  Check(comparison.status(), "compare");
  std::printf("\nprediction agreement on fresh data: %.1f%%\n",
              comparison->agreement * 100);

  // Archive: fine-tuned residual weights delta-encode well.
  ArchiveOptions archive;
  archive.solver = ArchiveSolver::kPasPt;
  archive.budget_alpha = 2.0;
  auto report = repo->Archive(archive);
  Check(report.status(), "dlv archive");
  std::printf(
      "\narchived %d matrices: %.0f bytes vs %.0f materialized (%.1f%% "
      "saved via deltas)\n",
      report->num_vertices, report->storage_cost, report->spt_storage_cost,
      100.0 * (1.0 - report->storage_cost / report->spt_storage_cost));
  std::printf("residual fine-tune lifecycle complete.\n");
  return 0;
}
