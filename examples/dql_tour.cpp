// DQL tour: the paper's four example queries (Queries 1-4, Sec. III-B)
// adapted to a live repository.
//
//   Query 1  select     — filter models by name, time and structure
//   Query 2  slice      — extract a reusable sub-network
//   Query 3  construct  — derive new architectures by insertion
//   Query 4  evaluate   — grid-search hyperparameters, keep the best
//
// Run: ./dql_tour [workdir]

#include <cstdio>
#include <string>

#include "common/env.h"
#include "data/dataset.h"
#include "dlv/repository.h"
#include "dql/engine.h"
#include "nn/trainer.h"
#include "nn/zoo.h"

namespace {

void Check(const modelhub::Status& status, const char* step) {
  if (!status.ok()) {
    std::fprintf(stderr, "[%s] %s\n", step, status.ToString().c_str());
    std::exit(1);
  }
}

void CommitTrained(modelhub::Repository* repo, const std::string& name,
                   float lr, uint64_t seed, const modelhub::Dataset& data) {
  using namespace modelhub;
  NetworkDef def = MiniVgg(6, 16, 1);
  def.set_name(name);
  auto net = Network::Create(def);
  Check(net.status(), "create");
  Rng rng(seed);
  net->InitializeWeights(&rng);
  TrainOptions options;
  options.iterations = 60;
  options.snapshot_every = 30;
  options.base_learning_rate = lr;
  options.seed = seed;
  auto trained = TrainNetwork(&*net, data, options);
  Check(trained.status(), "train");
  CommitRequest request;
  request.name = name;
  request.network = def;
  request.snapshots = trained->snapshots;
  request.log = trained->log;
  request.hyperparams = {{"base_lr", std::to_string(lr)}};
  Check(repo->Commit(request).status(), "commit");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace modelhub;
  const std::string root = argc > 1 ? argv[1] : "dql_tour_repo";
  Env* env = Env::Default();

  auto repo = Repository::Init(env, root);
  Check(repo.status(), "dlv init");
  const Dataset data = MakeGlyphDataset(
      {.num_samples = 256, .num_classes = 6, .image_size = 16, .seed = 5});
  CommitTrained(&*repo, "alexnet_mini_a", 0.1f, 1, data);
  CommitTrained(&*repo, "alexnet_mini_b", 0.05f, 2, data);
  CommitTrained(&*repo, "vgg_mini_c", 0.1f, 3, data);

  DqlEngine engine(&*repo);
  engine.RegisterDataset("default", &data);

  // ---- Query 1: select by name pattern + structure.
  std::printf("== Query 1: select ==\n");
  auto q1 = engine.Run(
      "select m1 where m1.name like \"alexnet_%\" and "
      "m1[\"conv1_1\"].next has RELU()");
  Check(q1.status(), "query1");
  for (const auto& name : q1->model_names) {
    std::printf("  matched: %s\n", name.c_str());
  }

  // ---- Query 2: slice a reusable feature extractor.
  std::printf("\n== Query 2: slice ==\n");
  auto q2 = engine.Run(
      "slice m2 from m1 where m1.name like \"alexnet_mini_a%\" "
      "mutate m2.input = m1[\"conv1_1\"] and m2.output = m1[\"fc1\"]");
  Check(q2.status(), "query2");
  for (const auto& def : q2->networks) {
    std::printf("  sliced %s: %zu nodes (committed back to the repo)\n",
                def.name().c_str(), def.nodes().size());
  }

  // ---- Query 3: construct variants (insert dropout after every pool).
  std::printf("\n== Query 3: construct ==\n");
  auto q3 = engine.Run(
      "construct m2 from m1 where m1.name like \"vgg_mini%\" and "
      "m1[\"conv1_1\"].next has RELU() "
      "mutate m1[\"pool.*\"].insert = DROPOUT(\"drop_$\")");
  Check(q3.status(), "query3");
  for (const auto& def : q3->networks) {
    std::printf("  constructed %s with nodes:", def.name().c_str());
    for (const auto& node : def.nodes()) {
      std::printf(" %s", node.name.c_str());
    }
    std::printf("\n");
  }

  // ---- Query 4: evaluate — enumerate configs, keep the best two.
  std::printf("\n== Query 4: evaluate ==\n");
  auto q4 = engine.Run(
      "evaluate m from \"alexnet_mini_a\" with config = default "
      "vary config.base_lr in [0.1, 0.01, 0.001] and "
      "     config.batch_size in [16, 32] "
      "keep top(2, m[\"accuracy\"], 40)");
  Check(q4.status(), "query4");
  std::printf("  trained 6 configurations, kept top 2 by accuracy:\n");
  for (const auto& model : q4->evaluated) {
    std::printf("  %-28s acc=%.3f loss=%.3f  (", model.name.c_str(),
                model.accuracy, model.loss);
    for (const auto& [key, value] : model.config) {
      std::printf(" %s=%s", key.c_str(), value.c_str());
    }
    std::printf(" )\n");
  }

  std::printf("\nDQL tour complete.\n");
  return 0;
}
