// Hub sharing: publish a repository to the (directory-backed) ModelHub
// service, search across hosted repositories, and pull one to reuse its
// trained weights for fine-tuning — the collaboration workflow of
// Sec. III-C.
//
// Run: ./hub_sharing [workdir]

#include <cstdio>
#include <string>

#include "common/env.h"
#include "data/dataset.h"
#include "dlv/repository.h"
#include "hub/hub.h"
#include "nn/network.h"
#include "nn/trainer.h"
#include "nn/zoo.h"

namespace {

void Check(const modelhub::Status& status, const char* step) {
  if (!status.ok()) {
    std::fprintf(stderr, "[%s] %s\n", step, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace modelhub;
  const std::string work = argc > 1 ? argv[1] : "hub_demo";
  Env* env = Env::Default();

  // Alice trains and publishes a model.
  auto alice_repo = Repository::Init(env, JoinPath(work, "alice_repo"));
  Check(alice_repo.status(), "init alice repo");
  const Dataset data = MakeGlyphDataset(
      {.num_samples = 256, .num_classes = 6, .image_size = 16, .seed = 21});
  NetworkDef def = MiniVgg(6, 16, 1);
  def.set_name("glyphnet_base");
  auto net = Network::Create(def);
  Check(net.status(), "create");
  Rng rng(3);
  net->InitializeWeights(&rng);
  TrainOptions options;
  options.iterations = 120;
  options.snapshot_every = 60;
  auto trained = TrainNetwork(&*net, data, options);
  Check(trained.status(), "train");
  CommitRequest commit;
  commit.name = "glyphnet_base";
  commit.network = def;
  commit.snapshots = trained->snapshots;
  commit.log = trained->log;
  commit.hyperparams = {{"base_lr", "0.05"}};
  Check(alice_repo->Commit(commit).status(), "commit");
  std::printf("alice trained glyphnet_base to %.1f%% accuracy\n",
              trained->final_accuracy * 100);

  ModelHubService hub(env, JoinPath(work, "hub"));
  Check(hub.Publish(JoinPath(work, "alice_repo"), "alice", "glyphnets"),
        "dlv publish");
  std::printf("published alice/glyphnets\n");

  // Bob discovers it.
  auto hits = hub.Search("glyph%");
  Check(hits.status(), "dlv search");
  std::printf("\n== dlv search \"glyph%%\" ==\n");
  for (const auto& hit : *hits) {
    std::printf("  %s/%s :: %s  (acc %.3f, %lld snapshots)\n",
                hit.user.c_str(), hit.repo_name.c_str(),
                hit.version_name.c_str(), hit.best_accuracy,
                static_cast<long long>(hit.num_snapshots));
  }

  // Bob pulls and fine-tunes on his own (shifted) task.
  auto bob_repo =
      hub.Pull("alice", "glyphnets", JoinPath(work, "bob_repo"));
  Check(bob_repo.status(), "dlv pull");
  std::printf("\nbob pulled alice/glyphnets\n");

  auto base_params = bob_repo->GetSnapshotParams("glyphnet_base");
  Check(base_params.status(), "read pulled weights");
  auto base_def = bob_repo->GetNetwork("glyphnet_base");
  Check(base_def.status(), "read pulled network");

  const Dataset bob_data = MakeGlyphDataset(
      {.num_samples = 192, .num_classes = 6, .image_size = 16, .seed = 99});
  auto finetuned = Network::Create(*base_def);
  Check(finetuned.status(), "create finetune net");
  Rng bob_rng(9);
  finetuned->InitializeWeights(&bob_rng);
  Check(finetuned->SetParameters(*base_params), "warm start");
  TrainOptions finetune_options;
  finetune_options.iterations = 60;
  finetune_options.base_learning_rate = 0.01f;  // Gentle fine-tune.
  finetune_options.snapshot_every = 30;
  auto finetune_run = TrainNetwork(&*finetuned, bob_data, finetune_options);
  Check(finetune_run.status(), "finetune");
  std::printf("bob fine-tuned to %.1f%% on his task\n",
              finetune_run->final_accuracy * 100);

  NetworkDef bob_def = *base_def;
  bob_def.set_name("glyphnet_bob");
  CommitRequest bob_commit;
  bob_commit.name = "glyphnet_bob";
  bob_commit.network = bob_def;
  bob_commit.snapshots = finetune_run->snapshots;
  bob_commit.log = finetune_run->log;
  bob_commit.parent = "glyphnet_base";
  bob_commit.message = "fine-tune of alice's base";
  Check(bob_repo->Commit(bob_commit).status(), "commit finetune");

  // Bob publishes his derived repository back.
  Check(hub.Publish(JoinPath(work, "bob_repo"), "bob", "glyphnets-ft"),
        "publish bob");
  auto all = hub.Search("");
  Check(all.status(), "search all");
  std::printf("\nhub now hosts %zu model versions across %s\n", all->size(),
              "2 repositories");
  std::printf("hub sharing complete.\n");
  return 0;
}
