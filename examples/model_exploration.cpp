// Model exploration: a modeling-session lifecycle across many versions.
//
// The synthetic modeler (the paper's SD generator) populates a repository
// with a lineage of trained variants — fine-tunes, hyperparameter
// re-trainings, architecture mutations. We then run the exploration
// queries a modeler actually uses: dlv list, lineage, desc, diff, and a
// couple of DQL selects over metadata and structure.
//
// Run: ./model_exploration [workdir]

#include <cstdio>
#include <string>

#include "common/env.h"
#include "data/synthetic_modeler.h"
#include "dlv/repository.h"
#include "dql/engine.h"

namespace {

void Check(const modelhub::Status& status, const char* step) {
  if (!status.ok()) {
    std::fprintf(stderr, "[%s] %s\n", step, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace modelhub;
  const std::string root = argc > 1 ? argv[1] : "exploration_repo";
  Env* env = Env::Default();

  auto repo = Repository::Init(env, root);
  Check(repo.status(), "dlv init");

  // Simulate a week of modeling: 6 versions derived from one base.
  ModelerOptions modeler;
  modeler.num_versions = 6;
  modeler.snapshots_per_version = 3;
  modeler.train_iterations = 60;
  modeler.num_classes = 6;
  modeler.image_size = 16;
  modeler.dataset_samples = 256;
  auto names = RunSyntheticModeler(&*repo, modeler);
  Check(names.status(), "synthetic modeler");
  std::printf("modeler committed %zu versions\n", names->size());

  // dlv list.
  auto versions = repo->List();
  Check(versions.status(), "dlv list");
  std::printf("\n== dlv list ==\n");
  std::printf("%-12s %-12s %6s %9s\n", "name", "parent", "snaps", "best_acc");
  for (const auto& info : *versions) {
    std::printf("%-12s %-12s %6lld %9.3f\n", info.name.c_str(),
                info.parent.empty() ? "-" : info.parent.c_str(),
                static_cast<long long>(info.num_snapshots),
                info.best_accuracy);
  }

  // Lineage graph.
  std::printf("\n== lineage ==\n");
  for (const auto& [base, derived] : repo->GetLineage()) {
    std::printf("%s -> %s\n", base.c_str(), derived.c_str());
  }

  // dlv desc of the base model.
  std::printf("\n== dlv desc model_v0 ==\n");
  auto description = repo->Describe("model_v0");
  Check(description.status(), "dlv desc");
  std::printf("%s", description->c_str());

  // dlv diff: base vs the last variant.
  std::printf("\n== dlv diff model_v0 %s ==\n", names->back().c_str());
  auto diff = repo->Diff("model_v0", names->back());
  Check(diff.status(), "dlv diff");
  std::printf("%s", diff->c_str());

  // DQL exploration: metadata and structural predicates.
  DqlEngine engine(&*repo, DqlOptions{.commit_results = false});
  std::printf("\n== DQL: models with accuracy above the base ==\n");
  auto info = repo->GetInfo("model_v0");
  Check(info.status(), "get info");
  char query[160];
  std::snprintf(query, sizeof(query),
                "select m where m.accuracy > %.4f", info->best_accuracy);
  auto better = engine.Run(query);
  Check(better.status(), "dql select");
  for (const auto& name : better->model_names) {
    std::printf("  %s\n", name.c_str());
  }
  if (better->model_names.empty()) std::printf("  (none)\n");

  std::printf("\n== DQL: models with an extra ReLU after pool1 ==\n");
  auto mutated = engine.Run(
      "select m where m[\"pool1\"].next has RELU()");
  Check(mutated.status(), "dql structural select");
  for (const auto& name : mutated->model_names) {
    std::printf("  %s\n", name.c_str());
  }
  if (mutated->model_names.empty()) std::printf("  (none)\n");

  std::printf("\n== DQL: direct children of model_v0 ==\n");
  auto children = engine.Run("select m where m.parent = \"model_v0\"");
  Check(children.status(), "dql children");
  for (const auto& name : children->model_names) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("\nexploration complete.\n");
  return 0;
}
