// Progressive inference: evaluate a model straight out of a PAS archive
// using only high-order weight bytes, escalating per sample when the
// prediction is not yet determined (Sec. IV-D of the paper).
//
// Run: ./progressive_inference [workdir]

#include <cstdio>
#include <string>

#include "common/env.h"
#include "data/dataset.h"
#include "nn/network.h"
#include "nn/trainer.h"
#include "nn/zoo.h"
#include "pas/archive.h"
#include "pas/progressive.h"

namespace {

void Check(const modelhub::Status& status, const char* step) {
  if (!status.ok()) {
    std::fprintf(stderr, "[%s] %s\n", step, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace modelhub;
  const std::string dir = argc > 1 ? argv[1] : "progressive_archive";
  Env* env = Env::Default();

  // Train a classifier to decent accuracy.
  const Dataset data = MakeGlyphDataset(
      {.num_samples = 400, .num_classes = 6, .image_size = 16, .seed = 11});
  NetworkDef def = MiniVgg(6, 16, 1);
  auto net = Network::Create(def);
  Check(net.status(), "create");
  Rng rng(7);
  net->InitializeWeights(&rng);
  TrainOptions options;
  options.iterations = 200;
  options.batch_size = 24;
  auto trained = TrainNetwork(&*net, data, options);
  Check(trained.status(), "train");
  std::printf("trained model: %.1f%% accuracy\n",
              trained->final_accuracy * 100);

  // Archive it with bytewise segmentation (always on in PAS).
  ArchiveBuilder builder(env, dir);
  Check(builder.AddSnapshot("glyphnet/latest", net->GetParameters()),
        "add snapshot");
  auto report = builder.Build(ArchiveOptions());
  Check(report.status(), "build archive");

  auto reader = ArchiveReader::Open(env, dir);
  Check(reader.status(), "open archive");
  std::printf("archive: %llu compressed bytes on disk\n",
              static_cast<unsigned long long>(reader->TotalStoredBytes()));

  // Progressive top-1 evaluation of a fresh batch.
  const Dataset queries = MakeGlyphDataset(
      {.num_samples = 60, .num_classes = 6, .image_size = 16, .seed = 12});
  ProgressiveQueryEvaluator evaluator(&*reader, def);
  ProgressiveOptions popt;
  popt.top_k = 1;
  auto result = evaluator.Evaluate("glyphnet/latest", queries.images, popt);
  Check(result.status(), "progressive evaluate");

  std::printf("\nresolution histogram (byte planes needed per sample):\n");
  for (int planes = 1; planes <= 4; ++planes) {
    std::printf("  %d plane%s: %3d samples\n", planes,
                planes == 1 ? " " : "s", result->resolved_at[planes]);
  }
  std::printf("bytes fetched: %llu of %llu (%.1f%%)\n",
              static_cast<unsigned long long>(result->bytes_read),
              static_cast<unsigned long long>(result->full_bytes),
              100.0 * result->bytes_read /
                  static_cast<double>(result->full_bytes));

  // The guarantee: labels identical to full-precision evaluation.
  auto exact = net->Predict(queries.images);
  Check(exact.status(), "exact predict");
  int agree = 0;
  for (size_t i = 0; i < exact->size(); ++i) {
    if ((*exact)[i] == result->labels[i]) ++agree;
  }
  std::printf("progressive labels match full precision: %d/%zu\n", agree,
              exact->size());
  std::printf("progressive inference complete.\n");
  return 0;
}
