// Quickstart: the end-to-end ModelHub loop on one model.
//
//   1. dlv init        — create a repository
//   2. train           — fit a small conv net on a synthetic task
//   3. dlv commit      — record the version (network, snapshots, log)
//   4. dlv list/desc   — explore what was stored
//   5. dlv eval        — run the model on fresh data
//   6. dlv archive     — compact all snapshots into PAS
//   7. retrieve        — read parameters back from the archive
//
// Run: ./quickstart [workdir]   (default: ./quickstart_repo)

#include <cstdio>
#include <string>

#include "common/env.h"
#include "data/dataset.h"
#include "dlv/repository.h"
#include "nn/network.h"
#include "nn/trainer.h"
#include "nn/zoo.h"

namespace {

// Aborts with a message on error — fine for an example binary.
void Check(const modelhub::Status& status, const char* step) {
  if (!status.ok()) {
    std::fprintf(stderr, "[%s] %s\n", step, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace modelhub;
  const std::string root = argc > 1 ? argv[1] : "quickstart_repo";
  Env* env = Env::Default();

  // 1. Initialize a repository (fails if one exists; reuse a fresh dir).
  auto repo = Repository::Init(env, root);
  Check(repo.status(), "dlv init");
  std::printf("initialized repository at %s\n", root.c_str());

  // 2. Train a mini LeNet-style model on a synthetic glyph task (stands in
  //    for MNIST; see DESIGN.md substitutions).
  const Dataset train_set = MakeGlyphDataset(
      {.num_samples = 384, .num_classes = 6, .image_size = 20, .seed = 1});
  NetworkDef def = MiniLeNet(/*classes=*/6, /*image_size=*/20);
  def.set_name("glyphnet_v1");
  auto net = Network::Create(def);
  Check(net.status(), "create network");
  Rng rng(42);
  net->InitializeWeights(&rng);

  TrainOptions options;
  options.iterations = 150;
  options.batch_size = 24;
  options.base_learning_rate = 0.02f;
  options.snapshot_every = 50;  // Checkpoints at 50, 100, 150.
  options.log_every = 25;
  auto trained = TrainNetwork(&*net, train_set, options);
  Check(trained.status(), "train");
  std::printf("trained %lld iterations: loss %.3f, accuracy %.1f%%\n",
              static_cast<long long>(options.iterations),
              trained->final_loss, trained->final_accuracy * 100);

  // 3. Commit the model version.
  CommitRequest commit;
  commit.name = "glyphnet_v1";
  commit.network = def;
  commit.snapshots = trained->snapshots;
  commit.log = trained->log;
  commit.hyperparams = {{"base_lr", "0.02"}, {"batch_size", "24"}};
  commit.message = "initial glyph classifier";
  commit.files = {{"notes.md", "# glyphnet\ntrained by quickstart\n"}};
  Check(repo->Commit(commit).status(), "dlv commit");

  // 4. Explore.
  auto versions = repo->List();
  Check(versions.status(), "dlv list");
  for (const auto& info : *versions) {
    std::printf("dlv list: %s  snapshots=%lld  best_acc=%.3f\n",
                info.name.c_str(),
                static_cast<long long>(info.num_snapshots),
                info.best_accuracy);
  }
  auto description = repo->Describe("glyphnet_v1");
  Check(description.status(), "dlv desc");
  std::printf("%s", description->c_str());

  // 5. Evaluate on held-out data.
  const Dataset test_set = MakeGlyphDataset(
      {.num_samples = 64, .num_classes = 6, .image_size = 20, .seed = 2});
  auto labels = repo->Eval("glyphnet_v1", test_set.images);
  Check(labels.status(), "dlv eval");
  int correct = 0;
  for (size_t i = 0; i < labels->size(); ++i) {
    if ((*labels)[i] == test_set.labels[i]) ++correct;
  }
  std::printf("dlv eval: held-out accuracy %.1f%% (%d/%zu)\n",
              100.0 * correct / labels->size(), correct, labels->size());

  // 6. Archive the checkpoints into PAS (delta-encoded, segmented).
  ArchiveOptions archive_options;
  archive_options.solver = ArchiveSolver::kPasPt;
  archive_options.budget_alpha = 2.0;
  auto report = repo->Archive(archive_options);
  Check(report.status(), "dlv archive");
  std::printf(
      "dlv archive: %d matrices, storage %.0f bytes (MST bound %.0f, "
      "materialized %.0f), budgets %s\n",
      report->num_vertices, report->storage_cost, report->mst_storage_cost,
      report->spt_storage_cost,
      report->budgets_satisfied ? "satisfied" : "violated");

  // 7. Read a checkpoint back from the archive and reuse it.
  auto params = repo->GetSnapshotParams("glyphnet_v1", /*sequence=*/0);
  Check(params.status(), "retrieve snapshot");
  std::printf("retrieved snapshot 0: %zu parameter matrices\n",
              params->size());
  std::printf("quickstart complete.\n");
  return 0;
}
