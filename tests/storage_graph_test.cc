#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "common/macros.h"
#include "common/random.h"
#include "pas/solver.h"
#include "pas/storage_graph.h"

namespace modelhub {
namespace {

/// The toy example of Fig. 5: two snapshots s1 = {m1, m2}, s2 = {m3, m4,
/// m5}, with (storage, recreation) edge weights as printed in the paper.
struct ToyGraph {
  MatrixStorageGraph graph;
  int m1, m2, m3, m4, m5;

  ToyGraph() {
    m1 = graph.AddVertex("m1");
    m2 = graph.AddVertex("m2");
    m3 = graph.AddVertex("m3");
    m4 = graph.AddVertex("m4");
    m5 = graph.AddVertex("m5");
    auto add = [&](int u, int v, double cs, double cr) {
      auto r = graph.AddEdge(u, v, cs, cr);
      EXPECT_TRUE(r.ok());
    };
    add(0, m1, 2, 1);    // v0-m1
    add(0, m3, 8, 2);    // v0-m3
    add(m1, m2, 1, 0.5);
    add(m1, m3, 4, 1);   // m1-m3
    add(m2, m4, 2, 1);
    add(m3, m4, 8, 2);
    add(m2, m5, 4, 1);
    add(m3, m5, 4, 1);
    add(m4, m5, 8, 2);
    EXPECT_TRUE(graph.AddGroup("s1", {m1, m2}, 0.0).ok());
    EXPECT_TRUE(graph.AddGroup("s2", {m3, m4, m5}, 0.0).ok());
  }
};

TEST(StorageGraphTest, ConstructionAndValidation) {
  MatrixStorageGraph graph;
  EXPECT_EQ(graph.num_vertices(), 1);
  EXPECT_EQ(graph.vertex_name(0), "v0");
  const int a = graph.AddVertex("a");
  EXPECT_TRUE(graph.AddEdge(0, a, 1.0, 1.0).ok());
  EXPECT_TRUE(graph.AddEdge(a, a, 1.0, 1.0).status().IsInvalidArgument());
  EXPECT_TRUE(graph.AddEdge(0, 99, 1.0, 1.0).status().IsInvalidArgument());
  EXPECT_TRUE(graph.AddEdge(0, a, -1.0, 1.0).status().IsInvalidArgument());
  EXPECT_TRUE(graph.AddGroup("g", {99}, 1.0).IsInvalidArgument());
  EXPECT_TRUE(graph.AddGroup("g", {0}, 1.0).IsInvalidArgument());  // v0.
  EXPECT_TRUE(graph.IsConnected());
  graph.AddVertex("isolated");
  EXPECT_FALSE(graph.IsConnected());
}

TEST(StoragePlanTest, ValidatesParentEdges) {
  ToyGraph toy;
  // m1 parented by an edge not incident to it.
  std::vector<int> bad(toy.graph.num_vertices(), 0);
  bad[0] = -1;
  EXPECT_FALSE(StoragePlan::FromParentEdges(&toy.graph, bad).ok());
}

TEST(StoragePlanTest, CostsOfKnownTree) {
  ToyGraph toy;
  // Fig 5(b)'s optimal unconstrained plan: v0-m1, m1-m2, m2-m4, m2-m5,
  // v0-m3 ... the paper's MST has Cs = 19 using edges
  // {v0-m1(2), m1-m2(1), m2-m4(2), m2-m5(4), ...}: compute via solver below.
  auto mst = SolveMst(toy.graph);
  ASSERT_TRUE(mst.ok());
  // MST on cs: v0-m1(2) + m1-m2(1) + m2-m4(2) + {m5: min(4,4,8)=4} +
  // {m3: min(8,4,8)=4} = 13? The paper's figure uses a slightly different
  // candidate set; we assert internal consistency instead of the constant.
  double edge_sum = 0.0;
  for (int v = 1; v < toy.graph.num_vertices(); ++v) {
    edge_sum += toy.graph.edge(mst->ParentEdge(v)).storage_cost;
  }
  EXPECT_DOUBLE_EQ(mst->TotalStorageCost(), edge_sum);
  // MST must not exceed any other spanning tree; compare against SPT.
  auto spt = SolveSpt(toy.graph);
  ASSERT_TRUE(spt.ok());
  EXPECT_LE(mst->TotalStorageCost(), spt->TotalStorageCost());
  // SPT gives each vertex its shortest recreation path.
  EXPECT_LE(spt->PathRecreationCost(toy.m4), mst->PathRecreationCost(toy.m4));
}

TEST(StoragePlanTest, GroupRecreationCostSchemes) {
  ToyGraph toy;
  auto spt = SolveSpt(toy.graph);
  ASSERT_TRUE(spt.ok());
  const auto& groups = toy.graph.groups();
  const double independent =
      spt->GroupRecreationCost(groups[1], RetrievalScheme::kIndependent);
  const double parallel =
      spt->GroupRecreationCost(groups[1], RetrievalScheme::kParallel);
  const double reusable =
      spt->GroupRecreationCost(groups[1], RetrievalScheme::kReusable);
  // Independent sums, parallel takes the max, reusable dedups shared
  // prefixes: parallel <= reusable <= independent.
  EXPECT_LE(parallel, reusable + 1e-12);
  EXPECT_LE(reusable, independent + 1e-12);
  EXPECT_GT(parallel, 0.0);
}

TEST(StoragePlanTest, SwapMaintainsTreeAndUpdatesCosts) {
  ToyGraph toy;
  auto plan = SolveMst(toy.graph);
  ASSERT_TRUE(plan.ok());
  const double before = plan->TotalStorageCost();
  // Find a non-tree edge incident to m3 and swap onto it.
  int candidate = -1;
  for (int eid : toy.graph.IncidentEdges(toy.m3)) {
    if (eid != plan->ParentEdge(toy.m3)) {
      const StorageEdge& e = toy.graph.edge(eid);
      const int other = e.u == toy.m3 ? e.v : e.u;
      auto subtree = plan->Subtree(toy.m3);
      if (std::find(subtree.begin(), subtree.end(), other) == subtree.end()) {
        candidate = eid;
        break;
      }
    }
  }
  ASSERT_GE(candidate, 0);
  ASSERT_TRUE(plan->Swap(toy.m3, candidate).ok());
  EXPECT_NE(plan->TotalStorageCost(), before);
  // Still a valid tree: all path costs finite.
  for (int v = 1; v < toy.graph.num_vertices(); ++v) {
    EXPECT_GT(plan->PathRecreationCost(v), 0.0);
  }
}

TEST(StoragePlanTest, SwapRejectsCycles) {
  ToyGraph toy;
  auto plan = SolveMst(toy.graph);
  ASSERT_TRUE(plan.ok());
  // Re-parenting a vertex onto its own descendant must fail. Find a
  // parent-child pair and try to invert it via the same edge.
  for (int v = 1; v < toy.graph.num_vertices(); ++v) {
    const int p = plan->Parent(v);
    if (p == 0) continue;
    EXPECT_TRUE(plan->Swap(p, plan->ParentEdge(v)).IsInvalidArgument());
    break;
  }
}

// --------------------------------------------------------------- Solvers

/// Builds a synthetic SD/RD-style graph: `num_snapshots` groups of
/// `group_size` matrices; materialization edges cost ~100, within-version
/// delta edges much cheaper but slower to recreate via chains.
MatrixStorageGraph MakeChainGraph(int num_snapshots, int group_size,
                                  double delta_ratio, uint64_t seed) {
  MatrixStorageGraph graph;
  Rng rng(seed);
  std::vector<std::vector<int>> ids(static_cast<size_t>(num_snapshots));
  for (int s = 0; s < num_snapshots; ++s) {
    for (int g = 0; g < group_size; ++g) {
      const int v = graph.AddVertex("s" + std::to_string(s) + "/m" +
                                    std::to_string(g));
      ids[static_cast<size_t>(s)].push_back(v);
      const double cs = 90 + rng.NextDouble() * 20;
      MH_CHECK(graph.AddEdge(0, v, cs, cs * 0.5).ok());
      if (s > 0) {
        const int prev = ids[static_cast<size_t>(s - 1)][static_cast<size_t>(g)];
        const double dcs = cs * delta_ratio * (0.8 + 0.4 * rng.NextDouble());
        MH_CHECK(graph.AddEdge(prev, v, dcs, dcs * 0.5 + 10).ok());
      }
    }
    MH_CHECK(graph.AddGroup("s" + std::to_string(s),
                            ids[static_cast<size_t>(s)], 0.0)
                 .ok());
  }
  return graph;
}

void SetBudgets(MatrixStorageGraph* graph, const StoragePlan& spt,
                RetrievalScheme scheme, double alpha) {
  for (auto& group : *graph->mutable_groups()) {
    group.budget = alpha * spt.GroupRecreationCost(group, scheme);
  }
}

TEST(SolverTest, MstIsMinimal) {
  MatrixStorageGraph graph = MakeChainGraph(6, 4, 0.2, 1);
  auto mst = SolveMst(graph);
  ASSERT_TRUE(mst.ok());
  auto spt = SolveSpt(graph);
  ASSERT_TRUE(spt.ok());
  auto last = SolveLast(graph, 2.0);
  ASSERT_TRUE(last.ok());
  EXPECT_LE(mst->TotalStorageCost(), spt->TotalStorageCost());
  EXPECT_LE(mst->TotalStorageCost(), last->TotalStorageCost());
}

TEST(SolverTest, SptGivesShortestPaths) {
  MatrixStorageGraph graph = MakeChainGraph(6, 4, 0.2, 2);
  auto spt = SolveSpt(graph);
  ASSERT_TRUE(spt.ok());
  auto mst = SolveMst(graph);
  ASSERT_TRUE(mst.ok());
  for (int v = 1; v < graph.num_vertices(); ++v) {
    EXPECT_LE(spt->PathRecreationCost(v), mst->PathRecreationCost(v) + 1e-9);
  }
}

TEST(SolverTest, LastRespectsStretchBound) {
  MatrixStorageGraph graph = MakeChainGraph(8, 4, 0.15, 3);
  auto spt = SolveSpt(graph);
  ASSERT_TRUE(spt.ok());
  const double alpha = 1.5;
  auto last = SolveLast(graph, alpha);
  ASSERT_TRUE(last.ok());
  for (int v = 1; v < graph.num_vertices(); ++v) {
    EXPECT_LE(last->PathRecreationCost(v),
              alpha * spt->PathRecreationCost(v) * (1 + 1e-9))
        << graph.vertex_name(v);
  }
  EXPECT_TRUE(SolveLast(graph, 0.5).status().IsInvalidArgument());
}

using SolverCase = std::tuple<double /*alpha*/, RetrievalScheme>;

class PasSolverTest : public ::testing::TestWithParam<SolverCase> {};

TEST_P(PasSolverTest, PlansSatisfyBudgetsAndBeatBaselines) {
  const auto& [alpha, scheme] = GetParam();
  MatrixStorageGraph graph = MakeChainGraph(10, 5, 0.15, 4);
  auto spt = SolveSpt(graph);
  ASSERT_TRUE(spt.ok());
  SetBudgets(&graph, *spt, scheme, alpha);

  auto mt = SolvePasMt(graph, scheme);
  ASSERT_TRUE(mt.ok());
  auto pt = SolvePasPt(graph, scheme);
  ASSERT_TRUE(pt.ok());

  // Budgets are feasible by construction (SPT satisfies them at alpha>=1),
  // so both PAS algorithms must return feasible plans.
  EXPECT_TRUE(mt->SatisfiesBudgets(scheme))
      << "alpha=" << alpha << " violations=" << mt->NumViolatedBudgets(scheme);
  EXPECT_TRUE(pt->SatisfiesBudgets(scheme))
      << "alpha=" << alpha << " violations=" << pt->NumViolatedBudgets(scheme);

  auto mst = SolveMst(graph);
  ASSERT_TRUE(mst.ok());
  // Storage between MST (lower bound) and SPT (worst reasonable).
  EXPECT_GE(mt->TotalStorageCost(), mst->TotalStorageCost() - 1e-9);
  EXPECT_GE(pt->TotalStorageCost(), mst->TotalStorageCost() - 1e-9);
  const double best =
      std::min(mt->TotalStorageCost(), pt->TotalStorageCost());
  EXPECT_LE(best, spt->TotalStorageCost() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AlphaSweep, PasSolverTest,
    ::testing::Combine(::testing::Values(1.2, 1.6, 2.0, 3.0),
                       ::testing::Values(RetrievalScheme::kIndependent,
                                         RetrievalScheme::kParallel)));

TEST(SolverTest, LooseBudgetsRecoverMst) {
  MatrixStorageGraph graph = MakeChainGraph(8, 4, 0.15, 5);
  auto spt = SolveSpt(graph);
  ASSERT_TRUE(spt.ok());
  SetBudgets(&graph, *spt, RetrievalScheme::kIndependent, 1000.0);
  auto mt = SolvePasMt(graph, RetrievalScheme::kIndependent);
  ASSERT_TRUE(mt.ok());
  auto mst = SolveMst(graph);
  ASSERT_TRUE(mst.ok());
  // With effectively no constraints, MT keeps the MST.
  EXPECT_DOUBLE_EQ(mt->TotalStorageCost(), mst->TotalStorageCost());
}

TEST(SolverTest, PasPlansBeatLastOnGroupConstraints) {
  // The headline claim of Fig 6(c): because LAST enforces per-vertex
  // stretch instead of per-group budgets, it over-constrains and stores
  // more than the PAS algorithms at the same feasibility level.
  MatrixStorageGraph graph = MakeChainGraph(12, 6, 0.12, 6);
  auto spt = SolveSpt(graph);
  ASSERT_TRUE(spt.ok());
  const double alpha = 2.0;
  SetBudgets(&graph, *spt, RetrievalScheme::kIndependent, alpha);
  auto mt = SolvePasMt(graph, RetrievalScheme::kIndependent);
  auto pt = SolvePasPt(graph, RetrievalScheme::kIndependent);
  auto last = SolveLast(graph, alpha);
  ASSERT_TRUE(mt.ok());
  ASSERT_TRUE(pt.ok());
  ASSERT_TRUE(last.ok());
  const double pas_best =
      std::min(mt->TotalStorageCost(), pt->TotalStorageCost());
  EXPECT_LE(pas_best, last->TotalStorageCost() + 1e-9);
}

TEST(SolverTest, ReusableSchemeBudgetsSatisfiable) {
  // The reusable scheme (union of root paths) is NP-hard to optimize; the
  // solvers use the independent-scheme gain as a surrogate but check
  // feasibility against the exact tree-Steiner cost (DESIGN.md extension).
  MatrixStorageGraph graph = MakeChainGraph(8, 5, 0.15, 9);
  auto spt = SolveSpt(graph);
  ASSERT_TRUE(spt.ok());
  SetBudgets(&graph, *spt, RetrievalScheme::kReusable, 1.8);
  auto mt = SolvePasMt(graph, RetrievalScheme::kReusable);
  ASSERT_TRUE(mt.ok());
  EXPECT_TRUE(mt->SatisfiesBudgets(RetrievalScheme::kReusable));
  auto pt = SolvePasPt(graph, RetrievalScheme::kReusable);
  ASSERT_TRUE(pt.ok());
  EXPECT_TRUE(pt->SatisfiesBudgets(RetrievalScheme::kReusable));
  auto mst = SolveMst(graph);
  ASSERT_TRUE(mst.ok());
  EXPECT_GE(mt->TotalStorageCost(), mst->TotalStorageCost() - 1e-9);
}

TEST(SolverTest, DisconnectedGraphRejected) {
  MatrixStorageGraph graph;
  graph.AddVertex("stranded");
  EXPECT_TRUE(SolveMst(graph).status().IsInvalidArgument());
  EXPECT_TRUE(SolveSpt(graph).status().IsInvalidArgument());
  EXPECT_TRUE(
      SolvePasPt(graph, RetrievalScheme::kIndependent).status().IsInvalidArgument());
}

TEST(SolverTest, InfeasibleBudgetsReportedNotCrashed) {
  MatrixStorageGraph graph = MakeChainGraph(5, 3, 0.2, 7);
  // Budgets below even the SPT cost: infeasible.
  for (auto& group : *graph.mutable_groups()) group.budget = 1e-6;
  auto mt = SolvePasMt(graph, RetrievalScheme::kIndependent);
  ASSERT_TRUE(mt.ok());
  EXPECT_FALSE(mt->SatisfiesBudgets(RetrievalScheme::kIndependent));
  auto pt = SolvePasPt(graph, RetrievalScheme::kIndependent);
  ASSERT_TRUE(pt.ok());
  EXPECT_FALSE(pt->SatisfiesBudgets(RetrievalScheme::kIndependent));
}

TEST(NamesTest, EnumToStringCoverage) {
  EXPECT_EQ(RetrievalSchemeToString(RetrievalScheme::kIndependent),
            "independent");
  EXPECT_EQ(RetrievalSchemeToString(RetrievalScheme::kParallel), "parallel");
  EXPECT_EQ(RetrievalSchemeToString(RetrievalScheme::kReusable), "reusable");
}

TEST(StorageGraphTest, TieredParallelEdges) {
  MatrixStorageGraph graph;
  const int v = graph.AddVertex("m");
  auto local = graph.AddEdge(0, v, 100.0, 50.0, /*tier=*/0);
  auto remote = graph.AddEdge(0, v, 50.0, 400.0, /*tier=*/1);
  ASSERT_TRUE(local.ok());
  ASSERT_TRUE(remote.ok());
  EXPECT_EQ(graph.edge(*local).tier, 0);
  EXPECT_EQ(graph.edge(*remote).tier, 1);
  // MST (pure storage) picks the remote edge; SPT (pure recreation) picks
  // the local edge.
  auto mst = SolveMst(graph);
  ASSERT_TRUE(mst.ok());
  EXPECT_EQ(graph.edge(mst->ParentEdge(v)).tier, 1);
  auto spt = SolveSpt(graph);
  ASSERT_TRUE(spt.ok());
  EXPECT_EQ(graph.edge(spt->ParentEdge(v)).tier, 0);
}

}  // namespace
}  // namespace modelhub
