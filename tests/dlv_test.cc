#include <gtest/gtest.h>

#include "common/env.h"
#include "data/dataset.h"
#include "data/synthetic_modeler.h"
#include "dlv/catalog.h"
#include "dlv/report.h"
#include "dlv/repository.h"
#include "nn/trainer.h"
#include "nn/zoo.h"

namespace modelhub {
namespace {

// ---------------------------------------------------------------- Catalog

TEST(CatalogTest, CreateInsertScan) {
  MemEnv env;
  auto catalog = Catalog::Open(&env, "cat.bin");
  ASSERT_TRUE(catalog.ok());
  ASSERT_TRUE(catalog
                  ->CreateTable({"t",
                                 {{"id", ColumnType::kInt},
                                  {"score", ColumnType::kReal},
                                  {"name", ColumnType::kText}}})
                  .ok());
  EXPECT_TRUE(catalog->HasTable("t"));
  EXPECT_FALSE(catalog->HasTable("u"));
  ASSERT_TRUE(catalog->Insert("t", {int64_t{1}, 0.5, "a"}).ok());
  ASSERT_TRUE(catalog->Insert("t", {int64_t{2}, 0.9, "b"}).ok());
  auto rows = catalog->Scan("t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
  auto filtered = catalog->Scan(
      "t", [](const Row& row) { return row[1].AsReal() > 0.7; });
  ASSERT_TRUE(filtered.ok());
  ASSERT_EQ(filtered->size(), 1u);
  EXPECT_EQ((*filtered)[0][2].AsText(), "b");
}

TEST(CatalogTest, TypeAndArityChecked) {
  MemEnv env;
  auto catalog = Catalog::Open(&env, "cat.bin");
  ASSERT_TRUE(catalog.ok());
  ASSERT_TRUE(
      catalog->CreateTable({"t", {{"id", ColumnType::kInt}}}).ok());
  EXPECT_TRUE(catalog->Insert("t", {0.5}).status().IsInvalidArgument());
  EXPECT_TRUE(catalog->Insert("t", {int64_t{1}, int64_t{2}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(catalog->Insert("u", {int64_t{1}}).status().IsNotFound());
  // Re-creating with the same schema is fine; different schema fails.
  EXPECT_TRUE(catalog->CreateTable({"t", {{"id", ColumnType::kInt}}}).ok());
  EXPECT_TRUE(catalog->CreateTable({"t", {{"id", ColumnType::kText}}})
                  .IsAlreadyExists());
}

TEST(CatalogTest, PersistenceRoundTrip) {
  MemEnv env;
  {
    auto catalog = Catalog::Open(&env, "cat.bin");
    ASSERT_TRUE(catalog.ok());
    ASSERT_TRUE(catalog
                    ->CreateTable({"t",
                                   {{"id", ColumnType::kInt},
                                    {"v", ColumnType::kReal},
                                    {"s", ColumnType::kText}}})
                    .ok());
    ASSERT_TRUE(catalog->Insert("t", {int64_t{-7}, 3.25, "hello"}).ok());
    EXPECT_EQ(catalog->NextSequence(), 1);
    EXPECT_EQ(catalog->NextSequence(), 2);
    ASSERT_TRUE(catalog->Flush().ok());
  }
  {
    auto catalog = Catalog::Open(&env, "cat.bin");
    ASSERT_TRUE(catalog.ok());
    auto rows = catalog->Scan("t");
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->size(), 1u);
    EXPECT_EQ((*rows)[0][0].AsInt(), -7);
    EXPECT_DOUBLE_EQ((*rows)[0][1].AsReal(), 3.25);
    EXPECT_EQ((*rows)[0][2].AsText(), "hello");
    // Sequence numbers continue, never repeat.
    EXPECT_EQ(catalog->NextSequence(), 3);
  }
}

TEST(CatalogTest, Update) {
  MemEnv env;
  auto catalog = Catalog::Open(&env, "cat.bin");
  ASSERT_TRUE(catalog.ok());
  ASSERT_TRUE(catalog
                  ->CreateTable({"t",
                                 {{"id", ColumnType::kInt},
                                  {"state", ColumnType::kText}}})
                  .ok());
  ASSERT_TRUE(catalog->Insert("t", {int64_t{1}, "staging"}).ok());
  ASSERT_TRUE(catalog->Insert("t", {int64_t{2}, "staging"}).ok());
  ASSERT_TRUE(catalog->Insert("t", {int64_t{3}, "pas"}).ok());
  auto updated = catalog->Update(
      "t", [](const Row& r) { return r[1].AsText() == "staging"; },
      [](Row* r) { (*r)[1] = "pas"; });
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(*updated, 2);
  auto rows = catalog->Scan(
      "t", [](const Row& r) { return r[1].AsText() == "pas"; });
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
}

TEST(CatalogTest, CorruptFileRejected) {
  MemEnv env;
  ASSERT_TRUE(env.WriteFile("cat.bin", "garbage").ok());
  EXPECT_FALSE(Catalog::Open(&env, "cat.bin").ok());
}

// ---------------------------------------------------------- Params serde

TEST(ParamSerdeTest, RoundTrip) {
  Rng rng(3);
  std::vector<NamedParam> params;
  FloatMatrix a(3, 4);
  a.FillGaussian(&rng, 1.0f);
  FloatMatrix b(1, 5);
  b.FillGaussian(&rng, 1.0f);
  params.push_back({"conv1.W", a});
  params.push_back({"conv1.b", b});
  const std::string bytes = SerializeParams(params);
  auto back = ParseParams(Slice(bytes));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].name, "conv1.W");
  EXPECT_TRUE((*back)[0].value.BitEquals(a));
  EXPECT_TRUE((*back)[1].value.BitEquals(b));
}

TEST(ParamSerdeTest, TruncatedRejected) {
  std::vector<NamedParam> params = {{"w", FloatMatrix(2, 2)}};
  std::string bytes = SerializeParams(params);
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(ParseParams(Slice(bytes)).ok());
}

// -------------------------------------------------------------- Repository

/// Commits one trained mini model under `name`.
void CommitTrained(Repository* repo, const std::string& name,
                   const std::string& parent, uint64_t seed) {
  const Dataset ds = MakeBlobDataset(96, 4, 12, 0.05f, seed);
  NetworkDef def = MiniVgg(4, 12, 1);
  def.set_name(name);
  auto net = Network::Create(def);
  ASSERT_TRUE(net.ok());
  Rng rng(seed);
  net->InitializeWeights(&rng);
  TrainOptions options;
  options.iterations = 40;
  options.snapshot_every = 20;
  options.log_every = 10;
  options.seed = seed;
  auto trained = TrainNetwork(&*net, ds, options);
  ASSERT_TRUE(trained.ok());
  CommitRequest request;
  request.name = name;
  request.network = def;
  request.snapshots = trained->snapshots;
  request.log = trained->log;
  request.hyperparams = {{"base_lr", "0.05"}};
  request.parent = parent;
  request.message = "test commit";
  request.files = {{"notes.txt", "trained for test"}};
  ASSERT_TRUE(repo->Commit(request).ok());
}

class RepositoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto repo = Repository::Init(&env_, "repo");
    ASSERT_TRUE(repo.ok());
    repo_ = std::make_unique<Repository>(std::move(*repo));
  }

  MemEnv env_;
  std::unique_ptr<Repository> repo_;
};

TEST_F(RepositoryTest, InitIsExclusive) {
  EXPECT_TRUE(Repository::Init(&env_, "repo").status().IsAlreadyExists());
  EXPECT_TRUE(Repository::Open(&env_, "elsewhere").status().IsNotFound());
}

TEST_F(RepositoryTest, CommitListDescribe) {
  CommitTrained(repo_.get(), "base", "", 1);
  CommitTrained(repo_.get(), "variant", "base", 2);
  auto list = repo_->List();
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 2u);
  EXPECT_EQ((*list)[0].name, "base");
  EXPECT_EQ((*list)[1].name, "variant");
  EXPECT_EQ((*list)[1].parent, "base");
  EXPECT_EQ((*list)[0].num_snapshots, 2);
  EXPECT_GT((*list)[0].best_accuracy, 0.0);
  EXPECT_FALSE((*list)[0].archived);
  EXPECT_LT((*list)[0].created_at, (*list)[1].created_at);

  auto desc = repo_->Describe("base");
  ASSERT_TRUE(desc.ok());
  EXPECT_NE(desc->find("model version: base"), std::string::npos);
  EXPECT_NE(desc->find("snapshots: 2"), std::string::npos);

  auto lineage = repo_->GetLineage();
  ASSERT_EQ(lineage.size(), 1u);
  EXPECT_EQ(lineage[0].first, "base");
  EXPECT_EQ(lineage[0].second, "variant");
}

TEST_F(RepositoryTest, DuplicateAndMissingNamesRejected) {
  CommitTrained(repo_.get(), "base", "", 1);
  CommitRequest request;
  request.name = "base";
  request.network = MiniVgg(4, 12, 1);
  EXPECT_TRUE(repo_->Commit(request).status().IsAlreadyExists());
  request.name = "x";
  request.parent = "missing";
  EXPECT_TRUE(repo_->Commit(request).status().IsNotFound());
  EXPECT_TRUE(repo_->Describe("missing").status().IsNotFound());
  EXPECT_TRUE(repo_->GetSnapshotParams("missing").status().IsNotFound());
}

TEST_F(RepositoryTest, SnapshotRoundTripThroughStaging) {
  CommitTrained(repo_.get(), "base", "", 3);
  auto params = repo_->GetSnapshotParams("base", 0);
  ASSERT_TRUE(params.ok());
  EXPECT_FALSE(params->empty());
  auto latest = repo_->GetSnapshotParams("base", -1);
  ASSERT_TRUE(latest.ok());
  auto num = repo_->NumSnapshots("base");
  ASSERT_TRUE(num.ok());
  EXPECT_EQ(*num, 2);
  EXPECT_TRUE(
      repo_->GetSnapshotParams("base", 99).status().IsNotFound());
}

TEST_F(RepositoryTest, FilesAreContentAddressed) {
  CommitTrained(repo_.get(), "base", "", 4);
  auto contents = repo_->GetFile("base", "notes.txt");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "trained for test");
  EXPECT_TRUE(repo_->GetFile("base", "nope").status().IsNotFound());
}

TEST_F(RepositoryTest, CopyScaffoldsNewVersion) {
  CommitTrained(repo_.get(), "base", "", 5);
  ASSERT_TRUE(repo_->Copy("base", "base-copy").ok());
  auto info = repo_->GetInfo("base-copy");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->parent, "base");
  EXPECT_EQ(info->num_snapshots, 0);
  auto net = repo_->GetNetwork("base-copy");
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->name(), "base-copy");
  auto hyper = repo_->GetHyperparams("base-copy");
  ASSERT_TRUE(hyper.ok());
  EXPECT_EQ(hyper->at("base_lr"), "0.05");
}

TEST_F(RepositoryTest, EvalRunsLatestSnapshot) {
  CommitTrained(repo_.get(), "base", "", 6);
  const Dataset ds = MakeBlobDataset(16, 4, 12, 0.05f, 6);
  auto labels = repo_->Eval("base", ds.images);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(labels->size(), 16u);
}

TEST_F(RepositoryTest, DiffReportsChanges) {
  CommitTrained(repo_.get(), "base", "", 7);
  // Mutated variant: extra ReLU + changed hyperparameter.
  auto def = repo_->GetNetwork("base");
  ASSERT_TRUE(def.ok());
  ASSERT_TRUE(
      def->InsertAfter("pool1", MakeActivation("relu_new", LayerKind::kReLU))
          .ok());
  def->set_name("mutated");
  CommitRequest request;
  request.name = "mutated";
  request.network = *def;
  request.parent = "base";
  request.hyperparams = {{"base_lr", "0.01"}};
  ASSERT_TRUE(repo_->Commit(request).ok());
  auto diff = repo_->Diff("base", "mutated");
  ASSERT_TRUE(diff.ok());
  EXPECT_NE(diff->find("+ node relu_new"), std::string::npos);
  EXPECT_NE(diff->find("~ hyperparam base_lr"), std::string::npos);
}

TEST_F(RepositoryTest, DiffParametersMeasuresDistance) {
  CommitTrained(repo_.get(), "base", "", 11);
  CommitTrained(repo_.get(), "other", "", 12);  // Different seed.
  auto self_diff = repo_->DiffParameters("base", "base");
  ASSERT_TRUE(self_diff.ok());
  for (const auto& entry : *self_diff) {
    EXPECT_DOUBLE_EQ(entry.l2_distance, 0.0) << entry.name;
    EXPECT_FALSE(entry.only_in_a);
    EXPECT_FALSE(entry.shape_changed);
  }
  auto cross_diff = repo_->DiffParameters("base", "other");
  ASSERT_TRUE(cross_diff.ok());
  double total = 0.0;
  for (const auto& entry : *cross_diff) total += entry.l2_distance;
  EXPECT_GT(total, 0.1);  // Independently trained: far apart.
  EXPECT_TRUE(repo_->DiffParameters("base", "nope").status().IsNotFound());
}

TEST_F(RepositoryTest, CompareOnDataReportsAgreement) {
  CommitTrained(repo_.get(), "base", "", 13);
  CommitTrained(repo_.get(), "twin", "", 13);  // Same seed: same model.
  CommitTrained(repo_.get(), "other", "", 14);
  const Dataset ds = MakeBlobDataset(32, 4, 12, 0.05f, 13);
  auto same = repo_->CompareOnData("base", "twin", ds.images);
  ASSERT_TRUE(same.ok());
  EXPECT_DOUBLE_EQ(same->agreement, 1.0);
  auto cross = repo_->CompareOnData("base", "other", ds.images);
  ASSERT_TRUE(cross.ok());
  EXPECT_GE(cross->agreement, 0.0);
  EXPECT_LE(cross->agreement, 1.0);
  EXPECT_EQ(cross->labels_a.size(), 32u);
}

TEST_F(RepositoryTest, PersistenceAcrossReopen) {
  CommitTrained(repo_.get(), "base", "", 8);
  auto reopened = Repository::Open(&env_, "repo");
  ASSERT_TRUE(reopened.ok());
  auto list = reopened->List();
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 1u);
  auto params = reopened->GetSnapshotParams("base");
  ASSERT_TRUE(params.ok());
}

TEST_F(RepositoryTest, ArchiveMigratesSnapshotsAndStaysReadable) {
  CommitTrained(repo_.get(), "base", "", 9);
  CommitTrained(repo_.get(), "variant", "base", 10);
  auto before = repo_->GetSnapshotParams("variant", 1);
  ASSERT_TRUE(before.ok());

  ArchiveOptions options;
  options.solver = ArchiveSolver::kPasPt;
  options.budget_alpha = 2.0;
  auto report = repo_->Archive(options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->num_vertices, 4 * 8);  // 4 snapshots x 8 matrices.

  auto list = repo_->List();
  ASSERT_TRUE(list.ok());
  EXPECT_TRUE((*list)[0].archived);

  // Retrieval now goes through PAS and returns (nearly) the same values.
  auto after = repo_->GetSnapshotParams("variant", 1);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->size(), before->size());
  for (size_t i = 0; i < after->size(); ++i) {
    EXPECT_TRUE((*after)[i].value.ApproxEquals((*before)[i].value, 1e-5f))
        << (*after)[i].name;
  }
  // Eval still works post-archival.
  const Dataset ds = MakeBlobDataset(8, 4, 12, 0.05f, 9);
  EXPECT_TRUE(repo_->Eval("variant", ds.images).ok());
}

// ------------------------------------------------------------- HTML report

TEST(HtmlReportTest, EscapesText) {
  EXPECT_EQ(HtmlEscape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
  EXPECT_EQ(HtmlEscape("plain"), "plain");
}

TEST_F(RepositoryTest, RenderHtmlReportContainsEverything) {
  CommitTrained(repo_.get(), "base", "", 21);
  CommitTrained(repo_.get(), "child<x>", "base", 22);
  auto html = RenderHtmlReport(*repo_);
  ASSERT_TRUE(html.ok());
  // Version table rows, escaped names, lineage SVG, loss curve SVG,
  // hyperparameters and log tables.
  EXPECT_NE(html->find("<table>"), std::string::npos);
  EXPECT_NE(html->find("base"), std::string::npos);
  EXPECT_NE(html->find("child&lt;x&gt;"), std::string::npos);
  EXPECT_EQ(html->find("child<x>"), std::string::npos);  // Never unescaped.
  EXPECT_NE(html->find("class=\"lineage\""), std::string::npos);
  EXPECT_NE(html->find("class=\"loss\""), std::string::npos);
  EXPECT_NE(html->find("base_lr"), std::string::npos);
  EXPECT_NE(html->find("</html>"), std::string::npos);
}

TEST(HtmlReportTest, EmptyRepositoryRenders) {
  MemEnv env;
  auto repo = Repository::Init(&env, "empty");
  ASSERT_TRUE(repo.ok());
  auto html = RenderHtmlReport(*repo);
  ASSERT_TRUE(html.ok());
  EXPECT_NE(html->find("0 model version(s)"), std::string::npos);
}

// --------------------------------------------------------- SyntheticModeler

TEST(SyntheticModelerTest, BuildsLineageRepository) {
  MemEnv env;
  auto repo = Repository::Init(&env, "sd");
  ASSERT_TRUE(repo.ok());
  ModelerOptions options;
  options.num_versions = 4;
  options.snapshots_per_version = 2;
  options.train_iterations = 30;
  options.dataset_samples = 96;
  options.num_classes = 4;
  options.image_size = 12;
  auto names = RunSyntheticModeler(&*repo, options);
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 4u);
  auto list = repo->List();
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), 4u);
  // Every non-base version has a parent among committed names.
  for (size_t i = 1; i < list->size(); ++i) {
    EXPECT_FALSE((*list)[i].parent.empty());
  }
  // All versions have snapshots and hyperparameters.
  for (const auto& name : *names) {
    auto num = repo->NumSnapshots(name);
    ASSERT_TRUE(num.ok());
    EXPECT_GE(*num, 2);
    auto hyper = repo->GetHyperparams(name);
    ASSERT_TRUE(hyper.ok());
    EXPECT_TRUE(hyper->count("base_lr"));
    auto file = repo->GetFile(name, "train_config.txt");
    EXPECT_TRUE(file.ok());
  }
  // The whole repository archives cleanly.
  ArchiveOptions archive_options;
  archive_options.budget_alpha = 2.0;
  auto report = repo->Archive(archive_options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->budgets_satisfied);
}

}  // namespace
}  // namespace modelhub
