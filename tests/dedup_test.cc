// Differential test harness for cross-model deduplication: the same
// fine-tuned family is archived with the chunk index on and off under an
// identical delta plan, and the dedup-on archive must be byte-for-byte
// indistinguishable at every read surface — exact retrieval, parallel
// retrieval, and progressive bounds at every plane count — while storing
// strictly fewer bytes. Also covers cross-generation chunk reuse and
// concurrent retrieval of shared chunks (run under TSan in CI).

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "pas/archive.h"
#include "pas/chunk_index.h"

namespace modelhub {
namespace {

struct Family {
  std::vector<std::string> names;
  std::vector<std::vector<NamedParam>> snapshots;
};

/// Base checkpoint plus `variants` fine-tunes that each sparsely mutate
/// one parameter and keep the rest frozen. No lineage is declared —
/// the archive only learns about the sharing through content.
Family MakeFamily(int variants, int num_params, int64_t rows, int64_t cols,
                  uint64_t seed = 11) {
  Family family;
  Rng rng(seed);
  std::vector<FloatMatrix> base(static_cast<size_t>(num_params));
  for (auto& m : base) {
    m = FloatMatrix(rows, cols);
    m.FillGaussian(&rng, 0.1f);
  }
  auto add = [&](const std::string& name,
                 const std::vector<FloatMatrix>& params) {
    family.names.push_back(name);
    std::vector<NamedParam> named;
    for (int p = 0; p < num_params; ++p) {
      named.push_back({"w" + std::to_string(p),
                       params[static_cast<size_t>(p)]});
    }
    family.snapshots.push_back(std::move(named));
  };
  add("fam@base", base);
  for (int v = 0; v < variants; ++v) {
    std::vector<FloatMatrix> tuned = base;
    auto& head = tuned[static_cast<size_t>(v % num_params)].data();
    for (size_t i = static_cast<size_t>(v); i < head.size(); i += 41) {
      head[i] += static_cast<float>(rng.NextGaussian()) * 0.02f;
    }
    add("fam@ft" + std::to_string(v), tuned);
  }
  return family;
}

Result<ArchiveBuildReport> BuildFamily(Env* env, const std::string& dir,
                                       const Family& family,
                                       const ArchiveOptions& options) {
  ArchiveBuilder builder(env, dir);
  for (size_t s = 0; s < family.names.size(); ++s) {
    MH_RETURN_IF_ERROR(
        builder.AddSnapshot(family.names[s], family.snapshots[s]));
  }
  return builder.Build(options);
}

/// Bitwise equality, not ApproxEquals: dedup must never change a single
/// stored bit.
void ExpectBitIdentical(const std::vector<NamedParam>& a,
                        const std::vector<NamedParam>& b,
                        const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].name, b[i].name) << context;
    const auto& da = a[i].value.data();
    const auto& db = b[i].value.data();
    ASSERT_EQ(da.size(), db.size()) << context << " " << a[i].name;
    EXPECT_EQ(
        std::memcmp(da.data(), db.data(), da.size() * sizeof(float)), 0)
        << context << " param " << a[i].name << " differs";
  }
}

void ExpectBitIdenticalMatrix(const FloatMatrix& a, const FloatMatrix& b,
                              const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(),
                        a.data().size() * sizeof(float)),
            0)
      << context;
}

// The headline differential: dedup on vs off with identical similarity
// settings on both sides. Every snapshot of a 9-model family retrieves
// byte-identically, progressive bounds agree plane for plane, and the
// dedup side stores strictly fewer chunk bytes.
TEST(DedupTest, FamilyRetrievesByteIdenticalWithDedupOnAndOff) {
  const Family family = MakeFamily(8, 4, 48, 64);
  MemEnv env;
  ArchiveOptions on;
  on.enable_dedup = true;
  ArchiveOptions off = on;
  off.enable_dedup = false;
  ASSERT_TRUE(on.enable_similarity_pairing == off.enable_similarity_pairing);
  auto report_on = BuildFamily(&env, "on", family, on);
  ASSERT_TRUE(report_on.ok()) << report_on.status().ToString();
  auto report_off = BuildFamily(&env, "off", family, off);
  ASSERT_TRUE(report_off.ok()) << report_off.status().ToString();

  // The logical encode is plan-identical; only physical placement differs.
  EXPECT_EQ(report_on->pipeline.compressed_bytes,
            report_off->pipeline.compressed_bytes);
  EXPECT_GT(report_on->pipeline.dedup_intra_hits, 0u);
  EXPECT_GT(report_on->pipeline.dedup_saved_bytes, 0u);
  EXPECT_EQ(report_off->pipeline.dedup_intra_hits, 0u);
  EXPECT_EQ(report_off->pipeline.dedup_saved_bytes, 0u);

  auto reader_on = ArchiveReader::Open(&env, "on");
  ASSERT_TRUE(reader_on.ok());
  auto reader_off = ArchiveReader::Open(&env, "off");
  ASSERT_TRUE(reader_off.ok());

  // Strictly fewer stored bytes, and the savings match the pipeline's.
  EXPECT_LT(reader_on->TotalStoredBytes(), reader_off->TotalStoredBytes());
  EXPECT_EQ(reader_off->TotalStoredBytes() - reader_on->TotalStoredBytes(),
            report_on->pipeline.dedup_saved_bytes);

  // Only the dedup build persists a chunk index, and it agrees with a
  // from-scratch rebuild of the committed manifest.
  EXPECT_TRUE(env.FileExists(JoinPath("on", ChunkIndex::kFileName)));
  EXPECT_FALSE(env.FileExists(JoinPath("off", ChunkIndex::kFileName)));
  auto index = ChunkIndex::Load(&env, "on");
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  auto rebuilt = RebuildChunkIndex(&env, "on");
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_EQ(index->size(), rebuilt->size());
  EXPECT_EQ(index->TotalRefs(), rebuilt->TotalRefs());

  const ArchiveDedupStats stats = reader_on->ComputeDedupStats();
  EXPECT_GT(stats.shared_refs, 0u);
  EXPECT_GT(stats.ratio(), 1.0);
  EXPECT_EQ(stats.plane_refs, index->TotalRefs());

  for (const std::string& name : family.names) {
    auto a = reader_on->RetrieveSnapshot(name);
    auto b = reader_off->RetrieveSnapshot(name);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ExpectBitIdentical(*a, *b, "exact " + name);
    for (int planes = 1; planes <= 4; ++planes) {
      auto ba = reader_on->RetrieveSnapshotBounds(name, planes);
      auto bb = reader_off->RetrieveSnapshotBounds(name, planes);
      ASSERT_TRUE(ba.ok()) << ba.status().ToString();
      ASSERT_TRUE(bb.ok()) << bb.status().ToString();
      ASSERT_EQ(ba->size(), bb->size());
      for (const auto& [param, interval] : *ba) {
        auto it = bb->find(param);
        ASSERT_NE(it, bb->end()) << param;
        const std::string context =
            name + "/" + param + " planes=" + std::to_string(planes);
        ExpectBitIdenticalMatrix(interval.lo(), it->second.lo(),
                                 "lo " + context);
        ExpectBitIdenticalMatrix(interval.hi(), it->second.hi(),
                                 "hi " + context);
      }
    }
  }
}

// With the delta plan held fixed (similarity pairing off on both sides,
// no lineage declared) every variant materializes independently without
// the index, so the on/off byte ratio is the honest dedup win. The CI
// smoke job gates the same number above 1.5x via bench_archival.
TEST(DedupTest, FixedPlanFamilyDedupRatioExceedsGate) {
  const Family family = MakeFamily(8, 4, 48, 64);
  MemEnv env;
  ArchiveOptions on;
  on.enable_dedup = true;
  on.enable_similarity_pairing = false;
  ArchiveOptions off = on;
  off.enable_dedup = false;
  ASSERT_TRUE(BuildFamily(&env, "on", family, on).ok());
  ASSERT_TRUE(BuildFamily(&env, "off", family, off).ok());
  auto reader_on = ArchiveReader::Open(&env, "on");
  ASSERT_TRUE(reader_on.ok());
  auto reader_off = ArchiveReader::Open(&env, "off");
  ASSERT_TRUE(reader_off.ok());
  const double ratio =
      static_cast<double>(reader_off->TotalStoredBytes()) /
      static_cast<double>(reader_on->TotalStoredBytes());
  EXPECT_GT(ratio, 1.5) << "dedup ratio regressed";
  // The per-archive accounting agrees with the two-archive measurement.
  const ArchiveDedupStats stats = reader_on->ComputeDedupStats();
  EXPECT_EQ(stats.logical_bytes, reader_off->TotalStoredBytes());
  EXPECT_EQ(stats.stored_bytes, reader_on->TotalStoredBytes());
  for (const std::string& name : family.names) {
    auto a = reader_on->RetrieveSnapshot(name);
    auto b = reader_off->RetrieveSnapshot(name);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectBitIdentical(*a, *b, name);
  }
}

// A second Build into the same archive directory reuses chunks from the
// prior generation through the persisted index instead of rewriting
// them, and the committed manifest references both generations' files.
TEST(DedupTest, SecondGenerationReusesPriorChunks) {
  Family family = MakeFamily(4, 4, 48, 64);
  MemEnv env;
  ArchiveOptions options;  // Dedup on by default.
  ASSERT_TRUE(BuildFamily(&env, "archive", family, options).ok());
  auto gen1 = ArchiveReader::Open(&env, "archive");
  ASSERT_TRUE(gen1.ok());
  const uint64_t gen1_stored = gen1->TotalStoredBytes();

  // One more fine-tune arrives; re-archive the whole family.
  Family grown = MakeFamily(5, 4, 48, 64);
  auto report = BuildFamily(&env, "archive", grown, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->pipeline.dedup_prior_hits, 0u);

  auto gen2 = ArchiveReader::Open(&env, "archive");
  ASSERT_TRUE(gen2.ok());
  EXPECT_GT(gen2->generation(), gen1->generation());
  const ArchiveDedupStats stats = gen2->ComputeDedupStats();
  EXPECT_GT(stats.cross_file_refs, 0u);
  bool references_gen1 = false;
  for (const std::string& name : gen2->data_files()) {
    if (name.find("chunks-1") != std::string::npos) references_gen1 = true;
  }
  EXPECT_TRUE(references_gen1) << "gen 2 should borrow gen 1 chunks";
  // Reuse means gen 2 appended less than a from-scratch family costs.
  EXPECT_LT(gen2->TotalStoredBytes(), gen1_stored + gen1_stored / 2);

  for (size_t s = 0; s < grown.names.size(); ++s) {
    auto params = gen2->RetrieveSnapshot(grown.names[s]);
    ASSERT_TRUE(params.ok()) << params.status().ToString();
    ExpectBitIdentical(*params, grown.snapshots[s], grown.names[s]);
  }
}

// Shared chunks under concurrent parallel retrieval: several threads
// pull overlapping snapshot sets through one reader (shared chunk cache,
// shared stores) while another reader works the same directory. Run
// under TSan in CI; assertions are on values, the interleaving is the
// point.
TEST(DedupTest, ConcurrentRetrievalOfSharedChunks) {
  const Family family = MakeFamily(8, 3, 32, 48);
  MemEnv env;
  ArchiveOptions options;
  ASSERT_TRUE(BuildFamily(&env, "archive", family, options).ok());
  auto reader = ArchiveReader::Open(&env, "archive");
  ASSERT_TRUE(reader.ok());
  ThreadPool pool(4);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        const std::string name =
            family.names[static_cast<size_t>((t + round) %
                                             family.names.size())];
        auto sets = reader->RetrieveSnapshotsParallel(
            {name, family.names[0]}, &pool, ParallelScheme::kShared);
        if (!sets.ok() || sets->size() != 2) {
          ++failures;
          continue;
        }
        const auto& expect =
            family.snapshots[static_cast<size_t>((t + round) %
                                                 family.names.size())];
        if ((*sets)[0].size() != expect.size()) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  // Full differential sweep after the race.
  for (size_t s = 0; s < family.names.size(); ++s) {
    auto params = reader->RetrieveSnapshot(family.names[s]);
    ASSERT_TRUE(params.ok());
    ExpectBitIdentical(*params, family.snapshots[s], family.names[s]);
  }
}

}  // namespace
}  // namespace modelhub
