#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"

namespace modelhub {
namespace {

// ------------------------------------------------------------- Histogram

TEST(HistogramTest, BucketBoundaries) {
  // buckets[0] = {0}; buckets[i] = [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 1);
  EXPECT_EQ(Histogram::BucketOf(2), 2);
  EXPECT_EQ(Histogram::BucketOf(3), 2);
  EXPECT_EQ(Histogram::BucketOf(4), 3);
  EXPECT_EQ(Histogram::BucketOf(7), 3);
  EXPECT_EQ(Histogram::BucketOf(8), 4);
  EXPECT_EQ(Histogram::BucketOf(1023), 10);
  EXPECT_EQ(Histogram::BucketOf(1024), 11);
  // Every non-overflow bucket's upper bound lands in its own bucket and
  // the next value crosses into the next bucket.
  for (int i = 1; i < Histogram::kNumBuckets - 1; ++i) {
    const uint64_t upper = Histogram::BucketUpperBound(i);
    EXPECT_EQ(Histogram::BucketOf(upper), i) << "bucket " << i;
    EXPECT_EQ(Histogram::BucketOf(upper + 1), i + 1) << "bucket " << i;
  }
}

TEST(HistogramTest, OverflowCollapsesIntoLastBucket) {
  const int last = Histogram::kNumBuckets - 1;
  EXPECT_EQ(Histogram::BucketOf(UINT64_MAX), last);
  EXPECT_EQ(Histogram::BucketOf(uint64_t{1} << 62), last);
  EXPECT_EQ(Histogram::BucketUpperBound(last), UINT64_MAX);

  Histogram histogram;
  histogram.Record(UINT64_MAX);
  histogram.Record(uint64_t{1} << 40);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.buckets[static_cast<size_t>(last)], 2u);
  EXPECT_EQ(snapshot.count, 2u);
}

TEST(HistogramTest, SnapshotCountSumAndMean) {
  Histogram histogram;
  histogram.Record(0);
  histogram.Record(10);
  histogram.Record(20);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 3u);
  EXPECT_EQ(snapshot.sum, 30u);
  EXPECT_DOUBLE_EQ(snapshot.Mean(), 10.0);
  uint64_t bucket_total = 0;
  for (uint64_t b : snapshot.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snapshot.count);
}

TEST(HistogramTest, MergeAccumulates) {
  Histogram a;
  Histogram b;
  a.Record(1);
  a.Record(100);
  b.Record(1);
  b.Record(1 << 20);
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.count, 4u);
  EXPECT_EQ(merged.sum, 2u + 100u + (1u << 20));
  EXPECT_EQ(merged.buckets[1], 2u);  // Both 1s.
  uint64_t bucket_total = 0;
  for (uint64_t bucket : merged.buckets) bucket_total += bucket;
  EXPECT_EQ(bucket_total, 4u);
  // Merging an empty snapshot (no buckets yet) into a populated one and
  // vice versa must not lose anything.
  HistogramSnapshot empty;
  empty.Merge(merged);
  EXPECT_EQ(empty.count, 4u);
  EXPECT_EQ(empty.buckets.size(), merged.buckets.size());
}

TEST(HistogramTest, ApproxPercentileWalksBuckets) {
  Histogram histogram;
  for (int i = 0; i < 99; ++i) histogram.Record(4);   // bucket [4,8)
  histogram.Record(1 << 16);                          // one slow outlier
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.ApproxPercentile(50), 7u);   // Upper bound of [4,8).
  EXPECT_EQ(snapshot.ApproxPercentile(99), 7u);
  EXPECT_EQ(snapshot.ApproxPercentile(100), (uint64_t{1} << 17) - 1);
  HistogramSnapshot empty;
  EXPECT_EQ(empty.ApproxPercentile(50), 0u);
}

TEST(HistogramTest, Reset) {
  Histogram histogram;
  histogram.Record(5);
  histogram.Reset();
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_EQ(snapshot.sum, 0u);
}

// -------------------------------------------------------------- Registry

TEST(MetricRegistryTest, StablePointersAndPerKindNamespaces) {
  MetricRegistry* registry = MetricRegistry::Global();
  Counter* counter = registry->GetCounter("test.registry.same");
  EXPECT_EQ(registry->GetCounter("test.registry.same"), counter);
  // Same name, different kind: a distinct instrument, not a collision.
  Gauge* gauge = registry->GetGauge("test.registry.same");
  Histogram* histogram = registry->GetHistogram("test.registry.same");
  counter->Add(3);
  gauge->Set(-7);
  histogram->Record(2);
  EXPECT_EQ(counter->value(), 3u);
  EXPECT_EQ(gauge->value(), -7);
  EXPECT_EQ(histogram->Snapshot().count, 1u);
}

TEST(MetricRegistryTest, SnapshotFindsAllKinds) {
  MetricRegistry* registry = MetricRegistry::Global();
  registry->GetCounter("test.snapshot.counter")->Add(11);
  registry->GetGauge("test.snapshot.gauge")->Set(-5);
  registry->GetHistogram("test.snapshot.histogram")->Record(1000);
  const MetricsSnapshot snapshot = registry->Snapshot();
  const MetricValue* counter = snapshot.Find("test.snapshot.counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->counter, 11u);
  const MetricValue* gauge = snapshot.Find("test.snapshot.gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->gauge, -5);
  const MetricValue* histogram = snapshot.Find("test.snapshot.histogram");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->histogram.count, 1u);
  // Sorted by name.
  for (size_t i = 1; i < snapshot.values.size(); ++i) {
    EXPECT_LE(snapshot.values[i - 1].name, snapshot.values[i].name);
  }
  // JSON mentions every section and the names.
  const std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("test.snapshot.counter"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricRegistryTest, MacroCachesLookup) {
  MH_COUNTER("test.macro.counter")->Add(2);
  MH_COUNTER("test.macro.counter")->Add(3);
  EXPECT_EQ(
      MetricRegistry::Global()->GetCounter("test.macro.counter")->value(),
      5u);
  MH_GAUGE("test.macro.gauge")->Set(9);
  MH_HISTOGRAM("test.macro.histogram")->Record(4);
  EXPECT_EQ(MetricRegistry::Global()->GetGauge("test.macro.gauge")->value(),
            9);
}

// Concurrent registration and updates across many threads: every
// increment must land exactly once, and registration must return the
// same pointer on every thread. Run under TSan in CI this also proves
// the striped registration and relaxed-atomic update paths race-free
// (the ChunkStoreStats counters use the identical pattern).
TEST(MetricRegistryTest, ConcurrentRegistrationAndUpdates) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  MetricRegistry* registry = MetricRegistry::Global();
  registry->GetCounter("test.concurrent.shared")->Reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([registry, t] {
      Counter* shared = registry->GetCounter("test.concurrent.shared");
      Counter* own = registry->GetCounter("test.concurrent.thread." +
                                          std::to_string(t));
      Histogram* histogram =
          registry->GetHistogram("test.concurrent.histogram");
      for (int i = 0; i < kIncrements; ++i) {
        shared->Increment();
        own->Increment();
        histogram->Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry->GetCounter("test.concurrent.shared")->value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry
                  ->GetCounter("test.concurrent.thread." + std::to_string(t))
                  ->value(),
              static_cast<uint64_t>(kIncrements));
  }
  EXPECT_GE(
      registry->GetHistogram("test.concurrent.histogram")->Snapshot().count,
      static_cast<uint64_t>(kThreads) * kIncrements);
}

// ----------------------------------------------------------------- Trace

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    recorder_ = TraceRecorder::Global();
    recorder_->SetCapacity(4096);
    recorder_->Clear();
    recorder_->SetEnabled(true);
  }
  void TearDown() override {
    recorder_->SetEnabled(false);
    recorder_->SetCapacity(4096);
    recorder_->Clear();
  }
  TraceRecorder* recorder_ = nullptr;
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  recorder_->SetEnabled(false);
  {
    TraceSpan span("test.disabled");
    EXPECT_FALSE(span.recording());
    span.Annotate("key", std::string("value"));
  }
  EXPECT_TRUE(recorder_->Snapshot().empty());
}

TEST_F(TraceTest, NestedSpansParentCorrectly) {
  {
    TraceSpan outer("test.outer");
    {
      TraceSpan middle("test.middle");
      TraceSpan inner("test.inner");
      inner.Annotate("depth", uint64_t{3});
    }
    TraceSpan sibling("test.sibling");
  }
  const std::vector<TraceEvent> spans = recorder_->Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Completion order: inner, middle, sibling, outer.
  EXPECT_EQ(spans[0].name, "test.inner");
  EXPECT_EQ(spans[1].name, "test.middle");
  EXPECT_EQ(spans[2].name, "test.sibling");
  EXPECT_EQ(spans[3].name, "test.outer");
  const TraceEvent& outer = spans[3];
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_EQ(spans[1].parent_id, outer.id);  // middle under outer
  EXPECT_EQ(spans[0].parent_id, spans[1].id);  // inner under middle
  EXPECT_EQ(spans[2].parent_id, outer.id);  // sibling under outer
  ASSERT_EQ(spans[0].annotations.size(), 1u);
  EXPECT_EQ(spans[0].annotations[0].first, "depth");
  EXPECT_EQ(spans[0].annotations[0].second, "3");
}

TEST_F(TraceTest, RingWrapsAndCountsDrops) {
  recorder_->SetCapacity(8);
  for (int i = 0; i < 20; ++i) {
    TraceSpan span(i % 2 == 0 ? "test.even" : "test.odd");
  }
  const std::vector<TraceEvent> spans = recorder_->Snapshot();
  EXPECT_EQ(spans.size(), 8u);
  EXPECT_EQ(recorder_->total_spans(), 20u);
  EXPECT_EQ(recorder_->dropped_spans(), 12u);
  // Oldest-first: ids strictly increase and the survivors are the last 8.
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LT(spans[i - 1].id, spans[i].id);
  }
}

TEST_F(TraceTest, ConcurrentWritersKeepPerThreadNesting) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan outer("test.thread.outer");
        TraceSpan inner("test.thread.inner");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(recorder_->total_spans(),
            static_cast<uint64_t>(kThreads) * kSpansPerThread * 2);
  // Every inner span's parent is an outer span from the same thread.
  std::vector<TraceEvent> spans = recorder_->Snapshot();
  for (const TraceEvent& span : spans) {
    if (span.name != "test.thread.inner") continue;
    for (const TraceEvent& candidate : spans) {
      if (candidate.id != span.parent_id) continue;
      EXPECT_EQ(candidate.name, "test.thread.outer");
      EXPECT_EQ(candidate.thread_id, span.thread_id);
    }
  }
}

TEST_F(TraceTest, JsonExports) {
  {
    TraceSpan span("test.json");
    span.Annotate("bytes", uint64_t{42});
  }
  const std::string json = recorder_->ToJson();
  EXPECT_NE(json.find("\"test.json\""), std::string::npos);
  EXPECT_NE(json.find("\"total\":1"), std::string::npos);
  const std::string chrome = recorder_->ToChromeTraceJson();
  EXPECT_EQ(chrome.front(), '[');
  EXPECT_NE(chrome.find(']'), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"bytes\":\"42\""), std::string::npos);
}

}  // namespace
}  // namespace modelhub
