#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/slice.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace modelhub {
namespace {

// ------------------------------------------------------------- Histogram

TEST(HistogramTest, BucketBoundaries) {
  // buckets[0] = {0}; buckets[i] = [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 1);
  EXPECT_EQ(Histogram::BucketOf(2), 2);
  EXPECT_EQ(Histogram::BucketOf(3), 2);
  EXPECT_EQ(Histogram::BucketOf(4), 3);
  EXPECT_EQ(Histogram::BucketOf(7), 3);
  EXPECT_EQ(Histogram::BucketOf(8), 4);
  EXPECT_EQ(Histogram::BucketOf(1023), 10);
  EXPECT_EQ(Histogram::BucketOf(1024), 11);
  // Every non-overflow bucket's upper bound lands in its own bucket and
  // the next value crosses into the next bucket.
  for (int i = 1; i < Histogram::kNumBuckets - 1; ++i) {
    const uint64_t upper = Histogram::BucketUpperBound(i);
    EXPECT_EQ(Histogram::BucketOf(upper), i) << "bucket " << i;
    EXPECT_EQ(Histogram::BucketOf(upper + 1), i + 1) << "bucket " << i;
  }
}

TEST(HistogramTest, OverflowCollapsesIntoLastBucket) {
  const int last = Histogram::kNumBuckets - 1;
  EXPECT_EQ(Histogram::BucketOf(UINT64_MAX), last);
  EXPECT_EQ(Histogram::BucketOf(uint64_t{1} << 62), last);
  EXPECT_EQ(Histogram::BucketUpperBound(last), UINT64_MAX);

  Histogram histogram;
  histogram.Record(UINT64_MAX);
  histogram.Record(uint64_t{1} << 40);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.buckets[static_cast<size_t>(last)], 2u);
  EXPECT_EQ(snapshot.count, 2u);
}

TEST(HistogramTest, SnapshotCountSumAndMean) {
  Histogram histogram;
  histogram.Record(0);
  histogram.Record(10);
  histogram.Record(20);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 3u);
  EXPECT_EQ(snapshot.sum, 30u);
  EXPECT_DOUBLE_EQ(snapshot.Mean(), 10.0);
  uint64_t bucket_total = 0;
  for (uint64_t b : snapshot.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snapshot.count);
}

TEST(HistogramTest, MergeAccumulates) {
  Histogram a;
  Histogram b;
  a.Record(1);
  a.Record(100);
  b.Record(1);
  b.Record(1 << 20);
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.count, 4u);
  EXPECT_EQ(merged.sum, 2u + 100u + (1u << 20));
  EXPECT_EQ(merged.buckets[1], 2u);  // Both 1s.
  uint64_t bucket_total = 0;
  for (uint64_t bucket : merged.buckets) bucket_total += bucket;
  EXPECT_EQ(bucket_total, 4u);
  // Merging an empty snapshot (no buckets yet) into a populated one and
  // vice versa must not lose anything.
  HistogramSnapshot empty;
  empty.Merge(merged);
  EXPECT_EQ(empty.count, 4u);
  EXPECT_EQ(empty.buckets.size(), merged.buckets.size());
}

TEST(HistogramTest, ApproxPercentileWalksBuckets) {
  Histogram histogram;
  for (int i = 0; i < 99; ++i) histogram.Record(4);   // bucket [4,8)
  histogram.Record(1 << 16);                          // one slow outlier
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.ApproxPercentile(50), 7u);   // Upper bound of [4,8).
  EXPECT_EQ(snapshot.ApproxPercentile(99), 7u);
  EXPECT_EQ(snapshot.ApproxPercentile(100), (uint64_t{1} << 17) - 1);
  HistogramSnapshot empty;
  EXPECT_EQ(empty.ApproxPercentile(50), 0u);
}

TEST(HistogramTest, Reset) {
  Histogram histogram;
  histogram.Record(5);
  histogram.Reset();
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_EQ(snapshot.sum, 0u);
}

// -------------------------------------------------------------- Registry

TEST(MetricRegistryTest, StablePointersAndPerKindNamespaces) {
  MetricRegistry* registry = MetricRegistry::Global();
  Counter* counter = registry->GetCounter("test.registry.same");
  EXPECT_EQ(registry->GetCounter("test.registry.same"), counter);
  // Same name, different kind: a distinct instrument, not a collision.
  Gauge* gauge = registry->GetGauge("test.registry.same");
  Histogram* histogram = registry->GetHistogram("test.registry.same");
  counter->Add(3);
  gauge->Set(-7);
  histogram->Record(2);
  EXPECT_EQ(counter->value(), 3u);
  EXPECT_EQ(gauge->value(), -7);
  EXPECT_EQ(histogram->Snapshot().count, 1u);
}

TEST(MetricRegistryTest, SnapshotFindsAllKinds) {
  MetricRegistry* registry = MetricRegistry::Global();
  registry->GetCounter("test.snapshot.counter")->Add(11);
  registry->GetGauge("test.snapshot.gauge")->Set(-5);
  registry->GetHistogram("test.snapshot.histogram")->Record(1000);
  const MetricsSnapshot snapshot = registry->Snapshot();
  const MetricValue* counter = snapshot.Find("test.snapshot.counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->counter, 11u);
  const MetricValue* gauge = snapshot.Find("test.snapshot.gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->gauge, -5);
  const MetricValue* histogram = snapshot.Find("test.snapshot.histogram");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->histogram.count, 1u);
  // Sorted by name.
  for (size_t i = 1; i < snapshot.values.size(); ++i) {
    EXPECT_LE(snapshot.values[i - 1].name, snapshot.values[i].name);
  }
  // JSON mentions every section and the names.
  const std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("test.snapshot.counter"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricRegistryTest, MacroCachesLookup) {
  MH_COUNTER("test.macro.counter")->Add(2);
  MH_COUNTER("test.macro.counter")->Add(3);
  EXPECT_EQ(
      MetricRegistry::Global()->GetCounter("test.macro.counter")->value(),
      5u);
  MH_GAUGE("test.macro.gauge")->Set(9);
  MH_HISTOGRAM("test.macro.histogram")->Record(4);
  EXPECT_EQ(MetricRegistry::Global()->GetGauge("test.macro.gauge")->value(),
            9);
}

// Concurrent registration and updates across many threads: every
// increment must land exactly once, and registration must return the
// same pointer on every thread. Run under TSan in CI this also proves
// the striped registration and relaxed-atomic update paths race-free
// (the ChunkStoreStats counters use the identical pattern).
TEST(MetricRegistryTest, ConcurrentRegistrationAndUpdates) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  MetricRegistry* registry = MetricRegistry::Global();
  registry->GetCounter("test.concurrent.shared")->Reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([registry, t] {
      Counter* shared = registry->GetCounter("test.concurrent.shared");
      Counter* own = registry->GetCounter("test.concurrent.thread." +
                                          std::to_string(t));
      Histogram* histogram =
          registry->GetHistogram("test.concurrent.histogram");
      for (int i = 0; i < kIncrements; ++i) {
        shared->Increment();
        own->Increment();
        histogram->Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry->GetCounter("test.concurrent.shared")->value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry
                  ->GetCounter("test.concurrent.thread." + std::to_string(t))
                  ->value(),
              static_cast<uint64_t>(kIncrements));
  }
  EXPECT_GE(
      registry->GetHistogram("test.concurrent.histogram")->Snapshot().count,
      static_cast<uint64_t>(kThreads) * kIncrements);
}

// ----------------------------------------------------------- Prometheus

TEST(PrometheusTest, GoldenTextRendering) {
  // Hand-built snapshot -> exact exposition text: a counter, a (negative)
  // gauge and a histogram whose pow2 buckets {le 0: 1, [1,2): 0, [2,4): 2,
  // [4,8): 1} must render cumulatively with dots mapped to underscores.
  MetricsSnapshot snapshot;
  MetricValue counter;
  counter.name = "server.requests.count";
  counter.kind = MetricValue::Kind::kCounter;
  counter.counter = 7;
  MetricValue gauge;
  gauge.name = "server.queue.depth";
  gauge.kind = MetricValue::Kind::kGauge;
  gauge.gauge = -2;
  MetricValue histogram;
  histogram.name = "server.op.ping.us";
  histogram.kind = MetricValue::Kind::kHistogram;
  histogram.histogram.buckets = {1, 0, 2, 1};
  histogram.histogram.count = 4;
  histogram.histogram.sum = 13;
  snapshot.values = {histogram, gauge, counter};  // Pre-sorted by name.

  const std::string expected =
      "# TYPE server_op_ping_us histogram\n"
      "server_op_ping_us_bucket{le=\"0\"} 1\n"
      "server_op_ping_us_bucket{le=\"1\"} 1\n"
      "server_op_ping_us_bucket{le=\"3\"} 3\n"
      "server_op_ping_us_bucket{le=\"7\"} 4\n"
      "server_op_ping_us_bucket{le=\"+Inf\"} 4\n"
      "server_op_ping_us_sum 13\n"
      "server_op_ping_us_count 4\n"
      "# TYPE server_queue_depth gauge\n"
      "server_queue_depth -2\n"
      "# TYPE server_requests_count counter\n"
      "server_requests_count 7\n";
  EXPECT_EQ(snapshot.ToPrometheusText(), expected);
}

TEST(PrometheusTest, RegistryRoundTripParses) {
  MetricRegistry* registry = MetricRegistry::Global();
  registry->GetCounter("test.prom.counter")->Add(1);
  registry->GetHistogram("test.prom.histogram")->Record(100);
  const std::string text = registry->ToPrometheusText();
  EXPECT_NE(text.find("# TYPE test_prom_counter counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_histogram histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_histogram_bucket{le=\"+Inf\"}"),
            std::string::npos);
  // Every non-comment line is "name[{labels}] value".
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
  }
}

TEST(PrometheusTest, LabelInjectionAndTypeDedup) {
  const std::string text =
      "# TYPE up gauge\n"
      "up 1\n"
      "# TYPE req_us histogram\n"
      "req_us_bucket{le=\"+Inf\"} 3\n"
      "req_us_sum 9\n"
      "req_us_count 3\n";
  std::string out;
  std::set<std::string> seen_types;
  AppendPrometheusWithLabel(&out, text, "node=\"r\"", &seen_types);
  AppendPrometheusWithLabel(&out, text, "node=\"b\"", &seen_types);
  // Bare samples gain a label block; labeled samples gain a first label.
  EXPECT_NE(out.find("up{node=\"r\"} 1"), std::string::npos);
  EXPECT_NE(out.find("up{node=\"b\"} 1"), std::string::npos);
  EXPECT_NE(out.find("req_us_bucket{node=\"r\",le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(out.find("req_us_bucket{node=\"b\",le=\"+Inf\"} 3"),
            std::string::npos);
  // Each family is typed exactly once even though both nodes declared it.
  size_t count = 0;
  for (size_t pos = out.find("# TYPE up gauge");
       pos != std::string::npos;
       pos = out.find("# TYPE up gauge", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

// ----------------------------------------------------------------- Trace

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    recorder_ = TraceRecorder::Global();
    recorder_->SetCapacity(4096);
    recorder_->Clear();
    recorder_->SetEnabled(true);
  }
  void TearDown() override {
    recorder_->SetEnabled(false);
    recorder_->SetCapacity(4096);
    recorder_->Clear();
  }
  TraceRecorder* recorder_ = nullptr;
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  recorder_->SetEnabled(false);
  {
    TraceSpan span("test.disabled");
    EXPECT_FALSE(span.recording());
    span.Annotate("key", std::string("value"));
  }
  EXPECT_TRUE(recorder_->Snapshot().empty());
}

TEST_F(TraceTest, NestedSpansParentCorrectly) {
  {
    TraceSpan outer("test.outer");
    {
      TraceSpan middle("test.middle");
      TraceSpan inner("test.inner");
      inner.Annotate("depth", uint64_t{3});
    }
    TraceSpan sibling("test.sibling");
  }
  const std::vector<TraceEvent> spans = recorder_->Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Completion order: inner, middle, sibling, outer.
  EXPECT_EQ(spans[0].name, "test.inner");
  EXPECT_EQ(spans[1].name, "test.middle");
  EXPECT_EQ(spans[2].name, "test.sibling");
  EXPECT_EQ(spans[3].name, "test.outer");
  const TraceEvent& outer = spans[3];
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_EQ(spans[1].parent_id, outer.id);  // middle under outer
  EXPECT_EQ(spans[0].parent_id, spans[1].id);  // inner under middle
  EXPECT_EQ(spans[2].parent_id, outer.id);  // sibling under outer
  ASSERT_EQ(spans[0].annotations.size(), 1u);
  EXPECT_EQ(spans[0].annotations[0].first, "depth");
  EXPECT_EQ(spans[0].annotations[0].second, "3");
}

TEST_F(TraceTest, RingWrapsAndCountsDrops) {
  recorder_->SetCapacity(8);
  for (int i = 0; i < 20; ++i) {
    TraceSpan span(i % 2 == 0 ? "test.even" : "test.odd");
  }
  const std::vector<TraceEvent> spans = recorder_->Snapshot();
  EXPECT_EQ(spans.size(), 8u);
  EXPECT_EQ(recorder_->total_spans(), 20u);
  EXPECT_EQ(recorder_->dropped_spans(), 12u);
  // Oldest-first: ids strictly increase and the survivors are the last 8.
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LT(spans[i - 1].id, spans[i].id);
  }
}

TEST_F(TraceTest, ConcurrentWritersKeepPerThreadNesting) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan outer("test.thread.outer");
        TraceSpan inner("test.thread.inner");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(recorder_->total_spans(),
            static_cast<uint64_t>(kThreads) * kSpansPerThread * 2);
  // Every inner span's parent is an outer span from the same thread.
  std::vector<TraceEvent> spans = recorder_->Snapshot();
  for (const TraceEvent& span : spans) {
    if (span.name != "test.thread.inner") continue;
    for (const TraceEvent& candidate : spans) {
      if (candidate.id != span.parent_id) continue;
      EXPECT_EQ(candidate.name, "test.thread.outer");
      EXPECT_EQ(candidate.thread_id, span.thread_id);
    }
  }
}

TEST_F(TraceTest, JsonExports) {
  {
    TraceSpan span("test.json");
    span.Annotate("bytes", uint64_t{42});
  }
  const std::string json = recorder_->ToJson();
  EXPECT_NE(json.find("\"test.json\""), std::string::npos);
  EXPECT_NE(json.find("\"total\":1"), std::string::npos);
  const std::string chrome = recorder_->ToChromeTraceJson();
  EXPECT_EQ(chrome.front(), '[');
  EXPECT_NE(chrome.find(']'), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"bytes\":\"42\""), std::string::npos);
}

// ------------------------------------------------ Distributed trace context

TEST_F(TraceTest, SampledContextRecordsWhenRecorderDisabled) {
  // The edge's sampling decision outranks the local enable switch.
  recorder_->SetEnabled(false);
  TraceContext ctx;
  ctx.trace_hi = 0xAA;
  ctx.trace_lo = 0xBB;
  ctx.sampled = true;
  {
    ScopedTraceContext scope(ctx);
    TraceSpan span("test.ctx.sampled");
    EXPECT_TRUE(span.recording());
  }
  const std::vector<TraceEvent> spans = recorder_->Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].trace_hi, 0xAAu);
  EXPECT_EQ(spans[0].trace_lo, 0xBBu);
}

TEST_F(TraceTest, SampledOutContextSuppressesSpans) {
  // The inverse: sampled=false suppresses spans even though the recorder
  // is globally enabled.
  TraceContext ctx;
  ctx.trace_hi = 1;
  ctx.sampled = false;
  {
    ScopedTraceContext scope(ctx);
    TraceSpan span("test.ctx.sampled_out");
    EXPECT_FALSE(span.recording());
    TraceSpan nested("test.ctx.nested");
    EXPECT_FALSE(nested.recording());
  }
  EXPECT_TRUE(recorder_->Snapshot().empty());
  EXPECT_EQ(recorder_->total_spans(), 0u);
}

TEST_F(TraceTest, RemoteParentAdoptedByRootSpans) {
  TraceContext ctx;
  ctx.trace_lo = 5;
  ctx.sampled = true;
  ctx.parent_span = 4242;  // The remote caller's span id.
  {
    ScopedTraceContext scope(ctx);
    TraceSpan root("test.ctx.root");
    TraceSpan child("test.ctx.child");
  }
  const std::vector<TraceEvent> spans = recorder_->Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const TraceEvent& root = spans[1];
  const TraceEvent& child = spans[0];
  EXPECT_EQ(root.name, "test.ctx.root");
  EXPECT_EQ(root.parent_id, 4242u);       // Chains to the remote span.
  EXPECT_EQ(child.parent_id, root.id);    // Local nesting still wins.
  // The remote parent must not leak into spans opened after the scope.
  EXPECT_EQ(CurrentSpanId(), 0u);
  {
    TraceSpan after("test.ctx.after");
  }
  EXPECT_EQ(recorder_->Snapshot().back().parent_id, 0u);
}

TEST_F(TraceTest, DroppedEventsCounterCountsOverwrites) {
  Counter* dropped = MetricRegistry::Global()->GetCounter(
      "trace.dropped_events");
  const uint64_t before = dropped->value();
  recorder_->SetCapacity(4);
  for (int i = 0; i < 10; ++i) {
    TraceSpan span("test.drop");
  }
  EXPECT_EQ(dropped->value() - before, 6u);
}

TEST_F(TraceTest, DeadlineExpiryAnnotatesSpans) {
  TraceContext ctx;
  ctx.trace_hi = 9;
  ctx.sampled = true;
  ctx.has_deadline = true;
  ctx.deadline = std::chrono::steady_clock::now() -
                 std::chrono::milliseconds(1);  // Already past.
  {
    ScopedTraceContext scope(ctx);
    TraceSpan span("test.ctx.late");
  }
  const std::vector<TraceEvent> spans = recorder_->Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  bool annotated = false;
  for (const auto& kv : spans[0].annotations) {
    if (kv.first == "after_deadline" && kv.second == "true") {
      annotated = true;
    }
  }
  EXPECT_TRUE(annotated);
}

TEST_F(TraceTest, ThreadPoolPropagatesContext) {
  TraceContext ctx;
  ctx.trace_lo = 77;
  ctx.sampled = true;
  ThreadPool pool(2);
  {
    ScopedTraceContext scope(ctx);
    TraceSpan root("test.pool.root");
    WaitGroup done;
    done.Add(1);
    pool.Schedule([&done] {
      // Scoped so the span is recorded before Done() releases the waiter;
      // signaling first races the destructor against Snapshot() below.
      { TraceSpan worker("test.pool.worker"); }
      done.Done();
    });
    done.Wait();
  }
  const std::vector<TraceEvent> spans = recorder_->Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const TraceEvent& worker = spans[0];
  const TraceEvent& root = spans[1];
  EXPECT_EQ(worker.name, "test.pool.worker");
  EXPECT_EQ(worker.trace_lo, 77u);
  // The pooled span parents to the span that scheduled it, even though it
  // ran on another thread.
  EXPECT_EQ(worker.parent_id, root.id);
}

TEST_F(TraceTest, DumpSerializationRoundTrip) {
  TraceContext ctx;
  ctx.trace_hi = 0x1111;
  ctx.sampled = true;
  {
    ScopedTraceContext scope(ctx);
    TraceSpan span("test.dump.span");
    span.Annotate("key", std::string("value"));
  }
  const TraceNodeDump dump = CollectTraceDump("modelhubd@127.0.0.1:1234");
  EXPECT_EQ(dump.node, "modelhubd@127.0.0.1:1234");
  EXPECT_GT(dump.pid, 0u);
  EXPECT_GT(dump.origin_unix_us, 0u);
  ASSERT_EQ(dump.events.size(), 1u);

  std::string wire;
  AppendTraceDump(&wire, dump);
  AppendTraceDump(&wire, dump);  // Sections are self-delimiting.
  std::vector<TraceNodeDump> parsed;
  ASSERT_TRUE(ParseTraceDumps(Slice(wire), &parsed).ok());
  ASSERT_EQ(parsed.size(), 2u);
  for (const TraceNodeDump& copy : parsed) {
    EXPECT_EQ(copy.node, dump.node);
    EXPECT_EQ(copy.pid, dump.pid);
    EXPECT_EQ(copy.origin_unix_us, dump.origin_unix_us);
    ASSERT_EQ(copy.events.size(), 1u);
    EXPECT_EQ(copy.events[0].name, "test.dump.span");
    EXPECT_EQ(copy.events[0].trace_hi, 0x1111u);
    ASSERT_EQ(copy.events[0].annotations.size(), 1u);
    EXPECT_EQ(copy.events[0].annotations[0].first, "key");
    EXPECT_EQ(copy.events[0].annotations[0].second, "value");
  }

  // Truncated input is a clean error, not a crash or a silent partial.
  std::vector<TraceNodeDump> partial;
  EXPECT_FALSE(
      ParseTraceDumps(Slice(wire.data(), wire.size() - 3), &partial).ok());
}

TEST_F(TraceTest, MergeEmitsDistinctPidsAndWireGaps) {
  // Two hand-built node dumps: the "router" span 10 fathers the
  // "backend" span 20 across the process boundary.
  TraceNodeDump router;
  router.node = "router@h:1";
  router.pid = 100;
  router.origin_unix_us = 1000000;
  TraceEvent forward;
  forward.id = 10;
  forward.name = "router.forward";
  forward.start_us = 50;
  forward.duration_us = 400;
  forward.trace_hi = 0xF00D;
  router.events.push_back(forward);

  TraceNodeDump backend;
  backend.node = "modelhubd@h:2";
  backend.pid = 200;
  backend.origin_unix_us = 1000100;
  TraceEvent request;
  request.id = 20;
  request.parent_id = 10;  // Lives in the router dump.
  request.name = "server.request";
  request.start_us = 150;
  request.duration_us = 200;
  request.trace_hi = 0xF00D;
  backend.events.push_back(request);

  const std::string merged = MergeTraceDumps({router, backend});
  EXPECT_NE(merged.find("\"process_name\""), std::string::npos);
  EXPECT_NE(merged.find("router@h:1"), std::string::npos);
  EXPECT_NE(merged.find("modelhubd@h:2"), std::string::npos);
  EXPECT_NE(merged.find("\"pid\":100"), std::string::npos);
  EXPECT_NE(merged.find("\"pid\":200"), std::string::npos);
  // The cross-process parent/child edge appears as a wire.gap span from
  // the router's span start to the backend's span start:
  // (1000100+150) - (1000000+50) = 200us.
  EXPECT_NE(merged.find("\"wire.gap\""), std::string::npos);
  EXPECT_NE(merged.find("\"dur\":200"), std::string::npos);
  EXPECT_NE(merged.find("\"from\":\"router@h:1\""), std::string::npos);
  EXPECT_NE(merged.find("\"to\":\"modelhubd@h:2\""), std::string::npos);
}

}  // namespace
}  // namespace modelhub
