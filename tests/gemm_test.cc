#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/random.h"
#include "nn/gemm.h"

namespace modelhub {
namespace {

std::vector<float> RandomVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.UniformFloat(-1, 1);
  return v;
}

using GemmCase = std::tuple<int, int, int>;  // m, k, n.

class GemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmTest, AllVariantsMatchNaiveReference) {
  const auto& [m, k, n] = GetParam();
  const auto a = RandomVec(static_cast<size_t>(m * k), 1);
  const auto b = RandomVec(static_cast<size_t>(k * n), 2);
  // Transposed operand layouts for NT / TN.
  const auto b_t = RandomVec(static_cast<size_t>(n * k), 3);   // [n x k].
  const auto a_t = RandomVec(static_cast<size_t>(k * m), 4);   // [k x m].
  const auto c0 = RandomVec(static_cast<size_t>(m * n), 5);    // Accumulator.

  // NN.
  {
    std::vector<float> c = c0;
    GemmNN(a.data(), b.data(), c.data(), m, k, n);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        float expected = c0[static_cast<size_t>(i * n + j)];
        for (int p = 0; p < k; ++p) {
          expected += a[static_cast<size_t>(i * k + p)] *
                      b[static_cast<size_t>(p * n + j)];
        }
        EXPECT_NEAR(c[static_cast<size_t>(i * n + j)], expected, 1e-4f);
      }
    }
  }
  // NT: C += A * B^T with B stored [n x k].
  {
    std::vector<float> c = c0;
    GemmNT(a.data(), b_t.data(), c.data(), m, k, n);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        float expected = c0[static_cast<size_t>(i * n + j)];
        for (int p = 0; p < k; ++p) {
          expected += a[static_cast<size_t>(i * k + p)] *
                      b_t[static_cast<size_t>(j * k + p)];
        }
        EXPECT_NEAR(c[static_cast<size_t>(i * n + j)], expected, 1e-4f);
      }
    }
  }
  // TN: C += A^T * B with A stored [k x m].
  {
    std::vector<float> c = c0;
    GemmTN(a_t.data(), b.data(), c.data(), m, k, n);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        float expected = c0[static_cast<size_t>(i * n + j)];
        for (int p = 0; p < k; ++p) {
          expected += a_t[static_cast<size_t>(p * m + i)] *
                      b[static_cast<size_t>(p * n + j)];
        }
        EXPECT_NEAR(c[static_cast<size_t>(i * n + j)], expected, 1e-4f);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmTest,
                         ::testing::Values(GemmCase{1, 1, 1},
                                           GemmCase{3, 4, 5},
                                           GemmCase{8, 8, 8},
                                           GemmCase{16, 5, 9},
                                           GemmCase{5, 31, 2},
                                           GemmCase{17, 13, 19}));

using ColCase = std::tuple<int, int, int, int>;  // c, size, kernel/stride/pad packed below.

class Im2ColTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(Im2ColTest, AdjointIdentityHolds) {
  // <Im2Col(x), y> == <x, Col2Im(y)> for all x, y — the defining property
  // that makes the GEMM backward pass correct.
  const auto& [c, size, kernel, stride, pad] = GetParam();
  const int oh = (size + 2 * pad - kernel) / stride + 1;
  if (oh <= 0) {
    GTEST_SKIP() << "degenerate shape";
  }
  const int64_t patch = static_cast<int64_t>(c) * kernel * kernel;
  const int64_t out_area = static_cast<int64_t>(oh) * oh;
  const auto x = RandomVec(static_cast<size_t>(c * size * size), 11);
  const auto y = RandomVec(static_cast<size_t>(patch * out_area), 12);

  std::vector<float> cols(static_cast<size_t>(patch * out_area), 0.0f);
  Im2Col(x.data(), c, size, size, kernel, stride, pad, oh, oh, cols.data());
  double lhs = 0.0;
  for (size_t i = 0; i < cols.size(); ++i) lhs += cols[i] * y[i];

  std::vector<float> scattered(x.size(), 0.0f);
  Col2ImAccumulate(y.data(), c, size, size, kernel, stride, pad, oh, oh,
                   scattered.data());
  double rhs = 0.0;
  for (size_t i = 0; i < x.size(); ++i) rhs += x[i] * scattered[i];

  EXPECT_NEAR(lhs, rhs, 1e-3 * (1.0 + std::abs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Im2ColTest,
    ::testing::Values(std::tuple{1, 4, 3, 1, 0}, std::tuple{2, 8, 3, 1, 1},
                      std::tuple{3, 9, 5, 2, 2}, std::tuple{1, 6, 1, 1, 0},
                      std::tuple{2, 7, 3, 2, 0}, std::tuple{4, 5, 5, 1, 2}));

TEST(Im2ColTest, ValuesLandWhereExpected) {
  // 1-channel 3x3 input, 2x2 kernel, stride 1, no pad: 4 columns of 4.
  const std::vector<float> x = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> cols(4 * 4, -1.0f);
  Im2Col(x.data(), 1, 3, 3, 2, 1, 0, 2, 2, cols.data());
  // Row layout: (kh,kw) major; column = output position (oh*2+ow).
  // (0,0): inputs at (oh,ow): 1,2,4,5.
  EXPECT_EQ(cols[0], 1);
  EXPECT_EQ(cols[1], 2);
  EXPECT_EQ(cols[2], 4);
  EXPECT_EQ(cols[3], 5);
  // (1,1): 5,6,8,9.
  EXPECT_EQ(cols[12], 5);
  EXPECT_EQ(cols[13], 6);
  EXPECT_EQ(cols[14], 8);
  EXPECT_EQ(cols[15], 9);
}

TEST(Im2ColTest, PaddingYieldsZeros) {
  const std::vector<float> x = {1, 2, 3, 4};
  // 2x2 input, 3x3 kernel, pad 1 -> 2x2 output... (2+2-3)/1+1 = 2.
  std::vector<float> cols(9 * 4, -1.0f);
  Im2Col(x.data(), 1, 2, 2, 3, 1, 1, 2, 2, cols.data());
  // The (0,0) tap at output (0,0) reads input (-1,-1): zero.
  EXPECT_EQ(cols[0], 0.0f);
  // The (1,1) tap at output (0,0) reads input (0,0): 1.
  EXPECT_EQ(cols[4 * 4 + 0], 1.0f);
}

}  // namespace
}  // namespace modelhub
