#include <gtest/gtest.h>

#include "common/env.h"
#include "common/fault_env.h"
#include "data/dataset.h"
#include "hub/hub.h"
#include "nn/trainer.h"
#include "nn/zoo.h"

namespace modelhub {
namespace {

void CommitOne(Repository* repo, const std::string& name) {
  const Dataset ds = MakeBlobDataset(64, 4, 12, 0.05f, name.size());
  NetworkDef def = MiniVgg(4, 12, 1);
  def.set_name(name);
  auto net = Network::Create(def);
  ASSERT_TRUE(net.ok());
  Rng rng(1);
  net->InitializeWeights(&rng);
  TrainOptions options;
  options.iterations = 20;
  options.snapshot_every = 10;
  auto trained = TrainNetwork(&*net, ds, options);
  ASSERT_TRUE(trained.ok());
  CommitRequest request;
  request.name = name;
  request.network = def;
  request.snapshots = trained->snapshots;
  request.log = trained->log;
  ASSERT_TRUE(repo->Commit(request).ok());
}

TEST(CopyTreeTest, CopiesNestedTrees) {
  MemEnv env;
  ASSERT_TRUE(env.CreateDirs("a/b/c").ok());
  ASSERT_TRUE(env.WriteFile("a/top.txt", "1").ok());
  ASSERT_TRUE(env.WriteFile("a/b/mid.txt", "2").ok());
  ASSERT_TRUE(env.WriteFile("a/b/c/leaf.txt", "3").ok());
  ASSERT_TRUE(CopyTree(&env, "a", "copy").ok());
  EXPECT_EQ(*env.ReadFile("copy/top.txt"), "1");
  EXPECT_EQ(*env.ReadFile("copy/b/mid.txt"), "2");
  EXPECT_EQ(*env.ReadFile("copy/b/c/leaf.txt"), "3");
  EXPECT_TRUE(CopyTree(&env, "missing", "x").IsNotFound());
}

class HubTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto repo = Repository::Init(&env_, "local/alexrepo");
    ASSERT_TRUE(repo.ok());
    CommitOne(&*repo, "alexnet_v1");
    CommitOne(&*repo, "alexnet_v2");
    auto other = Repository::Init(&env_, "local/vggrepo");
    ASSERT_TRUE(other.ok());
    CommitOne(&*other, "vgg_tiny");
  }

  MemEnv env_;
};

TEST_F(HubTest, PublishSearchPull) {
  ModelHubService hub(&env_, "hub");
  ASSERT_TRUE(hub.Publish("local/alexrepo", "alice", "alexnets").ok());
  ASSERT_TRUE(hub.Publish("local/vggrepo", "bob", "vggs").ok());

  auto repos = hub.ListRepositories();
  ASSERT_TRUE(repos.ok());
  EXPECT_EQ(*repos,
            (std::vector<std::string>{"alice/alexnets", "bob/vggs"}));

  auto hits = hub.Search("alexnet%");
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 2u);
  EXPECT_EQ((*hits)[0].user, "alice");
  EXPECT_EQ((*hits)[0].version_name, "alexnet_v1");
  EXPECT_EQ((*hits)[0].num_snapshots, 2);

  auto all = hub.Search("");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);

  // Pull to a new location and use the models.
  auto pulled = hub.Pull("alice", "alexnets", "local/clone");
  ASSERT_TRUE(pulled.ok());
  auto list = pulled->List();
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), 2u);
  auto params = pulled->GetSnapshotParams("alexnet_v2");
  EXPECT_TRUE(params.ok());
}

TEST_F(HubTest, PublishValidatesSource) {
  ModelHubService hub(&env_, "hub");
  EXPECT_TRUE(hub.Publish("local/nonexistent", "alice", "x").IsNotFound());
  EXPECT_TRUE(
      hub.Publish("local/alexrepo", "", "x").IsInvalidArgument());
}

TEST_F(HubTest, PullGuardsAndMisses) {
  ModelHubService hub(&env_, "hub");
  ASSERT_TRUE(hub.Publish("local/alexrepo", "alice", "alexnets").ok());
  EXPECT_TRUE(
      hub.Pull("alice", "nothere", "local/c2").status().IsNotFound());
  // Pulling over an existing repository is refused.
  EXPECT_TRUE(hub.Pull("alice", "alexnets", "local/alexrepo")
                  .status()
                  .IsAlreadyExists());
}

TEST_F(HubTest, RepublishOverwrites) {
  ModelHubService hub(&env_, "hub");
  ASSERT_TRUE(hub.Publish("local/alexrepo", "alice", "alexnets").ok());
  // Add a version locally and republish.
  auto repo = Repository::Open(&env_, "local/alexrepo");
  ASSERT_TRUE(repo.ok());
  CommitOne(&*repo, "alexnet_v3");
  ASSERT_TRUE(hub.Publish("local/alexrepo", "alice", "alexnets").ok());
  auto hits = hub.Search("alexnet_v3");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
}

TEST(CopyTreeTest, RemovesPartialDestinationOnFailure) {
  MemEnv mem;
  FaultInjectionEnv env(&mem);
  ASSERT_TRUE(env.CreateDirs("src/staging").ok());
  ASSERT_TRUE(env.WriteFile("src/catalog.bin", "catalog").ok());
  ASSERT_TRUE(env.WriteFile("src/staging/params.bin", "weights").ok());

  // Reads of staging fail mid-copy; writes and deletes still work, so the
  // cleanup pass can (and must) tear the partial destination back down.
  env.FailReadsMatching("staging/params");
  const Status copied = CopyTree(&env, "src", "dst");
  EXPECT_TRUE(copied.IsIOError()) << copied.ToString();
  EXPECT_FALSE(env.DirExists("dst"))
      << "partial destination tree survived a failed copy";

  // With the fault cleared the same copy succeeds into the same place.
  env.Reset();
  ASSERT_TRUE(CopyTree(&env, "src", "dst").ok());
  EXPECT_EQ(*env.ReadFile("dst/staging/params.bin"), "weights");
}

TEST(CopyTreeTest, PreservesPreexistingDestinationOnFailure) {
  MemEnv mem;
  FaultInjectionEnv env(&mem);
  ASSERT_TRUE(env.CreateDirs("src").ok());
  ASSERT_TRUE(env.WriteFile("src/a.bin", "new").ok());
  ASSERT_TRUE(env.WriteFile("src/b.bin", "new").ok());
  // The destination already hosts a good previous copy (re-publish).
  ASSERT_TRUE(env.CreateDirs("dst").ok());
  ASSERT_TRUE(env.WriteFile("dst/a.bin", "old").ok());

  env.FailReadsMatching("src/b.bin");
  EXPECT_FALSE(CopyTree(&env, "src", "dst").ok());
  // The previous copy must not be deleted out from under its users.
  EXPECT_TRUE(env.DirExists("dst"));
}

TEST_F(HubTest, FailedPublishLeavesNoPartialHostedRepo) {
  // A publish that dies halfway (a staging read fails mid-CopyTree) must
  // not leave a truncated hosted repository that looks pullable.
  FaultInjectionEnv faulty(&env_);
  ModelHubService hub(&faulty, "hub");
  faulty.FailReadsMatching("staging");
  const Status published = hub.Publish("local/alexrepo", "alice", "alexnets");
  EXPECT_FALSE(published.ok());
  EXPECT_FALSE(faulty.DirExists("hub/alice/alexnets"));

  // And the same publish succeeds once the fault clears.
  faulty.Reset();
  ASSERT_TRUE(hub.Publish("local/alexrepo", "alice", "alexnets").ok());
  EXPECT_TRUE(faulty.DirExists("hub/alice/alexnets"));
}

TEST_F(HubTest, CompactPublishArchivesThroughParallelPipeline) {
  ModelHubService hub(&env_, "hub");
  PublishOptions options;
  options.compact = true;
  options.archive.budget_alpha = 2.0;
  options.archive.archive_threads = 8;
  const MetricsSnapshot before = hub.Metrics();
  const MetricValue* compacts = before.Find("hub.publish.compact");
  const uint64_t compact_base = compacts ? compacts->counter : 0;

  ASSERT_TRUE(
      hub.Publish("local/alexrepo", "alice", "alexnets", options).ok());

  // The compaction ran against the source repository, so both the source
  // and the hosted copy are fully archived.
  auto source = Repository::Open(&env_, "local/alexrepo");
  ASSERT_TRUE(source.ok());
  auto source_list = source->List();
  ASSERT_TRUE(source_list.ok());
  for (const auto& info : *source_list) EXPECT_TRUE(info.archived);
  EXPECT_TRUE(env_.DirExists("hub/alice/alexnets/pas"));

  compacts = hub.Metrics().Find("hub.publish.compact");
  ASSERT_NE(compacts, nullptr);
  EXPECT_EQ(compacts->counter, compact_base + 1);

  // The hosted (archived) copy still pulls and serves parameters.
  auto pulled = hub.Pull("alice", "alexnets", "local/compact_clone");
  ASSERT_TRUE(pulled.ok());
  auto params = pulled->GetSnapshotParams("alexnet_v2");
  ASSERT_TRUE(params.ok());
  EXPECT_FALSE(params->empty());

  // Republishing with --compact when everything is archived is a no-op
  // compaction (no second archive pass, publish still succeeds).
  ASSERT_TRUE(
      hub.Publish("local/alexrepo", "alice", "alexnets", options).ok());
  compacts = hub.Metrics().Find("hub.publish.compact");
  ASSERT_NE(compacts, nullptr);
  EXPECT_EQ(compacts->counter, compact_base + 1);
}

TEST_F(HubTest, MetricsSnapshotCountsOperations) {
  ModelHubService hub(&env_, "hub");
  const MetricsSnapshot before = hub.Metrics();
  const MetricValue* publishes = before.Find("hub.publish.count");
  const uint64_t publish_base = publishes ? publishes->counter : 0;
  const MetricValue* searches = before.Find("hub.search.count");
  const uint64_t search_base = searches ? searches->counter : 0;

  ASSERT_TRUE(hub.Publish("local/alexrepo", "alice", "alexnets").ok());
  ASSERT_TRUE(hub.Search("alexnet%").ok());
  ASSERT_TRUE(hub.Search("vgg%").ok());
  ASSERT_TRUE(hub.Pull("alice", "alexnets", "local/metrics_clone").ok());

  const MetricsSnapshot after = hub.Metrics();
  publishes = after.Find("hub.publish.count");
  ASSERT_NE(publishes, nullptr);
  EXPECT_EQ(publishes->counter, publish_base + 1);
  searches = after.Find("hub.search.count");
  ASSERT_NE(searches, nullptr);
  EXPECT_EQ(searches->counter, search_base + 2);
  const MetricValue* pulls = after.Find("hub.pull.count");
  ASSERT_NE(pulls, nullptr);
  EXPECT_GE(pulls->counter, 1u);
}

}  // namespace
}  // namespace modelhub
