// Property-based sweeps over the layer kernels: behavioral invariants
// checked across randomly sampled configurations rather than hand-picked
// cases.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/random.h"
#include "nn/network.h"
#include "nn/network_def.h"

namespace modelhub {
namespace {

/// Builds a one-layer network (plus a full head so it is a valid chain is
/// unnecessary — a single node is already source and sink).
Result<Network> SingleLayerNet(LayerDef layer, int64_t c, int64_t h,
                               int64_t w) {
  NetworkDef def("single", c, h, w);
  MH_RETURN_IF_ERROR(def.Append(std::move(layer)));
  return Network::Create(def);
}

Tensor RandomInput(int64_t n, int64_t c, int64_t h, int64_t w, uint64_t seed,
                   float lo = -1.0f, float hi = 1.0f) {
  Rng rng(seed);
  Tensor t(n, c, h, w);
  for (auto& v : t.data()) v = rng.UniformFloat(lo, hi);
  return t;
}

// ------------------------------------------------------ conv shape sweep

using ConvCase = std::tuple<int /*k*/, int /*stride*/, int /*pad*/,
                            int /*in_size*/>;

class ConvShapeTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvShapeTest, OutputShapeMatchesFormula) {
  const auto& [k, stride, pad, in_size] = GetParam();
  const int64_t expected = (in_size + 2 * pad - k) / stride + 1;
  if (expected <= 0) {
    EXPECT_FALSE(
        SingleLayerNet(MakeConv("c", 3, k, stride, pad), 2, in_size, in_size)
            .ok());
    return;
  }
  auto net =
      SingleLayerNet(MakeConv("c", 3, k, stride, pad), 2, in_size, in_size);
  ASSERT_TRUE(net.ok());
  Rng rng(1);
  net->InitializeWeights(&rng);
  Tensor out;
  ASSERT_TRUE(
      net->Forward(RandomInput(2, 2, in_size, in_size, 2), &out).ok());
  EXPECT_EQ(out.c(), 3);
  EXPECT_EQ(out.h(), expected);
  EXPECT_EQ(out.w(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvShapeTest,
    ::testing::Combine(::testing::Values(1, 3, 5, 7),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(0, 1, 2),
                       ::testing::Values(6, 9, 12)));

// ---------------------------------------------------------- conv algebra

TEST(ConvPropertyTest, LinearInInputWithZeroBias) {
  auto net = SingleLayerNet(MakeConv("c", 4, 3, 1, 1), 2, 8, 8);
  ASSERT_TRUE(net.ok());
  Rng rng(5);
  net->InitializeWeights(&rng);  // Bias stays zero after He init.
  const Tensor x = RandomInput(2, 2, 8, 8, 7);
  Tensor scaled = x;
  const float alpha = 2.5f;
  for (auto& v : scaled.data()) v *= alpha;
  Tensor fx;
  Tensor f_scaled;
  ASSERT_TRUE(net->Forward(x, &fx).ok());
  ASSERT_TRUE(net->Forward(scaled, &f_scaled).ok());
  for (size_t i = 0; i < fx.data().size(); ++i) {
    EXPECT_NEAR(f_scaled.data()[i], alpha * fx.data()[i],
                1e-4f * (1 + std::fabs(fx.data()[i])));
  }
}

TEST(ConvPropertyTest, AdditiveInInputWithZeroBias) {
  auto net = SingleLayerNet(MakeConv("c", 3, 3, 1, 0), 1, 6, 6);
  ASSERT_TRUE(net.ok());
  Rng rng(9);
  net->InitializeWeights(&rng);
  const Tensor a = RandomInput(1, 1, 6, 6, 11);
  const Tensor b = RandomInput(1, 1, 6, 6, 13);
  Tensor sum = a;
  for (size_t i = 0; i < sum.data().size(); ++i) {
    sum.data()[i] += b.data()[i];
  }
  Tensor fa;
  Tensor fb;
  Tensor fsum;
  ASSERT_TRUE(net->Forward(a, &fa).ok());
  ASSERT_TRUE(net->Forward(b, &fb).ok());
  ASSERT_TRUE(net->Forward(sum, &fsum).ok());
  for (size_t i = 0; i < fsum.data().size(); ++i) {
    EXPECT_NEAR(fsum.data()[i], fa.data()[i] + fb.data()[i], 1e-4f);
  }
}

// --------------------------------------------------------------- pooling

TEST(PoolPropertyTest, MaxPoolDominatesAvgPool) {
  // For any input, per-window max >= per-window average.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    auto max_net =
        SingleLayerNet(MakePool("p", PoolMode::kMax, 2, 2), 3, 8, 8);
    auto avg_net =
        SingleLayerNet(MakePool("p", PoolMode::kAvg, 2, 2), 3, 8, 8);
    ASSERT_TRUE(max_net.ok());
    ASSERT_TRUE(avg_net.ok());
    const Tensor x = RandomInput(2, 3, 8, 8, seed);
    Tensor max_out;
    Tensor avg_out;
    ASSERT_TRUE(max_net->Forward(x, &max_out).ok());
    ASSERT_TRUE(avg_net->Forward(x, &avg_out).ok());
    for (size_t i = 0; i < max_out.data().size(); ++i) {
      EXPECT_GE(max_out.data()[i], avg_out.data()[i] - 1e-6f);
    }
  }
}

TEST(PoolPropertyTest, MaxPoolMonotoneInInput) {
  auto net = SingleLayerNet(MakePool("p", PoolMode::kMax, 3, 2), 2, 9, 9);
  ASSERT_TRUE(net.ok());
  const Tensor x = RandomInput(1, 2, 9, 9, 21);
  Tensor bumped = x;
  Rng rng(22);
  for (auto& v : bumped.data()) v += rng.UniformFloat(0.0f, 0.5f);
  Tensor fx;
  Tensor f_bumped;
  ASSERT_TRUE(net->Forward(x, &fx).ok());
  ASSERT_TRUE(net->Forward(bumped, &f_bumped).ok());
  for (size_t i = 0; i < fx.data().size(); ++i) {
    EXPECT_GE(f_bumped.data()[i], fx.data()[i] - 1e-6f);
  }
}

// --------------------------------------------------------------- softmax

TEST(SoftmaxPropertyTest, NormalizedAndShiftInvariant) {
  NetworkDef def("s", 5, 1, 1);
  ASSERT_TRUE(def.Append(MakeActivation("prob", LayerKind::kSoftmax)).ok());
  auto net = Network::Create(def);
  ASSERT_TRUE(net.ok());
  const Tensor x = RandomInput(3, 5, 1, 1, 31, -4.0f, 4.0f);
  Tensor shifted = x;
  for (auto& v : shifted.data()) v += 7.0f;  // Same shift on every logit.
  Tensor px;
  Tensor p_shifted;
  ASSERT_TRUE(net->Forward(x, &px).ok());
  ASSERT_TRUE(net->Forward(shifted, &p_shifted).ok());
  for (int64_t n = 0; n < 3; ++n) {
    double sum = 0.0;
    for (int64_t j = 0; j < 5; ++j) {
      const float p = px.At(n, j, 0, 0);
      EXPECT_GE(p, 0.0f);
      EXPECT_LE(p, 1.0f);
      sum += p;
      EXPECT_NEAR(p, p_shifted.At(n, j, 0, 0), 1e-5f);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

// --------------------------------------------------------------- dropout

TEST(DropoutPropertyTest, TrainModePreservesExpectationRoughly) {
  // Inverted dropout: E[output] == input. Check the batch mean over a
  // large tensor stays close.
  NetworkDef def("d", 4, 16, 16);
  ASSERT_TRUE(def.Append(MakeDropout("drop", 0.5f)).ok());
  ASSERT_TRUE(def.Append(MakeFull("fc", 2)).ok());
  auto net = Network::Create(def);
  ASSERT_TRUE(net.ok());
  Rng rng(41);
  net->InitializeWeights(&rng);
  Tensor input(4, 4, 16, 16);
  input.data().assign(input.data().size(), 1.0f);
  // Run a training step purely to exercise train-mode dropout via the
  // public API; the loss value is irrelevant.
  auto loss = net->ForwardBackward(input, {0, 1, 0, 1}, &rng);
  ASSERT_TRUE(loss.ok());
  // Inference mode: dropout must be the identity.
  Tensor out1;
  Tensor out2;
  ASSERT_TRUE(net->Forward(input, &out1).ok());
  ASSERT_TRUE(net->Forward(input, &out2).ok());
  for (size_t i = 0; i < out1.data().size(); ++i) {
    EXPECT_FLOAT_EQ(out1.data()[i], out2.data()[i]);  // Deterministic.
  }
}

// -------------------------------------------------------------------- LRN

TEST(LrnPropertyTest, PreservesSignAndShrinksMagnitude) {
  // With k >= 1 the normalizer is >= 1, so |y| <= |x| and sign(y)=sign(x).
  auto net = SingleLayerNet(MakeLRN("n", 5, 0.5f, 0.75f, 1.0f), 6, 4, 4);
  ASSERT_TRUE(net.ok());
  const Tensor x = RandomInput(2, 6, 4, 4, 51, -2.0f, 2.0f);
  Tensor y;
  ASSERT_TRUE(net->Forward(x, &y).ok());
  for (size_t i = 0; i < x.data().size(); ++i) {
    EXPECT_LE(std::fabs(y.data()[i]), std::fabs(x.data()[i]) + 1e-6f);
    if (std::fabs(x.data()[i]) > 1e-6f) {
      EXPECT_GE(y.data()[i] * x.data()[i], 0.0f);  // Same sign.
    }
  }
}

// -------------------------------------------------------------- formality

TEST(ForwardPropertyTest, DeterministicAcrossCalls) {
  NetworkDef def("det", 1, 10, 10);
  ASSERT_TRUE(def.Append(MakeConv("c1", 4, 3, 1, 1)).ok());
  ASSERT_TRUE(def.Append(MakeActivation("r", LayerKind::kReLU)).ok());
  ASSERT_TRUE(def.Append(MakePool("p", PoolMode::kMax, 2, 2)).ok());
  ASSERT_TRUE(def.Append(MakeFull("f", 3)).ok());
  auto net = Network::Create(def);
  ASSERT_TRUE(net.ok());
  Rng rng(61);
  net->InitializeWeights(&rng);
  const Tensor x = RandomInput(3, 1, 10, 10, 62);
  Tensor a;
  Tensor b;
  ASSERT_TRUE(net->Forward(x, &a).ok());
  ASSERT_TRUE(net->Forward(x, &b).ok());
  for (size_t i = 0; i < a.data().size(); ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(ForwardPropertyTest, BatchEqualsPerSampleForward) {
  // Running a batch must equal running each sample alone (no cross-batch
  // leakage in any kernel).
  NetworkDef def("batch", 2, 8, 8);
  ASSERT_TRUE(def.Append(MakeConv("c1", 3, 3, 1, 1)).ok());
  ASSERT_TRUE(def.Append(MakeLRN("n", 3)).ok());
  ASSERT_TRUE(def.Append(MakePool("p", PoolMode::kAvg, 2, 2)).ok());
  ASSERT_TRUE(def.Append(MakeFull("f", 4)).ok());
  ASSERT_TRUE(def.Append(MakeActivation("prob", LayerKind::kSoftmax)).ok());
  auto net = Network::Create(def);
  ASSERT_TRUE(net.ok());
  Rng rng(71);
  net->InitializeWeights(&rng);
  const Tensor batch = RandomInput(4, 2, 8, 8, 72);
  Tensor batch_out;
  ASSERT_TRUE(net->Forward(batch, &batch_out).ok());
  const int64_t ss = batch.SampleSize();
  for (int64_t n = 0; n < 4; ++n) {
    Tensor single(1, 2, 8, 8);
    std::copy(batch.data().begin() + n * ss,
              batch.data().begin() + (n + 1) * ss, single.data().begin());
    Tensor single_out;
    ASSERT_TRUE(net->Forward(single, &single_out).ok());
    for (int64_t j = 0; j < single_out.SampleSize(); ++j) {
      EXPECT_NEAR(single_out.data()[static_cast<size_t>(j)],
                  batch_out.data()[static_cast<size_t>(
                      n * single_out.SampleSize() + j)],
                  1e-6f);
    }
  }
}

}  // namespace
}  // namespace modelhub
