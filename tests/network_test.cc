#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/random.h"
#include "data/dataset.h"
#include "nn/interval_eval.h"
#include "nn/network.h"
#include "nn/trainer.h"
#include "nn/zoo.h"

namespace modelhub {
namespace {

/// Tiny chain covering conv, pool (max & avg), LRN and both nonlinearity
/// families, used for gradient verification.
NetworkDef GradCheckNet() {
  NetworkDef def("gradcheck", 2, 8, 8);
  EXPECT_TRUE(def.Append(MakeConv("conv1", 3, 3, 1, 1)).ok());
  EXPECT_TRUE(def.Append(MakeActivation("relu1", LayerKind::kReLU)).ok());
  EXPECT_TRUE(def.Append(MakeLRN("norm1", 3)).ok());
  EXPECT_TRUE(def.Append(MakePool("pool1", PoolMode::kMax, 2, 2)).ok());
  EXPECT_TRUE(def.Append(MakeConv("conv2", 4, 3)).ok());
  EXPECT_TRUE(def.Append(MakeActivation("tanh1", LayerKind::kTanh)).ok());
  EXPECT_TRUE(def.Append(MakePool("pool2", PoolMode::kAvg, 2, 2)).ok());
  EXPECT_TRUE(def.Append(MakeFull("fc1", 6)).ok());
  EXPECT_TRUE(def.Append(MakeActivation("sig1", LayerKind::kSigmoid)).ok());
  EXPECT_TRUE(def.Append(MakeFull("fc2", 4)).ok());
  EXPECT_TRUE(def.Append(MakeActivation("prob", LayerKind::kSoftmax)).ok());
  return def;
}

TEST(NetworkTest, CreateAllocatesWeights) {
  auto net = Network::Create(MiniLeNet());
  ASSERT_TRUE(net.ok());
  const auto params = net->GetParameters();
  // conv1, conv2, ip1, ip2: W and b each.
  EXPECT_EQ(params.size(), 8u);
  EXPECT_EQ(params[0].name, "conv1.W");
  EXPECT_EQ(params[1].name, "conv1.b");
  auto expected = MiniLeNet().ParameterCount();
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(net->ParameterCount(), *expected);
}

TEST(NetworkTest, SetParametersRoundTrip) {
  auto net = Network::Create(MiniLeNet());
  ASSERT_TRUE(net.ok());
  Rng rng(3);
  net->InitializeWeights(&rng);
  auto params = net->GetParameters();
  auto net2 = Network::Create(MiniLeNet());
  ASSERT_TRUE(net2.ok());
  ASSERT_TRUE(net2->SetParameters(params).ok());
  auto params2 = net2->GetParameters();
  ASSERT_EQ(params.size(), params2.size());
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_TRUE(params[i].value.BitEquals(params2[i].value)) << params[i].name;
  }
}

TEST(NetworkTest, SetParametersValidation) {
  auto net = Network::Create(MiniLeNet());
  ASSERT_TRUE(net.ok());
  EXPECT_TRUE(net->SetParameters({{"nosuch.W", FloatMatrix(1, 1)}})
                  .IsNotFound());
  EXPECT_TRUE(net->SetParameters({{"conv1.W", FloatMatrix(1, 1)}})
                  .IsInvalidArgument());
  EXPECT_TRUE(net->SetParameters({{"badname", FloatMatrix(1, 1)}})
                  .IsInvalidArgument());
}

TEST(NetworkTest, ForwardShapeAndSoftmaxNormalization) {
  auto net = Network::Create(MiniLeNet(10, 20));
  ASSERT_TRUE(net.ok());
  Rng rng(1);
  net->InitializeWeights(&rng);
  Tensor input(3, 1, 20, 20);
  for (auto& v : input.data()) v = rng.UniformFloat(0, 1);
  Tensor out;
  ASSERT_TRUE(net->Forward(input, &out).ok());
  EXPECT_EQ(out.n(), 3);
  EXPECT_EQ(out.SampleSize(), 10);
  for (int64_t n = 0; n < 3; ++n) {
    double sum = 0.0;
    for (int64_t j = 0; j < 10; ++j) {
      const float p = out.At(n, j, 0, 0);
      EXPECT_GE(p, 0.0f);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST(NetworkTest, ForwardRejectsWrongShape) {
  auto net = Network::Create(MiniLeNet(10, 20));
  ASSERT_TRUE(net.ok());
  Tensor bad(1, 1, 9, 9);
  Tensor out;
  EXPECT_TRUE(net->Forward(bad, &out).IsInvalidArgument());
}

// The critical correctness test: analytic gradients from backprop must
// match central-difference numerical gradients across every layer type.
TEST(NetworkTest, GradientsMatchNumericalDifferentiation) {
  auto net_result = Network::Create(GradCheckNet());
  ASSERT_TRUE(net_result.ok());
  Network& net = *net_result;
  Rng rng(7);
  net.InitializeWeights(&rng);

  Tensor input(2, 2, 8, 8);
  for (auto& v : input.data()) v = rng.UniformFloat(-1, 1);
  const std::vector<int> labels = {1, 3};

  Rng dropout_rng(0);
  auto loss = net.ForwardBackward(input, labels, &dropout_rng);
  ASSERT_TRUE(loss.ok());
  const auto grads = net.GetGradients();
  auto params = net.GetParameters();

  const float eps = 1e-2f;
  int checked = 0;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    FloatMatrix& m = params[pi].value;
    // Probe a few entries per parameter.
    for (int probe = 0; probe < 4; ++probe) {
      const int64_t idx =
          static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(m.size())));
      const float original = m.data()[idx];

      m.data()[idx] = original + eps;
      ASSERT_TRUE(net.SetParameters({params[pi]}).ok());
      Rng r1(0);
      auto loss_plus = net.ForwardBackward(input, labels, &r1);
      ASSERT_TRUE(loss_plus.ok());

      m.data()[idx] = original - eps;
      ASSERT_TRUE(net.SetParameters({params[pi]}).ok());
      Rng r2(0);
      auto loss_minus = net.ForwardBackward(input, labels, &r2);
      ASSERT_TRUE(loss_minus.ok());

      m.data()[idx] = original;
      ASSERT_TRUE(net.SetParameters({params[pi]}).ok());

      const double numeric = (*loss_plus - *loss_minus) / (2.0 * eps);
      const double analytic = grads[pi].value.data()[idx];
      const double scale =
          std::max({std::fabs(numeric), std::fabs(analytic), 1e-3});
      EXPECT_NEAR(analytic, numeric, 0.15 * scale)
          << params[pi].name << "[" << idx << "]";
      ++checked;
    }
  }
  EXPECT_GE(checked, 30);
}

TEST(NetworkTest, TrainingReducesLossAndReachesHighAccuracy) {
  const Dataset ds = MakeBlobDataset(256, 4, 12, 0.05f, 11);
  NetworkDef def = MiniVgg(4, 12, 1);
  auto net = Network::Create(def);
  ASSERT_TRUE(net.ok());
  Rng rng(5);
  net->InitializeWeights(&rng);

  TrainOptions options;
  options.iterations = 120;
  options.batch_size = 16;
  options.base_learning_rate = 0.1f;
  options.snapshot_every = 40;
  options.log_every = 10;
  auto result = TrainNetwork(&*net, ds, options);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->log.size(), 2u);
  EXPECT_LT(result->log.back().loss, result->log.front().loss);
  EXPECT_GT(result->final_accuracy, 0.9);
  // Snapshots at 40, 80, 120.
  EXPECT_EQ(result->snapshots.size(), 3u);
  EXPECT_EQ(result->snapshots[0].iteration, 40);
  EXPECT_EQ(result->snapshots.back().iteration, 120);
}

TEST(NetworkTest, AdjacentSnapshotsAreSimilarAcrossTraining) {
  // The statistical property PAS delta encoding relies on (Sec. IV-B):
  // parameters of nearby checkpoints are close, while two independently
  // initialized trainings are not.
  const Dataset ds = MakeBlobDataset(128, 4, 12, 0.05f, 13);
  auto train_once = [&](uint64_t seed) {
    auto net = Network::Create(MiniVgg(4, 12, 1));
    EXPECT_TRUE(net.ok());
    Rng rng(seed);
    net->InitializeWeights(&rng);
    TrainOptions options;
    options.iterations = 60;
    options.snapshot_every = 20;
    options.seed = seed;
    auto result = TrainNetwork(&*net, ds, options);
    EXPECT_TRUE(result.ok());
    return result->snapshots;
  };
  const auto run_a = train_once(1);
  const auto run_b = train_once(2);

  auto distance = [](const std::vector<NamedParam>& a,
                     const std::vector<NamedParam>& b) {
    double sum = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      auto diff = a[i].value.Sub(b[i].value);
      EXPECT_TRUE(diff.ok());
      sum += diff->L2Norm();
    }
    return sum;
  };
  const double adjacent = distance(run_a[1].params, run_a[2].params);
  const double across = distance(run_a[2].params, run_b[2].params);
  EXPECT_LT(adjacent, across * 0.5);
}

TEST(NetworkTest, DropoutRequiresRngOnlyInTraining) {
  NetworkDef def("drop", 1, 4, 4);
  ASSERT_TRUE(def.Append(MakeFull("fc", 4)).ok());
  ASSERT_TRUE(def.Append(MakeDropout("d", 0.5f)).ok());
  ASSERT_TRUE(def.Append(MakeFull("out", 2)).ok());
  auto net = Network::Create(def);
  ASSERT_TRUE(net.ok());
  Rng rng(1);
  net->InitializeWeights(&rng);
  Tensor input(1, 1, 4, 4);
  Tensor out;
  // Inference: dropout is identity, no Rng needed.
  EXPECT_TRUE(net->Forward(input, &out).ok());
  // Training without an Rng is an error.
  EXPECT_TRUE(
      net->ForwardBackward(input, {0}, nullptr).status().IsInvalidArgument());
}

// ------------------------------------------------------------- Intervals

TEST(IntervalEvalTest, ExactBoundsGiveDegenerateIntervalsMatchingForward) {
  auto net = Network::Create(MiniLeNet(10, 20));
  ASSERT_TRUE(net.ok());
  Rng rng(9);
  net->InitializeWeights(&rng);
  Tensor input(2, 1, 20, 20);
  for (auto& v : input.data()) v = rng.UniformFloat(0, 1);

  IntervalEvaluator evaluator(&*net);
  auto intervals = evaluator.Forward(input, {});
  ASSERT_TRUE(intervals.ok());
  // With zero-width weight intervals the output intervals are (nearly)
  // degenerate and the midpoint argmax must match Predict.
  auto predicted = net->Predict(input);
  ASSERT_TRUE(predicted.ok());
  for (int64_t n = 0; n < 2; ++n) {
    const auto& row = (*intervals)[static_cast<size_t>(n)];
    int best = 0;
    for (size_t j = 1; j < row.size(); ++j) {
      if (row[j].lo > row[static_cast<size_t>(best)].lo) {
        best = static_cast<int>(j);
      }
    }
    EXPECT_EQ(best, (*predicted)[static_cast<size_t>(n)]);
    for (const Interval& iv : row) {
      EXPECT_LE(iv.Width(), 1e-4f);
    }
  }
}

TEST(IntervalEvalTest, SoundnessUnderRandomWeightPerturbation) {
  // Property: for weights drawn anywhere inside the declared bounds, the
  // true forward outputs must lie inside the interval outputs. This is the
  // guarantee Lemma 4 builds on.
  NetworkDef def = GradCheckNet();
  auto net = Network::Create(def);
  ASSERT_TRUE(net.ok());
  Rng rng(31);
  net->InitializeWeights(&rng);
  Tensor input(2, 2, 8, 8);
  for (auto& v : input.data()) v = rng.UniformFloat(-1, 1);

  // Bounds: each weight w gets [w - delta, w + delta].
  const float delta = 0.02f;
  std::map<std::string, IntervalMatrix> bounds;
  auto params = net->GetParameters();
  for (const auto& param : params) {
    FloatMatrix lo = param.value;
    FloatMatrix hi = param.value;
    for (auto& v : lo.data()) v -= delta;
    for (auto& v : hi.data()) v += delta;
    auto im = IntervalMatrix::FromBounds(std::move(lo), std::move(hi));
    ASSERT_TRUE(im.ok());
    bounds.emplace(param.name, *im);
  }
  IntervalEvaluator evaluator(&*net);
  auto intervals = evaluator.Forward(input, bounds);
  ASSERT_TRUE(intervals.ok());

  // Sample 10 random weight settings inside the bounds.
  for (int trial = 0; trial < 10; ++trial) {
    auto perturbed = params;
    for (auto& param : perturbed) {
      for (auto& v : param.value.data()) {
        v += rng.UniformFloat(-delta, delta);
      }
    }
    auto net2 = Network::Create(def);
    ASSERT_TRUE(net2.ok());
    ASSERT_TRUE(net2->SetParameters(perturbed).ok());
    Tensor out;
    ASSERT_TRUE(net2->Forward(input, &out).ok());
    // The chain ends in softmax which the evaluator skips, so compare at
    // logits: recreate by removing softmax via a sliced def? Simpler:
    // compare argmax containment — true label's logit interval must
    // contain the realized probability ordering. Strongest cheap check:
    // realized argmax class's interval upper bound must be >= realized
    // ordering... Instead compare against logits net.
    NetworkDef logits_def;
    {
      auto sliced = def.Slice("conv1", "fc2");
      ASSERT_TRUE(sliced.ok());
      logits_def = *sliced;
    }
    auto logits_net = Network::Create(logits_def);
    ASSERT_TRUE(logits_net.ok());
    ASSERT_TRUE(logits_net->SetParameters(perturbed).ok());
    Tensor logits;
    ASSERT_TRUE(logits_net->Forward(input, &logits).ok());
    for (int64_t n = 0; n < 2; ++n) {
      for (int64_t j = 0; j < 4; ++j) {
        const Interval& iv =
            (*intervals)[static_cast<size_t>(n)][static_cast<size_t>(j)];
        const float v = logits.At(n, j, 0, 0);
        EXPECT_GE(v, iv.lo - 1e-3f) << "n=" << n << " j=" << j;
        EXPECT_LE(v, iv.hi + 1e-3f) << "n=" << n << " j=" << j;
      }
    }
  }
}

TEST(IntervalEvalTest, DeterminedTopLabel) {
  // Separated intervals: class 2 determined.
  std::vector<Interval> outputs = {Interval(0.0f, 0.1f), Interval(0.2f, 0.3f),
                                   Interval(0.5f, 0.9f), Interval(0.1f, 0.4f)};
  EXPECT_EQ(IntervalEvaluator::DeterminedTopLabel(outputs), 2);
  // Overlap between best and runner-up: undetermined.
  outputs[3] = Interval(0.1f, 0.6f);
  EXPECT_EQ(IntervalEvaluator::DeterminedTopLabel(outputs), -1);
  EXPECT_EQ(IntervalEvaluator::DeterminedTopLabel({}), -1);
}

TEST(IntervalEvalTest, TopKDetermined) {
  const std::vector<Interval> outputs = {
      Interval(0.8f, 0.9f), Interval(0.6f, 0.7f), Interval(0.4f, 0.5f),
      Interval(0.1f, 0.2f), Interval(0.0f, 0.05f)};
  EXPECT_TRUE(IntervalEvaluator::TopKDetermined(outputs, 1));
  EXPECT_TRUE(IntervalEvaluator::TopKDetermined(outputs, 3));
  // k >= n is trivially determined.
  EXPECT_TRUE(IntervalEvaluator::TopKDetermined(outputs, 5));
  // Overlapping boundary between rank 2 and 3.
  const std::vector<Interval> overlap = {
      Interval(0.8f, 0.9f), Interval(0.45f, 0.7f), Interval(0.4f, 0.5f),
      Interval(0.1f, 0.2f)};
  EXPECT_TRUE(IntervalEvaluator::TopKDetermined(overlap, 1));
  EXPECT_FALSE(IntervalEvaluator::TopKDetermined(overlap, 2));
}

TEST(IntervalEvalTest, WiderBoundsAreLessDetermined) {
  auto net = Network::Create(MiniLeNet(10, 20));
  ASSERT_TRUE(net.ok());
  Rng rng(17);
  net->InitializeWeights(&rng);
  const Dataset ds = MakeGlyphDataset(
      {.num_samples = 16, .num_classes = 10, .image_size = 20, .seed = 2});

  auto count_determined = [&](float delta) {
    std::map<std::string, IntervalMatrix> bounds;
    for (const auto& param : net->GetParameters()) {
      FloatMatrix lo = param.value;
      FloatMatrix hi = param.value;
      for (auto& v : lo.data()) v -= delta;
      for (auto& v : hi.data()) v += delta;
      bounds.emplace(param.name,
                     *IntervalMatrix::FromBounds(std::move(lo), std::move(hi)));
    }
    IntervalEvaluator evaluator(&*net);
    auto intervals = evaluator.Forward(ds.images, bounds);
    EXPECT_TRUE(intervals.ok());
    int determined = 0;
    for (const auto& row : *intervals) {
      if (IntervalEvaluator::DeterminedTopLabel(row) >= 0) ++determined;
    }
    return determined;
  };
  const int tight = count_determined(1e-6f);
  const int loose = count_determined(0.5f);
  EXPECT_EQ(tight, 16);  // Near-exact weights: all samples determined.
  EXPECT_LE(loose, tight);
}

}  // namespace
}  // namespace modelhub
