#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "tensor/float_matrix.h"
#include "tensor/interval.h"
#include "tensor/tensor.h"

namespace modelhub {
namespace {

TEST(FloatMatrixTest, ConstructionAndAccess) {
  FloatMatrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6);
  m.At(1, 2) = 4.5f;
  EXPECT_FLOAT_EQ(m(1, 2), 4.5f);
  EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
}

TEST(FloatMatrixTest, FillAndStats) {
  FloatMatrix m(4, 4);
  m.Fill(2.0f);
  m.At(0, 0) = -1.0f;
  m.At(3, 3) = 5.0f;
  EXPECT_FLOAT_EQ(m.Min(), -1.0f);
  EXPECT_FLOAT_EQ(m.Max(), 5.0f);
  EXPECT_NEAR(m.Mean(), (14 * 2.0 - 1.0 + 5.0) / 16.0, 1e-6);
}

TEST(FloatMatrixTest, SubAddRoundTrip) {
  Rng rng(5);
  FloatMatrix a(8, 8);
  FloatMatrix b(8, 8);
  a.FillGaussian(&rng, 1.0f);
  b.FillGaussian(&rng, 1.0f);
  auto d = a.Sub(b);
  ASSERT_TRUE(d.ok());
  auto restored = d->Add(b);
  ASSERT_TRUE(restored.ok());
  // Float subtraction then addition of the same operand may round, but
  // stays within a tight tolerance for O(1) magnitudes.
  EXPECT_TRUE(restored->ApproxEquals(a, 1e-5f));
}

TEST(FloatMatrixTest, XorIsExactInverse) {
  Rng rng(9);
  FloatMatrix a(16, 16);
  FloatMatrix b(16, 16);
  a.FillGaussian(&rng, 3.0f);
  b.FillGaussian(&rng, 3.0f);
  auto x = a.BitwiseXor(b);
  ASSERT_TRUE(x.ok());
  auto restored = x->BitwiseXor(b);
  ASSERT_TRUE(restored.ok());
  // XOR deltas invert bit-exactly — this is why PAS offers them.
  EXPECT_TRUE(restored->BitEquals(a));
}

TEST(FloatMatrixTest, ShapeMismatchRejected) {
  FloatMatrix a(2, 2);
  FloatMatrix b(3, 2);
  EXPECT_TRUE(a.Sub(b).status().IsInvalidArgument());
  EXPECT_TRUE(a.Add(b).status().IsInvalidArgument());
  EXPECT_TRUE(a.BitwiseXor(b).status().IsInvalidArgument());
}

TEST(FloatMatrixTest, BytesRoundTrip) {
  Rng rng(13);
  FloatMatrix m(7, 5);
  m.FillUniform(&rng, -10.0f, 10.0f);
  const std::string bytes = m.ToBytes();
  EXPECT_EQ(bytes.size(), 7u * 5u * 4u);
  auto back = FloatMatrix::FromBytes(7, 5, Slice(bytes));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->BitEquals(m));
}

TEST(FloatMatrixTest, FromBytesWrongSizeRejected) {
  std::string bytes(12, '\0');
  EXPECT_TRUE(FloatMatrix::FromBytes(2, 2, Slice(bytes))
                  .status()
                  .IsInvalidArgument());
}

TEST(TensorTest, IndexingLayoutIsNCHW) {
  Tensor t(2, 3, 4, 5);
  EXPECT_EQ(t.size(), 2 * 3 * 4 * 5);
  EXPECT_EQ(t.SampleSize(), 3 * 4 * 5);
  t.At(1, 2, 3, 4) = 9.0f;
  // Flat offset: ((1*3+2)*4+3)*5+4 = 119.
  EXPECT_FLOAT_EQ(t.data()[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
  EXPECT_EQ(t.ShapeString(), "[2,3,4,5]");
}

// ---------------------------------------------------------------- Interval

TEST(IntervalTest, ArithmeticSoundnessProperty) {
  // For random intervals and random points inside them, every arithmetic op
  // must produce an interval containing the pointwise result.
  Rng rng(21);
  for (int trial = 0; trial < 2000; ++trial) {
    const float a_lo = rng.UniformFloat(-5, 5);
    const float a_hi = a_lo + rng.UniformFloat(0, 3);
    const float b_lo = rng.UniformFloat(-5, 5);
    const float b_hi = b_lo + rng.UniformFloat(0, 3);
    const Interval a(a_lo, a_hi);
    const Interval b(b_lo, b_hi);
    const float x = rng.UniformFloat(a_lo, a_hi);
    const float y = rng.UniformFloat(b_lo, b_hi);
    EXPECT_TRUE((a + b).Contains(x + y));
    EXPECT_TRUE((a - b).Contains(x - y));
    const Interval prod = a * b;
    // Allow one ulp-ish slack for float rounding at interval endpoints.
    EXPECT_GE(x * y, prod.lo - 1e-4f);
    EXPECT_LE(x * y, prod.hi + 1e-4f);
  }
}

TEST(IntervalTest, UnionCoversBoth) {
  const Interval u = Union(Interval(-1, 2), Interval(0, 5));
  EXPECT_FLOAT_EQ(u.lo, -1);
  EXPECT_FLOAT_EQ(u.hi, 5);
}

TEST(IntervalMatrixTest, FromExactHasZeroWidth) {
  Rng rng(3);
  FloatMatrix m(4, 4);
  m.FillGaussian(&rng, 1.0f);
  const IntervalMatrix im = IntervalMatrix::FromExact(m);
  EXPECT_FLOAT_EQ(im.MaxWidth(), 0.0f);
  EXPECT_TRUE(im.Contains(m));
}

TEST(IntervalMatrixTest, FromBoundsValidates) {
  FloatMatrix lo(2, 2);
  FloatMatrix hi(2, 2);
  lo.Fill(1.0f);
  hi.Fill(0.0f);  // lo > hi: invalid.
  EXPECT_TRUE(
      IntervalMatrix::FromBounds(lo, hi).status().IsInvalidArgument());
  hi.Fill(2.0f);
  auto im = IntervalMatrix::FromBounds(lo, hi);
  ASSERT_TRUE(im.ok());
  EXPECT_FLOAT_EQ(im->MaxWidth(), 1.0f);
  FloatMatrix inside(2, 2);
  inside.Fill(1.5f);
  EXPECT_TRUE(im->Contains(inside));
  inside.At(0, 0) = 3.0f;
  EXPECT_FALSE(im->Contains(inside));
}

TEST(IntervalTensorTest, ContainsWithSlack) {
  Tensor t(1, 1, 2, 2);
  t.At(0, 0, 0, 0) = 1.0f;
  IntervalTensor it = IntervalTensor::FromExact(t);
  EXPECT_TRUE(it.Contains(t));
  Tensor t2 = t;
  t2.At(0, 0, 0, 0) = 1.05f;
  EXPECT_FALSE(it.Contains(t2));
  EXPECT_TRUE(it.Contains(t2, 0.1f));
}

TEST(IntervalTest, WidthAndContainsEdges) {
  const Interval degenerate(2.0f);
  EXPECT_FLOAT_EQ(degenerate.Width(), 0.0f);
  EXPECT_TRUE(degenerate.Contains(2.0f));
  EXPECT_FALSE(degenerate.Contains(2.0001f));
  const Interval negative(-3.0f, -1.0f);
  EXPECT_FLOAT_EQ(negative.Width(), 2.0f);
  EXPECT_TRUE(negative.Contains(-2.0f));
  EXPECT_FALSE(negative.Contains(0.0f));
  // Product of two all-negative intervals is positive.
  const Interval prod = negative * negative;
  EXPECT_FLOAT_EQ(prod.lo, 1.0f);
  EXPECT_FLOAT_EQ(prod.hi, 9.0f);
}

}  // namespace
}  // namespace modelhub
