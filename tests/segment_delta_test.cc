#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "compress/codec.h"
#include "pas/delta.h"
#include "pas/float_encoding.h"
#include "pas/segment.h"

namespace modelhub {
namespace {

FloatMatrix RandomWeights(int64_t rows, int64_t cols, uint64_t seed,
                          float stddev = 0.1f) {
  Rng rng(seed);
  FloatMatrix m(rows, cols);
  m.FillGaussian(&rng, stddev);
  return m;
}

std::vector<Slice> ToSlices(const std::array<std::string, kNumPlanes>& planes,
                            int count) {
  std::vector<Slice> out;
  for (int p = 0; p < count; ++p) out.emplace_back(planes[p]);
  return out;
}

// ------------------------------------------------------------- Segment

TEST(SegmentTest, FullPlanesReassembleExactly) {
  const FloatMatrix m = RandomWeights(33, 17, 5);
  const auto planes = SegmentFloats(m);
  for (const auto& plane : planes) {
    EXPECT_EQ(plane.size(), static_cast<size_t>(m.size()));
  }
  auto back = AssembleFloats(m.rows(), m.cols(), ToSlices(planes, 4));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->BitEquals(m));
}

TEST(SegmentTest, PartialAssemblyIsTruncationTowardZeroMagnitude) {
  const FloatMatrix m = RandomWeights(16, 16, 6);
  const auto planes = SegmentFloats(m);
  for (int k = 1; k <= 3; ++k) {
    auto approx = AssembleFloats(m.rows(), m.cols(), ToSlices(planes, k));
    ASSERT_TRUE(approx.ok());
    for (int64_t i = 0; i < m.size(); ++i) {
      const float truth = m.data()[static_cast<size_t>(i)];
      const float approx_v = approx->data()[static_cast<size_t>(i)];
      // Zero-filling mantissa bits shrinks the magnitude, never grows it.
      EXPECT_LE(std::fabs(approx_v), std::fabs(truth) + 1e-30f);
      // Error shrinks 256x per extra plane: bound via relative error.
      const float rel_bound = std::pow(2.0f, -(8.0f * k - 9.0f));
      EXPECT_LE(std::fabs(approx_v - truth),
                std::fabs(truth) * rel_bound + 1e-30f)
          << "k=" << k << " i=" << i;
    }
  }
}

TEST(SegmentTest, BoundsContainTruthProperty) {
  // The interval soundness property the whole progressive scheme rests on.
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    FloatMatrix m(8, 8);
    const float stddev = rng.UniformFloat(1e-3f, 10.0f);
    m.FillGaussian(&rng, stddev);
    const auto planes = SegmentFloats(m);
    for (int k = 1; k <= 4; ++k) {
      auto bounds = BoundsFromPlanes(m.rows(), m.cols(), ToSlices(planes, k));
      ASSERT_TRUE(bounds.ok());
      EXPECT_TRUE(bounds->Contains(m)) << "k=" << k;
      if (k == 4) {
        EXPECT_FLOAT_EQ(bounds->MaxWidth(), 0.0f);
      }
    }
  }
}

TEST(SegmentTest, BoundsWidthShrinksPerPlane) {
  const FloatMatrix m = RandomWeights(32, 32, 8, 1.0f);
  const auto planes = SegmentFloats(m);
  double prev_width = 1e30;
  for (int k = 1; k <= 4; ++k) {
    auto bounds = BoundsFromPlanes(m.rows(), m.cols(), ToSlices(planes, k));
    ASSERT_TRUE(bounds.ok());
    EXPECT_LT(bounds->MaxWidth(), prev_width);
    prev_width = bounds->MaxWidth();
  }
}

TEST(SegmentTest, HighPlaneCompressesLowPlaneDoesNot) {
  // The premise of bytewise segmentation: high-order bytes have low
  // entropy, low-order bytes are near-random.
  const FloatMatrix m = RandomWeights(128, 128, 9);
  const auto planes = SegmentFloats(m);
  const size_t high = CompressedSize(CodecType::kDeflateLite, Slice(planes[0]));
  const size_t low = CompressedSize(CodecType::kDeflateLite, Slice(planes[3]));
  // Plane 0 carries sign+exponent: ~5-6 bits of entropy per byte for
  // sign-symmetric Gaussian weights, so it compresses meaningfully.
  EXPECT_LT(high, planes[0].size() * 3 / 4);
  EXPECT_GT(low, planes[3].size() * 95 / 100);  // Essentially incompressible.
  EXPECT_LT(high, low * 8 / 10);
}

TEST(SegmentTest, PlaneValidation) {
  const FloatMatrix m = RandomWeights(4, 4, 10);
  const auto planes = SegmentFloats(m);
  EXPECT_TRUE(AssembleFloats(4, 4, {}).status().IsInvalidArgument());
  std::vector<Slice> wrong = {Slice(planes[0]).SubSlice(0, 3)};
  EXPECT_TRUE(AssembleFloats(4, 4, wrong).status().IsInvalidArgument());
}

// --------------------------------------------------------------- Delta

TEST(DeltaTest, KindStringRoundTrip) {
  for (DeltaKind kind :
       {DeltaKind::kMaterialized, DeltaKind::kSub, DeltaKind::kXor}) {
    auto parsed = DeltaKindFromString(DeltaKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(DeltaKindFromString("nope").ok());
}

TEST(DeltaTest, XorRoundTripsBitExactly) {
  const FloatMatrix base = RandomWeights(20, 20, 11);
  const FloatMatrix target = RandomWeights(20, 20, 12);
  auto delta = ComputeDelta(target, base, DeltaKind::kXor);
  ASSERT_TRUE(delta.ok());
  auto restored = ApplyDelta(base, *delta, DeltaKind::kXor);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->BitEquals(target));
}

TEST(DeltaTest, SubRoundTripsWithinRounding) {
  const FloatMatrix base = RandomWeights(20, 20, 13);
  FloatMatrix target = base;
  Rng rng(14);
  for (auto& v : target.data()) v += rng.UniformFloat(-1e-3f, 1e-3f);
  auto delta = ComputeDelta(target, base, DeltaKind::kSub);
  ASSERT_TRUE(delta.ok());
  auto restored = ApplyDelta(base, *delta, DeltaKind::kSub);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->ApproxEquals(target, 1e-7f));
}

TEST(DeltaTest, MaterializedIgnoresBase) {
  const FloatMatrix base = RandomWeights(4, 4, 15);
  const FloatMatrix target = RandomWeights(4, 4, 16);
  auto delta = ComputeDelta(target, base, DeltaKind::kMaterialized);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->BitEquals(target));
  auto restored = ApplyDelta(base, *delta, DeltaKind::kMaterialized);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->BitEquals(target));
}

TEST(DeltaTest, NearbySnapshotDeltaCompressesBetterThanMaterialized) {
  // Fig 6(b)'s "Snapshots" regime: close parameters make SUB deltas cheap
  // under segmented compression.
  const FloatMatrix base = RandomWeights(64, 64, 17);
  FloatMatrix target = base;
  Rng rng(18);
  // Simulate a few SGD steps: small, sparse-ish updates.
  for (auto& v : target.data()) {
    if (rng.Bernoulli(0.5)) v += rng.UniformFloat(-1e-4f, 1e-4f);
  }
  auto delta = ComputeDelta(target, base, DeltaKind::kSub);
  ASSERT_TRUE(delta.ok());

  auto segmented_size = [](const FloatMatrix& m) {
    const auto planes = SegmentFloats(m);
    size_t total = 0;
    for (const auto& plane : planes) {
      total += CompressedSize(CodecType::kDeflateLite, Slice(plane));
    }
    return total;
  };
  EXPECT_LT(segmented_size(*delta), segmented_size(target) * 3 / 4);
}

TEST(DeltaTest, AdaptiveKindsRoundTripAcrossShapes) {
  // Fine-tuning often re-targets the final layer: the new matrix shares a
  // prefix block with the base but has different shape (footnote 3).
  const FloatMatrix base = RandomWeights(10, 8, 31);
  // Target is wider and taller; overlap equals base within rounding.
  FloatMatrix target(12, 9);
  Rng rng(32);
  target.FillGaussian(&rng, 0.1f);
  for (int64_t r = 0; r < 10; ++r) {
    for (int64_t c = 0; c < 8; ++c) {
      target.At(r, c) = base.At(r, c) + rng.UniformFloat(-1e-4f, 1e-4f);
    }
  }
  for (DeltaKind kind : {DeltaKind::kAdaptiveSub, DeltaKind::kAdaptiveXor}) {
    auto delta = ComputeDelta(target, base, kind);
    ASSERT_TRUE(delta.ok()) << DeltaKindToString(kind);
    EXPECT_EQ(delta->rows(), target.rows());
    EXPECT_EQ(delta->cols(), target.cols());
    auto restored = ApplyDelta(base, *delta, kind);
    ASSERT_TRUE(restored.ok());
    if (kind == DeltaKind::kAdaptiveXor) {
      EXPECT_TRUE(restored->BitEquals(target));
    } else {
      EXPECT_TRUE(restored->ApproxEquals(target, 1e-6f));
    }
  }
}

TEST(DeltaTest, AdaptiveSmallerBaseAndSameShape) {
  // Base larger than target: only the target-shaped overlap is used.
  const FloatMatrix base = RandomWeights(12, 12, 33);
  const FloatMatrix target = RandomWeights(6, 6, 34);
  auto delta = ComputeDelta(target, base, DeltaKind::kAdaptiveSub);
  ASSERT_TRUE(delta.ok());
  auto restored = ApplyDelta(base, *delta, DeltaKind::kAdaptiveSub);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->ApproxEquals(target, 1e-6f));
  // On equal shapes the adaptive kinds match their exact counterparts.
  const FloatMatrix same = RandomWeights(6, 6, 35);
  auto exact = ComputeDelta(target, same, DeltaKind::kSub);
  auto adaptive = ComputeDelta(target, same, DeltaKind::kAdaptiveSub);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(adaptive.ok());
  EXPECT_TRUE(exact->BitEquals(*adaptive));
}

TEST(DeltaTest, AdaptiveHelpers) {
  EXPECT_TRUE(IsAdaptive(DeltaKind::kAdaptiveSub));
  EXPECT_TRUE(IsAdaptive(DeltaKind::kAdaptiveXor));
  EXPECT_FALSE(IsAdaptive(DeltaKind::kSub));
  EXPECT_EQ(ToAdaptive(DeltaKind::kSub), DeltaKind::kAdaptiveSub);
  EXPECT_EQ(ToAdaptive(DeltaKind::kXor), DeltaKind::kAdaptiveXor);
  EXPECT_EQ(ToAdaptive(DeltaKind::kMaterialized), DeltaKind::kMaterialized);
  for (DeltaKind kind : {DeltaKind::kAdaptiveSub, DeltaKind::kAdaptiveXor}) {
    auto parsed = DeltaKindFromString(DeltaKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(DeltaTest, UnrelatedModelsDeltaDoesNotHelp) {
  // Fig 6(b)'s "Similar architectures, retrained" regime: materializing
  // beats deltas when parameters are uncorrelated.
  const FloatMatrix a = RandomWeights(64, 64, 19);
  const FloatMatrix b = RandomWeights(64, 64, 20);
  auto delta = ComputeDelta(a, b, DeltaKind::kSub);
  ASSERT_TRUE(delta.ok());
  auto segmented_size = [](const FloatMatrix& m) {
    const auto planes = SegmentFloats(m);
    size_t total = 0;
    for (const auto& plane : planes) {
      total += CompressedSize(CodecType::kDeflateLite, Slice(plane));
    }
    return total;
  };
  // No meaningful gain (allow 5% slack either way).
  EXPECT_GT(segmented_size(*delta), segmented_size(a) * 95 / 100);
}

}  // namespace
}  // namespace modelhub
