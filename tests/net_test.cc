#include <gtest/gtest.h>

#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/trace.h"
#include "net/client.h"
#include "net/fault.h"
#include "net/frame.h"
#include "net/socket.h"

namespace modelhub {
namespace {

// ------------------------------------------------------------- Deadline

TEST(DeadlineTest, InfiniteNeverExpires) {
  const Deadline d = Deadline::Infinite();
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.Expired());
}

TEST(DeadlineTest, ZeroBudgetExpiresImmediately) {
  const Deadline d = Deadline::AfterMs(0);
  EXPECT_FALSE(d.infinite());
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.RemainingMs(), 0);
}

// ---------------------------------------------------------- Frame codec

TEST(FrameCodecTest, RoundTrip) {
  const std::string wire =
      EncodeFrame(static_cast<uint8_t>(Opcode::kPing), "hello");
  Slice input(wire);
  Frame frame;
  ASSERT_TRUE(DecodeFrame(&input, &frame).ok());
  EXPECT_EQ(frame.version, kWireVersion);
  EXPECT_EQ(frame.opcode, static_cast<uint8_t>(Opcode::kPing));
  EXPECT_EQ(frame.payload, "hello");
  EXPECT_TRUE(input.empty());
}

TEST(FrameCodecTest, DecodesBackToBackFrames) {
  std::string wire = EncodeFrame(1, "a");
  wire += EncodeFrame(2, "bb");
  Slice input(wire);
  Frame first, second;
  ASSERT_TRUE(DecodeFrame(&input, &first).ok());
  ASSERT_TRUE(DecodeFrame(&input, &second).ok());
  EXPECT_EQ(first.payload, "a");
  EXPECT_EQ(second.payload, "bb");
  EXPECT_TRUE(input.empty());
}

TEST(FrameCodecTest, TruncatedFrameIsOutOfRange) {
  const std::string wire = EncodeFrame(1, "payload");
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    Slice input(wire.data(), cut);
    Frame frame;
    const Status status = DecodeFrame(&input, &frame);
    ASSERT_FALSE(status.ok()) << "cut=" << cut;
    EXPECT_TRUE(status.IsOutOfRange()) << "cut=" << cut << " "
                                       << status.ToString();
  }
}

TEST(FrameCodecTest, OversizedFrameIsInvalidArgument) {
  const std::string wire = EncodeFrame(1, std::string(1024, 'x'));
  Slice input(wire);
  Frame frame;
  const Status status = DecodeFrame(&input, &frame, /*max_frame_bytes=*/64);
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
}

TEST(FrameCodecTest, TornFrameFailsCrc) {
  std::string wire = EncodeFrame(1, "sensitive bytes");
  wire[7] ^= 0x40;  // Flip one payload bit; length prefix intact.
  Slice input(wire);
  Frame frame;
  const Status status = DecodeFrame(&input, &frame);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
}

TEST(FrameCodecTest, ResponsePayloadRoundTrip) {
  const std::string ok = EncodeResponsePayload(Status::OK(), "result!");
  Slice payload(ok);
  Status remote = Status::Internal("unset");
  ASSERT_TRUE(DecodeResponsePayload(&payload, &remote).ok());
  EXPECT_TRUE(remote.ok());
  EXPECT_EQ(payload.ToString(), "result!");

  const std::string err =
      EncodeResponsePayload(Status::NotFound("no such model"), "");
  Slice err_payload(err);
  ASSERT_TRUE(DecodeResponsePayload(&err_payload, &remote).ok());
  EXPECT_TRUE(remote.IsNotFound());
  EXPECT_EQ(remote.message(), "no such model");
}

TEST(FrameCodecTest, UnknownWireStatusCodeMapsToInternal) {
  std::string payload = EncodeResponsePayload(Status::NotFound("x"), "");
  payload[0] = static_cast<char>(200);  // A code this build does not know.
  Slice input(payload);
  Status remote;
  ASSERT_TRUE(DecodeResponsePayload(&input, &remote).ok());
  EXPECT_TRUE(remote.IsInternal());
}

TEST(FrameCodecTest, GetSnapshotRequestRoundTrip) {
  std::string model;
  int64_t sequence = 0;
  int planes = 0;
  const std::string latest = EncodeGetSnapshotRequest("vgg", -1, 0);
  ASSERT_TRUE(
      DecodeGetSnapshotRequest(Slice(latest), &model, &sequence, &planes)
          .ok());
  EXPECT_EQ(model, "vgg");
  EXPECT_EQ(sequence, -1);
  EXPECT_EQ(planes, 0);

  const std::string bounded = EncodeGetSnapshotRequest("alex", 7, 2);
  ASSERT_TRUE(
      DecodeGetSnapshotRequest(Slice(bounded), &model, &sequence, &planes)
          .ok());
  EXPECT_EQ(model, "alex");
  EXPECT_EQ(sequence, 7);
  EXPECT_EQ(planes, 2);
}

TEST(FrameCodecTest, GetSnapshotRequestRejectsBadPlanes) {
  const std::string wire = EncodeGetSnapshotRequest("m", 0, 9);
  std::string model;
  int64_t sequence = 0;
  int planes = 0;
  EXPECT_TRUE(
      DecodeGetSnapshotRequest(Slice(wire), &model, &sequence, &planes)
          .IsInvalidArgument());
}

// ----------------------------------------------------- Trace-context header

TEST(FrameTraceTest, TraceHeaderRoundTrip) {
  FrameTrace trace;
  trace.trace_hi = 0x0123456789abcdefull;
  trace.trace_lo = 0xfedcba9876543210ull;
  trace.span_id = 42;
  trace.sampled = true;
  trace.deadline_ms = 1500;
  const std::string wire = EncodeFrame(
      static_cast<uint8_t>(Opcode::kPing), "hello", &trace);
  // The wire version byte (offset 4, right after the length prefix)
  // must carry the trace flag so an untraced peer rejects rather than
  // misparses the frame.
  ASSERT_GT(wire.size(), 5u);
  EXPECT_EQ(static_cast<uint8_t>(wire[4]), kWireVersion | kWireTraceFlag);

  Slice input(wire);
  Frame frame;
  ASSERT_TRUE(DecodeFrame(&input, &frame).ok());
  EXPECT_EQ(frame.version, kWireVersion);  // Flag stripped after parse.
  EXPECT_EQ(frame.payload, "hello");
  ASSERT_TRUE(frame.trace.has_value());
  EXPECT_EQ(frame.trace->trace_hi, 0x0123456789abcdefull);
  EXPECT_EQ(frame.trace->trace_lo, 0xfedcba9876543210ull);
  EXPECT_EQ(frame.trace->span_id, 42u);
  EXPECT_TRUE(frame.trace->sampled);
  EXPECT_FALSE(frame.trace->deadline_expired);
  EXPECT_EQ(frame.trace->deadline_ms, 1500u);

  const TraceContext ctx = ContextFromFrame(frame);
  EXPECT_TRUE(ctx.active());
  EXPECT_TRUE(ctx.sampled);
  EXPECT_EQ(ctx.parent_span, 42u);
  EXPECT_TRUE(ctx.has_deadline);
  EXPECT_GT(ctx.deadline_remaining_ms(), 1000u);
}

TEST(FrameTraceTest, FramesWithoutTraceHeaderStillParse) {
  // Backward compatibility: an untraced frame is byte-identical to the
  // pre-tracing encoding and decodes with no trace attached.
  const std::string wire = EncodeFrame(1, "legacy");
  ASSERT_GT(wire.size(), 5u);
  EXPECT_EQ(static_cast<uint8_t>(wire[4]), kWireVersion);
  Slice input(wire);
  Frame frame;
  ASSERT_TRUE(DecodeFrame(&input, &frame).ok());
  EXPECT_FALSE(frame.trace.has_value());
  EXPECT_EQ(frame.payload, "legacy");
  EXPECT_FALSE(ContextFromFrame(frame).active());
}

TEST(FrameTraceTest, ExpiredDeadlineFlagYieldsPastDeadline) {
  FrameTrace trace;
  trace.trace_hi = 1;
  trace.sampled = true;
  trace.deadline_expired = true;
  const std::string wire = EncodeFrame(1, "", &trace);
  Slice input(wire);
  Frame frame;
  ASSERT_TRUE(DecodeFrame(&input, &frame).ok());
  ASSERT_TRUE(frame.trace.has_value());
  const TraceContext ctx = ContextFromFrame(frame);
  EXPECT_TRUE(ctx.has_deadline);
  EXPECT_TRUE(ctx.deadline_expired());
  EXPECT_EQ(ctx.deadline_remaining_ms(), 0u);
}

TEST(FrameTraceTest, TruncatedTraceHeaderIsCorruption) {
  // Hand-build a frame whose version byte claims a trace header but whose
  // body is too short to hold one: CRC-valid, semantically corrupt.
  std::string body;
  body.push_back(static_cast<char>(kWireVersion | kWireTraceFlag));
  body.push_back(static_cast<char>(Opcode::kPing));
  PutFixed64(&body, 7);  // trace_hi only; the rest is missing.
  std::string wire;
  PutFixed32(&wire, static_cast<uint32_t>(body.size()));
  wire += body;
  PutFixed32(&wire, Crc32(Slice(body)));
  Slice input(wire);
  Frame frame;
  EXPECT_TRUE(DecodeFrame(&input, &frame).IsCorruption());
}

TEST(FrameTraceTest, TraceHeaderOverSocketPair) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Socket a(fds[0]);
  Socket b(fds[1]);
  FrameTrace trace;
  trace.trace_lo = 99;
  trace.span_id = 7;
  trace.sampled = true;
  ASSERT_TRUE(WriteFrame(&a, static_cast<uint8_t>(Opcode::kStats), "body",
                         Deadline::Infinite(), nullptr, &trace)
                  .ok());
  Frame frame;
  ASSERT_TRUE(ReadFrame(&b, &frame, kDefaultMaxFrameBytes,
                        Deadline::AfterMs(5000))
                  .ok());
  ASSERT_TRUE(frame.trace.has_value());
  EXPECT_EQ(frame.trace->trace_lo, 99u);
  EXPECT_EQ(frame.trace->span_id, 7u);
  EXPECT_EQ(frame.payload, "body");
}

// ----------------------------------------------------------- Socket I/O
//
// Socketpair-based: Socket wraps any connected stream fd, so AF_UNIX
// pairs exercise the exact read/write loops without port juggling.

struct SocketPair {
  Socket a;
  Socket b;
  SocketPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = Socket(fds[0]);
    b = Socket(fds[1]);
  }
};

TEST(SocketIoTest, ShortReadDribbleReassemblesFrame) {
  SocketPair pair;
  const std::string wire = EncodeFrame(3, "dribbled payload across writes");
  std::thread writer([&] {
    // One byte at a time with pauses: every ReadFull iteration sees a
    // short read.
    for (char byte : wire) {
      ASSERT_TRUE(
          pair.a.WriteFull(&byte, 1, Deadline::Infinite()).ok());
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  Frame frame;
  const Status status = ReadFrame(&pair.b, &frame, kDefaultMaxFrameBytes,
                                  Deadline::AfterMs(10000));
  writer.join();
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(frame.payload, "dribbled payload across writes");
}

void IgnoreSigusr1(int) {}

TEST(SocketIoTest, EintrStormDoesNotAbortRead) {
  // A handler installed WITHOUT SA_RESTART makes every delivered SIGUSR1
  // interrupt blocking syscalls with EINTR.
  struct sigaction action = {};
  struct sigaction saved = {};
  action.sa_handler = IgnoreSigusr1;
  action.sa_flags = 0;
  sigemptyset(&action.sa_mask);
  ASSERT_EQ(sigaction(SIGUSR1, &action, &saved), 0);

  SocketPair pair;
  std::atomic<bool> reader_done{false};
  Status read_status = Status::Internal("unset");
  Frame frame;
  std::thread reader([&] {
    read_status = ReadFrame(&pair.b, &frame, kDefaultMaxFrameBytes,
                            Deadline::AfterMs(10000));
    reader_done.store(true);
  });
  const pthread_t reader_handle = reader.native_handle();
  for (int i = 0; i < 50; ++i) {
    pthread_kill(reader_handle, SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::string wire = EncodeFrame(1, "survived the storm");
  ASSERT_TRUE(
      pair.a.WriteFull(wire.data(), wire.size(), Deadline::Infinite()).ok());
  for (int i = 0; i < 20 && !reader_done.load(); ++i) {
    pthread_kill(reader_handle, SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  reader.join();
  sigaction(SIGUSR1, &saved, nullptr);
  ASSERT_TRUE(read_status.ok()) << read_status.ToString();
  EXPECT_EQ(frame.payload, "survived the storm");
}

TEST(SocketIoTest, PeerCloseMidFrameIsIoErrorNotCleanEof) {
  SocketPair pair;
  const std::string wire = EncodeFrame(1, "never fully sent");
  ASSERT_TRUE(
      pair.a.WriteFull(wire.data(), wire.size() / 2, Deadline::Infinite())
          .ok());
  pair.a.Close();
  Frame frame;
  bool clean_eof = false;
  const Status status =
      ReadFrame(&pair.b, &frame, kDefaultMaxFrameBytes,
                Deadline::AfterMs(5000), nullptr, &clean_eof);
  EXPECT_TRUE(status.IsIOError()) << status.ToString();
  EXPECT_FALSE(clean_eof);
}

TEST(SocketIoTest, PeerCloseAtFrameBoundaryIsCleanEof) {
  SocketPair pair;
  pair.a.Close();
  Frame frame;
  bool clean_eof = false;
  const Status status =
      ReadFrame(&pair.b, &frame, kDefaultMaxFrameBytes,
                Deadline::AfterMs(5000), nullptr, &clean_eof);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(clean_eof);
}

TEST(SocketIoTest, OversizedFrameRejectedFromHeaderAlone) {
  SocketPair pair;
  // Header declaring a 48 MiB body; the body itself is never sent. The
  // reader must refuse from the 4 header bytes alone — before allocating
  // or waiting for a body that will never come.
  const uint32_t huge = 48u << 20;
  char header[4] = {static_cast<char>(huge & 0xff),
                    static_cast<char>((huge >> 8) & 0xff),
                    static_cast<char>((huge >> 16) & 0xff),
                    static_cast<char>((huge >> 24) & 0xff)};
  ASSERT_TRUE(
      pair.a.WriteFull(header, sizeof(header), Deadline::Infinite()).ok());
  const auto before = std::chrono::steady_clock::now();
  Frame frame;
  const Status status = ReadFrame(&pair.b, &frame, /*max_frame_bytes=*/1 << 20,
                                  Deadline::AfterMs(30000));
  const auto elapsed = std::chrono::steady_clock::now() - before;
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
}

TEST(SocketIoTest, CorruptFrameOverSocketIsCorruption) {
  SocketPair pair;
  std::string wire = EncodeFrame(1, "bits will rot");
  wire[6] ^= 0x01;
  ASSERT_TRUE(
      pair.a.WriteFull(wire.data(), wire.size(), Deadline::Infinite()).ok());
  Frame frame;
  const Status status = ReadFrame(&pair.b, &frame, kDefaultMaxFrameBytes,
                                  Deadline::AfterMs(5000));
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
}

TEST(SocketIoTest, SilentPeerTripsDeadline) {
  SocketPair pair;
  Frame frame;
  const auto before = std::chrono::steady_clock::now();
  const Status status = ReadFrame(&pair.b, &frame, kDefaultMaxFrameBytes,
                                  Deadline::AfterMs(150));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - before)
                           .count();
  EXPECT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
  EXPECT_GE(elapsed, 100);
  EXPECT_LT(elapsed, 5000);
}

TEST(SocketIoTest, CancelFlagAbortsBlockedRead) {
  SocketPair pair;
  std::atomic<bool> cancel{false};
  Status read_status = Status::Internal("unset");
  std::thread reader([&] {
    char byte;
    read_status =
        pair.b.ReadFull(&byte, 1, Deadline::Infinite(), &cancel, nullptr);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  cancel.store(true);
  reader.join();
  EXPECT_TRUE(read_status.IsUnavailable()) << read_status.ToString();
}

// ------------------------------------------------------------- Listener

TEST(ListenerTest, AcceptConnectRoundTrip) {
  auto listener = Listener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  EXPECT_GT(listener->port(), 0);

  Result<Socket> server_side(Status::Internal("unset"));
  std::thread acceptor([&] { server_side = listener->Accept(); });
  auto client = Socket::Connect("127.0.0.1", listener->port(),
                                Deadline::AfterMs(5000));
  acceptor.join();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(server_side.ok()) << server_side.status().ToString();

  const std::string wire = EncodeFrame(1, "over tcp");
  ASSERT_TRUE(
      client->WriteFull(wire.data(), wire.size(), Deadline::AfterMs(5000))
          .ok());
  Frame frame;
  ASSERT_TRUE(ReadFrame(&*server_side, &frame, kDefaultMaxFrameBytes,
                        Deadline::AfterMs(5000))
                  .ok());
  EXPECT_EQ(frame.payload, "over tcp");
}

TEST(ListenerTest, WakeUnblocksAccept) {
  auto listener = Listener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  Result<Socket> accepted(Status::Internal("unset"));
  std::thread acceptor([&] { accepted = listener->Accept(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  listener->Wake();
  acceptor.join();
  EXPECT_TRUE(accepted.status().IsUnavailable())
      << accepted.status().ToString();
}

TEST(ListenerTest, ConnectRefusedIsUnavailable) {
  // Bind then immediately drop a listener: its port is (briefly) known
  // dead, so connecting to it is refused.
  int dead_port = 0;
  {
    auto listener = Listener::Bind("127.0.0.1", 0);
    ASSERT_TRUE(listener.ok());
    dead_port = listener->port();
  }
  auto client =
      Socket::Connect("127.0.0.1", dead_port, Deadline::AfterMs(2000));
  EXPECT_TRUE(client.status().IsUnavailable())
      << client.status().ToString();
}

// ------------------------------------------------------ ParsePingReply

TEST(PingReplyTest, BarePongFromOldServerParsesAsServing) {
  auto info = ParsePingReply("pong");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->state, "serving");
  EXPECT_FALSE(info->draining());
  EXPECT_EQ(info->queue_depth, 0);
  EXPECT_EQ(info->active, 0);
}

TEST(PingReplyTest, ParsesStateTokens) {
  auto info = ParsePingReply("pong state=draining queue=3 active=7");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info->draining());
  EXPECT_EQ(info->queue_depth, 3);
  EXPECT_EQ(info->active, 7);
}

TEST(PingReplyTest, IgnoresUnknownTokens) {
  // Future servers (and the router) may append tokens; parsers must not
  // choke on them.
  auto info = ParsePingReply(
      "pong state=serving queue=0 active=2 role=router healthy=5 backends=6");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->state, "serving");
  EXPECT_EQ(info->active, 2);
}

TEST(PingReplyTest, RejectsNonPongReplies) {
  EXPECT_TRUE(ParsePingReply("").status().IsCorruption());
  EXPECT_TRUE(ParsePingReply("nope").status().IsCorruption());
  EXPECT_TRUE(ParsePingReply("pongx").status().IsCorruption());
}

// ------------------------------------------------------ Fault injection
//
// NetFaultInjector is process-global: every test arms inside a fixture
// whose TearDown disarms, so a failing assertion cannot leak faults into
// later tests.

class NetFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { NetFaultInjector::Global()->Reset(); }
  void TearDown() override { NetFaultInjector::Global()->Reset(); }
};

TEST_F(NetFaultTest, FailNextConnectsRefusesExactlyN) {
  auto listener = Listener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  std::thread acceptor([&] {
    // Two successful connects bracket the refused one.
    for (int i = 0; i < 2; ++i) (void)listener->Accept();
  });

  NetFaultInjector::Global()->FailNextConnects(1);
  auto refused = Socket::Connect("127.0.0.1", listener->port(),
                                 Deadline::AfterMs(2000));
  EXPECT_TRUE(refused.status().IsUnavailable())
      << refused.status().ToString();
  EXPECT_NE(refused.status().message().find("injected"), std::string::npos);

  auto first = Socket::Connect("127.0.0.1", listener->port(),
                               Deadline::AfterMs(2000));
  EXPECT_TRUE(first.ok()) << first.status().ToString();
  auto second = Socket::Connect("127.0.0.1", listener->port(),
                                Deadline::AfterMs(2000));
  EXPECT_TRUE(second.ok()) << second.status().ToString();
  listener->Wake();
  acceptor.join();
}

TEST_F(NetFaultTest, RefusedPortIsStickyUntilAllowed) {
  auto listener = Listener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  std::thread acceptor([&] { (void)listener->Accept(); });

  NetFaultInjector::Global()->RefuseConnectsToPort(listener->port());
  for (int i = 0; i < 3; ++i) {
    auto refused = Socket::Connect("127.0.0.1", listener->port(),
                                   Deadline::AfterMs(2000));
    EXPECT_TRUE(refused.status().IsUnavailable());
  }
  NetFaultInjector::Global()->AllowConnectsToPort(listener->port());
  auto restored = Socket::Connect("127.0.0.1", listener->port(),
                                  Deadline::AfterMs(2000));
  EXPECT_TRUE(restored.ok()) << restored.status().ToString();
  listener->Wake();
  acceptor.join();
}

TEST_F(NetFaultTest, TornWriteCutsStreamMidFrame) {
  SocketPair pair;
  const std::string wire = EncodeFrame(1, "this frame will be cut short");
  NetFaultInjector::Global()->TearNextWriteAfter(7);
  const Status written = pair.a.WriteFull(wire.data(), wire.size(),
                                          Deadline::AfterMs(2000));
  ASSERT_TRUE(written.IsIOError()) << written.ToString();
  EXPECT_NE(written.ToString().find("torn"), std::string::npos);

  // The reader sees exactly what a process death mid-response looks
  // like: a few bytes then a cut — kIOError, NOT a clean EOF.
  Frame frame;
  bool clean_eof = false;
  const Status read =
      ReadFrame(&pair.b, &frame, kDefaultMaxFrameBytes,
                Deadline::AfterMs(2000), nullptr, &clean_eof);
  EXPECT_TRUE(read.IsIOError()) << read.ToString();
  EXPECT_FALSE(clean_eof);
}

TEST_F(NetFaultTest, DelayedReadTripsOpDeadline) {
  SocketPair pair;
  const std::string wire = EncodeFrame(1, "late");
  ASSERT_TRUE(
      pair.a.WriteFull(wire.data(), wire.size(), Deadline::Infinite()).ok());
  // The bytes are already in the buffer; only the injected stall makes
  // the 100ms deadline fire.
  NetFaultInjector::Global()->DelayNextReadMs(400);
  Frame frame;
  const Status read = ReadFrame(&pair.b, &frame, kDefaultMaxFrameBytes,
                                Deadline::AfterMs(100));
  EXPECT_TRUE(read.IsDeadlineExceeded()) << read.ToString();

  // One-shot: the identical retry succeeds instantly.
  const Status retry = ReadFrame(&pair.b, &frame, kDefaultMaxFrameBytes,
                                 Deadline::AfterMs(2000));
  ASSERT_TRUE(retry.ok()) << retry.ToString();
  EXPECT_EQ(frame.payload, "late");
}

TEST_F(NetFaultTest, DelayedWriteTripsOpDeadline) {
  SocketPair pair;
  NetFaultInjector::Global()->DelayNextWriteMs(400);
  const std::string wire = EncodeFrame(1, "stalled");
  const Status written =
      pair.a.WriteFull(wire.data(), wire.size(), Deadline::AfterMs(100));
  EXPECT_TRUE(written.IsDeadlineExceeded()) << written.ToString();
}

TEST_F(NetFaultTest, ConnectRetriesRideOutRestartWindow) {
  // Grab a port, leave it dead, and bring a listener up on it only after
  // the client's first attempts have failed: connect_retries must bridge
  // the gap (satellite for `dlv rpc --retries`).
  int port = 0;
  {
    auto listener = Listener::Bind("127.0.0.1", 0);
    ASSERT_TRUE(listener.ok());
    port = listener->port();
  }
  std::thread late_server([port] {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    auto listener = Listener::Bind("127.0.0.1", port);
    if (!listener.ok()) return;
    auto sock = listener->Accept();
    if (!sock.ok()) return;
    // Answer one PING so the handshake completes.
    Frame request;
    if (ReadFrame(&*sock, &request, kDefaultMaxFrameBytes,
                  Deadline::AfterMs(5000))
            .ok()) {
      (void)WriteFrame(&*sock, request.opcode,
                       EncodeResponsePayload(Status::OK(), "pong"),
                       Deadline::AfterMs(5000));
    }
  });

  ClientOptions no_retry;
  no_retry.connect_timeout_ms = 500;
  auto fail_fast = ModelHubClient::Connect("127.0.0.1", port, no_retry);
  EXPECT_TRUE(fail_fast.status().IsUnavailable())
      << fail_fast.status().ToString();

  ClientOptions with_retries;
  with_retries.connect_timeout_ms = 500;
  with_retries.connect_retries = 8;
  with_retries.connect_backoff_ms = 60;
  auto client = ModelHubClient::Connect("127.0.0.1", port, with_retries);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto pong = client->Ping();
  EXPECT_TRUE(pong.ok()) << pong.status().ToString();
  late_server.join();
}

TEST(ClientTest, OpDeadlineAgainstSilentServer) {
  // A listener that accepts and then never responds: the client's op
  // deadline must fire (the request write succeeds into kernel buffers).
  auto listener = Listener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  Result<Socket> held(Status::Internal("unset"));
  std::thread acceptor([&] { held = listener->Accept(); });

  ClientOptions options;
  options.op_timeout_ms = 200;
  auto client =
      ModelHubClient::Connect("127.0.0.1", listener->port(), options);
  acceptor.join();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const auto pong = client->Ping();
  EXPECT_TRUE(pong.status().IsDeadlineExceeded())
      << pong.status().ToString();
}

}  // namespace
}  // namespace modelhub
