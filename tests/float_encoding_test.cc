#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "pas/float_encoding.h"

namespace modelhub {
namespace {

FloatMatrix RandomWeights(int64_t rows, int64_t cols, uint64_t seed,
                          float stddev = 0.1f) {
  Rng rng(seed);
  FloatMatrix m(rows, cols);
  m.FillGaussian(&rng, stddev);
  return m;
}

// -------------------------------------------------------------- half/bf16

TEST(HalfFloatTest, KnownValues) {
  EXPECT_EQ(FloatToHalf(0.0f), 0u);
  EXPECT_EQ(FloatToHalf(1.0f), 0x3C00u);
  EXPECT_EQ(FloatToHalf(-2.0f), 0xC000u);
  EXPECT_FLOAT_EQ(HalfToFloat(0x3C00), 1.0f);
  EXPECT_FLOAT_EQ(HalfToFloat(0x4000), 2.0f);
  EXPECT_FLOAT_EQ(HalfToFloat(0x3555), 0.333251953125f);
}

TEST(HalfFloatTest, RoundTripErrorWithinHalfUlp) {
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const float v = rng.UniformFloat(-100.0f, 100.0f);
    const float back = HalfToFloat(FloatToHalf(v));
    // Half has 11 significand bits: relative error <= 2^-11.
    EXPECT_NEAR(back, v, std::fabs(v) * (1.0f / 2048.0f) + 1e-6f);
  }
}

TEST(HalfFloatTest, OverflowToInf) {
  EXPECT_TRUE(std::isinf(HalfToFloat(FloatToHalf(1e20f))));
  EXPECT_TRUE(std::isinf(HalfToFloat(FloatToHalf(-1e20f))));
}

TEST(HalfFloatTest, SubnormalsSurvive) {
  const float tiny = 1e-5f;  // Subnormal in half precision.
  const float back = HalfToFloat(FloatToHalf(tiny));
  EXPECT_NEAR(back, tiny, tiny * 0.05f);
}

TEST(Bfloat16Test, RoundTripErrorWithin8Bits) {
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    const float v = rng.UniformFloat(-1e6f, 1e6f);
    const float back = Bfloat16ToFloat(FloatToBfloat16(v));
    // bfloat16 has 8 significand bits: relative error <= 2^-8.
    EXPECT_NEAR(back, v, std::fabs(v) * (1.0f / 256.0f) + 1e-30f);
  }
}

TEST(Bfloat16Test, PreservesExponentRange) {
  // bfloat16 keeps float32's exponent: no overflow at 1e20.
  const float back = Bfloat16ToFloat(FloatToBfloat16(1e20f));
  EXPECT_FALSE(std::isinf(back));
  EXPECT_NEAR(back, 1e20f, 1e20f / 256.0f);
}

// -------------------------------------------------------------- schemes

TEST(FloatSchemeTest, Float32IsLossless) {
  const FloatMatrix m = RandomWeights(32, 32, 3);
  auto encoded = EncodeMatrix(m, {FloatSchemeKind::kFloat32, 32});
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->PayloadBytes(), m.size() * 4);
  auto decoded = DecodeMatrix(*encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->BitEquals(m));
}

struct LossyCase {
  FloatScheme scheme;
  double max_rel_payload;  // Payload bytes / float32 bytes.
  float max_abs_error;     // On N(0, 0.1) weights.
};

class LossySchemeTest : public ::testing::TestWithParam<LossyCase> {};

TEST_P(LossySchemeTest, PayloadShrinksAndErrorBounded) {
  const LossyCase& test_case = GetParam();
  const FloatMatrix m = RandomWeights(64, 64, 7);
  Rng rng(11);
  auto encoded = EncodeMatrix(m, test_case.scheme, &rng);
  ASSERT_TRUE(encoded.ok()) << test_case.scheme.ToString();
  EXPECT_LE(encoded->PayloadBytes(),
            static_cast<int64_t>(m.size() * 4 * test_case.max_rel_payload) + 8)
      << test_case.scheme.ToString();
  auto decoded = DecodeMatrix(*encoded);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->rows(), m.rows());
  float max_err = 0.0f;
  for (int64_t i = 0; i < m.size(); ++i) {
    max_err = std::max(max_err,
                       std::fabs(decoded->data()[static_cast<size_t>(i)] -
                                 m.data()[static_cast<size_t>(i)]));
  }
  EXPECT_LE(max_err, test_case.max_abs_error) << test_case.scheme.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, LossySchemeTest,
    ::testing::Values(
        LossyCase{{FloatSchemeKind::kFloat16, 16}, 0.5, 1e-3f},
        LossyCase{{FloatSchemeKind::kBFloat16, 16}, 0.5, 3e-3f},
        LossyCase{{FloatSchemeKind::kFixedPoint, 16}, 0.5, 1e-4f},
        LossyCase{{FloatSchemeKind::kFixedPoint, 8}, 0.25, 8e-3f},
        LossyCase{{FloatSchemeKind::kQuantUniform, 8}, 0.25, 8e-3f},
        LossyCase{{FloatSchemeKind::kQuantUniform, 4}, 0.125, 0.12f},
        // Random codebooks give weaker worst-case error.
        LossyCase{{FloatSchemeKind::kQuantRandom, 8}, 0.25, 0.25f},
        LossyCase{{FloatSchemeKind::kQuantRandom, 4}, 0.125, 0.5f}));

TEST(FloatSchemeTest, FixedPointExactOnPowersOfTwo) {
  FloatMatrix m(1, 4);
  m.data() = {0.5f, -0.25f, 1.0f, 0.0f};
  auto encoded = EncodeMatrix(m, {FloatSchemeKind::kFixedPoint, 16});
  ASSERT_TRUE(encoded.ok());
  auto decoded = DecodeMatrix(*encoded);
  ASSERT_TRUE(decoded.ok());
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(decoded->data()[static_cast<size_t>(i)],
                    m.data()[static_cast<size_t>(i)]);
  }
}

TEST(FloatSchemeTest, QuantizationUsesAtMost2PowKValues) {
  const FloatMatrix m = RandomWeights(64, 64, 9);
  Rng rng(13);
  for (FloatSchemeKind kind :
       {FloatSchemeKind::kQuantUniform, FloatSchemeKind::kQuantRandom}) {
    auto encoded = EncodeMatrix(m, {kind, 4}, &rng);
    ASSERT_TRUE(encoded.ok());
    EXPECT_EQ(encoded->codebook.size(), 16u);
    auto decoded = DecodeMatrix(*encoded);
    ASSERT_TRUE(decoded.ok());
    std::set<float> distinct(decoded->data().begin(), decoded->data().end());
    EXPECT_LE(distinct.size(), 16u);
  }
}

TEST(FloatSchemeTest, InvalidConfigsRejected) {
  const FloatMatrix m = RandomWeights(4, 4, 1);
  EXPECT_TRUE(EncodeMatrix(m, {FloatSchemeKind::kFixedPoint, 1})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(EncodeMatrix(m, {FloatSchemeKind::kFixedPoint, 30})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(EncodeMatrix(m, {FloatSchemeKind::kQuantUniform, 9})
                  .status()
                  .IsInvalidArgument());
  // Random quantization needs an Rng.
  EXPECT_TRUE(EncodeMatrix(m, {FloatSchemeKind::kQuantRandom, 4}, nullptr)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(EncodeMatrix(FloatMatrix(), {FloatSchemeKind::kQuantUniform, 4})
                  .status()
                  .IsInvalidArgument());
}

TEST(FloatSchemeTest, AddConstantNormalization) {
  const FloatMatrix m = RandomWeights(8, 8, 21);
  const FloatMatrix shifted = AddConstant(m, 4.0f);
  for (int64_t i = 0; i < m.size(); ++i) {
    EXPECT_FLOAT_EQ(shifted.data()[static_cast<size_t>(i)],
                    m.data()[static_cast<size_t>(i)] + 4.0f);
    // All values now positive with aligned exponent byte.
    EXPECT_GT(shifted.data()[static_cast<size_t>(i)], 0.0f);
  }
}

TEST(FloatSchemeTest, NamesAndBitWidths) {
  EXPECT_EQ((FloatScheme{FloatSchemeKind::kFloat32, 32}).ToString(),
            "float32");
  EXPECT_EQ((FloatScheme{FloatSchemeKind::kFloat16, 16}).ToString(),
            "float16");
  EXPECT_EQ((FloatScheme{FloatSchemeKind::kBFloat16, 16}).ToString(),
            "bfloat16");
  EXPECT_EQ((FloatScheme{FloatSchemeKind::kFixedPoint, 12}).ToString(),
            "fixed12");
  EXPECT_EQ((FloatScheme{FloatSchemeKind::kQuantUniform, 4}).ToString(),
            "quant-uniform4");
  EXPECT_EQ((FloatScheme{FloatSchemeKind::kQuantRandom, 8}).ToString(),
            "quant-random8");
  EXPECT_EQ((FloatScheme{FloatSchemeKind::kFloat32, 32}).BitsPerValue(), 32);
  EXPECT_EQ((FloatScheme{FloatSchemeKind::kFloat16, 16}).BitsPerValue(), 16);
  EXPECT_EQ((FloatScheme{FloatSchemeKind::kFixedPoint, 12}).BitsPerValue(),
            12);
  EXPECT_EQ((FloatScheme{FloatSchemeKind::kQuantUniform, 4}).BitsPerValue(),
            4);
}

}  // namespace
}  // namespace modelhub
