#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>

#include "common/env.h"
#include "common/fault_env.h"
#include "common/thread_pool.h"
#include "common/random.h"
#include "data/dataset.h"
#include "nn/network.h"
#include "nn/trainer.h"
#include "nn/zoo.h"
#include "pas/archive.h"
#include "pas/chunk_store.h"
#include "pas/progressive.h"

namespace modelhub {
namespace {

// ------------------------------------------------------------ ChunkStore

TEST(ChunkStoreTest, WriteReadRoundTrip) {
  MemEnv env;
  ChunkStoreWriter writer(&env, "store.bin");
  Rng rng(1);
  std::vector<std::string> payloads;
  for (int i = 0; i < 10; ++i) {
    std::string data(100 + rng.Uniform(1000), '\0');
    for (auto& c : data) c = static_cast<char>(rng.Uniform(8));  // Low entropy.
    payloads.push_back(data);
    auto id = writer.Put(Slice(data), i % 2 == 0 ? CodecType::kDeflateLite
                                                 : CodecType::kNull);
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, static_cast<uint32_t>(i));
  }
  ASSERT_TRUE(writer.Finish().ok());

  auto reader = ChunkStoreReader::Open(&env, "store.bin");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->num_chunks(), 10u);
  for (int i = 0; i < 10; ++i) {
    auto data = reader->Get(static_cast<uint32_t>(i));
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(*data, payloads[static_cast<size_t>(i)]);
  }
  EXPECT_GT(reader->bytes_read(), 0u);
  EXPECT_TRUE(reader->Get(10).status().IsInvalidArgument());
}

TEST(ChunkStoreTest, PutAfterFinishRejected) {
  MemEnv env;
  ChunkStoreWriter writer(&env, "s.bin");
  ASSERT_TRUE(writer.Put(Slice("abc", 3), CodecType::kNull).ok());
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(writer.Put(Slice("d", 1), CodecType::kNull).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ChunkStoreTest, CorruptionDetected) {
  MemEnv env;
  ChunkStoreWriter writer(&env, "s.bin");
  std::string data(4096, 'x');
  ASSERT_TRUE(writer.Put(Slice(data), CodecType::kDeflateLite).ok());
  ASSERT_TRUE(writer.Finish().ok());
  // Flip a payload byte.
  auto contents = env.ReadFile("s.bin");
  ASSERT_TRUE(contents.ok());
  std::string corrupted = *contents;
  corrupted[10] ^= 0x40;
  ASSERT_TRUE(env.WriteFile("s.bin", corrupted).ok());
  auto reader = ChunkStoreReader::Open(&env, "s.bin");
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->Get(0).status().IsCorruption());
}

TEST(ChunkStoreTest, TruncatedFileDetected) {
  MemEnv env;
  ChunkStoreWriter writer(&env, "s.bin");
  ASSERT_TRUE(writer.Put(Slice("abcabcabc", 9), CodecType::kNull).ok());
  ASSERT_TRUE(writer.Finish().ok());
  auto contents = env.ReadFile("s.bin");
  ASSERT_TRUE(contents.ok());
  ASSERT_TRUE(env.WriteFile("s.bin", contents->substr(0, 8)).ok());
  EXPECT_FALSE(ChunkStoreReader::Open(&env, "s.bin").ok());
}

TEST(ChunkStoreTest, CacheAvoidsRefetch) {
  MemEnv env;
  ChunkStoreWriter writer(&env, "s.bin");
  std::string data(1 << 14, 'z');
  ASSERT_TRUE(writer.Put(Slice(data), CodecType::kRle).ok());
  ASSERT_TRUE(writer.Finish().ok());
  auto reader = ChunkStoreReader::Open(&env, "s.bin");
  ASSERT_TRUE(reader.ok());
  reader->EnableCache(true);
  ASSERT_TRUE(reader->Get(0).ok());
  const uint64_t first = reader->bytes_read();
  ASSERT_TRUE(reader->Get(0).ok());
  EXPECT_EQ(reader->bytes_read(), first);  // Cache hit: no new bytes.
}

TEST(ChunkStoreTest, LruEvictionKeepsCacheUnderBoundAndCountsBytes) {
  MemEnv env;
  ChunkStoreWriter writer(&env, "s.bin");
  Rng rng(3);
  std::vector<std::string> payloads;
  for (int i = 0; i < 16; ++i) {
    std::string data(1024, '\0');
    for (auto& c : data) c = static_cast<char>(rng.Uniform(256));
    payloads.push_back(data);
    ASSERT_TRUE(writer.Put(Slice(data), CodecType::kNull).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
  auto reader = ChunkStoreReader::Open(&env, "s.bin");
  ASSERT_TRUE(reader.ok());
  reader->EnableCache(true);
  // Room for exactly eight chunks; each chunk sits exactly at the
  // per-entry admission cap (bound / kCacheAdmitFraction = 1024).
  const uint64_t bound = 8 * 1024;
  reader->SetCacheCapacity(bound);
  uint64_t total_stored = 0;
  for (uint32_t i = 0; i < 16; ++i) total_stored += reader->ref(i).stored_size;
  // First pass: every Get misses; the cache never exceeds its bound.
  for (uint32_t i = 0; i < 16; ++i) {
    auto data = reader->Get(i);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(*data, payloads[i]);
    EXPECT_LE(reader->stats().cache_bytes, bound);
  }
  ChunkStoreStats stats = reader->stats();
  EXPECT_EQ(stats.bytes_read, total_stored);
  EXPECT_EQ(stats.chunk_fetches, 16u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_evictions, 8u);  // 16 inserted, 8 resident.
  // The most recently used eight (8..15) are resident; rereads are free.
  for (uint32_t i = 8; i < 16; ++i) ASSERT_TRUE(reader->Get(i).ok());
  EXPECT_EQ(reader->stats().bytes_read, total_stored);
  EXPECT_EQ(reader->stats().cache_hits, 8u);
  // An evicted chunk refetches from disk: bytes_read stays truthful
  // across evictions rather than freezing at the first-pass total.
  auto evicted = reader->Get(0);
  ASSERT_TRUE(evicted.ok());
  EXPECT_EQ(*evicted, payloads[0]);
  stats = reader->stats();
  EXPECT_EQ(stats.bytes_read, total_stored + reader->ref(0).stored_size);
  EXPECT_EQ(stats.chunk_fetches, 17u);
  EXPECT_LE(stats.cache_bytes, bound);
}

TEST(ChunkStoreTest, OversizedChunkDoesNotEvictResidentWorkingSet) {
  // Regression: admission used to accept any chunk up to the full cache
  // bound, so one large single-use payload flushed the entire resident
  // working set. A chunk above bound / kCacheAdmitFraction must bypass
  // the cache without disturbing what is already resident.
  MemEnv env;
  ChunkStoreWriter writer(&env, "s.bin");
  std::string small(512, 's');
  std::string big(2048, 'b');  // > 8192 / 8, < 8192.
  ASSERT_TRUE(writer.Put(Slice(small), CodecType::kNull).ok());
  ASSERT_TRUE(writer.Put(Slice(big), CodecType::kNull).ok());
  ASSERT_TRUE(writer.Finish().ok());
  auto reader = ChunkStoreReader::Open(&env, "s.bin");
  ASSERT_TRUE(reader.ok());
  reader->EnableCache(true);
  reader->SetCacheCapacity(8192);
  ASSERT_TRUE(reader->Get(0).ok());  // Small chunk becomes resident.
  ASSERT_TRUE(reader->Get(1).ok());  // Big chunk: bypasses, evicts nothing.
  ASSERT_TRUE(reader->Get(1).ok());  // Still not cached: refetches.
  ASSERT_TRUE(reader->Get(0).ok());  // Small chunk is still resident.
  const ChunkStoreStats stats = reader->stats();
  EXPECT_EQ(stats.chunk_fetches, 3u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_evictions, 0u);
  EXPECT_EQ(stats.cache_bytes, small.size());
}

TEST(ChunkStoreTest, ChunkLargerThanCapacityBypassesCache) {
  MemEnv env;
  ChunkStoreWriter writer(&env, "s.bin");
  std::string big(1 << 12, 'a');
  ASSERT_TRUE(writer.Put(Slice(big), CodecType::kNull).ok());
  ASSERT_TRUE(writer.Finish().ok());
  auto reader = ChunkStoreReader::Open(&env, "s.bin");
  ASSERT_TRUE(reader.ok());
  reader->EnableCache(true);
  reader->SetCacheCapacity(1024);  // Smaller than the one chunk.
  ASSERT_TRUE(reader->Get(0).ok());
  ASSERT_TRUE(reader->Get(0).ok());
  const ChunkStoreStats stats = reader->stats();
  EXPECT_EQ(stats.chunk_fetches, 2u);  // Never cached, so fetched twice.
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_bytes, 0u);
}

TEST(ChunkStoreTest, ConcurrentGetsWithCacheEnabled) {
  MemEnv env;
  ChunkStoreWriter writer(&env, "s.bin");
  Rng rng(9);
  std::vector<std::string> payloads;
  for (int i = 0; i < 16; ++i) {
    std::string data(1024 + rng.Uniform(1024), '\0');
    for (auto& c : data) c = static_cast<char>(rng.Uniform(7));
    payloads.push_back(data);
    ASSERT_TRUE(writer.Put(Slice(data), CodecType::kDeflateLite).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
  auto reader = ChunkStoreReader::Open(&env, "s.bin");
  ASSERT_TRUE(reader.ok());
  reader->EnableCache(true);
  // Tight enough to force concurrent evictions, but with an admission cap
  // (capacity / 8 = 2048) that still accepts every chunk (raw <= 2047).
  reader->SetCacheCapacity(16384);
  ThreadPool pool(4);
  WaitGroup group;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 8; ++t) {
    pool.Schedule(&group, [&, t] {
      for (int i = 0; i < 16; ++i) {
        const uint32_t id = static_cast<uint32_t>((i * 7 + t * 3) % 16);
        auto data = reader->Get(id);
        if (!data.ok() || *data != payloads[id]) mismatches.fetch_add(1);
      }
    });
  }
  group.Wait();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_LE(reader->stats().cache_bytes, 16384u);
}

TEST(ChunkStoreTest, MmapReadPathRoundTripsOnDisk) {
  // On a real filesystem the reader maps the chunk file and serves Get /
  // Verify zero-copy out of the mapping. Results must be identical to the
  // MemEnv read() path used everywhere else in this suite.
  Env* env = Env::Default();
  const std::string dir = ::testing::TempDir() + "/mh_chunk_mmap";
  ASSERT_TRUE(env->CreateDirs(dir).ok());
  const std::string path = dir + "/s.bin";
  ChunkStoreWriter writer(env, path);
  Rng rng(11);
  std::vector<std::string> payloads;
  const CodecType codecs[] = {CodecType::kNull, CodecType::kRle,
                              CodecType::kDeflateLite};
  for (int i = 0; i < 6; ++i) {
    std::string data(512 + rng.Uniform(4096), '\0');
    for (auto& c : data) c = static_cast<char>(rng.Uniform(17));
    payloads.push_back(data);
    ASSERT_TRUE(writer.Put(Slice(data), codecs[i % 3]).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
  auto reader = ChunkStoreReader::Open(env, path);
  ASSERT_TRUE(reader.ok());
  for (uint32_t i = 0; i < 6; ++i) {
    auto data = reader->Get(i);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(*data, payloads[i]);
    EXPECT_TRUE(reader->Verify(i).ok());
  }
  // Fetch accounting is identical to the read() path.
  const ChunkStoreStats stats = reader->stats();
  EXPECT_EQ(stats.chunk_fetches, 6u);
  uint64_t total_stored = 0;
  for (uint32_t i = 0; i < 6; ++i) total_stored += reader->ref(i).stored_size;
  EXPECT_EQ(stats.bytes_read, total_stored);
}

TEST(ChunkStoreTest, MmapPathStillDetectsCorruption) {
  // A corrupted payload must fail through BOTH paths: the mapped CRC
  // check falls back to ranged reads, whose retry then reports
  // Corruption (the mapping and the file agree on the bad bytes).
  Env* env = Env::Default();
  const std::string dir = ::testing::TempDir() + "/mh_chunk_mmap_bad";
  ASSERT_TRUE(env->CreateDirs(dir).ok());
  const std::string path = dir + "/s.bin";
  ChunkStoreWriter writer(env, path);
  std::string data(4096, 'q');
  ASSERT_TRUE(writer.Put(Slice(data), CodecType::kRle).ok());
  ASSERT_TRUE(writer.Finish().ok());
  auto contents = env->ReadFile(path);
  ASSERT_TRUE(contents.ok());
  std::string corrupted = *contents;
  corrupted[10] ^= 0x40;  // Payload byte.
  ASSERT_TRUE(env->WriteFile(path, corrupted).ok());
  auto reader = ChunkStoreReader::Open(env, path);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->Get(0).status().IsCorruption());
  EXPECT_TRUE(reader->Verify(0).IsCorruption());
}

// --------------------------------------------------------------- Archive

/// Trains a mini model and returns its checkpoint snapshots.
std::vector<TrainSnapshot> TrainSnapshots(uint64_t seed, int64_t iters = 60,
                                          int64_t every = 20) {
  const Dataset ds = MakeBlobDataset(128, 4, 12, 0.05f, seed);
  auto net = Network::Create(MiniVgg(4, 12, 1));
  EXPECT_TRUE(net.ok());
  Rng rng(seed);
  net->InitializeWeights(&rng);
  TrainOptions options;
  options.iterations = iters;
  options.snapshot_every = every;
  options.seed = seed;
  auto result = TrainNetwork(&*net, ds, options);
  EXPECT_TRUE(result.ok());
  return result->snapshots;
}

class ArchiveTest : public ::testing::Test {
 protected:
  void BuildArchive(const ArchiveOptions& options) {
    const auto snapshots = TrainSnapshots(42);
    ASSERT_EQ(snapshots.size(), 3u);
    ArchiveBuilder builder(&env_, "archive");
    for (size_t i = 0; i < snapshots.size(); ++i) {
      names_.push_back("v1/s" + std::to_string(i));
      ASSERT_TRUE(builder.AddSnapshot(names_.back(), snapshots[i].params).ok());
      originals_.push_back(snapshots[i].params);
    }
    for (size_t i = 1; i < snapshots.size(); ++i) {
      ASSERT_TRUE(builder.AddDeltaCandidate(names_[i - 1], names_[i]).ok());
    }
    auto report = builder.Build(options);
    ASSERT_TRUE(report.ok());
    report_ = *report;
  }

  MemEnv env_;
  std::vector<std::string> names_;
  std::vector<std::vector<NamedParam>> originals_;
  ArchiveBuildReport report_;
};

TEST_F(ArchiveTest, XorArchiveRoundTripsBitExactly) {
  ArchiveOptions options;
  options.solver = ArchiveSolver::kMst;
  options.delta_kind = DeltaKind::kXor;
  BuildArchive(options);
  auto reader = ArchiveReader::Open(&env_, "archive");
  ASSERT_TRUE(reader.ok());
  for (size_t s = 0; s < names_.size(); ++s) {
    auto params = reader->RetrieveSnapshot(names_[s]);
    ASSERT_TRUE(params.ok());
    ASSERT_EQ(params->size(), originals_[s].size());
    for (size_t p = 0; p < params->size(); ++p) {
      EXPECT_EQ((*params)[p].name, originals_[s][p].name);
      EXPECT_TRUE((*params)[p].value.BitEquals(originals_[s][p].value))
          << names_[s] << "/" << (*params)[p].name;
    }
  }
}

TEST_F(ArchiveTest, SubArchiveRoundTripsWithinRounding) {
  ArchiveOptions options;
  options.solver = ArchiveSolver::kPasPt;
  options.budget_alpha = 2.0;
  options.delta_kind = DeltaKind::kSub;
  BuildArchive(options);
  auto reader = ArchiveReader::Open(&env_, "archive");
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(report_.budgets_satisfied);
  for (size_t s = 0; s < names_.size(); ++s) {
    auto params = reader->RetrieveSnapshot(names_[s]);
    ASSERT_TRUE(params.ok());
    for (size_t p = 0; p < params->size(); ++p) {
      EXPECT_TRUE(
          (*params)[p].value.ApproxEquals(originals_[s][p].value, 1e-5f));
    }
  }
}

TEST_F(ArchiveTest, DeltaArchiveSmallerThanMaterializedArchive) {
  // Adjacent checkpoints are similar, so the MST plan (deltas allowed)
  // must store less than the SPT plan (everything materialized).
  ArchiveOptions options;
  options.solver = ArchiveSolver::kMst;
  BuildArchive(options);
  EXPECT_LT(report_.mst_storage_cost, report_.spt_storage_cost);
  EXPECT_DOUBLE_EQ(report_.storage_cost, report_.mst_storage_cost);
}

TEST_F(ArchiveTest, SingleMatrixRetrieval) {
  ArchiveOptions options;
  BuildArchive(options);
  auto reader = ArchiveReader::Open(&env_, "archive");
  ASSERT_TRUE(reader.ok());
  auto names = reader->ParamNames(names_[2]);
  ASSERT_TRUE(names.ok());
  EXPECT_FALSE(names->empty());
  auto matrix = reader->RetrieveMatrix(names_[2], (*names)[0]);
  ASSERT_TRUE(matrix.ok());
  EXPECT_TRUE(matrix->ApproxEquals(originals_[2][0].value, 1e-5f));
  EXPECT_TRUE(
      reader->RetrieveMatrix("nope", "x").status().IsNotFound());
  EXPECT_TRUE(reader->RetrieveSnapshot("nope").status().IsNotFound());
}

TEST_F(ArchiveTest, PartialBoundsContainTruth) {
  ArchiveOptions options;
  options.solver = ArchiveSolver::kPasPt;
  options.budget_alpha = 1.6;
  BuildArchive(options);
  auto reader = ArchiveReader::Open(&env_, "archive");
  ASSERT_TRUE(reader.ok());
  for (int planes = 1; planes <= 4; ++planes) {
    auto bounds = reader->RetrieveSnapshotBounds(names_[2], planes);
    ASSERT_TRUE(bounds.ok()) << planes;
    for (const auto& param : originals_[2]) {
      auto it = bounds->find(param.name);
      ASSERT_NE(it, bounds->end());
      // Sub deltas introduce one rounding step per chain hop; allow a hair
      // of slack beyond pure containment.
      const IntervalMatrix& im = it->second;
      for (int64_t i = 0; i < param.value.size(); ++i) {
        const float truth = param.value.data()[static_cast<size_t>(i)];
        EXPECT_GE(truth,
                  im.lo().data()[static_cast<size_t>(i)] - 1e-5f);
        EXPECT_LE(truth,
                  im.hi().data()[static_cast<size_t>(i)] + 1e-5f);
      }
    }
  }
}

TEST_F(ArchiveTest, PartialReadsFetchFewerBytes) {
  ArchiveOptions options;
  BuildArchive(options);
  auto reader = ArchiveReader::Open(&env_, "archive");
  ASSERT_TRUE(reader.ok());
  reader->ResetByteCounter();
  ASSERT_TRUE(reader->RetrieveSnapshotBounds(names_[2], 1).ok());
  const uint64_t one_plane = reader->bytes_read();
  reader->ResetByteCounter();
  ASSERT_TRUE(reader->RetrieveSnapshotBounds(names_[2], 4).ok());
  const uint64_t all_planes = reader->bytes_read();
  EXPECT_LT(one_plane, all_planes / 2);
}

TEST(ArchiveBuilderTest, AdaptiveDeltaAcrossShapeChange) {
  // A fine-tuned model whose final layer was re-targeted: same parameter
  // names, one shape change. The archive should still delta the matching
  // layers and use an adaptive delta for the changed one.
  MemEnv env;
  Rng rng(3);
  std::vector<NamedParam> base = {{"conv1.W", FloatMatrix(8, 25)},
                                  {"fc.W", FloatMatrix(4, 32)}};
  for (auto& p : base) p.value.FillGaussian(&rng, 0.1f);
  std::vector<NamedParam> finetuned = base;
  // conv stays the same shape with tiny drift; fc grows to 6 outputs.
  for (auto& v : finetuned[0].value.data()) v += rng.UniformFloat(-1e-4f, 1e-4f);
  FloatMatrix new_fc(6, 32);
  new_fc.FillGaussian(&rng, 0.1f);
  for (int64_t r = 0; r < 4; ++r) {
    for (int64_t c = 0; c < 32; ++c) {
      new_fc.At(r, c) = base[1].value.At(r, c) + rng.UniformFloat(-1e-4f, 1e-4f);
    }
  }
  finetuned[1].value = new_fc;

  ArchiveBuilder builder(&env, "arch");
  ASSERT_TRUE(builder.AddSnapshot("base", base).ok());
  ASSERT_TRUE(builder.AddSnapshot("ft", finetuned).ok());
  ASSERT_TRUE(builder.AddDeltaCandidate("base", "ft").ok());
  ArchiveOptions options;
  options.solver = ArchiveSolver::kMst;
  auto report = builder.Build(options);
  ASSERT_TRUE(report.ok());

  auto reader = ArchiveReader::Open(&env, "arch");
  ASSERT_TRUE(reader.ok());
  auto restored = reader->RetrieveSnapshot("ft");
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), 2u);
  EXPECT_TRUE((*restored)[0].value.ApproxEquals(finetuned[0].value, 1e-5f));
  EXPECT_TRUE((*restored)[1].value.ApproxEquals(finetuned[1].value, 1e-5f));
  // Partial bounds still contain the truth through the adaptive chain.
  auto bounds = reader->RetrieveSnapshotBounds("ft", 2);
  ASSERT_TRUE(bounds.ok());
  for (const auto& param : finetuned) {
    const IntervalMatrix& im = bounds->at(param.name);
    for (int64_t i = 0; i < param.value.size(); ++i) {
      const float truth = param.value.data()[static_cast<size_t>(i)];
      EXPECT_GE(truth, im.lo().data()[static_cast<size_t>(i)] - 1e-5f);
      EXPECT_LE(truth, im.hi().data()[static_cast<size_t>(i)] + 1e-5f);
    }
  }
}

TEST(ArchiveBuilderTest, LossyStorageSchemeShrinksArchive) {
  MemEnv env;
  Rng rng(9);
  std::vector<NamedParam> params = {{"w", FloatMatrix(64, 64)}};
  params[0].value.FillGaussian(&rng, 0.1f);

  auto build = [&](const char* dir, FloatScheme scheme) {
    ArchiveBuilder builder(&env, dir);
    EXPECT_TRUE(builder.AddSnapshot("s", params).ok());
    ArchiveOptions options;
    options.storage_scheme = scheme;
    EXPECT_TRUE(builder.Build(options).ok());
    auto reader = ArchiveReader::Open(&env, dir);
    EXPECT_TRUE(reader.ok());
    return std::move(*reader);
  };
  ArchiveReader lossless = build("a1", {FloatSchemeKind::kFloat32, 32});
  ArchiveReader quant8 = build("a2", {FloatSchemeKind::kQuantUniform, 8});
  ArchiveReader quant4 = build("a3", {FloatSchemeKind::kQuantUniform, 4});

  // Byte-plane segmentation spreads a quantized value's redundancy across
  // four streams, so the gain grows as levels shrink: 8-bit quantization
  // saves a little, 4-bit (16 distinct floats -> <= 16 symbols per plane)
  // saves a lot.
  EXPECT_LT(quant8.TotalStoredBytes(), lossless.TotalStoredBytes());
  EXPECT_LT(quant4.TotalStoredBytes(), lossless.TotalStoredBytes() * 7 / 10);
  auto restored = quant4.RetrieveSnapshot("s");
  ASSERT_TRUE(restored.ok());
  // Bounded quantization error: range ~[-0.45, 0.45], 16 bins -> half a
  // bin is ~0.03.
  EXPECT_TRUE((*restored)[0].value.ApproxEquals(params[0].value, 0.05f));
}

TEST(ArchiveBuilderTest, InputValidation) {
  MemEnv env;
  ArchiveBuilder builder(&env, "a");
  EXPECT_TRUE(builder.AddSnapshot("s", {}).IsInvalidArgument());
  std::vector<NamedParam> params = {{"w", FloatMatrix(2, 2)}};
  params[0].value.Fill(1.0f);
  ASSERT_TRUE(builder.AddSnapshot("s", params).ok());
  EXPECT_TRUE(builder.AddSnapshot("s", params).IsAlreadyExists());
  EXPECT_TRUE(builder.AddDeltaCandidate("s", "s").IsInvalidArgument());
  EXPECT_TRUE(builder.AddDeltaCandidate("s", "missing").IsNotFound());
  ArchiveOptions options;
  ASSERT_TRUE(builder.Build(options).ok());
  EXPECT_EQ(builder.Build(options).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ArchiveTest, ParallelRetrievalMatchesSequential) {
  ArchiveOptions options;
  options.solver = ArchiveSolver::kPasPt;
  options.budget_alpha = 2.0;
  BuildArchive(options);
  auto reader = ArchiveReader::Open(&env_, "archive");
  ASSERT_TRUE(reader.ok());
  ThreadPool pool(4);
  for (const auto& name : names_) {
    auto sequential = reader->RetrieveSnapshot(name);
    ASSERT_TRUE(sequential.ok());
    auto parallel = reader->RetrieveSnapshotParallel(name, &pool);
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(parallel->size(), sequential->size());
    for (size_t p = 0; p < parallel->size(); ++p) {
      EXPECT_EQ((*parallel)[p].name, (*sequential)[p].name);
      EXPECT_TRUE((*parallel)[p].value.BitEquals((*sequential)[p].value));
    }
  }
  EXPECT_TRUE(reader->RetrieveSnapshotParallel("nope", &pool)
                  .status()
                  .IsNotFound());
}

// Fixture with >= 4-deep delta chains: six checkpoints of one training
// run, adjacent-pair candidates, min-storage solver — every non-root
// vertex deltas off the previous checkpoint, so the last snapshots sit
// five and six links from the materialized roots.
class DeepChainArchiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto snapshots = TrainSnapshots(11, 120, 20);
    ASSERT_EQ(snapshots.size(), 6u);
    ArchiveBuilder builder(&env_, "deep");
    for (size_t i = 0; i < snapshots.size(); ++i) {
      names_.push_back("v1/s" + std::to_string(i));
      ASSERT_TRUE(builder.AddSnapshot(names_.back(), snapshots[i].params).ok());
      originals_.push_back(snapshots[i].params);
    }
    for (size_t i = 1; i < snapshots.size(); ++i) {
      ASSERT_TRUE(builder.AddDeltaCandidate(names_[i - 1], names_[i]).ok());
    }
    ArchiveOptions options;
    options.solver = ArchiveSolver::kMst;
    options.delta_kind = DeltaKind::kXor;  // Bit-exact round trips.
    // These tests exercise retrieval concurrency and cache-eviction
    // behavior, which needs every plane to be a distinct chunk; dedup
    // would shrink the working set below the cache bounds probed here
    // (dedup has its own differential suite in dedup_test.cc).
    options.enable_dedup = false;
    options.enable_similarity_pairing = false;
    ASSERT_TRUE(builder.Build(options).ok());
  }

  MemEnv env_;
  std::vector<std::string> names_;
  std::vector<std::vector<NamedParam>> originals_;
};

// The tentpole acceptance check: retrieving a set of snapshots whose
// delta chains share a prefix, the computation-sharing scheduler fetches
// strictly fewer chunks than the independent per-matrix scheme, with
// bit-identical results to sequential RetrieveSnapshot.
TEST_F(DeepChainArchiveTest, SharedSchemeFetchesStrictlyFewerChunks) {
  auto reader = ArchiveReader::Open(&env_, "deep");
  ASSERT_TRUE(reader.ok());
  ThreadPool pool(4);
  const std::vector<std::string> wanted = {names_[4], names_[5]};

  RetrievalStats independent_stats;
  auto independent = reader->RetrieveSnapshotsParallel(
      wanted, &pool, ParallelScheme::kIndependent, &independent_stats);
  ASSERT_TRUE(independent.ok());
  RetrievalStats shared_stats;
  auto shared = reader->RetrieveSnapshotsParallel(
      wanted, &pool, ParallelScheme::kShared, &shared_stats);
  ASSERT_TRUE(shared.ok());

  // Depth floor: retrieving s5 alone touches more than 4 vertices per
  // parameter on average, so by pigeonhole at least one delta chain is
  // >= 5 vertices (>= 4 delta links) deep — the regime the acceptance
  // criterion targets. (The solver may materialize a few mid-chain
  // vertices where a delta stores worse, so exact counts are plan-
  // dependent.)
  const uint64_t params = originals_[0].size();
  RetrievalStats tail_stats;
  ASSERT_TRUE(reader->RetrieveSnapshot(names_[5], &tail_stats).ok());
  EXPECT_GT(tail_stats.vertices_resolved, 4 * params);
  // Sharing decodes each union vertex once; independent re-decodes the
  // shared s0..s4 prefix for every descendant matrix.
  EXPECT_LE(shared_stats.vertices_resolved, 6 * params);
  EXPECT_GT(independent_stats.vertices_resolved,
            shared_stats.vertices_resolved);
  EXPECT_LT(shared_stats.chunk_fetches, independent_stats.chunk_fetches);
  EXPECT_LT(shared_stats.bytes_read, independent_stats.bytes_read);
  EXPECT_GT(shared_stats.chunk_fetches, 0u);

  ASSERT_EQ(shared->size(), wanted.size());
  ASSERT_EQ(independent->size(), wanted.size());
  for (size_t s = 0; s < wanted.size(); ++s) {
    auto sequential = reader->RetrieveSnapshot(wanted[s]);
    ASSERT_TRUE(sequential.ok());
    ASSERT_EQ((*shared)[s].size(), sequential->size());
    ASSERT_EQ((*independent)[s].size(), sequential->size());
    for (size_t p = 0; p < sequential->size(); ++p) {
      EXPECT_EQ((*shared)[s][p].name, (*sequential)[p].name);
      EXPECT_TRUE((*shared)[s][p].value.BitEquals((*sequential)[p].value));
      EXPECT_TRUE(
          (*independent)[s][p].value.BitEquals((*sequential)[p].value));
    }
  }
}

// Two threads driving parallel retrievals through ONE shared pool must
// not interfere: each call waits on its own WaitGroup, not on the pool's
// global in-flight count. (Run under TSan in CI.)
TEST_F(DeepChainArchiveTest, ConcurrentRetrievalsShareOnePool) {
  auto reader = ArchiveReader::Open(&env_, "deep");
  ASSERT_TRUE(reader.ok());
  ThreadPool pool(3);
  std::atomic<int> failures{0};
  auto retrieve_loop = [&](size_t index, int rounds) {
    for (int r = 0; r < rounds; ++r) {
      auto params = reader->RetrieveSnapshotParallel(names_[index], &pool);
      if (!params.ok()) {
        failures.fetch_add(1);
        return;
      }
      const auto& truth = originals_[index];
      if (params->size() != truth.size()) {
        failures.fetch_add(1);
        return;
      }
      for (size_t p = 0; p < truth.size(); ++p) {
        if (!(*params)[p].value.BitEquals(truth[p].value)) {
          failures.fetch_add(1);
          return;
        }
      }
    }
  };
  std::thread a([&] { retrieve_loop(3, 4); });
  std::thread b([&] { retrieve_loop(5, 4); });
  a.join();
  b.join();
  EXPECT_EQ(failures.load(), 0);
  // The pool is still healthy for unrelated work afterwards.
  std::atomic<bool> ran{false};
  pool.Schedule([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

// The chunk cache honors its configured byte bound during real
// retrievals, and bounded eviction does not corrupt results.
TEST_F(DeepChainArchiveTest, CacheBoundHeldDuringRetrieval) {
  auto reader = ArchiveReader::Open(&env_, "deep");
  ASSERT_TRUE(reader.ok());
  reader->EnableChunkCache(true);
  const uint64_t bound = 32 * 1024;
  reader->SetChunkCacheCapacity(bound);
  ThreadPool pool(4);
  for (const auto& name : names_) {
    auto params = reader->RetrieveSnapshotParallel(name, &pool);
    ASSERT_TRUE(params.ok());
    EXPECT_LE(reader->store_stats().cache_bytes, bound);
  }
  const ChunkStoreStats stats = reader->store_stats();
  EXPECT_GT(stats.cache_evictions, 0u);
  // Second pass: correctness with a warm-but-bounded cache.
  for (size_t s = 0; s < names_.size(); ++s) {
    auto params = reader->RetrieveSnapshot(names_[s]);
    ASSERT_TRUE(params.ok());
    EXPECT_LE(reader->store_stats().cache_bytes, bound);
    ASSERT_EQ(params->size(), originals_[s].size());
    for (size_t p = 0; p < params->size(); ++p) {
      EXPECT_TRUE((*params)[p].value.BitEquals(originals_[s][p].value));
    }
  }
}

TEST_F(DeepChainArchiveTest, BatchRetrievalValidation) {
  auto reader = ArchiveReader::Open(&env_, "deep");
  ASSERT_TRUE(reader.ok());
  ThreadPool pool(2);
  // Unknown member of the batch: NotFound, no hang, pool reusable.
  EXPECT_TRUE(reader->RetrieveSnapshotsParallel({names_[0], "nope"}, &pool)
                  .status()
                  .IsNotFound());
  // Empty batch: trivially succeeds.
  auto empty = reader->RetrieveSnapshotsParallel({}, &pool);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  // Duplicate snapshots are each materialized in request order.
  auto dup = reader->RetrieveSnapshotsParallel({names_[2], names_[2]}, &pool);
  ASSERT_TRUE(dup.ok());
  ASSERT_EQ(dup->size(), 2u);
  ASSERT_EQ((*dup)[0].size(), (*dup)[1].size());
  for (size_t p = 0; p < (*dup)[0].size(); ++p) {
    EXPECT_TRUE((*dup)[0][p].value.BitEquals((*dup)[1][p].value));
  }
}

TEST(ArchiveTierTest, RemoteTierChosenWhenCheaperAndBudgetsPushBack) {
  // The paper's multi-tier edges: remote is cheaper to hold but slower to
  // recreate from. With no budgets, everything drifts remote; with tight
  // budgets, payloads stay local.
  MemEnv env;
  const auto snapshots = TrainSnapshots(21, 40, 20);
  auto build = [&](const char* dir, double budget_alpha) {
    ArchiveBuilder builder(&env, dir);
    std::vector<std::string> names;
    for (size_t i = 0; i < snapshots.size(); ++i) {
      names.push_back("m/s" + std::to_string(i));
      EXPECT_TRUE(builder.AddSnapshot(names.back(), snapshots[i].params).ok());
      if (i > 0) {
        EXPECT_TRUE(builder.AddDeltaCandidate(names[i - 1], names[i]).ok());
      }
    }
    ArchiveOptions options;
    options.solver = ArchiveSolver::kPasMt;
    options.enable_remote_tier = true;
    options.remote_storage_discount = 0.5;
    options.remote_read_penalty = 8.0;
    options.budget_alpha = budget_alpha;
    auto report = builder.Build(options);
    EXPECT_TRUE(report.ok());
    return *report;
  };
  const ArchiveBuildReport unconstrained = build("a_loose", 0.0);
  // No budgets: the 50% storage discount wins everywhere.
  EXPECT_EQ(unconstrained.remote_payloads, unconstrained.num_vertices);
  const ArchiveBuildReport constrained = build("a_tight", 1.05);
  // Tight budgets (1.05x the all-local SPT): the x8 remote read penalty is
  // unaffordable, so most payloads must stay local.
  EXPECT_TRUE(constrained.budgets_satisfied);
  EXPECT_LT(constrained.remote_payloads, constrained.num_vertices / 2);

  // Both archives round trip, remote store included.
  for (const char* dir : {"a_loose", "a_tight"}) {
    auto reader = ArchiveReader::Open(&env, dir);
    ASSERT_TRUE(reader.ok());
    for (size_t s = 0; s < snapshots.size(); ++s) {
      auto params = reader->RetrieveSnapshot("m/s" + std::to_string(s));
      ASSERT_TRUE(params.ok()) << dir;
      for (size_t p = 0; p < params->size(); ++p) {
        EXPECT_TRUE((*params)[p].value.ApproxEquals(
            snapshots[s].params[p].value, 1e-5f));
      }
    }
  }
  // The loose archive actually wrote a remote store file.
  EXPECT_TRUE(env.FileExists("a_loose/remote-1.bin"));
}

TEST(ArchiveTierTest, PartialBoundsWorkAcrossTiers) {
  MemEnv env;
  const auto snapshots = TrainSnapshots(22, 40, 20);
  ArchiveBuilder builder(&env, "arch");
  ASSERT_TRUE(builder.AddSnapshot("a", snapshots[0].params).ok());
  ASSERT_TRUE(builder.AddSnapshot("b", snapshots[1].params).ok());
  ASSERT_TRUE(builder.AddDeltaCandidate("a", "b").ok());
  ArchiveOptions options;
  options.enable_remote_tier = true;
  auto report = builder.Build(options);
  ASSERT_TRUE(report.ok());
  auto reader = ArchiveReader::Open(&env, "arch");
  ASSERT_TRUE(reader.ok());
  auto bounds = reader->RetrieveSnapshotBounds("b", 2);
  ASSERT_TRUE(bounds.ok());
  for (const auto& param : snapshots[1].params) {
    EXPECT_TRUE(bounds->count(param.name));
  }
}

// Property sweep: every solver x delta kind must produce an archive whose
// snapshots read back (bit-exactly for XOR, within rounding for SUB).
using ArchiveSweepCase = std::tuple<ArchiveSolver, DeltaKind, double>;

class ArchiveSweepTest : public ::testing::TestWithParam<ArchiveSweepCase> {};

TEST_P(ArchiveSweepTest, RoundTripsUnderEveryConfiguration) {
  const auto& [solver, delta_kind, alpha] = GetParam();
  MemEnv env;
  const auto snapshots = TrainSnapshots(7, 40, 20);
  ASSERT_GE(snapshots.size(), 2u);
  ArchiveBuilder builder(&env, "arch");
  std::vector<std::string> names;
  for (size_t i = 0; i < snapshots.size(); ++i) {
    names.push_back("m/s" + std::to_string(i));
    ASSERT_TRUE(builder.AddSnapshot(names.back(), snapshots[i].params).ok());
    if (i > 0) {
      ASSERT_TRUE(builder.AddDeltaCandidate(names[i - 1], names[i]).ok());
    }
  }
  ArchiveOptions options;
  options.solver = solver;
  options.delta_kind = delta_kind;
  options.budget_alpha = alpha;
  auto report = builder.Build(options);
  ASSERT_TRUE(report.ok());
  if (alpha >= 1.0 && (solver == ArchiveSolver::kPasMt ||
                       solver == ArchiveSolver::kPasPt ||
                       solver == ArchiveSolver::kSpt)) {
    EXPECT_TRUE(report->budgets_satisfied);
  }
  auto reader = ArchiveReader::Open(&env, "arch");
  ASSERT_TRUE(reader.ok());
  for (size_t s = 0; s < names.size(); ++s) {
    auto params = reader->RetrieveSnapshot(names[s]);
    ASSERT_TRUE(params.ok());
    ASSERT_EQ(params->size(), snapshots[s].params.size());
    for (size_t p = 0; p < params->size(); ++p) {
      if (delta_kind == DeltaKind::kXor) {
        EXPECT_TRUE(
            (*params)[p].value.BitEquals(snapshots[s].params[p].value));
      } else {
        EXPECT_TRUE((*params)[p].value.ApproxEquals(
            snapshots[s].params[p].value, 1e-5f));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SolversAndDeltas, ArchiveSweepTest,
    ::testing::Combine(
        ::testing::Values(ArchiveSolver::kMst, ArchiveSolver::kSpt,
                          ArchiveSolver::kLast, ArchiveSolver::kPasMt,
                          ArchiveSolver::kPasPt),
        ::testing::Values(DeltaKind::kSub, DeltaKind::kXor),
        ::testing::Values(0.0, 1.6)));

// ----------------------------------------------------------- Progressive

TEST(ProgressiveTest, LabelsMatchFullPrecisionAndBytesShrink) {
  MemEnv env;
  // Train a glyph classifier well enough that logits separate.
  const Dataset ds = MakeGlyphDataset(
      {.num_samples = 300, .num_classes = 6, .image_size = 16, .seed = 3});
  NetworkDef def = MiniVgg(6, 16, 1);
  auto net = Network::Create(def);
  ASSERT_TRUE(net.ok());
  Rng rng(5);
  net->InitializeWeights(&rng);
  TrainOptions topt;
  topt.iterations = 150;
  topt.batch_size = 24;
  auto trained = TrainNetwork(&*net, ds, topt);
  ASSERT_TRUE(trained.ok());
  ASSERT_GT(trained->final_accuracy, 0.8);

  ArchiveBuilder builder(&env, "arch");
  ASSERT_TRUE(builder.AddSnapshot("final", net->GetParameters()).ok());
  ArchiveOptions aopt;
  ASSERT_TRUE(builder.Build(aopt).ok());
  auto reader = ArchiveReader::Open(&env, "arch");
  ASSERT_TRUE(reader.ok());

  // Evaluate 40 samples progressively.
  std::vector<int64_t> indices;
  for (int64_t i = 0; i < 40; ++i) indices.push_back(i);
  Tensor batch;
  std::vector<int> labels;
  ds.Gather(indices, &batch, &labels);

  ProgressiveQueryEvaluator evaluator(&*reader, def);
  ProgressiveOptions popt;
  popt.top_k = 1;
  auto result = evaluator.Evaluate("final", batch, popt);
  ASSERT_TRUE(result.ok());

  // Guarantee: progressive labels equal full-precision labels.
  auto exact = net->Predict(batch);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(result->labels, *exact);

  // Most samples should resolve without all four planes, and total bytes
  // must undercut full retrieval (the point of Fig 6(d)).
  int resolved_early = result->resolved_at[1] + result->resolved_at[2] +
                       result->resolved_at[3];
  EXPECT_GT(resolved_early, 20);
  EXPECT_LT(result->bytes_read, result->full_bytes);
  // Histogram and per-sample plane lists agree.
  int histogram_total = 0;
  for (int p = 1; p <= 4; ++p) histogram_total += result->resolved_at[p];
  EXPECT_EQ(histogram_total, 40);
}

TEST(ProgressiveTest, Top5EasierThanTop1) {
  MemEnv env;
  const Dataset ds = MakeGlyphDataset(
      {.num_samples = 200, .num_classes = 10, .image_size = 16, .seed = 9});
  NetworkDef def = MiniVgg(10, 16, 1);
  auto net = Network::Create(def);
  ASSERT_TRUE(net.ok());
  Rng rng(7);
  net->InitializeWeights(&rng);
  TrainOptions topt;
  topt.iterations = 100;
  auto trained = TrainNetwork(&*net, ds, topt);
  ASSERT_TRUE(trained.ok());

  ArchiveBuilder builder(&env, "arch");
  ASSERT_TRUE(builder.AddSnapshot("final", net->GetParameters()).ok());
  ASSERT_TRUE(builder.Build(ArchiveOptions()).ok());
  auto reader = ArchiveReader::Open(&env, "arch");
  ASSERT_TRUE(reader.ok());

  std::vector<int64_t> indices;
  for (int64_t i = 0; i < 30; ++i) indices.push_back(i);
  Tensor batch;
  std::vector<int> labels;
  ds.Gather(indices, &batch, &labels);

  ProgressiveQueryEvaluator evaluator(&*reader, def);
  ProgressiveOptions top1;
  top1.top_k = 1;
  ProgressiveOptions top5;
  top5.top_k = 5;
  auto r1 = evaluator.Evaluate("final", batch, top1);
  auto r5 = evaluator.Evaluate("final", batch, top5);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r5.ok());
  // Both determinations must be internally consistent and never fetch more
  // than the full archive. (Top-5 is not universally easier than top-1:
  // separating rank 5 from rank 6 can be harder than rank 1 from rank 2,
  // so we assert soundness rather than an ordering.)
  for (const auto* r : {&*r1, &*r5}) {
    int histogram_total = 0;
    for (int p = 1; p <= 4; ++p) histogram_total += r->resolved_at[p];
    EXPECT_EQ(histogram_total, 30);
    for (int planes : r->planes_needed) {
      EXPECT_GE(planes, 1);
      EXPECT_LE(planes, 4);
    }
    EXPECT_LE(r->bytes_read, r->full_bytes * 2);
  }
  // Top-1 labels are exact by the Lemma 4 guarantee.
  auto exact = net->Predict(batch);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(r1->labels, *exact);
}

TEST(ProgressiveTest, OptionValidation) {
  MemEnv env;
  std::vector<NamedParam> params = {{"fc1.W", FloatMatrix(2, 2)}};
  params[0].value.Fill(0.5f);
  ArchiveBuilder builder(&env, "arch");
  ASSERT_TRUE(builder.AddSnapshot("s", params).ok());
  ASSERT_TRUE(builder.Build(ArchiveOptions()).ok());
  auto reader = ArchiveReader::Open(&env, "arch");
  ASSERT_TRUE(reader.ok());
  NetworkDef def("d", 1, 2, 2);
  ASSERT_TRUE(def.Append(MakeFull("fc1", 2)).ok());
  ProgressiveQueryEvaluator evaluator(&*reader, def);
  Tensor input(1, 1, 2, 2);
  ProgressiveOptions bad;
  bad.top_k = 0;
  EXPECT_TRUE(
      evaluator.Evaluate("s", input, bad).status().IsInvalidArgument());
  bad.top_k = 1;
  bad.initial_planes = 5;
  EXPECT_TRUE(
      evaluator.Evaluate("s", input, bad).status().IsInvalidArgument());
}

// Every successful Get is either a cache hit or a disk fetch — exactly
// one of the two. The counters are relaxed atomics updated from many
// threads (run under TSan in CI); after the threads join, the totals
// must balance and match the byte counter.
TEST(ChunkStoreTest, StatsConsistentUnderConcurrentAccess) {
  MemEnv env;
  ChunkStoreWriter writer(&env, "s.bin");
  Rng rng(21);
  constexpr int kChunks = 12;
  for (int i = 0; i < kChunks; ++i) {
    std::string data(512 + rng.Uniform(512), '\0');
    for (auto& c : data) c = static_cast<char>(rng.Uniform(6));
    ASSERT_TRUE(writer.Put(Slice(data), CodecType::kDeflateLite).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
  auto reader = ChunkStoreReader::Open(&env, "s.bin");
  ASSERT_TRUE(reader.ok());
  reader->EnableCache(true);
  // Roomy capacity: every chunk stays cached, so hits are deterministic.
  // (LruEviction covers the tight-capacity path.)
  reader->SetCacheCapacity(1 << 16);
  ThreadPool pool(4);
  WaitGroup group;
  std::atomic<uint64_t> gets{0};
  for (int t = 0; t < 8; ++t) {
    pool.Schedule(&group, [&, t] {
      for (int i = 0; i < 64; ++i) {
        const uint32_t id = static_cast<uint32_t>((i * 5 + t) % kChunks);
        if (reader->Get(id).ok()) gets.fetch_add(1);
      }
    });
  }
  group.Wait();
  const ChunkStoreStats stats = reader->stats();
  EXPECT_EQ(gets.load(), 8u * 64u);
  EXPECT_EQ(stats.chunk_fetches + stats.cache_hits, gets.load());
  EXPECT_GT(stats.chunk_fetches, 0u);
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GT(stats.bytes_read, 0u);
  EXPECT_EQ(reader->bytes_read(), stats.bytes_read);
  EXPECT_LE(stats.cache_bytes, 1u << 16);
}

// Retrieval that dies partway (injected read fault) must still emit the
// stats accumulated up to the failure — an operator watching a stuck
// checkout needs to see how far it got, not stale numbers from the
// previous call.
TEST(ArchiveFaultTest, PartialRetrievalStatsOnReadError) {
  MemEnv mem;
  const auto snapshots = TrainSnapshots(7);
  ASSERT_EQ(snapshots.size(), 3u);
  std::vector<std::string> names;
  {
    ArchiveBuilder builder(&mem, "arch");
    for (size_t i = 0; i < snapshots.size(); ++i) {
      names.push_back("v/s" + std::to_string(i));
      ASSERT_TRUE(builder.AddSnapshot(names[i], snapshots[i].params).ok());
    }
    for (size_t i = 1; i < snapshots.size(); ++i) {
      ASSERT_TRUE(builder.AddDeltaCandidate(names[i - 1], names[i]).ok());
    }
    ArchiveOptions options;
    options.solver = ArchiveSolver::kMst;  // Forces delta chains.
    ASSERT_TRUE(builder.Build(options).ok());
  }
  FaultInjectionEnv fault(&mem);
  auto reader = ArchiveReader::Open(&fault, "arch");
  ASSERT_TRUE(reader.ok());
  reader->EnableChunkCache(true);
  // Warm the cache with the chain base so the failing retrieval can make
  // partial progress without touching the (faulted) disk.
  RetrievalStats stats;
  ASSERT_TRUE(reader->RetrieveSnapshot(names[0], &stats).ok());
  EXPECT_GT(stats.vertices_resolved, 0u);

  fault.FailReadsMatching("arch");
  RetrievalStats failed_stats;
  failed_stats.bytes_read = 99999999;  // Sentinel: the call must reset it.
  failed_stats.vertices_resolved = 99999999;
  auto failed = reader->RetrieveSnapshot(names[2], &failed_stats);
  ASSERT_FALSE(failed.ok());
  // Stats were reset at entry and reflect this call, not the previous one.
  EXPECT_LT(failed_stats.bytes_read, 99999999u);
  EXPECT_LT(failed_stats.vertices_resolved, 99999999u);

  // Retrieving a cached snapshot and a faulted one together: the batch
  // fails, but the emitted stats show the partial progress (the cached
  // snapshot's vertices resolved, its chunk reads served by the cache).
  ThreadPool pool(2);
  RetrievalStats partial;
  partial.bytes_read = 99999999;
  auto parallel = reader->RetrieveSnapshotsParallel(
      {names[0], names[2]}, &pool, ParallelScheme::kIndependent, &partial);
  ASSERT_FALSE(parallel.ok());
  EXPECT_LT(partial.bytes_read, 99999999u);
  EXPECT_GT(partial.vertices_resolved, 0u);
  EXPECT_GT(partial.cache_hits, 0u);

  // Disarm the fault: the same reader retrieves cleanly again.
  fault.Reset();
  ASSERT_TRUE(reader->RetrieveSnapshot(names[2]).ok());
}

// ------------------------------------------------------------ golden

// Opens the checked-in golden archive (written by an earlier build via
// tools/make_golden_archive) with today's reader. This is the format-
// compatibility contract: if this test needs the fixture regenerated to
// pass, the change broke every existing on-disk archive.
TEST(GoldenArchiveTest, TodaysReaderOpensCheckedInArchive) {
  Env* env = Env::Default();
  const std::string dir = std::string(MH_TESTDATA_DIR) + "/golden_archive";
  ASSERT_TRUE(env->FileExists(dir + "/manifest.bin"))
      << "fixture missing; regenerate with tools/make_golden_archive";
  auto reader = ArchiveReader::Open(env, dir);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ASSERT_EQ(reader->snapshot_names().size(), 3u);
  EXPECT_TRUE(reader->VerifyIntegrity().empty());

  // The fixture was built with kXor deltas, so retrieval is bit-exact:
  // recompute the generator's matrices and compare exactly.
  auto golden_matrix = [](int64_t rows, int64_t cols, uint64_t seed) {
    Rng rng(seed);
    FloatMatrix m(rows, cols);
    m.FillGaussian(&rng, 0.1f);
    return m;
  };
  auto drift = [](const FloatMatrix& base, uint64_t seed) {
    Rng rng(seed);
    FloatMatrix next = base;
    for (auto& v : next.data()) {
      v += static_cast<float>(rng.NextGaussian()) * 0.01f;
    }
    return next;
  };
  std::map<std::string, std::map<std::string, FloatMatrix>> want;
  want["golden@0"]["conv1"] = golden_matrix(8, 12, 101);
  want["golden@0"]["fc"] = golden_matrix(4, 10, 102);
  want["golden@1"]["conv1"] = drift(want["golden@0"]["conv1"], 201);
  want["golden@1"]["fc"] = drift(want["golden@0"]["fc"], 202);
  want["golden@2"]["conv1"] = drift(want["golden@1"]["conv1"], 301);
  want["golden@2"]["fc"] = drift(want["golden@1"]["fc"], 302);
  for (const auto& [snapshot, params] : want) {
    SCOPED_TRACE(snapshot);
    auto got = reader->RetrieveSnapshot(snapshot);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->size(), params.size());
    for (const auto& param : *got) {
      SCOPED_TRACE(param.name);
      const auto it = params.find(param.name);
      ASSERT_TRUE(it != params.end());
      EXPECT_TRUE(param.value.BitEquals(it->second));
    }
  }
}

TEST(ArchiveSolverTest, NameCoverage) {
  EXPECT_EQ(ArchiveSolverToString(ArchiveSolver::kMst), "mst");
  EXPECT_EQ(ArchiveSolverToString(ArchiveSolver::kSpt), "spt");
  EXPECT_EQ(ArchiveSolverToString(ArchiveSolver::kLast), "last");
  EXPECT_EQ(ArchiveSolverToString(ArchiveSolver::kPasMt), "pas-mt");
  EXPECT_EQ(ArchiveSolverToString(ArchiveSolver::kPasPt), "pas-pt");
}

}  // namespace
}  // namespace modelhub
