#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/metrics.h"
#include "common/slice.h"
#include "common/trace.h"
#include "data/dataset.h"
#include "dlv/fsck.h"
#include "dlv/repository.h"
#include "net/client.h"
#include "nn/trainer.h"
#include "nn/zoo.h"
#include "pas/archive.h"
#include "pas/coalesce.h"
#include "server/modelhubd.h"

namespace modelhub {
namespace {

// ---------------------------------------------------- SnapshotCoalescer

TEST(CoalescerTest, BurstSharesOneFetch) {
  std::atomic<int> fetch_calls{0};
  SnapshotCoalescer coalescer(
      [&](const std::string& key, int planes) -> Result<std::string> {
        fetch_calls.fetch_add(1);
        // Hold the flight open long enough that the burst overlaps it.
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        return key + "#" + std::to_string(planes);
      },
      /*linger_ms=*/5000);

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      auto got = coalescer.Fetch("vgg/s1", 0);
      if (!got.ok() || **got != "vgg/s1#0") failures.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  // The linger window makes this deterministic: even a thread scheduled
  // after the flight completed joins the lingering result.
  EXPECT_EQ(fetch_calls.load(), 1);
  EXPECT_EQ(coalescer.misses(), 1u);
  EXPECT_EQ(coalescer.hits(), static_cast<uint64_t>(kThreads - 1));
}

TEST(CoalescerTest, ErrorsNeverLinger) {
  std::atomic<int> fetch_calls{0};
  SnapshotCoalescer coalescer(
      [&](const std::string& key, int) -> Result<std::string> {
        if (fetch_calls.fetch_add(1) == 0) {
          return Status::IOError("transient");
        }
        return std::string("recovered");
      },
      /*linger_ms=*/5000);

  auto first = coalescer.Fetch("m/s0", 0);
  EXPECT_TRUE(first.status().IsIOError());
  // A lingering error would make this a hit; errors must be retried.
  auto second = coalescer.Fetch("m/s0", 0);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(**second, "recovered");
  EXPECT_EQ(fetch_calls.load(), 2);
  EXPECT_EQ(coalescer.misses(), 2u);
}

TEST(CoalescerTest, DistinctKeysFetchSeparately) {
  std::atomic<int> fetch_calls{0};
  SnapshotCoalescer coalescer(
      [&](const std::string& key, int planes) -> Result<std::string> {
        fetch_calls.fetch_add(1);
        return key + "/" + std::to_string(planes);
      },
      /*linger_ms=*/5000);
  ASSERT_TRUE(coalescer.Fetch("a/s0", 0).ok());
  ASSERT_TRUE(coalescer.Fetch("a/s0", 1).ok());  // Same key, other planes.
  ASSERT_TRUE(coalescer.Fetch("b/s0", 0).ok());
  EXPECT_EQ(fetch_calls.load(), 3);
  EXPECT_EQ(coalescer.misses(), 3u);
  EXPECT_EQ(coalescer.hits(), 0u);
}

// ------------------------------------------------------- ModelHubServer
//
// Server tests run against a real on-disk repository with Env::Default():
// worker threads and retrieval threads touch the Env concurrently, and
// MemEnv is deliberately not thread-safe.

void CommitOne(Repository* repo, const std::string& name) {
  const Dataset ds = MakeBlobDataset(64, 4, 12, 0.05f, name.size());
  NetworkDef def = MiniVgg(4, 12, 1);
  def.set_name(name);
  auto net = Network::Create(def);
  ASSERT_TRUE(net.ok());
  Rng rng(1);
  net->InitializeWeights(&rng);
  TrainOptions options;
  options.iterations = 20;
  options.snapshot_every = 10;
  auto trained = TrainNetwork(&*net, ds, options);
  ASSERT_TRUE(trained.ok());
  CommitRequest request;
  request.name = name;
  request.network = def;
  request.snapshots = trained->snapshots;
  request.log = trained->log;
  ASSERT_TRUE(repo->Commit(request).ok());
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = Env::Default();
    root_ = ::testing::TempDir() + "/mh_server_repo";
    RemoveTree(env_, root_);  // Leftovers from a previous run.
    auto repo = Repository::Init(env_, root_);
    ASSERT_TRUE(repo.ok()) << repo.status().ToString();
    CommitOne(&*repo, "served_v1");
    auto built = repo->Archive(ArchiveOptions{});
    ASSERT_TRUE(built.ok()) << built.status().ToString();
  }

  void TearDown() override { RemoveTree(env_, root_); }

  Env* env_ = nullptr;
  std::string root_;
};

TEST_F(ServerTest, BasicOpsOverLoopback) {
  ModelHubServer server(env_, root_);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  auto client = ModelHubClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto pong = client->Ping();
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  // The liveness token leads (old clients key on the prefix); the
  // appended state tokens parse into PingInfo.
  EXPECT_EQ(pong->rfind("pong", 0), 0u);
  auto info = ParsePingReply(*pong);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->state, "serving");
  EXPECT_FALSE(info->draining());
  EXPECT_GE(info->active, 1);  // This very connection is active.

  auto models = client->ListModels();
  ASSERT_TRUE(models.ok()) << models.status().ToString();
  EXPECT_NE(models->find("served_v1"), std::string::npos);

  // Exact retrieval must match a direct repository read bit-for-bit.
  auto repo = Repository::Open(env_, root_);
  ASSERT_TRUE(repo.ok());
  auto direct = repo->GetSnapshotParams("served_v1");
  ASSERT_TRUE(direct.ok());
  auto remote = client->GetSnapshot("served_v1");
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  ASSERT_EQ(remote->size(), direct->size());
  for (size_t i = 0; i < direct->size(); ++i) {
    EXPECT_EQ((*remote)[i].name, (*direct)[i].name);
    EXPECT_EQ((*remote)[i].value.size(), (*direct)[i].value.size());
  }

  auto bounds = client->GetSnapshotBounds("served_v1", 1, 2);
  ASSERT_TRUE(bounds.ok()) << bounds.status().ToString();
  EXPECT_NE(bounds->find("planes=2"), std::string::npos);
  EXPECT_NE(bounds->find("max_width"), std::string::npos);

  auto query = client->Query("select m where m.name like \"%\"");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_NE(query->find("served_v1"), std::string::npos);

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->find("server.requests.count"), std::string::npos);
  EXPECT_NE(stats->find("server.uptime_seconds"), std::string::npos);
  EXPECT_NE(stats->find("server.starts.count"), std::string::npos);

  // Server-side errors keep their typed code and gain a "server: "
  // message prefix (transport faults have no such prefix).
  auto missing = client->GetSnapshot("no_such_model");
  EXPECT_TRUE(missing.status().IsNotFound())
      << missing.status().ToString();
  EXPECT_EQ(missing.status().message().rfind("server: ", 0), 0u);

  EXPECT_TRUE(server.Stop().ok());
  EXPECT_FALSE(server.running());
}

TEST_F(ServerTest, SixteenClientSoakCoalesces) {
  ServerOptions options;
  options.coalesce_linger_ms = 3000;  // Burst retrievals share one fetch.
  ModelHubServer server(env_, root_, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 16;
  constexpr int kIterations = 6;
  std::atomic<int> failed_requests{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = ModelHubClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failed_requests.fetch_add(kIterations);
        return;
      }
      for (int i = 0; i < kIterations; ++i) {
        // Everyone hammers the SAME snapshot so flights overlap; pings
        // interleave to vary per-connection timing.
        if ((c + i) % 2 == 0) {
          if (!client->Ping().ok()) failed_requests.fetch_add(1);
        }
        auto snapshot = client->GetSnapshot("served_v1");
        if (!snapshot.ok() || snapshot->empty()) failed_requests.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(failed_requests.load(), 0);
  EXPECT_GT(server.coalesce_hits(), 0u);
  EXPECT_GE(server.coalesce_misses(), 1u);
  EXPECT_TRUE(server.Stop().ok());
}

TEST_F(ServerTest, ShedsWhenSaturated) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_connections = 2;
  options.queue_capacity = 1;
  ModelHubServer server(env_, root_, options);
  ASSERT_TRUE(server.Start().ok());

  // c1 occupies the only worker (a connected client holds its worker
  // between requests); c2 fills the one queue slot; c3 must be shed.
  auto c1 = ModelHubClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c1->Ping().ok());  // Proves c1 reached its worker.
  auto c2 = ModelHubClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(c2.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  auto c3 = ModelHubClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(c3.ok());  // TCP accepts; the shed happens at frame level.
  auto shed = c3->Ping();
  EXPECT_TRUE(shed.status().IsUnavailable()) << shed.status().ToString();
  EXPECT_EQ(shed.status().message().rfind("server: ", 0), 0u);

  // Freeing the worker un-queues c2 and it gets served normally.
  c1 = Status::Unavailable("dropped");  // Hang up; releases the worker.
  auto pong = c2->Ping();
  EXPECT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_TRUE(server.Stop().ok());
}

TEST_F(ServerTest, QueuedConnectionServedOnceWorkerFrees) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_connections = 4;
  options.queue_capacity = 2;
  ModelHubServer server(env_, root_, options);
  ASSERT_TRUE(server.Start().ok());

  auto held = ModelHubClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(held.ok());
  ASSERT_TRUE(held->Ping().ok());  // held now owns the single worker.

  std::atomic<bool> served{false};
  std::thread waiter([&] {
    auto queued = ModelHubClient::Connect("127.0.0.1", server.port());
    if (queued.ok() && queued->Ping().ok()) served.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(served.load());  // Still queued behind the held worker.

  // Hanging up releases the worker; the queued connection gets served.
  held = Status::Unavailable("dropped");
  waiter.join();
  EXPECT_TRUE(served.load());
  EXPECT_TRUE(server.Stop().ok());
}

TEST_F(ServerTest, QueuedPastIdleTimeoutIsShedNotServed) {
  // Regression: a connection that sat in the accept queue longer than
  // idle_timeout_ms used to be handed to a worker anyway, serving a
  // request whose client had long since timed out. It must be shed with
  // a typed kUnavailable instead.
  ServerOptions options;
  options.num_workers = 1;
  options.max_connections = 4;
  options.queue_capacity = 2;
  options.idle_timeout_ms = 100;  // Queue-age budget under test.
  ModelHubServer server(env_, root_, options);
  ASSERT_TRUE(server.Start().ok());

  // An open connection holds its worker between requests, so the ping
  // below parks the single worker on `held`.
  auto held = ModelHubClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(held.ok());
  ASSERT_TRUE(held->Ping().ok());

  // This connection queues behind the pinned worker and goes stale.
  auto stale = ModelHubClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(stale.ok());

  // Keep the worker pinned well past the idle timeout — each ping resets
  // held's idle deadline, so the worker only frees when held hangs up,
  // by which point the queued connection is unambiguously stale.
  for (int i = 0; i < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    ASSERT_TRUE(held->Ping().ok());
  }
  held = Status::Unavailable("dropped");
  auto shed = stale->Ping();
  EXPECT_TRUE(shed.status().IsUnavailable()) << shed.status().ToString();
  EXPECT_NE(shed.status().message().find("queued past idle timeout"),
            std::string::npos)
      << shed.status().ToString();
  EXPECT_TRUE(server.Stop().ok());
}

TEST_F(ServerTest, ShutdownRpcDrainsGracefully) {
  ModelHubServer server(env_, root_);
  ASSERT_TRUE(server.Start().ok());
  auto client = ModelHubClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Shutdown().ok());  // Response written before drain.
  server.WaitUntilStopRequested();
  EXPECT_TRUE(server.stop_requested());
  EXPECT_TRUE(server.Stop().ok());
  EXPECT_FALSE(server.running());

  // A drained server refuses new connections.
  auto late = ModelHubClient::Connect("127.0.0.1", server.port());
  EXPECT_FALSE(late.ok());
}

TEST_F(ServerTest, DrainGraceKeepsServingWhileAdvertisingDraining) {
  ServerOptions options;
  options.drain_grace_ms = 3000;
  ModelHubServer server(env_, root_, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = ModelHubClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Shutdown().ok());
  server.WaitUntilStopRequested();

  // Inside the grace window the listener stays open: a NEW connection is
  // accepted, PING advertises draining (so a router steers away instead
  // of eating a refusal), and reads still serve.
  auto during = ModelHubClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(during.ok()) << during.status().ToString();
  auto pong = during->Ping();
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  auto info = ParsePingReply(*pong);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->draining()) << *pong;
  auto models = during->ListModels();
  ASSERT_TRUE(models.ok()) << models.status().ToString();
  EXPECT_NE(models->find("served_v1"), std::string::npos);

  // Stop waits out the grace window; afterwards connections are refused.
  EXPECT_TRUE(server.Stop().ok());
  auto late = ModelHubClient::Connect("127.0.0.1", server.port());
  EXPECT_FALSE(late.ok());
}

TEST_F(ServerTest, StartFailsOnMissingRepository) {
  ModelHubServer server(env_, root_ + "_nonexistent");
  EXPECT_FALSE(server.Start().ok());
  EXPECT_FALSE(server.running());
}

TEST_F(ServerTest, EmbeddedMaintenanceCompactsWhileServing) {
  // Baseline read, scoped so no test-held reader pins a generation while
  // the daemon compacts underneath the server.
  std::vector<NamedParam> want;
  {
    auto repo = Repository::Open(env_, root_);
    ASSERT_TRUE(repo.ok());
    auto direct = repo->GetSnapshotParams("served_v1");
    ASSERT_TRUE(direct.ok());
    want = std::move(*direct);
  }

  ServerOptions options;
  options.enable_maintenance = true;
  options.maintenance.interval_ms = 50;
  ModelHubServer server(env_, root_, options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.maintenance(), nullptr);

  auto client = ModelHubClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  // Serve traffic while cycles run: every retrieval — before, during, and
  // after a plan swap — must return the identical snapshot.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  bool compacted = false;
  while (std::chrono::steady_clock::now() < deadline) {
    auto remote = client->GetSnapshot("served_v1");
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    ASSERT_EQ(remote->size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ((*remote)[i].name, want[i].name);
      EXPECT_TRUE((*remote)[i].value.ApproxEquals(want[i].value, 1e-5f));
    }
    if (server.maintenance()->status().cycles_completed >= 2) {
      compacted = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(compacted);

  // STATS splices the MAINTAIN_STATUS document.
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->find("\"maintenance\""), std::string::npos);
  EXPECT_NE(stats->find("\"cycles_completed\""), std::string::npos);

  EXPECT_TRUE(server.Stop().ok());
  // The daemon left a repository fsck calls healthy.
  auto fsck = RunFsck(env_, root_);
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck->clean()) << fsck->ToString();
}

// ------------------------------------------------------- Observability

TEST_F(ServerTest, GetMetricsReturnsPrometheusText) {
  ModelHubServer server(env_, root_);
  ASSERT_TRUE(server.Start().ok());
  auto client = ModelHubClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Ping().ok());
  auto text = client->Metrics();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("# TYPE server_requests_count counter"),
            std::string::npos);
  // The ping recorded before this scrape shows up as a histogram with
  // cumulative buckets. (get_metrics' own latency lands after the
  // snapshot, so it only appears from the second scrape on.)
  EXPECT_NE(text->find("server_op_ping_us_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_TRUE(server.Stop().ok());
}

TEST_F(ServerTest, SampledTraceRecordsServerSpans) {
  TraceRecorder* recorder = TraceRecorder::Global();
  recorder->SetEnabled(false);  // Only the wire sampling flag matters.
  recorder->Clear();

  ModelHubServer server(env_, root_);
  ASSERT_TRUE(server.Start().ok());
  auto client = ModelHubClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  TraceContext ctx = MakeSampledTraceContext();
  {
    ScopedTraceContext scope(ctx);
    ASSERT_TRUE(client->GetSnapshot("served_v1").ok());
  }
  auto dump = client->GetTraceDump();
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  std::vector<TraceNodeDump> dumps;
  ASSERT_TRUE(ParseTraceDumps(Slice(*dump), &dumps).ok());
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_EQ(dumps[0].node.rfind("modelhubd@", 0), 0u);
  EXPECT_NE(dumps[0].node.find(std::to_string(server.port())),
            std::string::npos);
  // The server.request span (and any nested spans) carry the client's
  // trace id; the untraced GET_TRACE rpc itself recorded nothing.
  bool found_request = false;
  for (const TraceEvent& e : dumps[0].events) {
    EXPECT_EQ(e.trace_hi, ctx.trace_hi);
    EXPECT_EQ(e.trace_lo, ctx.trace_lo);
    if (e.name == "server.request") found_request = true;
  }
  ASSERT_FALSE(dumps[0].events.empty());
  EXPECT_TRUE(found_request);
  EXPECT_TRUE(server.Stop().ok());
  recorder->Clear();
}

TEST_F(ServerTest, SampledOutTraceRecordsNothing) {
  TraceRecorder* recorder = TraceRecorder::Global();
  recorder->SetEnabled(false);
  recorder->Clear();

  ModelHubServer server(env_, root_);
  ASSERT_TRUE(server.Start().ok());
  auto client = ModelHubClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  TraceContext ctx = MakeSampledTraceContext();
  ctx.sampled = false;  // Traced id on the wire, but sampled out.
  {
    ScopedTraceContext scope(ctx);
    ASSERT_TRUE(client->Ping().ok());
  }
  auto dump = client->GetTraceDump();
  ASSERT_TRUE(dump.ok());
  std::vector<TraceNodeDump> dumps;
  ASSERT_TRUE(ParseTraceDumps(Slice(*dump), &dumps).ok());
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_TRUE(dumps[0].events.empty());
  EXPECT_EQ(dumps[0].total, 0u);
  EXPECT_TRUE(server.Stop().ok());
}

TEST_F(ServerTest, SlowRequestsLandInStats) {
  ServerOptions options;
  options.slow_request_us = 1;  // Every request is "slow".
  ModelHubServer server(env_, root_, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = ModelHubClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Ping().ok());
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"slow_requests\""), std::string::npos);
  EXPECT_NE(stats->find("\"op\":\"ping\""), std::string::npos);
  EXPECT_NE(stats->find("\"latency_us\""), std::string::npos);
  EXPECT_TRUE(server.Stop().ok());
}

TEST_F(ServerTest, ExpiredDeadlineIsCountedAndAnnotated) {
  TraceRecorder* recorder = TraceRecorder::Global();
  recorder->SetEnabled(false);
  recorder->Clear();
  Counter* expired = MetricRegistry::Global()->GetCounter(
      "server.deadline.expired.count");
  const uint64_t before = expired->value();

  ModelHubServer server(env_, root_);
  ASSERT_TRUE(server.Start().ok());
  auto client = ModelHubClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  // A context whose budget is already gone: the client stamps the
  // deadline_expired wire flag, so the server deterministically sees an
  // expired deadline regardless of how fast it answers.
  TraceContext ctx = MakeSampledTraceContext();
  ctx.has_deadline = true;
  ctx.deadline = std::chrono::steady_clock::now() -
                 std::chrono::milliseconds(5);
  {
    ScopedTraceContext scope(ctx);
    ASSERT_TRUE(client->Ping().ok());
  }
  EXPECT_EQ(expired->value() - before, 1u);
  auto dump = client->GetTraceDump();
  ASSERT_TRUE(dump.ok());
  std::vector<TraceNodeDump> dumps;
  ASSERT_TRUE(ParseTraceDumps(Slice(*dump), &dumps).ok());
  ASSERT_EQ(dumps.size(), 1u);
  bool annotated = false;
  for (const TraceEvent& e : dumps[0].events) {
    for (const auto& kv : e.annotations) {
      if (kv.first == "after_deadline" && kv.second == "true") {
        annotated = true;
      }
    }
  }
  EXPECT_TRUE(annotated);
  EXPECT_TRUE(server.Stop().ok());
  recorder->Clear();
}

}  // namespace
}  // namespace modelhub
