// Property-based round-trip harness for the PAS storage stack, plus the
// differential tests that pin the parallel archival write pipeline to the
// serial reference, byte for byte.
//
// Every randomized case derives from one base seed. Failures carry a
// "seed=<n>" scope line; replay a single failing case with
//   MH_PROPERTY_SEED=<n> ./property_test
// which reruns the whole suite rooted at that seed.

#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "compress/codec.h"
#include "pas/archive.h"
#include "pas/chunk_index.h"
#include "pas/delta.h"
#include "pas/float_encoding.h"
#include "pas/parallel_archiver.h"
#include "pas/segment.h"
#include "tensor/float_matrix.h"

namespace modelhub {
namespace {

uint64_t BaseSeed() {
  static const uint64_t seed = [] {
    const char* override_seed = std::getenv("MH_PROPERTY_SEED");
    if (override_seed != nullptr && *override_seed != '\0') {
      return std::strtoull(override_seed, nullptr, 10);
    }
    return 0x5EED2026ull;
  }();
  return seed;
}

// ------------------------------------------------------------ generators

enum class Pattern {
  kGaussian,    // N(0, 0.1) weights — the typical parameter matrix.
  kUniform,     // U[-3, 3).
  kConstant,    // One repeated value (maximally compressible).
  kSparse,      // Mostly zero with a few large outliers.
  kInteger,     // Small whole numbers (many shared byte planes).
  kAdversarial, // NaN / +-Inf / denormals / -0 / FLT_MAX / FLT_MIN mix.
  kCount,
};

const char* PatternName(Pattern p) {
  switch (p) {
    case Pattern::kGaussian: return "gaussian";
    case Pattern::kUniform: return "uniform";
    case Pattern::kConstant: return "constant";
    case Pattern::kSparse: return "sparse";
    case Pattern::kInteger: return "integer";
    case Pattern::kAdversarial: return "adversarial";
    case Pattern::kCount: break;
  }
  return "?";
}

bool IsFinitePattern(Pattern p) { return p != Pattern::kAdversarial; }

FloatMatrix RandomMatrix(Rng* rng, Pattern pattern) {
  const int64_t rows = 1 + static_cast<int64_t>(rng->Uniform(16));
  const int64_t cols = 1 + static_cast<int64_t>(rng->Uniform(32));
  FloatMatrix m(rows, cols);
  switch (pattern) {
    case Pattern::kGaussian:
      m.FillGaussian(rng, 0.1f);
      break;
    case Pattern::kUniform:
      m.FillUniform(rng, -3.0f, 3.0f);
      break;
    case Pattern::kConstant:
      m.Fill(rng->UniformFloat(-10.0f, 10.0f));
      break;
    case Pattern::kSparse:
      for (auto& v : m.data()) {
        v = rng->Bernoulli(0.05) ? rng->UniformFloat(-100.0f, 100.0f) : 0.0f;
      }
      break;
    case Pattern::kInteger:
      for (auto& v : m.data()) {
        v = static_cast<float>(static_cast<int>(rng->Uniform(17)) - 8);
      }
      break;
    case Pattern::kAdversarial: {
      static const float kNasty[] = {
          std::numeric_limits<float>::quiet_NaN(),
          std::numeric_limits<float>::infinity(),
          -std::numeric_limits<float>::infinity(),
          std::numeric_limits<float>::denorm_min(),
          -std::numeric_limits<float>::denorm_min(),
          -0.0f,
          0.0f,
          FLT_MAX,
          -FLT_MAX,
          FLT_MIN,
          1.0f,
          -1.0f,
      };
      for (auto& v : m.data()) {
        v = rng->Bernoulli(0.5)
                ? kNasty[rng->Uniform(sizeof(kNasty) / sizeof(kNasty[0]))]
                : rng->UniformFloat(-1e30f, 1e30f);
      }
      break;
    }
    case Pattern::kCount:
      break;
  }
  return m;
}

/// A same-shape perturbation of `base` (the typical checkpoint-to-
/// checkpoint relationship a delta edge exploits).
FloatMatrix Perturb(const FloatMatrix& base, Rng* rng, float stddev) {
  FloatMatrix next = base;
  for (auto& v : next.data()) {
    v += static_cast<float>(rng->NextGaussian()) * stddev;
  }
  return next;
}

std::string RandomPayload(Rng* rng) {
  const size_t size = 1 + rng->Uniform(4096);
  std::string payload(size, '\0');
  switch (rng->Uniform(4)) {
    case 0:  // High entropy.
      for (auto& c : payload) c = static_cast<char>(rng->Uniform(256));
      break;
    case 1:  // Low entropy (few symbols).
      for (auto& c : payload) c = static_cast<char>(rng->Uniform(5));
      break;
    case 2: {  // Long runs.
      size_t i = 0;
      while (i < size) {
        const char symbol = static_cast<char>(rng->Uniform(256));
        size_t run = 1 + rng->Uniform(300);
        while (run-- > 0 && i < size) payload[i++] = symbol;
      }
      break;
    }
    default:  // All one byte.
      std::memset(payload.data(), static_cast<int>(rng->Uniform(256)), size);
      break;
  }
  return payload;
}

// ------------------------------------------------------------ codecs

TEST(PropertyTest, CodecRoundTripIsIdentity) {
  constexpr CodecType kCodecs[] = {CodecType::kNull, CodecType::kRle,
                                   CodecType::kHuffman,
                                   CodecType::kDeflateLite};
  for (int iter = 0; iter < 40; ++iter) {
    const uint64_t seed = BaseSeed() + static_cast<uint64_t>(iter);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    const std::string payload = RandomPayload(&rng);
    for (const CodecType codec : kCodecs) {
      SCOPED_TRACE("codec=" + Codec::Get(codec)->name());
      std::string compressed;
      ASSERT_TRUE(
          Codec::Get(codec)->Compress(Slice(payload), &compressed).ok());
      std::string restored;
      ASSERT_TRUE(
          Codec::Get(codec)->Decompress(Slice(compressed), &restored).ok());
      ASSERT_EQ(restored, payload);
    }
  }
}

// ------------------------------------------------------------ segmentation

TEST(PropertyTest, SegmentAssembleRoundTripIsBitExact) {
  for (int iter = 0; iter < 60; ++iter) {
    const uint64_t seed = BaseSeed() + static_cast<uint64_t>(iter);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    const Pattern pattern =
        static_cast<Pattern>(rng.Uniform(static_cast<int>(Pattern::kCount)));
    SCOPED_TRACE(PatternName(pattern));
    const FloatMatrix m = RandomMatrix(&rng, pattern);
    const auto planes = SegmentFloats(m);
    std::vector<Slice> slices;
    for (const std::string& plane : planes) slices.emplace_back(plane);
    auto restored = AssembleFloats(m.rows(), m.cols(), slices);
    ASSERT_TRUE(restored.ok());
    ASSERT_TRUE(restored->BitEquals(m));
  }
}

TEST(PropertyTest, PartialPlaneBoundsContainTrueValues) {
  for (int iter = 0; iter < 40; ++iter) {
    const uint64_t seed = BaseSeed() + static_cast<uint64_t>(iter);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    Pattern pattern =
        static_cast<Pattern>(rng.Uniform(static_cast<int>(Pattern::kCount)));
    if (!IsFinitePattern(pattern)) pattern = Pattern::kUniform;
    SCOPED_TRACE(PatternName(pattern));
    const FloatMatrix m = RandomMatrix(&rng, pattern);
    const auto planes = SegmentFloats(m);
    for (int k = 1; k <= kNumPlanes; ++k) {
      SCOPED_TRACE("planes=" + std::to_string(k));
      std::vector<Slice> slices;
      for (int p = 0; p < k; ++p) slices.emplace_back(planes[p]);
      auto bounds = BoundsFromPlanes(m.rows(), m.cols(), slices);
      ASSERT_TRUE(bounds.ok());
      for (int64_t r = 0; r < m.rows(); ++r) {
        for (int64_t c = 0; c < m.cols(); ++c) {
          const float v = m.At(r, c);
          ASSERT_LE(bounds->lo().At(r, c), v) << "r=" << r << " c=" << c;
          ASSERT_GE(bounds->hi().At(r, c), v) << "r=" << r << " c=" << c;
        }
      }
    }
  }
}

// ------------------------------------------------------------ deltas

TEST(PropertyTest, ExactDeltaKindsRoundTripBitExact) {
  // XOR and materialized deltas must restore the target's exact bit
  // pattern for every input, including NaN/Inf/denormal payloads.
  constexpr DeltaKind kExactKinds[] = {DeltaKind::kMaterialized,
                                       DeltaKind::kXor,
                                       DeltaKind::kAdaptiveXor};
  for (int iter = 0; iter < 60; ++iter) {
    const uint64_t seed = BaseSeed() + static_cast<uint64_t>(iter);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    const Pattern pattern =
        static_cast<Pattern>(rng.Uniform(static_cast<int>(Pattern::kCount)));
    SCOPED_TRACE(PatternName(pattern));
    const FloatMatrix target = RandomMatrix(&rng, pattern);
    FloatMatrix base(target.rows(), target.cols());
    base.FillGaussian(&rng, 0.5f);
    for (const DeltaKind kind : kExactKinds) {
      SCOPED_TRACE(std::string(DeltaKindToString(kind)));
      // Adaptive kinds must also survive a base of a different shape.
      const FloatMatrix* delta_base = &base;
      FloatMatrix small_base;
      if (kind == DeltaKind::kAdaptiveXor && rng.Bernoulli(0.5)) {
        small_base = FloatMatrix(1 + rng.Uniform(16), 1 + rng.Uniform(32));
        small_base.FillGaussian(&rng, 0.5f);
        delta_base = &small_base;
      }
      auto delta = ComputeDelta(target, *delta_base, kind);
      ASSERT_TRUE(delta.ok());
      auto restored = ApplyDelta(*delta_base, *delta, kind);
      ASSERT_TRUE(restored.ok());
      ASSERT_TRUE(restored->BitEquals(target));
    }
  }
}

TEST(PropertyTest, SubtractiveDeltaKindsRoundTripWithinRounding) {
  for (int iter = 0; iter < 60; ++iter) {
    const uint64_t seed = BaseSeed() + static_cast<uint64_t>(iter);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    Pattern pattern =
        static_cast<Pattern>(rng.Uniform(static_cast<int>(Pattern::kCount)));
    if (!IsFinitePattern(pattern)) pattern = Pattern::kGaussian;
    SCOPED_TRACE(PatternName(pattern));
    const FloatMatrix target = RandomMatrix(&rng, pattern);
    const FloatMatrix base = Perturb(target, &rng, 0.05f);
    for (const DeltaKind kind : {DeltaKind::kSub, DeltaKind::kAdaptiveSub}) {
      SCOPED_TRACE(std::string(DeltaKindToString(kind)));
      auto delta = ComputeDelta(target, base, kind);
      ASSERT_TRUE(delta.ok());
      auto restored = ApplyDelta(base, *delta, kind);
      ASSERT_TRUE(restored.ok());
      ASSERT_EQ(restored->rows(), target.rows());
      ASSERT_EQ(restored->cols(), target.cols());
      for (int64_t i = 0; i < target.size(); ++i) {
        const float t = target.data()[static_cast<size_t>(i)];
        const float b = base.data()[static_cast<size_t>(i)];
        const float r = restored->data()[static_cast<size_t>(i)];
        // (b + (t - b)) differs from t by at most one rounding step at
        // the magnitude of the larger operand.
        const float tol =
            (std::fabs(t) + std::fabs(b)) * 1e-6f + 1e-30f;
        ASSERT_NEAR(r, t, tol) << "i=" << i;
      }
    }
  }
}

// ------------------------------------------------------------ float schemes

TEST(PropertyTest, Float32SchemeIsLosslessForAllBitPatterns) {
  for (int iter = 0; iter < 40; ++iter) {
    const uint64_t seed = BaseSeed() + static_cast<uint64_t>(iter);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    const Pattern pattern =
        static_cast<Pattern>(rng.Uniform(static_cast<int>(Pattern::kCount)));
    SCOPED_TRACE(PatternName(pattern));
    const FloatMatrix m = RandomMatrix(&rng, pattern);
    auto encoded = EncodeMatrix(m, {FloatSchemeKind::kFloat32, 32});
    ASSERT_TRUE(encoded.ok());
    auto decoded = DecodeMatrix(*encoded);
    ASSERT_TRUE(decoded.ok());
    ASSERT_TRUE(decoded->BitEquals(m));
  }
}

TEST(PropertyTest, LossySchemesStayWithinTheirErrorEnvelope) {
  struct SchemeCase {
    FloatScheme scheme;
    // Error bound as a function of the matrix's value range.
    float rel;  ///< Multiplied by max |value|.
    float abs;  ///< Additive floor (denormal cutoffs etc.).
  };
  const SchemeCase kCases[] = {
      {{FloatSchemeKind::kFloat16, 16}, 1.0f / 1024.0f, 1e-4f},
      {{FloatSchemeKind::kBFloat16, 16}, 1.0f / 128.0f, 1e-30f},
      {{FloatSchemeKind::kFixedPoint, 16}, 1.0f / 2048.0f, 1e-6f},
      {{FloatSchemeKind::kQuantUniform, 8}, 1.0f / 64.0f, 1e-6f},
      {{FloatSchemeKind::kQuantRandom, 8}, 1.0f, 1e-6f},
  };
  for (int iter = 0; iter < 30; ++iter) {
    const uint64_t seed = BaseSeed() + static_cast<uint64_t>(iter);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    // Bounded finite values: lossy-representable by every scheme above.
    FloatMatrix m(1 + rng.Uniform(16), 1 + rng.Uniform(32));
    m.FillUniform(&rng, -2.0f, 2.0f);
    float max_abs = 0.0f;
    for (const float v : m.data()) max_abs = std::max(max_abs, std::fabs(v));
    for (const SchemeCase& test_case : kCases) {
      SCOPED_TRACE(test_case.scheme.ToString());
      Rng scheme_rng(seed ^ 0xC0DEB00Cull);
      auto encoded = EncodeMatrix(m, test_case.scheme, &scheme_rng);
      ASSERT_TRUE(encoded.ok());
      auto decoded = DecodeMatrix(*encoded);
      ASSERT_TRUE(decoded.ok());
      ASSERT_EQ(decoded->rows(), m.rows());
      ASSERT_EQ(decoded->cols(), m.cols());
      const float tol = max_abs * test_case.rel + test_case.abs;
      for (int64_t i = 0; i < m.size(); ++i) {
        ASSERT_NEAR(decoded->data()[static_cast<size_t>(i)],
                    m.data()[static_cast<size_t>(i)], tol)
            << "i=" << i;
      }
    }
  }
}

// ------------------------------------------------------------ pipeline

/// One randomized snapshot-chain corpus: `chain_len` snapshots of
/// `num_params` parameters each, adjacent snapshots registered as delta
/// candidates (the dlv archive shape).
struct Corpus {
  std::vector<std::string> names;
  std::vector<std::vector<NamedParam>> snapshots;
};

Corpus RandomCorpus(Rng* rng) {
  Corpus corpus;
  const int chain_len = 2 + static_cast<int>(rng->Uniform(3));
  const int num_params = 1 + static_cast<int>(rng->Uniform(3));
  std::vector<FloatMatrix> current(num_params);
  for (int p = 0; p < num_params; ++p) {
    current[p] = FloatMatrix(4 + rng->Uniform(12), 4 + rng->Uniform(20));
    current[p].FillGaussian(rng, 0.2f);
  }
  for (int s = 0; s < chain_len; ++s) {
    corpus.names.push_back("v1@" + std::to_string(s));
    std::vector<NamedParam> params;
    for (int p = 0; p < num_params; ++p) {
      if (s > 0) current[p] = Perturb(current[p], rng, 0.02f);
      params.push_back({"w" + std::to_string(p), current[p]});
    }
    corpus.snapshots.push_back(std::move(params));
  }
  return corpus;
}

Result<ArchiveBuildReport> BuildCorpusArchive(Env* env,
                                              const std::string& dir,
                                              const Corpus& corpus,
                                              ArchiveOptions options) {
  ArchiveBuilder builder(env, dir);
  for (size_t s = 0; s < corpus.names.size(); ++s) {
    MH_RETURN_IF_ERROR(
        builder.AddSnapshot(corpus.names[s], corpus.snapshots[s]));
    if (s > 0) {
      MH_RETURN_IF_ERROR(builder.AddDeltaCandidate(corpus.names[s - 1],
                                                   corpus.names[s]));
    }
  }
  return builder.Build(options);
}

/// All files under `dir`, name -> contents.
std::map<std::string, std::string> DirContents(Env* env,
                                               const std::string& dir) {
  std::map<std::string, std::string> out;
  auto names = env->ListDir(dir);
  EXPECT_TRUE(names.ok());
  if (!names.ok()) return out;
  for (const std::string& name : *names) {
    auto data = env->ReadFile(JoinPath(dir, name));
    EXPECT_TRUE(data.ok()) << name;
    if (data.ok()) out[name] = *data;
  }
  return out;
}

TEST(ParallelArchiverProperty, ParallelBuildsAreBitIdenticalToSerial) {
  struct OptionCase {
    const char* label;
    ArchiveOptions options;
  };
  std::vector<OptionCase> cases;
  {
    OptionCase base;
    base.label = "deflate+sub";
    cases.push_back(base);
  }
  {
    OptionCase xor_case;
    xor_case.label = "huffman+xor";
    xor_case.options.codec = CodecType::kHuffman;
    xor_case.options.delta_kind = DeltaKind::kXor;
    cases.push_back(xor_case);
  }
  {
    OptionCase remote;
    remote.label = "remote-tier";
    remote.options.enable_remote_tier = true;
    remote.options.budget_alpha = 2.0;
    cases.push_back(remote);
  }
  {
    // kQuantRandom's codebook sampling consumes a shared Rng stream; the
    // pipeline must keep that stage serial to stay deterministic.
    OptionCase quant;
    quant.label = "quant-random";
    quant.options.storage_scheme = {FloatSchemeKind::kQuantRandom, 8};
    cases.push_back(quant);
  }
  for (int iter = 0; iter < 4; ++iter) {
    const uint64_t seed = BaseSeed() + static_cast<uint64_t>(iter);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    const Corpus corpus = RandomCorpus(&rng);
    const OptionCase& test_case = cases[static_cast<size_t>(iter) %
                                        cases.size()];
    SCOPED_TRACE(test_case.label);

    MemEnv env;
    std::map<std::string, std::string> reference;
    for (const int threads : {1, 4, 8}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      ArchiveOptions options = test_case.options;
      options.archive_threads = threads;
      const std::string dir = "archive-n" + std::to_string(threads);
      auto report = BuildCorpusArchive(&env, dir, corpus, options);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      // threads reports workers actually used; the corpus always has
      // enough tile + codec tasks to occupy the full requested pool.
      EXPECT_EQ(report->pipeline.threads, threads);
      EXPECT_EQ(report->pipeline.jobs,
                static_cast<int>(corpus.names.size() *
                                 corpus.snapshots[0].size()));
      const auto contents = DirContents(&env, dir);
      ASSERT_FALSE(contents.empty());
      if (threads == 1) {
        reference = contents;
        continue;
      }
      ASSERT_EQ(contents.size(), reference.size());
      for (const auto& [name, data] : reference) {
        const auto it = contents.find(name);
        ASSERT_TRUE(it != contents.end()) << name;
        ASSERT_TRUE(it->second == data)
            << name << " differs between threads=1 and threads=" << threads;
      }
    }
  }
}

TEST(ParallelArchiverProperty, RetrievalAgreesAcrossSchemesAndBounds) {
  for (int iter = 0; iter < 2; ++iter) {
    const uint64_t seed = BaseSeed() + 1000 + static_cast<uint64_t>(iter);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    const Corpus corpus = RandomCorpus(&rng);

    MemEnv env;
    ArchiveOptions options;
    options.delta_kind = DeltaKind::kSub;  // Bounds need sub/materialized.
    options.archive_threads = iter == 0 ? 1 : 8;
    auto report = BuildCorpusArchive(&env, "archive", corpus, options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    auto reader = ArchiveReader::Open(&env, "archive");
    ASSERT_TRUE(reader.ok());
    ThreadPool pool(4);
    for (size_t s = 0; s < corpus.names.size(); ++s) {
      SCOPED_TRACE(corpus.names[s]);
      auto exact = reader->RetrieveSnapshot(corpus.names[s]);
      ASSERT_TRUE(exact.ok());
      auto parallel = reader->RetrieveSnapshotsParallel(
          {corpus.names[s]}, &pool, ParallelScheme::kShared);
      ASSERT_TRUE(parallel.ok());
      auto independent = reader->RetrieveSnapshotsParallel(
          {corpus.names[s]}, &pool, ParallelScheme::kIndependent);
      ASSERT_TRUE(independent.ok());
      ASSERT_EQ(exact->size(), corpus.snapshots[s].size());
      ASSERT_EQ((*parallel)[0].size(), exact->size());
      ASSERT_EQ((*independent)[0].size(), exact->size());
      for (size_t p = 0; p < exact->size(); ++p) {
        SCOPED_TRACE((*exact)[p].name);
        ASSERT_TRUE(
            (*parallel)[0][p].value.BitEquals((*exact)[p].value));
        ASSERT_TRUE(
            (*independent)[0][p].value.BitEquals((*exact)[p].value));
        // Sub deltas round-trip within float rounding of the chain.
        ASSERT_TRUE((*exact)[p].value.ApproxEquals(
            corpus.snapshots[s][p].value, 1e-4f));
      }
      // Progressive bounds: sound at every prefix, exact at 4 planes.
      for (int planes = 1; planes <= kNumPlanes; ++planes) {
        SCOPED_TRACE("planes=" + std::to_string(planes));
        auto bounds = reader->RetrieveSnapshotBounds(corpus.names[s], planes);
        ASSERT_TRUE(bounds.ok());
        for (size_t p = 0; p < exact->size(); ++p) {
          const auto it = bounds->find((*exact)[p].name);
          ASSERT_TRUE(it != bounds->end());
          const FloatMatrix& value = (*exact)[p].value;
          for (int64_t r = 0; r < value.rows(); ++r) {
            for (int64_t c = 0; c < value.cols(); ++c) {
              ASSERT_LE(it->second.lo().At(r, c), value.At(r, c));
              ASSERT_GE(it->second.hi().At(r, c), value.At(r, c));
              if (planes == kNumPlanes) {
                ASSERT_EQ(it->second.lo().At(r, c), it->second.hi().At(r, c));
              }
            }
          }
        }
      }
    }
  }
}

TEST(ParallelArchiverProperty, PipelinePrimitiveMatchesSerialStore) {
  // ParallelArchiver::Run against a direct ChunkStoreWriter::Put loop:
  // the stored files must be identical, chunk ids in job order.
  for (int iter = 0; iter < 6; ++iter) {
    const uint64_t seed = BaseSeed() + 2000 + static_cast<uint64_t>(iter);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    std::vector<FloatMatrix> targets;
    std::vector<FloatMatrix> bases;
    const int num_jobs = 1 + static_cast<int>(rng.Uniform(12));
    for (int j = 0; j < num_jobs; ++j) {
      const Pattern pattern = static_cast<Pattern>(
          rng.Uniform(static_cast<int>(Pattern::kCount)));
      targets.push_back(RandomMatrix(&rng, pattern));
      bases.push_back(Perturb(targets.back(), &rng, 0.1f));
    }
    MemEnv env;
    const CodecType codec =
        rng.Bernoulli(0.5) ? CodecType::kDeflateLite : CodecType::kHuffman;

    ChunkStoreWriter serial(&env, "serial.bin");
    for (int j = 0; j < num_jobs; ++j) {
      auto delta = ComputeDelta(targets[static_cast<size_t>(j)],
                                bases[static_cast<size_t>(j)],
                                DeltaKind::kXor);
      ASSERT_TRUE(delta.ok());
      const auto planes = SegmentFloats(*delta);
      for (int p = 0; p < kNumPlanes; ++p) {
        ASSERT_TRUE(serial.Put(Slice(planes[p]), codec).ok());
      }
    }
    ASSERT_TRUE(serial.Finish().ok());

    for (const int threads : {2, 8}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      const std::string path = "parallel-" + std::to_string(threads) + ".bin";
      ChunkStoreWriter parallel(&env, path);
      std::vector<ParallelArchiver::Job> jobs(
          static_cast<size_t>(num_jobs));
      for (int j = 0; j < num_jobs; ++j) {
        jobs[static_cast<size_t>(j)] = {&targets[static_cast<size_t>(j)],
                                        &bases[static_cast<size_t>(j)],
                                        DeltaKind::kXor, &parallel};
      }
      ArchivePipelineStats stats;
      auto placements = ParallelArchiver::Run(jobs, codec, threads, &stats);
      ASSERT_TRUE(placements.ok());
      ASSERT_EQ(placements->size(), jobs.size());
      for (size_t j = 0; j < placements->size(); ++j) {
        for (int p = 0; p < kNumPlanes; ++p) {
          ASSERT_EQ((*placements)[j].chunk_ids[p],
                    static_cast<uint32_t>(j) * kNumPlanes +
                        static_cast<uint32_t>(p));
        }
      }
      ASSERT_TRUE(parallel.Finish().ok());
      EXPECT_EQ(stats.jobs, num_jobs);
      EXPECT_GT(stats.raw_bytes, 0u);
      auto serial_bytes = env.ReadFile("serial.bin");
      auto parallel_bytes = env.ReadFile(path);
      ASSERT_TRUE(serial_bytes.ok());
      ASSERT_TRUE(parallel_bytes.ok());
      ASSERT_TRUE(*serial_bytes == *parallel_bytes);
    }
  }
}

TEST(ParallelArchiverProperty, TileBoundariesAreByteInvariant) {
  // The tiled encode pipeline must produce the same archive for every
  // tile shape: one-row tiles (maximal boundary count), odd sizes that
  // straddle rows unevenly, and whole-matrix tiles (the pre-tiling
  // shape), across serial and parallel pools. Retrieval bounds from the
  // identical bytes must agree too.
  const uint64_t seed = BaseSeed() + 3000;
  SCOPED_TRACE("seed=" + std::to_string(seed));
  Rng rng(seed);
  const Corpus corpus = RandomCorpus(&rng);

  MemEnv env;
  std::map<std::string, std::string> reference;
  std::vector<double> reference_lo;
  for (const int tile_rows : {1, 3, 7, 1 << 20}) {
    for (const int threads : {1, 4, 8}) {
      SCOPED_TRACE("tile_rows=" + std::to_string(tile_rows) +
                   " threads=" + std::to_string(threads));
      ArchiveOptions options;
      options.delta_kind = DeltaKind::kSub;  // Bounds need sub.
      options.archive_threads = threads;
      options.tile_rows = tile_rows;
      const std::string dir = "archive-t" + std::to_string(tile_rows) +
                              "-n" + std::to_string(threads);
      auto report = BuildCorpusArchive(&env, dir, corpus, options);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_GE(report->pipeline.tiles, report->pipeline.jobs);
      const auto contents = DirContents(&env, dir);
      ASSERT_FALSE(contents.empty());

      auto archive = ArchiveReader::Open(&env, dir);
      ASSERT_TRUE(archive.ok());
      auto bounds = archive->RetrieveSnapshotBounds(corpus.names.back(), 2);
      ASSERT_TRUE(bounds.ok());
      std::vector<double> lo;
      for (const auto& [name, interval] : *bounds) {
        lo.push_back(interval.lo().At(0, 0));
      }

      if (reference.empty()) {
        reference = contents;
        reference_lo = lo;
        continue;
      }
      ASSERT_EQ(contents.size(), reference.size());
      for (const auto& [name, data] : reference) {
        const auto it = contents.find(name);
        ASSERT_TRUE(it != contents.end()) << name;
        ASSERT_TRUE(it->second == data) << name << " differs from reference";
      }
      ASSERT_EQ(lo, reference_lo);
    }
  }
}

TEST(ParallelArchiverProperty, WorkerCountClampsToSchedulableTasks) {
  // Regression: stats.threads used to echo the resolved knob even when
  // the job list could never occupy that many workers. A single job
  // encoded as one tile has 1 + kNumPlanes schedulable tasks, so a pool
  // of 8 must report 5.
  Rng rng(BaseSeed() + 4000);
  const FloatMatrix target = RandomMatrix(&rng, Pattern::kGaussian);
  MemEnv env;
  ChunkStoreWriter store(&env, "clamp.bin");
  std::vector<ParallelArchiver::Job> jobs(1);
  jobs[0] = {&target, nullptr, DeltaKind::kMaterialized, &store};
  ArchivePipelineStats stats;
  auto placements = ParallelArchiver::Run(jobs, CodecType::kDeflateLite, 8,
                                          &stats, 1 << 20);
  ASSERT_TRUE(placements.ok());
  EXPECT_EQ(stats.tiles, 1);
  EXPECT_EQ(stats.threads, 1 + kNumPlanes);
  EXPECT_EQ(static_cast<int>(stats.tile_encode_ms.size()), stats.tiles);
  EXPECT_EQ(static_cast<int>(stats.plane_codec_ms.size()), kNumPlanes);
}

// --------------------------------------------------- chunk index / dedup

/// One random fine-tune of `base`: sparse (a few weights move), low-rank
/// (an outer-product update touches everything coherently), or noise
/// (every weight jitters). The three shapes exercise the chunk index's
/// full spectrum from "all planes identical" to "nothing shared".
FloatMatrix MutateParam(const FloatMatrix& base, Rng* rng) {
  FloatMatrix out = base;
  switch (rng->Uniform(3)) {
    case 0: {  // Sparse.
      const size_t stride = 17 + rng->Uniform(40);
      for (size_t i = rng->Uniform(7); i < out.data().size(); i += stride) {
        out.data()[i] += static_cast<float>(rng->NextGaussian()) * 0.05f;
      }
      break;
    }
    case 1: {  // Low-rank: out += u v^T.
      std::vector<float> u(static_cast<size_t>(out.rows()));
      std::vector<float> v(static_cast<size_t>(out.cols()));
      for (auto& x : u) x = static_cast<float>(rng->NextGaussian()) * 0.05f;
      for (auto& x : v) x = static_cast<float>(rng->NextGaussian());
      for (int64_t r = 0; r < out.rows(); ++r) {
        for (int64_t c = 0; c < out.cols(); ++c) {
          out.At(r, c) += u[static_cast<size_t>(r)] *
                          v[static_cast<size_t>(c)];
        }
      }
      break;
    }
    default: {  // Noise.
      for (auto& x : out.data()) {
        x += static_cast<float>(rng->NextGaussian()) * 0.01f;
      }
      break;
    }
  }
  return out;
}

// Seeded random fine-tuned families round-trip through the chunk index
// bit-exactly, and the persisted refcounts are conserved: the saved
// index matches an independent rebuild from the committed manifest entry
// for entry, and total references equal exactly four planes per matrix.
TEST(ChunkDedupProperty, MutatedFamiliesRoundTripWithConservedRefcounts) {
  for (int iter = 0; iter < 3; ++iter) {
    const uint64_t seed = BaseSeed() + 4000 + static_cast<uint64_t>(iter);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);

    const int num_params = 2 + static_cast<int>(rng.Uniform(3));
    const int variants = 4 + static_cast<int>(rng.Uniform(4));
    std::vector<FloatMatrix> base(static_cast<size_t>(num_params));
    for (auto& m : base) {
      m = FloatMatrix(8 + rng.Uniform(24), 8 + rng.Uniform(32));
      m.FillGaussian(&rng, 0.1f);
    }

    Corpus corpus;
    auto add = [&](const std::string& name,
                   const std::vector<FloatMatrix>& params) {
      corpus.names.push_back(name);
      std::vector<NamedParam> named;
      for (int p = 0; p < num_params; ++p) {
        named.push_back({"w" + std::to_string(p),
                         params[static_cast<size_t>(p)]});
      }
      corpus.snapshots.push_back(std::move(named));
    };
    add("fam@base", base);
    for (int v = 0; v < variants; ++v) {
      std::vector<FloatMatrix> tuned = base;
      // Mutate a random subset of parameters, freeze the rest.
      const int mutated = 1 + static_cast<int>(rng.Uniform(
                                  static_cast<uint32_t>(num_params)));
      for (int m = 0; m < mutated; ++m) {
        const size_t p = rng.Uniform(static_cast<uint32_t>(num_params));
        tuned[p] = MutateParam(tuned[p], &rng);
      }
      add("fam@ft" + std::to_string(v), tuned);
    }

    MemEnv env;
    ArchiveOptions options;  // Dedup + similarity pairing on by default.
    options.archive_threads = iter % 2 == 0 ? 1 : 4;
    ArchiveBuilder builder(&env, "archive");
    for (size_t s = 0; s < corpus.names.size(); ++s) {
      ASSERT_TRUE(
          builder.AddSnapshot(corpus.names[s], corpus.snapshots[s]).ok());
    }
    auto report = builder.Build(options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    // Round trip: every snapshot comes back bit-exact.
    auto reader = ArchiveReader::Open(&env, "archive");
    ASSERT_TRUE(reader.ok());
    for (size_t s = 0; s < corpus.names.size(); ++s) {
      SCOPED_TRACE(corpus.names[s]);
      auto params = reader->RetrieveSnapshot(corpus.names[s]);
      ASSERT_TRUE(params.ok()) << params.status().ToString();
      ASSERT_EQ(params->size(), corpus.snapshots[s].size());
      for (size_t p = 0; p < params->size(); ++p) {
        const auto& got = (*params)[p].value.data();
        const auto& want = corpus.snapshots[s][p].value.data();
        ASSERT_EQ(got.size(), want.size());
        EXPECT_EQ(std::memcmp(got.data(), want.data(),
                              got.size() * sizeof(float)),
                  0)
            << (*params)[p].name;
      }
    }

    // Refcount conservation: the saved index equals a from-scratch
    // rebuild entry for entry, and references sum to 4 planes per
    // archived matrix — dedup moves references between entries but
    // never creates or drops one.
    auto saved = ChunkIndex::Load(&env, "archive");
    ASSERT_TRUE(saved.ok()) << saved.status().ToString();
    auto rebuilt = RebuildChunkIndex(&env, "archive");
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    EXPECT_EQ(saved->generation(), rebuilt->generation());
    const auto saved_entries = saved->SortedEntries();
    const auto rebuilt_entries = rebuilt->SortedEntries();
    ASSERT_EQ(saved_entries.size(), rebuilt_entries.size());
    for (size_t i = 0; i < saved_entries.size(); ++i) {
      EXPECT_TRUE(saved_entries[i].hash == rebuilt_entries[i].hash);
      EXPECT_EQ(saved_entries[i].file, rebuilt_entries[i].file);
      EXPECT_EQ(saved_entries[i].chunk_id, rebuilt_entries[i].chunk_id);
      EXPECT_EQ(saved_entries[i].refcount, rebuilt_entries[i].refcount);
      EXPECT_EQ(saved_entries[i].stored_size,
                rebuilt_entries[i].stored_size);
    }
    const uint64_t matrices =
        corpus.names.size() * static_cast<uint64_t>(num_params);
    EXPECT_EQ(saved->TotalRefs(), matrices * 4);
    EXPECT_EQ(reader->ComputeDedupStats().plane_refs, matrices * 4);
  }
}

TEST(ParallelArchiverProperty, ResolveArchiveThreads) {
  EXPECT_EQ(ResolveArchiveThreads(1), 1);
  EXPECT_EQ(ResolveArchiveThreads(5), 5);
  EXPECT_GE(ResolveArchiveThreads(0), 1);
  EXPECT_LE(ResolveArchiveThreads(0), 8);
  EXPECT_EQ(ResolveArchiveThreads(-3), ResolveArchiveThreads(0));
}

TEST(ParallelArchiverProperty, ResolveTileRows) {
  EXPECT_EQ(ResolveTileRows(1, 128), 1);
  EXPECT_EQ(ResolveTileRows(17, 128), 17);
  // Auto targets ~64 KiB of floats per tile, never below one row.
  EXPECT_EQ(ResolveTileRows(0, 128), 128);     // 64Ki / (128*4).
  EXPECT_EQ(ResolveTileRows(-2, 128), 128);
  EXPECT_EQ(ResolveTileRows(0, 1 << 20), 1);   // Wide rows: one per tile.
  EXPECT_GE(ResolveTileRows(0, 0), 1);         // Degenerate shapes.
}

}  // namespace
}  // namespace modelhub
