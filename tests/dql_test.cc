#include <gtest/gtest.h>

#include "common/env.h"
#include "data/dataset.h"
#include "dlv/repository.h"
#include "dql/engine.h"
#include "dql/lexer.h"
#include "dql/parser.h"
#include "nn/trainer.h"
#include "nn/zoo.h"

// (zoo provides MiniResNet for the structural-select test)

namespace modelhub {
namespace {

// ----------------------------------------------------------------- Lexer

TEST(DqlLexerTest, TokenizesAllShapes) {
  auto tokens = dql::Lex(
      "select m1 where m1.name like \"alex%\" and m1.acc >= 0.9");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 15u);  // 14 tokens + end.
  EXPECT_EQ((*tokens)[0].text, "select");
  EXPECT_EQ((*tokens)[4].text, ".");
  EXPECT_EQ((*tokens)[7].type, dql::TokenType::kString);
  EXPECT_EQ((*tokens)[7].text, "alex%");
  EXPECT_EQ((*tokens)[12].type, dql::TokenType::kSymbol);
  EXPECT_EQ((*tokens)[12].text, ">=");
  EXPECT_EQ((*tokens)[13].type, dql::TokenType::kNumber);
  EXPECT_EQ((*tokens)[13].text, "0.9");
  EXPECT_EQ((*tokens)[14].type, dql::TokenType::kEnd);
}

TEST(DqlLexerTest, NegativeAndScientificNumbers) {
  auto tokens = dql::Lex("-3 1e-4 2.5E+2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "-3");
  EXPECT_EQ((*tokens)[1].text, "1e-4");
  EXPECT_EQ((*tokens)[2].text, "2.5E+2");
}

TEST(DqlLexerTest, ErrorsOnGarbage) {
  EXPECT_TRUE(dql::Lex("select #").status().IsInvalidArgument());
  EXPECT_TRUE(dql::Lex("\"unterminated").status().IsInvalidArgument());
}

TEST(DqlLexerTest, KeywordsCaseInsensitive) {
  auto tokens = dql::Lex("SELECT");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("select"));
  EXPECT_FALSE((*tokens)[0].IsKeyword("slice"));
}

// ---------------------------------------------------------------- Parser

TEST(DqlParserTest, PaperQuery1Select) {
  // Query 1 from the paper (dates become logical clocks in our repo).
  auto query = dql::Parse(
      "select m1 "
      "where m1.name like \"alexnet_%\" and "
      "      m1.creation_time > \"2015-11-22\" and "
      "      m1[\"conv[135]\"].next has POOL(\"MAX\")");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->kind, dql::Query::Kind::kSelect);
  EXPECT_EQ(query->select.var, "m1");
  ASSERT_EQ(query->select.where.disjuncts.size(), 1u);
  const auto& conj = query->select.where.disjuncts[0];
  ASSERT_EQ(conj.size(), 3u);
  EXPECT_EQ(conj[0].kind, dql::Predicate::Kind::kLike);
  EXPECT_EQ(conj[0].literal, "alexnet_%");
  EXPECT_EQ(conj[1].kind, dql::Predicate::Kind::kCompare);
  EXPECT_EQ(conj[1].op, dql::CompareOp::kGt);
  EXPECT_EQ(conj[2].kind, dql::Predicate::Kind::kSelectorHas);
  EXPECT_EQ(conj[2].selector, "conv[135]");
  EXPECT_TRUE(conj[2].direction_next);
  EXPECT_EQ(conj[2].template_name, "POOL");
  EXPECT_EQ(conj[2].template_arg, "MAX");
}

TEST(DqlParserTest, PaperQuery2Slice) {
  auto query = dql::Parse(
      "slice m2 from m1 "
      "where m1.name like \"alexnet-origin%\" "
      "mutate m2.input = m1[\"conv1\"] and m2.output = m1[\"fc7\"]");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->kind, dql::Query::Kind::kSlice);
  EXPECT_EQ(query->slice.new_var, "m2");
  EXPECT_EQ(query->slice.src_var, "m1");
  EXPECT_EQ(query->slice.input_selector, "conv1");
  EXPECT_EQ(query->slice.output_selector, "fc7");
}

TEST(DqlParserTest, PaperQuery3Construct) {
  auto query = dql::Parse(
      "construct m2 from m1 "
      "where m1.name like \"alexnet-avgv1%\" and "
      "      m1[\"conv.*\"].next has POOL(\"AVG\") "
      "mutate m1[\"conv.*\"].insert = RELU(\"relu_$\")");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->kind, dql::Query::Kind::kConstruct);
  ASSERT_EQ(query->construct.mutations.size(), 1u);
  const auto& mutation = query->construct.mutations[0];
  EXPECT_TRUE(mutation.is_insert);
  EXPECT_EQ(mutation.template_name, "RELU");
  EXPECT_EQ(mutation.new_name, "relu_$");
}

TEST(DqlParserTest, PaperQuery4Evaluate) {
  auto query = dql::Parse(
      "evaluate m "
      "from \"modelv%\" "
      "with config = default "
      "vary config.base_lr in [0.1, 0.01, 0.001] and "
      "     config.momentum auto and "
      "     config.input_data in [\"path1\", \"path2\"] "
      "keep top(5, m[\"loss\"], 100)");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->kind, dql::Query::Kind::kEvaluate);
  const auto& evaluate = query->evaluate;
  EXPECT_EQ(evaluate.from_pattern, "modelv%");
  EXPECT_EQ(evaluate.config, "default");
  ASSERT_EQ(evaluate.vary.size(), 3u);
  EXPECT_EQ(evaluate.vary[0].values.size(), 3u);
  EXPECT_TRUE(evaluate.vary[1].is_auto);
  EXPECT_EQ(evaluate.vary[2].values[1], "path2");
  ASSERT_TRUE(evaluate.keep.has_value());
  EXPECT_EQ(evaluate.keep->top_k, 5);
  EXPECT_EQ(evaluate.keep->metric, "loss");
  EXPECT_EQ(evaluate.keep->iterations, 100);
}

TEST(DqlParserTest, NestedEvaluate) {
  auto query = dql::Parse(
      "evaluate m from "
      "(construct m2 from m1 where m1.name like \"base%\" "
      " mutate m1[\"pool1\"].insert = RELU(\"r_$\")) "
      "with config = default keep top(1, m[\"accuracy\"], 20)");
  ASSERT_TRUE(query.ok());
  ASSERT_NE(query->evaluate.subquery, nullptr);
  EXPECT_EQ(query->evaluate.subquery->kind, dql::Query::Kind::kConstruct);
}

TEST(DqlParserTest, OrConditionsBecomeDnf) {
  auto query = dql::Parse(
      "select m where (m.accuracy > 0.5 or m.loss < 1) and m.name like \"x%\"");
  ASSERT_TRUE(query.ok());
  // (A or B) and C -> {A,C}, {B,C}.
  EXPECT_EQ(query->select.where.disjuncts.size(), 2u);
  EXPECT_EQ(query->select.where.disjuncts[0].size(), 2u);
}

TEST(DqlParserTest, NotNegatesSinglePredicate) {
  auto query = dql::Parse(
      "select m where not m.name like \"alex%\" and m.accuracy > 0.5");
  ASSERT_TRUE(query.ok());
  const auto& conj = query->select.where.disjuncts[0];
  ASSERT_EQ(conj.size(), 2u);
  EXPECT_TRUE(conj[0].negated);
  EXPECT_FALSE(conj[1].negated);
}

TEST(DqlParserTest, Errors) {
  EXPECT_FALSE(dql::Parse("frobnicate m").ok());
  EXPECT_FALSE(dql::Parse("select m").ok());  // Missing where.
  EXPECT_FALSE(dql::Parse("select m where m2.name like \"x\"").ok());
  EXPECT_FALSE(dql::Parse("select m where m.name like \"x\" trailing").ok());
  EXPECT_FALSE(
      dql::Parse("slice s from m mutate s.input = m[\"a\"]").ok());
  EXPECT_FALSE(dql::Parse(
      "evaluate m from \"x\" with config = default keep top(1, m[\"f1\"], 5)")
                   .ok());
}

// -------------------------------------------------------------- LikeMatch

TEST(LikeMatchTest, Patterns) {
  EXPECT_TRUE(LikeMatch("alexnet_v1", "alexnet%"));
  EXPECT_TRUE(LikeMatch("alexnet", "alexnet%"));
  EXPECT_FALSE(LikeMatch("vgg", "alexnet%"));
  EXPECT_TRUE(LikeMatch("abc", "a_c"));
  EXPECT_FALSE(LikeMatch("abbc", "a_c"));
  EXPECT_TRUE(LikeMatch("anything", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_TRUE(LikeMatch("xyz", "%z"));
  EXPECT_TRUE(LikeMatch("model_v10", "model_v1%"));
}

// ---------------------------------------------------------------- Engine

class DqlEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto repo = Repository::Init(&env_, "repo");
    ASSERT_TRUE(repo.ok());
    repo_ = std::make_unique<Repository>(std::move(*repo));
    dataset_ = MakeBlobDataset(96, 4, 12, 0.05f, 17);

    // Commit two trained versions and one untrained variant.
    CommitVersion("alexnet_a", "", 0.1f);
    CommitVersion("alexnet_b", "alexnet_a", 0.01f);
    CommitVersion("vggish_c", "", 0.1f);
  }

  void CommitVersion(const std::string& name, const std::string& parent,
                     float lr) {
    NetworkDef def = MiniVgg(4, 12, 1);
    def.set_name(name);
    auto net = Network::Create(def);
    ASSERT_TRUE(net.ok());
    Rng rng(name.size());
    net->InitializeWeights(&rng);
    TrainOptions options;
    options.iterations = 30;
    options.snapshot_every = 15;
    options.log_every = 10;
    options.base_learning_rate = lr;
    auto trained = TrainNetwork(&*net, dataset_, options);
    ASSERT_TRUE(trained.ok());
    CommitRequest request;
    request.name = name;
    request.network = def;
    request.snapshots = trained->snapshots;
    request.log = trained->log;
    request.hyperparams = {{"base_lr", std::to_string(lr)}};
    request.parent = parent;
    ASSERT_TRUE(repo_->Commit(request).ok());
  }

  MemEnv env_;
  std::unique_ptr<Repository> repo_;
  Dataset dataset_;
};

TEST_F(DqlEngineTest, SelectByNameAndStructure) {
  DqlEngine engine(repo_.get());
  auto result = engine.Run(
      "select m1 where m1.name like \"alexnet%\" and "
      "m1[\"conv1_1\"].next has RELU()");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->model_names,
            (std::vector<std::string>{"alexnet_a", "alexnet_b"}));

  auto none = engine.Run(
      "select m1 where m1[\"pool1\"].next has POOL(\"AVG\")");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->model_names.empty());

  // pool1's prev is relu of conv1_1.
  auto prev = engine.Run("select m1 where m1[\"pool1\"].prev has RELU()");
  ASSERT_TRUE(prev.ok());
  EXPECT_EQ(prev->model_names.size(), 3u);
}

TEST_F(DqlEngineTest, NotPredicateInverts) {
  DqlEngine engine(repo_.get());
  auto others = engine.Run(
      "select m where not m.name like \"alexnet%\"");
  ASSERT_TRUE(others.ok());
  EXPECT_EQ(others->model_names, std::vector<std::string>{"vggish_c"});
  auto structural = engine.Run(
      "select m where not m[\"pool1\"].next has POOL(\"AVG\")");
  ASSERT_TRUE(structural.ok());
  EXPECT_EQ(structural->model_names.size(), 3u);  // Nobody has avg there.
}

TEST_F(DqlEngineTest, SelectResidualStructure) {
  // Commit an (untrained) residual version; structural predicates must see
  // the add joins through next/prev.
  NetworkDef def = MiniResNet(4, 12, 1, 4);
  def.set_name("resnet_r1");
  CommitRequest request;
  request.name = "resnet_r1";
  request.network = def;
  ASSERT_TRUE(repo_->Commit(request).ok());

  DqlEngine engine(repo_.get());
  auto with_add = engine.Run(
      "select m where m[\"res0_conv2\"].next has ADD()");
  ASSERT_TRUE(with_add.ok());
  EXPECT_EQ(with_add->model_names, std::vector<std::string>{"resnet_r1"});
  // The add's predecessors include a conv.
  auto pred = engine.Run(
      "select m where m[\"res0_add\"].prev has CONV()");
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(pred->model_names, std::vector<std::string>{"resnet_r1"});
}

TEST_F(DqlEngineTest, SelectByMetadata) {
  DqlEngine engine(repo_.get());
  auto recent = engine.Run("select m where m.parent = \"alexnet_a\"");
  ASSERT_TRUE(recent.ok());
  EXPECT_EQ(recent->model_names, std::vector<std::string>{"alexnet_b"});

  auto accurate = engine.Run("select m where m.accuracy >= 0");
  ASSERT_TRUE(accurate.ok());
  EXPECT_EQ(accurate->model_names.size(), 3u);

  auto with_snapshots = engine.Run("select m where m.num_snapshots >= 2");
  ASSERT_TRUE(with_snapshots.ok());
  EXPECT_EQ(with_snapshots->model_names.size(), 3u);

  auto disjunction = engine.Run(
      "select m where m.name like \"vgg%\" or m.parent = \"alexnet_a\"");
  ASSERT_TRUE(disjunction.ok());
  EXPECT_EQ(disjunction->model_names.size(), 2u);
}

TEST_F(DqlEngineTest, SliceExtractsSubnetAndCommits) {
  DqlEngine engine(repo_.get());
  auto result = engine.Run(
      "slice m2 from m1 where m1.name = \"alexnet_a\" "
      "mutate m2.input = m1[\"conv1_1\"] and m2.output = m1[\"fc1\"]");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->networks.size(), 1u);
  const NetworkDef& sliced = result->networks[0];
  EXPECT_TRUE(sliced.HasNode("conv2_1"));
  EXPECT_FALSE(sliced.HasNode("fc2"));
  EXPECT_TRUE(sliced.IsChain());
  // Committed back with lineage.
  auto info = repo_->GetInfo(sliced.name());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->parent, "alexnet_a");
}

TEST_F(DqlEngineTest, ConstructInsertAndDelete) {
  DqlEngine engine(repo_.get(), DqlOptions{.commit_results = false});
  auto inserted = engine.Run(
      "construct m2 from m1 where m1.name = \"vggish_c\" "
      "mutate m1[\"pool.*\"].insert = DROPOUT(\"drop_$\")");
  ASSERT_TRUE(inserted.ok());
  ASSERT_EQ(inserted->networks.size(), 1u);
  EXPECT_TRUE(inserted->networks[0].HasNode("drop_pool1"));
  EXPECT_TRUE(inserted->networks[0].HasNode("drop_pool2"));
  EXPECT_TRUE(inserted->networks[0].IsChain());

  auto deleted = engine.Run(
      "construct m2 from m1 where m1.name = \"vggish_c\" "
      "mutate m1[\"relu_fc1\"].delete");
  ASSERT_TRUE(deleted.ok());
  ASSERT_EQ(deleted->networks.size(), 1u);
  EXPECT_FALSE(deleted->networks[0].HasNode("relu_fc1"));
  EXPECT_TRUE(deleted->networks[0].IsChain());
  // Nothing committed in this engine.
  EXPECT_TRUE(repo_->GetInfo("m2_vggish_c").status().IsNotFound());
}

TEST_F(DqlEngineTest, ConstructSkipsNonMatchingModels) {
  DqlEngine engine(repo_.get(), DqlOptions{.commit_results = false});
  auto result = engine.Run(
      "construct m2 from m1 mutate m1[\"no_such_node\"].insert = "
      "RELU(\"r\")");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->networks.empty());
}

TEST_F(DqlEngineTest, EvaluateGridSearchKeepsTopK) {
  DqlOptions options;
  options.commit_results = true;
  DqlEngine engine(repo_.get(), options);
  engine.RegisterDataset("default", &dataset_);
  auto result = engine.Run(
      "evaluate m from \"alexnet_a\" with config = default "
      "vary config.base_lr in [0.1, 0.001] "
      "keep top(1, m[\"accuracy\"], 25)");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->evaluated.size(), 1u);
  const EvaluatedModel& best = result->evaluated[0];
  EXPECT_GT(best.accuracy, 0.25);  // Better than chance.
  EXPECT_TRUE(best.config.count("base_lr"));
  // The keeper was committed with lineage back to the source.
  auto info = repo_->GetInfo(best.name);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->parent, "alexnet_a");
  EXPECT_EQ(info->num_snapshots, 1);
}

TEST_F(DqlEngineTest, EvaluateVaryInputData) {
  Dataset other = MakeBlobDataset(96, 4, 12, 0.3f, 99);  // Noisier task.
  DqlEngine engine(repo_.get(), DqlOptions{.commit_results = false});
  engine.RegisterDataset("default", &dataset_);
  engine.RegisterDataset("noisy", &other);
  auto result = engine.Run(
      "evaluate m from \"vggish_c\" with config = default "
      "vary config.input_data in [\"default\", \"noisy\"] "
      "keep top(2, m[\"accuracy\"], 20)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->evaluated.size(), 2u);
  // Results are sorted best-first.
  EXPECT_GE(result->evaluated[0].accuracy, result->evaluated[1].accuracy);

  auto missing = engine.Run(
      "evaluate m from \"vggish_c\" with config = default "
      "vary config.input_data in [\"nope\"]");
  EXPECT_TRUE(missing.status().IsNotFound());
}

TEST_F(DqlEngineTest, EvaluateNestedConstruct) {
  DqlEngine engine(repo_.get(), DqlOptions{.commit_results = false});
  engine.RegisterDataset("default", &dataset_);
  auto result = engine.Run(
      "evaluate m from "
      "(construct m2 from m1 where m1.name = \"vggish_c\" "
      " mutate m1[\"pool2\"].insert = TANH(\"t_$\")) "
      "with config = default keep top(1, m[\"loss\"], 15)");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->evaluated.size(), 1u);
  EXPECT_NE(result->evaluated[0].name.find("m2_vggish_c"),
            std::string::npos);
}

TEST_F(DqlEngineTest, EvaluateConfigFromVersion) {
  DqlEngine engine(repo_.get(), DqlOptions{.commit_results = false});
  engine.RegisterDataset("default", &dataset_);
  // Seed the config from alexnet_b's committed hyperparameters.
  auto result = engine.Run(
      "evaluate m from \"vggish_c\" with config = \"alexnet_b\" "
      "keep top(1, m[\"loss\"], 10)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->evaluated.size(), 1u);
}

TEST_F(DqlEngineTest, EvaluateWithoutDatasetFails) {
  DqlEngine engine(repo_.get(), DqlOptions{.commit_results = false});
  auto result = engine.Run(
      "evaluate m from \"vggish_c\" with config = default "
      "keep top(1, m[\"loss\"], 5)");
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

// -------------------------------------------------------- EXPLAIN ANALYZE

TEST_F(DqlEngineTest, ExplainAnalyzeSelectReportsOperators) {
  DqlEngine engine(repo_.get());
  auto result =
      engine.Run("explain analyze select m1 where m1.name like \"alexnet%\"");
  ASSERT_TRUE(result.ok());
  // The query itself still executes.
  EXPECT_EQ(result->model_names,
            (std::vector<std::string>{"alexnet_a", "alexnet_b"}));
  ASSERT_TRUE(result->analyzed);
  ASSERT_EQ(result->plan.size(), 3u);
  const DqlOpStats& select = result->plan[0];
  const DqlOpStats& scan = result->plan[1];
  const DqlOpStats& filter = result->plan[2];
  EXPECT_EQ(select.op, "select");
  EXPECT_EQ(select.depth, 0);
  EXPECT_EQ(select.rows_out, 2u);
  EXPECT_EQ(scan.op, "scan");
  EXPECT_EQ(scan.detail, "versions");
  EXPECT_EQ(scan.depth, 1);
  EXPECT_EQ(scan.rows_out, 3u);  // All committed versions.
  EXPECT_EQ(filter.op, "filter");
  EXPECT_EQ(filter.depth, 1);
  EXPECT_EQ(filter.rows_in, 3u);
  EXPECT_EQ(filter.rows_out, 2u);
  for (const DqlOpStats& op : result->plan) EXPECT_GE(op.ms, 0.0);
  const std::string rendered = result->RenderPlan();
  EXPECT_NE(rendered.find("select"), std::string::npos);
  EXPECT_NE(rendered.find("  scan versions"), std::string::npos);
  EXPECT_NE(rendered.find("rows_out=2"), std::string::npos);
}

TEST_F(DqlEngineTest, ExplainAnalyzeSliceReportsOperators) {
  DqlEngine engine(repo_.get(), DqlOptions{.commit_results = false});
  auto result = engine.Run(
      "explain analyze slice m2 from m1 where m1.name = \"alexnet_a\" "
      "mutate m2.input = m1[\"conv1_1\"] and m2.output = m1[\"fc1\"]");
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->analyzed);
  EXPECT_EQ(result->networks.size(), 1u);
  ASSERT_EQ(result->plan.size(), 3u);
  const DqlOpStats& slice = result->plan[0];
  EXPECT_EQ(slice.op, "slice");
  EXPECT_EQ(slice.detail, "m2");
  EXPECT_EQ(slice.depth, 0);
  EXPECT_EQ(slice.rows_in, 1u);   // One matching source version.
  EXPECT_EQ(slice.rows_out, 1u);  // One derived network.
  EXPECT_EQ(result->plan[1].op, "scan");
  EXPECT_EQ(result->plan[2].op, "filter");
}

TEST_F(DqlEngineTest, ExplainAnalyzeEvaluateReportsPipeline) {
  DqlEngine engine(repo_.get(), DqlOptions{.commit_results = false});
  engine.RegisterDataset("default", &dataset_);
  auto result = engine.Run(
      "explain analyze evaluate m from \"alexnet_a\" with config = default "
      "keep top(1, m[\"loss\"], 5)");
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->analyzed);
  EXPECT_EQ(result->evaluated.size(), 1u);
  // evaluate > candidates / grid / train / keep, in execution order.
  std::vector<std::string> ops;
  for (const DqlOpStats& op : result->plan) ops.push_back(op.op);
  EXPECT_EQ(ops, (std::vector<std::string>{"evaluate", "candidates", "grid",
                                           "train", "keep"}));
  EXPECT_EQ(result->plan[0].depth, 0);
  for (size_t i = 1; i < result->plan.size(); ++i) {
    EXPECT_EQ(result->plan[i].depth, 1);
  }
  const DqlOpStats& train = result->plan[3];
  EXPECT_EQ(train.rows_in, 1u);
  EXPECT_EQ(train.rows_out, 1u);
  EXPECT_GT(train.ms, 0.0);  // Training takes measurable time.
}

TEST_F(DqlEngineTest, PlainQueriesCarryNoPlan) {
  DqlEngine engine(repo_.get());
  auto result = engine.Run("select m where m.accuracy >= 0");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->analyzed);
  EXPECT_TRUE(result->plan.empty());
}

TEST(DqlParserTest, ExplainRequiresAnalyze) {
  EXPECT_TRUE(dql::Parse("explain select m where m.accuracy >= 0")
                  .status()
                  .IsInvalidArgument());
  auto query = dql::Parse("EXPLAIN ANALYZE select m where m.accuracy >= 0");
  ASSERT_TRUE(query.ok());
  EXPECT_TRUE(query->analyze);
  EXPECT_EQ(query->kind, dql::Query::Kind::kSelect);
}

}  // namespace
}  // namespace modelhub
