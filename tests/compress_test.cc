#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <tuple>

#include "common/random.h"
#include "common/slice.h"
#include "compress/codec.h"
#include "compress/huffman.h"
#include "compress/lz77.h"

namespace modelhub {
namespace {

// Synthetic inputs exercising distinct entropy regimes: the same regimes
// PAS byte planes fall into (high-order planes ~ low entropy, low-order
// planes ~ full entropy).
std::string MakeInput(const std::string& kind, size_t size, uint64_t seed) {
  Rng rng(seed);
  std::string out(size, '\0');
  if (kind == "zeros") {
    // All zero.
  } else if (kind == "constant") {
    std::fill(out.begin(), out.end(), '\x5A');
  } else if (kind == "random") {
    for (auto& c : out) c = static_cast<char>(rng.Uniform(256));
  } else if (kind == "low_entropy") {
    // Few distinct symbols, heavily skewed.
    const char symbols[] = {0, 0, 0, 0, 1, 1, 2, 3};
    for (auto& c : out) c = symbols[rng.Uniform(8)];
  } else if (kind == "text_like") {
    const std::string vocab = "the quick brown fox jumps over the lazy dog ";
    for (size_t i = 0; i < size; ++i) out[i] = vocab[i % vocab.size()];
  } else if (kind == "runs") {
    size_t i = 0;
    while (i < size) {
      const char v = static_cast<char>(rng.Uniform(4));
      const size_t run = 1 + rng.Uniform(200);
      for (size_t k = 0; k < run && i < size; ++k) out[i++] = v;
    }
  }
  return out;
}

using CodecCase = std::tuple<CodecType, std::string /*kind*/, size_t /*size*/>;

class CodecRoundTripTest : public ::testing::TestWithParam<CodecCase> {};

TEST_P(CodecRoundTripTest, RoundTripsExactly) {
  const auto& [type, kind, size] = GetParam();
  const Codec* codec = Codec::Get(type);
  ASSERT_NE(codec, nullptr);
  const std::string input = MakeInput(kind, size, 0xC0FFEE + size);
  std::string compressed;
  ASSERT_TRUE(codec->Compress(Slice(input), &compressed).ok());
  std::string decompressed;
  ASSERT_TRUE(codec->Decompress(Slice(compressed), &decompressed).ok())
      << codec->name() << " " << kind << " " << size;
  EXPECT_EQ(decompressed, input) << codec->name() << " on " << kind;
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsAllRegimes, CodecRoundTripTest,
    ::testing::Combine(
        ::testing::Values(CodecType::kNull, CodecType::kRle,
                          CodecType::kHuffman, CodecType::kDeflateLite),
        ::testing::Values("zeros", "constant", "random", "low_entropy",
                          "text_like", "runs"),
        ::testing::Values(size_t{0}, size_t{1}, size_t{2}, size_t{255},
                          size_t{4096}, size_t{100000})));

TEST(CodecTest, NamesAndTypes) {
  EXPECT_EQ(Codec::Get(CodecType::kNull)->name(), "null");
  EXPECT_EQ(Codec::Get(CodecType::kRle)->name(), "rle");
  EXPECT_EQ(Codec::Get(CodecType::kHuffman)->name(), "huffman");
  EXPECT_EQ(Codec::Get(CodecType::kDeflateLite)->name(), "deflate-lite");
  for (CodecType t : {CodecType::kNull, CodecType::kRle, CodecType::kHuffman,
                      CodecType::kDeflateLite}) {
    EXPECT_EQ(Codec::Get(t)->type(), t);
  }
}

TEST(CodecTest, CompressionRatiosMatchEntropyExpectations) {
  const size_t n = 64 * 1024;
  const std::string zeros = MakeInput("zeros", n, 1);
  const std::string random = MakeInput("random", n, 2);
  const std::string text = MakeInput("text_like", n, 3);

  // Zero pages compress to almost nothing under every real codec.
  EXPECT_LT(CompressedSize(CodecType::kRle, Slice(zeros)), n / 50);
  EXPECT_LT(CompressedSize(CodecType::kHuffman, Slice(zeros)), n / 50);
  EXPECT_LT(CompressedSize(CodecType::kDeflateLite, Slice(zeros)), n / 50);

  // Random bytes are incompressible (floats are "well-known at being
  // difficult to compress" — the paper's premise).
  EXPECT_GT(CompressedSize(CodecType::kHuffman, Slice(random)), n * 95 / 100);
  EXPECT_GT(CompressedSize(CodecType::kDeflateLite, Slice(random)),
            n * 95 / 100);

  // Repetitive text: LZ77 should beat order-0 Huffman decisively.
  EXPECT_LT(CompressedSize(CodecType::kDeflateLite, Slice(text)),
            CompressedSize(CodecType::kHuffman, Slice(text)) / 2);

  // Null codec adds only the varint frame.
  EXPECT_LE(CompressedSize(CodecType::kNull, Slice(random)), n + 9);
}

TEST(CodecTest, DecompressGarbageFailsNotCrashes) {
  Rng rng(99);
  for (CodecType t : {CodecType::kRle, CodecType::kHuffman,
                      CodecType::kDeflateLite}) {
    const Codec* codec = Codec::Get(t);
    for (int trial = 0; trial < 20; ++trial) {
      std::string garbage(64 + rng.Uniform(512), '\0');
      for (auto& c : garbage) c = static_cast<char>(rng.Uniform(256));
      std::string out;
      // Either a clean error or a successful parse of coincidentally valid
      // input — but never a crash or hang.
      (void)codec->Decompress(Slice(garbage), &out);
    }
  }
  SUCCEED();
}

TEST(CodecTest, TruncatedCompressedDataFails) {
  const std::string input = MakeInput("text_like", 10000, 5);
  for (CodecType t : {CodecType::kHuffman, CodecType::kDeflateLite}) {
    const Codec* codec = Codec::Get(t);
    std::string compressed;
    ASSERT_TRUE(codec->Compress(Slice(input), &compressed).ok());
    std::string truncated = compressed.substr(0, compressed.size() / 2);
    std::string out;
    const Status s = codec->Decompress(Slice(truncated), &out);
    EXPECT_FALSE(s.ok()) << codec->name();
  }
}

// ---------------------------------------------------------------- Huffman

TEST(HuffmanTest, CodeLengthsSatisfyKraft) {
  Rng rng(11);
  for (int trial = 0; trial < 25; ++trial) {
    std::array<uint64_t, 256> freq{};
    const int distinct = 2 + static_cast<int>(rng.Uniform(254));
    for (int i = 0; i < distinct; ++i) {
      freq[rng.Uniform(256)] += 1 + rng.Uniform(100000);
    }
    const auto lengths = BuildHuffmanCodeLengths(freq);
    double kraft = 0.0;
    for (int s = 0; s < 256; ++s) {
      if (freq[s] > 0) {
        ASSERT_GE(lengths[s], 1);
        ASSERT_LE(lengths[s], kMaxHuffmanBits);
        kraft += std::pow(2.0, -static_cast<double>(lengths[s]));
      } else {
        // Unused symbols may share lengths only if some other symbol maps
        // there; they must have length 0.
        EXPECT_EQ(lengths[s], 0);
      }
    }
    EXPECT_LE(kraft, 1.0 + 1e-9);
  }
}

TEST(HuffmanTest, DegenerateHistograms) {
  // Empty histogram: no symbols, every length zero (the encoder never
  // consults the table for empty input).
  std::array<uint64_t, 256> freq{};
  auto lengths = BuildHuffmanCodeLengths(freq);
  for (int s = 0; s < 256; ++s) EXPECT_EQ(lengths[s], 0);

  // Single symbol: the tree is one leaf at depth 0, which the builder
  // must special-case to length 1 — a zero-length code is undecodable
  // and would collide with "unused symbol" in the packed table.
  freq.fill(0);
  freq[42] = 1000;
  lengths = BuildHuffmanCodeLengths(freq);
  EXPECT_EQ(lengths[42], 1);
  for (int s = 0; s < 256; ++s) {
    if (s != 42) {
      EXPECT_EQ(lengths[s], 0);
    }
  }

  // Two symbols: one bit each regardless of skew.
  freq.fill(0);
  freq[0] = 1;
  freq[255] = 1u << 30;
  lengths = BuildHuffmanCodeLengths(freq);
  EXPECT_EQ(lengths[0], 1);
  EXPECT_EQ(lengths[255], 1);
}

TEST(HuffmanTest, RebalanceLoopKeepsKraftValidAtMaxDepth) {
  // Exponential frequencies over the full alphabet force several rounds
  // of the halve-and-retry rebalance; the result must still be a valid
  // (Kraft <= 1) code within kMaxHuffmanBits, with every used symbol
  // assigned a nonzero length.
  std::array<uint64_t, 256> freq{};
  uint64_t f = 1;
  for (int s = 0; s < 256; ++s) {
    freq[s] = f;
    if (s < 62) f *= 2;  // Caps at 2^62; deep enough to trip the clamp.
  }
  const auto lengths = BuildHuffmanCodeLengths(freq);
  double kraft = 0.0;
  for (int s = 0; s < 256; ++s) {
    ASSERT_GE(lengths[s], 1);
    ASSERT_LE(lengths[s], kMaxHuffmanBits);
    kraft += std::pow(2.0, -static_cast<double>(lengths[s]));
  }
  EXPECT_LE(kraft, 1.0 + 1e-9);
}

TEST(HuffmanTest, SkewedDistributionDepthIsClamped) {
  // Fibonacci-like frequencies force deep trees; the builder must clamp to
  // kMaxHuffmanBits.
  std::array<uint64_t, 256> freq{};
  uint64_t a = 1;
  uint64_t b = 1;
  for (int s = 0; s < 40; ++s) {
    freq[s] = a;
    const uint64_t next = a + b;
    a = b;
    b = next;
  }
  const auto lengths = BuildHuffmanCodeLengths(freq);
  for (int s = 0; s < 40; ++s) {
    EXPECT_GE(lengths[s], 1);
    EXPECT_LE(lengths[s], kMaxHuffmanBits);
  }
}

TEST(HuffmanTest, CanonicalCodesArePrefixFree) {
  std::array<uint64_t, 256> freq{};
  freq['a'] = 50;
  freq['b'] = 30;
  freq['c'] = 12;
  freq['d'] = 5;
  freq['e'] = 3;
  const auto lengths = BuildHuffmanCodeLengths(freq);
  const auto codes = AssignCanonicalCodes(lengths);
  for (int x : {'a', 'b', 'c', 'd', 'e'}) {
    for (int y : {'a', 'b', 'c', 'd', 'e'}) {
      if (x == y) continue;
      if (lengths[x] > lengths[y]) continue;
      // code[y] truncated to lengths[x] bits must differ from code[x].
      const uint32_t prefix = codes[y] >> (lengths[y] - lengths[x]);
      EXPECT_NE(prefix, codes[x]) << char(x) << " vs " << char(y);
    }
  }
}

TEST(HuffmanTest, MoreFrequentSymbolsGetShorterOrEqualCodes) {
  std::array<uint64_t, 256> freq{};
  freq[0] = 1000;
  freq[1] = 100;
  freq[2] = 10;
  freq[3] = 1;
  const auto lengths = BuildHuffmanCodeLengths(freq);
  EXPECT_LE(lengths[0], lengths[1]);
  EXPECT_LE(lengths[1], lengths[2]);
  EXPECT_LE(lengths[2], lengths[3]);
}

// ---------------------------------------------------------------- LZ77

TEST(Lz77Test, TokenizeDetokenizeRoundTrip) {
  Rng rng(17);
  for (const char* kind : {"zeros", "random", "text_like", "runs"}) {
    const std::string input = MakeInput(kind, 50000, rng.Next());
    std::string tokens;
    lz77::Tokenize(Slice(input), &tokens);
    std::string out;
    ASSERT_TRUE(lz77::Detokenize(Slice(tokens), &out).ok()) << kind;
    EXPECT_EQ(out, input) << kind;
  }
}

TEST(Lz77Test, FindsLongRangeMatches) {
  // A page that repeats with period 1000 should tokenize far below raw size.
  std::string unit = MakeInput("random", 1000, 3);
  std::string input;
  for (int i = 0; i < 20; ++i) input += unit;
  std::string tokens;
  lz77::Tokenize(Slice(input), &tokens);
  EXPECT_LT(tokens.size(), input.size() / 5);
}

TEST(Lz77Test, OverlappingMatchDecodes) {
  // "aaaa..." forces matches whose source overlaps their own output.
  std::string input(5000, 'a');
  std::string tokens;
  lz77::Tokenize(Slice(input), &tokens);
  EXPECT_LT(tokens.size(), 200u);
  std::string out;
  ASSERT_TRUE(lz77::Detokenize(Slice(tokens), &out).ok());
  EXPECT_EQ(out, input);
}

TEST(Lz77Test, InvalidDistanceRejected) {
  // Match op referencing before the start of output.
  std::string tokens;
  tokens.push_back(static_cast<char>(0x80));
  tokens.push_back(0);    // length - 4 = 0
  tokens.push_back(10);   // distance - 1 = 10, but output is empty
  std::string out;
  EXPECT_TRUE(lz77::Detokenize(Slice(tokens), &out).IsCorruption());
}

}  // namespace
}  // namespace modelhub
