// Integration test of the dlv command-line client: drives the real binary
// end to end through init -> demo -> explore -> query -> archive ->
// report -> publish -> search -> pull.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/env.h"

namespace modelhub {
namespace {

#ifndef DLV_BINARY
#error "DLV_BINARY must be defined by the build"
#endif

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    work_ = ::testing::TempDir() + "/dlv_cli_test";
    // Fresh workspace per run.
    std::system(("rm -rf " + work_).c_str());
    ASSERT_TRUE(Env::Default()->CreateDirs(work_).ok());
  }

  /// Runs `dlv <args>`, returning the exit code.
  int Dlv(const std::string& args) {
    const std::string command =
        std::string(DLV_BINARY) + " " + args + " >/dev/null 2>&1";
    const int raw = std::system(command.c_str());
    return WEXITSTATUS(raw);
  }

  /// Runs `dlv <args>` and returns captured output (stdout first, then
  /// stderr); `exit_code` receives the process exit status.
  std::string DlvOutput(const std::string& args, int* exit_code) {
    const std::string out = work_ + "/cli_out.txt";
    const std::string err = work_ + "/cli_err.txt";
    const std::string command = std::string(DLV_BINARY) + " " + args + " >" +
                                out + " 2>" + err;
    const int raw = std::system(command.c_str());
    *exit_code = WEXITSTATUS(raw);
    std::string text;
    for (const auto& path : {out, err}) {
      auto contents = Env::Default()->ReadFile(path);
      if (contents.ok()) text += *contents;
    }
    return text;
  }

  std::string work_;
};

TEST_F(CliTest, FullLifecycle) {
  const std::string repo = work_ + "/repo";
  const std::string hub = work_ + "/hub";

  ASSERT_EQ(Dlv("init " + repo), 0);
  // Re-init fails.
  EXPECT_NE(Dlv("init " + repo), 0);

  ASSERT_EQ(Dlv("demo " + repo + " 3"), 0);
  EXPECT_EQ(Dlv("list " + repo), 0);
  EXPECT_EQ(Dlv("desc " + repo + " model_v0"), 0);
  EXPECT_NE(Dlv("desc " + repo + " nope"), 0);
  EXPECT_EQ(Dlv("diff " + repo + " model_v0 model_v1"), 0);
  EXPECT_EQ(Dlv("pdiff " + repo + " model_v0 model_v1"), 0);
  EXPECT_EQ(Dlv("compare " + repo + " model_v0 model_v1 16"), 0);
  EXPECT_EQ(Dlv("copy " + repo + " model_v0 scaffold"), 0);
  EXPECT_EQ(Dlv("eval " + repo + " model_v0 16"), 0);

  EXPECT_EQ(Dlv("query " + repo +
                " 'select m where m.name like \"model%\"'"),
            0);
  EXPECT_NE(Dlv("query " + repo + " 'not a query'"), 0);

  const std::string html = work_ + "/report.html";
  EXPECT_EQ(Dlv("report " + repo + " " + html), 0);
  auto contents = Env::Default()->ReadFile(html);
  ASSERT_TRUE(contents.ok());
  EXPECT_NE(contents->find("model_v0"), std::string::npos);
  EXPECT_NE(contents->find("</html>"), std::string::npos);

  EXPECT_EQ(Dlv("archive " + repo + " pas-pt 1.8"), 0);
  // Snapshots still readable post-archive.
  EXPECT_EQ(Dlv("eval " + repo + " model_v1 8"), 0);

  EXPECT_EQ(Dlv("publish " + hub + " " + repo + " alice models"), 0);
  EXPECT_EQ(Dlv("search " + hub + " 'model%'"), 0);
  EXPECT_EQ(Dlv("pull " + hub + " alice models " + work_ + "/clone"), 0);
  EXPECT_EQ(Dlv("list " + work_ + "/clone"), 0);
  // Pulling over an existing repo fails.
  EXPECT_NE(Dlv("pull " + hub + " alice models " + repo), 0);
}

TEST_F(CliTest, FsckSmoke) {
  const std::string repo = work_ + "/repo";
  ASSERT_EQ(Dlv("init " + repo), 0);
  ASSERT_EQ(Dlv("demo " + repo + " 2"), 0);
  ASSERT_EQ(Dlv("archive " + repo + " pas-pt 1.8"), 0);

  // A healthy repository passes.
  EXPECT_EQ(Dlv("fsck " + repo), 0);

  // Flip one bit in the archive chunk store; fsck must notice and fail.
  Env* env = Env::Default();
  const std::string chunks = repo + "/pas/chunks-1.bin";
  auto contents = env->ReadFile(chunks);
  ASSERT_TRUE(contents.ok());
  ASSERT_GT(contents->size(), 64u);
  std::string corrupt = *contents;
  corrupt[64] ^= 0x01;
  ASSERT_TRUE(env->WriteFile(chunks, corrupt).ok());
  EXPECT_NE(Dlv("fsck " + repo), 0);

  // Restore and confirm clean again; a missing repository is an error.
  ASSERT_TRUE(env->WriteFile(chunks, *contents).ok());
  EXPECT_EQ(Dlv("fsck " + repo), 0);
  EXPECT_NE(Dlv("fsck " + work_ + "/missing"), 0);
  EXPECT_EQ(Dlv("fsck " + repo + " --bogus"), 2);
}

TEST_F(CliTest, DedupStatsSmoke) {
  const std::string repo = work_ + "/repo";
  ASSERT_EQ(Dlv("init " + repo), 0);
  ASSERT_EQ(Dlv("demo " + repo + " 2"), 0);
  ASSERT_EQ(Dlv("archive " + repo + " pas-pt 1.8"), 0);

  int code = 0;
  const std::string out = DlvOutput("dedup-stats " + repo, &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("dedup ratio"), std::string::npos) << out;
  EXPECT_NE(out.find("chunk index"), std::string::npos) << out;

  const std::string json = DlvOutput("dedup-stats " + repo + " --json", &code);
  EXPECT_EQ(code, 0) << json;
  EXPECT_NE(json.find("\"dedup_ratio\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"stored_bytes\""), std::string::npos) << json;

  // Bad flag is a usage error; an unarchived repo has no manifest.
  EXPECT_EQ(Dlv("dedup-stats " + repo + " --bogus"), 2);
  EXPECT_NE(Dlv("dedup-stats " + work_ + "/missing"), 0);
}

TEST_F(CliTest, UsageAndBadCommands) {
  EXPECT_EQ(Dlv(""), 2);
  EXPECT_EQ(Dlv("frobnicate"), 2);
  EXPECT_EQ(Dlv("list"), 2);  // Missing argument.
  EXPECT_NE(Dlv("list " + work_ + "/missing"), 0);
  EXPECT_NE(Dlv("archive " + work_ + "/missing nosuchsolver"), 0);
}

TEST_F(CliTest, UsageListsEverySubcommand) {
  int code = 0;
  const std::string usage = DlvOutput("", &code);
  EXPECT_EQ(code, 2);
  const char* subcommands[] = {
      "init",    "demo", "copy",  "archive", "fsck", "list",
      "desc",    "diff", "pdiff", "compare", "eval", "retrieve",
      "query",   "report", "publish", "search", "pull", "stats",
      "serve",   "rpc",  "trace", "dedup-stats",
  };
  for (const char* subcommand : subcommands) {
    EXPECT_NE(usage.find(std::string("dlv ") + subcommand), std::string::npos)
        << "usage text is missing subcommand: " << subcommand;
  }
}

TEST_F(CliTest, RpcExitCodesDistinguishTransportFromServerErrors) {
  // Port 1 is never listening: a refused connection is a transport
  // fault and must exit 3 (distinct from a served error's exit 1).
  int code = 0;
  const std::string out = DlvOutput("rpc 127.0.0.1:1 ping", &code);
  EXPECT_EQ(code, 3) << out;
  EXPECT_NE(out.find("Unavailable"), std::string::npos);

  // Usage errors stay on the usual exit 2.
  EXPECT_EQ(Dlv("rpc"), 2);
  EXPECT_EQ(Dlv("rpc 127.0.0.1:1"), 2);
  EXPECT_EQ(Dlv("rpc no-port-here ping"), 2);
  EXPECT_EQ(Dlv("serve"), 2);

  // `dlv trace` shares the endpoint grammar and the transport exit code.
  EXPECT_EQ(Dlv("trace"), 2);
  EXPECT_EQ(Dlv("trace --fleet no-port-here"), 2);
  EXPECT_EQ(Dlv("trace --fleet 127.0.0.1:1"), 3);
}

TEST_F(CliTest, StatsJsonCoversSubsystems) {
  const std::string repo = work_ + "/repo";
  ASSERT_EQ(Dlv("init " + repo), 0);
  ASSERT_EQ(Dlv("demo " + repo + " 2"), 0);
  ASSERT_EQ(Dlv("archive " + repo + " pas-pt 1.8"), 0);

  int code = 0;
  const std::string trace = work_ + "/trace.json";
  const std::string json =
      DlvOutput("stats " + repo + " --json --trace " + trace, &code);
  ASSERT_EQ(code, 0) << json;

  // Valid top-level shape and coverage of each instrumented subsystem.
  EXPECT_EQ(json.find('{'), 0u);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  const char* prefixes[] = {"pas.chunk.", "pas.retrieve.", "codec.",
                            "pas.solver.", "dlv.commit."};
  for (const char* prefix : prefixes) {
    EXPECT_NE(json.find(prefix), std::string::npos)
        << "stats --json is missing metrics with prefix: " << prefix;
  }

  // The Chrome trace export landed and holds complete duration events.
  auto chrome = Env::Default()->ReadFile(trace);
  ASSERT_TRUE(chrome.ok());
  EXPECT_EQ(chrome->front(), '[');
  EXPECT_NE(chrome->find("\"ph\":\"X\""), std::string::npos);

  // Human-readable mode works against the same repository.
  const std::string text = DlvOutput("stats " + repo, &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(text.find("pas.chunk.fetch.count"), std::string::npos);
  EXPECT_NE(text.find("dlv.commit.count"), std::string::npos);

  // Prometheus exposition mode: typed families, underscore names,
  // cumulative histogram buckets ending in +Inf.
  const std::string prom = DlvOutput("stats " + repo + " --prom", &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(prom.find("# TYPE "), std::string::npos);
  EXPECT_NE(prom.find("pas_chunk_fetch_count"), std::string::npos);
  EXPECT_NE(prom.find("_bucket{le=\"+Inf\"}"), std::string::npos);

  // Bad flags and a missing repository are reported as errors.
  EXPECT_EQ(Dlv("stats " + repo + " --bogus"), 2);
  EXPECT_NE(Dlv("stats " + work_ + "/missing"), 0);
}

}  // namespace
}  // namespace modelhub
