#include <gtest/gtest.h>

#include "nn/network_def.h"
#include "nn/zoo.h"

namespace modelhub {
namespace {

NetworkDef SmallChain() {
  NetworkDef def("test", 1, 12, 12);
  EXPECT_TRUE(def.Append(MakeConv("conv1", 4, 3)).ok());
  EXPECT_TRUE(def.Append(MakePool("pool1", PoolMode::kMax, 2, 2)).ok());
  EXPECT_TRUE(def.Append(MakeFull("fc1", 10)).ok());
  EXPECT_TRUE(def.Append(MakeActivation("prob", LayerKind::kSoftmax)).ok());
  return def;
}

TEST(LayerDefTest, KindStringRoundTrip) {
  for (LayerKind kind :
       {LayerKind::kInput, LayerKind::kConv, LayerKind::kPool,
        LayerKind::kFull, LayerKind::kReLU, LayerKind::kSigmoid,
        LayerKind::kTanh, LayerKind::kSoftmax, LayerKind::kFlatten,
        LayerKind::kDropout, LayerKind::kLRN}) {
    auto parsed = LayerKindFromString(LayerKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_TRUE(LayerKindFromString("bogus").status().IsInvalidArgument());
}

TEST(LayerDefTest, ValidationRejectsBadHyperparameters) {
  EXPECT_TRUE(MakeConv("c", 0, 3).Validate().IsInvalidArgument());
  EXPECT_TRUE(MakeConv("c", 8, -1).Validate().IsInvalidArgument());
  EXPECT_TRUE(MakePool("p", PoolMode::kMax, 0, 1).Validate().IsInvalidArgument());
  EXPECT_TRUE(MakeFull("f", -2).Validate().IsInvalidArgument());
  EXPECT_TRUE(MakeDropout("d", 1.5f).Validate().IsInvalidArgument());
  EXPECT_TRUE(MakeLRN("l", 4).Validate().IsInvalidArgument());  // Even size.
  LayerDef unnamed;
  EXPECT_TRUE(unnamed.Validate().IsInvalidArgument());
}

TEST(NetworkDefTest, AppendBuildsChain) {
  NetworkDef def = SmallChain();
  EXPECT_TRUE(def.Validate().ok());
  EXPECT_TRUE(def.IsChain());
  auto order = def.TopoOrder();
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(*order, (std::vector<std::string>{"conv1", "pool1", "fc1",
                                              "prob"}));
}

TEST(NetworkDefTest, DuplicateNameRejected) {
  NetworkDef def("t", 1, 8, 8);
  ASSERT_TRUE(def.Append(MakeConv("c", 2, 3)).ok());
  EXPECT_TRUE(def.Append(MakeConv("c", 2, 3)).IsAlreadyExists());
}

TEST(NetworkDefTest, NextPrevTraversal) {
  NetworkDef def = SmallChain();
  EXPECT_EQ(def.Next("conv1"), std::vector<std::string>{"pool1"});
  EXPECT_EQ(def.Prev("pool1"), std::vector<std::string>{"conv1"});
  EXPECT_TRUE(def.Next("prob").empty());
  EXPECT_TRUE(def.Prev("conv1").empty());
}

TEST(NetworkDefTest, SelectRegex) {
  NetworkDef def = Vgg16();
  auto sel = def.Select("conv[13]_1");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (std::vector<std::string>{"conv1_1", "conv3_1"}));
  auto all_convs = def.Select("conv.*");
  ASSERT_TRUE(all_convs.ok());
  EXPECT_EQ(all_convs->size(), 13u);
  EXPECT_TRUE(def.Select("conv[").status().IsInvalidArgument());
}

TEST(NetworkDefTest, InsertAfterSplitsEdge) {
  NetworkDef def = SmallChain();
  ASSERT_TRUE(
      def.InsertAfter("conv1", MakeActivation("relu1", LayerKind::kReLU))
          .ok());
  EXPECT_EQ(def.Next("conv1"), std::vector<std::string>{"relu1"});
  EXPECT_EQ(def.Next("relu1"), std::vector<std::string>{"pool1"});
  EXPECT_TRUE(def.IsChain());
  EXPECT_TRUE(def.Validate().ok());
}

TEST(NetworkDefTest, InsertAfterTail) {
  NetworkDef def = SmallChain();
  ASSERT_TRUE(
      def.InsertAfter("prob", MakeActivation("extra", LayerKind::kReLU)).ok());
  EXPECT_EQ(def.Next("prob"), std::vector<std::string>{"extra"});
  EXPECT_TRUE(def.IsChain());
}

TEST(NetworkDefTest, DeleteNodeReconnects) {
  NetworkDef def = SmallChain();
  ASSERT_TRUE(def.DeleteNode("pool1").ok());
  EXPECT_EQ(def.Next("conv1"), std::vector<std::string>{"fc1"});
  EXPECT_TRUE(def.IsChain());
  EXPECT_TRUE(def.DeleteNode("missing").IsNotFound());
}

TEST(NetworkDefTest, SliceExtractsSubgraph) {
  NetworkDef def = Vgg16();
  auto sliced = def.Slice("conv1_1", "pool2");
  ASSERT_TRUE(sliced.ok());
  EXPECT_EQ(sliced->nodes().size(), 10u);  // 4 conv+relu pairs + 2 pools.
  EXPECT_TRUE(sliced->HasNode("conv2_2"));
  EXPECT_FALSE(sliced->HasNode("conv3_1"));
  EXPECT_TRUE(sliced->IsChain());
  // No path end -> start.
  EXPECT_TRUE(
      def.Slice("pool2", "conv1_1").status().IsInvalidArgument());
}

TEST(NetworkDefTest, CycleDetected) {
  NetworkDef def("t", 1, 8, 8);
  ASSERT_TRUE(def.AddNode(MakeActivation("a", LayerKind::kReLU)).ok());
  ASSERT_TRUE(def.AddNode(MakeActivation("b", LayerKind::kReLU)).ok());
  ASSERT_TRUE(def.AddEdge("a", "b").ok());
  ASSERT_TRUE(def.AddEdge("b", "a").ok());
  EXPECT_FALSE(def.Validate().ok());
  EXPECT_FALSE(def.TopoOrder().ok());
}

TEST(NetworkDefTest, SerializeParseRoundTrip) {
  for (const NetworkDef& def :
       {LeNet(), MiniLeNet(), AlexNetStyle(), Vgg16(), MiniVgg(10, 16, 2),
        MiniResNet(6, 12, 2, 4), ResNetStyle(10, 3, 8)}) {
    auto parsed = NetworkDef::Parse(def.Serialize());
    ASSERT_TRUE(parsed.ok()) << def.name();
    EXPECT_TRUE(*parsed == def) << def.name();
  }
}

TEST(NetworkDefTest, ParseRejectsGarbage) {
  EXPECT_FALSE(NetworkDef::Parse("bogus line\n").ok());
  EXPECT_FALSE(NetworkDef::Parse("node x conv badattr\n").ok());
  EXPECT_FALSE(NetworkDef::Parse("node x nosuchkind\n").ok());
  EXPECT_FALSE(NetworkDef::Parse("edge a b\n").ok());  // Missing nodes.
}

TEST(NetworkDefTest, ShapeInference) {
  NetworkDef def = SmallChain();
  auto shapes = InferChainShapes(def);
  ASSERT_TRUE(shapes.ok());
  // conv1: 12-3+1 = 10; pool: 5; fc: 10x1x1.
  EXPECT_EQ((*shapes)[0].c, 4);
  EXPECT_EQ((*shapes)[0].h, 10);
  EXPECT_EQ((*shapes)[1].h, 5);
  EXPECT_EQ((*shapes)[2].c, 10);
  EXPECT_EQ((*shapes)[2].h, 1);
}

TEST(NetworkDefTest, ShapeUnderflowRejected) {
  NetworkDef def("t", 1, 4, 4);
  ASSERT_TRUE(def.Append(MakeConv("c", 2, 7)).ok());  // Kernel > input.
  EXPECT_FALSE(InferChainShapes(def).ok());
}

// Table I parameter counts: LeNet must match the paper exactly; the large
// architectures must land on their canonical published counts.
TEST(ZooTest, LeNetParameterCountMatchesPaper) {
  auto count = LeNet().ParameterCount();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 431080);  // 4.31e5 in Table I.
}

TEST(ZooTest, AlexNetParameterCountIsCanonical) {
  auto count = AlexNetStyle().ParameterCount();
  ASSERT_TRUE(count.ok());
  // ~61M (6e7 in Table I).
  EXPECT_GT(*count, 55'000'000);
  EXPECT_LT(*count, 65'000'000);
}

TEST(ZooTest, Vgg16ParameterCountIsCanonical) {
  auto count = Vgg16().ParameterCount();
  ASSERT_TRUE(count.ok());
  // Canonical VGG-16: ~138M parameters.
  EXPECT_GT(*count, 130'000'000);
  EXPECT_LT(*count, 145'000'000);
}

TEST(ZooTest, AllZooChainsValidate) {
  for (const NetworkDef& def :
       {LeNet(), MiniLeNet(), AlexNetStyle(), Vgg16(), MiniVgg(10, 16, 1)}) {
    EXPECT_TRUE(def.Validate().ok()) << def.name();
    EXPECT_TRUE(def.IsChain()) << def.name();
    EXPECT_TRUE(InferChainShapes(def).ok()) << def.name();
  }
  // Residual factories are DAGs, not chains, but must infer shapes.
  for (const NetworkDef& def : {ResNetStyle(10, 4, 16), MiniResNet(6, 12)}) {
    EXPECT_TRUE(def.Validate().ok()) << def.name();
    EXPECT_FALSE(def.IsChain()) << def.name();
    EXPECT_TRUE(InferDagShapes(def).ok()) << def.name();
    EXPECT_FALSE(InferChainShapes(def).ok()) << def.name();
  }
}

}  // namespace
}  // namespace modelhub
