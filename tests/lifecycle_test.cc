// Lifecycle maintenance tests: the interruptible task graph, the access
// tracker, mark-epoch chunk GC (including pin protection of in-flight
// retrievals), daemon cycles end-to-end, and crash sweeps with a
// maintenance cycle actively compacting.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/fault_env.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "dlv/fsck.h"
#include "dlv/layout.h"
#include "dlv/repository.h"
#include "lifecycle/access_tracker.h"
#include "lifecycle/daemon.h"
#include "lifecycle/gc.h"
#include "lifecycle/task_graph.h"
#include "nn/trainer.h"
#include "nn/zoo.h"
#include "pas/archive.h"
#include "pas/chunk_index.h"
#include "pas/generation_pins.h"

namespace modelhub {
namespace {

void CommitTrained(Repository* repo, const std::string& name, uint64_t seed) {
  const Dataset ds = MakeBlobDataset(64, 4, 12, 0.05f, seed);
  NetworkDef def = MiniVgg(4, 12, 1);
  def.set_name(name);
  auto net = Network::Create(def);
  ASSERT_TRUE(net.ok());
  Rng rng(seed);
  net->InitializeWeights(&rng);
  TrainOptions options;
  options.iterations = 20;
  options.snapshot_every = 10;
  options.seed = seed;
  auto trained = TrainNetwork(&*net, ds, options);
  ASSERT_TRUE(trained.ok());
  CommitRequest request;
  request.name = name;
  request.network = def;
  request.snapshots = trained->snapshots;
  ASSERT_TRUE(repo->Commit(request).ok());
}

void ExpectSameParams(const std::vector<NamedParam>& got,
                      const std::vector<NamedParam>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].name, want[i].name);
    EXPECT_TRUE(got[i].value.ApproxEquals(want[i].value, 1e-5f));
  }
}

// -------------------------------------------------------- MaintenanceGraph

TEST(MaintenanceGraphTest, RunsTasksInDependencyOrder) {
  MaintenanceGraph graph;
  std::vector<std::string> order;
  ASSERT_TRUE(graph.Add("a", {}, [&] { order.push_back("a"); return Status::OK(); }).ok());
  ASSERT_TRUE(graph.Add("b", {"a"}, [&] { order.push_back("b"); return Status::OK(); }).ok());
  ASSERT_TRUE(graph.Add("c", {"a", "b"}, [&] { order.push_back("c"); return Status::OK(); }).ok());
  ASSERT_TRUE(graph.Run().ok());
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "c"}));
  for (const TaskOutcome& outcome : graph.outcomes()) {
    EXPECT_EQ(outcome.state, TaskOutcome::State::kOk) << outcome.name;
  }
}

TEST(MaintenanceGraphTest, DependenciesMustBeRegisteredFirst) {
  MaintenanceGraph graph;
  EXPECT_FALSE(graph.Add("b", {"a"}, [] { return Status::OK(); }).ok());
}

TEST(MaintenanceGraphTest, FailureSkipsDependentsButNotSiblings) {
  MaintenanceGraph graph;
  bool sibling_ran = false;
  bool dependent_ran = false;
  ASSERT_TRUE(
      graph.Add("broken", {}, [] { return Status::IOError("boom"); }).ok());
  ASSERT_TRUE(graph
                  .Add("dependent", {"broken"},
                       [&] {
                         dependent_ran = true;
                         return Status::OK();
                       })
                  .ok());
  ASSERT_TRUE(graph
                  .Add("sibling", {},
                       [&] {
                         sibling_ran = true;
                         return Status::OK();
                       })
                  .ok());
  const Status run = graph.Run();
  EXPECT_TRUE(run.IsIOError()) << run.ToString();
  EXPECT_FALSE(dependent_ran);
  EXPECT_TRUE(sibling_ran);
  EXPECT_EQ(graph.outcomes()[0].state, TaskOutcome::State::kFailed);
  EXPECT_EQ(graph.outcomes()[1].state, TaskOutcome::State::kSkipped);
  EXPECT_EQ(graph.outcomes()[2].state, TaskOutcome::State::kOk);
}

TEST(MaintenanceGraphTest, CancellationLandsAtTaskBoundary) {
  MaintenanceGraph graph;
  CancelToken cancel;
  int second_ran = 0;
  ASSERT_TRUE(graph
                  .Add("first", {},
                       [&] {
                         cancel.Cancel();  // Mid-task: current task finishes.
                         return Status::OK();
                       })
                  .ok());
  ASSERT_TRUE(graph
                  .Add("second", {"first"},
                       [&] {
                         ++second_ran;
                         return Status::OK();
                       })
                  .ok());
  const Status run = graph.Run(&cancel);
  EXPECT_TRUE(run.IsUnavailable()) << run.ToString();
  EXPECT_EQ(second_ran, 0);
  EXPECT_EQ(graph.outcomes()[0].state, TaskOutcome::State::kOk);
  EXPECT_EQ(graph.outcomes()[1].state, TaskOutcome::State::kCancelled);
}

TEST(MaintenanceGraphTest, YieldHookRunsBeforeEveryTask) {
  MaintenanceGraph graph;
  int yields = 0;
  ASSERT_TRUE(graph.Add("a", {}, [] { return Status::OK(); }).ok());
  ASSERT_TRUE(graph.Add("b", {"a"}, [] { return Status::OK(); }).ok());
  ASSERT_TRUE(graph.Run(nullptr, [&] { ++yields; }).ok());
  EXPECT_EQ(yields, 2);
}

// ----------------------------------------------------------- AccessTracker

TEST(AccessTrackerTest, RecordsDecaysAndDropsColdKeys) {
  AccessTracker tracker;
  tracker.RecordAccess("m/s0");
  tracker.RecordAccess("m/s0");
  tracker.RecordAccess("m/s1");
  EXPECT_EQ(tracker.total_accesses(), 3u);
  auto heat = tracker.HeatSnapshot();
  EXPECT_DOUBLE_EQ(heat["m/s0"], 2.0);
  EXPECT_DOUBLE_EQ(heat["m/s1"], 1.0);

  tracker.Decay(0.5);
  heat = tracker.HeatSnapshot();
  EXPECT_DOUBLE_EQ(heat["m/s0"], 1.0);
  // The monotonic total never decays.
  EXPECT_EQ(tracker.total_accesses(), 3u);

  // Repeated decay drives keys below the floor and evicts them.
  for (int i = 0; i < 40; ++i) tracker.Decay(0.5);
  EXPECT_TRUE(tracker.HeatSnapshot().empty());
}

// ----------------------------------------------------------------- Chunk GC

TEST(LifecycleGcTest, ReclaimsSupersededGenerationsOnceUnpinned) {
  MemEnv env;
  auto repo = Repository::Init(&env, "r");
  ASSERT_TRUE(repo.ok());
  // Dedup off: this test is about full reclamation of a superseded
  // generation, which needs generation 2 to materialize everything
  // instead of referencing generation 1's chunks (shared-chunk survival
  // is covered by SharedChunksSurviveGcUnderConcurrentRetrieval).
  ArchiveOptions no_dedup;
  no_dedup.enable_dedup = false;
  CommitTrained(&*repo, "m1", 1);
  ASSERT_TRUE(repo->Archive(no_dedup).ok());  // Generation 1.
  auto gen = ReadArchiveGeneration(&env, "r/pas");
  ASSERT_TRUE(gen.ok());
  ASSERT_EQ(*gen, 1u);

  // Pin generation 1 (as an in-flight retrieval would), then supersede it:
  // the rebuild's own cleanup must leave the pinned generation in place.
  auto pin = GenerationPinRegistry::Global()->Pin(&env, "r/pas", 1);
  CommitTrained(&*repo, "m2", 2);
  ASSERT_TRUE(repo->Archive(no_dedup).ok());  // Generation 2.
  EXPECT_TRUE(env.FileExists("r/pas/chunks-1.bin"));
  EXPECT_TRUE(env.FileExists("r/pas/chunks-2.bin"));

  // Dry run while pinned: stale is visible, nothing reclaimable.
  GcOptions dry;
  dry.dry_run = true;
  auto planned = RunArchiveGc(&env, "r", dry);
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->current_generation, 2u);
  EXPECT_GE(planned->stale_files, 1u);
  EXPECT_GE(planned->pinned_files, 1u);
  EXPECT_EQ(planned->reclaimed_files, 0u);
  ASSERT_EQ(planned->pending_generations.size(), 1u);
  EXPECT_EQ(planned->pending_generations[0], 1u);

  // A real sweep while pinned must not touch the generation either.
  auto pinned_sweep = RunArchiveGc(&env, "r");
  ASSERT_TRUE(pinned_sweep.ok());
  EXPECT_EQ(pinned_sweep->reclaimed_files, 0u);
  EXPECT_TRUE(env.FileExists("r/pas/chunks-1.bin"));

  // Dropping the pin makes the next sweep conclusive.
  pin.reset();
  auto swept = RunArchiveGc(&env, "r");
  ASSERT_TRUE(swept.ok());
  EXPECT_GE(swept->reclaimed_files, 1u);
  EXPECT_GT(swept->reclaimed_bytes, 0u);
  EXPECT_FALSE(env.FileExists("r/pas/chunks-1.bin"));

  // Everything stays retrievable from the current generation.
  auto reader = ArchiveReader::Open(&env, "r/pas");
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->RetrieveSnapshot("m1/s0").ok());
  EXPECT_TRUE(reader->RetrieveSnapshot("m2/s0").ok());
}

TEST(LifecycleGcTest, EmptyRepositoryYieldsEmptyReport) {
  MemEnv env;
  auto repo = Repository::Init(&env, "r");
  ASSERT_TRUE(repo.ok());
  auto report = RunArchiveGc(&env, "r");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->stale_files, 0u);
  EXPECT_EQ(report->reclaimed_files, 0u);
}

// The headline GC-safety regression: a parallel retrieval in flight on a
// superseded generation holds its pin while sweeps run concurrently — the
// chunk files must survive until the reader is gone, and every retrieval
// must return the original bytes. Runs threads against the real Env, so
// the TSan job exercises the registry and sweep paths for races.
TEST(LifecycleGcTest, PinProtectsInFlightParallelRetrieval) {
  Env* env = Env::Default();
  const std::string root = ::testing::TempDir() + "/mh_lifecycle_gc_pin";
  RemoveTree(env, root);
  auto repo = Repository::Init(env, root);
  ASSERT_TRUE(repo.ok());
  // Dedup off so generation 1 is fully superseded (no shared chunks) and
  // the pin alone is what keeps its files alive.
  ArchiveOptions no_dedup;
  no_dedup.enable_dedup = false;
  CommitTrained(&*repo, "m1", 11);
  ASSERT_TRUE(repo->Archive(no_dedup).ok());  // Generation 1.
  auto want = repo->GetSnapshotParams("m1", 0);
  ASSERT_TRUE(want.ok());

  // Hold a reader (and thus a pin) on generation 1, then supersede it.
  const std::string pas_dir = repo_layout::PasDir(root);
  auto opened = ArchiveReader::Open(env, pas_dir);
  ASSERT_TRUE(opened.ok());
  std::optional<ArchiveReader> reader(std::move(*opened));
  ASSERT_EQ(reader->generation(), 1u);
  CommitTrained(&*repo, "m2", 12);
  ASSERT_TRUE(repo->Archive(no_dedup).ok());  // Generation 2.
  const std::string old_chunks = JoinPath(pas_dir, "chunks-1.bin");
  ASSERT_TRUE(env->FileExists(old_chunks));

  std::atomic<bool> done{false};
  std::atomic<int> failed{0};
  std::thread retriever([&] {
    ThreadPool pool(4);
    for (int i = 0; i < 20; ++i) {
      RetrievalStats stats;
      auto sets = reader->RetrieveSnapshotsParallel(
          {"m1/s0"}, &pool, ParallelScheme::kShared, &stats);
      if (!sets.ok() || sets->size() != 1 || (*sets)[0].empty()) {
        failed.fetch_add(1);
        break;
      }
    }
    done.store(true);
  });

  uint64_t max_pinned = 0;
  while (!done.load()) {
    auto report = RunArchiveGc(env, root);
    ASSERT_TRUE(report.ok());
    max_pinned = std::max(max_pinned, report->pinned_files);
    // The pinned generation's bytes must never be freed mid-retrieval.
    EXPECT_TRUE(env->FileExists(old_chunks));
  }
  retriever.join();
  EXPECT_EQ(failed.load(), 0);
  EXPECT_GE(max_pinned, 1u);

  // The pinned reader still decodes the original values.
  auto params = reader->RetrieveSnapshot("m1/s0");
  ASSERT_TRUE(params.ok()) << params.status().ToString();
  ExpectSameParams(*params, *want);

  // Dropping the reader releases the pin; the next sweep reclaims.
  reader.reset();
  auto swept = RunArchiveGc(env, root);
  ASSERT_TRUE(swept.ok());
  EXPECT_GE(swept->reclaimed_files, 1u);
  EXPECT_FALSE(env->FileExists(old_chunks));

  // The committed generation is untouched.
  auto current = ArchiveReader::Open(env, pas_dir);
  ASSERT_TRUE(current.ok());
  auto after = current->RetrieveSnapshot("m1/s0");
  ASSERT_TRUE(after.ok());
  ExpectSameParams(*after, *want);
  RemoveTree(env, root);
}

// DESIGN.md §15: a chunk written by generation 1 and still referenced by
// generation 2 through cross-generation dedup must survive sweeps of the
// superseded generation — even with parallel retrievals in flight on the
// current generation — and becomes reclaimable only once a later build
// stops referencing it. Stale chunk-index entries (refcount 0: their data
// file is gone) are purged and counted.
TEST(LifecycleGcTest, SharedChunksSurviveGcUnderConcurrentRetrieval) {
  Env* env = Env::Default();
  const std::string root = ::testing::TempDir() + "/mh_lifecycle_gc_shared";
  RemoveTree(env, root);
  auto repo = Repository::Init(env, root);
  ASSERT_TRUE(repo.ok());
  CommitTrained(&*repo, "m1", 51);
  ASSERT_TRUE(repo->Archive(ArchiveOptions()).ok());  // Generation 1.
  CommitTrained(&*repo, "m2", 52);
  ASSERT_TRUE(repo->Archive(ArchiveOptions()).ok());  // Generation 2.
  auto want = repo->GetSnapshotParams("m1", 0);
  ASSERT_TRUE(want.ok());

  // Generation 2 re-archives m1 bit-identically, so dedup must have kept
  // its planes in the generation-1 file and referenced them.
  const std::string pas_dir = repo_layout::PasDir(root);
  const std::string shared_chunks = JoinPath(pas_dir, "chunks-1.bin");
  ASSERT_TRUE(env->FileExists(shared_chunks));
  auto manifest_files = ReadArchiveManifestFiles(env, pas_dir);
  ASSERT_TRUE(manifest_files.ok());
  ASSERT_NE(std::find(manifest_files->begin(), manifest_files->end(),
                      std::string("chunks-1.bin")),
            manifest_files->end())
      << "generation 2 does not share generation 1 chunks";

  // Sweeps race a reader resolving snapshots that live in the shared
  // file; the file must never disappear and every retrieval must match.
  std::atomic<bool> done{false};
  std::atomic<int> failed{0};
  std::thread retriever([&] {
    auto opened = ArchiveReader::Open(env, pas_dir);
    if (!opened.ok()) {
      failed.fetch_add(1);
      done.store(true);
      return;
    }
    ThreadPool pool(4);
    for (int i = 0; i < 20; ++i) {
      auto sets = opened->RetrieveSnapshotsParallel(
          {"m1/s0"}, &pool, ParallelScheme::kShared);
      if (!sets.ok() || sets->size() != 1) {
        failed.fetch_add(1);
        break;
      }
    }
    done.store(true);
  });
  uint64_t max_shared = 0;
  while (!done.load()) {
    auto report = RunArchiveGc(env, root);
    ASSERT_TRUE(report.ok());
    max_shared = std::max(max_shared, report->shared_files);
    EXPECT_EQ(report->reclaimed_files, 0u);
    EXPECT_TRUE(env->FileExists(shared_chunks));
  }
  retriever.join();
  EXPECT_EQ(failed.load(), 0);
  EXPECT_GE(max_shared, 1u);

  // Refcount-0 purge: an index entry whose data file is gone (e.g. left
  // behind by an interrupted sweep) is dropped and counted.
  {
    auto index = ChunkIndex::Load(env, pas_dir);
    ASSERT_TRUE(index.ok());
    const Hash128 ghost = ContentHash128("ghost", 5);
    index->AddRef(ghost, "chunks-0.bin", 0, 17);
    ASSERT_TRUE(index->Save(env, pas_dir).ok());
    auto purge = RunArchiveGc(env, root);
    ASSERT_TRUE(purge.ok());
    EXPECT_EQ(purge->index_entries_purged, 1u);
    auto reloaded = ChunkIndex::Load(env, pas_dir);
    ASSERT_TRUE(reloaded.ok());
    EXPECT_EQ(reloaded->Find(ghost), nullptr);
  }

  // A build that stops referencing the shared file (dedup off rewrites
  // every payload) finally makes it reclaimable. A pin held across the
  // rebuild (an in-flight retrieval on the old plan) defers that to the
  // sweep: stale now, but protected until the pin drains.
  auto pin = GenerationPinRegistry::Global()->Pin(env, pas_dir, 1);
  ArchiveOptions no_dedup;
  no_dedup.enable_dedup = false;
  ASSERT_TRUE(repo->Archive(no_dedup).ok());  // Generation 3.
  ASSERT_TRUE(env->FileExists(shared_chunks));
  auto deferred = RunArchiveGc(env, root);
  ASSERT_TRUE(deferred.ok());
  EXPECT_GE(deferred->pinned_files, 1u);
  EXPECT_TRUE(env->FileExists(shared_chunks));
  pin.reset();
  auto swept = RunArchiveGc(env, root);
  ASSERT_TRUE(swept.ok());
  EXPECT_GE(swept->reclaimed_files, 1u);
  EXPECT_FALSE(env->FileExists(shared_chunks));

  // Everything still reads back from the rematerialized generation.
  auto current = ArchiveReader::Open(env, pas_dir);
  ASSERT_TRUE(current.ok());
  auto after = current->RetrieveSnapshot("m1/s0");
  ASSERT_TRUE(after.ok());
  ExpectSameParams(*after, *want);
  RemoveTree(env, root);
}

// -------------------------------------------------------- LifecycleDaemon

TEST(LifecycleDaemonTest, RunOnceReencodesSwapsAndReclaims) {
  MemEnv env;
  std::vector<NamedParam> want_m1;
  std::vector<NamedParam> want_m2;
  {
    // Scoped so the setup repository's cached reader (and its generation
    // pin) is gone before the cycle runs — only the explicit serving
    // reader below holds generation 1.
    auto repo = Repository::Init(&env, "r");
    ASSERT_TRUE(repo.ok());
    CommitTrained(&*repo, "m1", 21);
    ASSERT_TRUE(repo->Archive(ArchiveOptions()).ok());  // Generation 1.
    CommitTrained(&*repo, "m2", 22);  // Staged; the cycle migrates it.
    auto m1 = repo->GetSnapshotParams("m1", 0);
    auto m2 = repo->GetSnapshotParams("m2", 0);
    ASSERT_TRUE(m1.ok());
    ASSERT_TRUE(m2.ok());
    want_m1 = std::move(*m1);
    want_m2 = std::move(*m2);
  }

  // Emulate the embedding server: a live reader pins generation 1 across
  // the re-encode, and the swap callback drops it — so the cycle's GC leg
  // (not the builder's cleanup) is what reclaims the old generation.
  auto opened = ArchiveReader::Open(&env, "r/pas");
  ASSERT_TRUE(opened.ok());
  std::optional<ArchiveReader> serving_reader(std::move(*opened));
  int reloads = 0;

  LifecycleOptions options;
  options.min_accesses_between_cycles = 0;
  LifecycleDaemon daemon(&env, "r", options);
  daemon.set_reload_callback([&] {
    serving_reader.reset();
    ++reloads;
  });
  daemon.access_tracker()->RecordAccess("m1/s0");
  daemon.access_tracker()->RecordAccess("m1/s0");

  const Status run = daemon.RunOnce();
  ASSERT_TRUE(run.ok()) << run.ToString();
  EXPECT_EQ(reloads, 1);

  const MaintenanceStatus status = daemon.status();
  EXPECT_EQ(status.cycles_completed, 1u);
  EXPECT_EQ(status.cycles_failed, 0u);
  EXPECT_TRUE(status.last_error.empty());
  EXPECT_GE(status.archive_generation, 2u);
  EXPECT_GE(status.hot_snapshots, 1u);   // m1/s0 was accessed.
  EXPECT_GE(status.cold_snapshots, 1u);  // The untouched snapshots.
  // The sweep accounted for generation 1 one way or the other: reclaimed,
  // or kept alive because the re-encoded manifest still references its
  // chunks through cross-generation dedup.
  EXPECT_TRUE(status.bytes_reclaimed_total > 0 || status.shared_files > 0)
      << status.ToJson();
  ASSERT_EQ(status.last_outcomes.size(), 4u);
  for (const TaskOutcome& outcome : status.last_outcomes) {
    EXPECT_EQ(outcome.state, TaskOutcome::State::kOk) << outcome.name;
  }
  const std::string json = status.ToJson();
  EXPECT_NE(json.find("\"cycles_completed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"last_tasks\""), std::string::npos);

  // The superseded generation is gone unless the new manifest shares its
  // chunks; every snapshot — archived before the cycle or staged — reads
  // back identical from the new plan either way.
  EXPECT_EQ(env.FileExists("r/pas/chunks-1.bin"), status.shared_files > 0);
  auto reopened = Repository::Open(&env, "r");
  ASSERT_TRUE(reopened.ok());
  auto got_m1 = reopened->GetSnapshotParams("m1", 0);
  auto got_m2 = reopened->GetSnapshotParams("m2", 0);
  ASSERT_TRUE(got_m1.ok());
  ASSERT_TRUE(got_m2.ok());
  ExpectSameParams(*got_m1, want_m1);
  ExpectSameParams(*got_m2, want_m2);

  auto fsck = RunFsck(&env, "r");
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck->clean()) << fsck->ToString();
}

TEST(LifecycleDaemonTest, IdleHubSkipsCycles) {
  MemEnv env;
  auto repo = Repository::Init(&env, "r");
  ASSERT_TRUE(repo.ok());
  LifecycleOptions options;
  options.interval_ms = 20;
  options.min_accesses_between_cycles = 1;
  LifecycleDaemon daemon(&env, "r", options);
  ASSERT_TRUE(daemon.Start().ok());
  // No accesses arrive, so every due cycle is skipped — and the skipped
  // path never touches the (thread-unsafe) MemEnv.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (daemon.status().cycles_skipped < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(daemon.Stop().ok());
  const MaintenanceStatus status = daemon.status();
  EXPECT_GE(status.cycles_skipped, 2u);
  EXPECT_EQ(status.cycles_started, 0u);
}

// ------------------------------------------------------- Crash sweeps
//
// The PR 1/5 discipline extended to the daemon: fail (or tear) the k-th
// Env mutation during a full maintenance cycle for every k until one runs
// fault-free. After every crash the repository must recover to a state
// where all snapshots read back identical and fsck is clean (after
// quarantining plain orphans).

void SweepMaintenanceCrashes(bool torn) {
  MemEnv base;
  auto seeded = Repository::Init(&base, "r");
  ASSERT_TRUE(seeded.ok());
  CommitTrained(&*seeded, "m1", 31);
  ASSERT_TRUE(seeded->Archive(ArchiveOptions()).ok());
  CommitTrained(&*seeded, "m2", 32);
  auto m1_want = seeded->GetSnapshotParams("m1", 0);
  auto m2_want = seeded->GetSnapshotParams("m2", 0);
  ASSERT_TRUE(m1_want.ok());
  ASSERT_TRUE(m2_want.ok());

  bool completed = false;
  for (int k = 1; k < 300 && !completed; ++k) {
    MemEnv env = base;
    FaultInjectionEnv fault(&env);
    {
      LifecycleOptions options;
      options.min_accesses_between_cycles = 0;
      LifecycleDaemon daemon(&fault, "r", options);
      daemon.access_tracker()->RecordAccess("m1/s0");
      if (torn) {
        fault.TornWriteNthMutation(k);
      } else {
        fault.FailNthMutation(k);
      }
      const Status run = daemon.RunOnce();
      completed = run.ok() && !fault.crashed();
    }
    // Recovery path: reopen against the raw env, as a restart would.
    auto reopened = Repository::Open(&env, "r");
    ASSERT_TRUE(reopened.ok()) << "crash at mutation " << k << ": "
                               << reopened.status().ToString();
    const std::vector<std::pair<std::string, const std::vector<NamedParam>*>>
        expected = {{"m1", &*m1_want}, {"m2", &*m2_want}};
    for (const auto& [name, want] : expected) {
      auto got = reopened->GetSnapshotParams(name, 0);
      ASSERT_TRUE(got.ok()) << name << " after crash at mutation " << k
                            << ": " << got.status().ToString();
      ASSERT_EQ(got->size(), want->size());
      for (size_t p = 0; p < got->size(); ++p) {
        EXPECT_TRUE((*got)[p].value.ApproxEquals((*want)[p].value, 1e-5f))
            << name << " param " << p << " after crash at mutation " << k;
      }
    }
    // Stale generations and interrupted rebuilds are notes; anything
    // worse must be a plain orphan that quarantining clears.
    FsckOptions quarantine;
    quarantine.quarantine = true;
    auto fsck = RunFsck(&env, "r", quarantine);
    ASSERT_TRUE(fsck.ok());
    for (const std::string& defect : fsck->defects) {
      EXPECT_NE(defect.find("orphaned"), std::string::npos)
          << "crash at mutation " << k << ": " << defect;
    }
    auto again = RunFsck(&env, "r");
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(again->clean())
        << "crash at mutation " << k << ":\n" << again->ToString();
  }
  EXPECT_TRUE(completed) << "maintenance cycle never ran fault-free";
}

TEST(LifecycleCrashTest, CycleIsAtomicUnderEveryCrashPoint) {
  SweepMaintenanceCrashes(/*torn=*/false);
}

TEST(LifecycleCrashTest, CycleIsAtomicUnderTornWrites) {
  SweepMaintenanceCrashes(/*torn=*/true);
}

// ------------------------------------------------------------ fsck + GC

TEST(LifecycleFsckTest, PendingGcGenerationsAreNotesNotDefects) {
  MemEnv env;
  auto repo = Repository::Init(&env, "r");
  ASSERT_TRUE(repo.ok());
  // Dedup off so generation 1 becomes genuinely stale (pending GC) rather
  // than staying referenced through shared chunks.
  ArchiveOptions no_dedup;
  no_dedup.enable_dedup = false;
  CommitTrained(&*repo, "m1", 41);
  ASSERT_TRUE(repo->Archive(no_dedup).ok());
  auto pin = GenerationPinRegistry::Global()->Pin(&env, "r/pas", 1);
  CommitTrained(&*repo, "m2", 42);
  ASSERT_TRUE(repo->Archive(no_dedup).ok());
  ASSERT_TRUE(env.FileExists("r/pas/chunks-1.bin"));

  // A healthy post-compaction repository: pending-GC state is reported,
  // but the verdict is clean (exit 0 for `dlv fsck`).
  auto report = RunFsck(&env, "r");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->ToString();
  bool noted = false;
  for (const std::string& note : report->notes) {
    if (note.find("pending-GC generation 1") != std::string::npos &&
        note.find("byte(s)") != std::string::npos) {
      noted = true;
    }
  }
  EXPECT_TRUE(noted) << report->ToString();

  // After the sweep the note disappears and the repo stays clean.
  pin.reset();
  ASSERT_TRUE(RunArchiveGc(&env, "r").ok());
  auto after = RunFsck(&env, "r");
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->clean()) << after->ToString();
  for (const std::string& note : after->notes) {
    EXPECT_EQ(note.find("pending-GC"), std::string::npos) << note;
  }
}

}  // namespace
}  // namespace modelhub
