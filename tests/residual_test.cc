// Tests for DAG execution: residual (fan-out + eltwise-add) networks.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/random.h"
#include "data/dataset.h"
#include "nn/interval_eval.h"
#include "nn/network.h"
#include "nn/trainer.h"
#include "nn/zoo.h"

namespace modelhub {
namespace {

TEST(DagShapeTest, ResidualShapesInfer) {
  NetworkDef def = MiniResNet(4, 12, 2, 6);
  EXPECT_TRUE(def.Validate().ok());
  EXPECT_FALSE(def.IsChain());  // Fan-out at every skip.
  auto shapes = InferDagShapes(def);
  ASSERT_TRUE(shapes.ok());
  // Every residual add preserves the stem shape 6 x 12 x 12.
  for (const auto& ns : *shapes) {
    if (ns.name.find("_add") != std::string::npos) {
      EXPECT_EQ(ns.out.c, 6);
      EXPECT_EQ(ns.out.h, 12);
      EXPECT_EQ(ns.out.w, 12);
    }
  }
}

TEST(DagShapeTest, AddNodeArityValidated) {
  NetworkDef def("bad", 1, 8, 8);
  ASSERT_TRUE(def.Append(MakeConv("c1", 4, 3, 1, 1)).ok());
  ASSERT_TRUE(def.Append(MakeEltwiseAdd("add")).ok());  // Only one input.
  ASSERT_TRUE(def.Append(MakeFull("fc", 2)).ok());
  EXPECT_FALSE(InferDagShapes(def).ok());
}

TEST(DagShapeTest, AddShapeMismatchRejected) {
  NetworkDef def("bad", 1, 8, 8);
  ASSERT_TRUE(def.AddNode(MakeConv("a", 4, 3, 1, 1)).ok());
  ASSERT_TRUE(def.AddNode(MakeConv("b", 8, 3, 1, 1)).ok());  // 8 channels.
  ASSERT_TRUE(def.AddNode(MakeEltwiseAdd("add")).ok());
  // Two sources feeding the add: also violates the single-source rule, and
  // even with one source the channel mismatch must be rejected.
  ASSERT_TRUE(def.AddEdge("a", "add").ok());
  ASSERT_TRUE(def.AddEdge("b", "add").ok());
  EXPECT_FALSE(InferDagShapes(def).ok());
}

TEST(DagShapeTest, MultiInputNonAddRejected) {
  NetworkDef def("bad", 1, 8, 8);
  ASSERT_TRUE(def.AddNode(MakeConv("a", 4, 3, 1, 1)).ok());
  ASSERT_TRUE(def.AddNode(MakeActivation("r1", LayerKind::kReLU)).ok());
  ASSERT_TRUE(def.AddNode(MakeActivation("r2", LayerKind::kReLU)).ok());
  ASSERT_TRUE(def.AddNode(MakeActivation("join", LayerKind::kTanh)).ok());
  ASSERT_TRUE(def.AddEdge("a", "r1").ok());
  ASSERT_TRUE(def.AddEdge("a", "r2").ok());
  ASSERT_TRUE(def.AddEdge("r1", "join").ok());
  ASSERT_TRUE(def.AddEdge("r2", "join").ok());
  EXPECT_FALSE(InferDagShapes(def).ok());
}

TEST(ResidualNetworkTest, ForwardMatchesManualSkipComputation) {
  // One residual block where the conv path is forced to zero weights:
  // the output must equal relu(stem output) passed through the skip.
  NetworkDef def = MiniResNet(3, 8, 1, 4);
  auto net = Network::Create(def);
  ASSERT_TRUE(net.ok());
  Rng rng(3);
  net->InitializeWeights(&rng);
  // Zero the block's convs: add output == skip input.
  auto params = net->GetParameters();
  for (auto& param : params) {
    if (param.name.find("res0_") != std::string::npos) {
      param.value.Fill(0.0f);
    }
  }
  ASSERT_TRUE(net->SetParameters(params).ok());

  Tensor input(2, 1, 8, 8);
  for (auto& v : input.data()) v = rng.UniformFloat(0, 1);
  Tensor with_block;
  ASSERT_TRUE(net->Forward(input, &with_block).ok());

  // The same network without the residual block.
  NetworkDef plain("plain", 1, 8, 8);
  ASSERT_TRUE(plain.Append(MakeConv("conv1", 4, 3, 1, 1)).ok());
  ASSERT_TRUE(plain.Append(MakeActivation("relu1", LayerKind::kReLU)).ok());
  // res0_relu2(relu1 + 0) == relu1 since relu1 >= 0.
  ASSERT_TRUE(plain.Append(MakePool("pool_final", PoolMode::kMax, 2, 2)).ok());
  ASSERT_TRUE(plain.Append(MakeFull("fc", 3)).ok());
  ASSERT_TRUE(plain.Append(MakeActivation("prob", LayerKind::kSoftmax)).ok());
  auto plain_net = Network::Create(plain);
  ASSERT_TRUE(plain_net.ok());
  // Copy the shared parameters.
  std::vector<NamedParam> shared;
  for (const auto& param : params) {
    if (param.name.rfind("conv1.", 0) == 0 || param.name.rfind("fc.", 0) == 0) {
      shared.push_back(param);
    }
  }
  ASSERT_TRUE(plain_net->SetParameters(shared).ok());
  Tensor without_block;
  ASSERT_TRUE(plain_net->Forward(input, &without_block).ok());

  ASSERT_EQ(with_block.data().size(), without_block.data().size());
  for (size_t i = 0; i < with_block.data().size(); ++i) {
    EXPECT_NEAR(with_block.data()[i], without_block.data()[i], 1e-5f);
  }
}

/// A residual net with smooth activations (tanh / sigmoid / avg pool):
/// central differences are then accurate, isolating the DAG wiring from
/// ReLU / max-pool kink noise.
NetworkDef SmoothResidualNet() {
  NetworkDef def("smooth-res", 1, 8, 8);
  EXPECT_TRUE(def.Append(MakeConv("conv1", 4, 3, 1, 1)).ok());
  EXPECT_TRUE(def.Append(MakeActivation("tanh1", LayerKind::kTanh)).ok());
  // Residual block with tanh in the middle.
  EXPECT_TRUE(def.AddNode(MakeConv("res_conv1", 4, 3, 1, 1)).ok());
  EXPECT_TRUE(def.AddNode(MakeActivation("res_tanh", LayerKind::kTanh)).ok());
  EXPECT_TRUE(def.AddNode(MakeConv("res_conv2", 4, 3, 1, 1)).ok());
  EXPECT_TRUE(def.AddNode(MakeEltwiseAdd("res_add")).ok());
  EXPECT_TRUE(def.AddEdge("tanh1", "res_conv1").ok());
  EXPECT_TRUE(def.AddEdge("res_conv1", "res_tanh").ok());
  EXPECT_TRUE(def.AddEdge("res_tanh", "res_conv2").ok());
  EXPECT_TRUE(def.AddEdge("res_conv2", "res_add").ok());
  EXPECT_TRUE(def.AddEdge("tanh1", "res_add").ok());  // Skip.
  EXPECT_TRUE(def.AddNode(MakeActivation("sig", LayerKind::kSigmoid)).ok());
  EXPECT_TRUE(def.AddEdge("res_add", "sig").ok());
  EXPECT_TRUE(def.AddNode(MakePool("pool", PoolMode::kAvg, 2, 2)).ok());
  EXPECT_TRUE(def.AddEdge("sig", "pool").ok());
  EXPECT_TRUE(def.AddNode(MakeFull("fc", 3)).ok());
  EXPECT_TRUE(def.AddEdge("pool", "fc").ok());
  EXPECT_TRUE(def.AddNode(MakeActivation("prob", LayerKind::kSoftmax)).ok());
  EXPECT_TRUE(def.AddEdge("fc", "prob").ok());
  return def;
}

TEST(ResidualNetworkTest, GradientsMatchNumericalDifferentiation) {
  NetworkDef def = SmoothResidualNet();
  auto net_result = Network::Create(def);
  ASSERT_TRUE(net_result.ok());
  Network& net = *net_result;
  Rng rng(11);
  net.InitializeWeights(&rng);

  Tensor input(2, 1, 8, 8);
  for (auto& v : input.data()) v = rng.UniformFloat(-1, 1);
  const std::vector<int> labels = {0, 2};

  auto loss = net.ForwardBackward(input, labels, &rng);
  ASSERT_TRUE(loss.ok());
  const auto grads = net.GetGradients();
  auto params = net.GetParameters();

  const float eps = 1e-2f;
  int checked = 0;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    FloatMatrix& m = params[pi].value;
    for (int probe = 0; probe < 3; ++probe) {
      const int64_t idx =
          static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(m.size())));
      const float original = m.data()[idx];
      m.data()[idx] = original + eps;
      ASSERT_TRUE(net.SetParameters({params[pi]}).ok());
      auto loss_plus = net.ForwardBackward(input, labels, &rng);
      ASSERT_TRUE(loss_plus.ok());
      m.data()[idx] = original - eps;
      ASSERT_TRUE(net.SetParameters({params[pi]}).ok());
      auto loss_minus = net.ForwardBackward(input, labels, &rng);
      ASSERT_TRUE(loss_minus.ok());
      m.data()[idx] = original;
      ASSERT_TRUE(net.SetParameters({params[pi]}).ok());

      const double numeric = (*loss_plus - *loss_minus) / (2.0 * eps);
      const double analytic = grads[pi].value.data()[idx];
      const double scale =
          std::max({std::fabs(numeric), std::fabs(analytic), 1e-3});
      EXPECT_NEAR(analytic, numeric, 0.15 * scale)
          << params[pi].name << "[" << idx << "]";
      ++checked;
    }
  }
  EXPECT_GE(checked, 15);
}

TEST(ResidualNetworkTest, TrainsOnBlobs) {
  const Dataset ds = MakeBlobDataset(192, 4, 12, 0.05f, 7);
  auto net = Network::Create(MiniResNet(4, 12, 2, 6));
  ASSERT_TRUE(net.ok());
  Rng rng(5);
  net->InitializeWeights(&rng);
  TrainOptions options;
  options.iterations = 100;
  options.batch_size = 16;
  options.base_learning_rate = 0.05f;
  auto result = TrainNetwork(&*net, ds, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->final_accuracy, 0.9);
}

TEST(ResidualNetworkTest, IntervalSoundnessThroughSkips) {
  NetworkDef def = MiniResNet(3, 8, 1, 4);
  auto net = Network::Create(def);
  ASSERT_TRUE(net.ok());
  Rng rng(23);
  net->InitializeWeights(&rng);
  Tensor input(2, 1, 8, 8);
  for (auto& v : input.data()) v = rng.UniformFloat(0, 1);

  const float delta = 0.01f;
  std::map<std::string, IntervalMatrix> bounds;
  auto params = net->GetParameters();
  for (const auto& param : params) {
    FloatMatrix lo = param.value;
    FloatMatrix hi = param.value;
    for (auto& v : lo.data()) v -= delta;
    for (auto& v : hi.data()) v += delta;
    bounds.emplace(param.name,
                   *IntervalMatrix::FromBounds(std::move(lo), std::move(hi)));
  }
  IntervalEvaluator evaluator(&*net);
  auto intervals = evaluator.Forward(input, bounds);
  ASSERT_TRUE(intervals.ok());

  // Sample perturbed weights inside the bounds; logits must stay inside
  // the intervals (through fan-out and the add join).
  NetworkDef logits_def = *def.Slice("conv1", "fc");
  for (int trial = 0; trial < 8; ++trial) {
    auto perturbed = params;
    for (auto& param : perturbed) {
      for (auto& v : param.value.data()) v += rng.UniformFloat(-delta, delta);
    }
    auto logits_net = Network::Create(logits_def);
    ASSERT_TRUE(logits_net.ok());
    ASSERT_TRUE(logits_net->SetParameters(perturbed).ok());
    Tensor logits;
    ASSERT_TRUE(logits_net->Forward(input, &logits).ok());
    for (int64_t n = 0; n < 2; ++n) {
      for (int64_t j = 0; j < 3; ++j) {
        const Interval& iv =
            (*intervals)[static_cast<size_t>(n)][static_cast<size_t>(j)];
        const float v = logits.At(n, j, 0, 0);
        EXPECT_GE(v, iv.lo - 1e-3f);
        EXPECT_LE(v, iv.hi + 1e-3f);
      }
    }
  }
}

TEST(ResidualNetworkTest, SnapshotsArchiveAndEvalViaRepositoryPath) {
  // Residual parameters flow through GetParameters/SetParameters unchanged,
  // so PAS archival needs no special casing — spot-check the round trip.
  auto net = Network::Create(MiniResNet(3, 8, 1, 4));
  ASSERT_TRUE(net.ok());
  Rng rng(31);
  net->InitializeWeights(&rng);
  const auto params = net->GetParameters();
  // res block convs have parameters; add/relu do not.
  int res_convs = 0;
  for (const auto& param : params) {
    if (param.name.find("res0_conv") != std::string::npos) ++res_convs;
  }
  EXPECT_EQ(res_convs, 4);  // 2 convs x (W, b).
  auto net2 = Network::Create(MiniResNet(3, 8, 1, 4));
  ASSERT_TRUE(net2.ok());
  ASSERT_TRUE(net2->SetParameters(params).ok());
  Tensor input(1, 1, 8, 8);
  for (auto& v : input.data()) v = rng.UniformFloat(0, 1);
  Tensor a;
  Tensor b;
  ASSERT_TRUE(net->Forward(input, &a).ok());
  ASSERT_TRUE(net2->Forward(input, &b).ok());
  for (size_t i = 0; i < a.data().size(); ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(ZooTest, ResNetStyleValidatesAndCounts) {
  NetworkDef def = ResNetStyle(1000, 16, 64);
  EXPECT_TRUE(def.Validate().ok());
  auto count = def.ParameterCount();
  ASSERT_TRUE(count.ok());
  // Stem 7x7x3x64 + 32 convs of 3x3x64x64 + fc: ~1.3M at width 64.
  EXPECT_GT(*count, 1'000'000);
  auto shapes = InferDagShapes(def);
  EXPECT_TRUE(shapes.ok());
}

}  // namespace
}  // namespace modelhub
