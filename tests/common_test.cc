#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <mutex>
#include <set>

#include "common/checked_io.h"
#include "common/coding.h"
#include "common/crc32.h"
#include "common/env.h"
#include "common/fault_env.h"
#include "common/macros.h"
#include "common/random.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace modelhub {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing snapshot");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing snapshot");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes;
  codes.insert(Status::InvalidArgument("").code());
  codes.insert(Status::NotFound("").code());
  codes.insert(Status::AlreadyExists("").code());
  codes.insert(Status::IOError("").code());
  codes.insert(Status::Corruption("").code());
  codes.insert(Status::OutOfRange("").code());
  codes.insert(Status::FailedPrecondition("").code());
  codes.insert(Status::Unimplemented("").code());
  codes.insert(Status::Internal("").code());
  EXPECT_EQ(codes.size(), 9u);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::IOError("x"), Status::IOError("x"));
  EXPECT_FALSE(Status::IOError("x") == Status::IOError("y"));
}

// ---------------------------------------------------------------- Result

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.ValueOr(42), 42);
}

TEST(ResultTest, OkStatusConstructionBecomesInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = r.MoveValue();
  EXPECT_EQ(v, "payload");
}

Status UseAssignOrReturn(int in, int* out) {
  MH_ASSIGN_OR_RETURN(int v, ParsePositive(in));
  *out = v * 2;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(5, &out).ok());
  EXPECT_EQ(out, 10);
  EXPECT_TRUE(UseAssignOrReturn(-5, &out).IsInvalidArgument());
}

// ---------------------------------------------------------------- Slice

TEST(SliceTest, BasicViews) {
  std::string s = "hello world";
  Slice sl(s);
  EXPECT_EQ(sl.size(), 11u);
  EXPECT_EQ(sl[0], 'h');
  sl.RemovePrefix(6);
  EXPECT_EQ(sl.ToString(), "world");
  EXPECT_EQ(sl.SubSlice(1, 3).ToString(), "orl");
  EXPECT_EQ(sl.SubSlice(10, 3).size(), 0u);   // Past the end.
  EXPECT_EQ(sl.SubSlice(3, 100).ToString(), "ld");  // Clamped.
}

TEST(SliceTest, Equality) {
  std::string a = "abc";
  std::string b = "abc";
  EXPECT_TRUE(Slice(a) == Slice(b));
  std::string c = "abd";
  EXPECT_FALSE(Slice(a) == Slice(c));
  EXPECT_TRUE(Slice() == Slice());
}

// ---------------------------------------------------------------- Coding

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xDEADBEEFu);
  PutFixed32(&buf, 0);
  PutFixed32(&buf, 0xFFFFFFFFu);
  Slice in(buf);
  uint32_t v = 0;
  ASSERT_TRUE(GetFixed32(&in, &v).ok());
  EXPECT_EQ(v, 0xDEADBEEFu);
  ASSERT_TRUE(GetFixed32(&in, &v).ok());
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(GetFixed32(&in, &v).ok());
  EXPECT_EQ(v, 0xFFFFFFFFu);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  Slice in(buf);
  uint64_t v = 0;
  ASSERT_TRUE(GetFixed64(&in, &v).ok());
  EXPECT_EQ(v, 0x0123456789ABCDEFull);
}

TEST(CodingTest, VarintRoundTripSweep) {
  std::vector<uint64_t> values = {0, 1, 127, 128, 300, 16383, 16384,
                                  (1ull << 32) - 1, 1ull << 32,
                                  ~0ull};
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  Slice in(buf);
  for (uint64_t expected : values) {
    uint64_t v = 0;
    ASSERT_TRUE(GetVarint64(&in, &v).ok());
    EXPECT_EQ(v, expected);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintTruncatedFails) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  buf.resize(buf.size() - 1);
  Slice in(buf);
  uint64_t v = 0;
  EXPECT_TRUE(GetVarint64(&in, &v).IsCorruption());
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("abc", 3));
  PutLengthPrefixed(&buf, Slice());
  PutLengthPrefixed(&buf, Slice("xy", 2));
  Slice in(buf);
  Slice v;
  ASSERT_TRUE(GetLengthPrefixed(&in, &v).ok());
  EXPECT_EQ(v.ToString(), "abc");
  ASSERT_TRUE(GetLengthPrefixed(&in, &v).ok());
  EXPECT_TRUE(v.empty());
  ASSERT_TRUE(GetLengthPrefixed(&in, &v).ok());
  EXPECT_EQ(v.ToString(), "xy");
}

TEST(CodingTest, GetFixed32TooShortFails) {
  std::string buf = "ab";
  Slice in(buf);
  uint32_t v;
  EXPECT_TRUE(GetFixed32(&in, &v).IsCorruption());
}

// ---------------------------------------------------------------- CRC32

TEST(Crc32Test, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 is the standard check value.
  EXPECT_EQ(Crc32(Slice("123456789", 9)), 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32(Slice()), 0u); }

TEST(Crc32Test, DetectsBitFlip) {
  std::string data(1024, 'x');
  const uint32_t clean = Crc32(Slice(data));
  data[512] ^= 1;
  EXPECT_NE(Crc32(Slice(data)), clean);
}

// ---------------------------------------------------------------- Env

class EnvTest : public ::testing::Test {
 protected:
  MemEnv env_;
};

TEST_F(EnvTest, WriteReadRoundTrip) {
  ASSERT_TRUE(env_.WriteFile("a/b.txt", "contents").ok());
  auto r = env_.ReadFile("a/b.txt");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "contents");
}

TEST_F(EnvTest, ReadMissingIsNotFound) {
  EXPECT_TRUE(env_.ReadFile("nope").status().IsNotFound());
}

TEST_F(EnvTest, RangeRead) {
  ASSERT_TRUE(env_.WriteFile("f", "0123456789").ok());
  auto r = env_.ReadFileRange("f", 3, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "3456");
  // Past EOF clamps.
  EXPECT_EQ(*env_.ReadFileRange("f", 8, 10), "89");
  EXPECT_EQ(*env_.ReadFileRange("f", 20, 10), "");
}

TEST_F(EnvTest, FileSizeAndExists) {
  ASSERT_TRUE(env_.WriteFile("f", "abcd").ok());
  EXPECT_TRUE(env_.FileExists("f"));
  EXPECT_FALSE(env_.FileExists("g"));
  EXPECT_EQ(*env_.FileSize("f"), 4u);
}

TEST_F(EnvTest, DeleteFile) {
  ASSERT_TRUE(env_.WriteFile("f", "x").ok());
  ASSERT_TRUE(env_.DeleteFile("f").ok());
  EXPECT_FALSE(env_.FileExists("f"));
  EXPECT_TRUE(env_.DeleteFile("f").IsNotFound());
}

TEST_F(EnvTest, CreateDirsAndList) {
  ASSERT_TRUE(env_.CreateDirs("repo/models/v1").ok());
  EXPECT_TRUE(env_.DirExists("repo"));
  EXPECT_TRUE(env_.DirExists("repo/models/v1"));
  ASSERT_TRUE(env_.WriteFile("repo/models/v1/a", "1").ok());
  ASSERT_TRUE(env_.WriteFile("repo/models/v1/b", "2").ok());
  auto names = env_.ListDir("repo/models/v1");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"a", "b"}));
  auto top = env_.ListDir("repo");
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(*top, (std::vector<std::string>{"models"}));
}

TEST_F(EnvTest, RenameFileMovesAndReplaces) {
  ASSERT_TRUE(env_.WriteFile("a", "old-a").ok());
  ASSERT_TRUE(env_.WriteFile("b", "old-b").ok());
  // Rename over an existing file replaces it.
  ASSERT_TRUE(env_.RenameFile("a", "b").ok());
  EXPECT_FALSE(env_.FileExists("a"));
  EXPECT_EQ(*env_.ReadFile("b"), "old-a");
  // Rename to a fresh name.
  ASSERT_TRUE(env_.RenameFile("b", "c/d").ok());
  EXPECT_EQ(*env_.ReadFile("c/d"), "old-a");
  // Missing source.
  EXPECT_TRUE(env_.RenameFile("nope", "x").IsNotFound());
}

TEST(PosixEnvTest, RenameFileInTmp) {
  Env* env = Env::Default();
  const std::string dir = ::testing::TempDir() + "/mh_rename_test";
  ASSERT_TRUE(env->CreateDirs(dir).ok());
  ASSERT_TRUE(env->WriteFile(JoinPath(dir, "src"), "payload").ok());
  ASSERT_TRUE(env->WriteFile(JoinPath(dir, "dst"), "stale").ok());
  ASSERT_TRUE(env->RenameFile(JoinPath(dir, "src"), JoinPath(dir, "dst")).ok());
  EXPECT_FALSE(env->FileExists(JoinPath(dir, "src")));
  EXPECT_EQ(*env->ReadFile(JoinPath(dir, "dst")), "payload");
  EXPECT_TRUE(
      env->RenameFile(JoinPath(dir, "gone"), JoinPath(dir, "x")).IsNotFound());
  ASSERT_TRUE(env->DeleteFile(JoinPath(dir, "dst")).ok());
}

// ---------------------------------------------------------- checked I/O

TEST(CheckedIoTest, RoundTripAndCorruptionDetection) {
  MemEnv env;
  ASSERT_TRUE(WriteChecked(&env, "f", "hello world").ok());
  auto back = ReadChecked(&env, "f");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "hello world");
  // Any single-byte flip anywhere in the framed file must be caught.
  auto framed = env.ReadFile("f");
  ASSERT_TRUE(framed.ok());
  for (size_t i = 0; i < framed->size(); ++i) {
    std::string bad = *framed;
    bad[i] ^= 0x40;
    ASSERT_TRUE(env.WriteFile("f", bad).ok());
    EXPECT_TRUE(ReadChecked(&env, "f").status().IsCorruption()) << i;
  }
  // Truncations (including below the footer size) are corruption.
  for (size_t len : {size_t{0}, size_t{3}, framed->size() - 1}) {
    ASSERT_TRUE(env.WriteFile("f", framed->substr(0, len)).ok());
    EXPECT_TRUE(ReadChecked(&env, "f").status().IsCorruption()) << len;
  }
  // Missing files keep their NotFound status (callers rely on it).
  EXPECT_TRUE(ReadChecked(&env, "missing").status().IsNotFound());
  // The empty payload round-trips too.
  ASSERT_TRUE(WriteChecked(&env, "e", "").ok());
  EXPECT_EQ(*ReadChecked(&env, "e"), "");
}

// ------------------------------------------------------ fault injection

TEST(FaultInjectionEnvTest, FailsNthMutationThenStaysCrashed) {
  MemEnv mem;
  FaultInjectionEnv env(&mem);
  ASSERT_TRUE(env.WriteFile("a", "1").ok());  // Mutation 1.
  env.FailNthMutation(2);
  ASSERT_TRUE(env.WriteFile("b", "2").ok());        // Mutation 2 (k=1).
  EXPECT_FALSE(env.WriteFile("c", "3").ok());       // Mutation 3 (k=2) fails.
  EXPECT_TRUE(env.crashed());
  // After the crash every mutation fails, reads still work.
  EXPECT_FALSE(env.WriteFile("d", "4").ok());
  EXPECT_FALSE(env.DeleteFile("a").ok());
  EXPECT_FALSE(env.RenameFile("a", "z").ok());
  EXPECT_FALSE(env.CreateDirs("dir").ok());
  EXPECT_EQ(*env.ReadFile("a"), "1");
  EXPECT_FALSE(mem.FileExists("c"));
  env.Reset();
  EXPECT_TRUE(env.WriteFile("c", "3").ok());
}

TEST(FaultInjectionEnvTest, TornWriteLeavesPrefixInShadowFile) {
  MemEnv mem;
  ASSERT_TRUE(mem.WriteFile("f", "old contents").ok());
  FaultInjectionEnv env(&mem);
  env.TornWriteNthMutation(1, 0.5);
  EXPECT_FALSE(env.WriteFile("f", "NEW CONTENTS!").ok());
  // The target keeps its old bytes (WriteFile's atomic-replace contract);
  // the torn prefix lands in the shadow tmp file.
  EXPECT_EQ(*mem.ReadFile("f"), "old contents");
  auto shadow = mem.ReadFile("f.tmp");
  ASSERT_TRUE(shadow.ok());
  EXPECT_FALSE(shadow->empty());
  EXPECT_LT(shadow->size(), std::string("NEW CONTENTS!").size());
  EXPECT_EQ(*shadow, std::string("NEW CONTENTS!").substr(0, shadow->size()));
}

TEST(FaultInjectionEnvTest, ReadFaultsAndWriteCorruption) {
  MemEnv mem;
  FaultInjectionEnv env(&mem);
  ASSERT_TRUE(env.WriteFile("data/a", "payload").ok());
  env.FailReadsMatching("data/");
  EXPECT_FALSE(env.ReadFile("data/a").ok());
  EXPECT_FALSE(env.ReadFileRange("data/a", 0, 3).ok());
  env.Reset();
  EXPECT_TRUE(env.ReadFile("data/a").ok());
  // Silent bit flips on matching writes: the write succeeds, the stored
  // bytes differ from the payload by exactly one bit.
  env.CorruptWritesMatching("evil", /*bit=*/3);
  ASSERT_TRUE(env.WriteFile("evil.bin", "AAAA").ok());
  EXPECT_NE(*mem.ReadFile("evil.bin"), "AAAA");
  ASSERT_TRUE(env.WriteFile("fine.bin", "AAAA").ok());
  EXPECT_EQ(*mem.ReadFile("fine.bin"), "AAAA");
}

TEST(PosixEnvTest, WriteReadDeleteInTmp) {
  Env* env = Env::Default();
  const std::string dir = ::testing::TempDir() + "/mh_env_test";
  ASSERT_TRUE(env->CreateDirs(dir).ok());
  const std::string path = JoinPath(dir, "file.bin");
  std::string payload(10000, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i % 251);
  }
  ASSERT_TRUE(env->WriteFile(path, payload).ok());
  EXPECT_TRUE(env->FileExists(path));
  EXPECT_EQ(*env->FileSize(path), payload.size());
  EXPECT_EQ(*env->ReadFile(path), payload);
  EXPECT_EQ(*env->ReadFileRange(path, 100, 16), payload.substr(100, 16));
  auto names = env->ListDir(dir);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 1u);
  ASSERT_TRUE(env->DeleteFile(path).ok());
  EXPECT_FALSE(env->FileExists(path));
}

TEST(PosixEnvTest, MapFileMatchesReadAndOutlivesDelete) {
  Env* env = Env::Default();
  const std::string dir = ::testing::TempDir() + "/mh_mmap_test";
  ASSERT_TRUE(env->CreateDirs(dir).ok());
  const std::string path = JoinPath(dir, "mapped.bin");
  std::string payload(8192, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>((i * 31) % 253);
  }
  ASSERT_TRUE(env->WriteFile(path, payload).ok());
  auto mapping = env->MapFile(path);
  ASSERT_TRUE(mapping.ok());
  ASSERT_EQ((*mapping)->size(), payload.size());
  EXPECT_EQ(std::string((*mapping)->data(), (*mapping)->size()), payload);
  // POSIX semantics: an open mapping pins the inode, so readers holding a
  // mapping are immune to concurrent unlink/replace of the path.
  ASSERT_TRUE(env->DeleteFile(path).ok());
  EXPECT_EQ(std::string((*mapping)->data(), (*mapping)->size()), payload);
}

TEST(PosixEnvTest, MapFileRejectsEmptyAndMissingFiles) {
  Env* env = Env::Default();
  const std::string dir = ::testing::TempDir() + "/mh_mmap_test";
  ASSERT_TRUE(env->CreateDirs(dir).ok());
  EXPECT_FALSE(env->MapFile(JoinPath(dir, "absent.bin")).ok());
  const std::string empty = JoinPath(dir, "empty.bin");
  ASSERT_TRUE(env->WriteFile(empty, "").ok());
  EXPECT_FALSE(env->MapFile(empty).ok());
}

TEST(MemEnvTest, MapFileIsUnimplemented) {
  // MemEnv (and the fault-injection wrapper built on it) deliberately
  // does not map: chunk readers must fall back to ranged reads, which is
  // exactly the path the crash-injection sweeps exercise.
  MemEnv env;
  ASSERT_TRUE(env.WriteFile("f.bin", "abc").ok());
  const Status status = env.MapFile("f.bin").status();
  EXPECT_EQ(status.code(), StatusCode::kUnimplemented);
}

TEST(PathTest, JoinPath) {
  EXPECT_EQ(JoinPath("a", "b"), "a/b");
  EXPECT_EQ(JoinPath("a/", "b"), "a/b");
  EXPECT_EQ(JoinPath("", "b"), "b");
  EXPECT_EQ(JoinPath("a", ""), "a");
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(123);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Schedule([&counter] { counter.fetch_add(10); });
  pool.Schedule([&counter] { counter.fetch_add(100); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 111);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(3);
  pool.Wait();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPoolTest, MinimumOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<bool> ran{false};
  pool.Schedule([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

// ---------------------------------------------------------- WaitGroup

TEST(WaitGroupTest, WaitsForScheduledBatch) {
  ThreadPool pool(4);
  WaitGroup group;
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule(&group, [&counter] { counter.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(counter.load(), 100);
  group.Wait();  // Reusable: zero count returns immediately.
}

TEST(WaitGroupTest, WaitWithNothingScheduledReturns) {
  WaitGroup group;
  group.Wait();
  SUCCEED();
}

// The batch-wait contract: a group's Wait() covers only its own tasks,
// not everything in flight on the pool. The foreign task here blocks on
// a latch that is only released AFTER the group's Wait() returns — if
// Wait() barriered on all pool tasks (the old ThreadPool::Wait()
// semantics), this test would deadlock.
TEST(WaitGroupTest, WaitIgnoresForeignTasks) {
  ThreadPool pool(2);
  std::mutex mutex;
  std::condition_variable released_cv;
  bool released = false;
  std::atomic<bool> foreign_done{false};
  pool.Schedule([&] {
    std::unique_lock<std::mutex> lock(mutex);
    released_cv.wait(lock, [&] { return released; });
    foreign_done = true;
  });
  WaitGroup group;
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) {
    pool.Schedule(&group, [&counter] { counter.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(counter.load(), 8);
  EXPECT_FALSE(foreign_done.load());
  {
    std::lock_guard<std::mutex> lock(mutex);
    released = true;
  }
  released_cv.notify_all();
  pool.Wait();
  EXPECT_TRUE(foreign_done.load());
}

// Tasks may fan out follow-up work against their own group: the child's
// Add() happens inside the parent task, before the pool decrements the
// parent, so the count never transiently reaches zero mid-expansion.
TEST(WaitGroupTest, TasksMayScheduleFollowUpsIntoSameGroup) {
  ThreadPool pool(4);
  WaitGroup group;
  std::atomic<int> counter{0};
  std::function<void(int)> expand = [&](int depth) {
    counter.fetch_add(1);
    if (depth > 0) {
      for (int i = 0; i < 2; ++i) {
        pool.Schedule(&group, [&expand, depth] { expand(depth - 1); });
      }
    }
  };
  pool.Schedule(&group, [&expand] { expand(4); });
  group.Wait();
  // Full binary expansion: 2^5 - 1 nodes.
  EXPECT_EQ(counter.load(), 31);
}

TEST(WaitGroupTest, TwoGroupsOnOnePoolWaitIndependently) {
  ThreadPool pool(4);
  WaitGroup first;
  WaitGroup second;
  std::atomic<int> first_count{0};
  std::atomic<int> second_count{0};
  for (int i = 0; i < 50; ++i) {
    pool.Schedule(&first, [&first_count] { first_count.fetch_add(1); });
    pool.Schedule(&second, [&second_count] { second_count.fetch_add(1); });
  }
  first.Wait();
  EXPECT_EQ(first_count.load(), 50);
  second.Wait();
  EXPECT_EQ(second_count.load(), 50);
}

}  // namespace
}  // namespace modelhub
