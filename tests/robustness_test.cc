// Failure-injection and robustness tests: corrupted artifacts, missing
// files, partially written state, and garbage inputs must produce clean
// Status errors — never crashes, hangs, or silent wrong answers.

#include <gtest/gtest.h>

#include "common/env.h"
#include "common/fault_env.h"
#include "common/random.h"
#include "data/dataset.h"
#include "dlv/fsck.h"
#include "dlv/repository.h"
#include "dql/parser.h"
#include "nn/network_def.h"
#include "nn/trainer.h"
#include "nn/zoo.h"
#include "pas/archive.h"
#include "pas/chunk_index.h"

namespace modelhub {
namespace {

/// Builds a CommitRequest with trained snapshots, hyperparameters and
/// associated files — every artifact class the commit protocol publishes.
void BuildTrainedRequest(const std::string& name, uint64_t seed,
                         CommitRequest* out) {
  const Dataset ds = MakeBlobDataset(64, 4, 12, 0.05f, seed);
  NetworkDef def = MiniVgg(4, 12, 1);
  def.set_name(name);
  auto net = Network::Create(def);
  ASSERT_TRUE(net.ok());
  Rng rng(seed);
  net->InitializeWeights(&rng);
  TrainOptions options;
  options.iterations = 20;
  options.snapshot_every = 10;
  options.seed = seed;
  auto trained = TrainNetwork(&*net, ds, options);
  ASSERT_TRUE(trained.ok());
  out->name = name;
  out->network = def;
  out->snapshots = trained->snapshots;
  out->hyperparams = {{"seed", std::to_string(seed)}};
  out->files = {{"train.cfg", "lr=0.1\nseed=" + std::to_string(seed) + "\n"}};
}

void CommitTrained(Repository* repo, const std::string& name, uint64_t seed) {
  CommitRequest request;
  BuildTrainedRequest(name, seed, &request);
  ASSERT_TRUE(repo->Commit(request).ok());
}

// --------------------------------------------------------- repo artifacts

TEST(RobustnessTest, MissingStagingFileIsCleanError) {
  MemEnv env;
  auto repo = Repository::Init(&env, "r");
  ASSERT_TRUE(repo.ok());
  CommitTrained(&*repo, "m", 1);
  // Delete one staged snapshot file behind the repository's back.
  ASSERT_TRUE(env.DeleteFile("r/staging/m.s0.params").ok());
  auto params = repo->GetSnapshotParams("m", 0);
  EXPECT_TRUE(params.status().IsNotFound());
  // The other snapshot is still readable.
  EXPECT_TRUE(repo->GetSnapshotParams("m", 1).ok());
}

TEST(RobustnessTest, CorruptStagingFileIsCleanError) {
  MemEnv env;
  auto repo = Repository::Init(&env, "r");
  ASSERT_TRUE(repo.ok());
  CommitTrained(&*repo, "m", 2);
  ASSERT_TRUE(env.WriteFile("r/staging/m.s0.params", "garbage!").ok());
  auto params = repo->GetSnapshotParams("m", 0);
  EXPECT_FALSE(params.ok());
}

TEST(RobustnessTest, CorruptCatalogIsCleanError) {
  MemEnv env;
  auto repo = Repository::Init(&env, "r");
  ASSERT_TRUE(repo.ok());
  CommitTrained(&*repo, "m", 3);
  auto contents = env.ReadFile("r/catalog.bin");
  ASSERT_TRUE(contents.ok());
  std::string corrupted = *contents;
  corrupted[corrupted.size() / 2] ^= 0x5A;
  ASSERT_TRUE(env.WriteFile("r/catalog.bin", corrupted).ok());
  // Reopening either fails cleanly or (if the flip landed in a string
  // payload) opens; both are acceptable, crashes are not.
  auto reopened = Repository::Open(&env, "r");
  if (reopened.ok()) {
    (void)reopened->List();
  }
  SUCCEED();
}

TEST(RobustnessTest, TruncatedCatalogPrefixesAreCleanErrors) {
  MemEnv env;
  auto repo = Repository::Init(&env, "r");
  ASSERT_TRUE(repo.ok());
  CommitTrained(&*repo, "m", 4);
  auto contents = env.ReadFile("r/catalog.bin");
  ASSERT_TRUE(contents.ok());
  for (size_t len : {size_t{0}, size_t{3}, contents->size() / 4,
                     contents->size() / 2, contents->size() - 1}) {
    ASSERT_TRUE(env.WriteFile("r/catalog.bin", contents->substr(0, len)).ok());
    auto reopened = Repository::Open(&env, "r");
    EXPECT_FALSE(reopened.ok()) << "prefix length " << len;
  }
}

TEST(RobustnessTest, ArchiveManifestCorruptionDetected) {
  MemEnv env;
  auto repo = Repository::Init(&env, "r");
  ASSERT_TRUE(repo.ok());
  CommitTrained(&*repo, "m", 5);
  ArchiveOptions options;
  ASSERT_TRUE(repo->Archive(options).ok());
  auto manifest = env.ReadFile("r/pas/manifest.bin");
  ASSERT_TRUE(manifest.ok());
  // Truncations of the manifest must be rejected at open or read time.
  for (size_t len : {size_t{0}, size_t{4}, manifest->size() / 2}) {
    ASSERT_TRUE(
        env.WriteFile("r/pas/manifest.bin", manifest->substr(0, len)).ok());
    auto reader = ArchiveReader::Open(&env, "r/pas");
    EXPECT_FALSE(reader.ok()) << "manifest prefix " << len;
  }
  // Restore and corrupt the chunk file payload instead.
  ASSERT_TRUE(env.WriteFile("r/pas/manifest.bin", *manifest).ok());
  auto chunks = env.ReadFile("r/pas/chunks-1.bin");
  ASSERT_TRUE(chunks.ok());
  std::string corrupted = *chunks;
  corrupted[64] ^= 0xFF;  // Inside some chunk payload.
  ASSERT_TRUE(env.WriteFile("r/pas/chunks-1.bin", corrupted).ok());
  auto reader = ArchiveReader::Open(&env, "r/pas");
  ASSERT_TRUE(reader.ok());  // Index intact.
  // Some retrieval must fail with Corruption; none may return wrong data
  // silently for the damaged chunk (CRC covers every chunk).
  bool saw_corruption = false;
  for (const auto& snapshot : reader->snapshot_names()) {
    auto params = reader->RetrieveSnapshot(snapshot);
    if (!params.ok()) {
      EXPECT_TRUE(params.status().IsCorruption());
      saw_corruption = true;
    }
  }
  EXPECT_TRUE(saw_corruption);
}

TEST(RobustnessTest, ReArchiveAfterNewCommits) {
  // Archive, commit more, archive again: everything stays readable.
  MemEnv env;
  auto repo = Repository::Init(&env, "r");
  ASSERT_TRUE(repo.ok());
  CommitTrained(&*repo, "m1", 6);
  ASSERT_TRUE(repo->Archive(ArchiveOptions()).ok());
  auto before = repo->GetSnapshotParams("m1", 0);
  ASSERT_TRUE(before.ok());
  CommitTrained(&*repo, "m2", 7);
  ASSERT_TRUE(repo->Archive(ArchiveOptions()).ok());
  auto after = repo->GetSnapshotParams("m1", 0);
  ASSERT_TRUE(after.ok());
  for (size_t i = 0; i < after->size(); ++i) {
    EXPECT_TRUE((*after)[i].value.ApproxEquals((*before)[i].value, 1e-5f));
  }
  EXPECT_TRUE(repo->GetSnapshotParams("m2", 1).ok());
}

// ------------------------------------------------- crash-safety sweeps

/// Asserts version `name` is fully readable and its snapshots match the
/// request that committed it (the "fully-new" half of the atomicity check).
void ExpectFullyCommitted(const Repository& repo, const CommitRequest& want) {
  for (size_t s = 0; s < want.snapshots.size(); ++s) {
    auto params = repo.GetSnapshotParams(want.name, static_cast<int64_t>(s));
    ASSERT_TRUE(params.ok()) << want.name << " snapshot " << s << ": "
                             << params.status().ToString();
    ASSERT_EQ(params->size(), want.snapshots[s].params.size());
    for (size_t p = 0; p < params->size(); ++p) {
      EXPECT_TRUE((*params)[p].value.ApproxEquals(
          want.snapshots[s].params[p].value, 1e-7f));
    }
  }
  for (const auto& [file_name, contents] : want.files) {
    auto stored = repo.GetFile(want.name, file_name);
    ASSERT_TRUE(stored.ok());
    EXPECT_EQ(*stored, contents);
  }
}

/// Fails the k-th mutating filesystem operation during Commit for every k
/// until the commit runs fault-free, reopening and checking fully-old or
/// fully-new state after every crash. `torn` additionally tears the
/// faulted write, leaving a partial `*.tmp` dropping recovery must sweep.
void SweepCommitCrashes(bool torn) {
  MemEnv base;
  auto seeded = Repository::Init(&base, "r");
  ASSERT_TRUE(seeded.ok());
  CommitRequest m1_request;
  BuildTrainedRequest("m1", 11, &m1_request);
  ASSERT_TRUE(seeded->Commit(m1_request).ok());
  CommitRequest request;
  BuildTrainedRequest("m2", 12, &request);
  bool completed = false;
  for (int k = 1; k < 200 && !completed; ++k) {
    MemEnv env = base;  // Fresh pre-commit state for every crash point.
    FaultInjectionEnv fault(&env);
    auto repo = Repository::Open(&fault, "r");
    ASSERT_TRUE(repo.ok());
    if (torn) {
      fault.TornWriteNthMutation(k);
    } else {
      fault.FailNthMutation(k);
    }
    auto id = repo->Commit(request);
    completed = id.ok() && !fault.crashed();
    // Reopen against the raw env — the post-crash recovery path.
    auto reopened = Repository::Open(&env, "r");
    ASSERT_TRUE(reopened.ok()) << "crash at mutation " << k << ": "
                               << reopened.status().ToString();
    ExpectFullyCommitted(*reopened, m1_request);
    auto info = reopened->GetInfo("m2");
    if (id.ok() || info.ok()) {
      // Past the commit point (even if the journal delete crashed): the
      // new version must be fully there.
      ASSERT_TRUE(info.ok()) << "crash at mutation " << k;
      ExpectFullyCommitted(*reopened, request);
    } else {
      EXPECT_TRUE(info.status().IsNotFound()) << "crash at mutation " << k;
    }
    // Either way the recovered tree must be internally consistent.
    auto fsck = RunFsck(&env, "r");
    ASSERT_TRUE(fsck.ok());
    EXPECT_TRUE(fsck->clean())
        << "crash at mutation " << k << ":\n" << fsck->ToString();
  }
  EXPECT_TRUE(completed) << "commit never ran fault-free";
}

TEST(CrashSafetyTest, CommitIsAtomicUnderEveryCrashPoint) {
  SweepCommitCrashes(/*torn=*/false);
}

TEST(CrashSafetyTest, CommitIsAtomicUnderTornWrites) {
  SweepCommitCrashes(/*torn=*/true);
}

/// Crash sweep over a re-archive: kill (or tear) the k-th Env mutation for
/// every k until the build survives fault-free, and verify atomicity after
/// each crash. `archive_threads` exercises the parallel write pipeline —
/// its encode workers never touch the Env, so every mutation still happens
/// on the committer thread in serial order and the sweep must behave
/// exactly like the serial writer's.
void SweepArchiveCrashes(int archive_threads, bool torn) {
  // Baseline: one archived generation plus freshly staged snapshots, so a
  // crashed re-archive must preserve a previous archive AND staging files.
  MemEnv base;
  auto seeded = Repository::Init(&base, "r");
  ASSERT_TRUE(seeded.ok());
  CommitTrained(&*seeded, "m1", 21);
  ASSERT_TRUE(seeded->Archive(ArchiveOptions()).ok());
  CommitTrained(&*seeded, "m2", 22);
  auto m1_want = seeded->GetSnapshotParams("m1", 0);
  auto m2_want = seeded->GetSnapshotParams("m2", 0);
  ASSERT_TRUE(m1_want.ok());
  ASSERT_TRUE(m2_want.ok());
  ArchiveOptions options;
  options.archive_threads = archive_threads;
  bool completed = false;
  for (int k = 1; k < 200 && !completed; ++k) {
    MemEnv env = base;
    FaultInjectionEnv fault(&env);
    auto repo = Repository::Open(&fault, "r");
    ASSERT_TRUE(repo.ok());
    if (torn) {
      fault.TornWriteNthMutation(k);
    } else {
      fault.FailNthMutation(k);
    }
    completed = repo->Archive(options).ok() && !fault.crashed();
    auto reopened = Repository::Open(&env, "r");
    ASSERT_TRUE(reopened.ok()) << "crash at mutation " << k;
    // Every snapshot stays readable with unchanged values, whichever side
    // of the commit point the crash landed on.
    const std::vector<std::pair<std::string, const std::vector<NamedParam>*>>
        expected = {{"m1", &*m1_want}, {"m2", &*m2_want}};
    for (const auto& [name, want] : expected) {
      auto got = reopened->GetSnapshotParams(name, 0);
      ASSERT_TRUE(got.ok()) << name << " after crash at mutation " << k
                            << ": " << got.status().ToString();
      ASSERT_EQ(got->size(), want->size());
      for (size_t p = 0; p < got->size(); ++p) {
        EXPECT_TRUE((*got)[p].value.ApproxEquals((*want)[p].value, 1e-5f));
      }
    }
    // A crash between the commit point and cleanup may leave orphans
    // (stale generations, staging leftovers); fsck must flag nothing
    // worse, and quarantining them must leave the repository clean.
    FsckOptions quarantine;
    quarantine.quarantine = true;
    auto fsck = RunFsck(&env, "r", quarantine);
    ASSERT_TRUE(fsck.ok());
    for (const std::string& defect : fsck->defects) {
      EXPECT_NE(defect.find("orphaned"), std::string::npos)
          << "crash at mutation " << k << ": " << defect;
    }
    auto again = RunFsck(&env, "r");
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(again->clean())
        << "crash at mutation " << k << ":\n" << again->ToString();
  }
  EXPECT_TRUE(completed) << "archive never ran fault-free";
}

TEST(CrashSafetyTest, ArchiveIsAtomicUnderEveryCrashPoint) {
  SweepArchiveCrashes(/*archive_threads=*/1, /*torn=*/false);
}

TEST(CrashSafetyTest, ParallelArchiveIsAtomicUnderEveryCrashPoint) {
  SweepArchiveCrashes(/*archive_threads=*/8, /*torn=*/false);
}

TEST(CrashSafetyTest, ParallelArchiveIsAtomicUnderTornWrites) {
  SweepArchiveCrashes(/*archive_threads=*/8, /*torn=*/true);
}

// ----------------------------------------------------------------- fsck

TEST(FsckTest, CleanRepositoryPassesAndEveryCorruptionIsDetected) {
  MemEnv env;
  auto repo = Repository::Init(&env, "r");
  ASSERT_TRUE(repo.ok());
  CommitTrained(&*repo, "m1", 31);
  ASSERT_TRUE(repo->Archive(ArchiveOptions()).ok());
  CommitTrained(&*repo, "m2", 32);
  auto clean = RunFsck(&env, "r");
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean->clean()) << clean->ToString();

  auto expect_defect = [&](const std::string& label) {
    auto report = RunFsck(&env, "r");
    ASSERT_TRUE(report.ok());
    EXPECT_FALSE(report->clean()) << label << " was not detected";
  };
  auto original = [&](const std::string& path) {
    auto bytes = env.ReadFile(path);
    EXPECT_TRUE(bytes.ok());
    return bytes.ok() ? *bytes : std::string();
  };

  // Bit flip inside the archive's chunk payloads.
  const std::string chunks = "r/pas/chunks-1.bin";
  const std::string chunk_bytes = original(chunks);
  std::string flipped = chunk_bytes;
  flipped[64] ^= 0x01;
  ASSERT_TRUE(env.WriteFile(chunks, flipped).ok());
  expect_defect("chunk bit flip");
  ASSERT_TRUE(env.WriteFile(chunks, chunk_bytes).ok());

  // Truncated staging file.
  const std::string staging = "r/staging/m2.s0.params";
  const std::string staging_bytes = original(staging);
  ASSERT_TRUE(
      env.WriteFile(staging, staging_bytes.substr(0, staging_bytes.size() / 2))
          .ok());
  expect_defect("staging truncation");
  ASSERT_TRUE(env.WriteFile(staging, staging_bytes).ok());

  // Deleted chunk file.
  ASSERT_TRUE(env.DeleteFile(chunks).ok());
  expect_defect("deleted chunk file");
  ASSERT_TRUE(env.WriteFile(chunks, chunk_bytes).ok());

  // Corrupt content-addressed object (name no longer matches content).
  auto objects = env.ListDir("r/objects");
  ASSERT_TRUE(objects.ok());
  ASSERT_FALSE(objects->empty());
  const std::string object = JoinPath("r/objects", (*objects)[0]);
  const std::string object_bytes = original(object);
  ASSERT_TRUE(env.WriteFile(object, object_bytes + "x").ok());
  expect_defect("object corruption");
  ASSERT_TRUE(env.WriteFile(object, object_bytes).ok());

  // Truncated archive manifest.
  const std::string manifest = "r/pas/manifest.bin";
  const std::string manifest_bytes = original(manifest);
  ASSERT_TRUE(
      env.WriteFile(manifest, manifest_bytes.substr(0, 10)).ok());
  expect_defect("manifest truncation");
  ASSERT_TRUE(env.WriteFile(manifest, manifest_bytes).ok());

  // Back to clean after every restore.
  auto restored = RunFsck(&env, "r");
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->clean()) << restored->ToString();
}

TEST(FsckTest, QuarantinesOrphansOnRequest) {
  MemEnv env;
  auto repo = Repository::Init(&env, "r");
  ASSERT_TRUE(repo.ok());
  CommitTrained(&*repo, "m", 41);
  ASSERT_TRUE(env.WriteFile("r/staging/stray.params", "junk").ok());
  ASSERT_TRUE(env.WriteFile("r/objects/deadbeef-4", "junk").ok());
  auto report = RunFsck(&env, "r");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->defects.size(), 2u) << report->ToString();
  FsckOptions options;
  options.quarantine = true;
  auto repaired = RunFsck(&env, "r", options);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired->repairs.size(), 2u) << repaired->ToString();
  EXPECT_FALSE(env.FileExists("r/staging/stray.params"));
  EXPECT_TRUE(env.FileExists("r/quarantine/stray.params"));
  auto clean = RunFsck(&env, "r");
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean->clean()) << clean->ToString();
  // The repository itself was untouched.
  auto reopened = Repository::Open(&env, "r");
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened->GetSnapshotParams("m", 1).ok());
}

// The chunk index is derived state: every way it can go wrong after a
// crash — torn append, bit flip, deletion, a stale generation left by a
// kill between commit and index save, or silently wrong refcounts — must
// be repaired by fsck (rebuild from the committed manifest) with exit
// status clean, and a second fsck must find the index consistent.
TEST(FsckTest, RepairsEveryChunkIndexFailureMode) {
  MemEnv env;
  auto repo = Repository::Init(&env, "r");
  ASSERT_TRUE(repo.ok());
  CommitTrained(&*repo, "m1", 51);
  ASSERT_TRUE(repo->Archive(ArchiveOptions()).ok());
  const std::string index_path = "r/pas/chunk_index.bin";
  ASSERT_TRUE(env.FileExists(index_path));
  auto pristine = env.ReadFile(index_path);
  ASSERT_TRUE(pristine.ok());

  auto expect_repaired = [&](const std::string& label) {
    auto report = RunFsck(&env, "r");
    ASSERT_TRUE(report.ok()) << label;
    EXPECT_TRUE(report->clean()) << label << ":\n" << report->ToString();
    bool rebuilt = false;
    for (const std::string& repair : report->repairs) {
      if (repair.find("chunk index") != std::string::npos) rebuilt = true;
    }
    EXPECT_TRUE(rebuilt) << label << ":\n" << report->ToString();
    // The repair wrote a consistent index: a second pass only notes it.
    auto again = RunFsck(&env, "r");
    ASSERT_TRUE(again.ok()) << label;
    EXPECT_TRUE(again->clean()) << label << ":\n" << again->ToString();
    bool consistent = false;
    for (const std::string& note : again->notes) {
      if (note.find("chunk index consistent") != std::string::npos) {
        consistent = true;
      }
    }
    EXPECT_TRUE(consistent) << label << ":\n" << again->ToString();
    auto saved = ChunkIndex::Load(&env, "r/pas");
    ASSERT_TRUE(saved.ok()) << label;
    EXPECT_GT(saved->size(), 0u) << label;
  };

  // Torn append: the file ends mid-entry.
  ASSERT_TRUE(
      env.WriteFile(index_path, pristine->substr(0, pristine->size() - 7))
          .ok());
  expect_repaired("torn");

  // Bit flip inside the CRC frame.
  std::string flipped = *pristine;
  flipped[flipped.size() / 2] ^= 0x20;
  ASSERT_TRUE(env.WriteFile(index_path, flipped).ok());
  expect_repaired("bit flip");

  // Killed before the post-commit save: no index at all.
  ASSERT_TRUE(env.DeleteFile(index_path).ok());
  expect_repaired("missing");

  // Killed between manifest commit and index save across a re-archive:
  // the previous generation's index survives with a stale generation.
  CommitTrained(&*repo, "m2", 52);
  ASSERT_TRUE(repo->Archive(ArchiveOptions()).ok());
  ASSERT_TRUE(env.WriteFile(index_path, *pristine).ok());
  expect_repaired("stale generation");

  // Refcount drift: the frame is valid and the generation current, but a
  // count is wrong — only the entry-for-entry comparison catches this.
  {
    auto index = ChunkIndex::Load(&env, "r/pas");
    ASSERT_TRUE(index.ok());
    const auto entries = index->SortedEntries();
    ASSERT_FALSE(entries.empty());
    index->AddRef(entries[0].hash, entries[0].file, entries[0].chunk_id,
                  entries[0].stored_size);
    ASSERT_TRUE(index->Save(&env, "r/pas").ok());
  }
  expect_repaired("refcount drift");

  // The repository itself stayed intact throughout.
  auto reopened = Repository::Open(&env, "r");
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened->GetSnapshotParams("m1", 0).ok());
  EXPECT_TRUE(reopened->GetSnapshotParams("m2", 0).ok());
}

// ------------------------------------------------------------ parse fuzz

TEST(RobustnessTest, NetworkDefParserSurvivesMutations) {
  const std::string good = MiniVgg(4, 12, 1).Serialize();
  Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = good;
    // Flip, delete or insert a few random bytes.
    const int edits = 1 + static_cast<int>(rng.Uniform(4));
    for (int e = 0; e < edits && !mutated.empty(); ++e) {
      const size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:
          mutated[pos] = static_cast<char>(32 + rng.Uniform(95));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>(32 + rng.Uniform(95)));
      }
    }
    // Either parses (to something valid or not) or errors; never crashes.
    auto parsed = NetworkDef::Parse(mutated);
    if (parsed.ok()) {
      (void)parsed->Validate();
    }
  }
  SUCCEED();
}

TEST(RobustnessTest, DqlParserSurvivesMutations) {
  const std::string good =
      "evaluate m from \"x%\" with config = default "
      "vary config.base_lr in [0.1, 0.01] keep top(2, m[\"loss\"], 50)";
  Rng rng(101);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = good;
    const int edits = 1 + static_cast<int>(rng.Uniform(5));
    for (int e = 0; e < edits && !mutated.empty(); ++e) {
      const size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:
          mutated[pos] = static_cast<char>(32 + rng.Uniform(95));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>(32 + rng.Uniform(95)));
      }
    }
    (void)dql::Parse(mutated);
  }
  SUCCEED();
}

TEST(RobustnessTest, ParamsParserSurvivesMutations) {
  Rng rng(103);
  FloatMatrix m(6, 6);
  m.FillGaussian(&rng, 1.0f);
  const std::string good = SerializeParams({{"w", m}});
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = good;
    const size_t pos = rng.Uniform(mutated.size());
    mutated[pos] = static_cast<char>(rng.Uniform(256));
    auto parsed = ParseParams(Slice(mutated));
    (void)parsed;  // Error or value; never a crash.
  }
  SUCCEED();
}

}  // namespace
}  // namespace modelhub
