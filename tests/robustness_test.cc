// Failure-injection and robustness tests: corrupted artifacts, missing
// files, partially written state, and garbage inputs must produce clean
// Status errors — never crashes, hangs, or silent wrong answers.

#include <gtest/gtest.h>

#include "common/env.h"
#include "common/random.h"
#include "data/dataset.h"
#include "dlv/repository.h"
#include "dql/parser.h"
#include "nn/network_def.h"
#include "nn/trainer.h"
#include "nn/zoo.h"
#include "pas/archive.h"

namespace modelhub {
namespace {

void CommitTrained(Repository* repo, const std::string& name, uint64_t seed) {
  const Dataset ds = MakeBlobDataset(64, 4, 12, 0.05f, seed);
  NetworkDef def = MiniVgg(4, 12, 1);
  def.set_name(name);
  auto net = Network::Create(def);
  ASSERT_TRUE(net.ok());
  Rng rng(seed);
  net->InitializeWeights(&rng);
  TrainOptions options;
  options.iterations = 20;
  options.snapshot_every = 10;
  options.seed = seed;
  auto trained = TrainNetwork(&*net, ds, options);
  ASSERT_TRUE(trained.ok());
  CommitRequest request;
  request.name = name;
  request.network = def;
  request.snapshots = trained->snapshots;
  ASSERT_TRUE(repo->Commit(request).ok());
}

// --------------------------------------------------------- repo artifacts

TEST(RobustnessTest, MissingStagingFileIsCleanError) {
  MemEnv env;
  auto repo = Repository::Init(&env, "r");
  ASSERT_TRUE(repo.ok());
  CommitTrained(&*repo, "m", 1);
  // Delete one staged snapshot file behind the repository's back.
  ASSERT_TRUE(env.DeleteFile("r/staging/m.s0.params").ok());
  auto params = repo->GetSnapshotParams("m", 0);
  EXPECT_TRUE(params.status().IsNotFound());
  // The other snapshot is still readable.
  EXPECT_TRUE(repo->GetSnapshotParams("m", 1).ok());
}

TEST(RobustnessTest, CorruptStagingFileIsCleanError) {
  MemEnv env;
  auto repo = Repository::Init(&env, "r");
  ASSERT_TRUE(repo.ok());
  CommitTrained(&*repo, "m", 2);
  ASSERT_TRUE(env.WriteFile("r/staging/m.s0.params", "garbage!").ok());
  auto params = repo->GetSnapshotParams("m", 0);
  EXPECT_FALSE(params.ok());
}

TEST(RobustnessTest, CorruptCatalogIsCleanError) {
  MemEnv env;
  auto repo = Repository::Init(&env, "r");
  ASSERT_TRUE(repo.ok());
  CommitTrained(&*repo, "m", 3);
  auto contents = env.ReadFile("r/catalog.bin");
  ASSERT_TRUE(contents.ok());
  std::string corrupted = *contents;
  corrupted[corrupted.size() / 2] ^= 0x5A;
  ASSERT_TRUE(env.WriteFile("r/catalog.bin", corrupted).ok());
  // Reopening either fails cleanly or (if the flip landed in a string
  // payload) opens; both are acceptable, crashes are not.
  auto reopened = Repository::Open(&env, "r");
  if (reopened.ok()) {
    (void)reopened->List();
  }
  SUCCEED();
}

TEST(RobustnessTest, TruncatedCatalogPrefixesAreCleanErrors) {
  MemEnv env;
  auto repo = Repository::Init(&env, "r");
  ASSERT_TRUE(repo.ok());
  CommitTrained(&*repo, "m", 4);
  auto contents = env.ReadFile("r/catalog.bin");
  ASSERT_TRUE(contents.ok());
  for (size_t len : {size_t{0}, size_t{3}, contents->size() / 4,
                     contents->size() / 2, contents->size() - 1}) {
    ASSERT_TRUE(env.WriteFile("r/catalog.bin", contents->substr(0, len)).ok());
    auto reopened = Repository::Open(&env, "r");
    EXPECT_FALSE(reopened.ok()) << "prefix length " << len;
  }
}

TEST(RobustnessTest, ArchiveManifestCorruptionDetected) {
  MemEnv env;
  auto repo = Repository::Init(&env, "r");
  ASSERT_TRUE(repo.ok());
  CommitTrained(&*repo, "m", 5);
  ArchiveOptions options;
  ASSERT_TRUE(repo->Archive(options).ok());
  auto manifest = env.ReadFile("r/pas/manifest.bin");
  ASSERT_TRUE(manifest.ok());
  // Truncations of the manifest must be rejected at open or read time.
  for (size_t len : {size_t{0}, size_t{4}, manifest->size() / 2}) {
    ASSERT_TRUE(
        env.WriteFile("r/pas/manifest.bin", manifest->substr(0, len)).ok());
    auto reader = ArchiveReader::Open(&env, "r/pas");
    EXPECT_FALSE(reader.ok()) << "manifest prefix " << len;
  }
  // Restore and corrupt the chunk file payload instead.
  ASSERT_TRUE(env.WriteFile("r/pas/manifest.bin", *manifest).ok());
  auto chunks = env.ReadFile("r/pas/chunks.bin");
  ASSERT_TRUE(chunks.ok());
  std::string corrupted = *chunks;
  corrupted[64] ^= 0xFF;  // Inside some chunk payload.
  ASSERT_TRUE(env.WriteFile("r/pas/chunks.bin", corrupted).ok());
  auto reader = ArchiveReader::Open(&env, "r/pas");
  ASSERT_TRUE(reader.ok());  // Index intact.
  // Some retrieval must fail with Corruption; none may return wrong data
  // silently for the damaged chunk (CRC covers every chunk).
  bool saw_corruption = false;
  for (const auto& snapshot : reader->snapshot_names()) {
    auto params = reader->RetrieveSnapshot(snapshot);
    if (!params.ok()) {
      EXPECT_TRUE(params.status().IsCorruption());
      saw_corruption = true;
    }
  }
  EXPECT_TRUE(saw_corruption);
}

TEST(RobustnessTest, ReArchiveAfterNewCommits) {
  // Archive, commit more, archive again: everything stays readable.
  MemEnv env;
  auto repo = Repository::Init(&env, "r");
  ASSERT_TRUE(repo.ok());
  CommitTrained(&*repo, "m1", 6);
  ASSERT_TRUE(repo->Archive(ArchiveOptions()).ok());
  auto before = repo->GetSnapshotParams("m1", 0);
  ASSERT_TRUE(before.ok());
  CommitTrained(&*repo, "m2", 7);
  ASSERT_TRUE(repo->Archive(ArchiveOptions()).ok());
  auto after = repo->GetSnapshotParams("m1", 0);
  ASSERT_TRUE(after.ok());
  for (size_t i = 0; i < after->size(); ++i) {
    EXPECT_TRUE((*after)[i].value.ApproxEquals((*before)[i].value, 1e-5f));
  }
  EXPECT_TRUE(repo->GetSnapshotParams("m2", 1).ok());
}

// ------------------------------------------------------------ parse fuzz

TEST(RobustnessTest, NetworkDefParserSurvivesMutations) {
  const std::string good = MiniVgg(4, 12, 1).Serialize();
  Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = good;
    // Flip, delete or insert a few random bytes.
    const int edits = 1 + static_cast<int>(rng.Uniform(4));
    for (int e = 0; e < edits && !mutated.empty(); ++e) {
      const size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:
          mutated[pos] = static_cast<char>(32 + rng.Uniform(95));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>(32 + rng.Uniform(95)));
      }
    }
    // Either parses (to something valid or not) or errors; never crashes.
    auto parsed = NetworkDef::Parse(mutated);
    if (parsed.ok()) {
      (void)parsed->Validate();
    }
  }
  SUCCEED();
}

TEST(RobustnessTest, DqlParserSurvivesMutations) {
  const std::string good =
      "evaluate m from \"x%\" with config = default "
      "vary config.base_lr in [0.1, 0.01] keep top(2, m[\"loss\"], 50)";
  Rng rng(101);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = good;
    const int edits = 1 + static_cast<int>(rng.Uniform(5));
    for (int e = 0; e < edits && !mutated.empty(); ++e) {
      const size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:
          mutated[pos] = static_cast<char>(32 + rng.Uniform(95));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>(32 + rng.Uniform(95)));
      }
    }
    (void)dql::Parse(mutated);
  }
  SUCCEED();
}

TEST(RobustnessTest, ParamsParserSurvivesMutations) {
  Rng rng(103);
  FloatMatrix m(6, 6);
  m.FillGaussian(&rng, 1.0f);
  const std::string good = SerializeParams({{"w", m}});
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = good;
    const size_t pos = rng.Uniform(mutated.size());
    mutated[pos] = static_cast<char>(rng.Uniform(256));
    auto parsed = ParseParams(Slice(mutated));
    (void)parsed;  // Error or value; never a crash.
  }
  SUCCEED();
}

}  // namespace
}  // namespace modelhub
