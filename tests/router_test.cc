#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/metrics.h"
#include "common/slice.h"
#include "common/trace.h"
#include "data/dataset.h"
#include "dlv/repository.h"
#include "net/client.h"
#include "nn/trainer.h"
#include "nn/zoo.h"
#include "pas/archive.h"
#include "router/backend.h"
#include "router/hash_ring.h"
#include "router/router.h"
#include "server/modelhubd.h"

namespace modelhub {
namespace {

// -------------------------------------------------------------- HashRing

TEST(HashRingTest, DeterministicAcrossInstances) {
  HashRing a(64);
  HashRing b(64);
  for (const char* node : {"shard0", "shard1", "shard2"}) {
    a.AddNode(node);
    b.AddNode(node);
  }
  for (int i = 0; i < 200; ++i) {
    const std::string key = "model" + std::to_string(i);
    EXPECT_EQ(a.NodeFor(key), b.NodeFor(key));
  }
}

TEST(HashRingTest, SpreadsKeysAcrossNodes) {
  HashRing ring(64);
  ring.AddNode("shard0");
  ring.AddNode("shard1");
  ring.AddNode("shard2");
  std::map<std::string, int> owned;
  for (int i = 0; i < 1000; ++i) {
    owned[ring.NodeFor("model" + std::to_string(i))]++;
  }
  ASSERT_EQ(owned.size(), 3u);
  for (const auto& [node, count] : owned) {
    // 64 vnodes keep the split well away from degenerate; expected ~333.
    EXPECT_GE(count, 100) << node << " owns only " << count << " of 1000";
  }
}

TEST(HashRingTest, AddingNodeOnlyMovesKeysToIt) {
  HashRing ring(64);
  ring.AddNode("shard0");
  ring.AddNode("shard1");
  ring.AddNode("shard2");
  std::map<std::string, std::string> before;
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "model" + std::to_string(i);
    before[key] = ring.NodeFor(key);
  }

  ring.AddNode("shard3");
  int moved = 0;
  for (const auto& [key, old_owner] : before) {
    const std::string& new_owner = ring.NodeFor(key);
    if (new_owner != old_owner) {
      // The defining consistent-hashing property: a key either stays put
      // or moves to the NEW node — never between surviving nodes.
      EXPECT_EQ(new_owner, "shard3") << key << " moved " << old_owner
                                     << " -> " << new_owner;
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);           // The new node took real ownership...
  EXPECT_LT(moved, 600);         // ...but nowhere near a full reshuffle.

  // Removing it restores the exact original placement.
  ring.RemoveNode("shard3");
  for (const auto& [key, old_owner] : before) {
    EXPECT_EQ(ring.NodeFor(key), old_owner);
  }
}

// -------------------------------------------------------- CircuitBreaker

TEST(CircuitBreakerTest, OpensAfterThresholdAndRecoversViaHalfOpen) {
  CircuitBreaker::Options options;
  options.failure_threshold = 3;
  options.open_ms = 50;
  CircuitBreaker breaker(options);

  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow());
  EXPECT_FALSE(breaker.RecordFailure());
  EXPECT_FALSE(breaker.RecordFailure());
  EXPECT_TRUE(breaker.RecordFailure());  // Third in a row trips it.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow());  // Cooling down: fail fast.

  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_TRUE(breaker.Allow());   // This caller is the half-open probe.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Allow());  // Only ONE probe at a time.
  EXPECT_TRUE(breaker.RecordSuccess());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0u);
}

TEST(CircuitBreakerTest, FailedProbeReopensImmediately) {
  CircuitBreaker::Options options;
  options.failure_threshold = 2;
  options.open_ms = 40;
  CircuitBreaker breaker(options);
  breaker.RecordFailure();
  breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  ASSERT_TRUE(breaker.Allow());
  // One failed probe re-opens without needing threshold-many failures.
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow());
}

TEST(CircuitBreakerTest, SuccessResetsConsecutiveCount) {
  CircuitBreaker::Options options;
  options.failure_threshold = 3;
  CircuitBreaker breaker(options);
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordSuccess();  // Streak broken.
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

// --------------------------------------------------------- FleetTopology

TEST(FleetTopologyTest, ParsesShardsAndReplicas) {
  auto topology = FleetTopology::Parse(
      "127.0.0.1:5001,127.0.0.1:5002;127.0.0.1:5003");
  ASSERT_TRUE(topology.ok()) << topology.status().ToString();
  ASSERT_EQ(topology->shards.size(), 2u);
  EXPECT_EQ(topology->shards[0].name, "shard0");
  EXPECT_EQ(topology->shards[1].name, "shard1");
  ASSERT_EQ(topology->shards[0].replicas.size(), 2u);
  ASSERT_EQ(topology->shards[1].replicas.size(), 1u);
  EXPECT_EQ(topology->shards[0].replicas[1].host, "127.0.0.1");
  EXPECT_EQ(topology->shards[0].replicas[1].port, 5002);
  EXPECT_EQ(topology->num_backends(), 3u);
}

TEST(FleetTopologyTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(FleetTopology::Parse("").ok());
  EXPECT_FALSE(FleetTopology::Parse(";;").ok());
  EXPECT_FALSE(FleetTopology::Parse("localhost").ok());
  EXPECT_FALSE(FleetTopology::Parse("host:notaport").ok());
  EXPECT_FALSE(FleetTopology::Parse("host:0").ok());
  EXPECT_FALSE(FleetTopology::Parse("host:99999").ok());
  EXPECT_FALSE(FleetTopology::Parse("127.0.0.1:5001,,127.0.0.1:5002").ok());
}

// ---------------------------------------------------------- Fleet fixture
//
// Router tests run real ModelHubServer backends over loopback against one
// on-disk repository (serving is read-only, so replicas share it).

void CommitOne(Repository* repo, const std::string& name) {
  const Dataset ds = MakeBlobDataset(64, 4, 12, 0.05f, name.size());
  NetworkDef def = MiniVgg(4, 12, 1);
  def.set_name(name);
  auto net = Network::Create(def);
  ASSERT_TRUE(net.ok());
  Rng rng(1);
  net->InitializeWeights(&rng);
  TrainOptions options;
  options.iterations = 20;
  options.snapshot_every = 10;
  auto trained = TrainNetwork(&*net, ds, options);
  ASSERT_TRUE(trained.ok());
  CommitRequest request;
  request.name = name;
  request.network = def;
  request.snapshots = trained->snapshots;
  request.log = trained->log;
  ASSERT_TRUE(repo->Commit(request).ok());
}

class RouterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = Env::Default();
    root_ = ::testing::TempDir() + "/mh_router_repo";
    RemoveTree(env_, root_);
    auto repo = Repository::Init(env_, root_);
    ASSERT_TRUE(repo.ok()) << repo.status().ToString();
    CommitOne(&*repo, "served_v1");
    auto built = repo->Archive(ArchiveOptions{});
    ASSERT_TRUE(built.ok()) << built.status().ToString();
  }

  void TearDown() override {
    for (auto& server : servers_) {
      if (server != nullptr) (void)server->Stop();
    }
    RemoveTree(env_, root_);
  }

  /// Starts one backend on `port` (0 = ephemeral) and returns its index.
  size_t StartBackend(int port = 0) {
    ServerOptions options;
    options.port = port;
    auto server = std::make_unique<ModelHubServer>(env_, root_, options);
    EXPECT_TRUE(server->Start().ok());
    servers_.push_back(std::move(server));
    return servers_.size() - 1;
  }

  /// Builds a topology of `shards` x `replicas` from freshly started
  /// backends; servers_[shard * replicas + r] backs shard `shard`.
  FleetTopology StartFleet(int shards, int replicas) {
    FleetTopology topology;
    for (int s = 0; s < shards; ++s) {
      FleetTopology::Shard shard;
      shard.name = "shard" + std::to_string(s);
      for (int r = 0; r < replicas; ++r) {
        const size_t index = StartBackend();
        shard.replicas.push_back(
            {"127.0.0.1", servers_[index]->port()});
      }
      topology.shards.push_back(std::move(shard));
    }
    return topology;
  }

  Env* env_ = nullptr;
  std::string root_;
  std::vector<std::unique_ptr<ModelHubServer>> servers_;
};

TEST_F(RouterTest, BasicOpsThroughRouter) {
  ModelHubRouter router(StartFleet(/*shards=*/2, /*replicas=*/1));
  ASSERT_TRUE(router.Start().ok());
  ASSERT_GT(router.port(), 0);

  auto client = ModelHubClient::Connect("127.0.0.1", router.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto pong = client->Ping();
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  auto info = ParsePingReply(*pong);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->state, "serving");
  EXPECT_NE(pong->find("role=router"), std::string::npos);

  // Both shards replicate the same catalog; the fan-out must dedupe.
  auto models = client->ListModels();
  ASSERT_TRUE(models.ok()) << models.status().ToString();
  const size_t first = models->find("served_v1");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(models->find("served_v1", first + 1), std::string::npos);

  // Snapshot reads route by hash and come back bit-identical to a direct
  // repository read.
  auto repo = Repository::Open(env_, root_);
  ASSERT_TRUE(repo.ok());
  auto direct = repo->GetSnapshotParams("served_v1");
  ASSERT_TRUE(direct.ok());
  auto remote = client->GetSnapshot("served_v1");
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  ASSERT_EQ(remote->size(), direct->size());
  for (size_t i = 0; i < direct->size(); ++i) {
    EXPECT_EQ((*remote)[i].name, (*direct)[i].name);
  }

  auto query = client->Query("select m where m.name like \"%\"");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_NE(query->find("served_v1"), std::string::npos);

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->find("\"router\""), std::string::npos);
  EXPECT_NE(stats->find("router.requests.count"), std::string::npos);
  EXPECT_NE(stats->find("\"backends\""), std::string::npos);
  EXPECT_NE(stats->find("\"breaker\":\"closed\""), std::string::npos);

  // Server-side errors relay their typed code through the router.
  auto missing = client->GetSnapshot("no_such_model");
  EXPECT_TRUE(missing.status().IsNotFound()) << missing.status().ToString();

  EXPECT_TRUE(router.Stop().ok());
  EXPECT_FALSE(router.running());
  // Draining the router never touches the backends.
  for (const auto& server : servers_) EXPECT_TRUE(server->running());
}

TEST_F(RouterTest, SteersAwayFromDrainingReplicaWithoutTrippingBreaker) {
  // Replica 0 gets a long drain grace so we can observe the draining
  // window; replica 1 is a plain backend.
  {
    ServerOptions options;
    // Long enough for the assertions below; Stop() waits out whatever is
    // left, so keep it modest.
    options.drain_grace_ms = 4000;
    auto server = std::make_unique<ModelHubServer>(env_, root_, options);
    ASSERT_TRUE(server->Start().ok());
    servers_.push_back(std::move(server));
  }
  StartBackend();

  FleetTopology topology;
  FleetTopology::Shard shard;
  shard.name = "shard0";
  shard.replicas.push_back({"127.0.0.1", servers_[0]->port()});
  shard.replicas.push_back({"127.0.0.1", servers_[1]->port()});
  topology.shards.push_back(std::move(shard));

  RouterOptions options;
  options.probe_interval_ms = 50;
  options.probe_timeout_ms = 300;
  ModelHubRouter router(std::move(topology), options);
  ASSERT_TRUE(router.Start().ok());

  auto client = ModelHubClient::Connect("127.0.0.1", router.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->GetSnapshot("served_v1").ok());

  // Ask replica 0 to drain directly (as an operator rollout would).
  {
    auto direct = ModelHubClient::Connect("127.0.0.1", servers_[0]->port());
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(direct->Shutdown().ok());
    servers_[0]->WaitUntilStopRequested();
  }

  // The prober must learn `state=draining` from rich PING.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(3);
  bool seen_draining = false;
  while (std::chrono::steady_clock::now() < deadline) {
    auto statuses = router.BackendStatuses();
    ASSERT_EQ(statuses.size(), 2u);
    if (statuses[0].draining) {
      seen_draining = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(seen_draining);

  // Traffic keeps succeeding (steered to replica 1), and crucially the
  // draining replica is never mistaken for dead: both breakers stay
  // closed the whole time.
  for (int i = 0; i < 10; ++i) {
    auto remote = client->GetSnapshot("served_v1");
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    auto models = client->ListModels();
    ASSERT_TRUE(models.ok()) << models.status().ToString();
    EXPECT_NE(models->find("served_v1"), std::string::npos);
  }
  auto statuses = router.BackendStatuses();
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_TRUE(statuses[0].draining);
  EXPECT_EQ(statuses[0].breaker, CircuitBreaker::State::kClosed);
  EXPECT_FALSE(statuses[1].draining);
  EXPECT_EQ(statuses[1].breaker, CircuitBreaker::State::kClosed);

  EXPECT_TRUE(router.Stop().ok());
}

TEST_F(RouterTest, ShutdownRpcDrainsRouterOnly) {
  ModelHubRouter router(StartFleet(1, 1));
  ASSERT_TRUE(router.Start().ok());
  auto client = ModelHubClient::Connect("127.0.0.1", router.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Shutdown().ok());
  router.WaitUntilStopRequested();
  EXPECT_TRUE(router.Stop().ok());
  EXPECT_TRUE(servers_[0]->running());
  auto direct = ModelHubClient::Connect("127.0.0.1", servers_[0]->port());
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(direct->Ping().ok());
}

TEST_F(RouterTest, RetryBudgetExhaustionShedsTyped) {
  // A shard whose only replica is a dead port: bind, record, release.
  int dead_port = 0;
  {
    auto listener = Listener::Bind("127.0.0.1", 0);
    ASSERT_TRUE(listener.ok());
    dead_port = listener->port();
  }
  FleetTopology topology;
  topology.shards.push_back({"shard0", {{"127.0.0.1", dead_port}}});

  RouterOptions options;
  options.failure_threshold = 2;
  options.breaker_open_ms = 60000;  // Stays open for the whole test.
  options.max_attempts = 3;
  options.retry_backoff_base_ms = 5;
  options.retry_backoff_max_ms = 20;
  options.probe_interval_ms = 60000;  // Keep the prober out of the way.
  ModelHubRouter router(std::move(topology), options);
  ASSERT_TRUE(router.Start().ok());

  auto client = ModelHubClient::Connect("127.0.0.1", router.port());
  ASSERT_TRUE(client.ok());
  auto first = client->ListModels();
  EXPECT_TRUE(first.status().IsUnavailable()) << first.status().ToString();
  EXPECT_NE(first.status().message().find("shard0"), std::string::npos);

  // The failed attempts opened the breaker; now requests fail fast
  // without burning connect timeouts or backoff sleeps.
  auto statuses = router.BackendStatuses();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].breaker, CircuitBreaker::State::kOpen);
  const auto before = std::chrono::steady_clock::now();
  auto second = client->ListModels();
  const auto elapsed = std::chrono::steady_clock::now() - before;
  EXPECT_TRUE(second.status().IsUnavailable());
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000);
  EXPECT_TRUE(router.Stop().ok());
}

TEST_F(RouterTest, ProberEjectsDeadBackendBeforeTrafficFindsIt) {
  RouterOptions options;
  options.probe_interval_ms = 50;
  options.probe_timeout_ms = 300;
  options.failure_threshold = 2;
  options.breaker_open_ms = 60000;  // Stays open: no re-admission here.
  FleetTopology topology = StartFleet(/*shards=*/1, /*replicas=*/2);
  ModelHubRouter router(std::move(topology), options);
  ASSERT_TRUE(router.Start().ok());

  // Kill replica 0 with NO client traffic flowing: only the active
  // prober can notice, and it must open the breaker on its own.
  ASSERT_TRUE(servers_[0]->Stop().ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool ejected = false;
  while (std::chrono::steady_clock::now() < deadline) {
    for (const auto& status : router.BackendStatuses()) {
      if (status.breaker == CircuitBreaker::State::kOpen) ejected = true;
    }
    if (ejected) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(ejected);

  // First-ever client requests succeed off the surviving replica without
  // ever burning a connect timeout on the ejected one.
  auto client = ModelHubClient::Connect("127.0.0.1", router.port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 5; ++i) {
    auto models = client->ListModels();
    EXPECT_TRUE(models.ok()) << models.status().ToString();
  }
  EXPECT_TRUE(router.Stop().ok());
}

// ------------------------------------------------------------ Fleet soak
//
// The headline robustness test: 3 shards x 2 replicas under sustained
// multi-client traffic; one backend is killed mid-run and restarted on
// the same port. Clients must observe ZERO failed requests (failover
// absorbs the outage) and the killed backend must be re-admitted by the
// half-open probe once it returns.

TEST_F(RouterTest, FleetSoakSurvivesBackendKillAndRestart) {
  FleetTopology topology = StartFleet(/*shards=*/3, /*replicas=*/2);
  RouterOptions options;
  options.probe_interval_ms = 100;
  options.probe_timeout_ms = 500;
  options.failure_threshold = 2;
  options.breaker_open_ms = 300;
  options.max_attempts = 5;
  options.retry_backoff_base_ms = 5;
  options.retry_backoff_max_ms = 50;
  ModelHubRouter router(std::move(topology), options);
  ASSERT_TRUE(router.Start().ok());

  // Kill a replica of the shard that actually owns the served model so
  // the outage sits directly on the request path.
  const std::string& owner = router.ShardForModel("served_v1");
  ASSERT_EQ(owner.rfind("shard", 0), 0u);
  const int shard_index = std::atoi(owner.c_str() + 5);
  const size_t victim = static_cast<size_t>(shard_index) * 2;
  const int victim_port = servers_[victim]->port();

  constexpr int kClients = 4;
  std::atomic<bool> stop_traffic{false};
  std::atomic<int> failed{0};
  std::atomic<int> completed{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = ModelHubClient::Connect("127.0.0.1", router.port());
      if (!client.ok()) {
        failed.fetch_add(1);
        return;
      }
      int i = 0;
      while (!stop_traffic.load()) {
        Status status;
        switch ((c + i++) % 3) {
          case 0:
            status = client->Ping().status();
            break;
          case 1:
            status = client->GetSnapshot("served_v1").status();
            break;
          default:
            status = client->ListModels().status();
            break;
        }
        if (!status.ok()) {
          failed.fetch_add(1);
          // Keep soaking on a fresh connection so one failure cannot
          // cascade into a broken-pipe storm.
          auto again = ModelHubClient::Connect("127.0.0.1", router.port());
          if (again.ok()) client = std::move(again);
        }
        completed.fetch_add(1);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  ASSERT_TRUE(servers_[victim]->Stop().ok());  // The kill.
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  {
    // The restart: same port, fresh process-equivalent.
    ServerOptions server_options;
    server_options.port = victim_port;
    auto reborn =
        std::make_unique<ModelHubServer>(env_, root_, server_options);
    ASSERT_TRUE(reborn->Start().ok());
    servers_[victim] = std::move(reborn);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  stop_traffic.store(true);
  for (auto& t : clients) t.join();

  EXPECT_EQ(failed.load(), 0);
  EXPECT_GT(completed.load(), kClients * 10);

  // The restarted backend must be re-admitted: every breaker closed and
  // nobody draining once the half-open probe has done its round.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!router.AllBackendsHealthy() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(router.AllBackendsHealthy());
  for (const auto& status : router.BackendStatuses()) {
    EXPECT_EQ(status.breaker, CircuitBreaker::State::kClosed)
        << status.name << " breaker "
        << BreakerStateToString(status.breaker);
  }
  EXPECT_TRUE(router.Stop().ok());
}

// ------------------------------------------------------- Observability

TEST_F(RouterTest, TraceContextRelayedThroughFailover) {
  TraceRecorder* recorder = TraceRecorder::Global();
  recorder->SetEnabled(false);
  recorder->Clear();

  FleetTopology topology = StartFleet(/*shards=*/1, /*replicas=*/2);
  RouterOptions options;
  options.max_attempts = 4;
  options.retry_backoff_base_ms = 5;
  options.retry_backoff_max_ms = 20;
  ModelHubRouter router(std::move(topology), options);
  ASSERT_TRUE(router.Start().ok());

  // One replica down: the traced request must fail over and still carry
  // its context to whichever backend finally serves it.
  ASSERT_TRUE(servers_[0]->Stop().ok());

  auto client = ModelHubClient::Connect("127.0.0.1", router.port());
  ASSERT_TRUE(client.ok());
  TraceContext ctx = MakeSampledTraceContext();
  {
    ScopedTraceContext scope(ctx);
    auto params = client->GetSnapshot("served_v1");
    ASSERT_TRUE(params.ok()) << params.status().ToString();
  }

  auto wire = client->GetTraceDump();
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  std::vector<TraceNodeDump> dumps;
  ASSERT_TRUE(ParseTraceDumps(Slice(*wire), &dumps).ok());
  // Router section + the one live backend (the dead one can't answer).
  ASSERT_EQ(dumps.size(), 2u);
  EXPECT_EQ(dumps[0].node.rfind("router@", 0), 0u);
  EXPECT_EQ(dumps[1].node.rfind("modelhubd@", 0), 0u);
  EXPECT_NE(dumps[1].node.find(std::to_string(servers_[1]->port())),
            std::string::npos);

  // The whole chain shares the sampled trace id, and the backend's
  // request span chains to a router.forward span — relayed span ids, not
  // re-rooted ones. (Servers here share the test process, so every
  // section snapshots the same recorder; cross-process identity is
  // covered by the dump-merge unit test and the CI fleet soak.)
  const TraceEvent* server_request = nullptr;
  std::vector<uint64_t> forward_ids;
  for (const TraceEvent& e : dumps[0].events) {
    EXPECT_EQ(e.trace_hi, ctx.trace_hi);
    EXPECT_EQ(e.trace_lo, ctx.trace_lo);
    if (e.name == "server.request") server_request = &e;
    if (e.name == "router.forward") forward_ids.push_back(e.id);
  }
  ASSERT_NE(server_request, nullptr);
  ASSERT_FALSE(forward_ids.empty());
  bool chained = false;
  for (uint64_t id : forward_ids) {
    if (server_request->parent_id == id) chained = true;
  }
  EXPECT_TRUE(chained);

  EXPECT_TRUE(router.Stop().ok());
  recorder->Clear();
}

TEST_F(RouterTest, GetTraceReturnsOneSectionPerNode) {
  TraceRecorder* recorder = TraceRecorder::Global();
  recorder->SetEnabled(false);
  recorder->Clear();

  ModelHubRouter router(StartFleet(/*shards=*/2, /*replicas=*/1));
  ASSERT_TRUE(router.Start().ok());
  auto client = ModelHubClient::Connect("127.0.0.1", router.port());
  ASSERT_TRUE(client.ok());

  auto wire = client->GetTraceDump();
  ASSERT_TRUE(wire.ok());
  std::vector<TraceNodeDump> dumps;
  ASSERT_TRUE(ParseTraceDumps(Slice(*wire), &dumps).ok());
  ASSERT_EQ(dumps.size(), 3u);  // Router + both backends.
  EXPECT_EQ(dumps[0].node.rfind("router@", 0), 0u);
  EXPECT_EQ(dumps[1].node.rfind("modelhubd@", 0), 0u);
  EXPECT_EQ(dumps[2].node.rfind("modelhubd@", 0), 0u);
  EXPECT_NE(dumps[1].node, dumps[2].node);  // Distinct node labels.
  // The merged rendering is well-formed JSON with a row per node.
  const std::string merged = MergeTraceDumps(dumps);
  EXPECT_EQ(merged.front(), '[');
  for (const TraceNodeDump& dump : dumps) {
    EXPECT_NE(merged.find(dump.node), std::string::npos);
  }
  EXPECT_TRUE(router.Stop().ok());
}

TEST_F(RouterTest, GetMetricsLabelsNodesAndDedupsTypes) {
  ModelHubRouter router(StartFleet(/*shards=*/1, /*replicas=*/2));
  ASSERT_TRUE(router.Start().ok());
  auto client = ModelHubClient::Connect("127.0.0.1", router.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Ping().ok());

  auto text = client->Metrics();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("node=\"router\""), std::string::npos);
  for (size_t i = 0; i < 2; ++i) {
    const std::string label =
        "node=\"127.0.0.1:" + std::to_string(servers_[i]->port()) + "\"";
    EXPECT_NE(text->find(label), std::string::npos) << label;
  }
  // Both backends export the same families; the fleet scrape must type
  // each family exactly once.
  const std::string type_line = "# TYPE server_requests_count counter";
  const size_t first = text->find(type_line);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text->find(type_line, first + 1), std::string::npos);

  EXPECT_TRUE(router.Stop().ok());
}

}  // namespace
}  // namespace modelhub
