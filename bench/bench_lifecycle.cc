// Lifecycle maintenance benchmark (DESIGN.md §14).
//
// Stands up a ModelHubServer with the embedded lifecycle daemon over a
// PAS-archived repository and measures the three numbers that matter for
// background compaction:
//
//   1. bytes reclaimed — every maintenance cycle re-encodes the archive
//      into a new generation and sweeps the superseded one, so a churn
//      workload must show > 0 reclaimed bytes (the GC actually runs);
//   2. re-encode throughput — archive bytes processed per second of
//      compaction wall time;
//   3. serving tail latency under compaction — client-observed p99 with
//      the daemon idle versus p99 while cycles run back to back. The
//      daemon yields to serving at task boundaries and every task is
//      wait-free for readers (plan swap is an atomic reader reload), so
//      the compacting p99 must stay within 2x the idle baseline.
//
// Emits BENCH_lifecycle.json so compaction regressions are tracked
// across PRs.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/env.h"
#include "common/stopwatch.h"
#include "data/synthetic_modeler.h"
#include "dlv/repository.h"
#include "lifecycle/daemon.h"
#include "net/client.h"
#include "pas/archive.h"
#include "server/modelhubd.h"

namespace {

using namespace modelhub;
using bench::Check;

double PercentileMs(std::vector<double>* sorted_ms, double p) {
  if (sorted_ms->empty()) return 0.0;
  const size_t index =
      static_cast<size_t>(p * static_cast<double>(sorted_ms->size() - 1));
  return (*sorted_ms)[index];
}

/// Total bytes in the archive directory — the input size of one
/// re-encode pass.
uint64_t ArchiveBytes(Env* env, const std::string& pas_dir) {
  auto names = env->ListDir(pas_dir);
  if (!names.ok()) return 0;
  uint64_t total = 0;
  for (const std::string& name : *names) {
    if (auto size = env->FileSize(pas_dir + "/" + name); size.ok()) {
      total += *size;
    }
  }
  return total;
}

/// Drives GET_SNAPSHOT traffic against the server for `run_ms`, returning
/// sorted client-observed latencies. Failures are counted, not tolerated.
std::vector<double> DriveTraffic(int port,
                                 const std::vector<std::string>& models,
                                 int clients, int run_ms,
                                 std::atomic<int>* failed) {
  std::atomic<bool> stop{false};
  std::vector<std::vector<double>> latencies_ms(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = ModelHubClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        failed->fetch_add(1);
        return;
      }
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        const std::string& model = models[(c + i) % models.size()];
        Stopwatch request;
        const bool ok = client->GetSnapshot(model).ok();
        latencies_ms[c].push_back(request.ElapsedMillis());
        if (!ok) failed->fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(run_ms));
  stop.store(true);
  for (auto& t : threads) t.join();
  std::vector<double> merged;
  for (const auto& per_client : latencies_ms) {
    merged.insert(merged.end(), per_client.begin(), per_client.end());
  }
  std::sort(merged.begin(), merged.end());
  return merged;
}

int Run(Env* env) {
  const std::string work = "/tmp/mh_lifecycle_bench";
  const std::string repo_root = work + "/repo";
  RemoveTree(env, work);
  Check(env->CreateDirs(work), "workdir");

  // Churn workload: several versions x snapshots, archived once up front.
  auto repo = Repository::Init(env, repo_root);
  Check(repo.status(), "init");
  ModelerOptions modeler;
  modeler.num_versions = 3;
  modeler.snapshots_per_version = 3;
  modeler.train_iterations = 24;
  modeler.num_classes = 6;
  modeler.image_size = 16;
  modeler.dataset_samples = 96;
  if (bench::QuickMode()) {
    modeler.num_versions = 2;
    modeler.snapshots_per_version = 2;
    modeler.train_iterations = 8;
    modeler.dataset_samples = 48;
  }
  auto names = RunSyntheticModeler(&*repo, modeler);
  Check(names.status(), "modeler");
  Check(repo->Archive(ArchiveOptions{}).status(), "archive");
  const std::vector<std::string> models = *names;
  const std::string pas_dir = repo_root + "/pas";
  const uint64_t archive_bytes = ArchiveBytes(env, pas_dir);

  // Embedded daemon with an effectively-infinite period: cycles run only
  // when the controller below calls RunOnce, so the idle phase is truly
  // idle and the compacting phase is back-to-back compaction.
  ServerOptions options;
  options.enable_maintenance = true;
  options.maintenance.interval_ms = 3600 * 1000;
  // Background work gets a bounded slice of the machine; serving keeps
  // the rest. Unbounded solver threads would measure CPU starvation,
  // not the daemon's interference.
  options.maintenance.archive_threads = 2;
  ModelHubServer server(env, repo_root, options);
  Check(server.Start(), "server start");
  LifecycleDaemon* daemon = server.maintenance();

  const int kClients = bench::QuickMode() ? 4 : 8;
  const int kPhaseMs = bench::QuickMode() ? 1200 : 2500;
  std::atomic<int> failed{0};

  // Phase 1: idle baseline.
  std::vector<double> idle =
      DriveTraffic(server.port(), models, kClients, kPhaseMs, &failed);
  const double idle_p50 = PercentileMs(&idle, 0.50);
  const double idle_p99 = PercentileMs(&idle, 0.99);

  // Phase 2: identical traffic while maintenance cycles run back to
  // back. Each cycle re-encodes the whole archive with access-weighted
  // budgets (the serving traffic above fed the tracker), swaps the
  // serving reader onto the new generation and sweeps the old one.
  std::atomic<bool> compacting{true};
  std::atomic<int> cycles{0};
  double compaction_wall_ms = 0.0;
  std::thread controller([&] {
    while (compacting.load()) {
      Stopwatch cycle;
      const Status run = daemon->RunOnce();
      compaction_wall_ms += cycle.ElapsedMillis();
      if (!run.ok()) {
        std::fprintf(stderr, "cycle: %s\n", run.ToString().c_str());
        break;
      }
      cycles.fetch_add(1);
      // A short inter-cycle breather, as the real daemon's interval
      // provides; back-to-back cycles with zero gap would measure a
      // duty cycle the daemon never runs at.
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });
  std::vector<double> busy =
      DriveTraffic(server.port(), models, kClients, kPhaseMs, &failed);
  compacting.store(false);
  controller.join();
  const double busy_p50 = PercentileMs(&busy, 0.50);
  const double busy_p99 = PercentileMs(&busy, 0.99);

  const MaintenanceStatus status = daemon->status();
  Check(server.Stop(), "server stop");

  const uint64_t reclaimed = status.bytes_reclaimed_total;
  const double reencode_mb_s =
      compaction_wall_ms > 0
          ? static_cast<double>(archive_bytes) * cycles.load() /
                (1024.0 * 1024.0) / (compaction_wall_ms / 1000.0)
          : 0.0;
  // Noise floor: on sub-millisecond idle tails the ratio is dominated by
  // scheduler jitter, not compaction.
  const double p99_ratio = busy_p99 / std::max(idle_p99, 2.0);

  std::printf("%zu models, %llu-byte archive, %d clients\n", models.size(),
              static_cast<unsigned long long>(archive_bytes), kClients);
  std::printf("idle:       %zu requests | p50 %.3fms p99 %.3fms\n",
              idle.size(), idle_p50, idle_p99);
  std::printf("compacting: %zu requests | p50 %.3fms p99 %.3fms "
              "(%d cycles, %.0f ms compaction)\n",
              busy.size(), busy_p50, busy_p99, cycles.load(),
              compaction_wall_ms);
  std::printf("reclaimed %llu bytes | re-encode %.1f MB/s | p99 ratio "
              "%.2fx (gen %llu, epoch %llu)\n",
              static_cast<unsigned long long>(reclaimed), reencode_mb_s,
              p99_ratio,
              static_cast<unsigned long long>(status.archive_generation),
              static_cast<unsigned long long>(status.gc_epoch));

  if (failed.load() != 0) {
    std::fprintf(stderr, "FAILED: %d requests failed\n", failed.load());
    return 1;
  }
  if (cycles.load() < 1 || reclaimed == 0) {
    std::fprintf(stderr,
                 "FAILED: no bytes reclaimed (%d cycles) — GC never ran\n",
                 cycles.load());
    return 1;
  }
  if (p99_ratio > 2.0) {
    std::fprintf(stderr,
                 "FAILED: compacting p99 %.3fms is %.2fx the idle "
                 "baseline %.3fms (budget 2x)\n",
                 busy_p99, p99_ratio, idle_p99);
    return 1;
  }

  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"bench\":\"lifecycle\",\"models\":%zu,\"archive_bytes\":%llu,"
      "\"cycles\":%d,\"bytes_reclaimed\":%llu,\"reencode_mb_per_s\":%.1f,"
      "\"idle_p50_ms\":%.3f,\"idle_p99_ms\":%.3f,\"compacting_p50_ms\":%.3f,"
      "\"compacting_p99_ms\":%.3f,\"p99_ratio\":%.3f,\"failed\":%d",
      models.size(), static_cast<unsigned long long>(archive_bytes),
      cycles.load(), static_cast<unsigned long long>(reclaimed),
      reencode_mb_s, idle_p50, idle_p99, busy_p50, busy_p99, p99_ratio,
      failed.load());
  std::string json = buffer;
  bench::AppendMetricsJson(&json);
  json += "}\n";
  const char* json_path = "BENCH_lifecycle.json";
  Check(env->WriteFile(json_path, json), "write json");
  std::printf("wrote %s\n", json_path);
  return 0;
}

}  // namespace

int main() { return Run(Env::Default()); }
