// Table IV — "Delta Performance For Lossless & Lossy Schemes, 32-bits".
//
// The paper compares, for a fine-tuned VGG pair, the storage footprint
// (as % of raw size) of Materialize vs Delta-SUB under:
//   Float representation: lossless / lossless bytewise / fixed point /
//                         fixed point bytewise;
//   After normalization (adding a constant to align radixes and signs):
//                         the same four rows.
// All rows keep 32 bits per value — the gains come from the encoding
// layout, not from dropping bits. Expected shape: bytewise < whole-matrix,
// delta < materialize, normalization helps substantially.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "pas/delta.h"
#include "pas/float_encoding.h"

namespace {

using modelhub::bench::Check;
using modelhub::CodecType;
using modelhub::FloatMatrix;
using modelhub::NamedParam;

/// Re-encodes every matrix through fixed-point-k and back (still stored as
/// float32 — the paper's "fix point" rows reduce entropy, not width).
std::vector<NamedParam> FixedPointRoundTrip(
    const std::vector<NamedParam>& params, int bits) {
  std::vector<NamedParam> out;
  for (const auto& param : params) {
    auto encoded = modelhub::EncodeMatrix(
        param.value, {modelhub::FloatSchemeKind::kFixedPoint, bits});
    Check(encoded.status(), "fixed encode");
    auto decoded = modelhub::DecodeMatrix(*encoded);
    Check(decoded.status(), "fixed decode");
    out.push_back({param.name, std::move(*decoded)});
  }
  return out;
}

std::vector<NamedParam> Normalize(const std::vector<NamedParam>& params,
                                  float constant) {
  std::vector<NamedParam> out;
  for (const auto& param : params) {
    out.push_back({param.name, modelhub::AddConstant(param.value, constant)});
  }
  return out;
}

std::vector<NamedParam> SubDelta(const std::vector<NamedParam>& target,
                                 const std::vector<NamedParam>& base) {
  std::vector<NamedParam> out;
  for (size_t i = 0; i < target.size(); ++i) {
    auto delta = modelhub::ComputeDelta(target[i].value, base[i].value,
                                        modelhub::DeltaKind::kSub);
    Check(delta.status(), "sub delta");
    out.push_back({target[i].name, std::move(*delta)});
  }
  return out;
}

void PrintRow(const char* group, const char* row, uint64_t raw,
              const std::vector<NamedParam>& materialize_payload,
              const std::vector<NamedParam>& delta_payload, bool bytewise) {
  const uint64_t materialized =
      bytewise
          ? modelhub::bench::SegmentedCompressedBytes(materialize_payload)
          : modelhub::bench::WholeCompressedBytes(materialize_payload);
  const uint64_t delta =
      bytewise ? modelhub::bench::SegmentedCompressedBytes(delta_payload)
               : modelhub::bench::WholeCompressedBytes(delta_payload);
  std::printf("%-14s %-22s %13.2f%% %13.2f%%\n", group, row,
              100.0 * materialized / raw, 100.0 * delta / raw);
}

}  // namespace

int main() {
  using namespace modelhub;

  // Fine-tuned pair (the paper uses VGG-16 -> VGG-Salient).
  const Dataset data = MakeGlyphDataset(
      {.num_samples = 320, .num_classes = 6, .image_size = 16, .seed = 51});
  bench::TrainedModel base = bench::TrainGlyphModel(data, 10, 150);
  const Dataset shifted = MakeGlyphDataset(
      {.num_samples = 320, .num_classes = 6, .image_size = 16, .seed = 52});
  bench::TrainedModel finetuned =
      bench::TrainGlyphModel(shifted, 11, 60, 60, &base.final_params);

  const auto& target = finetuned.final_params;
  const auto& origin = base.final_params;
  const uint64_t raw = bench::RawBytes(target);
  std::printf("fine-tuned pair, %llu raw bytes; storage as %% of raw:\n\n",
              static_cast<unsigned long long>(raw));
  std::printf("%-14s %-22s %14s %14s\n", "group", "scheme", "materialize",
              "delta-sub");

  const int kFixedBits = 24;  // 32-bit-class row: no precision dropped
                              // beyond radix alignment, as in the paper.
  // --- Float representation rows.
  const auto delta_plain = SubDelta(target, origin);
  PrintRow("float repr", "lossless", raw, target, delta_plain, false);
  PrintRow("float repr", "lossless, bytewise", raw, target, delta_plain,
           true);
  const auto fixed_target = FixedPointRoundTrip(target, kFixedBits);
  const auto fixed_origin = FixedPointRoundTrip(origin, kFixedBits);
  const auto fixed_delta = SubDelta(fixed_target, fixed_origin);
  PrintRow("float repr", "fixed point", raw, fixed_target, fixed_delta,
           false);
  PrintRow("float repr", "fixed point, bytewise", raw, fixed_target,
           fixed_delta, true);

  // --- After normalization: add a constant large enough to align every
  // value's exponent and sign (weights are ~N(0, 0.1); +4 suffices).
  const float kShift = 4.0f;
  const auto norm_target = Normalize(target, kShift);
  const auto norm_origin = Normalize(origin, kShift);
  const auto norm_delta = SubDelta(norm_target, norm_origin);
  PrintRow("normalized", "lossless", raw, norm_target, norm_delta, false);
  PrintRow("normalized", "lossless, bytewise", raw, norm_target, norm_delta,
           true);
  const auto norm_fixed_target = FixedPointRoundTrip(norm_target, kFixedBits);
  const auto norm_fixed_origin = FixedPointRoundTrip(norm_origin, kFixedBits);
  const auto norm_fixed_delta = SubDelta(norm_fixed_target, norm_fixed_origin);
  PrintRow("normalized", "fixed point", raw, norm_fixed_target,
           norm_fixed_delta, false);
  PrintRow("normalized", "fixed point, bytewise", raw, norm_fixed_target,
           norm_fixed_delta, true);

  std::printf(
      "\nshape check (paper Table IV): every bytewise row < its whole-"
      "matrix row; every delta column < materialize; normalization "
      "reduces both columns.\n");
  return 0;
}
