// Fig 6(c) — "Comparing PAS Archival Storage Algorithms for SD".
//
// Reproduces the solver comparison: an SD-style repository (synthetic
// modeler: one base model plus fine-tuned / retrained / mutated variants,
// each with a checkpoint series) is turned into a matrix storage graph;
// per-snapshot recreation budgets are set to alpha x the SPT cost and
// swept. For each alpha we run LAST (the baseline, per-vertex stretch
// bound only), PAS-MT (MST refinement) and PAS-PT (priority construction),
// reporting total storage cost Cs (left axis of the figure) and the mean
// snapshot recreation cost Cr (right axis), both normalized.
//
// Expected shape (paper): both PAS algorithms track the MST storage bound
// much more closely than LAST at small/medium alpha and always satisfy the
// group budgets; LAST only approaches the MST once alpha is large (> 3).
// MT is stronger at loose alpha, PT at tight alpha.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/env.h"
#include "data/synthetic_modeler.h"
#include "dlv/repository.h"
#include "pas/archive.h"
#include "pas/solver.h"

namespace {

using namespace modelhub;
using bench::Check;

struct Metrics {
  double storage = 0.0;
  double mean_recreation = 0.0;
  bool feasible = false;
};

Metrics Measure(const StoragePlan& plan, RetrievalScheme scheme) {
  Metrics out;
  out.storage = plan.TotalStorageCost();
  double total = 0.0;
  for (const auto& group : plan.graph().groups()) {
    total += plan.GroupRecreationCost(group, scheme);
  }
  out.mean_recreation = total / plan.graph().groups().size();
  out.feasible = plan.SatisfiesBudgets(scheme);
  return out;
}

}  // namespace

int main() {
  MemEnv env;
  auto repo = Repository::Init(&env, "sd");
  Check(repo.status(), "init");

  // SD-mini: 10 versions x 4 snapshots (the paper's SD is 54 x 10 at VGG
  // scale; structure is preserved, sizes are laptop-scale).
  ModelerOptions modeler;
  modeler.num_versions = 10;
  modeler.snapshots_per_version = 4;
  modeler.train_iterations = 48;
  modeler.num_classes = 6;
  modeler.image_size = 16;
  modeler.dataset_samples = 192;
  auto names = RunSyntheticModeler(&*repo, modeler);
  Check(names.status(), "synthetic modeler");

  // Gather all snapshots and the delta candidate pairs (adjacent within a
  // version; parent-latest -> child-first across lineage), then build the
  // storage graph once.
  std::vector<std::vector<NamedParam>> param_storage;
  std::vector<std::string> snapshot_names;
  std::vector<std::pair<int, int>> candidates;
  std::vector<int> first_of_version;
  std::vector<int> last_of_version;
  for (const auto& name : *names) {
    auto count = repo->NumSnapshots(name);
    Check(count.status(), "count");
    first_of_version.push_back(static_cast<int>(snapshot_names.size()));
    for (int64_t s = 0; s < *count; ++s) {
      auto params = repo->GetSnapshotParams(name, s);
      Check(params.status(), "params");
      if (s > 0) {
        candidates.push_back({static_cast<int>(snapshot_names.size()) - 1,
                              static_cast<int>(snapshot_names.size())});
      }
      snapshot_names.push_back(name + "/s" + std::to_string(s));
      param_storage.push_back(std::move(*params));
    }
    last_of_version.push_back(static_cast<int>(snapshot_names.size()) - 1);
  }
  const auto lineage = repo->GetLineage();
  for (const auto& [base, derived] : lineage) {
    for (size_t v = 0; v < names->size(); ++v) {
      if ((*names)[v] != derived) continue;
      for (size_t p = 0; p < names->size(); ++p) {
        if ((*names)[p] == base) {
          candidates.push_back({last_of_version[p], first_of_version[v]});
        }
      }
    }
  }
  std::vector<SnapshotSpec> specs;
  for (size_t i = 0; i < snapshot_names.size(); ++i) {
    specs.push_back({snapshot_names[i], &param_storage[i]});
  }
  auto graph = BuildMatrixStorageGraph(specs, candidates,
                                       CodecType::kDeflateLite,
                                       DeltaKind::kSub, 0.25);
  Check(graph.status(), "build graph");
  std::printf("matrix storage graph: %d matrices, %zu candidate edges, "
              "%zu snapshots\n",
              graph->num_vertices() - 1, graph->edges().size(),
              graph->groups().size());

  const RetrievalScheme scheme = RetrievalScheme::kIndependent;
  auto mst = SolveMst(*graph);
  Check(mst.status(), "mst");
  auto spt = SolveSpt(*graph);
  Check(spt.status(), "spt");
  const Metrics mst_metrics = Measure(*mst, scheme);
  const Metrics spt_metrics = Measure(*spt, scheme);
  std::printf("MST storage (best possible) : %.3e\n", mst_metrics.storage);
  std::printf("SPT storage (materialized)  : %.3e\n", spt_metrics.storage);
  std::printf("SPT mean snapshot Cr        : %.3e\n\n",
              spt_metrics.mean_recreation);

  std::printf(
      "Cs normalized to MST (lower = better), Cr normalized to SPT; "
      "* = budgets satisfied\n");
  std::printf("%6s | %10s %10s | %10s %10s | %10s %10s\n", "alpha",
              "LAST Cs", "LAST Cr", "MT Cs", "MT Cr", "PT Cs", "PT Cr");
  for (const double alpha :
       {1.1, 1.2, 1.4, 1.6, 2.0, 2.5, 3.0, 4.0}) {
    for (auto& group : *graph->mutable_groups()) {
      group.budget = alpha * spt->GroupRecreationCost(group, scheme);
    }
    auto last = SolveLast(*graph, alpha);
    Check(last.status(), "last");
    auto mt = SolvePasMt(*graph, scheme);
    Check(mt.status(), "pas-mt");
    auto pt = SolvePasPt(*graph, scheme);
    Check(pt.status(), "pas-pt");
    const Metrics m_last = Measure(*last, scheme);
    const Metrics m_mt = Measure(*mt, scheme);
    const Metrics m_pt = Measure(*pt, scheme);
    std::printf(
        "%6.2f | %9.3f%s %10.2f | %9.3f%s %10.2f | %9.3f%s %10.2f\n", alpha,
        m_last.storage / mst_metrics.storage, m_last.feasible ? "*" : " ",
        m_last.mean_recreation / spt_metrics.mean_recreation,
        m_mt.storage / mst_metrics.storage, m_mt.feasible ? "*" : " ",
        m_mt.mean_recreation / spt_metrics.mean_recreation,
        m_pt.storage / mst_metrics.storage, m_pt.feasible ? "*" : " ",
        m_pt.mean_recreation / spt_metrics.mean_recreation);
  }
  std::printf(
      "\nshape check (paper Fig 6c): PAS-MT/PT stay near 1.0x MST and "
      "feasible across alpha; LAST needs large alpha to approach the "
      "MST.\n");
  return 0;
}
