// Fig 6(a) — "Compression-Accuracy Tradeoff for Float Representation
// Schemes".
//
// The paper plots, per float scheme, the average compression ratio against
// the average accuracy drop over three real models. We train a model on
// the synthetic glyph task, re-encode its weights under every PAS scheme,
// decode, and measure accuracy drop; the storage footprint is the scheme
// payload (plus codebook) compressed with deflate-lite.
//
// Expected shape (paper): lossless float32 ~1x with zero drop; 16-bit
// schemes ~2x with negligible drop; aggressive quantization reaches ~20x
// or more with modest drop — "a factor of 20 or so without a significant
// loss in accuracy".

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "pas/float_encoding.h"

int main() {
  using namespace modelhub;
  using bench::Check;

  const Dataset train = MakeGlyphDataset(
      {.num_samples = 400, .num_classes = 6, .image_size = 16, .seed = 31});
  const Dataset test = MakeGlyphDataset(
      {.num_samples = 200, .num_classes = 6, .image_size = 16, .seed = 32});

  bench::TrainedModel model = bench::TrainGlyphModel(train, 1, 200);
  auto net = Network::Create(model.def);
  Check(net.status(), "create");
  Check(net->SetParameters(model.final_params), "set params");
  auto base_accuracy = EvaluateAccuracy(*net, test);
  Check(base_accuracy.status(), "baseline accuracy");
  const uint64_t raw_bytes = bench::RawBytes(model.final_params);
  std::printf("model: %.1f%% accuracy, %llu raw float32 bytes\n\n",
              *base_accuracy * 100,
              static_cast<unsigned long long>(raw_bytes));

  struct SchemeCase {
    const char* label;
    FloatScheme scheme;
  };
  const std::vector<SchemeCase> cases = {
      {"float32 (lossless)", {FloatSchemeKind::kFloat32, 32}},
      {"float16", {FloatSchemeKind::kFloat16, 16}},
      {"bfloat16", {FloatSchemeKind::kBFloat16, 16}},
      {"fixed16", {FloatSchemeKind::kFixedPoint, 16}},
      {"fixed8", {FloatSchemeKind::kFixedPoint, 8}},
      {"uniform quant 8b", {FloatSchemeKind::kQuantUniform, 8}},
      {"uniform quant 4b", {FloatSchemeKind::kQuantUniform, 4}},
      {"uniform quant 2b", {FloatSchemeKind::kQuantUniform, 2}},
      {"random quant 8b", {FloatSchemeKind::kQuantRandom, 8}},
      {"random quant 4b", {FloatSchemeKind::kQuantRandom, 4}},
  };

  std::printf("%-20s %12s %12s %12s\n", "scheme", "ratio", "acc", "drop(pp)");
  for (const auto& test_case : cases) {
    Rng rng(7);
    uint64_t stored = 0;
    std::vector<NamedParam> decoded;
    for (const auto& param : model.final_params) {
      auto encoded = EncodeMatrix(param.value, test_case.scheme, &rng);
      Check(encoded.status(), test_case.label);
      // Stored footprint: compressed payload + codebook floats.
      stored += CompressedSize(CodecType::kDeflateLite,
                               Slice(encoded->payload));
      stored += encoded->codebook.size() * 4;
      auto back = DecodeMatrix(*encoded);
      Check(back.status(), test_case.label);
      decoded.push_back({param.name, std::move(*back)});
    }
    auto lossy_net = Network::Create(model.def);
    Check(lossy_net.status(), "create lossy");
    Check(lossy_net->SetParameters(decoded), "set lossy params");
    auto accuracy = EvaluateAccuracy(*lossy_net, test);
    Check(accuracy.status(), "lossy accuracy");
    std::printf("%-20s %11.2fx %11.1f%% %12.2f\n", test_case.label,
                static_cast<double>(raw_bytes) / static_cast<double>(stored),
                *accuracy * 100, (*base_accuracy - *accuracy) * 100);
  }
  std::printf(
      "\nshape check: high ratios with small accuracy drop are expected "
      "down to ~4-bit quantization (paper: ~20x 'without significant "
      "loss').\n");
  return 0;
}
