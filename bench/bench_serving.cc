// modelhubd serving benchmark (DESIGN.md §9).
//
// Starts an in-process ModelHubServer over a PAS-archived repository and
// drives it with N concurrent loopback clients issuing a hot-key mix:
// mostly GET_SNAPSHOT of the same snapshot (the "everyone pulls the new
// release" burst that single-flight coalescing targets) with pings and a
// cold key interleaved. Measures client-observed request latency.
//
// Emits BENCH_serving.json (throughput, p50/p99 latency, coalesce ratio,
// bytes moved) so serving-path regressions are tracked across PRs.
//
// Expected shape: zero failed requests; coalesce_ratio well above 0 (the
// hot key collapses into few retrievals); p99 a small multiple of p50.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/env.h"
#include "common/stopwatch.h"
#include "data/synthetic_modeler.h"
#include "dlv/repository.h"
#include "net/client.h"
#include "pas/archive.h"
#include "server/modelhubd.h"

namespace {

using namespace modelhub;
using bench::Check;

double PercentileMs(std::vector<double>* sorted_ms, double p) {
  if (sorted_ms->empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(sorted_ms->size() - 1));
  return (*sorted_ms)[index];
}

}  // namespace

int main() {
  Env* env = Env::Default();
  const std::string work = "/tmp/mh_serving_bench";
  const std::string repo_root = work + "/repo";
  RemoveTree(env, work);
  Check(env->CreateDirs(work), "workdir");

  // Seed and archive a small repository on disk (the server's worker and
  // retrieval threads hit the Env concurrently, so no MemEnv here).
  auto repo = Repository::Init(env, repo_root);
  Check(repo.status(), "init");
  ModelerOptions modeler;
  modeler.num_versions = 2;
  modeler.snapshots_per_version = 3;
  modeler.train_iterations = 24;
  modeler.num_classes = 6;
  modeler.image_size = 16;
  modeler.dataset_samples = 96;
  if (bench::QuickMode()) {
    modeler.num_versions = 1;
    modeler.snapshots_per_version = 2;
    modeler.train_iterations = 8;
    modeler.dataset_samples = 48;
  }
  auto names = RunSyntheticModeler(&*repo, modeler);
  Check(names.status(), "modeler");
  Check(repo->Archive(ArchiveOptions{}).status(), "archive");
  const std::string hot_model = names->front();
  const std::string cold_model = names->back();

  ServerOptions options;
  options.coalesce_linger_ms = 100;  // Collapse the hot-key burst.
  ModelHubServer server(env, repo_root, options);
  Check(server.Start(), "server start");

  const int kClients = bench::QuickMode() ? 4 : 8;
  const int kRequestsPerClient = bench::QuickMode() ? 40 : 200;
  std::atomic<int> failed{0};
  std::vector<std::vector<double>> latencies_ms(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);

  Stopwatch wall;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = ModelHubClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failed.fetch_add(kRequestsPerClient);
        return;
      }
      latencies_ms[c].reserve(kRequestsPerClient);
      for (int i = 0; i < kRequestsPerClient; ++i) {
        Stopwatch request;
        bool ok = false;
        if (i % 8 == 0) {
          ok = client->Ping().ok();
        } else if (i % 8 == 1) {
          ok = client->GetSnapshot(cold_model).ok();
        } else {
          ok = client->GetSnapshot(hot_model).ok();  // The hot key.
        }
        latencies_ms[c].push_back(request.ElapsedMillis());
        if (!ok) failed.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall_ms = wall.ElapsedMillis();
  const uint64_t hits = server.coalesce_hits();
  const uint64_t misses = server.coalesce_misses();
  Check(server.Stop(), "server stop");

  std::vector<double> merged;
  for (const auto& per_client : latencies_ms) {
    merged.insert(merged.end(), per_client.begin(), per_client.end());
  }
  std::sort(merged.begin(), merged.end());
  const uint64_t total_requests = merged.size();
  const double throughput_rps =
      wall_ms > 0 ? 1000.0 * static_cast<double>(total_requests) / wall_ms
                  : 0.0;
  const double p50 = PercentileMs(&merged, 0.50);
  const double p99 = PercentileMs(&merged, 0.99);
  const double coalesce_ratio =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;

  std::printf("%d clients x %d requests: %llu total, %d failed\n", kClients,
              kRequestsPerClient,
              static_cast<unsigned long long>(total_requests), failed.load());
  std::printf("throughput %.1f req/s | p50 %.3fms p99 %.3fms | coalesce "
              "%llu hits / %llu misses (ratio %.2f)\n",
              throughput_rps, p50, p99,
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses), coalesce_ratio);
  if (failed.load() != 0) {
    std::fprintf(stderr, "FAILED: %d requests failed\n", failed.load());
    return 1;
  }

  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"bench\":\"serving\",\"clients\":%d,\"requests\":%llu,"
      "\"failed\":%d,\"throughput_rps\":%.1f,\"p50_ms\":%.3f,"
      "\"p99_ms\":%.3f,\"coalesce_hits\":%llu,\"coalesce_misses\":%llu,"
      "\"coalesce_ratio\":%.4f",
      kClients, static_cast<unsigned long long>(total_requests),
      failed.load(), throughput_rps, p50, p99,
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(misses), coalesce_ratio);
  std::string json = buffer;
  bench::AppendMetricsJson(&json);
  json += "}\n";
  const char* json_path = "BENCH_serving.json";
  Check(env->WriteFile(json_path, json), "write json");
  std::printf("wrote %s\n", json_path);
  return 0;
}
