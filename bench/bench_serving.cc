// modelhubd serving benchmark (DESIGN.md §9, fleet mode §11).
//
// Default mode: starts an in-process ModelHubServer over a PAS-archived
// repository and drives it with N concurrent loopback clients issuing a
// hot-key mix: mostly GET_SNAPSHOT of the same snapshot (the "everyone
// pulls the new release" burst that single-flight coalescing targets)
// with pings and a cold key interleaved. Measures client-observed request
// latency. Emits BENCH_serving.json (throughput, p50/p99 latency,
// coalesce ratio) so serving-path regressions are tracked across PRs.
//
// --fleet mode: stands up shards x replicas modelhubd backends behind a
// modelhub-router, drives time-bounded client traffic through the router,
// kills the replica serving the hot key mid-run and restarts it, then
// measures throughput, tail latency, the failover blip (max observed
// latency) and breaker recovery time. Emits BENCH_fleet.json. The
// expected shape: zero failed requests despite the kill, aggregate
// throughput at or above the single-node baseline, and recovery_ms small
// (half-open probe re-admission after restart).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/env.h"
#include "common/stopwatch.h"
#include "data/synthetic_modeler.h"
#include "dlv/repository.h"
#include "net/client.h"
#include "pas/archive.h"
#include "router/router.h"
#include "server/modelhubd.h"

namespace {

using namespace modelhub;
using bench::Check;

double PercentileMs(std::vector<double>* sorted_ms, double p) {
  if (sorted_ms->empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(sorted_ms->size() - 1));
  return (*sorted_ms)[index];
}

/// Seeds and PAS-archives a small on-disk repository (the server's worker
/// and retrieval threads hit the Env concurrently, so no MemEnv here).
/// Returns the committed version names.
std::vector<std::string> SeedRepo(Env* env, const std::string& repo_root) {
  auto repo = Repository::Init(env, repo_root);
  Check(repo.status(), "init");
  ModelerOptions modeler;
  modeler.num_versions = 2;
  modeler.snapshots_per_version = 3;
  modeler.train_iterations = 24;
  modeler.num_classes = 6;
  modeler.image_size = 16;
  modeler.dataset_samples = 96;
  if (bench::QuickMode()) {
    modeler.num_versions = 1;
    modeler.snapshots_per_version = 2;
    modeler.train_iterations = 8;
    modeler.dataset_samples = 48;
  }
  auto names = RunSyntheticModeler(&*repo, modeler);
  Check(names.status(), "modeler");
  Check(repo->Archive(ArchiveOptions{}).status(), "archive");
  return *names;
}

int RunSingle(Env* env) {
  const std::string work = "/tmp/mh_serving_bench";
  const std::string repo_root = work + "/repo";
  RemoveTree(env, work);
  Check(env->CreateDirs(work), "workdir");
  const std::vector<std::string> names = SeedRepo(env, repo_root);
  const std::string hot_model = names.front();
  const std::string cold_model = names.back();

  ServerOptions options;
  options.coalesce_linger_ms = 100;  // Collapse the hot-key burst.
  ModelHubServer server(env, repo_root, options);
  Check(server.Start(), "server start");

  const int kClients = bench::QuickMode() ? 4 : 8;
  const int kRequestsPerClient = bench::QuickMode() ? 40 : 200;
  std::atomic<int> failed{0};
  std::vector<std::vector<double>> latencies_ms(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);

  Stopwatch wall;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = ModelHubClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failed.fetch_add(kRequestsPerClient);
        return;
      }
      latencies_ms[c].reserve(kRequestsPerClient);
      for (int i = 0; i < kRequestsPerClient; ++i) {
        Stopwatch request;
        bool ok = false;
        if (i % 8 == 0) {
          ok = client->Ping().ok();
        } else if (i % 8 == 1) {
          ok = client->GetSnapshot(cold_model).ok();
        } else {
          ok = client->GetSnapshot(hot_model).ok();  // The hot key.
        }
        latencies_ms[c].push_back(request.ElapsedMillis());
        if (!ok) failed.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall_ms = wall.ElapsedMillis();
  const uint64_t hits = server.coalesce_hits();
  const uint64_t misses = server.coalesce_misses();
  Check(server.Stop(), "server stop");

  std::vector<double> merged;
  for (const auto& per_client : latencies_ms) {
    merged.insert(merged.end(), per_client.begin(), per_client.end());
  }
  std::sort(merged.begin(), merged.end());
  const uint64_t total_requests = merged.size();
  const double throughput_rps =
      wall_ms > 0 ? 1000.0 * static_cast<double>(total_requests) / wall_ms
                  : 0.0;
  const double p50 = PercentileMs(&merged, 0.50);
  const double p99 = PercentileMs(&merged, 0.99);
  const double coalesce_ratio =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;

  std::printf("%d clients x %d requests: %llu total, %d failed\n", kClients,
              kRequestsPerClient,
              static_cast<unsigned long long>(total_requests), failed.load());
  std::printf("throughput %.1f req/s | p50 %.3fms p99 %.3fms | coalesce "
              "%llu hits / %llu misses (ratio %.2f)\n",
              throughput_rps, p50, p99,
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses), coalesce_ratio);
  if (failed.load() != 0) {
    std::fprintf(stderr, "FAILED: %d requests failed\n", failed.load());
    return 1;
  }

  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"bench\":\"serving\",\"clients\":%d,\"requests\":%llu,"
      "\"failed\":%d,\"throughput_rps\":%.1f,\"p50_ms\":%.3f,"
      "\"p99_ms\":%.3f,\"coalesce_hits\":%llu,\"coalesce_misses\":%llu,"
      "\"coalesce_ratio\":%.4f",
      kClients, static_cast<unsigned long long>(total_requests),
      failed.load(), throughput_rps, p50, p99,
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(misses), coalesce_ratio);
  std::string json = buffer;
  bench::AppendMetricsJson(&json);
  json += "}\n";
  const char* json_path = "BENCH_serving.json";
  Check(env->WriteFile(json_path, json), "write json");
  std::printf("wrote %s\n", json_path);
  return 0;
}

int RunFleet(Env* env) {
  const std::string work = "/tmp/mh_fleet_bench";
  const std::string repo_root = work + "/repo";
  RemoveTree(env, work);
  Check(env->CreateDirs(work), "workdir");
  const std::vector<std::string> names = SeedRepo(env, repo_root);
  const std::string hot_model = names.front();
  const std::string cold_model = names.back();

  // Every backend serves the same archived repository read-only, so any
  // shard can answer for any model; sharding here exercises placement
  // and failover, not data partitioning.
  const int kShards = bench::QuickMode() ? 2 : 3;
  const int kReplicas = 2;
  const int kBackends = kShards * kReplicas;
  std::vector<std::unique_ptr<ModelHubServer>> servers;
  std::vector<int> ports;
  FleetTopology topology;
  // Backends need headroom beyond the router's connection pool (the pool
  // holds up to 8 idle connections per backend, each pinning a backend
  // worker for its lifetime) or fresh router connections queue behind
  // pooled ones; coalescing mirrors the single-node configuration.
  ServerOptions backend_options;
  backend_options.num_workers = 24;
  backend_options.coalesce_linger_ms = 100;
  for (int s = 0; s < kShards; ++s) {
    FleetTopology::Shard shard;
    shard.name = "shard" + std::to_string(s);
    for (int r = 0; r < kReplicas; ++r) {
      auto server = std::make_unique<ModelHubServer>(env, repo_root,
                                                     backend_options);
      Check(server->Start(), "backend start");
      ports.push_back(server->port());
      shard.replicas.push_back(Endpoint{"127.0.0.1", server->port()});
      servers.push_back(std::move(server));
    }
    topology.shards.push_back(std::move(shard));
  }

  // The router serves one client connection per worker for the
  // connection's lifetime (same model as modelhubd), so its worker pool
  // must cover the client count; throughput here is closed-loop
  // (clients / per-request latency), and the extra hop roughly doubles
  // per-request latency versus single-node, so the fleet needs about
  // twice the clients to match the single-node baseline.
  const int kClients = bench::QuickMode() ? 6 : 16;
  RouterOptions router_options;
  router_options.num_workers = kClients + 8;
  router_options.probe_interval_ms = 100;
  router_options.failure_threshold = 2;
  router_options.breaker_open_ms = 300;
  router_options.max_attempts = 5;
  ModelHubRouter router(std::move(topology), router_options);
  Check(router.Start(), "router start");

  // The victim is the first replica of the shard the hot key hashes to —
  // the worst case: most traffic was flowing through that shard.
  const std::string& hot_shard = router.ShardForModel(hot_model);
  const int victim_shard =
      std::atoi(hot_shard.c_str() + std::strlen("shard"));
  const int victim = victim_shard * kReplicas;
  const int victim_port = ports[victim];

  const int kRunMs = bench::QuickMode() ? 1500 : 2500;
  const int kKillAtMs = bench::QuickMode() ? 300 : 500;
  const int kRestartAtMs = bench::QuickMode() ? 800 : 1200;

  std::atomic<bool> stop{false};
  std::atomic<int> failed{0};
  std::vector<std::vector<double>> latencies_ms(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);

  Stopwatch wall;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = ModelHubClient::Connect("127.0.0.1", router.port());
      if (!client.ok()) {
        failed.fetch_add(1);
        return;
      }
      // Operational mix, not the single-node hot-pull burst: health
      // pings (1/2), catalog listings that fan out to every shard (1/4),
      // and snapshot pulls (1/4, hot and cold keys alternating). The
      // single-node bench keeps the pure pull burst; through a router
      // every snapshot byte crosses the wire twice, so pull throughput
      // is bounded by the extra hop, while the routed mix shows the
      // fleet's aggregate request capacity.
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        Stopwatch request;
        bool ok = false;
        if (i % 8 == 2) {
          ok = client->GetSnapshot(hot_model).ok();  // The hot key.
        } else if (i % 8 == 6) {
          ok = client->GetSnapshot(cold_model).ok();
        } else if (i % 4 == 1) {
          ok = client->ListModels().ok();
        } else {
          ok = client->Ping().ok();
        }
        latencies_ms[c].push_back(request.ElapsedMillis());
        if (!ok) failed.fetch_add(1);
      }
    });
  }

  // Controller: kill the victim mid-run, restart it on the same port,
  // then time how long until the router re-admits it (half-open probe
  // success closes the breaker).
  double recovery_ms = -1.0;
  std::thread controller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(kKillAtMs));
    Check(servers[victim]->Stop(), "victim stop");
    std::this_thread::sleep_for(
        std::chrono::milliseconds(kRestartAtMs - kKillAtMs));
    ServerOptions revived_options;
    revived_options.port = victim_port;
    servers[victim] = std::make_unique<ModelHubServer>(env, repo_root,
                                                       revived_options);
    Check(servers[victim]->Start(), "victim restart");
    Stopwatch recovery;
    while (!router.AllBackendsHealthy() &&
           recovery.ElapsedMillis() < 10000.0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (router.AllBackendsHealthy()) recovery_ms = recovery.ElapsedMillis();
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(kRunMs));
  stop.store(true);
  for (auto& t : clients) t.join();
  const double wall_ms = wall.ElapsedMillis();
  controller.join();

  Check(router.Stop(), "router stop");
  for (auto& server : servers) Check(server->Stop(), "backend stop");

  std::vector<double> merged;
  for (const auto& per_client : latencies_ms) {
    merged.insert(merged.end(), per_client.begin(), per_client.end());
  }
  std::sort(merged.begin(), merged.end());
  const uint64_t total_requests = merged.size();
  const double throughput_rps =
      wall_ms > 0 ? 1000.0 * static_cast<double>(total_requests) / wall_ms
                  : 0.0;
  const double p50 = PercentileMs(&merged, 0.50);
  const double p99 = PercentileMs(&merged, 0.99);
  const double max_ms = merged.empty() ? 0.0 : merged.back();

  std::printf("%d shards x %d replicas, %d clients, %d ms run "
              "(victim %s killed at %d ms, restarted at %d ms)\n",
              kShards, kReplicas, kClients, kRunMs,
              ("127.0.0.1:" + std::to_string(victim_port)).c_str(),
              kKillAtMs, kRestartAtMs);
  std::printf("%llu requests, %d failed | throughput %.1f req/s | "
              "p50 %.3fms p99 %.3fms max %.3fms | recovery %.0f ms\n",
              static_cast<unsigned long long>(total_requests), failed.load(),
              throughput_rps, p50, p99, max_ms, recovery_ms);
  if (failed.load() != 0) {
    std::fprintf(stderr, "FAILED: %d requests failed through the router\n",
                 failed.load());
    return 1;
  }
  if (recovery_ms < 0) {
    std::fprintf(stderr,
                 "FAILED: fleet never recovered (breaker stayed open)\n");
    return 1;
  }

  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"bench\":\"fleet\",\"shards\":%d,\"replicas\":%d,\"clients\":%d,"
      "\"backends\":%d,\"requests\":%llu,\"failed\":%d,"
      "\"throughput_rps\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
      "\"max_ms\":%.3f,\"recovery_ms\":%.0f",
      kShards, kReplicas, kClients, kBackends,
      static_cast<unsigned long long>(total_requests), failed.load(),
      throughput_rps, p50, p99, max_ms, recovery_ms);
  std::string json = buffer;
  bench::AppendMetricsJson(&json);
  json += "}\n";
  const char* json_path = "BENCH_fleet.json";
  Check(env->WriteFile(json_path, json), "write json");
  std::printf("wrote %s\n", json_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool fleet = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fleet") == 0) {
      fleet = true;
    } else {
      std::fprintf(stderr, "usage: bench_serving [--fleet]\n");
      return 2;
    }
  }
  Env* env = Env::Default();
  return fleet ? RunFleet(env) : RunSingle(env);
}
