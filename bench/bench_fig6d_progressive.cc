// Fig 6(d) — "Progressive Evaluation Query Processing Using High-Order
// Bytes".
//
// The paper evaluates archived models on their test sets with partial
// (high-order byte) weights and reports, per model and top-k in {1, 5},
// the fraction of predictions that would be wrong (i.e., are undetermined
// and require lower-order bytes) against the fraction of data retrieved.
//
// We archive three trained models of different widths, run the
// perturbation-determination procedure at 1-byte and 2-byte prefixes, and
// report undetermined rates plus the end-to-end progressive bytes.
//
// Expected shape: with 2 of 4 bytes the undetermined rate is near zero;
// with 1 byte it grows but stays small; top-5 differs from top-1; the
// progressive evaluator reads well under half of the archive.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/env.h"
#include "pas/archive.h"
#include "nn/interval_eval.h"
#include "pas/progressive.h"

namespace {

using namespace modelhub;
using bench::Check;

struct ModelCase {
  const char* label;
  int64_t width;
  int64_t iterations;
};

}  // namespace

int main() {
  MemEnv env;
  const Dataset train = MakeGlyphDataset(
      {.num_samples = 400, .num_classes = 6, .image_size = 16, .seed = 61});
  const Dataset test = MakeGlyphDataset(
      {.num_samples = 96, .num_classes = 6, .image_size = 16, .seed = 62});

  const std::vector<ModelCase> cases = {
      {"mini-vgg-x1", 1, 200},
      {"mini-vgg-x2", 2, 160},
      {"mini-vgg-x3", 3, 120},
  };

  std::printf(
      "%-12s %5s | %11s %11s | %11s %11s | %9s %9s\n", "model", "acc",
      "top1@1B", "top1@2B", "top5@1B", "top5@2B", "bytes", "of full");
  for (const auto& model_case : cases) {
    bench::TrainedModel model =
        bench::TrainGlyphModel(train, 70 + model_case.width,
                               model_case.iterations, 0, nullptr,
                               model_case.width);
    const std::string dir = std::string("arch_") + model_case.label;
    ArchiveBuilder builder(&env, dir);
    Check(builder.AddSnapshot("latest", model.final_params), "add");
    Check(builder.Build(ArchiveOptions()).status(), "build");
    auto reader = ArchiveReader::Open(&env, dir);
    Check(reader.status(), "open");

    // Undetermined rate at fixed plane counts, per top-k.
    auto net = Network::Create(model.def);
    Check(net.status(), "net");
    Check(net->SetParameters(model.final_params), "params");
    IntervalEvaluator evaluator(&*net);
    double undetermined[2][2] = {{0, 0}, {0, 0}};  // [k][planes-1]
    for (int planes = 1; planes <= 2; ++planes) {
      auto bounds = reader->RetrieveSnapshotBounds("latest", planes);
      Check(bounds.status(), "bounds");
      auto intervals = evaluator.Forward(test.images, *bounds);
      Check(intervals.status(), "interval forward");
      for (const auto& row : *intervals) {
        if (IntervalEvaluator::DeterminedTopLabel(row) < 0) {
          undetermined[0][planes - 1] += 1;
        }
        if (!IntervalEvaluator::TopKDetermined(row, 5)) {
          undetermined[1][planes - 1] += 1;
        }
      }
    }
    const double n = static_cast<double>(test.images.n());

    // End-to-end progressive run (top-1).
    ProgressiveQueryEvaluator progressive(&*reader, model.def);
    ProgressiveOptions popt;
    popt.top_k = 1;
    auto result = progressive.Evaluate("latest", test.images, popt);
    Check(result.status(), "progressive");

    std::printf(
        "%-12s %4.0f%% | %10.1f%% %10.1f%% | %10.1f%% %10.1f%% | %9llu "
        "%8.1f%%\n",
        model_case.label, model.accuracy * 100,
        100.0 * undetermined[0][0] / n, 100.0 * undetermined[0][1] / n,
        100.0 * undetermined[1][0] / n, 100.0 * undetermined[1][1] / n,
        static_cast<unsigned long long>(result->bytes_read),
        100.0 * result->bytes_read / static_cast<double>(result->full_bytes));

    // The correctness guarantee behind the figure.
    auto exact = net->Predict(test.images);
    Check(exact.status(), "exact");
    bool all_match = *exact == result->labels;
    std::printf("%-12s       progressive labels == full precision: %s\n",
                "", all_match ? "PASS" : "FAIL");
  }
  std::printf(
      "\nshape check (paper Fig 6d): undetermined rates are small, shrink "
      "sharply from 1 to 2 bytes, and progressive evaluation reads a "
      "fraction of the archive while matching full-precision labels.\n");
  return 0;
}
