// Ablation — tiered storage (the paper's parallel remote-option edges).
//
// Sec. IV-C: "we may have one edge corresponding to a remote storage
// option, where the storage cost is lower and the recreation cost is
// higher ... our algorithms can thus automatically choose the appropriate
// storage option for different deltas." This ablation sweeps the
// per-snapshot recreation budget and reports how much of the archive the
// solver places on the (simulated) remote tier, together with the
// achieved cost-weighted storage.
//
// Expected shape: with loose budgets everything drifts remote (pure $
// minimization); tightening budgets pulls payloads back local; storage
// cost rises accordingly.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/env.h"
#include "data/synthetic_modeler.h"
#include "dlv/repository.h"
#include "pas/archive.h"

int main() {
  using namespace modelhub;
  using bench::Check;

  MemEnv env;
  auto repo = Repository::Init(&env, "sd");
  Check(repo.status(), "init");
  ModelerOptions modeler;
  modeler.num_versions = 5;
  modeler.snapshots_per_version = 4;
  modeler.train_iterations = 48;
  modeler.num_classes = 6;
  modeler.image_size = 16;
  modeler.dataset_samples = 192;
  auto names = RunSyntheticModeler(&*repo, modeler);
  Check(names.status(), "modeler");

  // Snapshot specs gathered once; archives rebuilt per budget.
  std::printf(
      "remote tier: storage x0.5, recreation x8; PAS-MT, independent "
      "scheme\n");
  std::printf("%10s %14s %14s %12s\n", "alpha", "remote frac",
              "storage cost", "feasible");
  int case_index = 0;
  for (const double alpha : {0.0, 1.05, 1.2, 1.5, 2.0, 4.0, 8.0}) {
    ArchiveBuilder builder(&env, "arch" + std::to_string(case_index++));
    for (const auto& name : *names) {
      auto count = repo->NumSnapshots(name);
      Check(count.status(), "count");
      std::string prev;
      for (int64_t s = 0; s < *count; ++s) {
        auto params = repo->GetSnapshotParams(name, s);
        Check(params.status(), "params");
        const std::string key = name + "/s" + std::to_string(s);
        Check(builder.AddSnapshot(key, *params), "add");
        if (!prev.empty()) Check(builder.AddDeltaCandidate(prev, key), "cand");
        prev = key;
      }
    }
    ArchiveOptions options;
    options.solver = ArchiveSolver::kPasMt;
    options.enable_remote_tier = true;
    options.remote_storage_discount = 0.5;
    options.remote_read_penalty = 8.0;
    options.budget_alpha = alpha;
    auto report = builder.Build(options);
    Check(report.status(), "build");
    if (alpha == 0.0) {
      std::printf("%10s %13.1f%% %14.0f %12s   (no budgets)\n", "-",
                  100.0 * report->remote_payloads / report->num_vertices,
                  report->storage_cost, "-");
    } else {
      std::printf("%10.2f %13.1f%% %14.0f %12s\n", alpha,
                  100.0 * report->remote_payloads / report->num_vertices,
                  report->storage_cost,
                  report->budgets_satisfied ? "yes" : "NO");
    }
  }
  std::printf(
      "\nexpected: remote fraction grows monotonically with alpha (100%% "
      "without budgets); storage cost falls as payloads go remote.\n");
  return 0;
}
