// Ablation — solver scalability on synthetic storage graphs (RD-style).
//
// The paper's RD repositories vary delta ratios, group sizes, and model
// counts to stress the archival algorithms. This ablation generates
// storage graphs directly (no training) across those axes and reports
// solver wall time and storage quality (Cs / MST) at a fixed alpha = 1.6,
// independent scheme.

#include <cstdio>
#include <vector>

#include "common/macros.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "pas/solver.h"
#include "pas/storage_graph.h"

namespace {

using namespace modelhub;

/// RD-style generator: `num_snapshots` co-usage groups of `group_size`
/// matrices; materialization edges cost ~100; chain delta edges cost
/// delta_ratio of that; a fraction of cross-chain edges adds choice.
MatrixStorageGraph MakeGraph(int num_snapshots, int group_size,
                             double delta_ratio, uint64_t seed) {
  MatrixStorageGraph graph;
  Rng rng(seed);
  std::vector<std::vector<int>> ids(static_cast<size_t>(num_snapshots));
  for (int s = 0; s < num_snapshots; ++s) {
    for (int g = 0; g < group_size; ++g) {
      const int v = graph.AddVertex("s" + std::to_string(s) + "/m" +
                                    std::to_string(g));
      ids[static_cast<size_t>(s)].push_back(v);
      const double cs = 90 + rng.NextDouble() * 20;
      MH_CHECK(graph.AddEdge(0, v, cs, cs * 0.5).ok());
      if (s > 0) {
        const int prev =
            ids[static_cast<size_t>(s - 1)][static_cast<size_t>(g)];
        const double dcs = cs * delta_ratio * (0.8 + 0.4 * rng.NextDouble());
        MH_CHECK(graph.AddEdge(prev, v, dcs, dcs * 0.5 + 8).ok());
      }
      if (s > 1 && rng.Bernoulli(0.3)) {
        const int far =
            ids[static_cast<size_t>(s - 2)][static_cast<size_t>(g)];
        const double dcs =
            cs * delta_ratio * 1.5 * (0.8 + 0.4 * rng.NextDouble());
        MH_CHECK(graph.AddEdge(far, v, dcs, dcs * 0.5 + 8).ok());
      }
    }
    MH_CHECK(graph.AddGroup("s" + std::to_string(s),
                            ids[static_cast<size_t>(s)], 0.0)
                 .ok());
  }
  return graph;
}

void RunCase(int num_snapshots, int group_size, double delta_ratio) {
  MatrixStorageGraph graph =
      MakeGraph(num_snapshots, group_size, delta_ratio, 7);
  auto spt = SolveSpt(graph);
  MH_CHECK(spt.ok());
  auto mst = SolveMst(graph);
  MH_CHECK(mst.ok());
  for (auto& group : *graph.mutable_groups()) {
    group.budget =
        1.6 * spt->GroupRecreationCost(group, RetrievalScheme::kIndependent);
  }
  Stopwatch mt_watch;
  auto mt = SolvePasMt(graph, RetrievalScheme::kIndependent);
  const double mt_ms = mt_watch.ElapsedMillis();
  MH_CHECK(mt.ok());
  Stopwatch pt_watch;
  auto pt = SolvePasPt(graph, RetrievalScheme::kIndependent);
  const double pt_ms = pt_watch.ElapsedMillis();
  MH_CHECK(pt.ok());
  std::printf(
      "%5d %6d %7.2f | %7d %7zu | %8.3f %8.1fms %s | %8.3f %8.1fms %s\n",
      num_snapshots, group_size, delta_ratio, graph.num_vertices() - 1,
      graph.edges().size(), mt->TotalStorageCost() / mst->TotalStorageCost(),
      mt_ms,
      mt->SatisfiesBudgets(RetrievalScheme::kIndependent) ? "ok " : "VIO",
      pt->TotalStorageCost() / mst->TotalStorageCost(), pt_ms,
      pt->SatisfiesBudgets(RetrievalScheme::kIndependent) ? "ok " : "VIO");
}

}  // namespace

int main() {
  std::printf("alpha = 1.6, independent scheme; Cs reported as x MST\n");
  std::printf("%5s %6s %7s | %7s %7s | %20s | %20s\n", "snaps", "group",
              "dratio", "verts", "edges", "PAS-MT (Cs, time)",
              "PAS-PT (Cs, time)");
  // Scale model count.
  for (int snapshots : {10, 20, 40, 80}) {
    RunCase(snapshots, 6, 0.15);
  }
  // Scale group size.
  for (int group : {3, 12, 24}) {
    RunCase(20, group, 0.15);
  }
  // Vary delta ratio (how much cheaper deltas are than materialization).
  for (double ratio : {0.05, 0.3, 0.6, 0.9}) {
    RunCase(20, 6, ratio);
  }
  std::printf(
      "\nexpected: both solvers stay feasible with Cs close to MST; "
      "runtime grows polynomially with graph size; high delta ratios "
      "shrink the MST advantage (deltas barely cheaper than "
      "materializing).\n");
  return 0;
}
