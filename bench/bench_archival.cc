// Archival write-pipeline benchmark: ingest MB/s of ArchiveBuilder::Build
// at 1 / 4 / 8 encode threads over one synthetic checkpoint chain, plus
// per-parameter encode latency percentiles and a byte-identity check of
// every parallel archive against the serial reference. Emits
// BENCH_archival.json.
//
// Speedup is reported against the measured serial wall time of the same
// corpus. `hardware_threads` is included so a reader can judge the
// numbers: on a single-core container the pipeline cannot beat serial no
// matter how many workers it spawns — the differential bit-identity
// result (and the property/robustness suites) carry the correctness
// claim, the speedup column is honest wall-clock on whatever hardware ran
// the bench.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/env.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "pas/archive.h"

namespace modelhub {
namespace {

struct Corpus {
  std::vector<std::string> names;
  std::vector<std::vector<NamedParam>> snapshots;
  uint64_t raw_bytes = 0;
};

Corpus MakeCorpus(int chain_len, int num_params, int64_t rows, int64_t cols) {
  Corpus corpus;
  Rng rng(42);
  std::vector<FloatMatrix> current(static_cast<size_t>(num_params));
  for (auto& m : current) {
    m = FloatMatrix(rows, cols);
    m.FillGaussian(&rng, 0.1f);
  }
  for (int s = 0; s < chain_len; ++s) {
    corpus.names.push_back("bench@" + std::to_string(s));
    std::vector<NamedParam> params;
    for (int p = 0; p < num_params; ++p) {
      if (s > 0) {
        for (auto& v : current[static_cast<size_t>(p)].data()) {
          v += static_cast<float>(rng.NextGaussian()) * 0.005f;
        }
      }
      params.push_back({"w" + std::to_string(p),
                        current[static_cast<size_t>(p)]});
      corpus.raw_bytes += static_cast<uint64_t>(rows) * cols * 4;
    }
    corpus.snapshots.push_back(std::move(params));
  }
  return corpus;
}

Result<ArchiveBuildReport> BuildArchive(Env* env, const std::string& dir,
                                        const Corpus& corpus, int threads) {
  ArchiveBuilder builder(env, dir);
  for (size_t s = 0; s < corpus.names.size(); ++s) {
    MH_RETURN_IF_ERROR(
        builder.AddSnapshot(corpus.names[s], corpus.snapshots[s]));
    if (s > 0) {
      MH_RETURN_IF_ERROR(builder.AddDeltaCandidate(corpus.names[s - 1],
                                                   corpus.names[s]));
    }
  }
  ArchiveOptions options;
  options.archive_threads = threads;
  return builder.Build(options);
}

/// Fine-tuned family: one base checkpoint plus `variants` descendants that
/// each mutate a single parameter sparsely and keep the rest frozen —
/// the cross-model sharing pattern the content-addressed chunk index is
/// built for. No lineage is declared, mirroring independently uploaded
/// fine-tunes.
Corpus MakeFamilyCorpus(int variants, int num_params, int64_t rows,
                        int64_t cols) {
  Corpus corpus;
  Rng rng(7);
  std::vector<FloatMatrix> base(static_cast<size_t>(num_params));
  for (auto& m : base) {
    m = FloatMatrix(rows, cols);
    m.FillGaussian(&rng, 0.1f);
  }
  auto add = [&](const std::string& name,
                 const std::vector<FloatMatrix>& params) {
    corpus.names.push_back(name);
    std::vector<NamedParam> named;
    for (int p = 0; p < num_params; ++p) {
      named.push_back({"w" + std::to_string(p),
                       params[static_cast<size_t>(p)]});
      corpus.raw_bytes += static_cast<uint64_t>(rows) * cols * 4;
    }
    corpus.snapshots.push_back(std::move(named));
  };
  add("family@base", base);
  for (int v = 0; v < variants; ++v) {
    std::vector<FloatMatrix> tuned = base;
    auto& head = tuned[static_cast<size_t>(v % num_params)].data();
    // Sparse head update: ~2% of the weights move, the rest stay frozen.
    for (size_t i = static_cast<size_t>(v); i < head.size(); i += 53) {
      head[i] += static_cast<float>(rng.NextGaussian()) * 0.02f;
    }
    add("family@ft" + std::to_string(v), tuned);
  }
  return corpus;
}

Result<ArchiveBuildReport> BuildFamilyArchive(Env* env,
                                              const std::string& dir,
                                              const Corpus& corpus,
                                              bool dedup) {
  ArchiveBuilder builder(env, dir);
  for (size_t s = 0; s < corpus.names.size(); ++s) {
    MH_RETURN_IF_ERROR(
        builder.AddSnapshot(corpus.names[s], corpus.snapshots[s]));
  }
  ArchiveOptions options;
  options.enable_dedup = dedup;
  // Hold the delta plan fixed on both sides: the ratio below then
  // isolates what the chunk index saves, not what pairing saves.
  options.enable_similarity_pairing = false;
  return builder.Build(options);
}

bool SameParams(const std::vector<NamedParam>& a,
                const std::vector<NamedParam>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].name != b[i].name) return false;
    const auto& da = a[i].value.data();
    const auto& db = b[i].value.data();
    if (da.size() != db.size()) return false;
    if (std::memcmp(da.data(), db.data(), da.size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

double PercentileMs(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

}  // namespace
}  // namespace modelhub

int main() {
  using namespace modelhub;
  const bool quick = bench::QuickMode();
  const Corpus corpus = quick ? MakeCorpus(3, 4, 64, 96)
                              : MakeCorpus(6, 8, 256, 384);
  const unsigned hardware = std::thread::hardware_concurrency();
  std::printf("archival bench: %zu snapshots x %zu params, %.2f MB raw, "
              "%u hardware threads\n",
              corpus.names.size(), corpus.snapshots[0].size(),
              static_cast<double>(corpus.raw_bytes) / 1e6, hardware);

  struct Row {
    int threads;
    double wall_ms = 0.0;
    double ingest_mbps = 0.0;
    double speedup = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    uint64_t stored_bytes = 0;
    int tiles = 0;
    double tile_p50_ms = 0.0;
    double tile_p99_ms = 0.0;
    double codec_p50_ms = 0.0;
    double codec_p99_ms = 0.0;
  };
  std::vector<Row> rows;
  std::map<std::string, std::string> reference_files;
  double serial_wall_ms = 0.0;
  bool bit_identical = true;

  for (const int threads : {1, 4, 8}) {
    MemEnv env;
    Stopwatch watch;
    auto report = BuildArchive(&env, "archive", corpus, threads);
    const double wall_ms = watch.ElapsedMillis();
    bench::Check(report.status(), "build");
    Row row;
    row.threads = threads;
    row.wall_ms = wall_ms;
    row.ingest_mbps = wall_ms > 0
        ? static_cast<double>(corpus.raw_bytes) / 1e6 / (wall_ms / 1000.0)
        : 0.0;
    if (threads == 1) serial_wall_ms = wall_ms;
    row.speedup = wall_ms > 0 ? serial_wall_ms / wall_ms : 0.0;
    row.p50_ms = PercentileMs(report->pipeline.job_encode_ms, 0.50);
    row.p99_ms = PercentileMs(report->pipeline.job_encode_ms, 0.99);
    row.stored_bytes = report->pipeline.compressed_bytes;
    row.tiles = report->pipeline.tiles;
    row.tile_p50_ms = PercentileMs(report->pipeline.tile_encode_ms, 0.50);
    row.tile_p99_ms = PercentileMs(report->pipeline.tile_encode_ms, 0.99);
    row.codec_p50_ms = PercentileMs(report->pipeline.plane_codec_ms, 0.50);
    row.codec_p99_ms = PercentileMs(report->pipeline.plane_codec_ms, 0.99);
    rows.push_back(row);

    // Differential check: every archive must be byte-identical to the
    // serial reference.
    auto names = env.ListDir("archive");
    bench::Check(names.status(), "list");
    std::map<std::string, std::string> files;
    for (const std::string& name : *names) {
      auto data = env.ReadFile(JoinPath("archive", name));
      bench::Check(data.status(), "read");
      files[name] = std::move(*data);
    }
    if (threads == 1) {
      reference_files = std::move(files);
    } else if (files != reference_files) {
      bit_identical = false;
      std::fprintf(stderr, "FAILED: threads=%d archive differs from serial\n",
                   threads);
    }

    std::printf(
        "threads=%d  wall %8.1f ms  ingest %7.2f MB/s  speedup %.2fx  "
        "encode p50 %.2f ms p99 %.2f ms  tiles %d (p50 %.3f p99 %.3f ms)  "
        "codec p50 %.3f p99 %.3f ms  stored %llu bytes\n",
        row.threads, row.wall_ms, row.ingest_mbps, row.speedup, row.p50_ms,
        row.p99_ms, row.tiles, row.tile_p50_ms, row.tile_p99_ms,
        row.codec_p50_ms, row.codec_p99_ms,
        static_cast<unsigned long long>(row.stored_bytes));
  }

  // Cross-model deduplication on a fine-tuned family: same corpus, same
  // delta plan, chunk index on vs off. The ratio is real bytes on disk.
  const Corpus family = quick ? MakeFamilyCorpus(8, 4, 64, 96)
                              : MakeFamilyCorpus(8, 6, 192, 256);
  uint64_t family_stored_on = 0;
  uint64_t family_stored_off = 0;
  uint64_t family_unique_chunks = 0;
  uint64_t family_plane_refs = 0;
  bool family_identical = true;
  {
    MemEnv env;
    bench::Check(
        BuildFamilyArchive(&env, "on", family, /*dedup=*/true).status(),
        "family dedup-on build");
    bench::Check(
        BuildFamilyArchive(&env, "off", family, /*dedup=*/false).status(),
        "family dedup-off build");
    auto on = ArchiveReader::Open(&env, "on");
    bench::Check(on.status(), "family dedup-on open");
    auto off = ArchiveReader::Open(&env, "off");
    bench::Check(off.status(), "family dedup-off open");
    family_stored_on = on->TotalStoredBytes();
    family_stored_off = off->TotalStoredBytes();
    const ArchiveDedupStats dedup = on->ComputeDedupStats();
    family_unique_chunks = dedup.unique_chunks;
    family_plane_refs = dedup.plane_refs;
    for (const std::string& name : family.names) {
      auto a = on->RetrieveSnapshot(name);
      auto b = off->RetrieveSnapshot(name);
      bench::Check(a.status(), "family retrieve dedup-on");
      bench::Check(b.status(), "family retrieve dedup-off");
      if (!SameParams(*a, *b)) {
        family_identical = false;
        std::fprintf(stderr, "FAILED: %s differs between dedup on/off\n",
                     name.c_str());
      }
    }
  }
  const double family_ratio =
      family_stored_on > 0
          ? static_cast<double>(family_stored_off) /
                static_cast<double>(family_stored_on)
          : 0.0;
  const double family_bytes_per_model =
      static_cast<double>(family_stored_on) /
      static_cast<double>(family.names.size());
  std::printf(
      "family: %zu models  dedup on %llu bytes, off %llu bytes  "
      "ratio %.2fx  %.0f bytes/model  %llu plane refs -> %llu unique "
      "chunks  retrieval %s\n",
      family.names.size(),
      static_cast<unsigned long long>(family_stored_on),
      static_cast<unsigned long long>(family_stored_off), family_ratio,
      family_bytes_per_model,
      static_cast<unsigned long long>(family_plane_refs),
      static_cast<unsigned long long>(family_unique_chunks),
      family_identical ? "identical" : "DIFFERS");

  std::string json = "{\"bench\":\"archival\",\"raw_bytes\":" +
                     std::to_string(corpus.raw_bytes) +
                     ",\"hardware_threads\":" + std::to_string(hardware) +
                     ",\"bit_identical\":" +
                     (bit_identical ? "true" : "false") + ",\"runs\":[";
  for (size_t i = 0; i < rows.size(); ++i) {
    char buffer[384];
    std::snprintf(buffer, sizeof(buffer),
                  "%s{\"threads\":%d,\"wall_ms\":%.1f,\"ingest_mbps\":%.2f,"
                  "\"speedup_vs_serial\":%.3f,\"encode_p50_ms\":%.3f,"
                  "\"encode_p99_ms\":%.3f,\"tiles\":%d,"
                  "\"tile_p50_ms\":%.4f,\"tile_p99_ms\":%.4f,"
                  "\"codec_p50_ms\":%.4f,\"codec_p99_ms\":%.4f,"
                  "\"stored_bytes\":%llu}",
                  i == 0 ? "" : ",", rows[i].threads, rows[i].wall_ms,
                  rows[i].ingest_mbps, rows[i].speedup, rows[i].p50_ms,
                  rows[i].p99_ms, rows[i].tiles, rows[i].tile_p50_ms,
                  rows[i].tile_p99_ms, rows[i].codec_p50_ms,
                  rows[i].codec_p99_ms,
                  static_cast<unsigned long long>(rows[i].stored_bytes));
    json += buffer;
  }
  json += "]";
  {
    char buffer[512];
    std::snprintf(
        buffer, sizeof(buffer),
        ",\"family\":{\"models\":%zu,\"raw_bytes\":%llu,"
        "\"stored_bytes_dedup_on\":%llu,\"stored_bytes_dedup_off\":%llu,"
        "\"dedup_ratio\":%.3f,\"bytes_per_model\":%.1f,"
        "\"plane_refs\":%llu,\"unique_chunks\":%llu,"
        "\"identical_retrieval\":%s}",
        family.names.size(),
        static_cast<unsigned long long>(family.raw_bytes),
        static_cast<unsigned long long>(family_stored_on),
        static_cast<unsigned long long>(family_stored_off), family_ratio,
        family_bytes_per_model,
        static_cast<unsigned long long>(family_plane_refs),
        static_cast<unsigned long long>(family_unique_chunks),
        family_identical ? "true" : "false");
    json += buffer;
  }
  bench::AppendMetricsJson(&json);
  json += "}\n";
  const char* json_path = "BENCH_archival.json";
  bench::Check(Env::Default()->WriteFile(json_path, json), "write json");
  std::printf("wrote %s\n", json_path);
  return bit_identical && family_identical ? 0 : 1;
}
