#ifndef MODELHUB_BENCH_BENCH_UTIL_H_
#define MODELHUB_BENCH_BENCH_UTIL_H_

// Shared helpers for the per-table/figure benchmark binaries. Each binary
// regenerates one table or figure of the paper's evaluation (Sec. V) at
// laptop scale; see DESIGN.md section 2 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured notes.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/slice.h"
#include "common/status.h"
#include "compress/codec.h"
#include "data/dataset.h"
#include "nn/network.h"
#include "nn/trainer.h"
#include "nn/zoo.h"
#include "pas/segment.h"

namespace modelhub {
namespace bench {

inline void Check(const Status& status, const char* step) {
  if (!status.ok()) {
    std::fprintf(stderr, "[%s] %s\n", step, status.ToString().c_str());
    std::exit(1);
  }
}

/// True when MH_BENCH_QUICK is set in the environment: benches shrink
/// their workload so CI can smoke-test the full pipeline in seconds.
inline bool QuickMode() {
  const char* quick = std::getenv("MH_BENCH_QUICK");
  return quick != nullptr && quick[0] != '\0' && quick[0] != '0';
}

/// Appends `,"metrics":{...}` — a snapshot of the process-wide metrics
/// registry — to a JSON report under construction (call just before the
/// closing brace). Every bench embeds this so a perf regression can be
/// traced to the subsystem counters recorded while it ran.
inline void AppendMetricsJson(std::string* json) {
  *json += ",\"metrics\":";
  *json += MetricRegistry::Global()->Snapshot().ToJson();
}

/// Total size of a parameter set in raw float32 bytes.
inline uint64_t RawBytes(const std::vector<NamedParam>& params) {
  uint64_t total = 0;
  for (const auto& param : params) {
    total += static_cast<uint64_t>(param.value.size()) * 4;
  }
  return total;
}

/// PAS storage footprint of a parameter set: bytewise-segmented, each
/// plane compressed with `codec`.
inline uint64_t SegmentedCompressedBytes(
    const std::vector<NamedParam>& params,
    CodecType codec = CodecType::kDeflateLite) {
  uint64_t total = 0;
  for (const auto& param : params) {
    const auto planes = SegmentFloats(param.value);
    for (const auto& plane : planes) {
      total += CompressedSize(codec, Slice(plane));
    }
  }
  return total;
}

/// Non-segmented compressed footprint (whole matrix bytes through the
/// codec) — the "Lossless" rows of Table IV.
inline uint64_t WholeCompressedBytes(
    const std::vector<NamedParam>& params,
    CodecType codec = CodecType::kDeflateLite) {
  uint64_t total = 0;
  for (const auto& param : params) {
    total += CompressedSize(codec, Slice(param.value.ToBytes()));
  }
  return total;
}

/// One trained model: its definition, final accuracy and snapshot series.
struct TrainedModel {
  NetworkDef def;
  double accuracy = 0.0;
  std::vector<TrainSnapshot> snapshots;
  std::vector<NamedParam> final_params;
};

/// Trains a MiniVgg on a glyph task; `warm` (optional) fine-tunes from
/// existing parameters with a low learning rate.
inline TrainedModel TrainGlyphModel(
    const Dataset& data, uint64_t seed, int64_t iterations = 120,
    int64_t snapshot_every = 40,
    const std::vector<NamedParam>* warm = nullptr,
    int64_t width_multiple = 1) {
  TrainedModel out;
  out.def = MiniVgg(data.num_classes, data.images.h(), width_multiple);
  auto net = Network::Create(out.def);
  Check(net.status(), "create network");
  Rng rng(seed);
  net->InitializeWeights(&rng);
  TrainOptions options;
  options.iterations = iterations;
  options.batch_size = 24;
  options.snapshot_every = snapshot_every;
  options.log_every = 0;
  options.seed = seed;
  if (warm != nullptr) {
    Check(net->SetParameters(*warm), "warm start");
    options.base_learning_rate = 0.01f;
  }
  auto trained = TrainNetwork(&*net, data, options);
  Check(trained.status(), "train");
  out.accuracy = trained->final_accuracy;
  out.snapshots = std::move(trained->snapshots);
  out.final_params = net->GetParameters();
  return out;
}

}  // namespace bench
}  // namespace modelhub

#endif  // MODELHUB_BENCH_BENCH_UTIL_H_
