// Table V — "Recreation Performance Comparison of Storage Plans".
//
// The paper measures average snapshot recreation time for three storage
// plans — full materialization (SPT), minimum storage (MST), and a
// moderate PAS plan (alpha = 1.6) — under full retrieval and partial
// retrieval (2 bytes / 1 byte per float), for the independent and parallel
// schemes. We build the same three archives from an SD-mini repository and
// time actual snapshot retrievals from disk.
//
// Parallel retrieval on this single-core harness is modeled as the paper's
// cost semantics dictate: max over per-matrix retrieval times (each matrix
// fetched independently on its own thread in the paper's setup).
//
// Expected shape: materialization retrieves fastest at the largest
// footprint; min-storage is smallest but slowest (delta chains); PAS sits
// between; partial retrieval of high-order bytes is several times faster
// than any full retrieval.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "common/env.h"
#include "common/stopwatch.h"
#include "data/synthetic_modeler.h"
#include "dlv/repository.h"
#include "pas/archive.h"

namespace {

using namespace modelhub;
using bench::Check;

struct Timing {
  double independent_ms = 0.0;
  double parallel_ms = 0.0;
  double threaded_ms = 0.0;  ///< Wall time of real pool-based retrieval.
};

/// Times full-precision retrieval of every snapshot: independent = sum of
/// per-matrix times, parallel = max per-matrix time, averaged per snapshot.
Timing TimeFullRetrieval(const ArchiveReader& reader) {
  Timing out;
  int snapshots = 0;
  for (const auto& snapshot : reader.snapshot_names()) {
    auto params = reader.ParamNames(snapshot);
    Check(params.status(), "param names");
    double sum = 0.0;
    double max_time = 0.0;
    for (const auto& param : *params) {
      Stopwatch watch;
      auto matrix = reader.RetrieveMatrix(snapshot, param);
      Check(matrix.status(), "retrieve");
      const double ms = watch.ElapsedMillis();
      sum += ms;
      max_time = std::max(max_time, ms);
    }
    out.independent_ms += sum;
    out.parallel_ms += max_time;
    // Real threaded retrieval (wall time). On a single-core host this
    // tracks the independent time; with cores it approaches the max.
    static ThreadPool pool(4);
    Stopwatch threaded_watch;
    auto parallel = reader.RetrieveSnapshotParallel(snapshot, &pool);
    Check(parallel.status(), "parallel retrieve");
    out.threaded_ms += threaded_watch.ElapsedMillis();
    ++snapshots;
  }
  out.independent_ms /= snapshots;
  out.parallel_ms /= snapshots;
  out.threaded_ms /= snapshots;
  return out;
}

/// Times partial retrieval (first `planes` byte planes) per snapshot.
/// Partial bounds share delta-chain work across the snapshot, so the
/// independent number is the whole-call time; parallel is approximated by
/// call time divided by matrix count (perfectly parallel plane fetches).
Timing TimePartialRetrieval(const ArchiveReader& reader, int planes) {
  Timing out;
  int snapshots = 0;
  for (const auto& snapshot : reader.snapshot_names()) {
    Stopwatch watch;
    auto bounds = reader.RetrieveSnapshotBounds(snapshot, planes);
    Check(bounds.status(), "bounds");
    const double ms = watch.ElapsedMillis();
    out.independent_ms += ms;
    out.parallel_ms += ms / static_cast<double>(bounds->size());
    ++snapshots;
  }
  out.independent_ms /= snapshots;
  out.parallel_ms /= snapshots;
  return out;
}

}  // namespace

int main() {
  Env* env = Env::Default();
  const std::string work = "/tmp/mh_table5_bench";
  (void)env->CreateDirs(work);

  MemEnv repo_env;
  auto repo = Repository::Init(&repo_env, "sd");
  Check(repo.status(), "init");
  ModelerOptions modeler;
  modeler.num_versions = 6;
  modeler.snapshots_per_version = 4;
  modeler.train_iterations = 48;
  modeler.num_classes = 6;
  modeler.image_size = 16;
  modeler.dataset_samples = 192;
  auto names = RunSyntheticModeler(&*repo, modeler);
  Check(names.status(), "modeler");

  struct PlanCase {
    const char* label;
    ArchiveOptions options;
  };
  std::vector<PlanCase> cases;
  {
    PlanCase materialization{"materialization (SPT)", {}};
    materialization.options.solver = ArchiveSolver::kSpt;
    cases.push_back(materialization);
    PlanCase min_storage{"min storage (MST)", {}};
    min_storage.options.solver = ArchiveSolver::kMst;
    cases.push_back(min_storage);
    PlanCase pas{"PAS (alpha=1.6)", {}};
    pas.options.solver = ArchiveSolver::kPasPt;
    pas.options.budget_alpha = 1.6;
    cases.push_back(pas);
  }

  std::printf("%-22s %12s | %9s %9s %9s | %9s %9s | %9s %9s\n", "plan",
              "bytes", "full ind", "full par", "full thr", "2B ind", "2B par",
              "1B ind", "1B par");
  for (size_t c = 0; c < cases.size(); ++c) {
    // Rebuild the archive under this plan. Each case gets its own dir.
    const std::string dir = work + "/plan" + std::to_string(c);
    ArchiveBuilder builder(env, dir);
    for (const auto& name : *names) {
      auto count = repo->NumSnapshots(name);
      Check(count.status(), "count");
      std::string prev;
      for (int64_t s = 0; s < *count; ++s) {
        auto params = repo->GetSnapshotParams(name, s);
        Check(params.status(), "params");
        const std::string key = name + "/s" + std::to_string(s);
        Check(builder.AddSnapshot(key, *params), "add snapshot");
        if (!prev.empty()) Check(builder.AddDeltaCandidate(prev, key), "cand");
        prev = key;
      }
    }
    auto report = builder.Build(cases[c].options);
    Check(report.status(), "build");
    auto reader = ArchiveReader::Open(env, dir);
    Check(reader.status(), "open");

    const Timing full = TimeFullRetrieval(*reader);
    const Timing two_bytes = TimePartialRetrieval(*reader, 2);
    const Timing one_byte = TimePartialRetrieval(*reader, 1);
    std::printf(
        "%-22s %12llu | %8.2fms %8.2fms %8.2fms | %8.2fms %8.2fms | "
        "%8.2fms %8.2fms\n",
        cases[c].label,
        static_cast<unsigned long long>(reader->TotalStoredBytes()),
        full.independent_ms, full.parallel_ms, full.threaded_ms,
        two_bytes.independent_ms, two_bytes.parallel_ms,
        one_byte.independent_ms, one_byte.parallel_ms);
  }
  std::printf(
      "\nshape check (paper Table V): materialization fastest/largest, "
      "min-storage smallest/slowest, PAS in between; 2-byte and 1-byte "
      "partial reads beat full retrieval.\n");
  return 0;
}
