// Table V — "Recreation Performance Comparison of Storage Plans".
//
// The paper measures average snapshot recreation time for three storage
// plans — full materialization (SPT), minimum storage (MST), and a
// moderate PAS plan (alpha = 1.6) — under full retrieval and partial
// retrieval (2 bytes / 1 byte per float), for the independent, parallel
// and computation-sharing schemes of Table III. We build the same three
// archives from an SD-mini repository and time actual snapshot
// retrievals from disk, using the per-call RetrievalStats so bytes and
// chunk fetches per scheme are measured rather than modeled.
//
// Beyond the paper's per-snapshot rows, the bench also times a
// "checkout" of every snapshot in one batch — the workload where the
// computation-sharing scheduler decodes each shared delta-chain prefix
// once instead of once per descendant matrix.
//
// Emits BENCH_retrieval.json (per-plan, per-scheme latency + bytes +
// fetches) so the retrieval perf trajectory is tracked across PRs.
//
// Expected shape: materialization retrieves fastest at the largest
// footprint; min-storage is smallest but slowest (delta chains); PAS sits
// between; partial retrieval of high-order bytes is several times faster
// than any full retrieval; shared checkout fetches strictly fewer chunks
// than independent checkout on delta-chained plans.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/env.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "data/synthetic_modeler.h"
#include "dlv/repository.h"
#include "pas/archive.h"

namespace {

using namespace modelhub;
using bench::Check;

/// Accumulated per-scheme measurements (averaged per snapshot on print).
struct SchemeTotals {
  double ms = 0.0;
  uint64_t bytes = 0;
  uint64_t fetches = 0;

  void Accumulate(const RetrievalStats& stats) {
    ms += stats.wall_ms;
    bytes += stats.bytes_read;
    fetches += stats.chunk_fetches;
  }
};

struct PlanMeasurement {
  std::string label;
  uint64_t stored_bytes = 0;
  int snapshots = 0;
  SchemeTotals sequential;   ///< Reusable scheme: one memo per call.
  SchemeTotals independent;  ///< One private chain per matrix, on a pool.
  SchemeTotals shared;       ///< Computation-sharing vertex scheduler.
  SchemeTotals checkout_independent;  ///< All snapshots in one batch.
  SchemeTotals checkout_shared;
  double partial2_ms = 0.0;
  double partial1_ms = 0.0;
};

void AppendSchemeJson(std::string* out, const char* name,
                      const SchemeTotals& totals, int divisor) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "\"%s\":{\"ms\":%.3f,\"bytes\":%llu,\"chunk_fetches\":%llu}",
                name, totals.ms / divisor,
                static_cast<unsigned long long>(totals.bytes),
                static_cast<unsigned long long>(totals.fetches));
  out->append(buffer);
}

}  // namespace

int main() {
  Env* env = Env::Default();
  const std::string work = "/tmp/mh_table5_bench";
  (void)env->CreateDirs(work);

  MemEnv repo_env;
  auto repo = Repository::Init(&repo_env, "sd");
  Check(repo.status(), "init");
  ModelerOptions modeler;
  modeler.num_versions = 6;
  modeler.snapshots_per_version = 4;
  modeler.train_iterations = 48;
  modeler.num_classes = 6;
  modeler.image_size = 16;
  modeler.dataset_samples = 192;
  if (bench::QuickMode()) {
    modeler.num_versions = 2;
    modeler.snapshots_per_version = 2;
    modeler.train_iterations = 8;
    modeler.dataset_samples = 64;
  }
  auto names = RunSyntheticModeler(&*repo, modeler);
  Check(names.status(), "modeler");

  struct PlanCase {
    const char* label;
    ArchiveOptions options;
  };
  std::vector<PlanCase> cases;
  {
    PlanCase materialization{"materialization (SPT)", {}};
    materialization.options.solver = ArchiveSolver::kSpt;
    cases.push_back(materialization);
    PlanCase min_storage{"min storage (MST)", {}};
    min_storage.options.solver = ArchiveSolver::kMst;
    cases.push_back(min_storage);
    PlanCase pas{"PAS (alpha=1.6)", {}};
    pas.options.solver = ArchiveSolver::kPasPt;
    pas.options.budget_alpha = 1.6;
    cases.push_back(pas);
  }

  ThreadPool pool(4);
  std::vector<PlanMeasurement> measurements;
  for (size_t c = 0; c < cases.size(); ++c) {
    // Rebuild the archive under this plan. Each case gets its own dir.
    const std::string dir = work + "/plan" + std::to_string(c);
    ArchiveBuilder builder(env, dir);
    for (const auto& name : *names) {
      auto count = repo->NumSnapshots(name);
      Check(count.status(), "count");
      std::string prev;
      for (int64_t s = 0; s < *count; ++s) {
        auto params = repo->GetSnapshotParams(name, s);
        Check(params.status(), "params");
        const std::string key = name + "/s" + std::to_string(s);
        Check(builder.AddSnapshot(key, *params), "add snapshot");
        if (!prev.empty()) Check(builder.AddDeltaCandidate(prev, key), "cand");
        prev = key;
      }
    }
    auto report = builder.Build(cases[c].options);
    Check(report.status(), "build");
    auto reader = ArchiveReader::Open(env, dir);
    Check(reader.status(), "open");

    PlanMeasurement plan;
    plan.label = cases[c].label;
    plan.stored_bytes = reader->TotalStoredBytes();
    RetrievalStats stats;
    for (const auto& snapshot : reader->snapshot_names()) {
      Check(reader->RetrieveSnapshot(snapshot, &stats).status(), "sequential");
      plan.sequential.Accumulate(stats);
      Check(reader
                ->RetrieveSnapshotsParallel({snapshot}, &pool,
                                            ParallelScheme::kIndependent,
                                            &stats)
                .status(),
            "independent");
      plan.independent.Accumulate(stats);
      Check(reader->RetrieveSnapshotParallel(snapshot, &pool, &stats).status(),
            "shared");
      plan.shared.Accumulate(stats);
      ++plan.snapshots;
    }
    // Whole-archive checkout: the multi-snapshot batch where shared
    // delta-chain prefixes exist (adjacent checkpoints chain off each
    // other), so the scheduler's sharing is visible in fetch counts.
    Check(reader
              ->RetrieveSnapshotsParallel(reader->snapshot_names(), &pool,
                                          ParallelScheme::kIndependent, &stats)
              .status(),
          "checkout independent");
    plan.checkout_independent.Accumulate(stats);
    Check(reader
              ->RetrieveSnapshotsParallel(reader->snapshot_names(), &pool,
                                          ParallelScheme::kShared, &stats)
              .status(),
          "checkout shared");
    plan.checkout_shared.Accumulate(stats);
    // Partial retrieval (first k byte planes) per snapshot.
    for (const auto& snapshot : reader->snapshot_names()) {
      Stopwatch watch;
      Check(reader->RetrieveSnapshotBounds(snapshot, 2).status(), "bounds2");
      plan.partial2_ms += watch.ElapsedMillis();
      watch.Restart();
      Check(reader->RetrieveSnapshotBounds(snapshot, 1).status(), "bounds1");
      plan.partial1_ms += watch.ElapsedMillis();
    }
    measurements.push_back(plan);
  }

  std::printf("%-22s %12s | %9s %9s %9s | %12s %12s | %9s %9s\n", "plan",
              "bytes", "seq", "indep", "shared", "checkout-ind",
              "checkout-shr", "2B", "1B");
  for (const auto& plan : measurements) {
    std::printf(
        "%-22s %12llu | %8.2fms %8.2fms %8.2fms | %7.2fms/%4llu "
        "%7.2fms/%4llu | %8.2fms %8.2fms\n",
        plan.label.c_str(), static_cast<unsigned long long>(plan.stored_bytes),
        plan.sequential.ms / plan.snapshots,
        plan.independent.ms / plan.snapshots, plan.shared.ms / plan.snapshots,
        plan.checkout_independent.ms,
        static_cast<unsigned long long>(plan.checkout_independent.fetches),
        plan.checkout_shared.ms,
        static_cast<unsigned long long>(plan.checkout_shared.fetches),
        plan.partial2_ms / plan.snapshots, plan.partial1_ms / plan.snapshots);
  }
  std::printf(
      "\nshape check (paper Table V): materialization fastest/largest, "
      "min-storage smallest/slowest, PAS in between; 2-byte and 1-byte "
      "partial reads beat full retrieval; checkout-shared fetches <= "
      "checkout-independent fetches, strictly fewer on delta plans.\n");

  // --- BENCH_retrieval.json: the perf trajectory artifact.
  std::string json = "{\"bench\":\"table5_retrieval\",\"plans\":[";
  for (size_t i = 0; i < measurements.size(); ++i) {
    const PlanMeasurement& plan = measurements[i];
    if (i > 0) json.push_back(',');
    json += "{\"plan\":\"" + plan.label + "\",\"stored_bytes\":" +
            std::to_string(plan.stored_bytes) + ",\"per_snapshot\":{";
    AppendSchemeJson(&json, "sequential", plan.sequential, plan.snapshots);
    json.push_back(',');
    AppendSchemeJson(&json, "independent", plan.independent, plan.snapshots);
    json.push_back(',');
    AppendSchemeJson(&json, "shared", plan.shared, plan.snapshots);
    json += "},\"checkout_all\":{";
    AppendSchemeJson(&json, "independent", plan.checkout_independent, 1);
    json.push_back(',');
    AppendSchemeJson(&json, "shared", plan.checkout_shared, 1);
    char partial[128];
    std::snprintf(partial, sizeof(partial),
                  "},\"partial_ms\":{\"planes2\":%.3f,\"planes1\":%.3f}}",
                  plan.partial2_ms / plan.snapshots,
                  plan.partial1_ms / plan.snapshots);
    json += partial;
  }
  json += "]";
  bench::AppendMetricsJson(&json);
  json += "}\n";
  const char* json_path = "BENCH_retrieval.json";
  Check(env->WriteFile(json_path, json), "write json");
  std::printf("wrote %s\n", json_path);
  return 0;
}
