// Fig 6(b) — "Compression Performance for Different Delta Schemes &
// Models".
//
// Three workload regimes, as in the paper:
//   Similar    — same architecture retrained from different seeds
//                (CNN-S/M/F vs VGG-16 in the paper);
//   Fine-tune  — a model fine-tuned from another's weights
//                (VGG-16 -> VGG-Salient);
//   Snapshots  — adjacent checkpoints of one training run.
//
// For each regime we compare Materialize vs Delta-SUB vs Delta-XOR. The
// paper's figure compresses whole float32 matrices (zlib, lossless); we do
// the same with deflate-lite, and also report PAS's segmented layout.
// Expected shape (paper): for Similar, materializing wins (deltas don't
// help — non-convexity); for Fine-tune and Snapshots, deltas win. The
// paper found SUB <= XOR under whole-matrix zlib; under the *segmented*
// layout XOR can win because matching high bytes cancel to zero runs —
// both columns are printed so the effect is visible.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "pas/delta.h"

namespace {

using modelhub::DeltaKind;
using modelhub::NamedParam;

// Compressed size of the (per-matrix) delta between two parameter sets,
// or of the target itself for kMaterialized. `segmented` toggles PAS's
// byte-plane layout vs whole-matrix compression (the figure's setting).
uint64_t DeltaBytes(const std::vector<NamedParam>& target,
                    const std::vector<NamedParam>& base, DeltaKind kind,
                    bool segmented) {
  std::vector<NamedParam> payload;
  for (size_t i = 0; i < target.size(); ++i) {
    auto delta = modelhub::ComputeDelta(target[i].value, base[i].value, kind);
    modelhub::bench::Check(delta.status(), "delta");
    payload.push_back({target[i].name, std::move(*delta)});
  }
  return segmented ? modelhub::bench::SegmentedCompressedBytes(payload)
                   : modelhub::bench::WholeCompressedBytes(payload);
}

void PrintRegime(const char* label, const std::vector<NamedParam>& target,
                 const std::vector<NamedParam>& base, bool segmented) {
  const uint64_t raw = modelhub::bench::RawBytes(target);
  const uint64_t materialize =
      DeltaBytes(target, base, DeltaKind::kMaterialized, segmented);
  const uint64_t sub = DeltaBytes(target, base, DeltaKind::kSub, segmented);
  const uint64_t x = DeltaBytes(target, base, DeltaKind::kXor, segmented);
  // A delta only "wins" if it saves meaningfully (> 2%); otherwise the
  // verdict is materialize, matching how the paper reads its bars.
  const uint64_t best_delta = std::min(sub, x);
  const char* verdict =
      best_delta * 100 >= materialize * 98 ? "materialize (deltas don't help)"
      : (sub <= x)                         ? "delta-sub"
                                           : "delta-xor";
  std::printf("%-12s %12.1f%% %12.1f%% %12.1f%%   best: %s\n", label,
              100.0 * materialize / raw, 100.0 * sub / raw, 100.0 * x / raw,
              verdict);
}

}  // namespace

int main() {
  using namespace modelhub;

  const Dataset data = MakeGlyphDataset(
      {.num_samples = 320, .num_classes = 6, .image_size = 16, .seed = 41});

  // Regime 1: Similar — retrained with different seeds.
  bench::TrainedModel run_a = bench::TrainGlyphModel(data, 100, 150);
  bench::TrainedModel run_b = bench::TrainGlyphModel(data, 200, 150);

  // Regime 2: Fine-tune — warm start from run_a's final weights on a
  // shifted task.
  const Dataset shifted = MakeGlyphDataset(
      {.num_samples = 320, .num_classes = 6, .image_size = 16, .seed = 42});
  bench::TrainedModel finetuned = bench::TrainGlyphModel(
      shifted, 300, 60, 60, &run_a.final_params);

  // Regime 3: Snapshots — adjacent checkpoints of run_a.
  const auto& snapshots = run_a.snapshots;
  bench::Check(snapshots.size() >= 2
                   ? Status::OK()
                   : Status::Internal("need >= 2 snapshots"),
               "snapshots");

  std::printf(
      "whole-matrix deflate-lite (the paper's Fig 6b setting), %% of raw:\n");
  std::printf("%-12s %13s %13s %13s\n", "regime", "materialize", "delta-sub",
              "delta-xor");
  PrintRegime("similar", run_b.final_params, run_a.final_params, false);
  PrintRegime("fine-tune", finetuned.final_params, run_a.final_params, false);
  PrintRegime("snapshots", snapshots.back().params,
              snapshots[snapshots.size() - 2].params, false);

  std::printf("\nPAS segmented layout (byte planes compressed separately):\n");
  PrintRegime("similar", run_b.final_params, run_a.final_params, true);
  PrintRegime("fine-tune", finetuned.final_params, run_a.final_params, true);
  PrintRegime("snapshots", snapshots.back().params,
              snapshots[snapshots.size() - 2].params, true);

  std::printf(
      "\nshape check (paper): 'similar' should NOT benefit from deltas; "
      "'fine-tune' and 'snapshots' should benefit clearly.\n");
  return 0;
}
