// Ablation — codec choice per byte plane.
//
// DESIGN.md calls out the codec as a design choice: PAS compresses each
// byte plane independently, and the planes have very different entropy.
// This ablation measures, per plane of real trained weights and per codec
// (RLE / Huffman / deflate-lite), the compression ratio and throughput,
// plus the same for SUB-delta planes between adjacent checkpoints. It
// justifies deflate-lite as the default and quantifies what a cheaper
// codec would give up.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "pas/delta.h"

namespace {

using namespace modelhub;
using bench::Check;

void MeasurePlane(const char* label, const std::string& plane) {
  std::printf("  %-10s", label);
  for (CodecType codec : {CodecType::kRle, CodecType::kHuffman,
                          CodecType::kDeflateLite}) {
    std::string compressed;
    Stopwatch watch;
    int reps = 0;
    // Repeat until ~20ms elapsed for a stable throughput figure.
    do {
      Check(Codec::Get(codec)->Compress(Slice(plane), &compressed),
            "compress");
      ++reps;
    } while (watch.ElapsedMillis() < 20.0);
    const double seconds = watch.ElapsedSeconds() / reps;
    const double mbps =
        static_cast<double>(plane.size()) / (1024.0 * 1024.0) / seconds;
    std::printf("  %6.2fx %7.1fMB/s",
                static_cast<double>(plane.size()) /
                    static_cast<double>(compressed.size()),
                mbps);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const Dataset data = MakeGlyphDataset(
      {.num_samples = 320, .num_classes = 6, .image_size = 16, .seed = 81});
  bench::TrainedModel model =
      bench::TrainGlyphModel(data, 5, 120, 40, nullptr, /*width=*/4);

  // Concatenate plane bytes across all matrices of the final snapshot.
  std::string planes[kNumPlanes];
  for (const auto& param : model.final_params) {
    const auto segmented = SegmentFloats(param.value);
    for (int p = 0; p < kNumPlanes; ++p) planes[p] += segmented[p];
  }
  // SUB-delta planes between the last two checkpoints.
  std::string delta_planes[kNumPlanes];
  const auto& last = model.snapshots.back().params;
  const auto& prev = model.snapshots[model.snapshots.size() - 2].params;
  for (size_t i = 0; i < last.size(); ++i) {
    auto delta = ComputeDelta(last[i].value, prev[i].value, DeltaKind::kSub);
    Check(delta.status(), "delta");
    const auto segmented = SegmentFloats(*delta);
    for (int p = 0; p < kNumPlanes; ++p) delta_planes[p] += segmented[p];
  }

  std::printf("per-plane codec ablation (%zu bytes per plane)\n",
              planes[0].size());
  std::printf("  %-10s  %-17s  %-17s  %-17s\n", "plane", "rle", "huffman",
              "deflate-lite");
  const char* labels[kNumPlanes] = {"byte 0", "byte 1", "byte 2", "byte 3"};
  std::printf(" materialized weights:\n");
  for (int p = 0; p < kNumPlanes; ++p) MeasurePlane(labels[p], planes[p]);
  std::printf(" SUB-delta of adjacent checkpoints:\n");
  for (int p = 0; p < kNumPlanes; ++p) {
    MeasurePlane(labels[p], delta_planes[p]);
  }
  std::printf(
      "\nexpected: plane 0 compresses well everywhere (deflate-lite best); "
      "planes 2-3 are incompressible for weights but highly compressible "
      "for deltas (zero runs), where RLE is nearly free.\n");
  return 0;
}
