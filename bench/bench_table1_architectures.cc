// Table I — "Popular CNN Models for Object Recognition".
//
// The paper tabulates network architectures as layer regular expressions
// with their learnable parameter counts |W|. We rebuild each architecture
// with the zoo factories and count parameters via shape inference; LeNet
// must reproduce the paper's 4.31e5 exactly, AlexNet its canonical ~61M,
// VGG-16 its canonical ~138M. (The paper prints 1.96e10 for VGG — that is
// its flop count, not |W|; EXPERIMENTS.md discusses the discrepancy.)

#include <cstdio>

#include "bench/bench_util.h"
#include "nn/network_def.h"
#include "nn/zoo.h"

namespace {

void PrintRow(const modelhub::NetworkDef& def, const char* expression) {
  auto count = def.ParameterCount();
  modelhub::bench::Check(count.status(), def.name().c_str());
  int convs = 0;
  int pools = 0;
  int fulls = 0;
  for (const auto& node : def.nodes()) {
    convs += node.kind == modelhub::LayerKind::kConv;
    pools += node.kind == modelhub::LayerKind::kPool;
    fulls += node.kind == modelhub::LayerKind::kFull;
  }
  std::printf("%-12s %-44s %3d conv %2d pool %2d full  |W| = %.3g (%lld)\n",
              def.name().c_str(), expression, convs, pools, fulls,
              static_cast<double>(*count), static_cast<long long>(*count));
}

}  // namespace

int main() {
  using namespace modelhub;
  std::printf("== Table I: architectures and parameter counts ==\n");
  PrintRow(LeNet(), "(Lconv Lpool){2} Lip{2}");
  PrintRow(AlexNetStyle(), "(Lconv Lpool){2} (Lconv{2} Lpool){2}? Lip{3}");
  PrintRow(Vgg16(), "(Lconv{2} Lpool){2} (Lconv{3} Lpool){3} Lip{3}");
  PrintRow(ResNetStyle(1000, 16, 64), "(Lconv Lpool)(Lconv+skip){32} Lpool Lip");
  std::printf("\n-- reduced variants used by the experiments --\n");
  PrintRow(MiniLeNet(), "(Lconv Lpool){2} Lip{2}");
  PrintRow(MiniVgg(10, 16, 1), "(Lconv Lpool){2} Lip{2}");
  PrintRow(MiniVgg(10, 16, 4), "(Lconv Lpool){2} Lip{2} (4x width)");
  PrintRow(MiniResNet(10, 16, 2, 8), "residual: conv (conv conv +skip){2} pool ip");
  std::printf("\npaper check: LeNet |W| == 431080: %s\n",
              *LeNet().ParameterCount() == 431080 ? "PASS" : "FAIL");
  return 0;
}
