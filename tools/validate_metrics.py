#!/usr/bin/env python3
"""Validates a metrics dump in either of the two export formats.

Usage:
  validate_metrics.py <file> [--format json|prom]
                      [--embedded-key metrics]
                      [--require-prefix PREFIX ...]

--format json (default) expects a `dlv stats --json` registry snapshot
(or the "metrics" object embedded in a bench_* JSON report):
  * the file parses as JSON;
  * the snapshot has "counters", "gauges" and "histograms" objects;
  * counter/gauge values are integers, histogram entries carry count /
    sum / mean / p50 / p99 / buckets with consistent types;
  * every --require-prefix matches at least one metric name.

--format prom expects Prometheus text exposition as produced by
`dlv stats --prom` / the GET_METRICS rpc:
  * every sample line parses as `name{labels} value`;
  * every sampled series has exactly one `# TYPE` declaration;
  * histogram bucket series are cumulative (nondecreasing in `le`) and
    their +Inf bucket equals the series' `_count` sample;
  * every --require-prefix matches at least one metric family (prefixes
    may be spelled in dotted registry form; dots are translated to the
    exposition format's underscores before matching).

Exits 0 when valid, 1 with a diagnostic otherwise.
"""

import argparse
import json
import re
import sys


def fail(message):
    print("validate_metrics: %s" % message, file=sys.stderr)
    sys.exit(1)


def validate_snapshot(snapshot, required_prefixes):
    if not isinstance(snapshot, dict):
        fail("snapshot is not a JSON object")
    for section in ("counters", "gauges", "histograms"):
        if section not in snapshot:
            fail("missing section %r" % section)
        if not isinstance(snapshot[section], dict):
            fail("section %r is not an object" % section)
    for name, value in snapshot["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail("counter %r has non-counter value %r" % (name, value))
    for name, value in snapshot["gauges"].items():
        if not isinstance(value, int):
            fail("gauge %r has non-integer value %r" % (name, value))
    for name, histogram in snapshot["histograms"].items():
        if not isinstance(histogram, dict):
            fail("histogram %r is not an object" % name)
        for key in ("count", "sum", "mean", "p50", "p99", "buckets"):
            if key not in histogram:
                fail("histogram %r missing %r" % (name, key))
        if not isinstance(histogram["buckets"], list):
            fail("histogram %r buckets is not a list" % name)
        bucket_total = sum(histogram["buckets"])
        if bucket_total != histogram["count"]:
            fail("histogram %r bucket total %d != count %d"
                 % (name, bucket_total, histogram["count"]))
    all_names = set()
    for section in ("counters", "gauges", "histograms"):
        all_names.update(snapshot[section])
    for prefix in required_prefixes:
        if not any(name.startswith(prefix) for name in all_names):
            fail("no metric with required prefix %r" % prefix)
    return len(all_names)


SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(-?\d+(?:\.\d+)?)$')
TYPE_RE = re.compile(
    r'^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$')


def parse_labels(block):
    """'{a="x",b="y"}' -> dict; None/'' -> {}."""
    if not block:
        return {}
    labels = {}
    for name, value in re.findall(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"',
                                  block):
        labels[name] = value
    return labels


def validate_prometheus(text, required_prefixes):
    types = {}
    samples = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            match = TYPE_RE.match(line)
            if match:
                name, kind = match.groups()
                if name in types:
                    fail("line %d: duplicate # TYPE for %r"
                         % (lineno, name))
                types[name] = kind
            continue
        match = SAMPLE_RE.match(line)
        if not match:
            fail("line %d: unparseable sample %r" % (lineno, line))
        name, labels, value = match.groups()
        samples.append((name, parse_labels(labels), float(value)))
    if not samples:
        fail("no samples found")

    def family(name):
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in types:
                return name[:-len(suffix)]
        return name

    for name, _, _ in samples:
        if family(name) not in types:
            fail("sample %r has no # TYPE declaration" % name)

    # Histogram shape: per (family, non-le labels) series, buckets must
    # be cumulative and the +Inf bucket must equal the _count sample.
    series = {}
    counts = {}
    for name, labels, value in samples:
        fam = family(name)
        if types.get(fam) != "histogram":
            continue
        key = (fam, tuple(sorted((k, v) for k, v in labels.items()
                                 if k != "le")))
        if name.endswith("_bucket"):
            if "le" not in labels:
                fail("bucket sample of %r lacks an le label" % fam)
            series.setdefault(key, []).append((labels["le"], value))
        elif name.endswith("_count"):
            counts[key] = value
    for key, buckets in series.items():
        fam = key[0]
        inf = [v for le, v in buckets if le == "+Inf"]
        if not inf:
            fail("histogram %r has no +Inf bucket" % fam)
        previous = -1.0
        for le, value in buckets:  # Exposition order is ascending le.
            if value < previous:
                fail("histogram %r buckets not cumulative at le=%s"
                     % (fam, le))
            previous = value
        if key not in counts:
            fail("histogram %r has buckets but no _count" % fam)
        if inf[0] != counts[key]:
            fail("histogram %r +Inf bucket %g != count %g"
                 % (fam, inf[0], counts[key]))

    for prefix in required_prefixes:
        translated = prefix.replace(".", "_")
        if not any(name.startswith(translated) for name in types):
            fail("no metric family with required prefix %r" % prefix)
    return len(types)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("path")
    parser.add_argument("--format", choices=("json", "prom"),
                        default="json")
    parser.add_argument("--embedded-key", default=None,
                        help="validate document[KEY] instead of the "
                             "whole document (json format only)")
    parser.add_argument("--require-prefix", action="append", default=[],
                        help="require at least one metric with this "
                             "name prefix (repeatable)")
    args = parser.parse_args()

    if args.format == "prom":
        try:
            with open(args.path, "r") as handle:
                text = handle.read()
        except OSError as error:
            fail("cannot load %s: %s" % (args.path, error))
        count = validate_prometheus(text, args.require_prefix)
        print("validate_metrics: OK (%d metric families)" % count)
        return

    try:
        with open(args.path, "r") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        fail("cannot load %s: %s" % (args.path, error))

    snapshot = document
    if args.embedded_key is not None:
        if args.embedded_key not in document:
            fail("document has no %r key" % args.embedded_key)
        snapshot = document[args.embedded_key]

    count = validate_snapshot(snapshot, args.require_prefix)
    print("validate_metrics: OK (%d metrics)" % count)


if __name__ == "__main__":
    main()
