// modelhubd — the standalone ModelHub serving daemon. Serves one DLV
// repository over the wire protocol of net/frame.h until SIGTERM/SIGINT
// (or a SHUTDOWN rpc), then drains gracefully. `dlv serve` wraps the same
// entry point.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/env.h"
#include "server/modelhubd.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(
        stderr,
        "usage: modelhubd <repo> [port] [--linger <ms>]\n"
        "                 [--drain-grace <ms>] [--maintain]\n"
        "                 [--maintain-interval <ms>]\n"
        "  serves the repository on 127.0.0.1 (port 0 = ephemeral,\n"
        "  printed on startup); SIGTERM drains gracefully, keeping the\n"
        "  listener open for --drain-grace ms (default 250) so routers\n"
        "  steer away instead of seeing refused connections.\n"
        "  --maintain embeds the lifecycle maintenance daemon\n"
        "  (access-aware re-archival + chunk GC) with the given cycle\n"
        "  interval (default 60000 ms).\n");
    return 2;
  }
  modelhub::ServerOptions options;
  options.drain_grace_ms = 250;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--linger") == 0 && i + 1 < argc) {
      options.coalesce_linger_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--drain-grace") == 0 && i + 1 < argc) {
      options.drain_grace_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--maintain") == 0) {
      options.enable_maintenance = true;
    } else if (std::strcmp(argv[i], "--maintain-interval") == 0 &&
               i + 1 < argc) {
      options.enable_maintenance = true;
      options.maintenance.interval_ms = std::atoi(argv[++i]);
    } else if (argv[i][0] != '-') {
      options.port = std::atoi(argv[i]);
    } else {
      std::fprintf(stderr, "modelhubd: unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  return modelhub::RunServerMain(modelhub::Env::Default(), argv[1], options);
}
