// dlv — the ModelHub command-line client (Table II of the paper).
//
//   model version management:   init, commit (via demo), copy, archive
//   model exploration:          list, desc, diff, eval
//   model enumeration:          query "<DQL>"
//   remote interaction:         publish, search, pull
//
// `dlv demo` populates a repository with the synthetic modeler so every
// other command has something to act on (the paper's modelers would use
// the caffe wrapper here; the demo plays that role).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "data/dataset.h"
#include "data/synthetic_modeler.h"
#include "dlv/fsck.h"
#include "dlv/layout.h"
#include "dlv/report.h"
#include "dlv/repository.h"
#include "dql/engine.h"
#include "hub/hub.h"
#include "lifecycle/daemon.h"
#include "lifecycle/gc.h"
#include "net/client.h"
#include "pas/archive.h"
#include "pas/chunk_index.h"
#include "router/router.h"
#include "server/modelhubd.h"

namespace modelhub {
namespace {

/// One row of the usage block. The table is the single source of truth for
/// the subcommand surface: Usage() renders it, and cli_test asserts that
/// every dispatched command appears here.
struct CommandHelp {
  const char* section;
  const char* syntax;
  const char* help;  ///< '\n' continues onto an aligned follow-up line.
};

constexpr CommandHelp kCommands[] = {
    {"model version management", "dlv init <repo>", "create a repository"},
    {"model version management", "dlv demo <repo> [versions]",
     "populate via the synthetic modeler"},
    {"model version management", "dlv copy <repo> <src> <new>",
     "scaffold a version from another"},
    {"model version management", "dlv archive <repo> [solver] [alpha]",
     "compact snapshots into PAS\n(solver: pas-pt pas-mt last mst spt;\n"
     "--archive-threads=N pins the write\npipeline, 1=serial, default auto;\n"
     "--tile-rows=N pins encode tiling)"},
    {"model version management", "dlv fsck <repo> [--quarantine]",
     "verify repository integrity;\n--quarantine sets orphans aside"},
    {"model version management", "dlv maintain <repo> [--interval <ms>]",
     "run one lifecycle maintenance\ncycle (access-aware re-archival +\n"
     "plan swap + chunk GC); --interval\nkeeps the daemon running"},
    {"model version management", "dlv gc <repo> [--dry-run]",
     "sweep unreferenced archive\ngenerations and quarantined files\n"
     "(--dry-run reports without\ndeleting)"},
    {"model exploration", "dlv list <repo>", "versions, lineage, accuracy"},
    {"model exploration", "dlv desc <repo> <model>", "describe one version"},
    {"model exploration", "dlv diff <repo> <a> <b>",
     "compare two versions (metadata)"},
    {"model exploration", "dlv pdiff <repo> <a> <b>",
     "compare learned parameters"},
    {"model exploration", "dlv compare <repo> <a> <b> [samples]",
     "run both on data, report agreement"},
    {"model exploration", "dlv eval <repo> <model> [samples]",
     "run latest snapshot on fresh data"},
    {"model exploration", "dlv retrieve <repo> <model> [scheme] [threads]",
     "recreate the latest snapshot from\nthe PAS archive and print retrieval\n"
     "stats (scheme: shared independent\nsequential; default shared)"},
    {"model enumeration", "dlv query <repo> \"<DQL>\"",
     "run a DQL statement (prefix with\nexplain analyze for operator stats)"},
    {"model enumeration", "dlv report <repo> <out.html>",
     "render an HTML exploration report"},
    {"remote interaction", "dlv publish <hub> <repo> <user> <name>",
     "host a repository (--compact\narchives staged snapshots first)"},
    {"remote interaction", "dlv search <hub> [pattern]",
     "find hosted model versions"},
    {"remote interaction", "dlv pull <hub> <user> <name> <dest>",
     "download a hosted repository"},
    {"serving", "dlv serve <repo> [port] [--linger <ms>]",
     "serve the repository over TCP\n(modelhubd; SIGTERM or a shutdown\n"
     "rpc drains gracefully)"},
    {"serving", "dlv serve --fleet <topology> [port]",
     "route across modelhubd backends\n(topology: ';' separates shards,\n"
     "',' replicas — health checks,\nbreakers, retries, failover)"},
    {"serving", "dlv rpc <host:port> <op> [args]",
     "call a running modelhubd (ops: ping\nlist-models get-snapshot query "
     "stats\nmetrics shutdown; exit 3 = server\nunreachable; --retries=N "
     "reconnects\nand reissues on transport faults;\n--trace samples a "
     "distributed trace\nand prints its id to stderr)"},
    {"observability", "dlv stats <repo|host:port> [--json|--prom]",
     "run a probe workload and dump the\nmetrics registry (--prom emits\n"
     "Prometheus text; a host:port target\nscrapes a running server "
     "instead);\n--trace <file> also writes a local\nChrome trace"},
    {"observability", "dlv trace --fleet <host:port> [out.json]",
     "pull span buffers from every node\nbehind the target (router fans "
     "out\nto its backends) and merge them\ninto one Chrome/Perfetto trace"},
    {"observability", "dlv dedup-stats <repo> [--json]",
     "report cross-model chunk\ndeduplication: logical vs stored\nbytes, "
     "shared and cross-generation\nreferences, dedup ratio"},
};

int Usage() {
  std::fprintf(stderr, "usage: dlv <command> [args]\n");
  const char* section = "";
  for (const CommandHelp& cmd : kCommands) {
    if (std::strcmp(section, cmd.section) != 0) {
      section = cmd.section;
      std::fprintf(stderr, "\n%s:\n", section);
    }
    const char* text = cmd.help;
    bool first = true;
    while (text != nullptr) {
      const char* newline = std::strchr(text, '\n');
      const int len =
          newline ? static_cast<int>(newline - text)
                  : static_cast<int>(std::strlen(text));
      std::fprintf(stderr, "  %-43s %.*s\n", first ? cmd.syntax : "", len,
                   text);
      text = newline ? newline + 1 : nullptr;
      first = false;
    }
  }
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "dlv: %s\n", status.ToString().c_str());
  return 1;
}

Result<Dataset> DatasetForRepo(const Repository& repo) {
  // Synthesize a task matching the first version's input shape and class
  // count, deterministic per repository.
  MH_ASSIGN_OR_RETURN(auto versions, repo.List());
  if (versions.empty()) {
    return Status::FailedPrecondition("repository has no model versions");
  }
  MH_ASSIGN_OR_RETURN(NetworkDef def, repo.GetNetwork(versions[0].name));
  MH_ASSIGN_OR_RETURN(Network net, Network::Create(def));
  GlyphOptions options;
  options.num_samples = 256;
  options.num_classes = static_cast<int>(net.num_outputs());
  options.image_size = def.in_height();
  options.seed = 12345;
  return MakeGlyphDataset(options);
}

int CmdInit(Env* env, const std::string& root) {
  auto repo = Repository::Init(env, root);
  if (!repo.ok()) return Fail(repo.status());
  std::printf("initialized empty dlv repository at %s\n", root.c_str());
  return 0;
}

int CmdDemo(Env* env, const std::string& root, int versions) {
  auto repo = Repository::Open(env, root);
  if (!repo.ok()) return Fail(repo.status());
  ModelerOptions options;
  options.num_versions = versions;
  options.snapshots_per_version = 3;
  options.train_iterations = 60;
  options.num_classes = 6;
  options.image_size = 16;
  options.dataset_samples = 256;
  auto names = RunSyntheticModeler(&*repo, options);
  if (!names.ok()) return Fail(names.status());
  std::printf("committed %zu model versions:\n", names->size());
  for (const auto& name : *names) std::printf("  %s\n", name.c_str());
  return 0;
}

int CmdList(Env* env, const std::string& root) {
  auto repo = Repository::Open(env, root);
  if (!repo.ok()) return Fail(repo.status());
  auto versions = repo->List();
  if (!versions.ok()) return Fail(versions.status());
  std::printf("%-20s %-20s %6s %9s %9s\n", "name", "parent", "snaps",
              "best_acc", "state");
  for (const auto& info : *versions) {
    std::printf("%-20s %-20s %6lld %9.3f %9s\n", info.name.c_str(),
                info.parent.empty() ? "-" : info.parent.c_str(),
                static_cast<long long>(info.num_snapshots),
                info.best_accuracy, info.archived ? "archived" : "staged");
  }
  return 0;
}

int CmdDesc(Env* env, const std::string& root, const std::string& model) {
  auto repo = Repository::Open(env, root);
  if (!repo.ok()) return Fail(repo.status());
  auto description = repo->Describe(model);
  if (!description.ok()) return Fail(description.status());
  std::printf("%s", description->c_str());
  return 0;
}

int CmdDiff(Env* env, const std::string& root, const std::string& a,
            const std::string& b) {
  auto repo = Repository::Open(env, root);
  if (!repo.ok()) return Fail(repo.status());
  auto diff = repo->Diff(a, b);
  if (!diff.ok()) return Fail(diff.status());
  std::printf("%s", diff->c_str());
  return 0;
}

int CmdParamDiff(Env* env, const std::string& root, const std::string& a,
                 const std::string& b) {
  auto repo = Repository::Open(env, root);
  if (!repo.ok()) return Fail(repo.status());
  auto entries = repo->DiffParameters(a, b);
  if (!entries.ok()) return Fail(entries.status());
  std::printf("%-16s %12s %10s %s\n", "parameter", "L2 dist", "relative",
              "notes");
  for (const auto& entry : *entries) {
    const char* note = entry.only_in_a    ? "only in first"
                       : entry.only_in_b  ? "only in second"
                       : entry.shape_changed ? "shape changed"
                                             : "";
    std::printf("%-16s %12.5f %9.2f%% %s\n", entry.name.c_str(),
                entry.l2_distance, entry.relative_distance * 100, note);
  }
  return 0;
}

int CmdCompare(Env* env, const std::string& root, const std::string& a,
               const std::string& b, int64_t samples) {
  auto repo = Repository::Open(env, root);
  if (!repo.ok()) return Fail(repo.status());
  auto data = DatasetForRepo(*repo);
  if (!data.ok()) return Fail(data.status());
  std::vector<int64_t> indices;
  for (int64_t i = 0; i < std::min(samples, data->size()); ++i) {
    indices.push_back(i);
  }
  Tensor batch;
  std::vector<int> labels;
  data->Gather(indices, &batch, &labels);
  auto comparison = repo->CompareOnData(a, b, batch);
  if (!comparison.ok()) return Fail(comparison.status());
  int correct_a = 0;
  int correct_b = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    correct_a += comparison->labels_a[i] == labels[i];
    correct_b += comparison->labels_b[i] == labels[i];
  }
  std::printf("%zu samples: %s %.1f%%, %s %.1f%%, agreement %.1f%%\n",
              labels.size(), a.c_str(), 100.0 * correct_a / labels.size(),
              b.c_str(), 100.0 * correct_b / labels.size(),
              comparison->agreement * 100);
  return 0;
}

int CmdCopy(Env* env, const std::string& root, const std::string& src,
            const std::string& dst) {
  auto repo = Repository::Open(env, root);
  if (!repo.ok()) return Fail(repo.status());
  auto id = repo->Copy(src, dst);
  if (!id.ok()) return Fail(id.status());
  std::printf("scaffolded %s from %s\n", dst.c_str(), src.c_str());
  return 0;
}

int CmdEval(Env* env, const std::string& root, const std::string& model,
            int64_t samples) {
  auto repo = Repository::Open(env, root);
  if (!repo.ok()) return Fail(repo.status());
  auto data = DatasetForRepo(*repo);
  if (!data.ok()) return Fail(data.status());
  std::vector<int64_t> indices;
  for (int64_t i = 0; i < std::min(samples, data->size()); ++i) {
    indices.push_back(i);
  }
  Tensor batch;
  std::vector<int> labels;
  data->Gather(indices, &batch, &labels);
  auto predicted = repo->Eval(model, batch);
  if (!predicted.ok()) return Fail(predicted.status());
  int correct = 0;
  for (size_t i = 0; i < predicted->size(); ++i) {
    if ((*predicted)[i] == labels[i]) ++correct;
  }
  std::printf("evaluated %zu samples: accuracy %.1f%%\n", predicted->size(),
              100.0 * correct / predicted->size());
  return 0;
}

int CmdRetrieve(Env* env, const std::string& root, const std::string& model,
                const std::string& scheme, int threads) {
  auto repo = Repository::Open(env, root);
  if (!repo.ok()) return Fail(repo.status());
  auto archive = repo->OpenArchive();
  if (!archive.ok()) return Fail(archive.status());
  auto count = repo->NumSnapshots(model);
  if (!count.ok()) return Fail(count.status());
  if (*count == 0) {
    return Fail(Status::NotFound("version has no snapshots: " + model));
  }
  const std::string key = model + "/s" + std::to_string(*count - 1);
  RetrievalStats stats;
  Result<std::vector<NamedParam>> params(Status::Internal("unset"));
  if (scheme == "sequential") {
    params = (*archive)->RetrieveSnapshot(key, &stats);
  } else if (scheme == "shared" || scheme == "independent") {
    ThreadPool pool(threads);
    auto sets = (*archive)->RetrieveSnapshotsParallel(
        {key}, &pool,
        scheme == "shared" ? ParallelScheme::kShared
                           : ParallelScheme::kIndependent,
        &stats);
    if (sets.ok()) {
      params = std::move((*sets)[0]);
    } else {
      params = sets.status();
    }
  } else {
    std::fprintf(stderr, "dlv: unknown retrieval scheme %s\n", scheme.c_str());
    return 2;
  }
  if (!params.ok()) return Fail(params.status());
  uint64_t weights = 0;
  for (const auto& param : *params) {
    weights += static_cast<uint64_t>(param.value.size());
  }
  std::printf(
      "retrieved %s: %zu matrices (%llu weights) via %s scheme\n"
      "  chain vertices resolved %llu, chunk fetches %llu, cache hits %llu, "
      "evictions %llu\n"
      "  compressed bytes read %llu, wall %.2f ms\n",
      key.c_str(), params->size(), static_cast<unsigned long long>(weights),
      scheme.c_str(),
      static_cast<unsigned long long>(stats.vertices_resolved),
      static_cast<unsigned long long>(stats.chunk_fetches),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.cache_evictions),
      static_cast<unsigned long long>(stats.bytes_read), stats.wall_ms);
  return 0;
}

int CmdArchive(Env* env, const std::string& root, const std::string& solver,
               double alpha, int archive_threads, int tile_rows) {
  auto repo = Repository::Open(env, root);
  if (!repo.ok()) return Fail(repo.status());
  ArchiveOptions options;
  options.budget_alpha = alpha;
  options.archive_threads = archive_threads;
  options.tile_rows = tile_rows;
  if (solver == "pas-pt") {
    options.solver = ArchiveSolver::kPasPt;
  } else if (solver == "pas-mt") {
    options.solver = ArchiveSolver::kPasMt;
  } else if (solver == "last") {
    options.solver = ArchiveSolver::kLast;
    options.last_alpha = alpha > 0 ? alpha : 2.0;
  } else if (solver == "mst") {
    options.solver = ArchiveSolver::kMst;
  } else if (solver == "spt") {
    options.solver = ArchiveSolver::kSpt;
  } else {
    std::fprintf(stderr, "dlv: unknown solver %s\n", solver.c_str());
    return 2;
  }
  auto report = repo->Archive(options);
  if (!report.ok()) return Fail(report.status());
  std::printf(
      "archived %d matrices with %s: storage %.0f bytes "
      "(MST %.0f, materialized %.0f), budgets %s\n"
      "  write pipeline: %d threads, %llu raw bytes -> %llu stored, "
      "encode %.2f ms, commit %.2f ms, wall %.2f ms\n",
      report->num_vertices, solver.c_str(), report->storage_cost,
      report->mst_storage_cost, report->spt_storage_cost,
      report->budgets_satisfied ? "satisfied" : "violated",
      report->pipeline.threads,
      static_cast<unsigned long long>(report->pipeline.raw_bytes),
      static_cast<unsigned long long>(report->pipeline.compressed_bytes),
      report->pipeline.encode_ms_total, report->pipeline.commit_ms,
      report->pipeline.wall_ms);
  return 0;
}

int CmdFsck(Env* env, const std::string& root, bool quarantine) {
  FsckOptions options;
  options.quarantine = quarantine;
  auto report = RunFsck(env, root, options);
  if (!report.ok()) return Fail(report.status());
  std::printf("%s", report->ToString().c_str());
  return report->clean() ? 0 : 1;
}

void PrintMaintenanceOutcomes(const MaintenanceStatus& status) {
  for (const TaskOutcome& task : status.last_outcomes) {
    std::printf("  %-10s %-10s %8.2f ms%s%s\n", task.name.c_str(),
                std::string(TaskOutcome::StateName(task.state)).c_str(),
                task.wall_ms, task.message.empty() ? "" : "  ",
                task.message.c_str());
  }
  std::printf(
      "cycles: %llu completed, %llu failed, %llu skipped; "
      "generation %llu, %llu byte(s) reclaimed\n",
      static_cast<unsigned long long>(status.cycles_completed),
      static_cast<unsigned long long>(status.cycles_failed),
      static_cast<unsigned long long>(status.cycles_skipped),
      static_cast<unsigned long long>(status.archive_generation),
      static_cast<unsigned long long>(status.bytes_reclaimed_total));
}

std::atomic<bool> g_maintain_stop{false};

void OnMaintainSignal(int) { g_maintain_stop.store(true); }

/// `dlv maintain`: one synchronous lifecycle cycle (re-archive with
/// access-aware budgets, swap, GC), or — with --interval — the periodic
/// daemon in the foreground until SIGTERM/SIGINT.
int CmdMaintain(Env* env, const std::string& root, int interval_ms) {
  LifecycleOptions options;
  // Standalone runs have no serving path feeding the access tracker, so
  // never skip a cycle for lack of recorded accesses.
  options.min_accesses_between_cycles = 0;
  if (interval_ms <= 0) {
    LifecycleDaemon daemon(env, root, options);
    const Status run = daemon.RunOnce();
    PrintMaintenanceOutcomes(daemon.status());
    if (!run.ok()) return Fail(run);
    return 0;
  }
  options.interval_ms = interval_ms;
  LifecycleDaemon daemon(env, root, options);
  g_maintain_stop.store(false);
  std::signal(SIGINT, OnMaintainSignal);
  std::signal(SIGTERM, OnMaintainSignal);
  const Status started = daemon.Start();
  if (!started.ok()) return Fail(started);
  std::printf("dlv maintain: cycling every %d ms (SIGTERM stops)\n",
              interval_ms);
  std::fflush(stdout);
  while (!g_maintain_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  daemon.RequestStop();
  const Status stopped = daemon.Stop();
  PrintMaintenanceOutcomes(daemon.status());
  if (!stopped.ok()) return Fail(stopped);
  return 0;
}

int CmdGc(Env* env, const std::string& root, bool dry_run) {
  GcOptions options;
  options.dry_run = dry_run;
  auto report = RunArchiveGc(env, root, options);
  if (!report.ok()) return Fail(report.status());
  std::printf("%s", report->ToString().c_str());
  return 0;
}

/// `dlv dedup-stats`: how much the content-addressed chunk index is
/// saving on this repository's committed archive generation.
int CmdDedupStats(Env* env, const std::string& root, bool json) {
  const std::string pas_dir = repo_layout::PasDir(root);
  auto reader = ArchiveReader::Open(env, pas_dir);
  if (!reader.ok()) return Fail(reader.status());
  const ArchiveDedupStats stats = reader->ComputeDedupStats();
  uint64_t index_entries = 0;
  uint64_t index_refs = 0;
  if (auto index = ChunkIndex::Load(env, pas_dir); index.ok()) {
    index_entries = index->size();
    index_refs = index->TotalRefs();
  }
  if (json) {
    std::printf(
        "{\"generation\": %llu, \"plane_refs\": %llu, "
        "\"unique_chunks\": %llu, \"shared_refs\": %llu, "
        "\"cross_file_refs\": %llu, \"logical_bytes\": %llu, "
        "\"stored_bytes\": %llu, \"dedup_ratio\": %.4f, "
        "\"index_entries\": %llu, \"index_refs\": %llu}\n",
        static_cast<unsigned long long>(reader->generation()),
        static_cast<unsigned long long>(stats.plane_refs),
        static_cast<unsigned long long>(stats.unique_chunks),
        static_cast<unsigned long long>(stats.shared_refs),
        static_cast<unsigned long long>(stats.cross_file_refs),
        static_cast<unsigned long long>(stats.logical_bytes),
        static_cast<unsigned long long>(stats.stored_bytes), stats.ratio(),
        static_cast<unsigned long long>(index_entries),
        static_cast<unsigned long long>(index_refs));
    return 0;
  }
  std::printf(
      "dedup stats for generation %llu:\n"
      "  plane references   %llu (%llu unique chunk(s), %llu shared, "
      "%llu cross-generation)\n"
      "  logical bytes      %llu\n"
      "  stored bytes       %llu\n"
      "  dedup ratio        %.2fx\n"
      "  chunk index        %llu entry(s), %llu reference(s)\n",
      static_cast<unsigned long long>(reader->generation()),
      static_cast<unsigned long long>(stats.plane_refs),
      static_cast<unsigned long long>(stats.unique_chunks),
      static_cast<unsigned long long>(stats.shared_refs),
      static_cast<unsigned long long>(stats.cross_file_refs),
      static_cast<unsigned long long>(stats.logical_bytes),
      static_cast<unsigned long long>(stats.stored_bytes), stats.ratio(),
      static_cast<unsigned long long>(index_entries),
      static_cast<unsigned long long>(index_refs));
  return 0;
}

/// Exercises every instrumented subsystem inside this process. The metrics
/// registry is per-process, so a bare `dlv stats` in a fresh process would
/// otherwise have nothing to report: the probe commits synthetic versions
/// into a scratch in-memory repository, archives them (solver + codec
/// metrics), retrieves a snapshot (chunk-store + retrieval metrics), and
/// runs one DQL statement (dql.op.* metrics).
Status RunStatsProbe() {
  MemEnv mem;
  MH_ASSIGN_OR_RETURN(Repository repo, Repository::Init(&mem, "/probe"));
  ModelerOptions options;
  options.num_versions = 2;
  options.snapshots_per_version = 2;
  options.train_iterations = 8;
  options.num_classes = 4;
  options.image_size = 12;
  options.dataset_samples = 64;
  MH_ASSIGN_OR_RETURN(auto names, RunSyntheticModeler(&repo, options));
  ArchiveOptions archive_options;
  archive_options.solver = ArchiveSolver::kPasPt;
  archive_options.budget_alpha = 2.0;
  MH_RETURN_IF_ERROR(repo.Archive(archive_options).status());
  MH_ASSIGN_OR_RETURN(auto archive, repo.OpenArchive());
  MH_ASSIGN_OR_RETURN(const int64_t count, repo.NumSnapshots(names.back()));
  RetrievalStats stats;
  const std::string key = names.back() + "/s" + std::to_string(count - 1);
  MH_RETURN_IF_ERROR(archive->RetrieveSnapshot(key, &stats).status());
  DqlEngine engine(&repo);
  MH_RETURN_IF_ERROR(
      engine.Run("select m where m.num_snapshots >= 0").status());
  // Serving leg: an ephemeral in-process modelhubd against the probe
  // repository, so server.* metrics (uptime gauge, start/stop counters,
  // request/latency instruments) are populated too. Traffic is strictly
  // sequential single-client — MemEnv is not thread-safe, and a ping
  // touches no Env state from the worker thread.
  ModelHubServer server(&mem, "/probe", ServerOptions{});
  MH_RETURN_IF_ERROR(server.Start());
  MH_ASSIGN_OR_RETURN(ModelHubClient client,
                      ModelHubClient::Connect("127.0.0.1", server.port()));
  MH_RETURN_IF_ERROR(client.Ping().status());
  MH_RETURN_IF_ERROR(server.Stop());
  return Status::OK();
}

int CmdStats(Env* env, const std::string& root, bool json, bool prom,
             const std::string& trace_path) {
  TraceRecorder* recorder = TraceRecorder::Global();
  if (!trace_path.empty()) {
    recorder->SetEnabled(true);
    recorder->Clear();
  }
  auto repo = Repository::Open(env, root);
  if (!repo.ok()) return Fail(repo.status());
  auto versions = repo->List();
  if (!versions.ok()) return Fail(versions.status());
  // Retrieve one archived snapshot of the real repository, if it has any,
  // so the dump reflects actual data and not only the probe.
  for (const auto& info : *versions) {
    if (!info.archived) continue;
    auto archive = repo->OpenArchive();
    auto count = repo->NumSnapshots(info.name);
    if (!archive.ok() || !count.ok() || *count == 0) break;
    RetrievalStats stats;
    const std::string key =
        info.name + "/s" + std::to_string(*count - 1);
    (*archive)->RetrieveSnapshot(key, &stats).status();
    break;
  }
  const Status probe = RunStatsProbe();
  if (!probe.ok()) return Fail(probe);
  MH_GAUGE("dlv.repo.versions")
      ->Set(static_cast<int64_t>(versions->size()));
  const MetricsSnapshot snapshot = MetricRegistry::Global()->Snapshot();
  if (prom) {
    std::printf("%s", snapshot.ToPrometheusText().c_str());
  } else if (json) {
    std::printf("%s\n", snapshot.ToJson().c_str());
  } else {
    std::printf("%s", snapshot.ToText().c_str());
  }
  if (!trace_path.empty()) {
    const Status written =
        env->WriteFile(trace_path, recorder->ToChromeTraceJson());
    if (!written.ok()) return Fail(written);
    std::fprintf(stderr, "dlv: wrote %llu trace span(s) to %s\n",
                 static_cast<unsigned long long>(recorder->total_spans()),
                 trace_path.c_str());
  }
  return 0;
}

int CmdQuery(Env* env, const std::string& root, const std::string& text) {
  auto repo = Repository::Open(env, root);
  if (!repo.ok()) return Fail(repo.status());
  DqlEngine engine(&*repo);
  auto data = DatasetForRepo(*repo);
  if (data.ok()) engine.RegisterDataset("default", &*data);
  auto result = engine.Run(text);
  if (!result.ok()) return Fail(result.status());
  switch (result->kind) {
    case dql::Query::Kind::kSelect:
      std::printf("%zu model version(s):\n", result->model_names.size());
      for (const auto& name : result->model_names) {
        std::printf("  %s\n", name.c_str());
      }
      break;
    case dql::Query::Kind::kSlice:
    case dql::Query::Kind::kConstruct:
      std::printf("%zu derived network(s) committed:\n",
                  result->networks.size());
      for (const auto& def : result->networks) {
        std::printf("  %s (%zu nodes)\n", def.name().c_str(),
                    def.nodes().size());
      }
      break;
    case dql::Query::Kind::kEvaluate:
      std::printf("%zu model(s) kept:\n", result->evaluated.size());
      for (const auto& model : result->evaluated) {
        std::printf("  %-28s loss=%.4f acc=%.3f\n", model.name.c_str(),
                    model.loss, model.accuracy);
      }
      break;
  }
  if (result->analyzed) {
    std::printf("\nquery plan (explain analyze):\n%s",
                result->RenderPlan().c_str());
  }
  return 0;
}

int CmdReport(Env* env, const std::string& root, const std::string& path) {
  auto repo = Repository::Open(env, root);
  if (!repo.ok()) return Fail(repo.status());
  auto html = RenderHtmlReport(*repo);
  if (!html.ok()) return Fail(html.status());
  const Status status = env->WriteFile(path, *html);
  if (!status.ok()) return Fail(status);
  std::printf("wrote %zu bytes to %s\n", html->size(), path.c_str());
  return 0;
}

int CmdPublish(Env* env, const std::string& hub_root,
               const std::string& repo_root, const std::string& user,
               const std::string& name, bool compact) {
  ModelHubService hub(env, hub_root);
  PublishOptions options;
  options.compact = compact;
  options.archive.budget_alpha = 2.0;
  const Status status = hub.Publish(repo_root, user, name, options);
  if (!status.ok()) return Fail(status);
  std::printf("published %s as %s/%s%s\n", repo_root.c_str(), user.c_str(),
              name.c_str(), compact ? " (compacted)" : "");
  return 0;
}

int CmdSearch(Env* env, const std::string& hub_root,
              const std::string& pattern) {
  ModelHubService hub(env, hub_root);
  auto hits = hub.Search(pattern);
  if (!hits.ok()) return Fail(hits.status());
  std::printf("%zu hit(s):\n", hits->size());
  for (const auto& hit : *hits) {
    std::printf("  %s/%s :: %-20s acc=%.3f snaps=%lld\n", hit.user.c_str(),
                hit.repo_name.c_str(), hit.version_name.c_str(),
                hit.best_accuracy,
                static_cast<long long>(hit.num_snapshots));
  }
  return 0;
}

int CmdServe(Env* env, const std::string& root, int port, int linger_ms) {
  ServerOptions options;
  options.port = port;
  options.coalesce_linger_ms = linger_ms;
  return RunServerMain(env, root, options);
}

/// Splits "host:port" — all-digit port 1..65535, no '/' anywhere. The
/// false return is how `dlv stats` tells a repository path apart from a
/// server endpoint to scrape.
bool ParseHostPort(const std::string& target, std::string* host, int* port) {
  const size_t colon = target.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  if (colon + 1 >= target.size()) return false;
  if (target.find('/') != std::string::npos) return false;
  long value = 0;
  for (size_t i = colon + 1; i < target.size(); ++i) {
    const char c = target[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
    if (value > 65535) return false;
  }
  if (value == 0) return false;
  *host = target.substr(0, colon);
  *port = static_cast<int>(value);
  return true;
}

/// rpc exit codes: 0 = ok, 1 = the server returned an error, 2 = usage,
/// 3 = could not reach a server (refused / unreachable / timed out).
/// Server-side errors carry a "server: " message prefix (net/client.h),
/// which distinguishes them from locally generated transport faults of
/// the same status code (e.g. a load-shedding server's kUnavailable).
int RpcFail(const Status& status) {
  std::fprintf(stderr, "dlv: %s\n", status.ToString().c_str());
  const bool transport =
      (status.IsUnavailable() || status.IsDeadlineExceeded()) &&
      status.message().rfind("server: ", 0) != 0;
  return transport ? 3 : 1;
}

/// True for faults worth reconnecting over: this hop could not reach or
/// keep the peer, as opposed to the server answering with an error.
bool RetryableRpcFault(const Status& status) {
  return (status.IsUnavailable() || status.IsDeadlineExceeded() ||
          status.IsIOError()) &&
         status.message().rfind("server: ", 0) != 0;
}

/// One attempt of an rpc op over an established connection. Returns 0 on
/// success (result already printed), 2 on usage, or 1 with *error set.
int RunRpcOp(ModelHubClient& client, const std::string& op,
             const std::vector<std::string>& args, Status* error) {
  auto fail = [&](const Status& status) {
    *error = status;
    return 1;
  };
  if (op == "ping") {
    auto pong = client.Ping();
    if (!pong.ok()) return fail(pong.status());
    std::printf("%s\n", pong->c_str());
    return 0;
  }
  if (op == "list-models") {
    auto rows = client.ListModels();
    if (!rows.ok()) return fail(rows.status());
    std::printf("%s", rows->c_str());
    return 0;
  }
  if (op == "get-snapshot" && !args.empty()) {
    const int64_t sequence = args.size() > 1 ? std::atoll(args[1].c_str()) : -1;
    const int planes = args.size() > 2 ? std::atoi(args[2].c_str()) : 0;
    if (planes > 0) {
      auto bounds = client.GetSnapshotBounds(args[0], sequence, planes);
      if (!bounds.ok()) return fail(bounds.status());
      std::printf("%s", bounds->c_str());
      return 0;
    }
    auto params = client.GetSnapshot(args[0], sequence);
    if (!params.ok()) return fail(params.status());
    uint64_t weights = 0;
    for (const auto& param : *params) {
      weights += static_cast<uint64_t>(param.value.size());
    }
    std::printf("retrieved %s: %zu parameters (%llu weights)\n",
                args[0].c_str(), params->size(),
                static_cast<unsigned long long>(weights));
    return 0;
  }
  if (op == "query" && args.size() == 1) {
    auto result = client.Query(args[0]);
    if (!result.ok()) return fail(result.status());
    std::printf("%s", result->c_str());
    return 0;
  }
  if (op == "stats") {
    auto json = client.Stats();
    if (!json.ok()) return fail(json.status());
    std::printf("%s\n", json->c_str());
    return 0;
  }
  if (op == "metrics") {
    auto text = client.Metrics();
    if (!text.ok()) return fail(text.status());
    std::printf("%s", text->c_str());
    return 0;
  }
  if (op == "shutdown") {
    const Status status = client.Shutdown();
    if (!status.ok()) return fail(status);
    std::printf("server draining\n");
    return 0;
  }
  return Usage();
}

int CmdRpc(const std::string& target, const std::string& op,
           const std::vector<std::string>& args, int retries, bool traced) {
  std::string host;
  int port = 0;
  if (!ParseHostPort(target, &host, &port)) return Usage();
  // The connect leg rides out a restart window inside Connect itself
  // (connect_retries); the loop below re-establishes the connection when
  // an op dies mid-flight (peer restarted between connect and call).
  ClientOptions options;
  options.connect_retries = retries;
  // --trace: sample a fresh distributed-trace context scoped to this
  // process; every attempt below then rides the wire with a trace header,
  // and the id printed here is what `dlv trace --fleet` keys on.
  std::optional<ScopedTraceContext> trace_scope;
  if (traced) {
    TraceContext ctx = MakeSampledTraceContext();
    ctx.has_deadline = true;
    ctx.deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(options.op_timeout_ms);
    std::fprintf(stderr, "dlv: trace id %s\n", ctx.TraceIdHex().c_str());
    trace_scope.emplace(ctx);
  }
  Status last = Status::OK();
  for (int attempt = 0;; ++attempt) {
    auto client = ModelHubClient::Connect(host, port, options);
    if (client.ok()) {
      const int code = RunRpcOp(*client, op, args, &last);
      if (code != 1) return code;
    } else {
      last = client.status();
    }
    if (!RetryableRpcFault(last) || attempt >= retries) return RpcFail(last);
    const int wait_ms =
        std::min(2000, 50 << std::min(attempt, 5));
    std::fprintf(stderr, "dlv: %s; retry %d/%d in %d ms\n",
                 last.ToString().c_str(), attempt + 1, retries, wait_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
  }
}

/// `dlv stats <host:port>`: scrape a running server/router instead of
/// probing a local repository — --prom asks GET_METRICS (node-labeled
/// fleet text through the router), otherwise the STATS JSON document.
int CmdStatsRemote(const std::string& host, int port, bool prom) {
  auto client = ModelHubClient::Connect(host, port);
  if (!client.ok()) return RpcFail(client.status());
  auto body = prom ? client->Metrics() : client->Stats();
  if (!body.ok()) return RpcFail(body.status());
  if (prom) {
    std::printf("%s", body->c_str());
  } else {
    std::printf("%s\n", body->c_str());
  }
  return 0;
}

/// `dlv trace --fleet`: one GET_TRACE against the target (a router fans
/// the request out to every backend and concatenates the sections), then
/// merge the per-node span buffers into a single Chrome/Perfetto timeline.
int CmdTrace(Env* env, const std::string& target,
             const std::string& out_path) {
  std::string host;
  int port = 0;
  if (!ParseHostPort(target, &host, &port)) return Usage();
  auto client = ModelHubClient::Connect(host, port);
  if (!client.ok()) return RpcFail(client.status());
  auto dump = client->GetTraceDump();
  if (!dump.ok()) return RpcFail(dump.status());
  std::vector<TraceNodeDump> dumps;
  const Status parsed = ParseTraceDumps(Slice(*dump), &dumps);
  if (!parsed.ok()) return Fail(parsed);
  uint64_t spans = 0;
  for (const TraceNodeDump& node : dumps) spans += node.events.size();
  const std::string merged = MergeTraceDumps(dumps);
  if (out_path.empty()) {
    std::printf("%s\n", merged.c_str());
  } else {
    const Status written = env->WriteFile(out_path, merged);
    if (!written.ok()) return Fail(written);
  }
  std::fprintf(stderr, "dlv: merged %llu span(s) from %zu node(s)%s%s\n",
               static_cast<unsigned long long>(spans), dumps.size(),
               out_path.empty() ? "" : " into ", out_path.c_str());
  return 0;
}

int CmdPull(Env* env, const std::string& hub_root, const std::string& user,
            const std::string& name, const std::string& dest) {
  ModelHubService hub(env, hub_root);
  auto repo = hub.Pull(user, name, dest);
  if (!repo.ok()) return Fail(repo.status());
  std::printf("pulled %s/%s to %s\n", user.c_str(), name.c_str(),
              dest.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Env* env = Env::Default();
  const std::string command = argv[1];
  auto arg = [&](int i) -> std::string {
    return i < argc ? argv[i] : std::string();
  };
  if (command == "init" && argc == 3) return CmdInit(env, arg(2));
  if (command == "demo" && argc >= 3) {
    return CmdDemo(env, arg(2), argc > 3 ? std::atoi(argv[3]) : 5);
  }
  if (command == "list" && argc == 3) return CmdList(env, arg(2));
  if (command == "desc" && argc == 4) return CmdDesc(env, arg(2), arg(3));
  if (command == "diff" && argc == 5) {
    return CmdDiff(env, arg(2), arg(3), arg(4));
  }
  if (command == "copy" && argc == 5) {
    return CmdCopy(env, arg(2), arg(3), arg(4));
  }
  if (command == "pdiff" && argc == 5) {
    return CmdParamDiff(env, arg(2), arg(3), arg(4));
  }
  if (command == "compare" && argc >= 5) {
    return CmdCompare(env, arg(2), arg(3), arg(4),
                      argc > 5 ? std::atoll(argv[5]) : 64);
  }
  if (command == "eval" && argc >= 4) {
    return CmdEval(env, arg(2), arg(3), argc > 4 ? std::atoll(argv[4]) : 64);
  }
  if (command == "retrieve" && argc >= 4) {
    return CmdRetrieve(env, arg(2), arg(3), argc > 4 ? arg(4) : "shared",
                       argc > 5 ? std::atoi(argv[5]) : 4);
  }
  if (command == "archive" && argc >= 3) {
    std::string solver = "pas-pt";
    double alpha = 2.0;
    int archive_threads = 0;  // Auto.
    int tile_rows = 0;        // Auto.
    int positional = 0;
    for (int i = 3; i < argc; ++i) {
      const std::string flag = arg(i);
      constexpr std::string_view kThreadsFlag = "--archive-threads=";
      constexpr std::string_view kTileRowsFlag = "--tile-rows=";
      if (flag.rfind(kThreadsFlag, 0) == 0) {
        archive_threads =
            std::atoi(flag.c_str() + kThreadsFlag.size());
      } else if (flag == "--archive-threads" && i + 1 < argc) {
        archive_threads = std::atoi(argv[++i]);
      } else if (flag.rfind(kTileRowsFlag, 0) == 0) {
        tile_rows = std::atoi(flag.c_str() + kTileRowsFlag.size());
      } else if (flag == "--tile-rows" && i + 1 < argc) {
        tile_rows = std::atoi(argv[++i]);
      } else if (!flag.empty() && flag[0] == '-') {
        return Usage();
      } else if (positional == 0) {
        solver = flag;
        ++positional;
      } else if (positional == 1) {
        alpha = std::atof(flag.c_str());
        ++positional;
      } else {
        return Usage();
      }
    }
    return CmdArchive(env, arg(2), solver, alpha, archive_threads, tile_rows);
  }
  if (command == "fsck" && (argc == 3 || argc == 4)) {
    const bool quarantine = argc == 4 && arg(3) == "--quarantine";
    if (argc == 4 && !quarantine) return Usage();
    return CmdFsck(env, arg(2), quarantine);
  }
  if (command == "maintain" && argc >= 3) {
    int interval_ms = 0;
    for (int i = 3; i < argc; ++i) {
      if (arg(i) == "--interval" && i + 1 < argc) {
        interval_ms = std::atoi(argv[++i]);
        if (interval_ms <= 0) return Usage();
      } else {
        return Usage();
      }
    }
    return CmdMaintain(env, arg(2), interval_ms);
  }
  if (command == "gc" && (argc == 3 || argc == 4)) {
    const bool dry_run = argc == 4 && arg(3) == "--dry-run";
    if (argc == 4 && !dry_run) return Usage();
    return CmdGc(env, arg(2), dry_run);
  }
  if (command == "dedup-stats" && (argc == 3 || argc == 4)) {
    const bool json = argc == 4 && arg(3) == "--json";
    if (argc == 4 && !json) return Usage();
    return CmdDedupStats(env, arg(2), json);
  }
  if (command == "query" && argc == 4) return CmdQuery(env, arg(2), arg(3));
  if (command == "report" && argc == 4) {
    return CmdReport(env, arg(2), arg(3));
  }
  if (command == "publish" && (argc == 6 || argc == 7)) {
    bool compact = false;
    if (argc == 7) {
      if (arg(6) != "--compact") return Usage();
      compact = true;
    }
    return CmdPublish(env, arg(2), arg(3), arg(4), arg(5), compact);
  }
  if (command == "search" && argc >= 3) {
    return CmdSearch(env, arg(2), argc > 3 ? arg(3) : "");
  }
  if (command == "pull" && argc == 6) {
    return CmdPull(env, arg(2), arg(3), arg(4), arg(5));
  }
  if (command == "serve" && argc >= 3 && arg(2) == "--fleet") {
    if (argc < 4 || argc > 5) return Usage();
    auto topology = FleetTopology::Parse(arg(3));
    if (!topology.ok()) return Fail(topology.status());
    RouterOptions options;
    if (argc == 5) {
      options.port = std::atoi(argv[4]);
      if (options.port <= 0) return Usage();
    }
    return RunRouterMain(std::move(*topology), options);
  }
  if (command == "serve" && argc >= 3) {
    int port = 0;
    int linger_ms = 0;
    bool bad_flag = false;
    for (int i = 3; i < argc; ++i) {
      const std::string flag = arg(i);
      if (flag == "--linger" && i + 1 < argc) {
        linger_ms = std::atoi(argv[++i]);
      } else if (!flag.empty() && flag[0] != '-') {
        port = std::atoi(flag.c_str());
      } else {
        bad_flag = true;
      }
    }
    if (bad_flag) return Usage();
    return CmdServe(env, arg(2), port, linger_ms);
  }
  if (command == "rpc" && argc >= 4) {
    int retries = 0;
    bool traced = false;
    std::vector<std::string> positional;
    constexpr std::string_view kRetriesFlag = "--retries=";
    for (int i = 2; i < argc; ++i) {
      const std::string flag = arg(i);
      if (flag.rfind(kRetriesFlag, 0) == 0) {
        retries = std::atoi(flag.c_str() + kRetriesFlag.size());
        if (retries < 0) return Usage();
      } else if (flag == "--trace") {
        traced = true;
      } else {
        positional.push_back(flag);
      }
    }
    if (positional.size() < 2) return Usage();
    std::vector<std::string> rest(positional.begin() + 2, positional.end());
    return CmdRpc(positional[0], positional[1], rest, retries, traced);
  }
  if (command == "trace" && argc >= 4 && arg(2) == "--fleet") {
    if (argc > 5) return Usage();
    return CmdTrace(env, arg(3), argc == 5 ? arg(4) : "");
  }
  if (command == "stats" && argc >= 3) {
    bool json = false;
    bool prom = false;
    std::string trace_path;
    for (int i = 3; i < argc; ++i) {
      const std::string flag = arg(i);
      if (flag == "--json") {
        json = true;
      } else if (flag == "--prom") {
        prom = true;
      } else if (flag == "--trace" && i + 1 < argc) {
        trace_path = arg(++i);
      } else {
        return Usage();
      }
    }
    std::string host;
    int port = 0;
    if (ParseHostPort(arg(2), &host, &port)) {
      if (!trace_path.empty()) return Usage();
      return CmdStatsRemote(host, port, prom);
    }
    return CmdStats(env, arg(2), json, prom, trace_path);
  }
  return Usage();
}

}  // namespace
}  // namespace modelhub

int main(int argc, char** argv) { return modelhub::Main(argc, argv); }
