// Regenerates the golden-archive compatibility fixture under
// tests/testdata/golden_archive/. The fixture pins the on-disk archive
// format: archive_test's GoldenArchive suite opens the *checked-in* files
// with today's reader, so any format change that breaks old archives
// fails the suite instead of silently orphaning published data.
//
//   ./make_golden_archive <output-dir>
//
// Everything is derived from fixed seeds; rerunning produces identical
// bytes (kXor deltas, so retrieval is bit-exact too). If a deliberate,
// versioned format migration ever regenerates this fixture, the old
// reader compatibility guarantee must be handled explicitly in review.

#include <cstdio>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/random.h"
#include "nn/network.h"
#include "pas/archive.h"

namespace modelhub {
namespace {

FloatMatrix GoldenMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  FloatMatrix m(rows, cols);
  m.FillGaussian(&rng, 0.1f);
  return m;
}

FloatMatrix Drift(const FloatMatrix& base, uint64_t seed) {
  Rng rng(seed);
  FloatMatrix next = base;
  for (auto& v : next.data()) {
    v += static_cast<float>(rng.NextGaussian()) * 0.01f;
  }
  return next;
}

int Run(const std::string& dir) {
  Env* env = Env::Default();
  ArchiveBuilder builder(env, dir);
  // Three-snapshot chain of two parameters — enough to exercise
  // materialized roots, delta chains, and snapshot groups.
  std::vector<NamedParam> s0 = {{"conv1", GoldenMatrix(8, 12, 101)},
                                {"fc", GoldenMatrix(4, 10, 102)}};
  std::vector<NamedParam> s1 = {{"conv1", Drift(s0[0].value, 201)},
                                {"fc", Drift(s0[1].value, 202)}};
  std::vector<NamedParam> s2 = {{"conv1", Drift(s1[0].value, 301)},
                                {"fc", Drift(s1[1].value, 302)}};
  for (const auto& [name, params] :
       std::vector<std::pair<std::string, const std::vector<NamedParam>*>>{
           {"golden@0", &s0}, {"golden@1", &s1}, {"golden@2", &s2}}) {
    const Status status = builder.AddSnapshot(name, *params);
    if (!status.ok()) {
      std::fprintf(stderr, "AddSnapshot: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  for (const auto& [from, to] : std::vector<std::pair<const char*, const char*>>{
           {"golden@0", "golden@1"}, {"golden@1", "golden@2"}}) {
    const Status status = builder.AddDeltaCandidate(from, to);
    if (!status.ok()) {
      std::fprintf(stderr, "AddDeltaCandidate: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }
  ArchiveOptions options;
  options.delta_kind = DeltaKind::kXor;  // Bit-exact retrieval.
  options.archive_threads = 1;  // Golden bytes are the serial reference
                                // (identical at any thread count).
  auto report = builder.Build(options);
  if (!report.ok()) {
    std::fprintf(stderr, "Build: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("wrote golden archive to %s (%d matrices, storage %.0f)\n",
              dir.c_str(), report->num_vertices, report->storage_cost);
  return 0;
}

}  // namespace
}  // namespace modelhub

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_golden_archive <output-dir>\n");
    return 2;
  }
  return modelhub::Run(argv[1]);
}
