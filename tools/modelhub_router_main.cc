// modelhub-router — the fleet frontend. Speaks the modelhubd wire
// protocol to clients and fans requests out across N backend shards with
// health checks, circuit breakers, retries, and failover (DESIGN.md §11).
// `dlv serve --fleet` wraps the same entry point.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "router/router.h"

int main(int argc, char** argv) {
  if (argc < 2 || argc > 5) {
    std::fprintf(
        stderr,
        "usage: modelhub-router <topology> [port] [--probe-interval <ms>]\n"
        "  topology: 'host:port,host:port;host:port' — ';' separates\n"
        "  shards, ',' separates replicas within a shard. Listens on\n"
        "  127.0.0.1 (port 0 = ephemeral, printed on startup); SIGTERM\n"
        "  drains gracefully without touching the backends\n");
    return 2;
  }
  modelhub::RouterOptions options;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--probe-interval") == 0 && i + 1 < argc) {
      options.probe_interval_ms = std::atoi(argv[++i]);
    } else if (argv[i][0] != '-') {
      options.port = std::atoi(argv[i]);
    } else {
      std::fprintf(stderr, "modelhub-router: unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  auto topology = modelhub::FleetTopology::Parse(argv[1]);
  if (!topology.ok()) {
    std::fprintf(stderr, "modelhub-router: %s\n",
                 topology.status().ToString().c_str());
    return 2;
  }
  return modelhub::RunRouterMain(topology.MoveValue(), options);
}
