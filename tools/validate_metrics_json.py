#!/usr/bin/env python3
"""Validates a metrics dump produced by `dlv stats --json` (or the
"metrics" object embedded in a bench_* JSON report).

Usage:
  validate_metrics_json.py <file.json> [--embedded-key metrics]
                           [--require-prefix PREFIX ...]

Checks:
  * the file parses as JSON;
  * the snapshot has "counters", "gauges" and "histograms" objects;
  * counter/gauge values are integers, histogram entries carry count /
    sum / mean / p50 / p99 / buckets with consistent types;
  * every --require-prefix matches at least one metric name.

Exits 0 when valid, 1 with a diagnostic otherwise.
"""

import argparse
import json
import sys


def fail(message):
    print("validate_metrics_json: %s" % message, file=sys.stderr)
    sys.exit(1)


def validate_snapshot(snapshot, required_prefixes):
    if not isinstance(snapshot, dict):
        fail("snapshot is not a JSON object")
    for section in ("counters", "gauges", "histograms"):
        if section not in snapshot:
            fail("missing section %r" % section)
        if not isinstance(snapshot[section], dict):
            fail("section %r is not an object" % section)
    for name, value in snapshot["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail("counter %r has non-counter value %r" % (name, value))
    for name, value in snapshot["gauges"].items():
        if not isinstance(value, int):
            fail("gauge %r has non-integer value %r" % (name, value))
    for name, histogram in snapshot["histograms"].items():
        if not isinstance(histogram, dict):
            fail("histogram %r is not an object" % name)
        for key in ("count", "sum", "mean", "p50", "p99", "buckets"):
            if key not in histogram:
                fail("histogram %r missing %r" % (name, key))
        if not isinstance(histogram["buckets"], list):
            fail("histogram %r buckets is not a list" % name)
        bucket_total = sum(histogram["buckets"])
        if bucket_total != histogram["count"]:
            fail("histogram %r bucket total %d != count %d"
                 % (name, bucket_total, histogram["count"]))
    all_names = set()
    for section in ("counters", "gauges", "histograms"):
        all_names.update(snapshot[section])
    for prefix in required_prefixes:
        if not any(name.startswith(prefix) for name in all_names):
            fail("no metric with required prefix %r" % prefix)
    return len(all_names)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("path")
    parser.add_argument("--embedded-key", default=None,
                        help="validate document[KEY] instead of the "
                             "whole document")
    parser.add_argument("--require-prefix", action="append", default=[],
                        help="require at least one metric with this "
                             "name prefix (repeatable)")
    args = parser.parse_args()

    try:
        with open(args.path, "r") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        fail("cannot load %s: %s" % (args.path, error))

    snapshot = document
    if args.embedded_key is not None:
        if args.embedded_key not in document:
            fail("document has no %r key" % args.embedded_key)
        snapshot = document[args.embedded_key]

    count = validate_snapshot(snapshot, args.require_prefix)
    print("validate_metrics_json: OK (%d metrics)" % count)


if __name__ == "__main__":
    main()
