#include "hub/hub.h"

#include "common/macros.h"
#include "dql/engine.h"

namespace modelhub {

namespace {

/// Transient repository state that must not travel: in-flight commit
/// journals, torn-write droppings and quarantined artifacts are local
/// recovery concerns, not part of the published repository.
bool SkipInCopy(const std::string& name) {
  if (name == "quarantine" || name == "journal.bin") return true;
  return name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0;
}

Status CopyTreeRecursive(Env* env, const std::string& from,
                         const std::string& to) {
  if (!env->DirExists(from)) {
    return Status::NotFound("no such directory: " + from);
  }
  MH_RETURN_IF_ERROR(env->CreateDirs(to));
  MH_ASSIGN_OR_RETURN(std::vector<std::string> names, env->ListDir(from));
  for (const std::string& name : names) {
    if (SkipInCopy(name)) continue;
    const std::string src = JoinPath(from, name);
    const std::string dst = JoinPath(to, name);
    if (env->DirExists(src)) {
      MH_RETURN_IF_ERROR(CopyTreeRecursive(env, src, dst));
    } else {
      MH_ASSIGN_OR_RETURN(std::string contents, env->ReadFile(src));
      MH_RETURN_IF_ERROR(env->WriteFile(dst, contents));
    }
  }
  return Status::OK();
}

}  // namespace

Status CopyTree(Env* env, const std::string& from, const std::string& to) {
  // A mid-copy failure must not leave a half-written destination behind:
  // a truncated hosted repository would look published (and pullable)
  // while missing files. If this call created the destination, tear the
  // partial tree back down before surfacing the error; a pre-existing
  // destination (re-publish overwrite) is left as found — deleting it
  // would destroy the previous good copy.
  const bool created_destination = !env->DirExists(to);
  const Status copied = CopyTreeRecursive(env, from, to);
  if (!copied.ok() && created_destination) {
    const Status cleaned = RemoveTree(env, to);
    if (!cleaned.ok()) {
      return Status(copied.code(),
                    copied.message() +
                        " (cleanup of partial copy also failed: " +
                        cleaned.message() + ")");
    }
  }
  return copied;
}

std::string ModelHubService::HostedRoot(const std::string& user,
                                        const std::string& repo_name) const {
  return JoinPath(JoinPath(root_, user), repo_name);
}

Status ModelHubService::Publish(const std::string& repo_root,
                                const std::string& user,
                                const std::string& repo_name,
                                const PublishOptions& options) {
  if (user.empty() || repo_name.empty()) {
    return Status::InvalidArgument("publish requires user and repo name");
  }
  MH_COUNTER("hub.publish.count")->Increment();
  // Validate that the source actually is a repository before hosting it.
  MH_ASSIGN_OR_RETURN(Repository repo, Repository::Open(env_, repo_root));
  if (options.compact) {
    // Archive staged snapshots so the hosted copy ships delta-compressed.
    // Skip when everything is already archived: re-archiving would only
    // rewrite identical data under a new generation.
    MH_ASSIGN_OR_RETURN(const auto versions, repo.List());
    bool any_staged = false;
    for (const auto& info : versions) {
      if (!info.archived) any_staged = true;
    }
    if (any_staged) {
      MH_COUNTER("hub.publish.compact")->Increment();
      MH_RETURN_IF_ERROR(repo.Archive(options.archive).status());
    }
  }
  return CopyTree(env_, repo_root, HostedRoot(user, repo_name));
}

MetricsSnapshot ModelHubService::Metrics() const {
  return MetricRegistry::Global()->Snapshot();
}

Result<std::vector<std::string>> ModelHubService::ListRepositories() {
  std::vector<std::string> out;
  if (!env_->DirExists(root_)) return out;
  MH_ASSIGN_OR_RETURN(std::vector<std::string> users, env_->ListDir(root_));
  for (const std::string& user : users) {
    const std::string user_dir = JoinPath(root_, user);
    if (!env_->DirExists(user_dir)) continue;
    MH_ASSIGN_OR_RETURN(std::vector<std::string> repos,
                        env_->ListDir(user_dir));
    for (const std::string& repo : repos) {
      if (env_->DirExists(JoinPath(user_dir, repo))) {
        out.push_back(user + "/" + repo);
      }
    }
  }
  return out;
}

Result<std::vector<HubSearchHit>> ModelHubService::Search(
    const std::string& name_pattern) {
  MH_COUNTER("hub.search.count")->Increment();
  MH_ASSIGN_OR_RETURN(std::vector<std::string> repos, ListRepositories());
  std::vector<HubSearchHit> hits;
  for (const std::string& qualified : repos) {
    const size_t slash = qualified.find('/');
    const std::string user = qualified.substr(0, slash);
    const std::string repo_name = qualified.substr(slash + 1);
    auto repo = Repository::Open(env_, HostedRoot(user, repo_name));
    if (!repo.ok()) continue;  // Not a valid repository; skip.
    MH_ASSIGN_OR_RETURN(auto versions, repo->List());
    for (const auto& info : versions) {
      if (!name_pattern.empty() && !LikeMatch(info.name, name_pattern)) {
        continue;
      }
      HubSearchHit hit;
      hit.user = user;
      hit.repo_name = repo_name;
      hit.version_name = info.name;
      hit.best_accuracy = info.best_accuracy;
      hit.num_snapshots = info.num_snapshots;
      hits.push_back(std::move(hit));
    }
  }
  return hits;
}

Result<Repository> ModelHubService::Pull(const std::string& user,
                                         const std::string& repo_name,
                                         const std::string& local_root) {
  MH_COUNTER("hub.pull.count")->Increment();
  const std::string hosted = HostedRoot(user, repo_name);
  if (!env_->DirExists(hosted)) {
    return Status::NotFound("no hosted repository " + user + "/" + repo_name);
  }
  if (env_->FileExists(JoinPath(local_root, "catalog.bin"))) {
    return Status::AlreadyExists("local repository exists at " + local_root);
  }
  MH_RETURN_IF_ERROR(CopyTree(env_, hosted, local_root));
  return Repository::Open(env_, local_root);
}

}  // namespace modelhub
