#ifndef MODELHUB_HUB_HUB_H_
#define MODELHUB_HUB_HUB_H_

#include <string>
#include <vector>

#include "common/env.h"
#include "common/metrics.h"
#include "common/result.h"
#include "dlv/repository.h"

namespace modelhub {

/// A search result: one model version in one hosted repository.
struct HubSearchHit {
  std::string user;
  std::string repo_name;
  std::string version_name;
  double best_accuracy = -1.0;
  int64_t num_snapshots = 0;
};

/// The hosted side of ModelHub (Sec. III-C): stores whole DLV repositories
/// and supports publish / search / pull. The paper envisions a web
/// service; this implementation is directory-backed (substitution: the
/// protocol surface — whole-repository exchange keyed by user/name — is
/// identical, the transport is the filesystem).
///
/// Knobs for ModelHubService::Publish.
struct PublishOptions {
  /// Compact the source repository's staged snapshots into a PAS archive
  /// (via the parallel write pipeline) before copying, so the hosted copy
  /// ships delta-compressed. Mutates the *source* repository — it is the
  /// same `dlv archive` the owner would run by hand. No-op when every
  /// snapshot is already archived; fails if the repository has none.
  bool compact = false;
  /// Archive knobs used when `compact` is set (solver, codec,
  /// archive_threads, ...).
  ArchiveOptions archive;
};

/// Layout: <root>/<user>/<repo_name>/ is a complete DLV repository tree.
class ModelHubService {
 public:
  ModelHubService(Env* env, std::string root)
      : env_(env), root_(std::move(root)) {}

  /// `dlv publish` — uploads the repository rooted at `repo_root` as
  /// <user>/<repo_name>. Re-publishing overwrites (a new model release).
  Status Publish(const std::string& repo_root, const std::string& user,
                 const std::string& repo_name,
                 const PublishOptions& options = {});

  /// `dlv search` — finds hosted model versions whose name matches the
  /// SQL-LIKE pattern. An empty pattern lists everything.
  Result<std::vector<HubSearchHit>> Search(const std::string& name_pattern);

  /// `dlv pull` — downloads <user>/<repo_name> to `local_root` and opens
  /// it. Fails if `local_root` already contains a repository.
  Result<Repository> Pull(const std::string& user,
                          const std::string& repo_name,
                          const std::string& local_root);

  /// Lists hosted repositories as "user/repo" strings.
  Result<std::vector<std::string>> ListRepositories();

  /// Point-in-time snapshot of the process-wide metrics registry
  /// (hub.* counters plus everything the PAS/DLV/DQL layers recorded).
  /// Serialise with MetricsSnapshot::ToJson or ::ToText.
  MetricsSnapshot Metrics() const;

 private:
  std::string HostedRoot(const std::string& user,
                         const std::string& repo_name) const;

  Env* env_;
  std::string root_;
};

/// Recursively copies a directory tree between Env paths (helper shared
/// with tests; both paths are on the same Env).
Status CopyTree(Env* env, const std::string& from, const std::string& to);

}  // namespace modelhub

#endif  // MODELHUB_HUB_HUB_H_
