#include "compress/deflate_lite.h"

#include "common/coding.h"
#include "common/macros.h"
#include "compress/huffman.h"
#include "compress/lz77.h"

namespace modelhub {

Status DeflateLiteCodec::DoCompress(Slice input, std::string* output) const {
  output->clear();
  PutVarint64(output, input.size());
  if (input.empty()) return Status::OK();
  std::string tokens;
  lz77::Tokenize(input, &tokens);
  std::string entropy_coded;
  HuffmanCodec huffman;
  MH_RETURN_IF_ERROR(huffman.Compress(Slice(tokens), &entropy_coded));
  output->append(entropy_coded);
  return Status::OK();
}

Status DeflateLiteCodec::DoDecompress(Slice input, std::string* output) const {
  output->clear();
  uint64_t raw_size = 0;
  MH_RETURN_IF_ERROR(GetVarint64(&input, &raw_size));
  if (raw_size > kMaxDecompressedSize) {
    return Status::Corruption("decompress: implausible raw size");
  }
  if (raw_size == 0) return Status::OK();
  std::string tokens;
  HuffmanCodec huffman;
  MH_RETURN_IF_ERROR(huffman.Decompress(input, &tokens));
  MH_RETURN_IF_ERROR(lz77::Detokenize(Slice(tokens), output,
                                      static_cast<size_t>(raw_size)));
  if (output->size() != raw_size) {
    return Status::Corruption("deflate-lite: size mismatch after decode");
  }
  return Status::OK();
}

}  // namespace modelhub
