#ifndef MODELHUB_COMPRESS_DEFLATE_LITE_H_
#define MODELHUB_COMPRESS_DEFLATE_LITE_H_

#include <string>

#include "compress/codec.h"

namespace modelhub {

/// The default PAS codec: LZ77 tokenization followed by order-0 canonical
/// Huffman coding of the token stream — the same algorithmic family as zlib
/// (which the paper uses at level 6), built from scratch.
///
/// Frame: varint(raw_size) | HuffmanCodec frame of the LZ77 token stream.
class DeflateLiteCodec : public Codec {
 public:
  CodecType type() const override { return CodecType::kDeflateLite; }
  std::string name() const override { return "deflate-lite"; }

 protected:
  Status DoCompress(Slice input, std::string* output) const override;
  Status DoDecompress(Slice input, std::string* output) const override;
};

}  // namespace modelhub

#endif  // MODELHUB_COMPRESS_DEFLATE_LITE_H_
