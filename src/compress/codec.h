#ifndef MODELHUB_COMPRESS_CODEC_H_
#define MODELHUB_COMPRESS_CODEC_H_

#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace modelhub {

/// Identifiers for the general-purpose byte codecs shipped with ModelHub.
/// PAS stores one codec id per chunk, so archives remain readable when the
/// default codec changes.
enum class CodecType : uint8_t {
  kNull = 0,      ///< Stored, no compression.
  kRle = 1,       ///< PackBits-style run-length encoding.
  kHuffman = 2,   ///< Order-0 canonical Huffman.
  kDeflateLite = 3,  ///< LZ77 (32 KiB window) + canonical Huffman. The
                     ///< from-scratch stand-in for zlib used by the paper.
};

/// Upper bound on a single chunk's decompressed size. Decoders reject
/// frames claiming more — a corrupt varint must not drive allocation.
inline constexpr uint64_t kMaxDecompressedSize = 1ull << 30;

/// A block compressor. All codecs frame their output with the raw size so
/// Decompress can validate and pre-allocate; the frame layout is
/// codec-private. Codecs are stateless and therefore thread-compatible.
///
/// The public Compress/Decompress entry points are measured: they feed
/// `codec.<name>.{encode,decode}.{calls,bytes,us}` in the metric registry
/// and delegate to the codec-private DoCompress/DoDecompress.
class Codec {
 public:
  virtual ~Codec() = default;

  virtual CodecType type() const = 0;
  virtual std::string name() const = 0;

  /// Compresses `input`, appending to `*output` (which is cleared first).
  Status Compress(Slice input, std::string* output) const;

  /// Inverse of Compress. Fails with Corruption on malformed input.
  Status Decompress(Slice input, std::string* output) const;

  /// Returns the process-wide singleton for `type` (never null).
  static const Codec* Get(CodecType type);

 protected:
  virtual Status DoCompress(Slice input, std::string* output) const = 0;
  virtual Status DoDecompress(Slice input, std::string* output) const = 0;
};

/// Convenience: compressed size of `input` under `type` (for cost models).
size_t CompressedSize(CodecType type, Slice input);

}  // namespace modelhub

#endif  // MODELHUB_COMPRESS_CODEC_H_
