#ifndef MODELHUB_COMPRESS_RLE_CODEC_H_
#define MODELHUB_COMPRESS_RLE_CODEC_H_

#include <string>

#include "compress/codec.h"

namespace modelhub {

/// PackBits-style run-length codec. Effective on delta chunks where most
/// bytes are zero (nearby snapshots differ in few parameters).
///
/// Frame: varint(raw_size) | ops. Each op is a control byte c:
///   c < 128 : copy the next c+1 literal bytes;
///   c >= 128: repeat the next byte (c - 128 + 3) times (runs of 3..130).
class RleCodec : public Codec {
 public:
  CodecType type() const override { return CodecType::kRle; }
  std::string name() const override { return "rle"; }

 protected:
  Status DoCompress(Slice input, std::string* output) const override;
  Status DoDecompress(Slice input, std::string* output) const override;
};

}  // namespace modelhub

#endif  // MODELHUB_COMPRESS_RLE_CODEC_H_
