#ifndef MODELHUB_COMPRESS_LZ77_H_
#define MODELHUB_COMPRESS_LZ77_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace modelhub {

/// LZ77 tokenizer with a 32 KiB sliding window and hash-chain match finding
/// (the DEFLATE construction). The token stream is a self-describing byte
/// sequence consumed by DeflateLiteCodec, which entropy-codes it:
///
///   op 0x00..0x7F : literal run of (op + 1) bytes, followed by the bytes;
///   op 0x80       : match, followed by varint(length - kMinMatch) and
///                   varint(distance - 1), distance <= 32768.
namespace lz77 {

inline constexpr size_t kWindowSize = 32 * 1024;
inline constexpr size_t kMinMatch = 4;
inline constexpr size_t kMaxMatch = 258;

/// Serializes `input` into the LZ77 token stream, appended to `*out`
/// (cleared first).
void Tokenize(Slice input, std::string* out);

/// Reconstructs the original bytes from a token stream. `size_hint`, when
/// non-zero, pre-reserves the output (capped internally; purely an
/// allocation hint — the decoded bytes are unaffected).
Status Detokenize(Slice tokens, std::string* out, size_t size_hint = 0);

}  // namespace lz77
}  // namespace modelhub

#endif  // MODELHUB_COMPRESS_LZ77_H_
