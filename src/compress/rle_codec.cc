#include "compress/rle_codec.h"

#include <algorithm>

#include "common/coding.h"

#include "common/macros.h"

namespace modelhub {

namespace {
constexpr size_t kMinRun = 3;
constexpr size_t kMaxRun = 130;
constexpr size_t kMaxLiteral = 128;
}  // namespace

Status RleCodec::DoCompress(Slice input, std::string* output) const {
  output->clear();
  PutVarint64(output, input.size());
  size_t i = 0;
  size_t literal_start = 0;

  auto flush_literals = [&](size_t end) {
    size_t start = literal_start;
    while (start < end) {
      const size_t n = std::min(kMaxLiteral, end - start);
      output->push_back(static_cast<char>(n - 1));
      output->append(reinterpret_cast<const char*>(input.data() + start), n);
      start += n;
    }
  };

  while (i < input.size()) {
    // Measure the run starting at i.
    size_t run = 1;
    while (i + run < input.size() && input[i + run] == input[i] &&
           run < kMaxRun) {
      ++run;
    }
    if (run >= kMinRun) {
      flush_literals(i);
      output->push_back(static_cast<char>(128 + (run - kMinRun)));
      output->push_back(static_cast<char>(input[i]));
      i += run;
      literal_start = i;
    } else {
      i += run;
    }
  }
  flush_literals(input.size());
  return Status::OK();
}

Status RleCodec::DoDecompress(Slice input, std::string* output) const {
  output->clear();
  uint64_t raw_size = 0;
  MH_RETURN_IF_ERROR(GetVarint64(&input, &raw_size));
  if (raw_size > kMaxDecompressedSize) {
    return Status::Corruption("decompress: implausible raw size");
  }
  output->reserve(static_cast<size_t>(std::min<uint64_t>(raw_size, 1 << 22)));
  while (!input.empty()) {
    const uint8_t c = input[0];
    input.RemovePrefix(1);
    if (c < 128) {
      const size_t n = static_cast<size_t>(c) + 1;
      if (input.size() < n) return Status::Corruption("rle: short literal");
      output->append(reinterpret_cast<const char*>(input.data()), n);
      input.RemovePrefix(n);
    } else {
      if (input.empty()) return Status::Corruption("rle: missing run byte");
      const size_t n = static_cast<size_t>(c) - 128 + kMinRun;
      output->append(n, static_cast<char>(input[0]));
      input.RemovePrefix(1);
    }
  }
  if (output->size() != raw_size) {
    return Status::Corruption("rle: size mismatch after decode");
  }
  return Status::OK();
}

}  // namespace modelhub
