#include "compress/huffman.h"

#include <algorithm>
#include <queue>

#include "common/coding.h"
#include "common/macros.h"
#include "compress/bit_stream.h"

namespace modelhub {

namespace {

struct TreeNode {
  uint64_t freq;
  int symbol;  // -1 for internal nodes.
  int left = -1;
  int right = -1;
};

// Computes the depth of each leaf of the Huffman tree rooted at `root`.
void CollectDepths(const std::vector<TreeNode>& nodes, int root, int depth,
                   std::array<uint8_t, 256>* lengths, int* max_depth) {
  const TreeNode& n = nodes[root];
  if (n.symbol >= 0) {
    (*lengths)[n.symbol] = static_cast<uint8_t>(depth == 0 ? 1 : depth);
    *max_depth = std::max(*max_depth, depth == 0 ? 1 : depth);
    return;
  }
  CollectDepths(nodes, n.left, depth + 1, lengths, max_depth);
  CollectDepths(nodes, n.right, depth + 1, lengths, max_depth);
}

}  // namespace

std::array<uint8_t, 256> BuildHuffmanCodeLengths(
    const std::array<uint64_t, 256>& original_freq) {
  std::array<uint64_t, 256> freq = original_freq;
  std::array<uint8_t, 256> lengths{};
  for (;;) {
    lengths.fill(0);
    // Build the tree with a min-heap of node indices ordered by frequency.
    std::vector<TreeNode> nodes;
    auto cmp = [&nodes](int a, int b) {
      if (nodes[a].freq != nodes[b].freq) return nodes[a].freq > nodes[b].freq;
      return a > b;  // Deterministic tie-break.
    };
    std::priority_queue<int, std::vector<int>, decltype(cmp)> heap(cmp);
    for (int s = 0; s < 256; ++s) {
      if (freq[s] > 0) {
        nodes.push_back(TreeNode{freq[s], s});
        heap.push(static_cast<int>(nodes.size()) - 1);
      }
    }
    if (heap.empty()) return lengths;  // No symbols: all lengths zero.
    while (heap.size() > 1) {
      const int a = heap.top();
      heap.pop();
      const int b = heap.top();
      heap.pop();
      nodes.push_back(TreeNode{nodes[a].freq + nodes[b].freq, -1, a, b});
      heap.push(static_cast<int>(nodes.size()) - 1);
    }
    int max_depth = 0;
    CollectDepths(nodes, heap.top(), 0, &lengths, &max_depth);
    if (max_depth <= kMaxHuffmanBits) return lengths;
    // Too deep: flatten the distribution and retry. Halving preserves the
    // support set, so this terminates (all-equal frequencies give depth 8).
    for (auto& f : freq) {
      if (f > 0) f = (f + 1) / 2;
    }
  }
}

std::array<uint16_t, 256> AssignCanonicalCodes(
    const std::array<uint8_t, 256>& lengths) {
  std::array<uint16_t, 256> codes{};
  std::array<uint16_t, kMaxHuffmanBits + 2> count{};
  for (int s = 0; s < 256; ++s) count[lengths[s]]++;
  count[0] = 0;
  uint32_t code = 0;
  std::array<uint32_t, kMaxHuffmanBits + 2> next_code{};
  for (int len = 1; len <= kMaxHuffmanBits; ++len) {
    code = (code + count[len - 1]) << 1;
    next_code[len] = code;
  }
  for (int s = 0; s < 256; ++s) {
    if (lengths[s] > 0) {
      codes[s] = static_cast<uint16_t>(next_code[lengths[s]]++);
    }
  }
  return codes;
}

Status HuffmanCodec::DoCompress(Slice input, std::string* output) const {
  output->clear();
  PutVarint64(output, input.size());
  if (input.empty()) return Status::OK();

  // Four interleaved sub-histograms break the store-to-load dependency on
  // repeated symbols (all-zero planes would otherwise serialize on one
  // counter).
  std::array<uint64_t, 256> freq{};
  {
    std::array<uint64_t, 256> f1{}, f2{}, f3{};
    const uint8_t* p = input.data();
    size_t i = 0;
    for (; i + 4 <= input.size(); i += 4) {
      freq[p[i]]++;
      f1[p[i + 1]]++;
      f2[p[i + 2]]++;
      f3[p[i + 3]]++;
    }
    for (; i < input.size(); ++i) freq[p[i]]++;
    for (int s = 0; s < 256; ++s) freq[s] += f1[s] + f2[s] + f3[s];
  }
  int distinct = 0;
  int only_symbol = 0;
  for (int s = 0; s < 256; ++s) {
    if (freq[s] > 0) {
      ++distinct;
      only_symbol = s;
    }
  }
  if (distinct == 1) {
    // All-zero length table marks the degenerate single-symbol frame.
    output->append(128, '\0');
    output->push_back(static_cast<char>(only_symbol));
    return Status::OK();
  }

  const std::array<uint8_t, 256> lengths = BuildHuffmanCodeLengths(freq);
  const std::array<uint16_t, 256> codes = AssignCanonicalCodes(lengths);

  // 4-bit packed code length table.
  for (int s = 0; s < 256; s += 2) {
    output->push_back(
        static_cast<char>((lengths[s] << 4) | (lengths[s + 1] & 0x0F)));
  }

  BitWriter writer(output);
  for (size_t i = 0; i < input.size(); ++i) {
    const uint8_t sym = input[i];
    writer.Write(codes[sym], lengths[sym]);
  }
  writer.Finish();
  return Status::OK();
}

Status HuffmanCodec::DoDecompress(Slice input, std::string* output) const {
  output->clear();
  uint64_t raw_size = 0;
  MH_RETURN_IF_ERROR(GetVarint64(&input, &raw_size));
  if (raw_size > kMaxDecompressedSize) {
    return Status::Corruption("decompress: implausible raw size");
  }
  if (raw_size == 0) return Status::OK();
  if (input.size() < 128) {
    return Status::Corruption("huffman: truncated length table");
  }
  std::array<uint8_t, 256> lengths{};
  bool all_zero = true;
  for (int i = 0; i < 128; ++i) {
    lengths[2 * i] = input[i] >> 4;
    lengths[2 * i + 1] = input[i] & 0x0F;
    if (input[i] != 0) all_zero = false;
  }
  input.RemovePrefix(128);

  if (all_zero) {
    if (input.empty()) {
      return Status::Corruption("huffman: missing repeated symbol");
    }
    output->assign(static_cast<size_t>(raw_size),
                   static_cast<char>(input[0]));
    return Status::OK();
  }

  // Canonical decode tables: per length, the first code and the position of
  // its first symbol in (length, symbol) order.
  std::array<uint16_t, kMaxHuffmanBits + 1> count{};
  int max_len = 0;
  for (int s = 0; s < 256; ++s) {
    if (lengths[s] > kMaxHuffmanBits) {
      return Status::Corruption("huffman: invalid code length");
    }
    if (lengths[s] > 0) {
      count[lengths[s]]++;
      max_len = std::max<int>(max_len, lengths[s]);
    }
  }
  std::array<uint32_t, kMaxHuffmanBits + 1> first_code{};
  std::array<uint32_t, kMaxHuffmanBits + 1> first_index{};
  uint32_t code = 0;
  uint32_t index = 0;
  for (int len = 1; len <= kMaxHuffmanBits; ++len) {
    code <<= 1;
    first_code[len] = code;
    first_index[len] = index;
    code += count[len];
    index += count[len];
    // Over-subscribed length tables would let the root LUT fill below run
    // past its end; a valid (Kraft-satisfying) table never trips this.
    if (code > (1u << len)) {
      return Status::Corruption("huffman: over-subscribed length table");
    }
  }
  std::vector<uint8_t> symbols_by_code(index);
  {
    std::array<uint32_t, kMaxHuffmanBits + 1> pos = first_index;
    for (int s = 0; s < 256; ++s) {
      if (lengths[s] > 0) symbols_by_code[pos[lengths[s]]++] = s;
    }
  }

  // Root lookup table for multi-symbol decode: indexing the next
  // `root_bits` of the stream yields (symbol, code length) in one load for
  // every code of length <= root_bits; each such code owns the
  // 2^(root_bits - len) slots sharing its prefix. len == 0 marks "longer
  // than root_bits" (resolved by the canonical walk below) or an unused
  // pattern (corrupt stream).
  struct LutEntry {
    uint8_t symbol = 0;
    uint8_t len = 0;
  };
  constexpr int kRootBits = 11;
  const int root_bits = std::min(max_len, kRootBits);
  std::vector<LutEntry> lut(size_t{1} << root_bits);
  for (int len = 1; len <= root_bits; ++len) {
    for (uint32_t k = 0; k < count[len]; ++k) {
      const uint32_t base = (first_code[len] + k) << (root_bits - len);
      const LutEntry entry{symbols_by_code[first_index[len] + k],
                           static_cast<uint8_t>(len)};
      std::fill(&lut[base], &lut[base] + (size_t{1} << (root_bits - len)),
                entry);
    }
  }

  // MSB-first decode with a 64-bit accumulator: the low `bitcount` bits of
  // `bitbuf` are the unconsumed stream (bits above them are stale). The
  // inner loop decodes symbol after symbol from one refill, so the
  // per-symbol cost is one table load instead of a bit-at-a-time walk.
  const uint8_t* src = input.data();
  const size_t nsrc = input.size();
  size_t byte_pos = 0;
  uint64_t bitbuf = 0;
  int bitcount = 0;
  const uint32_t root_mask = (1u << root_bits) - 1;
  // Peeks `nbits` (<= bitcount or zero-padded past end of stream).
  const auto peek = [&](int nbits) -> uint32_t {
    if (bitcount >= nbits) {
      return static_cast<uint32_t>(bitbuf >> (bitcount - nbits)) &
             ((1u << nbits) - 1);
    }
    return static_cast<uint32_t>((bitbuf << (nbits - bitcount)) &
                                 ((1ull << nbits) - 1));
  };
  // Resolves a code longer than root_bits (or the zero-padded tail) by
  // extending the canonical ranges one bit at a time, exactly like the
  // reference bit-at-a-time decoder would.
  const auto decode_long = [&](int start_len, char* out_symbol) -> Status {
    for (int len = start_len; len <= max_len; ++len) {
      const uint32_t acc = peek(len);
      if (count[len] > 0 && acc >= first_code[len] &&
          acc < first_code[len] + count[len]) {
        if (len > bitcount) {
          return Status::Corruption("huffman: truncated bitstream");
        }
        bitcount -= len;
        *out_symbol = static_cast<char>(
            symbols_by_code[first_index[len] + (acc - first_code[len])]);
        return Status::OK();
      }
    }
    return Status::Corruption("huffman: invalid code");
  };

  output->reserve(static_cast<size_t>(std::min<uint64_t>(raw_size, 1 << 22)));
  while (output->size() < raw_size) {
    while (bitcount <= 56 && byte_pos < nsrc) {
      bitbuf = (bitbuf << 8) | src[byte_pos++];
      bitcount += 8;
    }
    // Fast path: enough buffered bits for any code, no bounds checks.
    while (output->size() < raw_size && bitcount >= kMaxHuffmanBits) {
      const LutEntry entry =
          lut[static_cast<uint32_t>(bitbuf >> (bitcount - root_bits)) &
              root_mask];
      if (entry.len != 0) {
        bitcount -= entry.len;
        output->push_back(static_cast<char>(entry.symbol));
      } else {
        char symbol;
        MH_RETURN_IF_ERROR(decode_long(root_bits + 1, &symbol));
        output->push_back(symbol);
      }
    }
    if (output->size() >= raw_size) break;
    if (byte_pos < nsrc) continue;  // Refill the accumulator.
    // Tail: fewer than kMaxHuffmanBits left and no more input. Peeks are
    // zero-padded; a match must still fit in the real remaining bits.
    if (bitcount == 0) {
      return Status::Corruption("huffman: truncated bitstream");
    }
    const LutEntry entry = lut[peek(root_bits)];
    if (entry.len != 0) {
      if (entry.len > bitcount) {
        return Status::Corruption("huffman: truncated bitstream");
      }
      bitcount -= entry.len;
      output->push_back(static_cast<char>(entry.symbol));
    } else {
      char symbol;
      MH_RETURN_IF_ERROR(decode_long(root_bits + 1, &symbol));
      output->push_back(symbol);
    }
  }
  return Status::OK();
}

}  // namespace modelhub
