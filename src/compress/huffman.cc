#include "compress/huffman.h"

#include <algorithm>
#include <queue>

#include "common/coding.h"
#include "common/macros.h"
#include "compress/bit_stream.h"

namespace modelhub {

namespace {

struct TreeNode {
  uint64_t freq;
  int symbol;  // -1 for internal nodes.
  int left = -1;
  int right = -1;
};

// Computes the depth of each leaf of the Huffman tree rooted at `root`.
void CollectDepths(const std::vector<TreeNode>& nodes, int root, int depth,
                   std::array<uint8_t, 256>* lengths, int* max_depth) {
  const TreeNode& n = nodes[root];
  if (n.symbol >= 0) {
    (*lengths)[n.symbol] = static_cast<uint8_t>(depth == 0 ? 1 : depth);
    *max_depth = std::max(*max_depth, depth == 0 ? 1 : depth);
    return;
  }
  CollectDepths(nodes, n.left, depth + 1, lengths, max_depth);
  CollectDepths(nodes, n.right, depth + 1, lengths, max_depth);
}

}  // namespace

std::array<uint8_t, 256> BuildHuffmanCodeLengths(
    const std::array<uint64_t, 256>& original_freq) {
  std::array<uint64_t, 256> freq = original_freq;
  std::array<uint8_t, 256> lengths{};
  for (;;) {
    lengths.fill(0);
    // Build the tree with a min-heap of node indices ordered by frequency.
    std::vector<TreeNode> nodes;
    auto cmp = [&nodes](int a, int b) {
      if (nodes[a].freq != nodes[b].freq) return nodes[a].freq > nodes[b].freq;
      return a > b;  // Deterministic tie-break.
    };
    std::priority_queue<int, std::vector<int>, decltype(cmp)> heap(cmp);
    for (int s = 0; s < 256; ++s) {
      if (freq[s] > 0) {
        nodes.push_back(TreeNode{freq[s], s});
        heap.push(static_cast<int>(nodes.size()) - 1);
      }
    }
    if (heap.empty()) return lengths;  // No symbols: all lengths zero.
    while (heap.size() > 1) {
      const int a = heap.top();
      heap.pop();
      const int b = heap.top();
      heap.pop();
      nodes.push_back(TreeNode{nodes[a].freq + nodes[b].freq, -1, a, b});
      heap.push(static_cast<int>(nodes.size()) - 1);
    }
    int max_depth = 0;
    CollectDepths(nodes, heap.top(), 0, &lengths, &max_depth);
    if (max_depth <= kMaxHuffmanBits) return lengths;
    // Too deep: flatten the distribution and retry. Halving preserves the
    // support set, so this terminates (all-equal frequencies give depth 8).
    for (auto& f : freq) {
      if (f > 0) f = (f + 1) / 2;
    }
  }
}

std::array<uint16_t, 256> AssignCanonicalCodes(
    const std::array<uint8_t, 256>& lengths) {
  std::array<uint16_t, 256> codes{};
  std::array<uint16_t, kMaxHuffmanBits + 2> count{};
  for (int s = 0; s < 256; ++s) count[lengths[s]]++;
  count[0] = 0;
  uint32_t code = 0;
  std::array<uint32_t, kMaxHuffmanBits + 2> next_code{};
  for (int len = 1; len <= kMaxHuffmanBits; ++len) {
    code = (code + count[len - 1]) << 1;
    next_code[len] = code;
  }
  for (int s = 0; s < 256; ++s) {
    if (lengths[s] > 0) {
      codes[s] = static_cast<uint16_t>(next_code[lengths[s]]++);
    }
  }
  return codes;
}

Status HuffmanCodec::DoCompress(Slice input, std::string* output) const {
  output->clear();
  PutVarint64(output, input.size());
  if (input.empty()) return Status::OK();

  std::array<uint64_t, 256> freq{};
  for (size_t i = 0; i < input.size(); ++i) freq[input[i]]++;
  int distinct = 0;
  int only_symbol = 0;
  for (int s = 0; s < 256; ++s) {
    if (freq[s] > 0) {
      ++distinct;
      only_symbol = s;
    }
  }
  if (distinct == 1) {
    // All-zero length table marks the degenerate single-symbol frame.
    output->append(128, '\0');
    output->push_back(static_cast<char>(only_symbol));
    return Status::OK();
  }

  const std::array<uint8_t, 256> lengths = BuildHuffmanCodeLengths(freq);
  const std::array<uint16_t, 256> codes = AssignCanonicalCodes(lengths);

  // 4-bit packed code length table.
  for (int s = 0; s < 256; s += 2) {
    output->push_back(
        static_cast<char>((lengths[s] << 4) | (lengths[s + 1] & 0x0F)));
  }

  BitWriter writer(output);
  for (size_t i = 0; i < input.size(); ++i) {
    const uint8_t sym = input[i];
    writer.Write(codes[sym], lengths[sym]);
  }
  writer.Finish();
  return Status::OK();
}

Status HuffmanCodec::DoDecompress(Slice input, std::string* output) const {
  output->clear();
  uint64_t raw_size = 0;
  MH_RETURN_IF_ERROR(GetVarint64(&input, &raw_size));
  if (raw_size > kMaxDecompressedSize) {
    return Status::Corruption("decompress: implausible raw size");
  }
  if (raw_size == 0) return Status::OK();
  if (input.size() < 128) {
    return Status::Corruption("huffman: truncated length table");
  }
  std::array<uint8_t, 256> lengths{};
  bool all_zero = true;
  for (int i = 0; i < 128; ++i) {
    lengths[2 * i] = input[i] >> 4;
    lengths[2 * i + 1] = input[i] & 0x0F;
    if (input[i] != 0) all_zero = false;
  }
  input.RemovePrefix(128);

  if (all_zero) {
    if (input.empty()) {
      return Status::Corruption("huffman: missing repeated symbol");
    }
    output->assign(static_cast<size_t>(raw_size),
                   static_cast<char>(input[0]));
    return Status::OK();
  }

  // Canonical decode tables: per length, the first code and the position of
  // its first symbol in (length, symbol) order.
  std::array<uint16_t, kMaxHuffmanBits + 1> count{};
  for (int s = 0; s < 256; ++s) {
    if (lengths[s] > kMaxHuffmanBits) {
      return Status::Corruption("huffman: invalid code length");
    }
    if (lengths[s] > 0) count[lengths[s]]++;
  }
  std::array<uint32_t, kMaxHuffmanBits + 1> first_code{};
  std::array<uint32_t, kMaxHuffmanBits + 1> first_index{};
  uint32_t code = 0;
  uint32_t index = 0;
  for (int len = 1; len <= kMaxHuffmanBits; ++len) {
    code <<= 1;
    first_code[len] = code;
    first_index[len] = index;
    code += count[len];
    index += count[len];
  }
  std::vector<uint8_t> symbols_by_code(index);
  {
    std::array<uint32_t, kMaxHuffmanBits + 1> pos = first_index;
    for (int s = 0; s < 256; ++s) {
      if (lengths[s] > 0) symbols_by_code[pos[lengths[s]]++] = s;
    }
  }

  output->reserve(static_cast<size_t>(std::min<uint64_t>(raw_size, 1 << 22)));
  BitReader reader(input);
  while (output->size() < raw_size) {
    uint32_t acc = 0;
    int len = 0;
    for (;;) {
      const int bit = reader.ReadBit();
      if (bit < 0) return Status::Corruption("huffman: truncated bitstream");
      acc = (acc << 1) | static_cast<uint32_t>(bit);
      ++len;
      if (len > kMaxHuffmanBits) {
        return Status::Corruption("huffman: invalid code");
      }
      if (count[len] > 0 && acc >= first_code[len] &&
          acc < first_code[len] + count[len]) {
        output->push_back(static_cast<char>(
            symbols_by_code[first_index[len] + (acc - first_code[len])]));
        break;
      }
    }
  }
  return Status::OK();
}

}  // namespace modelhub
