#include "compress/codec.h"

#include "common/coding.h"
#include "common/macros.h"
#include "compress/deflate_lite.h"
#include "compress/huffman.h"
#include "compress/rle_codec.h"

namespace modelhub {

namespace {

/// Identity codec; frame: varint(raw_size) | raw bytes.
class NullCodec : public Codec {
 public:
  CodecType type() const override { return CodecType::kNull; }
  std::string name() const override { return "null"; }

  Status Compress(Slice input, std::string* output) const override {
    output->clear();
    PutVarint64(output, input.size());
    output->append(reinterpret_cast<const char*>(input.data()), input.size());
    return Status::OK();
  }

  Status Decompress(Slice input, std::string* output) const override {
    output->clear();
    uint64_t raw_size = 0;
    MH_RETURN_IF_ERROR(GetVarint64(&input, &raw_size));
    if (raw_size > kMaxDecompressedSize) {
      return Status::Corruption("decompress: implausible raw size");
    }
    if (input.size() != raw_size) {
      return Status::Corruption("null codec: size mismatch");
    }
    output->assign(reinterpret_cast<const char*>(input.data()), input.size());
    return Status::OK();
  }
};

}  // namespace

const Codec* Codec::Get(CodecType type) {
  // Intentionally leaked singletons; codecs are stateless.
  static const NullCodec* null_codec = new NullCodec();
  static const RleCodec* rle_codec = new RleCodec();
  static const HuffmanCodec* huffman_codec = new HuffmanCodec();
  static const DeflateLiteCodec* deflate_codec = new DeflateLiteCodec();
  switch (type) {
    case CodecType::kNull:
      return null_codec;
    case CodecType::kRle:
      return rle_codec;
    case CodecType::kHuffman:
      return huffman_codec;
    case CodecType::kDeflateLite:
      return deflate_codec;
  }
  return null_codec;
}

size_t CompressedSize(CodecType type, Slice input) {
  std::string out;
  const Status s = Codec::Get(type)->Compress(input, &out);
  MH_CHECK(s.ok());
  return out.size();
}

}  // namespace modelhub
