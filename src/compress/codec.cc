#include "compress/codec.h"

#include <array>
#include <chrono>

#include "common/coding.h"
#include "common/macros.h"
#include "common/metrics.h"
#include "compress/deflate_lite.h"
#include "compress/huffman.h"
#include "compress/rle_codec.h"

namespace modelhub {

namespace {

/// Identity codec; frame: varint(raw_size) | raw bytes.
class NullCodec : public Codec {
 public:
  CodecType type() const override { return CodecType::kNull; }
  std::string name() const override { return "null"; }

 protected:
  Status DoCompress(Slice input, std::string* output) const override {
    output->clear();
    PutVarint64(output, input.size());
    output->append(reinterpret_cast<const char*>(input.data()), input.size());
    return Status::OK();
  }

  Status DoDecompress(Slice input, std::string* output) const override {
    output->clear();
    uint64_t raw_size = 0;
    MH_RETURN_IF_ERROR(GetVarint64(&input, &raw_size));
    if (raw_size > kMaxDecompressedSize) {
      return Status::Corruption("decompress: implausible raw size");
    }
    if (input.size() != raw_size) {
      return Status::Corruption("null codec: size mismatch");
    }
    output->assign(reinterpret_cast<const char*>(input.data()), input.size());
    return Status::OK();
  }
};

/// Per-codec instrument set, resolved once per CodecType. `CompressedSize`
/// runs inside solver cost loops, so the steady-state cost here must stay
/// at a clock pair plus a handful of relaxed atomic adds.
struct CodecInstruments {
  Counter* encode_calls;
  Counter* encode_in_bytes;
  Counter* encode_out_bytes;
  Histogram* encode_us;
  Counter* decode_calls;
  Counter* decode_out_bytes;
  Histogram* decode_us;
};

const CodecInstruments& InstrumentsFor(const Codec& codec) {
  static const std::array<CodecInstruments, 4>* table = [] {
    auto* t = new std::array<CodecInstruments, 4>();
    MetricRegistry* registry = MetricRegistry::Global();
    const char* names[4] = {"null", "rle", "huffman", "deflate-lite"};
    for (int i = 0; i < 4; ++i) {
      const std::string prefix = std::string("codec.") + names[i];
      (*t)[i].encode_calls = registry->GetCounter(prefix + ".encode.calls");
      (*t)[i].encode_in_bytes =
          registry->GetCounter(prefix + ".encode.in_bytes");
      (*t)[i].encode_out_bytes =
          registry->GetCounter(prefix + ".encode.out_bytes");
      (*t)[i].encode_us = registry->GetHistogram(prefix + ".encode.us");
      (*t)[i].decode_calls = registry->GetCounter(prefix + ".decode.calls");
      (*t)[i].decode_out_bytes =
          registry->GetCounter(prefix + ".decode.out_bytes");
      (*t)[i].decode_us = registry->GetHistogram(prefix + ".decode.us");
    }
    return t;
  }();
  return (*table)[static_cast<uint8_t>(codec.type()) & 3];
}

uint64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

Status Codec::Compress(Slice input, std::string* output) const {
  const CodecInstruments& m = InstrumentsFor(*this);
  const auto start = std::chrono::steady_clock::now();
  const Status s = DoCompress(input, output);
  m.encode_us->Record(MicrosSince(start));
  m.encode_calls->Increment();
  m.encode_in_bytes->Add(input.size());
  if (s.ok()) m.encode_out_bytes->Add(output->size());
  return s;
}

Status Codec::Decompress(Slice input, std::string* output) const {
  const CodecInstruments& m = InstrumentsFor(*this);
  const auto start = std::chrono::steady_clock::now();
  const Status s = DoDecompress(input, output);
  m.decode_us->Record(MicrosSince(start));
  m.decode_calls->Increment();
  if (s.ok()) m.decode_out_bytes->Add(output->size());
  return s;
}

const Codec* Codec::Get(CodecType type) {
  // Intentionally leaked singletons; codecs are stateless.
  static const NullCodec* null_codec = new NullCodec();
  static const RleCodec* rle_codec = new RleCodec();
  static const HuffmanCodec* huffman_codec = new HuffmanCodec();
  static const DeflateLiteCodec* deflate_codec = new DeflateLiteCodec();
  switch (type) {
    case CodecType::kNull:
      return null_codec;
    case CodecType::kRle:
      return rle_codec;
    case CodecType::kHuffman:
      return huffman_codec;
    case CodecType::kDeflateLite:
      return deflate_codec;
  }
  return null_codec;
}

size_t CompressedSize(CodecType type, Slice input) {
  std::string out;
  const Status s = Codec::Get(type)->Compress(input, &out);
  MH_CHECK(s.ok());
  return out.size();
}

}  // namespace modelhub
