#ifndef MODELHUB_COMPRESS_BIT_STREAM_H_
#define MODELHUB_COMPRESS_BIT_STREAM_H_

#include <cstdint>
#include <string>

#include "common/slice.h"

namespace modelhub {

/// MSB-first bit writer appending to a std::string. Used by the Huffman
/// coder; codes are at most 15 bits, and the 64-bit accumulator lets the
/// hot loop buffer several codes between flushes: bytes leave the
/// accumulator four at a time instead of one per Write. The emitted byte
/// stream is identical to a bit-at-a-time writer.
class BitWriter {
 public:
  explicit BitWriter(std::string* out) : out_(out) {}

  /// Appends the low `nbits` bits of `bits`, most significant first.
  /// nbits must be in [1, 32] and the accumulator never exceeds 63 bits
  /// (nacc_ < 32 on entry after the flush below), so the shift is safe.
  void Write(uint32_t bits, int nbits) {
    acc_ = (acc_ << nbits) | (bits & ((1ull << nbits) - 1));
    nacc_ += nbits;
    if (nacc_ >= 32) {
      nacc_ -= 32;
      const uint32_t word = static_cast<uint32_t>(acc_ >> nacc_);
      char bytes[4] = {static_cast<char>((word >> 24) & 0xFF),
                       static_cast<char>((word >> 16) & 0xFF),
                       static_cast<char>((word >> 8) & 0xFF),
                       static_cast<char>(word & 0xFF)};
      out_->append(bytes, 4);
    }
  }

  /// Flushes remaining whole bytes, then any partial byte zero-padded.
  void Finish() {
    while (nacc_ >= 8) {
      nacc_ -= 8;
      out_->push_back(static_cast<char>((acc_ >> nacc_) & 0xFF));
    }
    if (nacc_ > 0) {
      out_->push_back(static_cast<char>((acc_ << (8 - nacc_)) & 0xFF));
      nacc_ = 0;
    }
    acc_ = 0;
  }

 private:
  std::string* out_;
  uint64_t acc_ = 0;
  int nacc_ = 0;
};

/// MSB-first bit reader over a Slice.
class BitReader {
 public:
  explicit BitReader(Slice input) : input_(input) {}

  /// Reads one bit; returns -1 past end of input.
  int ReadBit() {
    if (nacc_ == 0) {
      if (pos_ >= input_.size()) return -1;
      acc_ = input_[pos_++];
      nacc_ = 8;
    }
    --nacc_;
    return (acc_ >> nacc_) & 1;
  }

 private:
  Slice input_;
  size_t pos_ = 0;
  uint32_t acc_ = 0;
  int nacc_ = 0;
};

}  // namespace modelhub

#endif  // MODELHUB_COMPRESS_BIT_STREAM_H_
