#ifndef MODELHUB_COMPRESS_BIT_STREAM_H_
#define MODELHUB_COMPRESS_BIT_STREAM_H_

#include <cstdint>
#include <string>

#include "common/slice.h"

namespace modelhub {

/// MSB-first bit writer appending to a std::string. Used by the Huffman
/// coder; codes are at most 15 bits so a 32-bit accumulator suffices.
class BitWriter {
 public:
  explicit BitWriter(std::string* out) : out_(out) {}

  /// Appends the low `nbits` bits of `bits`, most significant first.
  void Write(uint32_t bits, int nbits) {
    acc_ = (acc_ << nbits) | (bits & ((1u << nbits) - 1));
    nacc_ += nbits;
    while (nacc_ >= 8) {
      nacc_ -= 8;
      out_->push_back(static_cast<char>((acc_ >> nacc_) & 0xFF));
    }
  }

  /// Flushes any partial byte, zero-padding the tail.
  void Finish() {
    if (nacc_ > 0) {
      out_->push_back(static_cast<char>((acc_ << (8 - nacc_)) & 0xFF));
      nacc_ = 0;
    }
    acc_ = 0;
  }

 private:
  std::string* out_;
  uint64_t acc_ = 0;
  int nacc_ = 0;
};

/// MSB-first bit reader over a Slice.
class BitReader {
 public:
  explicit BitReader(Slice input) : input_(input) {}

  /// Reads one bit; returns -1 past end of input.
  int ReadBit() {
    if (nacc_ == 0) {
      if (pos_ >= input_.size()) return -1;
      acc_ = input_[pos_++];
      nacc_ = 8;
    }
    --nacc_;
    return (acc_ >> nacc_) & 1;
  }

 private:
  Slice input_;
  size_t pos_ = 0;
  uint32_t acc_ = 0;
  int nacc_ = 0;
};

}  // namespace modelhub

#endif  // MODELHUB_COMPRESS_BIT_STREAM_H_
