#include "compress/lz77.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/coding.h"
#include "common/macros.h"

namespace modelhub {
namespace lz77 {

namespace {

constexpr uint32_t kHashBits = 15;
constexpr uint32_t kHashSize = 1u << kHashBits;
constexpr int kMaxChainLength = 32;

// Hashes the 4 bytes at p (caller guarantees at least kMinMatch readable).
inline uint32_t Hash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void FlushLiterals(Slice input, size_t start, size_t end, std::string* out) {
  while (start < end) {
    const size_t n = std::min<size_t>(128, end - start);
    out->push_back(static_cast<char>(n - 1));
    out->append(reinterpret_cast<const char*>(input.data() + start), n);
    start += n;
  }
}

}  // namespace

void Tokenize(Slice input, std::string* out) {
  out->clear();
  const size_t n = input.size();
  const uint8_t* data = input.data();

  // head[h]: most recent position with hash h (+1, 0 = empty).
  // prev[i % kWindowSize]: previous position in the chain for position i.
  std::vector<uint32_t> head(kHashSize, 0);
  std::vector<uint32_t> prev(kWindowSize, 0);

  size_t literal_start = 0;
  size_t i = 0;
  while (i + kMinMatch <= n) {
    const uint32_t h = Hash4(data + i);
    size_t best_len = 0;
    size_t best_dist = 0;
    uint32_t candidate = head[h];
    int chain = kMaxChainLength;
    while (candidate != 0 && chain-- > 0) {
      const size_t pos = candidate - 1;
      if (i - pos > kWindowSize) break;
      const size_t limit = std::min(n - i, kMaxMatch);
      size_t len = 0;
      while (len < limit && data[pos + len] == data[i + len]) ++len;
      if (len > best_len) {
        best_len = len;
        best_dist = i - pos;
        if (len >= kMaxMatch) break;
      }
      candidate = prev[pos % kWindowSize];
    }

    if (best_len >= kMinMatch) {
      FlushLiterals(input, literal_start, i, out);
      out->push_back(static_cast<char>(0x80));
      PutVarint64(out, best_len - kMinMatch);
      PutVarint64(out, best_dist - 1);
      // Insert every covered position so later matches can reference them.
      const size_t match_end = i + best_len;
      while (i < match_end && i + kMinMatch <= n) {
        const uint32_t hh = Hash4(data + i);
        prev[i % kWindowSize] = head[hh];
        head[hh] = static_cast<uint32_t>(i + 1);
        ++i;
      }
      i = match_end;
      literal_start = i;
    } else {
      prev[i % kWindowSize] = head[h];
      head[h] = static_cast<uint32_t>(i + 1);
      ++i;
    }
  }
  FlushLiterals(input, literal_start, n, out);
}

Status Detokenize(Slice tokens, std::string* out) {
  out->clear();
  while (!tokens.empty()) {
    const uint8_t op = tokens[0];
    tokens.RemovePrefix(1);
    if (op < 0x80) {
      const size_t count = static_cast<size_t>(op) + 1;
      if (tokens.size() < count) {
        return Status::Corruption("lz77: short literal run");
      }
      out->append(reinterpret_cast<const char*>(tokens.data()), count);
      tokens.RemovePrefix(count);
    } else {
      uint64_t len_minus = 0;
      uint64_t dist_minus = 0;
      MH_RETURN_IF_ERROR(GetVarint64(&tokens, &len_minus));
      MH_RETURN_IF_ERROR(GetVarint64(&tokens, &dist_minus));
      const size_t len = static_cast<size_t>(len_minus) + kMinMatch;
      const size_t dist = static_cast<size_t>(dist_minus) + 1;
      if (dist > out->size() || dist > kWindowSize || len > kMaxMatch) {
        return Status::Corruption("lz77: invalid match");
      }
      // Byte-by-byte copy: matches may overlap their own output.
      size_t src = out->size() - dist;
      for (size_t k = 0; k < len; ++k) {
        out->push_back((*out)[src + k]);
      }
    }
  }
  return Status::OK();
}

}  // namespace lz77
}  // namespace modelhub
