#include "compress/lz77.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/coding.h"
#include "common/macros.h"

namespace modelhub {
namespace lz77 {

namespace {

constexpr uint32_t kHashBits = 15;
constexpr uint32_t kHashSize = 1u << kHashBits;
constexpr int kMaxChainLength = 32;

// Hashes the 4 bytes at p (caller guarantees at least kMinMatch readable).
inline uint32_t Hash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

// Length of the common prefix of a and b, capped at `limit`. Compares
// 8 bytes per step and locates the first differing byte with a count of
// trailing zeros (little-endian: the lowest differing byte is the first).
inline size_t MatchLength(const uint8_t* a, const uint8_t* b, size_t limit) {
  size_t len = 0;
  while (len + 8 <= limit) {
    uint64_t va;
    uint64_t vb;
    std::memcpy(&va, a + len, 8);
    std::memcpy(&vb, b + len, 8);
    const uint64_t diff = va ^ vb;
    if (diff != 0) {
      return len + (static_cast<size_t>(__builtin_ctzll(diff)) >> 3);
    }
    len += 8;
  }
  while (len < limit && a[len] == b[len]) ++len;
  return len;
}

void FlushLiterals(Slice input, size_t start, size_t end, std::string* out) {
  while (start < end) {
    const size_t n = std::min<size_t>(128, end - start);
    out->push_back(static_cast<char>(n - 1));
    out->append(reinterpret_cast<const char*>(input.data() + start), n);
    start += n;
  }
}

}  // namespace

void Tokenize(Slice input, std::string* out) {
  out->clear();
  const size_t n = input.size();
  const uint8_t* data = input.data();

  // head[h]: most recent position with hash h (+1, 0 = empty).
  // prev[i % kWindowSize]: previous position in the chain for position i.
  std::vector<uint32_t> head(kHashSize, 0);
  std::vector<uint32_t> prev(kWindowSize, 0);

  size_t literal_start = 0;
  size_t i = 0;
  while (i + kMinMatch <= n) {
    const uint32_t h = Hash4(data + i);
    size_t best_len = 0;
    size_t best_dist = 0;
    uint32_t candidate = head[h];
    int chain = kMaxChainLength;
    const size_t limit = std::min(n - i, kMaxMatch);
    while (candidate != 0 && chain-- > 0) {
      const size_t pos = candidate - 1;
      if (i - pos > kWindowSize) break;
      // A candidate can only beat best_len if it also matches at offset
      // best_len, so one byte compare rejects most chain entries without
      // walking the prefix. Skipped candidates are exactly those the full
      // compare would also have rejected — the chosen match is unchanged.
      if (best_len == 0 || data[pos + best_len] == data[i + best_len]) {
        const size_t len = MatchLength(data + pos, data + i, limit);
        if (len > best_len) {
          best_len = len;
          best_dist = i - pos;
          // A full-limit match cannot be beaten (later candidates only tie
          // or lose, and ties keep the earlier — nearer — candidate).
          if (len >= limit) break;
        }
      }
      candidate = prev[pos % kWindowSize];
    }

    if (best_len >= kMinMatch) {
      FlushLiterals(input, literal_start, i, out);
      out->push_back(static_cast<char>(0x80));
      PutVarint64(out, best_len - kMinMatch);
      PutVarint64(out, best_dist - 1);
      // Insert every covered position so later matches can reference them.
      const size_t match_end = i + best_len;
      while (i < match_end && i + kMinMatch <= n) {
        const uint32_t hh = Hash4(data + i);
        prev[i % kWindowSize] = head[hh];
        head[hh] = static_cast<uint32_t>(i + 1);
        ++i;
      }
      i = match_end;
      literal_start = i;
    } else {
      prev[i % kWindowSize] = head[h];
      head[h] = static_cast<uint32_t>(i + 1);
      ++i;
    }
  }
  FlushLiterals(input, literal_start, n, out);
}

Status Detokenize(Slice tokens, std::string* out, size_t size_hint) {
  out->clear();
  // The hint is advisory (DeflateLite passes the frame's claimed raw size);
  // cap the speculative reservation so a corrupt frame cannot force a
  // gigabyte allocation before any byte is decoded.
  if (size_hint > 0) out->reserve(std::min<size_t>(size_hint, 1u << 22));
  while (!tokens.empty()) {
    const uint8_t op = tokens[0];
    tokens.RemovePrefix(1);
    if (op < 0x80) {
      const size_t count = static_cast<size_t>(op) + 1;
      if (tokens.size() < count) {
        return Status::Corruption("lz77: short literal run");
      }
      out->append(reinterpret_cast<const char*>(tokens.data()), count);
      tokens.RemovePrefix(count);
    } else {
      uint64_t len_minus = 0;
      uint64_t dist_minus = 0;
      MH_RETURN_IF_ERROR(GetVarint64(&tokens, &len_minus));
      MH_RETURN_IF_ERROR(GetVarint64(&tokens, &dist_minus));
      const size_t len = static_cast<size_t>(len_minus) + kMinMatch;
      const size_t dist = static_cast<size_t>(dist_minus) + 1;
      if (dist > out->size() || dist > kWindowSize || len > kMaxMatch) {
        return Status::Corruption("lz77: invalid match");
      }
      // Grow once, then copy within the buffer. resize() may reallocate,
      // so source/destination pointers are taken afterwards.
      const size_t old_size = out->size();
      out->resize(old_size + len);
      char* dst = out->data() + old_size;
      const char* from = dst - dist;
      if (dist >= len) {
        // Non-overlapping: one memcpy. This is the hot path for
        // incompressible planes too, via their long literal runs above.
        std::memcpy(dst, from, len);
      } else if (dist == 1) {
        // Run of a single byte (the "aaaa..." case).
        std::memset(dst, from[0], len);
      } else {
        // Overlapping with period `dist`: the byte-by-byte reference copy.
        for (size_t k = 0; k < len; ++k) dst[k] = from[k];
      }
    }
  }
  return Status::OK();
}

}  // namespace lz77
}  // namespace modelhub
