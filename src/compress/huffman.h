#ifndef MODELHUB_COMPRESS_HUFFMAN_H_
#define MODELHUB_COMPRESS_HUFFMAN_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "compress/codec.h"

namespace modelhub {

/// Maximum Huffman code length. 15 matches DEFLATE and keeps decode tables
/// small; the builder rescales skewed frequency tables until it holds.
inline constexpr int kMaxHuffmanBits = 15;

/// Computes canonical Huffman code lengths (<= kMaxHuffmanBits) for the 256
/// byte symbols given their frequencies. Symbols with zero frequency get
/// length 0. At least one symbol must have non-zero frequency.
std::array<uint8_t, 256> BuildHuffmanCodeLengths(
    const std::array<uint64_t, 256>& freq);

/// Assigns canonical codes from lengths: codes are ordered by (length,
/// symbol) per the DEFLATE convention. codes[s] is valid iff lengths[s] > 0.
std::array<uint16_t, 256> AssignCanonicalCodes(
    const std::array<uint8_t, 256>& lengths);

/// Order-0 canonical Huffman codec over bytes.
///
/// Frame: varint(raw_size) | 128 bytes of packed 4-bit code lengths |
/// bitstream. raw_size == 0 frames carry no further payload. Code lengths
/// above 15 cannot occur; a special all-zero length table means "single
/// distinct symbol" and is followed by that symbol byte.
class HuffmanCodec : public Codec {
 public:
  CodecType type() const override { return CodecType::kHuffman; }
  std::string name() const override { return "huffman"; }

 protected:
  Status DoCompress(Slice input, std::string* output) const override;
  Status DoDecompress(Slice input, std::string* output) const override;
};

}  // namespace modelhub

#endif  // MODELHUB_COMPRESS_HUFFMAN_H_
