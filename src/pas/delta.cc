#include "pas/delta.h"

#include <algorithm>
#include <cstring>

#include "common/macros.h"

namespace modelhub {

namespace {

float XorFloats(float a, float b) {
  uint32_t ua;
  uint32_t ub;
  std::memcpy(&ua, &a, 4);
  std::memcpy(&ub, &b, 4);
  const uint32_t ux = ua ^ ub;
  float x;
  std::memcpy(&x, &ux, 4);
  return x;
}

/// Shared adaptive kernel: applies `op` elementwise on the overlap of the
/// target shape with `base`; outside the overlap the passthrough value is
/// used (the target's own value for both compute and apply directions,
/// since sub/xor with an implicit zero/identity base degenerate to it).
template <typename Op>
FloatMatrix AdaptiveCombine(const FloatMatrix& primary,
                            const FloatMatrix& base, Op op) {
  FloatMatrix out(primary.rows(), primary.cols());
  const int64_t overlap_rows = std::min(primary.rows(), base.rows());
  const int64_t overlap_cols = std::min(primary.cols(), base.cols());
  for (int64_t r = 0; r < primary.rows(); ++r) {
    for (int64_t c = 0; c < primary.cols(); ++c) {
      if (r < overlap_rows && c < overlap_cols) {
        out.At(r, c) = op(primary.At(r, c), base.At(r, c));
      } else {
        out.At(r, c) = primary.At(r, c);
      }
    }
  }
  return out;
}

}  // namespace

bool IsAdaptive(DeltaKind kind) {
  return kind == DeltaKind::kAdaptiveSub || kind == DeltaKind::kAdaptiveXor;
}

DeltaKind ToAdaptive(DeltaKind kind) {
  if (kind == DeltaKind::kSub) return DeltaKind::kAdaptiveSub;
  if (kind == DeltaKind::kXor) return DeltaKind::kAdaptiveXor;
  return kind;
}

std::string_view DeltaKindToString(DeltaKind kind) {
  switch (kind) {
    case DeltaKind::kMaterialized:
      return "materialized";
    case DeltaKind::kSub:
      return "sub";
    case DeltaKind::kXor:
      return "xor";
    case DeltaKind::kAdaptiveSub:
      return "adaptive-sub";
    case DeltaKind::kAdaptiveXor:
      return "adaptive-xor";
  }
  return "unknown";
}

Result<DeltaKind> DeltaKindFromString(std::string_view name) {
  for (DeltaKind kind :
       {DeltaKind::kMaterialized, DeltaKind::kSub, DeltaKind::kXor,
        DeltaKind::kAdaptiveSub, DeltaKind::kAdaptiveXor}) {
    if (DeltaKindToString(kind) == name) return kind;
  }
  return Status::InvalidArgument("unknown delta kind: " + std::string(name));
}

Status ValidateDeltaShapes(const FloatMatrix& target, const FloatMatrix* base,
                           DeltaKind kind) {
  if (base == nullptr) return Status::OK();  // Materialized payload.
  if ((kind == DeltaKind::kSub || kind == DeltaKind::kXor) &&
      (target.rows() != base->rows() || target.cols() != base->cols())) {
    return Status::InvalidArgument("delta: shape mismatch");
  }
  switch (kind) {
    case DeltaKind::kMaterialized:
    case DeltaKind::kSub:
    case DeltaKind::kXor:
    case DeltaKind::kAdaptiveSub:
    case DeltaKind::kAdaptiveXor:
      return Status::OK();
  }
  return Status::InvalidArgument("unknown delta kind");
}

void ComputeDeltaRows(const FloatMatrix& target, const FloatMatrix* base,
                      DeltaKind kind, int64_t row_begin, int64_t row_end,
                      float* out) {
  const int64_t cols = target.cols();
  const float* t = target.data().data() + row_begin * cols;
  const size_t count = static_cast<size_t>(row_end - row_begin) *
                       static_cast<size_t>(cols);
  if (base == nullptr || kind == DeltaKind::kMaterialized) {
    std::memcpy(out, t, count * sizeof(float));
    return;
  }
  switch (kind) {
    case DeltaKind::kMaterialized:
      break;  // Handled above.
    case DeltaKind::kSub: {
      const float* b = base->data().data() + row_begin * cols;
      for (size_t i = 0; i < count; ++i) out[i] = t[i] - b[i];
      break;
    }
    case DeltaKind::kXor: {
      const float* b = base->data().data() + row_begin * cols;
      for (size_t i = 0; i < count; ++i) out[i] = XorFloats(t[i], b[i]);
      break;
    }
    case DeltaKind::kAdaptiveSub:
    case DeltaKind::kAdaptiveXor: {
      const int64_t overlap_rows = std::min(target.rows(), base->rows());
      const int64_t overlap_cols = std::min(cols, base->cols());
      float* dst = out;
      for (int64_t r = row_begin; r < row_end; ++r) {
        for (int64_t c = 0; c < cols; ++c, ++dst) {
          if (r < overlap_rows && c < overlap_cols) {
            *dst = kind == DeltaKind::kAdaptiveSub
                       ? target.At(r, c) - base->At(r, c)
                       : XorFloats(target.At(r, c), base->At(r, c));
          } else {
            *dst = target.At(r, c);
          }
        }
      }
      break;
    }
  }
}

Result<FloatMatrix> ComputeDelta(const FloatMatrix& target,
                                 const FloatMatrix& base, DeltaKind kind) {
  if (kind == DeltaKind::kMaterialized) return target;
  MH_RETURN_IF_ERROR(ValidateDeltaShapes(target, &base, kind));
  FloatMatrix out(target.rows(), target.cols());
  ComputeDeltaRows(target, &base, kind, 0, target.rows(),
                   out.data().data());
  return out;
}

Result<FloatMatrix> ApplyDelta(const FloatMatrix& base,
                               const FloatMatrix& delta, DeltaKind kind) {
  switch (kind) {
    case DeltaKind::kMaterialized:
      return delta;
    case DeltaKind::kSub:
      return delta.Add(base);
    case DeltaKind::kXor:
      return delta.BitwiseXor(base);
    case DeltaKind::kAdaptiveSub:
      return AdaptiveCombine(delta, base,
                             [](float d, float b) { return d + b; });
    case DeltaKind::kAdaptiveXor:
      return AdaptiveCombine(delta, base, XorFloats);
  }
  return Status::InvalidArgument("unknown delta kind");
}

}  // namespace modelhub
