#include "pas/chunk_store.h"

#include <chrono>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/macros.h"
#include "common/metrics.h"

namespace modelhub {

namespace {
constexpr char kHeaderMagic[] = "MHCS1\n";
constexpr size_t kHeaderSize = 6;
constexpr char kTailMagic[] = "MHCSEND1";
constexpr size_t kTailSize = 8;
}  // namespace

ChunkStoreWriter::ChunkStoreWriter(Env* env, std::string path)
    : env_(env), path_(std::move(path)) {
  data_.append(kHeaderMagic, kHeaderSize);
}

Result<uint32_t> ChunkStoreWriter::Put(Slice raw, CodecType codec) {
  if (finished_) {
    return Status::FailedPrecondition("Put after Finish");
  }
  std::string compressed;
  MH_RETURN_IF_ERROR(Codec::Get(codec)->Compress(raw, &compressed));
  return PutCompressed(Slice(compressed), raw.size(), codec);
}

Result<uint32_t> ChunkStoreWriter::PutCompressed(Slice compressed,
                                                 uint64_t raw_size,
                                                 CodecType codec) {
  if (finished_) {
    return Status::FailedPrecondition("Put after Finish");
  }
  MH_COUNTER("pas.chunk.write.count")->Increment();
  MH_COUNTER("pas.chunk.write.bytes")->Add(compressed.size());
  ChunkRef ref;
  ref.offset = data_.size();
  ref.stored_size = compressed.size();
  ref.raw_size = raw_size;
  ref.crc = Crc32(compressed);
  ref.codec = codec;
  data_.append(reinterpret_cast<const char*>(compressed.data()),
               compressed.size());
  refs_.push_back(ref);
  return static_cast<uint32_t>(refs_.size()) - 1;
}

Status ChunkStoreWriter::Finish() {
  if (finished_) return Status::FailedPrecondition("double Finish");
  finished_ = true;
  const uint64_t index_offset = data_.size();
  for (const ChunkRef& ref : refs_) {
    PutFixed64(&data_, ref.offset);
    PutFixed64(&data_, ref.stored_size);
    PutFixed64(&data_, ref.raw_size);
    PutFixed32(&data_, ref.crc);
    data_.push_back(static_cast<char>(ref.codec));
  }
  PutFixed64(&data_, index_offset);
  PutFixed64(&data_, refs_.size());
  data_.append(kTailMagic, kTailSize);
  return env_->WriteFile(path_, data_);
}

Result<ChunkStoreReader> ChunkStoreReader::Open(Env* env,
                                                const std::string& path) {
  ChunkStoreReader reader;
  reader.env_ = env;
  reader.path_ = path;
  MH_ASSIGN_OR_RETURN(const uint64_t file_size, env->FileSize(path));
  const uint64_t tail_len = 8 + 8 + kTailSize;
  if (file_size < kHeaderSize + tail_len) {
    return Status::Corruption("chunk store too small: " + path);
  }
  MH_ASSIGN_OR_RETURN(
      std::string tail,
      env->ReadFileRange(path, file_size - tail_len, tail_len));
  if (tail.size() != tail_len ||
      tail.compare(16, kTailSize, kTailMagic) != 0) {
    return Status::Corruption("chunk store bad tail magic: " + path);
  }
  Slice tail_slice(tail);
  uint64_t index_offset = 0;
  uint64_t chunk_count = 0;
  MH_RETURN_IF_ERROR(GetFixed64(&tail_slice, &index_offset));
  MH_RETURN_IF_ERROR(GetFixed64(&tail_slice, &chunk_count));
  const uint64_t entry_size = 8 + 8 + 8 + 4 + 1;
  // Validate the footer against the actual file size before deriving any
  // read range from it: a truncated or bit-flipped footer must yield
  // Corruption, never an out-of-file read or an overflowing product.
  if (index_offset < kHeaderSize || index_offset > file_size - tail_len) {
    return Status::Corruption("chunk store index offset out of file: " + path);
  }
  const uint64_t index_size = file_size - tail_len - index_offset;
  if (chunk_count > UINT32_MAX || index_size % entry_size != 0 ||
      chunk_count != index_size / entry_size) {
    return Status::Corruption("chunk store index bounds mismatch: " + path);
  }
  MH_ASSIGN_OR_RETURN(std::string index,
                      env->ReadFileRange(path, index_offset, index_size));
  if (index.size() != index_size) {
    return Status::Corruption("chunk store short index read: " + path);
  }
  Slice in(index);
  reader.refs_.reserve(static_cast<size_t>(chunk_count));
  for (uint64_t i = 0; i < chunk_count; ++i) {
    ChunkRef ref;
    MH_RETURN_IF_ERROR(GetFixed64(&in, &ref.offset));
    MH_RETURN_IF_ERROR(GetFixed64(&in, &ref.stored_size));
    MH_RETURN_IF_ERROR(GetFixed64(&in, &ref.raw_size));
    MH_RETURN_IF_ERROR(GetFixed32(&in, &ref.crc));
    if (in.empty()) return Status::Corruption("chunk store truncated index");
    ref.codec = static_cast<CodecType>(in[0]);
    in.RemovePrefix(1);
    if (ref.offset < kHeaderSize || ref.stored_size > index_offset ||
        ref.offset > index_offset - ref.stored_size) {
      return Status::Corruption("chunk ref out of bounds: " + path);
    }
    reader.refs_.push_back(ref);
  }
  // Mapping is an optimization, never a requirement: any failure (Env
  // without mmap, size race with a concurrent replace) silently falls
  // back to ranged reads. The size check guards the race: refs were
  // validated against file_size, so a shorter mapping must not be used.
  if (auto mapping = env->MapFile(path);
      mapping.ok() && (*mapping)->size() == file_size) {
    reader.mapping_ = std::move(*mapping);
    MH_COUNTER("pas.chunk.mmap.open")->Increment();
  }
  return reader;
}

void ChunkStoreReader::EnableCache(bool enable) {
  std::lock_guard<std::mutex> lock(*mutex_);
  cache_enabled_ = enable;
  if (!enable) {
    cache_.clear();
    lru_.clear();
    stats_->cache_bytes.store(0, std::memory_order_relaxed);
  }
}

void ChunkStoreReader::SetCacheCapacity(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(*mutex_);
  cache_capacity_ = bytes;
  EvictToCapacityLocked();
}

void ChunkStoreReader::EvictToCapacityLocked() const {
  while (stats_->cache_bytes.load(std::memory_order_relaxed) >
             cache_capacity_ &&
         !lru_.empty()) {
    const uint32_t victim = lru_.back();
    lru_.pop_back();
    auto it = cache_.find(victim);
    stats_->cache_bytes.fetch_sub(it->second.data.size(),
                                  std::memory_order_relaxed);
    cache_.erase(it);
    stats_->cache_evictions.fetch_add(1, std::memory_order_relaxed);
    MH_COUNTER("pas.chunk.cache.evict")->Increment();
  }
}

Result<std::string> ChunkStoreReader::Get(uint32_t id) const {
  if (id >= refs_.size()) {
    return Status::InvalidArgument("chunk id out of range");
  }
  {
    std::lock_guard<std::mutex> lock(*mutex_);
    if (cache_enabled_) {
      auto it = cache_.find(id);
      if (it != cache_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        stats_->cache_hits.fetch_add(1, std::memory_order_relaxed);
        MH_COUNTER("pas.chunk.cache.hit")->Increment();
        return it->second.data;
      }
    }
  }
  MH_COUNTER("pas.chunk.cache.miss")->Increment();
  const auto fetch_start = std::chrono::steady_clock::now();
  const ChunkRef& ref = refs_[id];
  std::string raw;
  bool fetched = false;
  if (mapping_ != nullptr) {
    // Zero-copy fast path: checksum and decompress straight out of the
    // mapping. Open validated every ref against the mapped size, so the
    // view is in bounds. A CRC mismatch here falls through to the
    // ranged-read path below, whose retry distinguishes a transient
    // fault from persistent corruption.
    const Slice view(mapping_->data() + ref.offset,
                     static_cast<size_t>(ref.stored_size));
    if (Crc32(view) == ref.crc) {
      MH_RETURN_IF_ERROR(Codec::Get(ref.codec)->Decompress(view, &raw));
      MH_COUNTER("pas.chunk.read.mmap")->Increment();
      fetched = true;
    } else {
      MH_COUNTER("pas.chunk.mmap.fallback")->Increment();
    }
  }
  if (!fetched) {
    // One retry distinguishes a transient read fault from real on-disk
    // corruption: a bad sector or torn page read may succeed the second
    // time, a corrupted payload fails both.
    std::string compressed;
    Status read_status = Status::OK();
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (attempt > 0) MH_COUNTER("pas.chunk.read.retry")->Increment();
      auto bytes = env_->ReadFileRange(path_, ref.offset, ref.stored_size);
      if (!bytes.ok()) {
        read_status = bytes.status();
        continue;
      }
      if (bytes->size() != ref.stored_size) {
        read_status = Status::Corruption("short chunk read");
        continue;
      }
      if (Crc32(Slice(*bytes)) != ref.crc) {
        read_status = Status::Corruption("chunk checksum mismatch");
        continue;
      }
      compressed = std::move(*bytes);
      read_status = Status::OK();
      break;
    }
    if (!read_status.ok()) {
      MH_COUNTER("pas.chunk.read.error")->Increment();
      return read_status;
    }
    MH_RETURN_IF_ERROR(
        Codec::Get(ref.codec)->Decompress(Slice(compressed), &raw));
  }
  if (raw.size() != ref.raw_size) {
    return Status::Corruption("chunk raw size mismatch");
  }
  {
    std::lock_guard<std::mutex> lock(*mutex_);
    // A concurrent Get may have fetched the same chunk; count bytes once.
    if (cache_enabled_) {
      auto it = cache_.find(id);
      if (it != cache_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        return it->second.data;
      }
    }
    stats_->bytes_read.fetch_add(ref.stored_size, std::memory_order_relaxed);
    stats_->chunk_fetches.fetch_add(1, std::memory_order_relaxed);
    // Oversized chunks bypass the cache entirely: admitting one would
    // evict most or all of the resident working set for a payload that
    // is typically read once. The 1/kCacheAdmitFraction cap keeps any
    // single admission from displacing more than a small share of it.
    if (cache_enabled_ &&
        raw.size() <= cache_capacity_ / kCacheAdmitFraction) {
      lru_.push_front(id);
      cache_.emplace(id, CacheEntry{raw, lru_.begin()});
      stats_->cache_bytes.fetch_add(raw.size(), std::memory_order_relaxed);
      EvictToCapacityLocked();
    }
  }
  MH_COUNTER("pas.chunk.fetch.count")->Increment();
  MH_COUNTER("pas.chunk.fetch.bytes")->Add(ref.stored_size);
  MH_HISTOGRAM("pas.chunk.fetch.us")
      ->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - fetch_start)
              .count()));
  return raw;
}

Result<std::string> ChunkStoreReader::GetCompressed(uint32_t id) const {
  if (id >= refs_.size()) {
    return Status::InvalidArgument("chunk id out of range");
  }
  const ChunkRef& ref = refs_[id];
  if (mapping_ != nullptr) {
    const Slice view(mapping_->data() + ref.offset,
                     static_cast<size_t>(ref.stored_size));
    if (Crc32(view) == ref.crc) return view.ToString();
    // Fall through to the ranged read, whose retry distinguishes a
    // transient fault from persistent corruption.
  }
  std::string compressed;
  Status read_status = Status::OK();
  for (int attempt = 0; attempt < 2; ++attempt) {
    auto bytes = env_->ReadFileRange(path_, ref.offset, ref.stored_size);
    if (!bytes.ok()) {
      read_status = bytes.status();
      continue;
    }
    if (bytes->size() != ref.stored_size) {
      read_status = Status::Corruption("short chunk read");
      continue;
    }
    if (Crc32(Slice(*bytes)) != ref.crc) {
      read_status = Status::Corruption("chunk checksum mismatch");
      continue;
    }
    compressed = std::move(*bytes);
    read_status = Status::OK();
    break;
  }
  if (!read_status.ok()) return read_status;
  return compressed;
}

Status ChunkStoreReader::Verify(uint32_t id) const {
  if (id >= refs_.size()) {
    return Status::InvalidArgument("chunk id out of range");
  }
  const ChunkRef& ref = refs_[id];
  if (mapping_ != nullptr) {
    // fsck over a mapped store is a pure checksum sweep of the page
    // cache — no per-chunk allocation or copy.
    const Slice view(mapping_->data() + ref.offset,
                     static_cast<size_t>(ref.stored_size));
    if (Crc32(view) == ref.crc) return Status::OK();
    // Fall through and re-read: a transient fault should not fail fsck.
  }
  MH_ASSIGN_OR_RETURN(
      std::string compressed,
      env_->ReadFileRange(path_, ref.offset, ref.stored_size));
  if (compressed.size() != ref.stored_size) {
    return Status::Corruption("short chunk read: " + path_ + " chunk " +
                              std::to_string(id));
  }
  if (Crc32(Slice(compressed)) != ref.crc) {
    return Status::Corruption("chunk checksum mismatch: " + path_ +
                              " chunk " + std::to_string(id));
  }
  return Status::OK();
}

}  // namespace modelhub
