#include "pas/storage_graph.h"

#include <algorithm>
#include <set>

#include "common/macros.h"

namespace modelhub {

std::string_view RetrievalSchemeToString(RetrievalScheme scheme) {
  switch (scheme) {
    case RetrievalScheme::kIndependent:
      return "independent";
    case RetrievalScheme::kParallel:
      return "parallel";
    case RetrievalScheme::kReusable:
      return "reusable";
  }
  return "unknown";
}

MatrixStorageGraph::MatrixStorageGraph() {
  names_.push_back("v0");
  incident_.emplace_back();
}

int MatrixStorageGraph::AddVertex(std::string name) {
  names_.push_back(std::move(name));
  incident_.emplace_back();
  return static_cast<int>(names_.size()) - 1;
}

Result<int> MatrixStorageGraph::AddEdge(int u, int v, double storage_cost,
                                        double recreation_cost, int tier) {
  if (u < 0 || v < 0 || u >= num_vertices() || v >= num_vertices()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (u == v) return Status::InvalidArgument("self-loop edge");
  if (storage_cost <= 0.0 || recreation_cost < 0.0) {
    return Status::InvalidArgument("edge costs must be positive");
  }
  StorageEdge edge;
  edge.id = static_cast<int>(edges_.size());
  edge.u = u;
  edge.v = v;
  edge.storage_cost = storage_cost;
  edge.recreation_cost = recreation_cost;
  edge.tier = tier;
  edges_.push_back(edge);
  incident_[u].push_back(edge.id);
  incident_[v].push_back(edge.id);
  return edge.id;
}

Status MatrixStorageGraph::AddGroup(std::string name, std::vector<int> members,
                                    double budget) {
  for (int m : members) {
    if (m <= 0 || m >= num_vertices()) {
      return Status::InvalidArgument("group member out of range: " + name);
    }
  }
  groups_.push_back(CoUsageGroup{std::move(name), std::move(members), budget});
  return Status::OK();
}

bool MatrixStorageGraph::IsConnected() const {
  std::vector<bool> seen(names_.size(), false);
  std::vector<int> stack = {0};
  seen[0] = true;
  int count = 1;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (int eid : incident_[v]) {
      const StorageEdge& e = edges_[eid];
      const int other = e.u == v ? e.v : e.u;
      if (!seen[other]) {
        seen[other] = true;
        ++count;
        stack.push_back(other);
      }
    }
  }
  return count == num_vertices();
}

Result<StoragePlan> StoragePlan::FromParentEdges(
    const MatrixStorageGraph* graph, std::vector<int> parent_edge) {
  if (static_cast<int>(parent_edge.size()) != graph->num_vertices()) {
    return Status::InvalidArgument("parent_edge size mismatch");
  }
  if (parent_edge[0] != -1) {
    return Status::InvalidArgument("v0 must have no parent");
  }
  // Validate: each vertex's parent edge is incident to it, and following
  // parents reaches v0 without cycles.
  for (int v = 1; v < graph->num_vertices(); ++v) {
    const int eid = parent_edge[v];
    if (eid < 0 || eid >= static_cast<int>(graph->edges().size())) {
      return Status::InvalidArgument("vertex lacks a valid parent edge");
    }
    const StorageEdge& e = graph->edge(eid);
    if (e.u != v && e.v != v) {
      return Status::InvalidArgument("parent edge not incident to vertex");
    }
  }
  StoragePlan plan;
  plan.graph_ = graph;
  plan.parent_edge_ = std::move(parent_edge);
  // Cycle check by walking each root path with a step bound.
  for (int v = 1; v < graph->num_vertices(); ++v) {
    int cur = v;
    int steps = 0;
    while (cur != 0) {
      cur = plan.Parent(cur);
      if (cur < 0 || ++steps > graph->num_vertices()) {
        return Status::InvalidArgument("parent edges contain a cycle");
      }
    }
  }
  return plan;
}

int StoragePlan::Parent(int v) const {
  if (v == 0) return -1;
  const StorageEdge& e = graph_->edge(parent_edge_[v]);
  return e.u == v ? e.v : e.u;
}

double StoragePlan::TotalStorageCost() const {
  double total = 0.0;
  for (int v = 1; v < graph_->num_vertices(); ++v) {
    total += graph_->edge(parent_edge_[v]).storage_cost;
  }
  return total;
}

void StoragePlan::RecomputePathCosts() const {
  const int n = graph_->num_vertices();
  path_cost_.assign(static_cast<size_t>(n), -1.0);
  path_cost_[0] = 0.0;
  for (int v = 1; v < n; ++v) {
    // Walk up collecting unresolved vertices, then unwind.
    std::vector<int> chain;
    int cur = v;
    while (path_cost_[static_cast<size_t>(cur)] < 0.0) {
      chain.push_back(cur);
      cur = Parent(cur);
    }
    double cost = path_cost_[static_cast<size_t>(cur)];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      cost += graph_->edge(parent_edge_[*it]).recreation_cost;
      path_cost_[static_cast<size_t>(*it)] = cost;
    }
  }
  path_cost_valid_ = true;
}

double StoragePlan::PathRecreationCost(int v) const {
  if (!path_cost_valid_) RecomputePathCosts();
  return path_cost_[static_cast<size_t>(v)];
}

double StoragePlan::GroupRecreationCost(const CoUsageGroup& group,
                                        RetrievalScheme scheme) const {
  if (!path_cost_valid_) RecomputePathCosts();
  switch (scheme) {
    case RetrievalScheme::kIndependent: {
      double total = 0.0;
      for (int m : group.members) total += path_cost_[static_cast<size_t>(m)];
      return total;
    }
    case RetrievalScheme::kParallel: {
      double max_cost = 0.0;
      for (int m : group.members) {
        max_cost = std::max(max_cost, path_cost_[static_cast<size_t>(m)]);
      }
      return max_cost;
    }
    case RetrievalScheme::kReusable: {
      // In a tree, the minimal Steiner tree spanning {v0} + members is the
      // union of their root paths: sum each edge once.
      std::set<int> edges_used;
      for (int m : group.members) {
        int cur = m;
        while (cur != 0) {
          if (!edges_used.insert(parent_edge_[cur]).second) break;
          cur = Parent(cur);
        }
      }
      double total = 0.0;
      for (int eid : edges_used) {
        total += graph_->edge(eid).recreation_cost;
      }
      return total;
    }
  }
  return 0.0;
}

bool StoragePlan::SatisfiesBudgets(RetrievalScheme scheme) const {
  return NumViolatedBudgets(scheme) == 0;
}

int StoragePlan::NumViolatedBudgets(RetrievalScheme scheme) const {
  int violated = 0;
  for (const CoUsageGroup& group : graph_->groups()) {
    if (group.budget <= 0.0) continue;
    // Tolerance for float accumulation.
    if (GroupRecreationCost(group, scheme) > group.budget * (1 + 1e-9)) {
      ++violated;
    }
  }
  return violated;
}

std::vector<int> StoragePlan::Subtree(int v) const {
  // Children are not indexed; scan parents once.
  const int n = graph_->num_vertices();
  std::vector<std::vector<int>> children(static_cast<size_t>(n));
  for (int u = 1; u < n; ++u) {
    children[static_cast<size_t>(Parent(u))].push_back(u);
  }
  std::vector<int> out;
  std::vector<int> stack = {v};
  while (!stack.empty()) {
    const int cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    for (int child : children[static_cast<size_t>(cur)]) {
      stack.push_back(child);
    }
  }
  return out;
}

Status StoragePlan::Swap(int v, int edge_id) {
  if (v <= 0 || v >= graph_->num_vertices()) {
    return Status::InvalidArgument("cannot swap v0 or out-of-range vertex");
  }
  const StorageEdge& e = graph_->edge(edge_id);
  if (e.u != v && e.v != v) {
    return Status::InvalidArgument("swap edge not incident to vertex");
  }
  const int new_parent = e.u == v ? e.v : e.u;
  // The new parent must not be inside v's subtree (would create a cycle).
  const std::vector<int> subtree = Subtree(v);
  if (std::find(subtree.begin(), subtree.end(), new_parent) !=
      subtree.end()) {
    return Status::InvalidArgument("swap would create a cycle");
  }
  parent_edge_[v] = edge_id;
  path_cost_valid_ = false;
  return Status::OK();
}

}  // namespace modelhub
