#include "pas/sketch.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <utility>

namespace modelhub {

namespace {

/// Window of earlier same-shape matrices each matrix is compared against.
/// Bounds pairing work to O(n * window) sketch comparisons while still
/// spanning far more snapshots than any realistic fine-tune family.
constexpr size_t kPairingWindow = 768;

inline uint64_t MixSlot(const Hash128& token, int slot) {
  // Kirsch–Mitzenmacher double hashing: h_i(t) = hi + (i+1) * lo behaves
  // like an independent hash per slot when (hi, lo) is a strong 128-bit
  // hash of the token.
  uint64_t v = token.hi + (static_cast<uint64_t>(slot) + 1) * token.lo;
  v ^= v >> 33;
  v *= 0xFF51AFD7ED558CCDull;
  v ^= v >> 29;
  return v;
}

}  // namespace

ParamSketch ComputeParamSketch(const FloatMatrix& matrix) {
  ParamSketch sketch;
  sketch.rows = matrix.rows();
  sketch.cols = matrix.cols();
  sketch.slots.fill(UINT64_MAX);
  const std::vector<float>& data = matrix.data();
  // One token per block: the block's position plus the top 16 bits of
  // every float in it. Position-tagging keeps distinct-but-repetitive
  // regions (e.g. two zero-initialized layers) from aliasing into one
  // token and faking similarity.
  std::vector<uint16_t> block(2 + static_cast<size_t>(kSketchBlockFloats));
  for (size_t begin = 0; begin < data.size();
       begin += static_cast<size_t>(kSketchBlockFloats)) {
    const size_t end = std::min(
        data.size(), begin + static_cast<size_t>(kSketchBlockFloats));
    const uint32_t block_index =
        static_cast<uint32_t>(begin / static_cast<size_t>(kSketchBlockFloats));
    block[0] = static_cast<uint16_t>(block_index & 0xFFFF);
    block[1] = static_cast<uint16_t>(block_index >> 16);
    size_t out = 2;
    for (size_t i = begin; i < end; ++i) {
      uint32_t bits = 0;
      std::memcpy(&bits, &data[i], sizeof(bits));
      block[out++] = static_cast<uint16_t>(bits >> 16);
    }
    const Hash128 token =
        ContentHash128(block.data(), out * sizeof(uint16_t));
    for (int s = 0; s < kSketchSlots; ++s) {
      sketch.slots[static_cast<size_t>(s)] = std::min(
          sketch.slots[static_cast<size_t>(s)], MixSlot(token, s));
    }
  }
  return sketch;
}

double SketchSimilarity(const ParamSketch& a, const ParamSketch& b) {
  if (a.rows != b.rows || a.cols != b.cols) return 0.0;
  int matches = 0;
  for (int s = 0; s < kSketchSlots; ++s) {
    if (a.slots[static_cast<size_t>(s)] == b.slots[static_cast<size_t>(s)]) {
      ++matches;
    }
  }
  return static_cast<double>(matches) / static_cast<double>(kSketchSlots);
}

std::vector<SketchPairing> SimilarDeltaPairs(
    const std::vector<ParamSketch>& sketches, int fanout, double threshold) {
  std::vector<SketchPairing> pairings;
  if (fanout <= 0 || sketches.size() < 2) return pairings;
  std::map<std::pair<int64_t, int64_t>, std::vector<int>> by_shape;
  for (size_t i = 0; i < sketches.size(); ++i) {
    by_shape[{sketches[i].rows, sketches[i].cols}].push_back(
        static_cast<int>(i));
  }
  for (const auto& [shape, members] : by_shape) {
    for (size_t j = 1; j < members.size(); ++j) {
      const int to = members[j];
      // Best `fanout` earlier same-shape matrices within the window, most
      // similar first, earlier index winning ties.
      std::vector<SketchPairing> best;
      const size_t window_begin = j > kPairingWindow ? j - kPairingWindow : 0;
      for (size_t i = window_begin; i < j; ++i) {
        const int from = members[i];
        const double sim = SketchSimilarity(
            sketches[static_cast<size_t>(from)],
            sketches[static_cast<size_t>(to)]);
        if (sim < threshold) continue;
        best.push_back(SketchPairing{from, to, sim});
      }
      std::stable_sort(best.begin(), best.end(),
                       [](const SketchPairing& a, const SketchPairing& b) {
                         return a.similarity > b.similarity;
                       });
      if (best.size() > static_cast<size_t>(fanout)) {
        best.resize(static_cast<size_t>(fanout));
      }
      pairings.insert(pairings.end(), best.begin(), best.end());
    }
  }
  return pairings;
}

}  // namespace modelhub
