#include "pas/coalesce.h"

#include "common/metrics.h"

namespace modelhub {

void SnapshotCoalescer::PurgeExpiredLocked() {
  if (linger_ms_ <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  for (auto it = flights_.begin(); it != flights_.end();) {
    Flight& flight = *it->second;
    bool expired = false;
    {
      std::lock_guard<std::mutex> lock(flight.mu);
      expired = flight.done &&
                now - flight.completed_at >
                    std::chrono::milliseconds(linger_ms_);
    }
    it = expired ? flights_.erase(it) : std::next(it);
  }
}

Result<std::shared_ptr<const std::string>> SnapshotCoalescer::Fetch(
    const std::string& key, int planes) {
  const Key map_key(key, planes);
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PurgeExpiredLocked();
    auto it = flights_.find(map_key);
    if (it != flights_.end()) {
      flight = it->second;
      ++hits_;
    } else {
      flight = std::make_shared<Flight>();
      flights_[map_key] = flight;
      leader = true;
      ++misses_;
    }
  }

  if (!leader) {
    MH_COUNTER("server.coalesce.hit.count")->Increment();
    std::unique_lock<std::mutex> lock(flight->mu);
    flight->cv.wait(lock, [&] { return flight->done; });
    if (!flight->status.ok()) return flight->status;
    return flight->value;
  }

  MH_COUNTER("server.coalesce.miss.count")->Increment();
  Result<std::string> fetched = fetch_(key, planes);

  std::shared_ptr<const std::string> value;
  if (fetched.ok()) {
    value = std::make_shared<const std::string>(fetched.MoveValue());
  }
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->done = true;
    flight->status = fetched.status();
    flight->value = value;
    flight->completed_at = std::chrono::steady_clock::now();
  }
  flight->cv.notify_all();
  {
    // Successful flights linger (joinable until expiry); failures are
    // dropped now so the next caller retries instead of inheriting a
    // transient error.
    std::lock_guard<std::mutex> lock(mu_);
    if (!fetched.ok() || linger_ms_ <= 0) {
      auto it = flights_.find(map_key);
      if (it != flights_.end() && it->second == flight) flights_.erase(it);
    }
  }
  if (!fetched.ok()) return fetched.status();
  return value;
}

uint64_t SnapshotCoalescer::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t SnapshotCoalescer::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace modelhub
