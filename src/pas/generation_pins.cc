#include "pas/generation_pins.h"

#include "common/metrics.h"

namespace modelhub {

GenerationPin::~GenerationPin() {
  registry_->Release(env_, dir_, generation_);
}

GenerationPinRegistry* GenerationPinRegistry::Global() {
  static auto* registry = new GenerationPinRegistry();
  return registry;
}

std::shared_ptr<GenerationPin> GenerationPinRegistry::Pin(
    const void* env, const std::string& dir, uint64_t generation) {
  uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++refs_[Key(env, dir, generation)];
    epoch = epoch_;
  }
  MH_COUNTER("lifecycle.pins.taken")->Add(1);
  return std::shared_ptr<GenerationPin>(
      new GenerationPin(this, env, dir, generation, epoch));
}

bool GenerationPinRegistry::IsPinned(const void* env, const std::string& dir,
                                     uint64_t generation) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = refs_.find(Key(env, dir, generation));
  return it != refs_.end() && it->second > 0;
}

uint64_t GenerationPinRegistry::PinCount(const void* env,
                                         const std::string& dir) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [key, count] : refs_) {
    if (std::get<0>(key) == env && std::get<1>(key) == dir) total += count;
  }
  return total;
}

uint64_t GenerationPinRegistry::BeginSweepEpoch() {
  std::lock_guard<std::mutex> lock(mu_);
  return ++epoch_;
}

uint64_t GenerationPinRegistry::current_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

void GenerationPinRegistry::Release(const void* env, const std::string& dir,
                                    uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = refs_.find(Key(env, dir, generation));
  if (it == refs_.end()) return;
  if (--it->second == 0) refs_.erase(it);
}

}  // namespace modelhub
