#ifndef MODELHUB_PAS_STORAGE_GRAPH_H_
#define MODELHUB_PAS_STORAGE_GRAPH_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace modelhub {

/// How PAS recreates all matrices of one snapshot (Table III).
enum class RetrievalScheme {
  kIndependent,  ///< One by one; cost = sum of root paths.
  kParallel,     ///< Concurrently; cost = longest root path.
  kReusable,     ///< Shared prefixes computed once; cost = union of paths.
};

std::string_view RetrievalSchemeToString(RetrievalScheme scheme);

/// An (undirected) candidate edge of the matrix storage graph: storing
/// matrix `v` as a delta against `u` (or materialized, when u == 0 == v0)
/// costs `storage_cost` bytes and `recreation_cost` time units to undo.
/// Parallel edges between the same pair model alternative storage tiers.
struct StorageEdge {
  int id = 0;
  int u = 0;
  int v = 0;
  double storage_cost = 0.0;
  double recreation_cost = 0.0;
  /// Storage tier realizing this edge: 0 = local, 1 = remote (the paper's
  /// "multiple directed edges between the same two matrices ... capture
  /// different options for storing the delta": remote is cheaper to hold,
  /// costlier to recreate from). Solvers are tier-agnostic — the costs
  /// carry the trade-off.
  int tier = 0;
};

/// A co-usage group: the matrices of one snapshot, which group-retrieval
/// queries fetch together under a recreation budget theta (Problem 1).
struct CoUsageGroup {
  std::string name;
  std::vector<int> members;  ///< Vertex ids (never v0).
  double budget = 0.0;       ///< theta_i; <= 0 means unconstrained.
};

/// The matrix storage graph G(V, E, cs, cr) of Definition 1. Vertex 0 is
/// the empty matrix v0; every real matrix must be connected to v0 directly
/// (materialization edge) or transitively (delta edges).
class MatrixStorageGraph {
 public:
  MatrixStorageGraph();

  /// Adds a matrix vertex; returns its id (>= 1).
  int AddVertex(std::string name);

  /// Adds an undirected candidate edge; returns its id. Fails on unknown
  /// vertices, self-loops, or non-positive storage cost. `tier` tags the
  /// storage tier realizing the edge (parallel edges between the same pair
  /// model alternative tiers).
  Result<int> AddEdge(int u, int v, double storage_cost,
                      double recreation_cost, int tier = 0);

  Status AddGroup(std::string name, std::vector<int> members, double budget);

  int num_vertices() const { return static_cast<int>(names_.size()); }
  const std::string& vertex_name(int v) const { return names_[v]; }
  const std::vector<StorageEdge>& edges() const { return edges_; }
  const StorageEdge& edge(int id) const { return edges_[id]; }
  const std::vector<CoUsageGroup>& groups() const { return groups_; }
  std::vector<CoUsageGroup>* mutable_groups() { return &groups_; }

  /// Edge ids incident to `v`.
  const std::vector<int>& IncidentEdges(int v) const { return incident_[v]; }

  /// True when every vertex can reach v0 through candidate edges.
  bool IsConnected() const;

 private:
  std::vector<std::string> names_;
  std::vector<StorageEdge> edges_;
  std::vector<std::vector<int>> incident_;
  std::vector<CoUsageGroup> groups_;
};

/// A matrix storage plan: a spanning tree rooted at v0, as parent-edge
/// choices (Definition 2 restricted to trees, which Lemma 2 shows is
/// sufficient for the independent and parallel schemes).
class StoragePlan {
 public:
  /// `parent_edge[v]` is the edge id connecting v towards the root; -1 for
  /// v0. Validates that the choices form a spanning tree rooted at v0.
  static Result<StoragePlan> FromParentEdges(const MatrixStorageGraph* graph,
                                             std::vector<int> parent_edge);

  const MatrixStorageGraph& graph() const { return *graph_; }

  int ParentEdge(int v) const { return parent_edge_[v]; }

  /// Parent vertex of v in the tree (-1 for v0).
  int Parent(int v) const;

  /// Sum of storage costs of all tree edges — Cs(P).
  double TotalStorageCost() const;

  /// Recreation cost of the root path of a single vertex.
  double PathRecreationCost(int v) const;

  /// Cr(P, group) under a retrieval scheme (Table III). For kReusable the
  /// Steiner tree of {v0} + group inside a tree plan is exactly the union
  /// of root paths, so the value is exact, not approximated.
  double GroupRecreationCost(const CoUsageGroup& group,
                             RetrievalScheme scheme) const;

  /// True when every group with a positive budget satisfies it.
  bool SatisfiesBudgets(RetrievalScheme scheme) const;

  /// Number of groups violating their budgets.
  int NumViolatedBudgets(RetrievalScheme scheme) const;

  /// Vertices in v's subtree, including v itself.
  std::vector<int> Subtree(int v) const;

  /// Re-parents v onto `edge_id` (which must be incident to v, with the
  /// other endpoint outside v's subtree). Invalidates cached path costs.
  Status Swap(int v, int edge_id);

 private:
  void RecomputePathCosts() const;

  const MatrixStorageGraph* graph_ = nullptr;
  std::vector<int> parent_edge_;
  mutable std::vector<double> path_cost_;
  mutable bool path_cost_valid_ = false;
};

}  // namespace modelhub

#endif  // MODELHUB_PAS_STORAGE_GRAPH_H_
