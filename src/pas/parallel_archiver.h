#ifndef MODELHUB_PAS_PARALLEL_ARCHIVER_H_
#define MODELHUB_PAS_PARALLEL_ARCHIVER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "compress/codec.h"
#include "pas/chunk_index.h"
#include "pas/chunk_store.h"
#include "pas/delta.h"
#include "pas/segment.h"
#include "tensor/float_matrix.h"

namespace modelhub {

/// Resolves a user-facing thread-count knob: n >= 1 is taken literally,
/// anything else (0, negative) means "auto" — hardware concurrency capped
/// at 8 so a build box with 96 cores does not spawn 96 compressors for a
/// 10-matrix archive. The pipeline additionally clamps its pool to the
/// number of schedulable tasks, so ArchivePipelineStats.threads reports
/// workers actually used, not the resolved knob.
int ResolveArchiveThreads(int requested);

/// Resolves the tile-rows knob for one matrix: n >= 1 is taken literally,
/// anything else means auto — enough rows for roughly 64 KiB of floats per
/// tile (at least one row), which keeps per-tile scheduling overhead small
/// while splitting large matrices into several encode tasks.
int64_t ResolveTileRows(int requested, int64_t cols);

/// What the archival write pipeline did — per-job latencies feed the
/// p50/p99 columns of bench_archival, byte totals feed ingest MB/s.
struct ArchivePipelineStats {
  int jobs = 0;
  int threads = 1;            ///< Encode workers actually used (clamped to
                              ///< the schedulable task count).
  int tiles = 0;              ///< Total delta+segment tiles encoded.
  uint64_t raw_bytes = 0;     ///< Uncompressed payload bytes encoded.
  uint64_t compressed_bytes = 0;
  double encode_ms_total = 0.0;  ///< Sum of per-job encode latencies.
  double commit_ms = 0.0;        ///< Serial committer stage (ordered appends).
  double wall_ms = 0.0;          ///< Whole pipeline wall time.
  /// Content-addressed dedup outcomes in the committer. `compressed_bytes`
  /// above stays the *logical* encode size (what the planes compress to,
  /// before dedup), so dedup savings are `dedup_saved_bytes` and the bytes
  /// actually appended are compressed_bytes - dedup_saved_bytes.
  uint64_t dedup_intra_hits = 0;  ///< Planes shared within this build.
  uint64_t dedup_prior_hits = 0;  ///< Planes referencing a prior generation.
  uint64_t dedup_saved_bytes = 0; ///< Compressed bytes not appended.
  /// Per-job encode latency in job order: the job's tile (delta + segment)
  /// plus per-plane codec task times summed — CPU cost, not wall time.
  std::vector<double> job_encode_ms;
  /// Per-tile delta + segment latency, in completion-publish (job) order.
  std::vector<double> tile_encode_ms;
  /// Per-plane codec compression latency, in job-then-plane order.
  std::vector<double> plane_codec_ms;
};

/// The pipelined, parallel archival write path (the ingest dual of the
/// computation-sharing retrieval scheduler), tiled for intra-matrix
/// parallelism. Each job (one parameter matrix) is split into row-range
/// tiles; a tile task computes the delta for its rows and scatters the
/// byte planes into the job's shared plane buffers (disjoint ranges, so
/// tiles run concurrently without synchronization on the data). When a
/// job's last tile lands, four per-plane codec tasks compress the
/// assembled planes. The ordering-sensitive tail — chunk-store appends,
/// and the caller's manifest/journal writes after Run returns — stays on
/// the calling thread, in job order.
///
/// Determinism guarantee: tiles only partition the delta + segmentation
/// work; every codec still compresses a whole assembled plane, so the
/// chunk payloads — and therefore the archive bytes — are identical for
/// every tile size and thread count, and `threads == 1` reproduces the
/// serial writer exactly. Because workers never touch the Env, the
/// pipeline is safe over non-thread-safe Envs (MemEnv, FaultInjectionEnv)
/// and preserves the crash-safety protocol unchanged: every mutating
/// filesystem operation still happens on the caller's thread in the
/// serial commit order.
class ParallelArchiver {
 public:
  /// One parameter matrix to archive. `base == nullptr` stores `target`
  /// materialized; otherwise the payload is ComputeDelta(target, base,
  /// delta_kind). `destination` receives the four plane chunks (jobs may
  /// target different stores, e.g. the local and remote tiers).
  struct Job {
    const FloatMatrix* target = nullptr;
    const FloatMatrix* base = nullptr;
    DeltaKind delta_kind = DeltaKind::kMaterialized;
    ChunkStoreWriter* destination = nullptr;
  };

  /// Where one job's planes landed, in job order. With dedup active a
  /// plane may reference a chunk it did not append: `prior_file[p] >= 0`
  /// means plane p lives in DedupContext::prior_files[prior_file[p]] (a
  /// prior generation's data file); otherwise the chunk is in the job's
  /// destination store — either freshly appended or shared with an
  /// earlier plane of this build (intra hit). `plane_hash[p]` is the
  /// content hash of the compressed plane payload, recorded whenever a
  /// DedupContext is supplied (the builder persists it into the chunk
  /// index).
  struct Placement {
    uint32_t chunk_ids[kNumPlanes] = {0, 0, 0, 0};
    int32_t prior_file[kNumPlanes] = {-1, -1, -1, -1};
    Hash128 plane_hash[kNumPlanes];
  };

  /// Cross-generation dedup input for Run: compressed plane payloads whose
  /// content hash is in `prior` are referenced in place instead of being
  /// re-appended. Purely advisory — an empty context (or nullptr) makes
  /// Run behave exactly as before.
  struct DedupContext {
    struct PriorChunk {
      int file = 0;          ///< Index into prior_files.
      uint32_t chunk_id = 0;
      uint64_t stored_size = 0;
    };
    std::unordered_map<Hash128, PriorChunk, Hash128Hasher> prior;
    /// Data file names (relative to the archive dir) `prior` points into.
    std::vector<std::string> prior_files;
  };

  /// Encodes every job (in parallel when more than one worker is useful)
  /// and appends the resulting chunks to each job's destination store in
  /// job order. The committer is pipelined: job i's chunks are appended as
  /// soon as jobs 0..i have encoded, while later jobs are still
  /// compressing. On error the first failing job's status is returned (no
  /// later job is committed) and the stores are left unfinished — the
  /// caller abandons the build, which is safe because nothing was
  /// published. `tile_rows` follows ResolveTileRows (0 = auto).
  ///
  /// With a non-null `dedup`, the committer content-hashes every
  /// compressed plane and (a) references a prior generation's chunk on a
  /// `dedup->prior` hit, (b) shares an identical chunk already appended to
  /// the same destination store this build (after a byte compare), or
  /// (c) appends as usual and remembers the hash. All dedup decisions run
  /// on the caller's thread in job order, so placements — like the archive
  /// bytes — are identical for every thread count and tile size.
  static Result<std::vector<Placement>> Run(const std::vector<Job>& jobs,
                                            CodecType codec, int threads,
                                            ArchivePipelineStats* stats = nullptr,
                                            int tile_rows = 0,
                                            const DedupContext* dedup = nullptr);
};

}  // namespace modelhub

#endif  // MODELHUB_PAS_PARALLEL_ARCHIVER_H_
