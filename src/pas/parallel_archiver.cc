#include "pas/parallel_archiver.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"

namespace modelhub {

namespace {

/// Output of one job's encode stage: the four compressed plane payloads
/// plus the raw plane size PutCompressed needs for the chunk index.
struct EncodedPayload {
  std::string planes[kNumPlanes];
  uint64_t raw_plane_bytes = 0;
};

/// Row-tiling geometry of one job.
struct TileShape {
  int64_t tile_rows = 1;
  int num_tiles = 1;
};

TileShape ShapeFor(const FloatMatrix& matrix, int tile_rows_knob) {
  TileShape shape;
  shape.tile_rows = ResolveTileRows(tile_rows_knob, matrix.cols());
  shape.num_tiles = static_cast<int>(std::max<int64_t>(
      1, (matrix.rows() + shape.tile_rows - 1) / shape.tile_rows));
  return shape;
}

/// Encodes tile `tile` of `job`: the delta for rows [r0, r1) lands in a
/// local slab, then its byte planes are scattered into the job's shared
/// plane buffers at the tile's offset. Tiles write disjoint byte ranges,
/// so concurrent tiles of one job need no synchronization on the buffers.
/// Pure CPU and infallible — shapes are validated before any scheduling.
void EncodeTile(const ParallelArchiver::Job& job, const TileShape& shape,
                int tile, std::array<std::string, kNumPlanes>* planes,
                std::vector<float>* slab) {
  const int64_t rows = job.target->rows();
  const int64_t cols = job.target->cols();
  const int64_t r0 = std::min<int64_t>(rows, tile * shape.tile_rows);
  const int64_t r1 = std::min<int64_t>(rows, r0 + shape.tile_rows);
  const size_t count =
      static_cast<size_t>(r1 - r0) * static_cast<size_t>(cols);
  if (count == 0) return;
  slab->resize(count);
  ComputeDeltaRows(*job.target, job.base, job.delta_kind, r0, r1,
                   slab->data());
  SegmentFloatsRange(slab->data(), count,
                     static_cast<size_t>(r0) * static_cast<size_t>(cols),
                     planes);
}

/// Chunks appended to one destination store this build, by content hash.
/// Committer-thread state, so no locking: CommitJob runs in job order on
/// the caller's thread in both the serial and the parallel pipeline.
using IntraDedupMap =
    std::unordered_map<const ChunkStoreWriter*,
                       std::unordered_map<Hash128, uint32_t, Hash128Hasher>>;

/// The serial committer half for one job: ordered appends into the job's
/// destination store, with optional content-addressed dedup. Caller
/// thread only — dedup decisions are part of the deterministic commit
/// order, never of the parallel encode stage.
Result<ParallelArchiver::Placement> CommitJob(
    const ParallelArchiver::Job& job, const EncodedPayload& payload,
    CodecType codec, const ParallelArchiver::DedupContext* dedup,
    IntraDedupMap* intra, ArchivePipelineStats* stats) {
  ParallelArchiver::Placement placement;
  for (int p = 0; p < kNumPlanes; ++p) {
    const Slice plane(payload.planes[p]);
    if (dedup == nullptr) {
      MH_ASSIGN_OR_RETURN(
          placement.chunk_ids[p],
          job.destination->PutCompressed(plane, payload.raw_plane_bytes,
                                         codec));
      continue;
    }
    const Hash128 hash = ContentHash128(plane);
    placement.plane_hash[p] = hash;
    if (auto it = dedup->prior.find(hash); it != dedup->prior.end()) {
      placement.prior_file[p] = it->second.file;
      placement.chunk_ids[p] = it->second.chunk_id;
      if (stats != nullptr) {
        ++stats->dedup_prior_hits;
        stats->dedup_saved_bytes += plane.size();
      }
      continue;
    }
    auto& seen = (*intra)[job.destination];
    if (auto it = seen.find(hash); it != seen.end() &&
        job.destination->payload(it->second) == plane) {
      placement.chunk_ids[p] = it->second;
      if (stats != nullptr) {
        ++stats->dedup_intra_hits;
        stats->dedup_saved_bytes += plane.size();
      }
      continue;
    }
    MH_ASSIGN_OR_RETURN(
        placement.chunk_ids[p],
        job.destination->PutCompressed(plane, payload.raw_plane_bytes,
                                       codec));
    seen.emplace(hash, placement.chunk_ids[p]);
  }
  return placement;
}

/// Feeds the registry's dedup counters once per Run, after the committer
/// drains (the stats fields themselves accumulate inside CommitJob).
void RecordDedupStats(const ArchivePipelineStats* stats) {
  if (stats == nullptr) return;
  MH_COUNTER("pas.dedup.intra.hits")->Add(stats->dedup_intra_hits);
  MH_COUNTER("pas.dedup.prior.hits")->Add(stats->dedup_prior_hits);
  MH_COUNTER("pas.dedup.saved.bytes")->Add(stats->dedup_saved_bytes);
}

void RecordJobStats(const EncodedPayload& payload, double encode_ms,
                    const std::vector<double>& tile_ms,
                    const std::array<double, kNumPlanes>& plane_ms,
                    ArchivePipelineStats* stats) {
  if (stats == nullptr) return;
  stats->raw_bytes += payload.raw_plane_bytes * kNumPlanes;
  for (int p = 0; p < kNumPlanes; ++p) {
    stats->compressed_bytes += payload.planes[p].size();
  }
  stats->encode_ms_total += encode_ms;
  stats->job_encode_ms.push_back(encode_ms);
  stats->tile_encode_ms.insert(stats->tile_encode_ms.end(), tile_ms.begin(),
                               tile_ms.end());
  stats->plane_codec_ms.insert(stats->plane_codec_ms.end(), plane_ms.begin(),
                               plane_ms.end());
}

}  // namespace

int ResolveArchiveThreads(int requested) {
  if (requested >= 1) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  const int resolved = hardware == 0 ? 1 : static_cast<int>(hardware);
  return std::min(resolved, 8);
}

int64_t ResolveTileRows(int requested, int64_t cols) {
  if (requested >= 1) return requested;
  // Auto: roughly 64 KiB of floats per tile — large enough that the
  // per-tile scheduling cost is noise, small enough that a handful of big
  // matrices still fans out across every worker.
  constexpr int64_t kTargetTileBytes = 64 * 1024;
  const int64_t bytes_per_row =
      std::max<int64_t>(1, cols * static_cast<int64_t>(sizeof(float)));
  return std::max<int64_t>(1, kTargetTileBytes / bytes_per_row);
}

Result<std::vector<ParallelArchiver::Placement>> ParallelArchiver::Run(
    const std::vector<Job>& jobs, CodecType codec, int threads,
    ArchivePipelineStats* stats, int tile_rows, const DedupContext* dedup) {
  TraceSpan span("pas.archive.pipeline");
  Stopwatch wall;
  IntraDedupMap intra;
  const int resolved_threads = ResolveArchiveThreads(threads);
  std::vector<TileShape> shapes;
  shapes.reserve(jobs.size());
  int64_t total_tasks = 0;
  int total_tiles = 0;
  for (const Job& job : jobs) {
    if (job.target == nullptr || job.destination == nullptr) {
      return Status::InvalidArgument("archival job without target or store");
    }
    MH_RETURN_IF_ERROR(
        ValidateDeltaShapes(*job.target, job.base, job.delta_kind));
    shapes.push_back(ShapeFor(*job.target, tile_rows));
    total_tiles += shapes.back().num_tiles;
    total_tasks += shapes.back().num_tiles + kNumPlanes;
  }
  // Workers actually used: the resolved knob clamped to the schedulable
  // task count, so a 2-job archive on an 8-thread knob reports (and
  // spawns) what it can keep busy, not the knob.
  const int workers = static_cast<int>(
      std::min<int64_t>(resolved_threads, std::max<int64_t>(1, total_tasks)));
  const bool serial = workers <= 1;
  span.Annotate("jobs", static_cast<uint64_t>(jobs.size()));
  span.Annotate("tiles", static_cast<uint64_t>(total_tiles));
  span.Annotate("threads", static_cast<uint64_t>(serial ? 1 : workers));
  MH_COUNTER("pas.archive.jobs")->Add(jobs.size());
  MH_COUNTER("pas.archive.tiles")->Add(total_tiles);
  MH_GAUGE("pas.archive.threads")->Set(serial ? 1 : workers);
  if (stats != nullptr) {
    *stats = ArchivePipelineStats{};
    stats->jobs = static_cast<int>(jobs.size());
    stats->threads = serial ? 1 : workers;
    stats->tiles = total_tiles;
    stats->job_encode_ms.reserve(jobs.size());
    stats->tile_encode_ms.reserve(static_cast<size_t>(total_tiles));
    stats->plane_codec_ms.reserve(jobs.size() * kNumPlanes);
  }
  std::vector<Placement> placements;
  placements.reserve(jobs.size());
  const Codec* compressor = Codec::Get(codec);

  if (serial) {
    // Serial reference path: tile + compress + commit inline per job, in
    // order. Runs the very same kernels as the parallel path, so the
    // stored bytes are identical by construction.
    std::vector<float> slab;
    for (size_t i = 0; i < jobs.size(); ++i) {
      const Job& job = jobs[i];
      TraceSpan encode_span("pas.archive.encode");
      Stopwatch encode_watch;
      std::array<std::string, kNumPlanes> planes;
      const size_t n = job.target->data().size();
      for (auto& plane : planes) plane.resize(n);
      std::vector<double> tile_ms;
      tile_ms.reserve(static_cast<size_t>(shapes[i].num_tiles));
      for (int t = 0; t < shapes[i].num_tiles; ++t) {
        Stopwatch tile_watch;
        EncodeTile(job, shapes[i], t, &planes, &slab);
        tile_ms.push_back(tile_watch.ElapsedMillis());
      }
      EncodedPayload payload;
      payload.raw_plane_bytes = static_cast<uint64_t>(n);
      std::array<double, kNumPlanes> plane_ms{};
      for (int p = 0; p < kNumPlanes; ++p) {
        Stopwatch plane_watch;
        MH_RETURN_IF_ERROR(
            compressor->Compress(Slice(planes[p]), &payload.planes[p]));
        plane_ms[p] = plane_watch.ElapsedMillis();
      }
      const double encode_ms = encode_watch.ElapsedMillis();
      MH_HISTOGRAM("pas.archive.encode.us")
          ->Record(static_cast<uint64_t>(encode_ms * 1000.0));
      encode_span.Annotate("raw_bytes", payload.raw_plane_bytes * kNumPlanes);
      RecordJobStats(payload, encode_ms, tile_ms, plane_ms, stats);
      Stopwatch commit_watch;
      MH_ASSIGN_OR_RETURN(
          Placement placement,
          CommitJob(job, payload, codec, dedup, &intra, stats));
      if (stats != nullptr) stats->commit_ms += commit_watch.ElapsedMillis();
      placements.push_back(placement);
    }
    RecordDedupStats(stats);
    if (stats != nullptr) stats->wall_ms = wall.ElapsedMillis();
    return placements;
  }

  // --- Parallel pipeline. Tile tasks fill each job's shared plane
  // buffers (disjoint ranges); the job's last tile schedules four codec
  // tasks; the last codec task publishes the job's slot. The caller
  // thread is the committer, consuming slots in job order as they become
  // ready (job i commits while jobs > i are still encoding). Slots are
  // handed off under the mutex, so the committer reads each payload only
  // after its last worker published it.
  struct JobState {
    std::array<std::string, kNumPlanes> planes;  ///< Raw plane bytes.
    std::atomic<int> tiles_left{0};
    std::atomic<int> planes_left{kNumPlanes};
    std::vector<double> tile_ms;                ///< One slot per tile.
    std::array<double, kNumPlanes> plane_ms{};  ///< One slot per plane.
    std::array<Status, kNumPlanes> plane_status;
    EncodedPayload payload;
    // Published under the pipeline mutex by the last codec task.
    bool ready = false;
    double encode_ms = 0.0;
    Status status = Status::OK();
  };
  std::vector<JobState> states(jobs.size());
  std::mutex mutex;
  std::condition_variable slot_ready;
  {
    ThreadPool pool(workers);
    WaitGroup done;
    for (size_t i = 0; i < jobs.size(); ++i) {
      const Job* job = &jobs[i];
      const TileShape shape = shapes[i];
      JobState* state = &states[i];
      const size_t n = job->target->data().size();
      for (auto& plane : state->planes) plane.resize(n);
      state->payload.raw_plane_bytes = static_cast<uint64_t>(n);
      state->tiles_left.store(shape.num_tiles, std::memory_order_relaxed);
      state->tile_ms.assign(static_cast<size_t>(shape.num_tiles), 0.0);
      for (int t = 0; t < shape.num_tiles; ++t) {
        pool.Schedule(&done, [job, shape, t, state, compressor, &pool, &done,
                              &mutex, &slot_ready] {
          Stopwatch tile_watch;
          std::vector<float> slab;
          EncodeTile(*job, shape, t, &state->planes, &slab);
          state->tile_ms[static_cast<size_t>(t)] = tile_watch.ElapsedMillis();
          if (state->tiles_left.fetch_sub(1, std::memory_order_acq_rel) !=
              1) {
            return;
          }
          // Last tile of this job: the planes are fully assembled — hand
          // them to four per-plane codec tasks. Compressing whole planes
          // (never per tile) keeps the chunk payloads invariant to the
          // tile size.
          for (int p = 0; p < kNumPlanes; ++p) {
            pool.Schedule(&done, [state, p, compressor, &mutex,
                                  &slot_ready] {
              Stopwatch plane_watch;
              state->plane_status[p] = compressor->Compress(
                  Slice(state->planes[p]), &state->payload.planes[p]);
              state->plane_ms[p] = plane_watch.ElapsedMillis();
              if (state->planes_left.fetch_sub(
                      1, std::memory_order_acq_rel) != 1) {
                return;
              }
              // Last plane: free the raw buffers eagerly, then publish.
              for (auto& plane : state->planes) {
                plane.clear();
                plane.shrink_to_fit();
              }
              double encode_ms = 0.0;
              for (const double ms : state->tile_ms) encode_ms += ms;
              for (const double ms : state->plane_ms) encode_ms += ms;
              MH_HISTOGRAM("pas.archive.encode.us")
                  ->Record(static_cast<uint64_t>(encode_ms * 1000.0));
              Status status = Status::OK();
              for (const Status& s : state->plane_status) {
                if (!s.ok()) {
                  status = s;
                  break;
                }
              }
              {
                std::lock_guard<std::mutex> lock(mutex);
                state->status = status;
                state->encode_ms = encode_ms;
                state->ready = true;
              }
              slot_ready.notify_all();
            });
          }
        });
      }
    }
    TraceSpan commit_span("pas.archive.commit");
    Stopwatch commit_watch;
    Status first_error = Status::OK();
    for (size_t i = 0; i < jobs.size(); ++i) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        slot_ready.wait(lock, [&] { return states[i].ready; });
      }
      // Published under the mutex above; safe to read lock-free now.
      JobState& state = states[i];
      if (!state.status.ok()) {
        first_error = state.status;
        break;
      }
      RecordJobStats(state.payload, state.encode_ms, state.tile_ms,
                     state.plane_ms, stats);
      auto placement =
          CommitJob(jobs[i], state.payload, codec, dedup, &intra, stats);
      if (!placement.ok()) {
        first_error = placement.status();
        break;
      }
      placements.push_back(*placement);
      // The committer is done with this payload; free the compressed
      // planes eagerly so peak memory tracks the encode window, not the
      // whole archive.
      state.payload = EncodedPayload{};
    }
    done.Wait();  // Outstanding encoders must drain before states die.
    MH_HISTOGRAM("pas.archive.commit.us")
        ->Record(static_cast<uint64_t>(commit_watch.ElapsedMillis() * 1000.0));
    if (stats != nullptr) stats->commit_ms = commit_watch.ElapsedMillis();
    if (!first_error.ok()) return first_error;
  }
  RecordDedupStats(stats);
  if (stats != nullptr) stats->wall_ms = wall.ElapsedMillis();
  return placements;
}

}  // namespace modelhub
