#include "pas/parallel_archiver.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"

namespace modelhub {

namespace {

/// Output of one encode task: the four compressed plane payloads plus the
/// raw plane size PutCompressed needs for the chunk index.
struct EncodedPayload {
  std::string planes[kNumPlanes];
  uint64_t raw_plane_bytes = 0;
};

/// The parallel stage of the pipeline: pure CPU, no Env access. Must
/// produce exactly the bytes the serial writer would (ComputeDelta,
/// SegmentFloats and the codecs are all deterministic pure functions).
Result<EncodedPayload> EncodeJob(const ParallelArchiver::Job& job,
                                 CodecType codec) {
  TraceSpan span("pas.archive.encode");
  Stopwatch watch;
  FloatMatrix delta;
  const FloatMatrix* payload = job.target;
  if (job.base != nullptr) {
    MH_ASSIGN_OR_RETURN(delta,
                        ComputeDelta(*job.target, *job.base, job.delta_kind));
    payload = &delta;
  }
  const auto planes = SegmentFloats(*payload);
  EncodedPayload out;
  out.raw_plane_bytes = static_cast<uint64_t>(payload->size());
  const Codec* compressor = Codec::Get(codec);
  for (int p = 0; p < kNumPlanes; ++p) {
    MH_RETURN_IF_ERROR(compressor->Compress(Slice(planes[p]), &out.planes[p]));
  }
  MH_HISTOGRAM("pas.archive.encode.us")
      ->Record(static_cast<uint64_t>(watch.ElapsedMillis() * 1000.0));
  span.Annotate("raw_bytes", out.raw_plane_bytes * kNumPlanes);
  return out;
}

/// The serial committer half for one job: ordered appends into the job's
/// destination store. Caller thread only.
Result<ParallelArchiver::Placement> CommitJob(const ParallelArchiver::Job& job,
                                              const EncodedPayload& payload,
                                              CodecType codec) {
  ParallelArchiver::Placement placement;
  for (int p = 0; p < kNumPlanes; ++p) {
    MH_ASSIGN_OR_RETURN(
        placement.chunk_ids[p],
        job.destination->PutCompressed(Slice(payload.planes[p]),
                                       payload.raw_plane_bytes, codec));
  }
  return placement;
}

void RecordJobStats(const EncodedPayload& payload, double encode_ms,
                    ArchivePipelineStats* stats) {
  if (stats == nullptr) return;
  stats->raw_bytes += payload.raw_plane_bytes * kNumPlanes;
  for (int p = 0; p < kNumPlanes; ++p) {
    stats->compressed_bytes += payload.planes[p].size();
  }
  stats->encode_ms_total += encode_ms;
  stats->job_encode_ms.push_back(encode_ms);
}

}  // namespace

int ResolveArchiveThreads(int requested) {
  if (requested >= 1) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  const int resolved = hardware == 0 ? 1 : static_cast<int>(hardware);
  return std::min(resolved, 8);
}

Result<std::vector<ParallelArchiver::Placement>> ParallelArchiver::Run(
    const std::vector<Job>& jobs, CodecType codec, int threads,
    ArchivePipelineStats* stats) {
  TraceSpan span("pas.archive.pipeline");
  Stopwatch wall;
  threads = ResolveArchiveThreads(threads);
  span.Annotate("jobs", static_cast<uint64_t>(jobs.size()));
  span.Annotate("threads", static_cast<uint64_t>(threads));
  MH_COUNTER("pas.archive.jobs")->Add(jobs.size());
  MH_GAUGE("pas.archive.threads")->Set(threads);
  if (stats != nullptr) {
    *stats = ArchivePipelineStats{};
    stats->jobs = static_cast<int>(jobs.size());
    stats->threads = threads;
    stats->job_encode_ms.reserve(jobs.size());
  }
  for (const Job& job : jobs) {
    if (job.target == nullptr || job.destination == nullptr) {
      return Status::InvalidArgument("archival job without target or store");
    }
  }
  std::vector<Placement> placements;
  placements.reserve(jobs.size());

  if (threads <= 1 || jobs.size() <= 1) {
    // Serial reference path: encode + commit inline per job, in order.
    for (const Job& job : jobs) {
      Stopwatch encode_watch;
      MH_ASSIGN_OR_RETURN(EncodedPayload payload, EncodeJob(job, codec));
      RecordJobStats(payload, encode_watch.ElapsedMillis(), stats);
      Stopwatch commit_watch;
      MH_ASSIGN_OR_RETURN(Placement placement, CommitJob(job, payload, codec));
      if (stats != nullptr) stats->commit_ms += commit_watch.ElapsedMillis();
      placements.push_back(placement);
    }
    if (stats != nullptr) stats->wall_ms = wall.ElapsedMillis();
    return placements;
  }

  // --- Parallel pipeline. Workers fill slots; the caller thread is the
  // committer, consuming slots in job order as they become ready (job i
  // commits while jobs > i are still compressing). Slots are handed off
  // under the mutex, so the committer reads each payload only after its
  // worker published it.
  struct Slot {
    bool ready = false;
    Status status = Status::OK();
    EncodedPayload payload;
    double encode_ms = 0.0;
  };
  std::vector<Slot> slots(jobs.size());
  std::mutex mutex;
  std::condition_variable slot_ready;
  {
    ThreadPool pool(threads);
    WaitGroup done;
    for (size_t i = 0; i < jobs.size(); ++i) {
      const Job* job = &jobs[i];
      Slot* slot = &slots[i];
      pool.Schedule(&done, [job, slot, codec, &mutex, &slot_ready] {
        Stopwatch encode_watch;
        Result<EncodedPayload> encoded = EncodeJob(*job, codec);
        const double encode_ms = encode_watch.ElapsedMillis();
        {
          std::lock_guard<std::mutex> lock(mutex);
          if (encoded.ok()) {
            slot->payload = std::move(*encoded);
          } else {
            slot->status = encoded.status();
          }
          slot->encode_ms = encode_ms;
          slot->ready = true;
        }
        slot_ready.notify_all();
      });
    }
    TraceSpan commit_span("pas.archive.commit");
    Stopwatch commit_watch;
    Status first_error = Status::OK();
    for (size_t i = 0; i < jobs.size(); ++i) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        slot_ready.wait(lock, [&] { return slots[i].ready; });
      }
      // Published under the mutex above; safe to read lock-free now.
      Slot& slot = slots[i];
      if (!slot.status.ok()) {
        first_error = slot.status;
        break;
      }
      RecordJobStats(slot.payload, slot.encode_ms, stats);
      auto placement = CommitJob(jobs[i], slot.payload, codec);
      if (!placement.ok()) {
        first_error = placement.status();
        break;
      }
      placements.push_back(*placement);
      // The committer is done with this payload; free the compressed
      // planes eagerly so peak memory tracks the encode window, not the
      // whole archive.
      slot.payload = EncodedPayload{};
    }
    done.Wait();  // Outstanding encoders must drain before slots die.
    MH_HISTOGRAM("pas.archive.commit.us")
        ->Record(static_cast<uint64_t>(commit_watch.ElapsedMillis() * 1000.0));
    if (stats != nullptr) stats->commit_ms = commit_watch.ElapsedMillis();
    if (!first_error.ok()) return first_error;
  }
  if (stats != nullptr) stats->wall_ms = wall.ElapsedMillis();
  return placements;
}

}  // namespace modelhub
