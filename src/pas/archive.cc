#include "pas/archive.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <set>
#include <unordered_map>

#include "common/checked_io.h"
#include "common/coding.h"
#include "common/macros.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "pas/sketch.h"

namespace modelhub {

namespace {

/// Fills a RetrievalStats from chunk-store counter deltas + wall time on
/// scope exit, and feeds the `pas.retrieve.*` registry instruments plus a
/// trace span. Construct at the very top of a retrieval entry point: the
/// destructor runs on every exit path, so callers get a final (partial)
/// stats snapshot even when retrieval fails mid-forest — wall time, bytes
/// and cache counters cover the work done up to the failure.
class StatsScope {
 public:
  StatsScope(const ArchiveReader* reader, RetrievalStats* stats,
             const char* op)
      : reader_(reader), stats_(stats), span_(op) {
    if (stats_ != nullptr) *stats_ = RetrievalStats{};
    before_ = reader_->store_stats();
  }

  ~StatsScope() {
    const ChunkStoreStats after = reader_->store_stats();
    const uint64_t fetches = after.chunk_fetches - before_.chunk_fetches;
    const uint64_t bytes = after.bytes_read - before_.bytes_read;
    const double wall_ms = watch_.ElapsedMillis();
    if (stats_ != nullptr) {
      stats_->chunk_fetches = fetches;
      stats_->cache_hits = after.cache_hits - before_.cache_hits;
      stats_->cache_evictions =
          after.cache_evictions - before_.cache_evictions;
      stats_->bytes_read = bytes;
      stats_->vertices_resolved = vertices_;
      stats_->wall_ms = wall_ms;
    }
    MH_COUNTER("pas.retrieve.count")->Increment();
    if (!ok_) MH_COUNTER("pas.retrieve.errors")->Increment();
    MH_COUNTER("pas.retrieve.vertices")->Add(vertices_);
    MH_COUNTER("pas.retrieve.bytes")->Add(bytes);
    MH_HISTOGRAM("pas.retrieve.us")
        ->Record(static_cast<uint64_t>(wall_ms * 1000.0));
    if (span_.recording()) {
      span_.Annotate("vertices", vertices_);
      span_.Annotate("chunk_fetches", fetches);
      span_.Annotate("bytes", bytes);
      if (!ok_) span_.Annotate("error", std::string("true"));
    }
  }

  /// Call as resolution progresses; sticky across early error returns.
  void set_vertices_resolved(uint64_t n) { vertices_ = n; }
  /// Call once the operation is known to have fully succeeded.
  void MarkOk() { ok_ = true; }
  TraceSpan& span() { return span_; }

 private:
  const ArchiveReader* reader_;
  RetrievalStats* stats_;
  ChunkStoreStats before_;
  Stopwatch watch_;
  TraceSpan span_;
  uint64_t vertices_ = 0;
  bool ok_ = false;
};

/// Manifest format versions. v2 carries one chunk id per plane, resolved
/// through the vertex's tier; v3 (cross-generation dedup) adds a list of
/// extra prior-generation data files and a per-plane store slot. New
/// builds always write v3; the reader accepts both (the golden fixture is
/// a v2 archive).
constexpr char kManifestMagicV2[] = "MHAM2\n";
constexpr char kManifestMagicV3[] = "MHAM3\n";
constexpr size_t kManifestMagicSize = 6;

/// Manifest version from the magic, or 0 for anything else.
int ManifestVersion(const std::string& framed) {
  if (framed.size() < kManifestMagicSize) return 0;
  if (framed.compare(0, kManifestMagicSize, kManifestMagicV3) == 0) return 3;
  if (framed.compare(0, kManifestMagicSize, kManifestMagicV2) == 0) return 2;
  return 0;
}

std::string ManifestPath(const std::string& dir) {
  return JoinPath(dir, "manifest.bin");
}

/// Data files are generation-numbered (chunks-3.bin) so a rebuild never
/// overwrites the generation the current manifest points at: new files are
/// written first, then the manifest — the single commit point — is
/// atomically replaced, then stale generations are garbage-collected.
std::string GenFileName(const char* prefix, uint64_t gen) {
  return std::string(prefix) + "-" + std::to_string(gen) + ".bin";
}

/// Parses `<prefix>-<gen>.bin`; returns false for any other name.
bool ParseGenFileName(const std::string& name, const char* prefix,
                      uint64_t* gen) {
  const std::string head = std::string(prefix) + "-";
  const std::string tail = ".bin";
  if (name.size() <= head.size() + tail.size() ||
      name.compare(0, head.size(), head) != 0 ||
      name.compare(name.size() - tail.size(), tail.size(), tail) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = head.size(); i < name.size() - tail.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *gen = value;
  return true;
}

/// Parses the CRC-framed manifest's header down to its generation number.
Result<uint64_t> ParseManifestGeneration(const std::string& framed) {
  if (ManifestVersion(framed) == 0) {
    return Status::Corruption("bad manifest magic");
  }
  Slice in(framed);
  in.RemovePrefix(kManifestMagicSize);
  uint64_t generation = 0;
  MH_RETURN_IF_ERROR(GetVarint64(&in, &generation));
  return generation;
}

/// Parses a manifest's referenced-file header: generation, the
/// generation's own data files, and (v3) the prior-generation files it
/// reuses chunks from. Leaves `in` positioned at the matrix table.
struct ManifestFileHeader {
  uint64_t generation = 0;
  std::string chunks_name;
  std::string remote_name;  ///< Empty when no remote tier is used.
  std::vector<std::string> extra_files;
};

Result<ManifestFileHeader> ParseManifestFileHeader(const std::string& framed,
                                                   Slice* in) {
  const int version = ManifestVersion(framed);
  if (version == 0) return Status::Corruption("bad manifest magic");
  *in = Slice(framed);
  in->RemovePrefix(kManifestMagicSize);
  ManifestFileHeader header;
  MH_RETURN_IF_ERROR(GetVarint64(in, &header.generation));
  Slice chunks_name;
  Slice remote_name;
  MH_RETURN_IF_ERROR(GetLengthPrefixed(in, &chunks_name));
  MH_RETURN_IF_ERROR(GetLengthPrefixed(in, &remote_name));
  if (chunks_name.empty()) {
    return Status::Corruption("manifest names no chunk file");
  }
  header.chunks_name = chunks_name.ToString();
  header.remote_name = remote_name.ToString();
  if (version >= 3) {
    uint64_t num_extra = 0;
    MH_RETURN_IF_ERROR(GetVarint64(in, &num_extra));
    if (num_extra > 4096) {
      return Status::Corruption("manifest extra file count out of range");
    }
    for (uint64_t i = 0; i < num_extra; ++i) {
      Slice name;
      MH_RETURN_IF_ERROR(GetLengthPrefixed(in, &name));
      if (name.empty()) {
        return Status::Corruption("manifest empty extra file name");
      }
      header.extra_files.push_back(name.ToString());
    }
  }
  return header;
}

/// Compressed size of all four byte planes of `m` under `codec`.
double SegmentedCompressedSize(const FloatMatrix& m, CodecType codec) {
  const auto planes = SegmentFloats(m);
  double total = 0.0;
  for (const std::string& plane : planes) {
    total += static_cast<double>(CompressedSize(codec, Slice(plane)));
  }
  return total;
}

}  // namespace

std::string_view ArchiveSolverToString(ArchiveSolver solver) {
  switch (solver) {
    case ArchiveSolver::kMst:
      return "mst";
    case ArchiveSolver::kSpt:
      return "spt";
    case ArchiveSolver::kLast:
      return "last";
    case ArchiveSolver::kPasMt:
      return "pas-mt";
    case ArchiveSolver::kPasPt:
      return "pas-pt";
  }
  return "unknown";
}

Result<uint64_t> ReadArchiveGeneration(Env* env, const std::string& dir) {
  MH_ASSIGN_OR_RETURN(std::string framed, ReadChecked(env, ManifestPath(dir)));
  return ParseManifestGeneration(framed);
}

bool ParseArchiveDataFileName(const std::string& name, uint64_t* gen) {
  return ParseGenFileName(name, "chunks", gen) ||
         ParseGenFileName(name, "remote", gen);
}

Result<std::vector<std::string>> ReadArchiveManifestFiles(
    Env* env, const std::string& dir) {
  MH_ASSIGN_OR_RETURN(const std::string framed,
                      ReadChecked(env, ManifestPath(dir)));
  Slice in;
  MH_ASSIGN_OR_RETURN(const ManifestFileHeader header,
                      ParseManifestFileHeader(framed, &in));
  std::vector<std::string> files;
  files.push_back(header.chunks_name);
  if (!header.remote_name.empty()) files.push_back(header.remote_name);
  for (const std::string& name : header.extra_files) files.push_back(name);
  return files;
}

ArchiveBuilder::ArchiveBuilder(Env* env, std::string dir)
    : env_(env), dir_(std::move(dir)) {}

int ArchiveBuilder::FindMatrix(const std::string& snapshot,
                               const std::string& param) const {
  for (size_t i = 0; i < matrices_.size(); ++i) {
    if (matrices_[i].snapshot == snapshot && matrices_[i].param == param) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Status ArchiveBuilder::AddSnapshot(const std::string& name,
                                   const std::vector<NamedParam>& params) {
  if (params.empty()) {
    return Status::InvalidArgument("snapshot has no parameters: " + name);
  }
  for (const auto& existing : snapshot_names_) {
    if (existing == name) {
      return Status::AlreadyExists("duplicate snapshot: " + name);
    }
  }
  std::vector<int> members;
  for (const auto& param : params) {
    if (param.value.empty()) {
      return Status::InvalidArgument("empty matrix: " + param.name);
    }
    if (FindMatrix(name, param.name) >= 0) {
      return Status::AlreadyExists("duplicate parameter " + param.name +
                                   " in snapshot " + name);
    }
    members.push_back(static_cast<int>(matrices_.size()));
    matrices_.push_back(MatrixEntry{name, param.name, param.value});
  }
  snapshot_names_.push_back(name);
  snapshot_members_.push_back(std::move(members));
  return Status::OK();
}

Status ArchiveBuilder::AddDeltaCandidate(const std::string& from_snapshot,
                                         const std::string& to_snapshot) {
  int from = -1;
  int to = -1;
  for (size_t i = 0; i < snapshot_names_.size(); ++i) {
    if (snapshot_names_[i] == from_snapshot) from = static_cast<int>(i);
    if (snapshot_names_[i] == to_snapshot) to = static_cast<int>(i);
  }
  if (from < 0) return Status::NotFound("no snapshot: " + from_snapshot);
  if (to < 0) return Status::NotFound("no snapshot: " + to_snapshot);
  if (from == to) {
    return Status::InvalidArgument("delta candidate with itself");
  }
  candidate_pairs_.emplace_back(from, to);
  return Status::OK();
}

Result<MatrixStorageGraph> BuildMatrixStorageGraph(
    const std::vector<SnapshotSpec>& snapshots,
    const std::vector<std::pair<int, int>>& candidate_pairs,
    CodecType codec, DeltaKind delta_kind, double recreation_raw_weight,
    const TierOptions& tiers, ThreadPool* pool,
    const std::vector<MatrixPairCandidate>& matrix_pairs,
    int* first_similarity_edge) {
  if (first_similarity_edge != nullptr) *first_similarity_edge = -1;
  MatrixStorageGraph graph;
  // Every edge optionally gets a remote twin: cheaper to hold, costlier to
  // recreate from (the paper's multi-tier parallel edges).
  auto add_tiered_edge = [&](int u, int v, double cs,
                             double cr) -> Status {
    MH_RETURN_IF_ERROR(graph.AddEdge(u, v, cs, cr, /*tier=*/0).status());
    if (tiers.enable_remote) {
      MH_RETURN_IF_ERROR(graph
                             .AddEdge(u, v, cs * tiers.storage_discount,
                                      cr * tiers.read_penalty, /*tier=*/1)
                             .status());
    }
    return Status::OK();
  };

  // The cost model (a trial delta + four plane compressions per edge) is
  // the expensive part of graph assembly and is a pure function of the
  // matrices, so it fans out over `pool` into pre-sized slots; everything
  // that shapes the graph — vertex ids, edge order, groups — is done
  // serially afterwards in the original candidate order, so the graph is
  // byte-for-byte independent of the pool.
  struct EdgeCost {
    double cs = 0.0;
    double raw = 0.0;
    Status status = Status::OK();
  };

  // Vertex ids in (snapshot, param) order.
  std::vector<std::vector<int>> vertex_of(snapshots.size());
  std::vector<const FloatMatrix*> matrix_of_vertex;  // [0] = v0 (unused).
  matrix_of_vertex.push_back(nullptr);
  for (size_t s = 0; s < snapshots.size(); ++s) {
    if (snapshots[s].params == nullptr || snapshots[s].params->empty()) {
      return Status::InvalidArgument("snapshot without parameters: " +
                                     snapshots[s].name);
    }
    for (const NamedParam& param : *snapshots[s].params) {
      const int v = graph.AddVertex(snapshots[s].name + "/" + param.name);
      vertex_of[s].push_back(v);
      matrix_of_vertex.push_back(&param.value);
    }
  }

  // Resolve candidate pairs into concrete delta edges (serial: cheap name
  // and shape matching only).
  struct CandidateEdge {
    int u = 0;
    int v = 0;
    const FloatMatrix* base = nullptr;
    const FloatMatrix* target = nullptr;
    DeltaKind kind = DeltaKind::kMaterialized;
  };
  std::vector<CandidateEdge> candidates;
  for (const auto& [from_snap, to_snap] : candidate_pairs) {
    if (from_snap < 0 || to_snap < 0 ||
        from_snap >= static_cast<int>(snapshots.size()) ||
        to_snap >= static_cast<int>(snapshots.size()) ||
        from_snap == to_snap) {
      return Status::InvalidArgument("bad candidate pair");
    }
    const auto& from_params = *snapshots[static_cast<size_t>(from_snap)].params;
    const auto& to_params = *snapshots[static_cast<size_t>(to_snap)].params;
    for (size_t ti = 0; ti < to_params.size(); ++ti) {
      for (size_t fi = 0; fi < from_params.size(); ++fi) {
        if (from_params[fi].name != to_params[ti].name) continue;
        // Mismatched shapes (e.g. a re-targeted final layer) still get a
        // candidate edge via the shape-adaptive delta variants.
        const bool same_shape =
            from_params[fi].value.rows() == to_params[ti].value.rows() &&
            from_params[fi].value.cols() == to_params[ti].value.cols();
        const DeltaKind kind =
            same_shape ? delta_kind : ToAdaptive(delta_kind);
        // A materialized "delta" against a mismatched base is pointless.
        if (!same_shape && kind == DeltaKind::kMaterialized) continue;
        candidates.push_back(
            CandidateEdge{vertex_of[static_cast<size_t>(from_snap)][fi],
                          vertex_of[static_cast<size_t>(to_snap)][ti],
                          &from_params[fi].value, &to_params[ti].value, kind});
        break;
      }
    }
  }

  // Similarity-proposed matrix pairs come after the lineage candidates so
  // their edge ids form one contiguous trailing range — the builder uses
  // that boundary to count how many plan parents similarity contributed.
  const size_t first_similarity_candidate = candidates.size();
  if (!matrix_pairs.empty()) {
    std::map<std::pair<std::string, std::string>, int> vertex_by_name;
    std::map<int, const FloatMatrix*> matrix_by_vertex;
    for (size_t s = 0; s < snapshots.size(); ++s) {
      const auto& params = *snapshots[s].params;
      for (size_t pi = 0; pi < params.size(); ++pi) {
        const int v = vertex_of[s][pi];
        vertex_by_name.emplace(
            std::make_pair(snapshots[s].name, params[pi].name), v);
        matrix_by_vertex.emplace(v, &params[pi].value);
      }
    }
    std::set<std::pair<int, int>> existing;
    for (const CandidateEdge& cand : candidates) {
      existing.emplace(std::min(cand.u, cand.v), std::max(cand.u, cand.v));
    }
    for (const MatrixPairCandidate& pair : matrix_pairs) {
      const auto from_it = vertex_by_name.find(
          std::make_pair(pair.from_snapshot, pair.from_param));
      const auto to_it =
          vertex_by_name.find(std::make_pair(pair.to_snapshot, pair.to_param));
      if (from_it == vertex_by_name.end() || to_it == vertex_by_name.end()) {
        return Status::InvalidArgument("matrix pair names unknown matrix");
      }
      const int u = from_it->second;
      const int v = to_it->second;
      if (u == v) continue;
      const FloatMatrix& base = *matrix_by_vertex.at(u);
      const FloatMatrix& target = *matrix_by_vertex.at(v);
      // Similarity pairing only proposes equal shapes; a materialized
      // "delta" would just re-store the target, so it contributes nothing.
      if (base.rows() != target.rows() || base.cols() != target.cols() ||
          delta_kind == DeltaKind::kMaterialized) {
        continue;
      }
      if (!existing.emplace(std::min(u, v), std::max(u, v)).second) {
        continue;  // Lineage (or an earlier pair) already covers this edge.
      }
      candidates.push_back(CandidateEdge{u, v, &base, &target, delta_kind});
    }
  }

  // Cost model: materialization edges per vertex + delta edges per
  // candidate, each slot independent.
  std::vector<EdgeCost> vertex_costs(matrix_of_vertex.size());
  std::vector<EdgeCost> candidate_costs(candidates.size());
  auto vertex_cost_task = [&](size_t v) {
    const FloatMatrix& m = *matrix_of_vertex[v];
    vertex_costs[v].cs = SegmentedCompressedSize(m, codec);
    vertex_costs[v].raw = static_cast<double>(m.size()) * 4;
  };
  auto candidate_cost_task = [&](size_t c) {
    const CandidateEdge& cand = candidates[c];
    auto delta = ComputeDelta(*cand.target, *cand.base, cand.kind);
    if (!delta.ok()) {
      candidate_costs[c].status = delta.status();
      return;
    }
    candidate_costs[c].cs = SegmentedCompressedSize(*delta, codec);
    candidate_costs[c].raw = static_cast<double>(delta->size()) * 4;
  };
  if (pool != nullptr) {
    WaitGroup done;
    for (size_t v = 1; v < matrix_of_vertex.size(); ++v) {
      pool->Schedule(&done, [&vertex_cost_task, v] { vertex_cost_task(v); });
    }
    for (size_t c = 0; c < candidates.size(); ++c) {
      pool->Schedule(&done,
                     [&candidate_cost_task, c] { candidate_cost_task(c); });
    }
    done.Wait();
  } else {
    for (size_t v = 1; v < matrix_of_vertex.size(); ++v) vertex_cost_task(v);
    for (size_t c = 0; c < candidates.size(); ++c) candidate_cost_task(c);
  }

  // Assemble edges serially, in the original order: all materialization
  // edges in vertex order, then delta edges in candidate order.
  for (size_t v = 1; v < matrix_of_vertex.size(); ++v) {
    const EdgeCost& cost = vertex_costs[v];
    MH_RETURN_IF_ERROR(add_tiered_edge(
        0, static_cast<int>(v), cost.cs,
        cost.cs + recreation_raw_weight * cost.raw));
  }
  for (size_t c = 0; c < candidates.size(); ++c) {
    const EdgeCost& cost = candidate_costs[c];
    MH_RETURN_IF_ERROR(cost.status);
    if (first_similarity_edge != nullptr && c == first_similarity_candidate &&
        c < candidates.size()) {
      *first_similarity_edge = static_cast<int>(graph.edges().size());
    }
    MH_RETURN_IF_ERROR(add_tiered_edge(
        candidates[c].u, candidates[c].v, cost.cs,
        cost.cs + recreation_raw_weight * cost.raw));
  }
  for (size_t s = 0; s < snapshots.size(); ++s) {
    MH_RETURN_IF_ERROR(
        graph.AddGroup(snapshots[s].name, vertex_of[s], 0.0));
  }
  return graph;
}

Result<ArchiveBuildReport> ArchiveBuilder::Build(
    const ArchiveOptions& options) {
  if (built_) return Status::FailedPrecondition("Build called twice");
  if (matrices_.empty()) {
    return Status::FailedPrecondition("no snapshots added");
  }
  built_ = true;
  TraceSpan build_span("pas.archive.build");
  build_span.Annotate("snapshots",
                      static_cast<uint64_t>(snapshot_names_.size()));
  build_span.Annotate("matrices", static_cast<uint64_t>(matrices_.size()));
  Stopwatch build_watch;
  MH_COUNTER("pas.archive.build.count")->Increment();

  // One pool serves every parallel stage of the build; null means serial
  // (threads == 1), which is also the reference the differential tests
  // compare parallel builds against, byte for byte.
  const int threads = ResolveArchiveThreads(options.archive_threads);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  build_span.Annotate("threads", static_cast<uint64_t>(threads));

  // --- Optional lossy storage scheme: round every matrix through the
  // chosen representation once, up front. The archive then stores (and
  // later returns) the scheme's values; quantized matrices have few
  // distinct floats and compress far better. Rounding is independent per
  // matrix for every scheme except kQuantRandom, whose codebook sampling
  // consumes a shared Rng stream in matrix order — that one stays serial
  // so the stream (and thus the archive) is identical at any thread count.
  if (options.storage_scheme.kind != FloatSchemeKind::kFloat32) {
    TraceSpan scheme_span("pas.archive.scheme");
    if (pool != nullptr &&
        options.storage_scheme.kind != FloatSchemeKind::kQuantRandom) {
      std::vector<Status> statuses(matrices_.size());
      WaitGroup done;
      for (size_t i = 0; i < matrices_.size(); ++i) {
        pool->Schedule(&done, [this, &options, &statuses, i] {
          auto encoded =
              EncodeMatrix(matrices_[i].value, options.storage_scheme);
          if (!encoded.ok()) {
            statuses[i] = encoded.status();
            return;
          }
          auto decoded = DecodeMatrix(*encoded);
          if (!decoded.ok()) {
            statuses[i] = decoded.status();
            return;
          }
          matrices_[i].value = std::move(*decoded);
        });
      }
      done.Wait();
      for (const Status& status : statuses) MH_RETURN_IF_ERROR(status);
    } else {
      Rng scheme_rng(options.scheme_seed);
      for (auto& entry : matrices_) {
        MH_ASSIGN_OR_RETURN(
            EncodedMatrix encoded,
            EncodeMatrix(entry.value, options.storage_scheme, &scheme_rng));
        MH_ASSIGN_OR_RETURN(entry.value, DecodeMatrix(encoded));
      }
    }
  }

  // --- Similarity-based delta pairing (DESIGN.md §15): sketch every
  // matrix (post-scheme-rounding, so sketches see the bytes that will be
  // archived) and propose delta parents by content distance. The proposals
  // only become candidate edges; the solver still measures them against
  // lineage and materialization, so a bad pairing costs nothing but the
  // trial delta.
  std::vector<MatrixPairCandidate> similarity_pairs;
  if (options.enable_similarity_pairing && matrices_.size() > 1) {
    TraceSpan sketch_span("pas.archive.sketch");
    std::vector<ParamSketch> sketches(matrices_.size());
    auto sketch_task = [this, &sketches](size_t i) {
      sketches[i] = ComputeParamSketch(matrices_[i].value);
    };
    if (pool != nullptr) {
      WaitGroup done;
      for (size_t i = 0; i < matrices_.size(); ++i) {
        pool->Schedule(&done, [&sketch_task, i] { sketch_task(i); });
      }
      done.Wait();
    } else {
      for (size_t i = 0; i < matrices_.size(); ++i) sketch_task(i);
    }
    for (const SketchPairing& pairing :
         SimilarDeltaPairs(sketches, options.similarity_fanout,
                           options.similarity_threshold)) {
      const MatrixEntry& from = matrices_[static_cast<size_t>(pairing.from)];
      const MatrixEntry& to = matrices_[static_cast<size_t>(pairing.to)];
      similarity_pairs.push_back(
          MatrixPairCandidate{from.snapshot, from.param, to.snapshot,
                              to.param});
    }
    sketch_span.Annotate("pairs",
                         static_cast<uint64_t>(similarity_pairs.size()));
  }

  // --- Assemble the matrix storage graph (Definition 1) via the shared
  // builder. Vertex ids follow matrices_ order because snapshots were
  // registered in (snapshot, param) order.
  std::vector<std::vector<NamedParam>> param_lists(snapshot_names_.size());
  for (size_t s = 0; s < snapshot_names_.size(); ++s) {
    for (int idx : snapshot_members_[s]) {
      param_lists[s].push_back({matrices_[static_cast<size_t>(idx)].param,
                                matrices_[static_cast<size_t>(idx)].value});
    }
  }
  std::vector<SnapshotSpec> specs;
  for (size_t s = 0; s < snapshot_names_.size(); ++s) {
    specs.push_back({snapshot_names_[s], &param_lists[s]});
  }
  TierOptions tiers;
  tiers.enable_remote = options.enable_remote_tier;
  tiers.storage_discount = options.remote_storage_discount;
  tiers.read_penalty = options.remote_read_penalty;
  int first_similarity_edge = -1;
  MH_ASSIGN_OR_RETURN(
      MatrixStorageGraph graph,
      BuildMatrixStorageGraph(specs, candidate_pairs_, options.codec,
                              options.delta_kind,
                              options.recreation_raw_weight, tiers,
                              pool.get(), similarity_pairs,
                              &first_similarity_edge));
  std::vector<int> vertex_of_matrix(matrices_.size());
  {
    int next = 1;
    for (size_t s = 0; s < snapshot_names_.size(); ++s) {
      for (int idx : snapshot_members_[s]) {
        vertex_of_matrix[static_cast<size_t>(idx)] = next++;
      }
    }
  }

  // --- Budgets relative to the SPT (the alpha knob of Fig 6(c)).
  MH_ASSIGN_OR_RETURN(StoragePlan spt, SolveSpt(graph));
  MH_ASSIGN_OR_RETURN(StoragePlan mst, SolveMst(graph));
  if (options.budget_alpha > 0.0 || !options.group_budget_alpha.empty()) {
    // Groups were registered one per snapshot, in snapshot_names_ order,
    // so per-snapshot alpha overrides index groups positionally.
    auto& groups = *graph.mutable_groups();
    for (size_t g = 0; g < groups.size(); ++g) {
      double alpha = options.budget_alpha;
      if (g < snapshot_names_.size()) {
        auto it = options.group_budget_alpha.find(snapshot_names_[g]);
        if (it != options.group_budget_alpha.end()) alpha = it->second;
      }
      if (alpha > 0.0) {
        groups[g].budget =
            alpha * spt.GroupRecreationCost(groups[g], options.scheme);
      }
    }
  }

  // --- Solve.
  StoragePlan plan = mst;
  switch (options.solver) {
    case ArchiveSolver::kMst:
      break;  // Already the MST.
    case ArchiveSolver::kSpt:
      plan = spt;
      break;
    case ArchiveSolver::kLast: {
      MH_ASSIGN_OR_RETURN(plan, SolveLast(graph, options.last_alpha));
      break;
    }
    case ArchiveSolver::kPasMt: {
      MH_ASSIGN_OR_RETURN(plan, SolvePasMt(graph, options.scheme));
      break;
    }
    case ArchiveSolver::kPasPt: {
      MH_ASSIGN_OR_RETURN(plan, SolvePasPt(graph, options.scheme));
      break;
    }
  }

  // --- Write chunks for the chosen tree. Remote-tier payloads go to a
  // separate store standing in for the remote service. Data files carry a
  // fresh generation number; the old generation stays untouched until the
  // manifest (the commit point) is atomically replaced below.
  MH_RETURN_IF_ERROR(env_->CreateDirs(dir_));
  uint64_t generation = 1;
  if (auto names = env_->ListDir(dir_); names.ok()) {
    for (const std::string& name : *names) {
      uint64_t gen = 0;
      if (ParseGenFileName(name, "chunks", &gen) ||
          ParseGenFileName(name, "remote", &gen)) {
        generation = std::max(generation, gen + 1);
      }
    }
  }
  const std::string chunks_name = GenFileName("chunks", generation);
  const std::string remote_name = GenFileName("remote", generation);
  ChunkStoreWriter chunks(env_, JoinPath(dir_, chunks_name));
  ChunkStoreWriter remote_chunks(env_, JoinPath(dir_, remote_name));
  int remote_payloads = 0;
  // Resolve every matrix's plan decision into a pipeline job: which base
  // (delta parent) it encodes against, which delta kind, which store. The
  // expensive encode work (delta + segmentation + compression) fans out
  // over the pool inside ParallelArchiver::Run; the committer appends
  // chunks in job (= matrix) order, so chunk ids — and the archive bytes —
  // are identical for every thread count.
  std::vector<ParallelArchiver::Job> jobs(matrices_.size());
  std::vector<DeltaKind> kinds(matrices_.size());
  std::vector<int> parents(matrices_.size());
  std::vector<int> tiers_of(matrices_.size());
  for (size_t i = 0; i < matrices_.size(); ++i) {
    const int v = vertex_of_matrix[i];
    const int parent = plan.Parent(v);
    DeltaKind kind = DeltaKind::kMaterialized;
    ParallelArchiver::Job& job = jobs[i];
    job.target = &matrices_[i].value;
    if (parent != 0) {
      // Find which matrix the parent vertex holds.
      const size_t parent_idx = static_cast<size_t>(
          std::find(vertex_of_matrix.begin(), vertex_of_matrix.end(),
                    parent) -
          vertex_of_matrix.begin());
      const bool same_shape =
          matrices_[parent_idx].value.rows() == matrices_[i].value.rows() &&
          matrices_[parent_idx].value.cols() == matrices_[i].value.cols();
      kind = same_shape ? options.delta_kind
                        : ToAdaptive(options.delta_kind);
      job.base = &matrices_[parent_idx].value;
    }
    const int tier = graph.edge(plan.ParentEdge(v)).tier;
    job.delta_kind = kind;
    job.destination = tier == 1 ? &remote_chunks : &chunks;
    if (tier == 1) ++remote_payloads;
    kinds[i] = kind;
    parents[i] = parent;
    tiers_of[i] = tier;
  }
  // --- Cross-generation dedup context (DESIGN.md §15): the committed
  // generation's chunk index maps content hash -> (file, chunk id), so
  // planes already stored by a prior build are referenced instead of
  // re-appended. The index is derived state — if it is missing, stale
  // (generation mismatch), or corrupt, it is rebuilt from the manifest
  // and chunk stores; on any failure the build simply proceeds without
  // cross-generation sharing. Entries pointing at files GC already
  // removed are pruned before use.
  ParallelArchiver::DedupContext dedup_ctx;
  if (options.enable_dedup) {
    ChunkIndex prior_index;
    bool have_prior = false;
    if (auto loaded = ChunkIndex::Load(env_, dir_); loaded.ok()) {
      if (auto gen = ReadArchiveGeneration(env_, dir_);
          gen.ok() && *gen == loaded->generation()) {
        prior_index = std::move(*loaded);
        have_prior = true;
      }
    }
    if (!have_prior && env_->FileExists(ManifestPath(dir_))) {
      if (auto rebuilt = RebuildChunkIndex(env_, dir_); rebuilt.ok()) {
        prior_index = std::move(*rebuilt);
        have_prior = true;
      }
    }
    if (have_prior) {
      std::set<std::string> existing;
      if (auto names = env_->ListDir(dir_); names.ok()) {
        existing.insert(names->begin(), names->end());
      }
      prior_index.PruneFiles([&existing](const std::string& file) {
        return existing.count(file) > 0;
      });
      // SortedEntries (hash order) makes prior_files — and therefore the
      // manifest's extra-file table — deterministic across builds.
      std::map<std::string, int> file_slot;
      for (const ChunkIndexEntry& entry : prior_index.SortedEntries()) {
        auto [it, inserted] = file_slot.emplace(
            entry.file, static_cast<int>(dedup_ctx.prior_files.size()));
        if (inserted) dedup_ctx.prior_files.push_back(entry.file);
        dedup_ctx.prior.emplace(
            entry.hash,
            ParallelArchiver::DedupContext::PriorChunk{
                it->second, entry.chunk_id, entry.stored_size});
      }
    }
  }
  ArchivePipelineStats pipeline_stats;
  MH_ASSIGN_OR_RETURN(
      const std::vector<ParallelArchiver::Placement> placements,
      ParallelArchiver::Run(jobs, options.codec, threads, &pipeline_stats,
                            options.tile_rows,
                            options.enable_dedup ? &dedup_ctx : nullptr));
  // Extra-file table: prior-generation data files actually referenced by
  // this build's placements, in first-reference (job, plane) order. Their
  // manifest slots start at 2 (0 = local store, 1 = remote store).
  std::vector<std::string> extra_files;
  std::vector<int> slot_of_prior(dedup_ctx.prior_files.size(), -1);
  for (size_t i = 0; i < placements.size(); ++i) {
    for (int p = 0; p < kNumPlanes; ++p) {
      const int32_t pf = placements[i].prior_file[p];
      if (pf >= 0 && slot_of_prior[static_cast<size_t>(pf)] < 0) {
        slot_of_prior[static_cast<size_t>(pf)] =
            2 + static_cast<int>(extra_files.size());
        extra_files.push_back(dedup_ctx.prior_files[static_cast<size_t>(pf)]);
      }
    }
  }
  std::string manifest;  // Body; the generation header is prepended below.
  PutVarint64(&manifest, matrices_.size());
  for (size_t i = 0; i < matrices_.size(); ++i) {
    PutLengthPrefixed(&manifest, Slice(matrices_[i].snapshot));
    PutLengthPrefixed(&manifest, Slice(matrices_[i].param));
    PutVarint64(&manifest, static_cast<uint64_t>(matrices_[i].value.rows()));
    PutVarint64(&manifest, static_cast<uint64_t>(matrices_[i].value.cols()));
    manifest.push_back(static_cast<char>(kinds[i]));
    manifest.push_back(static_cast<char>(tiers_of[i]));
    PutVarint64(&manifest, static_cast<uint64_t>(parents[i]));
    for (int p = 0; p < kNumPlanes; ++p) {
      const int32_t pf = placements[i].prior_file[p];
      const int slot = pf >= 0 ? slot_of_prior[static_cast<size_t>(pf)]
                               : tiers_of[i];
      PutVarint64(&manifest, static_cast<uint64_t>(slot));
      PutVarint64(&manifest, placements[i].chunk_ids[p]);
    }
  }
  PutVarint64(&manifest, snapshot_names_.size());
  for (size_t s = 0; s < snapshot_names_.size(); ++s) {
    PutLengthPrefixed(&manifest, Slice(snapshot_names_[s]));
    PutVarint64(&manifest, snapshot_members_[s].size());
    for (int idx : snapshot_members_[s]) {
      PutVarint64(&manifest,
                  static_cast<uint64_t>(vertex_of_matrix[
                      static_cast<size_t>(idx)]));
    }
  }
  // --- Publish: data files first (each written atomically), then the
  // CRC-framed manifest naming them — the commit point. A crash before the
  // manifest write leaves the previous generation fully intact; the new
  // files are unreferenced garbage collected by the next Build (or fsck).
  MH_RETURN_IF_ERROR(chunks.Finish());
  if (remote_payloads > 0) {
    MH_RETURN_IF_ERROR(remote_chunks.Finish());
  }
  std::string framed;
  framed.append(kManifestMagicV3, kManifestMagicSize);
  PutVarint64(&framed, generation);
  PutLengthPrefixed(&framed, Slice(chunks_name));
  PutLengthPrefixed(&framed,
                    Slice(remote_payloads > 0 ? remote_name : std::string()));
  PutVarint64(&framed, extra_files.size());
  for (const std::string& extra : extra_files) {
    PutLengthPrefixed(&framed, Slice(extra));
  }
  framed.append(manifest);
  MH_RETURN_IF_ERROR(WriteChecked(env_, ManifestPath(dir_), framed));
  // --- Persist the chunk index (best effort — it is derived state,
  // rebuildable from the manifest; a failed save must not fail the build
  // after the manifest committed). With dedup off any stale index is
  // deleted so the next dedup-enabled build rebuilds from scratch.
  if (options.enable_dedup) {
    ChunkIndex new_index;
    new_index.set_generation(generation);
    for (size_t i = 0; i < placements.size(); ++i) {
      for (int p = 0; p < kNumPlanes; ++p) {
        const int32_t pf = placements[i].prior_file[p];
        const uint32_t id = placements[i].chunk_ids[p];
        if (pf >= 0) {
          auto it = dedup_ctx.prior.find(placements[i].plane_hash[p]);
          const uint64_t stored =
              it != dedup_ctx.prior.end() ? it->second.stored_size : 0;
          new_index.AddRef(placements[i].plane_hash[p],
                           dedup_ctx.prior_files[static_cast<size_t>(pf)], id,
                           stored);
        } else {
          const bool is_remote = tiers_of[i] == 1;
          const ChunkStoreWriter& writer = is_remote ? remote_chunks : chunks;
          new_index.AddRef(placements[i].plane_hash[p],
                           is_remote ? remote_name : chunks_name, id,
                           writer.StoredSize(id));
        }
      }
    }
    (void)new_index.Save(env_, dir_);
  } else {
    (void)env_->DeleteFile(JoinPath(dir_, ChunkIndex::kFileName));
  }
  // --- Garbage-collect superseded generations (best effort). Generations
  // pinned by a live reader are left behind, as are prior-generation data
  // files the new manifest still references through dedup (shared chunks);
  // the lifecycle GC sweep reclaims them once unreferenced and unpinned
  // (DESIGN.md §14, §15).
  if (auto names = env_->ListDir(dir_); names.ok()) {
    std::set<std::string> referenced(extra_files.begin(), extra_files.end());
    referenced.insert(chunks_name);
    if (remote_payloads > 0) referenced.insert(remote_name);
    GenerationPinRegistry* pins = GenerationPinRegistry::Global();
    for (const std::string& name : *names) {
      uint64_t gen = 0;
      if ((ParseGenFileName(name, "chunks", &gen) ||
           ParseGenFileName(name, "remote", &gen)) &&
          gen != generation && referenced.count(name) == 0 &&
          !pins->IsPinned(env_, dir_, gen)) {
        (void)env_->DeleteFile(JoinPath(dir_, name));
      }
    }
  }

  // --- Report.
  ArchiveBuildReport report;
  report.num_vertices = graph.num_vertices() - 1;
  report.num_edges = static_cast<int>(graph.edges().size());
  report.storage_cost = plan.TotalStorageCost();
  report.mst_storage_cost = mst.TotalStorageCost();
  report.spt_storage_cost = spt.TotalStorageCost();
  report.budgets_satisfied = plan.SatisfiesBudgets(options.scheme);
  report.remote_payloads = remote_payloads;
  if (first_similarity_edge >= 0) {
    report.similarity_edges =
        static_cast<int>(graph.edges().size()) - first_similarity_edge;
    for (int v = 1; v < graph.num_vertices(); ++v) {
      if (plan.Parent(v) != 0 &&
          plan.ParentEdge(v) >= first_similarity_edge) {
        ++report.similarity_parents;
      }
    }
  }
  report.pipeline = std::move(pipeline_stats);
  MH_COUNTER("pas.archive.raw.bytes")->Add(report.pipeline.raw_bytes);
  MH_COUNTER("pas.archive.stored.bytes")
      ->Add(report.pipeline.compressed_bytes);
  for (const auto& group : graph.groups()) {
    report.group_recreation_costs.push_back(
        plan.GroupRecreationCost(group, options.scheme));
    report.group_budgets.push_back(group.budget);
  }
  MH_HISTOGRAM("pas.archive.build.us")
      ->Record(static_cast<uint64_t>(build_watch.ElapsedMillis() * 1000.0));
  MH_GAUGE("pas.archive.plan.storage_cost")
      ->Set(static_cast<int64_t>(report.storage_cost));
  build_span.Annotate("storage_cost",
                      static_cast<uint64_t>(report.storage_cost));
  return report;
}

Result<ArchiveReader> ArchiveReader::Open(Env* env, const std::string& dir) {
  ArchiveReader reader;
  // The CRC-framed manifest is the source of truth: it names the data
  // files of the committed generation, so a crash mid-rebuild (stray newer
  // generation files, no manifest update) is invisible here.
  //
  // Pin-then-reverify: pin every generation the manifest references —
  // its own plus the generations of prior data files it borrows chunks
  // from through dedup — then re-read the manifest. If the generation is
  // unchanged, any concurrent rebuild that could delete those files
  // commits its own manifest — and hence runs its pinned-generation
  // check — after our pins, so the files stay alive for this reader's
  // lifetime. If it moved, drop the pins and chase the newer generation.
  std::string manifest;
  for (int attempt = 0;; ++attempt) {
    MH_ASSIGN_OR_RETURN(manifest, ReadChecked(env, ManifestPath(dir)));
    MH_ASSIGN_OR_RETURN(const uint64_t generation,
                        ParseManifestGeneration(manifest));
    reader.pins_.clear();
    reader.pins_.push_back(
        GenerationPinRegistry::Global()->Pin(env, dir, generation));
    {
      Slice header_in;
      MH_ASSIGN_OR_RETURN(const ManifestFileHeader files,
                          ParseManifestFileHeader(manifest, &header_in));
      std::set<uint64_t> extra_gens;
      for (const std::string& name : files.extra_files) {
        uint64_t gen = 0;
        if (ParseArchiveDataFileName(name, &gen)) extra_gens.insert(gen);
      }
      extra_gens.erase(generation);
      for (uint64_t gen : extra_gens) {
        reader.pins_.push_back(
            GenerationPinRegistry::Global()->Pin(env, dir, gen));
      }
    }
    MH_ASSIGN_OR_RETURN(const std::string again,
                        ReadChecked(env, ManifestPath(dir)));
    MH_ASSIGN_OR_RETURN(const uint64_t reread,
                        ParseManifestGeneration(again));
    if (reread == generation) break;
    reader.pins_.clear();
    if (attempt >= 3) {
      return Status::Unavailable("archive is being rebuilt; retry open: " +
                                 dir);
    }
  }
  const int version = ManifestVersion(manifest);
  Slice in;
  MH_ASSIGN_OR_RETURN(const ManifestFileHeader header,
                      ParseManifestFileHeader(manifest, &in));
  reader.generation_ = header.generation;
  // Store slots: [0] local, [1] remote (null placeholder when unused),
  // [2 + k] prior-generation files shared through dedup. store_names_
  // stays aligned; data_files_ is the compacted non-empty view for fsck.
  auto open_store = [&](const std::string& name)
      -> Result<std::shared_ptr<ChunkStoreReader>> {
    MH_ASSIGN_OR_RETURN(ChunkStoreReader store,
                        ChunkStoreReader::Open(env, JoinPath(dir, name)));
    reader.data_files_.push_back(name);
    return std::make_shared<ChunkStoreReader>(std::move(store));
  };
  MH_ASSIGN_OR_RETURN(std::shared_ptr<ChunkStoreReader> local,
                      open_store(header.chunks_name));
  reader.stores_.push_back(std::move(local));
  reader.store_names_.push_back(header.chunks_name);
  if (!header.remote_name.empty()) {
    MH_ASSIGN_OR_RETURN(std::shared_ptr<ChunkStoreReader> remote,
                        open_store(header.remote_name));
    reader.stores_.push_back(std::move(remote));
  } else {
    reader.stores_.push_back(nullptr);
  }
  reader.store_names_.push_back(header.remote_name);
  for (const std::string& extra : header.extra_files) {
    MH_ASSIGN_OR_RETURN(std::shared_ptr<ChunkStoreReader> store,
                        open_store(extra));
    reader.stores_.push_back(std::move(store));
    reader.store_names_.push_back(extra);
  }
  uint64_t num_matrices = 0;
  MH_RETURN_IF_ERROR(GetVarint64(&in, &num_matrices));
  reader.vertices_.resize(static_cast<size_t>(num_matrices) + 1);
  for (uint64_t i = 1; i <= num_matrices; ++i) {
    VertexMeta& meta = reader.vertices_[static_cast<size_t>(i)];
    Slice snapshot;
    Slice param;
    MH_RETURN_IF_ERROR(GetLengthPrefixed(&in, &snapshot));
    MH_RETURN_IF_ERROR(GetLengthPrefixed(&in, &param));
    meta.snapshot = snapshot.ToString();
    meta.param = param.ToString();
    uint64_t rows = 0;
    uint64_t cols = 0;
    MH_RETURN_IF_ERROR(GetVarint64(&in, &rows));
    MH_RETURN_IF_ERROR(GetVarint64(&in, &cols));
    meta.rows = static_cast<int64_t>(rows);
    meta.cols = static_cast<int64_t>(cols);
    if (in.size() < 2) return Status::Corruption("manifest truncated");
    MH_ASSIGN_OR_RETURN(
        meta.delta_kind,
        DeltaKindFromString(DeltaKindToString(static_cast<DeltaKind>(in[0]))));
    meta.tier = in[1];
    if (meta.tier != 0 && meta.tier != 1) {
      return Status::Corruption("manifest bad tier");
    }
    in.RemovePrefix(2);
    uint64_t parent = 0;
    MH_RETURN_IF_ERROR(GetVarint64(&in, &parent));
    if (parent > num_matrices || parent == i) {
      return Status::Corruption("manifest parent out of range");
    }
    meta.parent = static_cast<int>(parent);
    if (meta.tier == 1 && reader.stores_[1] == nullptr) {
      return Status::Corruption("manifest remote vertex without remote store");
    }
    for (int p = 0; p < kNumPlanes; ++p) {
      uint64_t slot = static_cast<uint64_t>(meta.tier);
      if (version >= 3) {
        MH_RETURN_IF_ERROR(GetVarint64(&in, &slot));
      }
      if (slot >= reader.stores_.size() ||
          reader.stores_[static_cast<size_t>(slot)] == nullptr) {
        return Status::Corruption("manifest chunk slot out of range");
      }
      uint64_t chunk_id = 0;
      MH_RETURN_IF_ERROR(GetVarint64(&in, &chunk_id));
      if (chunk_id >=
          reader.stores_[static_cast<size_t>(slot)]->num_chunks()) {
        return Status::Corruption("manifest chunk id out of range");
      }
      meta.slots[p] = static_cast<uint32_t>(slot);
      meta.chunk_ids[p] = static_cast<uint32_t>(chunk_id);
    }
  }
  uint64_t num_snapshots = 0;
  MH_RETURN_IF_ERROR(GetVarint64(&in, &num_snapshots));
  for (uint64_t s = 0; s < num_snapshots; ++s) {
    Slice name;
    MH_RETURN_IF_ERROR(GetLengthPrefixed(&in, &name));
    uint64_t count = 0;
    MH_RETURN_IF_ERROR(GetVarint64(&in, &count));
    std::vector<int> members;
    for (uint64_t m = 0; m < count; ++m) {
      uint64_t vertex = 0;
      MH_RETURN_IF_ERROR(GetVarint64(&in, &vertex));
      if (vertex == 0 || vertex > num_matrices) {
        return Status::Corruption("manifest group member out of range");
      }
      members.push_back(static_cast<int>(vertex));
    }
    reader.snapshot_names_.push_back(name.ToString());
    reader.snapshot_members_.push_back(std::move(members));
  }
  // Lookup indexes: every retrieval entry point resolves names through
  // these instead of scanning all vertices with string compares.
  for (size_t s = 0; s < reader.snapshot_names_.size(); ++s) {
    reader.snapshot_index_.emplace(reader.snapshot_names_[s],
                                   static_cast<int>(s));
  }
  for (size_t v = 1; v < reader.vertices_.size(); ++v) {
    const VertexMeta& meta = reader.vertices_[v];
    reader.vertex_index_.emplace(std::make_pair(meta.snapshot, meta.param),
                                 static_cast<int>(v));
  }
  return reader;
}

int ArchiveReader::FindSnapshot(const std::string& snapshot) const {
  auto it = snapshot_index_.find(snapshot);
  return it == snapshot_index_.end() ? -1 : it->second;
}

int ArchiveReader::FindVertex(const std::string& snapshot,
                              const std::string& param) const {
  auto it = vertex_index_.find(std::make_pair(snapshot, param));
  return it == vertex_index_.end() ? -1 : it->second;
}

ChunkStoreStats ArchiveReader::store_stats() const {
  ChunkStoreStats total;
  for (const auto& store : stores_) {
    if (store == nullptr) continue;
    const ChunkStoreStats stats = store->stats();
    total.bytes_read += stats.bytes_read;
    total.chunk_fetches += stats.chunk_fetches;
    total.cache_hits += stats.cache_hits;
    total.cache_evictions += stats.cache_evictions;
    total.cache_bytes += stats.cache_bytes;
  }
  return total;
}

Result<std::vector<std::string>> ArchiveReader::ParamNames(
    const std::string& snapshot) const {
  const int s = FindSnapshot(snapshot);
  if (s < 0) return Status::NotFound("no snapshot: " + snapshot);
  std::vector<std::string> names;
  for (int v : snapshot_members_[static_cast<size_t>(s)]) {
    names.push_back(vertices_[static_cast<size_t>(v)].param);
  }
  return names;
}

Result<FloatMatrix> ArchiveReader::ReadPayload(const VertexMeta& meta) const {
  std::string plane_data[kNumPlanes];
  std::vector<Slice> planes;
  for (int p = 0; p < kNumPlanes; ++p) {
    const ChunkStoreReader* store = stores_[meta.slots[p]].get();
    MH_ASSIGN_OR_RETURN(plane_data[p], store->Get(meta.chunk_ids[p]));
    planes.emplace_back(plane_data[p]);
  }
  return AssembleFloats(meta.rows, meta.cols, planes);
}

Result<const FloatMatrix*> ArchiveReader::ResolveExact(
    int vertex, std::map<int, FloatMatrix>* memo) const {
  auto it = memo->find(vertex);
  if (it != memo->end()) return &it->second;
  const VertexMeta& meta = vertices_[static_cast<size_t>(vertex)];
  MH_ASSIGN_OR_RETURN(FloatMatrix payload, ReadPayload(meta));
  MH_COUNTER("pas.retrieve.vertex.decode")->Increment();
  FloatMatrix value;
  if (meta.parent == 0) {
    value = std::move(payload);
  } else {
    MH_ASSIGN_OR_RETURN(const FloatMatrix* base,
                        ResolveExact(meta.parent, memo));
    MH_ASSIGN_OR_RETURN(value, ApplyDelta(*base, payload, meta.delta_kind));
    MH_COUNTER("pas.retrieve.delta.apply")->Increment();
  }
  return &memo->emplace(vertex, std::move(value)).first->second;
}

Result<FloatMatrix> ArchiveReader::RetrieveMatrix(
    const std::string& snapshot, const std::string& param) const {
  const int vertex = FindVertex(snapshot, param);
  if (vertex < 0) {
    return Status::NotFound("no matrix " + snapshot + "/" + param);
  }
  std::map<int, FloatMatrix> memo;
  MH_RETURN_IF_ERROR(ResolveExact(vertex, &memo).status());
  return std::move(memo.at(vertex));
}

Result<std::vector<NamedParam>> ArchiveReader::RetrieveSnapshot(
    const std::string& snapshot, RetrievalStats* stats) const {
  StatsScope scope(this, stats, "pas.retrieve.snapshot");
  scope.span().Annotate("snapshot", snapshot);
  const int s = FindSnapshot(snapshot);
  if (s < 0) return Status::NotFound("no snapshot: " + snapshot);
  const std::vector<int>& members = snapshot_members_[static_cast<size_t>(s)];
  std::map<int, FloatMatrix> memo;
  for (int v : members) {
    const Status status = ResolveExact(v, &memo).status();
    scope.set_vertices_resolved(memo.size());
    if (!status.ok()) return status;  // Scope still emits partial stats.
  }
  scope.MarkOk();
  // All chains are resolved; members can now be moved out of the memo
  // (no member is read again, so no copy per returned matrix).
  std::vector<NamedParam> out;
  out.reserve(members.size());
  for (int v : members) {
    out.push_back({vertices_[static_cast<size_t>(v)].param,
                   std::move(memo.at(v))});
  }
  return out;
}

Result<std::vector<NamedParam>> ArchiveReader::RetrieveSnapshotParallel(
    const std::string& snapshot, ThreadPool* pool,
    RetrievalStats* stats) const {
  MH_ASSIGN_OR_RETURN(std::vector<std::vector<NamedParam>> sets,
                      RetrieveSnapshotsParallel({snapshot}, pool,
                                                ParallelScheme::kShared,
                                                stats));
  return std::move(sets[0]);
}

Result<std::vector<std::vector<NamedParam>>>
ArchiveReader::RetrieveSnapshotsParallel(
    const std::vector<std::string>& snapshots, ThreadPool* pool,
    ParallelScheme scheme, RetrievalStats* stats) const {
  StatsScope scope(this, stats, "pas.retrieve.parallel");
  scope.span().Annotate("snapshots", static_cast<uint64_t>(snapshots.size()));
  scope.span().Annotate(
      "scheme", scheme == ParallelScheme::kShared ? "shared" : "independent");
  std::vector<const std::vector<int>*> member_lists;
  member_lists.reserve(snapshots.size());
  for (const std::string& name : snapshots) {
    const int s = FindSnapshot(name);
    if (s < 0) return Status::NotFound("no snapshot: " + name);
    member_lists.push_back(&snapshot_members_[static_cast<size_t>(s)]);
  }

  if (scheme == ParallelScheme::kIndependent) {
    // Table III's plain parallel scheme: one task per requested matrix,
    // each with a private memo, so shared chain prefixes are re-decoded
    // once per descendant. Kept as the measurable baseline.
    std::vector<std::vector<Result<FloatMatrix>>> results;
    for (const auto* members : member_lists) {
      results.emplace_back(members->size(),
                           Result<FloatMatrix>(Status::Internal("unset")));
    }
    std::atomic<uint64_t> resolved{0};
    WaitGroup done;
    for (size_t set = 0; set < member_lists.size(); ++set) {
      for (size_t m = 0; m < member_lists[set]->size(); ++m) {
        const int vertex = (*member_lists[set])[m];
        Result<FloatMatrix>* slot = &results[set][m];
        pool->Schedule(&done, [this, vertex, slot, &resolved] {
          std::map<int, FloatMatrix> memo;  // Independent: no sharing.
          const Status status = ResolveExact(vertex, &memo).status();
          resolved.fetch_add(memo.size(), std::memory_order_relaxed);
          *slot = status.ok() ? Result<FloatMatrix>(std::move(memo.at(vertex)))
                              : Result<FloatMatrix>(status);
        });
      }
    }
    done.Wait();
    scope.set_vertices_resolved(resolved.load());
    std::vector<std::vector<NamedParam>> out(member_lists.size());
    for (size_t set = 0; set < member_lists.size(); ++set) {
      for (size_t m = 0; m < member_lists[set]->size(); ++m) {
        MH_RETURN_IF_ERROR(results[set][m].status());
        out[set].push_back(
            {vertices_[static_cast<size_t>((*member_lists[set])[m])].param,
             std::move(*results[set][m])});
      }
    }
    scope.MarkOk();
    return out;
  }

  // --- Computation-sharing scheduler: one task per vertex of the delta-
  // chain forest spanned by every requested matrix. A vertex's task runs
  // once its parent has resolved (roots are scheduled immediately), and
  // its decoded matrix is shared by all descendant tasks instead of being
  // re-read and re-applied per matrix.
  struct Node {
    int vertex = 0;
    int parent_node = -1;        ///< Index into nodes; -1 = materialized.
    std::vector<int> children;   ///< Indexes into nodes.
    int uses = 0;                ///< Requested-output references.
    FloatMatrix value;
    Status status = Status::OK();
  };
  std::vector<Node> nodes;
  std::unordered_map<int, int> node_of;  // vertex id -> node index.
  for (const auto* members : member_lists) {
    for (int member : *members) {
      int cursor = member;
      while (cursor != 0 && node_of.find(cursor) == node_of.end()) {
        node_of.emplace(cursor, static_cast<int>(nodes.size()));
        Node node;
        node.vertex = cursor;
        nodes.push_back(std::move(node));
        cursor = vertices_[static_cast<size_t>(cursor)].parent;
      }
      ++nodes[static_cast<size_t>(node_of.at(member))].uses;
    }
  }
  for (size_t n = 0; n < nodes.size(); ++n) {
    const int parent = vertices_[static_cast<size_t>(nodes[n].vertex)].parent;
    if (parent == 0) continue;
    nodes[n].parent_node = node_of.at(parent);
    nodes[static_cast<size_t>(nodes[n].parent_node)].children.push_back(
        static_cast<int>(n));
  }

  // Every node is written by exactly one task; a child task reads its
  // parent's fields only after the parent task scheduled it, and the
  // final gather below is ordered by done.Wait() — no locks needed on
  // the nodes themselves.
  WaitGroup done;
  std::function<void(int)> run_vertex;
  run_vertex = [this, &nodes, pool, &done, &run_vertex](int index) {
    Node& node = nodes[static_cast<size_t>(index)];
    node.status = [&]() -> Status {
      if (node.parent_node >= 0) {
        const Status& parent_status =
            nodes[static_cast<size_t>(node.parent_node)].status;
        if (!parent_status.ok()) return parent_status;  // Cascade failure.
      }
      const VertexMeta& meta = vertices_[static_cast<size_t>(node.vertex)];
      MH_ASSIGN_OR_RETURN(FloatMatrix payload, ReadPayload(meta));
      MH_COUNTER("pas.retrieve.vertex.decode")->Increment();
      if (meta.parent == 0) {
        node.value = std::move(payload);
        return Status::OK();
      }
      const FloatMatrix& base =
          nodes[static_cast<size_t>(node.parent_node)].value;
      MH_ASSIGN_OR_RETURN(node.value,
                          ApplyDelta(base, payload, meta.delta_kind));
      MH_COUNTER("pas.retrieve.delta.apply")->Increment();
      return Status::OK();
    }();
    for (int child : node.children) {
      pool->Schedule(&done, [&run_vertex, child] { run_vertex(child); });
    }
  };
  for (size_t n = 0; n < nodes.size(); ++n) {
    if (nodes[n].parent_node >= 0) continue;
    const int index = static_cast<int>(n);
    pool->Schedule(&done, [&run_vertex, index] { run_vertex(index); });
  }
  done.Wait();
  scope.set_vertices_resolved(nodes.size());

  std::vector<std::vector<NamedParam>> out(member_lists.size());
  for (size_t set = 0; set < member_lists.size(); ++set) {
    for (int member : *member_lists[set]) {
      Node& node = nodes[static_cast<size_t>(node_of.at(member))];
      MH_RETURN_IF_ERROR(node.status);
      // The last requester steals the decoded matrix; earlier requesters
      // (the same snapshot listed twice) must copy.
      FloatMatrix value;
      if (--node.uses == 0) {
        value = std::move(node.value);
      } else {
        value = node.value;
      }
      out[set].push_back({vertices_[static_cast<size_t>(member)].param,
                          std::move(value)});
    }
  }
  scope.MarkOk();
  return out;
}

Result<const IntervalMatrix*> ArchiveReader::ResolveBounds(
    int vertex, int planes, std::map<int, IntervalMatrix>* memo,
    std::map<int, FloatMatrix>* exact_memo) const {
  auto it = memo->find(vertex);
  if (it != memo->end()) return &it->second;
  const VertexMeta& meta = vertices_[static_cast<size_t>(vertex)];
  const bool is_xor = meta.delta_kind == DeltaKind::kXor ||
                      meta.delta_kind == DeltaKind::kAdaptiveXor;
  if (is_xor && planes < kNumPlanes) {
    return Status::InvalidArgument(
        "partial retrieval is not defined over XOR deltas");
  }
  std::string plane_data[kNumPlanes];
  std::vector<Slice> plane_slices;
  for (int p = 0; p < planes; ++p) {
    const ChunkStoreReader* store = stores_[meta.slots[p]].get();
    MH_ASSIGN_OR_RETURN(plane_data[p], store->Get(meta.chunk_ids[p]));
    plane_slices.emplace_back(plane_data[p]);
  }
  MH_ASSIGN_OR_RETURN(
      IntervalMatrix own,
      BoundsFromPlanes(meta.rows, meta.cols, plane_slices));
  IntervalMatrix value;
  if (meta.parent == 0) {
    value = std::move(own);
  } else if (is_xor) {
    // Full planes: exact chain; XOR needs bit-exact operands. The exact
    // memo is threaded through the whole snapshot resolution, so a chain
    // prefix shared by several XOR vertices is decoded only once.
    MH_ASSIGN_OR_RETURN(const FloatMatrix* exact,
                        ResolveExact(vertex, exact_memo));
    value = IntervalMatrix::FromExact(*exact);
  } else {
    MH_ASSIGN_OR_RETURN(const IntervalMatrix* base_ptr,
                        ResolveBounds(meta.parent, planes, memo, exact_memo));
    const IntervalMatrix& base = *base_ptr;
    // target = base + delta on the overlap (interval addition); outside
    // the base's extent (adaptive deltas only) the delta carries the
    // target verbatim, so its own bounds stand alone.
    const int64_t overlap_rows = std::min(meta.rows, base.rows());
    const int64_t overlap_cols = std::min(meta.cols, base.cols());
    if (meta.delta_kind == DeltaKind::kSub &&
        (overlap_rows != meta.rows || overlap_cols != meta.cols)) {
      return Status::Corruption("exact SUB delta with mismatched base shape");
    }
    FloatMatrix lo(meta.rows, meta.cols);
    FloatMatrix hi(meta.rows, meta.cols);
    for (int64_t r = 0; r < meta.rows; ++r) {
      for (int64_t c = 0; c < meta.cols; ++c) {
        if (r < overlap_rows && c < overlap_cols) {
          lo.At(r, c) = base.lo().At(r, c) + own.lo().At(r, c);
          hi.At(r, c) = base.hi().At(r, c) + own.hi().At(r, c);
        } else {
          lo.At(r, c) = own.lo().At(r, c);
          hi.At(r, c) = own.hi().At(r, c);
        }
      }
    }
    MH_ASSIGN_OR_RETURN(value,
                        IntervalMatrix::FromBounds(std::move(lo), std::move(hi)));
  }
  return &memo->emplace(vertex, std::move(value)).first->second;
}

Result<std::map<std::string, IntervalMatrix>>
ArchiveReader::RetrieveSnapshotBounds(const std::string& snapshot,
                                      int planes) const {
  if (planes < 1 || planes > kNumPlanes) {
    return Status::InvalidArgument("planes must be in [1,4]");
  }
  StatsScope scope(this, nullptr, "pas.retrieve.bounds");
  scope.span().Annotate("snapshot", snapshot);
  scope.span().Annotate("planes", static_cast<uint64_t>(planes));
  const int s = FindSnapshot(snapshot);
  if (s < 0) return Status::NotFound("no snapshot: " + snapshot);
  const std::vector<int>& members = snapshot_members_[static_cast<size_t>(s)];
  std::map<int, IntervalMatrix> memo;
  std::map<int, FloatMatrix> exact_memo;  // Shared by all XOR vertices.
  for (int v : members) {
    const Status status = ResolveBounds(v, planes, &memo, &exact_memo).status();
    scope.set_vertices_resolved(memo.size());
    if (!status.ok()) return status;
  }
  scope.MarkOk();
  std::map<std::string, IntervalMatrix> out;
  for (int v : members) {
    out.emplace(vertices_[static_cast<size_t>(v)].param,
                std::move(memo.at(v)));
  }
  return out;
}

std::vector<std::string> ArchiveReader::VerifyIntegrity() const {
  std::vector<std::string> defects;
  auto verify_store = [&](const ChunkStoreReader* store,
                          const std::string& label) {
    if (store == nullptr) return;
    for (uint32_t i = 0; i < store->num_chunks(); ++i) {
      const Status status = store->Verify(i);
      if (!status.ok()) {
        defects.push_back(label + ": " + status.ToString());
      }
    }
  };
  for (size_t s = 0; s < stores_.size(); ++s) {
    verify_store(stores_[s].get(), "chunk store " + store_names_[s]);
  }
  // Every delta chain must terminate at a materialized vertex without
  // cycles; Open bounds parent ids but cannot see cycles spanning vertices.
  for (size_t v = 1; v < vertices_.size(); ++v) {
    int cursor = static_cast<int>(v);
    size_t steps = 0;
    while (cursor != 0 && steps <= vertices_.size()) {
      cursor = vertices_[static_cast<size_t>(cursor)].parent;
      ++steps;
    }
    if (cursor != 0) {
      defects.push_back("delta chain of " + vertices_[v].snapshot + "/" +
                        vertices_[v].param + " does not terminate (cycle)");
    }
  }
  return defects;
}

uint64_t ArchiveReader::TotalStoredBytes() const {
  // Each referenced (store, chunk) pair counts once, so shared chunks —
  // within this generation or borrowed from a prior one — are not double
  // counted, and unreferenced residue inside a shared prior file is not
  // charged to this archive.
  std::set<std::pair<uint32_t, uint32_t>> seen;
  uint64_t total = 0;
  for (size_t v = 1; v < vertices_.size(); ++v) {
    const VertexMeta& meta = vertices_[v];
    for (int p = 0; p < kNumPlanes; ++p) {
      if (seen.emplace(meta.slots[p], meta.chunk_ids[p]).second) {
        total += stores_[meta.slots[p]]->ref(meta.chunk_ids[p]).stored_size;
      }
    }
  }
  return total;
}

ArchiveDedupStats ArchiveReader::ComputeDedupStats() const {
  ArchiveDedupStats stats;
  std::map<std::pair<uint32_t, uint32_t>, int> refs;
  for (size_t v = 1; v < vertices_.size(); ++v) {
    const VertexMeta& meta = vertices_[v];
    for (int p = 0; p < kNumPlanes; ++p) {
      ++stats.plane_refs;
      if (meta.slots[p] >= 2) ++stats.cross_file_refs;
      const auto key = std::make_pair(meta.slots[p], meta.chunk_ids[p]);
      const uint64_t size =
          stores_[meta.slots[p]]->ref(meta.chunk_ids[p]).stored_size;
      stats.logical_bytes += size;
      if (++refs[key] == 1) {
        ++stats.unique_chunks;
        stats.stored_bytes += size;
      }
    }
  }
  for (const auto& [key, count] : refs) {
    if (count > 1) stats.shared_refs += count - 1;
  }
  return stats;
}

Result<ChunkIndex> RebuildChunkIndex(Env* env, const std::string& dir) {
  MH_ASSIGN_OR_RETURN(ArchiveReader reader, ArchiveReader::Open(env, dir));
  ChunkIndex index;
  index.set_generation(reader.generation());
  for (size_t v = 1; v < reader.vertices_.size(); ++v) {
    const auto& meta = reader.vertices_[v];
    for (int p = 0; p < kNumPlanes; ++p) {
      const uint32_t slot = meta.slots[p];
      MH_ASSIGN_OR_RETURN(const std::string payload,
                          reader.stores_[slot]->GetCompressed(
                              meta.chunk_ids[p]));
      index.AddRef(ContentHash128(payload.data(), payload.size()),
                   reader.store_names_[slot], meta.chunk_ids[p],
                   payload.size());
    }
  }
  return index;
}

}  // namespace modelhub
