#include "pas/segment.h"

#include <cfloat>
#include <cmath>
#include <cstring>

#include "common/macros.h"

namespace modelhub {

namespace {

uint32_t FloatBits(float v) {
  uint32_t u;
  std::memcpy(&u, &v, 4);
  return u;
}

float BitsToFloat(uint32_t u) {
  float v;
  std::memcpy(&v, &u, 4);
  return v;
}

/// Replaces inf/NaN (which can only arise from synthetic bit fills) with
/// the largest finite magnitude of the same sign.
float ClampFinite(float v) {
  if (std::isfinite(v)) return v;
  return std::signbit(v) ? -FLT_MAX : FLT_MAX;
}

Status ValidatePlanes(int64_t rows, int64_t cols,
                      const std::vector<Slice>& planes) {
  if (planes.empty() || planes.size() > kNumPlanes) {
    return Status::InvalidArgument("plane count must be in [1,4]");
  }
  const size_t expected = static_cast<size_t>(rows) * static_cast<size_t>(cols);
  for (const Slice& plane : planes) {
    if (plane.size() != expected) {
      return Status::InvalidArgument("plane size does not match shape");
    }
  }
  return Status::OK();
}

/// Reconstructs element i's bits from available planes, filling missing
/// low-order bytes with `fill`.
uint32_t AssembleBits(const std::vector<Slice>& planes, size_t i,
                      uint8_t fill) {
  uint32_t u = 0;
  for (int p = 0; p < kNumPlanes; ++p) {
    const uint32_t byte =
        p < static_cast<int>(planes.size()) ? planes[p][i] : fill;
    u |= byte << (8 * (kNumPlanes - 1 - p));
  }
  return u;
}

}  // namespace

void SegmentFloatsRange(const float* values, size_t count, size_t offset,
                        std::array<std::string, kNumPlanes>* planes) {
  char* p0 = (*planes)[0].data() + offset;
  char* p1 = (*planes)[1].data() + offset;
  char* p2 = (*planes)[2].data() + offset;
  char* p3 = (*planes)[3].data() + offset;
  for (size_t i = 0; i < count; ++i) {
    const uint32_t u = FloatBits(values[i]);
    p0[i] = static_cast<char>((u >> 24) & 0xFF);
    p1[i] = static_cast<char>((u >> 16) & 0xFF);
    p2[i] = static_cast<char>((u >> 8) & 0xFF);
    p3[i] = static_cast<char>(u & 0xFF);
  }
}

std::array<std::string, kNumPlanes> SegmentFloats(const FloatMatrix& matrix) {
  std::array<std::string, kNumPlanes> planes;
  const size_t n = matrix.data().size();
  for (auto& plane : planes) plane.resize(n);
  SegmentFloatsRange(matrix.data().data(), n, 0, &planes);
  return planes;
}

Result<FloatMatrix> AssembleFloats(int64_t rows, int64_t cols,
                                   const std::vector<Slice>& planes) {
  MH_RETURN_IF_ERROR(ValidatePlanes(rows, cols, planes));
  FloatMatrix out(rows, cols);
  for (size_t i = 0; i < out.data().size(); ++i) {
    out.data()[i] = BitsToFloat(AssembleBits(planes, i, 0x00));
  }
  return out;
}

Result<IntervalMatrix> BoundsFromPlanes(int64_t rows, int64_t cols,
                                        const std::vector<Slice>& planes) {
  MH_RETURN_IF_ERROR(ValidatePlanes(rows, cols, planes));
  FloatMatrix lo(rows, cols);
  FloatMatrix hi(rows, cols);
  const bool complete = planes.size() == kNumPlanes;
  for (size_t i = 0; i < lo.data().size(); ++i) {
    const float zero_fill =
        ClampFinite(BitsToFloat(AssembleBits(planes, i, 0x00)));
    if (complete) {
      lo.data()[i] = zero_fill;
      hi.data()[i] = zero_fill;
      continue;
    }
    const float ones_fill =
        ClampFinite(BitsToFloat(AssembleBits(planes, i, 0xFF)));
    // For positive floats larger mantissa bits mean a larger value; for
    // negative floats (sign bit set in plane 0) the order flips.
    if (zero_fill <= ones_fill) {
      lo.data()[i] = zero_fill;
      hi.data()[i] = ones_fill;
    } else {
      lo.data()[i] = ones_fill;
      hi.data()[i] = zero_fill;
    }
  }
  return IntervalMatrix::FromBounds(std::move(lo), std::move(hi));
}

}  // namespace modelhub
