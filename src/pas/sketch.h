#ifndef MODELHUB_PAS_SKETCH_H_
#define MODELHUB_PAS_SKETCH_H_

#include <array>
#include <cstdint>
#include <vector>

#include "pas/chunk_index.h"
#include "tensor/float_matrix.h"

namespace modelhub {

/// Minhash slots per sketch. 24 slots bound the similarity estimate's
/// standard error to ~0.1, enough to separate "fine-tuned sibling" (most
/// blocks shared) from "unrelated model" (none) — the only distinction the
/// delta pairing needs.
inline constexpr int kSketchSlots = 24;

/// Floats per sketch block. A block is the unit of similarity: a sparse
/// edit invalidates only the blocks it touches, so two models sharing most
/// weights share most block tokens.
inline constexpr int64_t kSketchBlockFloats = 64;

/// A minhash sketch of one parameter matrix, built from position-tagged
/// blocks of the high-order bytes of each float (the top 16 bits — sign,
/// exponent, leading mantissa). Low-order mantissa noise (optimizer jitter,
/// re-serialization dust) leaves the tokens unchanged, so near-identical
/// fine-tunes sketch as near-identical sets; genuinely different weights
/// share essentially no tokens.
struct ParamSketch {
  int64_t rows = 0;
  int64_t cols = 0;
  std::array<uint64_t, kSketchSlots> slots{};
};

ParamSketch ComputeParamSketch(const FloatMatrix& matrix);

/// Estimated Jaccard similarity of two sketches' block-token sets: the
/// fraction of matching minhash slots. 0.0 when shapes differ (cross-shape
/// deltas are never candidates for similarity pairing).
double SketchSimilarity(const ParamSketch& a, const ParamSketch& b);

/// One proposed delta pairing: `to` should consider `from` as a delta
/// parent (indices into the caller's sketch vector).
struct SketchPairing {
  int from = 0;
  int to = 0;
  double similarity = 0.0;
};

/// Proposes up to `fanout` delta-parent candidates per matrix by content
/// similarity: matrices are grouped by shape and each one is compared
/// against a bounded window of earlier same-shape matrices, keeping the
/// most similar ones at or above `threshold`. Deterministic: pairings
/// depend only on the sketches and their order (ties prefer the earlier
/// index), never on thread count, and total work is bounded by
/// fanout-independent window * n comparisons.
std::vector<SketchPairing> SimilarDeltaPairs(
    const std::vector<ParamSketch>& sketches, int fanout, double threshold);

}  // namespace modelhub

#endif  // MODELHUB_PAS_SKETCH_H_
