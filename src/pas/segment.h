#ifndef MODELHUB_PAS_SEGMENT_H_
#define MODELHUB_PAS_SEGMENT_H_

#include <array>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "tensor/float_matrix.h"
#include "tensor/interval.h"

namespace modelhub {

/// Number of byte planes a float32 matrix decomposes into.
inline constexpr int kNumPlanes = 4;

/// Bytewise segmentation (Sec. IV-B): plane 0 holds each float's most
/// significant byte (sign + exponent + top mantissa bit), planes 1..3 the
/// successively less significant mantissa bytes. Plane 0 has low entropy
/// and compresses well; low planes are near-random. Storing planes
/// separately lets queries read only high-order bytes.
std::array<std::string, kNumPlanes> SegmentFloats(const FloatMatrix& matrix);

/// Range kernel behind SegmentFloats: segments `count` floats starting at
/// `values` into the four plane buffers at byte offset `offset`. Each
/// plane must already be sized to hold offset + count bytes. Disjoint
/// ranges may be segmented concurrently (the tiled archival pipeline
/// writes one tile per task into shared plane buffers); the bytes written
/// are exactly SegmentFloats' for the same elements.
void SegmentFloatsRange(const float* values, size_t count, size_t offset,
                        std::array<std::string, kNumPlanes>* planes);

/// Reassembles a matrix from the first `planes.size()` high-order planes;
/// missing low-order bytes are zero-filled (the midpoint-free lower bound
/// of the representable range). All supplied planes must have rows*cols
/// bytes. planes.size() must be in [1, 4].
Result<FloatMatrix> AssembleFloats(int64_t rows, int64_t cols,
                                   const std::vector<Slice>& planes);

/// Sound per-element bounds on the true float values given only the first
/// `planes.size()` high-order planes: the unknown low bytes range over
/// 0x00..0xFF. Handles negative values (where larger magnitude means a
/// smaller value) and clamps non-finite fills to +-FLT_MAX.
Result<IntervalMatrix> BoundsFromPlanes(int64_t rows, int64_t cols,
                                        const std::vector<Slice>& planes);

}  // namespace modelhub

#endif  // MODELHUB_PAS_SEGMENT_H_
