#include "pas/progressive.h"

#include <algorithm>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "nn/interval_eval.h"
#include "nn/network.h"

namespace modelhub {

namespace {

/// Copies the samples at `indices` out of `input`.
Tensor GatherSamples(const Tensor& input, const std::vector<int64_t>& indices) {
  Tensor out(static_cast<int64_t>(indices.size()), input.c(), input.h(),
             input.w());
  const int64_t ss = input.SampleSize();
  for (size_t i = 0; i < indices.size(); ++i) {
    std::copy(input.data().begin() + indices[i] * ss,
              input.data().begin() + (indices[i] + 1) * ss,
              out.data().begin() + static_cast<int64_t>(i) * ss);
  }
  return out;
}

int ArgmaxLowerBound(const std::vector<Interval>& outputs) {
  int best = 0;
  for (size_t j = 1; j < outputs.size(); ++j) {
    if (outputs[j].lo > outputs[static_cast<size_t>(best)].lo) {
      best = static_cast<int>(j);
    }
  }
  return best;
}

}  // namespace

Result<ProgressiveResult> ProgressiveQueryEvaluator::Evaluate(
    const std::string& snapshot, const Tensor& input,
    const ProgressiveOptions& options) const {
  if (options.top_k < 1) {
    return Status::InvalidArgument("top_k must be >= 1");
  }
  if (options.initial_planes < 1 || options.initial_planes > kNumPlanes) {
    return Status::InvalidArgument("initial_planes must be in [1,4]");
  }
  MH_ASSIGN_OR_RETURN(Network net, Network::Create(def_));
  IntervalEvaluator evaluator(&net);

  TraceSpan span("pas.progressive.evaluate");
  span.Annotate("snapshot", snapshot);
  MH_COUNTER("pas.progressive.query.count")->Increment();

  const int64_t batch = input.n();
  ProgressiveResult result;
  result.labels.assign(static_cast<size_t>(batch), -1);
  result.planes_needed.assign(static_cast<size_t>(batch), kNumPlanes);

  reader_->ResetByteCounter();
  std::vector<int64_t> pending(static_cast<size_t>(batch));
  for (int64_t i = 0; i < batch; ++i) pending[static_cast<size_t>(i)] = i;

  for (int planes = options.initial_planes;
       planes <= kNumPlanes && !pending.empty(); ++planes) {
    MH_COUNTER("pas.progressive.rounds")->Increment();
    MH_ASSIGN_OR_RETURN(auto bounds,
                        reader_->RetrieveSnapshotBounds(snapshot, planes));
    const Tensor subset = GatherSamples(input, pending);
    MH_ASSIGN_OR_RETURN(auto intervals, evaluator.Forward(subset, bounds));

    const size_t pending_before = pending.size();
    std::vector<int64_t> still_pending;
    for (size_t i = 0; i < pending.size(); ++i) {
      const auto& outputs = intervals[i];
      const bool determined =
          planes == kNumPlanes ||
          (options.top_k == 1
               ? IntervalEvaluator::DeterminedTopLabel(outputs) >= 0
               : IntervalEvaluator::TopKDetermined(outputs, options.top_k));
      if (determined) {
        result.labels[static_cast<size_t>(pending[i])] =
            ArgmaxLowerBound(outputs);
        result.planes_needed[static_cast<size_t>(pending[i])] = planes;
        result.resolved_at[static_cast<size_t>(planes)]++;
      } else {
        still_pending.push_back(pending[i]);
      }
    }
    MH_COUNTER("pas.progressive.samples.resolved")
        ->Add(pending_before - still_pending.size());
    pending = std::move(still_pending);
  }
  result.bytes_read = reader_->bytes_read();
  MH_COUNTER("pas.progressive.bytes")->Add(result.bytes_read);
  span.Annotate("bytes", result.bytes_read);

  // Exact-retrieval baseline for the same snapshot: all four plane chunks
  // of every matrix on the delta chains (cache cleared first).
  reader_->EnableChunkCache(false);
  reader_->EnableChunkCache(true);
  reader_->ResetByteCounter();
  MH_RETURN_IF_ERROR(
      reader_->RetrieveSnapshotBounds(snapshot, kNumPlanes).status());
  result.full_bytes = reader_->bytes_read();
  reader_->ResetByteCounter();
  return result;
}

}  // namespace modelhub
