#include "pas/float_encoding.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/macros.h"
#include "compress/bit_stream.h"

namespace modelhub {

namespace {

uint32_t FloatBits(float v) {
  uint32_t u;
  std::memcpy(&u, &v, 4);
  return u;
}

float BitsToFloat(uint32_t u) {
  float v;
  std::memcpy(&v, &u, 4);
  return v;
}

constexpr int kMinPackBits = 2;
constexpr int kMaxPackBits = 24;

}  // namespace

std::string FloatScheme::ToString() const {
  switch (kind) {
    case FloatSchemeKind::kFloat32:
      return "float32";
    case FloatSchemeKind::kFloat16:
      return "float16";
    case FloatSchemeKind::kBFloat16:
      return "bfloat16";
    case FloatSchemeKind::kFixedPoint:
      return "fixed" + std::to_string(bits);
    case FloatSchemeKind::kQuantUniform:
      return "quant-uniform" + std::to_string(bits);
    case FloatSchemeKind::kQuantRandom:
      return "quant-random" + std::to_string(bits);
  }
  return "unknown";
}

int FloatScheme::BitsPerValue() const {
  switch (kind) {
    case FloatSchemeKind::kFloat32:
      return 32;
    case FloatSchemeKind::kFloat16:
    case FloatSchemeKind::kBFloat16:
      return 16;
    default:
      return bits;
  }
}

uint16_t FloatToHalf(float value) {
  const uint32_t u = FloatBits(value);
  const uint32_t sign = (u >> 16) & 0x8000u;
  const int32_t exponent = static_cast<int32_t>((u >> 23) & 0xFF) - 127 + 15;
  uint32_t mantissa = u & 0x7FFFFFu;
  if (((u >> 23) & 0xFF) == 0xFF) {
    // Inf / NaN.
    return static_cast<uint16_t>(sign | 0x7C00u | (mantissa ? 0x200u : 0));
  }
  if (exponent >= 0x1F) {
    return static_cast<uint16_t>(sign | 0x7C00u);  // Overflow to inf.
  }
  if (exponent <= 0) {
    // Subnormal or underflow to zero.
    if (exponent < -10) return static_cast<uint16_t>(sign);
    mantissa |= 0x800000u;
    const int shift = 14 - exponent;
    uint32_t half_mant = mantissa >> shift;
    // Round to nearest.
    if ((mantissa >> (shift - 1)) & 1u) ++half_mant;
    return static_cast<uint16_t>(sign | half_mant);
  }
  uint32_t half = sign | (static_cast<uint32_t>(exponent) << 10) |
                  (mantissa >> 13);
  // Round to nearest even on the dropped 13 bits.
  const uint32_t round_bits = mantissa & 0x1FFFu;
  if (round_bits > 0x1000u || (round_bits == 0x1000u && (half & 1u))) {
    ++half;  // May carry into the exponent, which correctly rounds up.
  }
  return static_cast<uint16_t>(half);
}

float HalfToFloat(uint16_t half) {
  const uint32_t sign = (static_cast<uint32_t>(half) & 0x8000u) << 16;
  const uint32_t exponent = (half >> 10) & 0x1Fu;
  const uint32_t mantissa = half & 0x3FFu;
  if (exponent == 0) {
    if (mantissa == 0) return BitsToFloat(sign);
    // Subnormal half: normalize.
    float v = static_cast<float>(mantissa) * std::pow(2.0f, -24.0f);
    return sign ? -v : v;
  }
  if (exponent == 0x1F) {
    return BitsToFloat(sign | 0x7F800000u | (mantissa << 13));
  }
  return BitsToFloat(sign | ((exponent - 15 + 127) << 23) | (mantissa << 13));
}

uint16_t FloatToBfloat16(float value) {
  uint32_t u = FloatBits(value);
  if (((u >> 23) & 0xFF) == 0xFF) {
    // Preserve inf/NaN without rounding carries.
    return static_cast<uint16_t>((u >> 16) | ((u & 0xFFFFu) ? 1 : 0));
  }
  u += 0x7FFFu + ((u >> 16) & 1u);  // Round to nearest even.
  return static_cast<uint16_t>(u >> 16);
}

float Bfloat16ToFloat(uint16_t bits) {
  return BitsToFloat(static_cast<uint32_t>(bits) << 16);
}

FloatMatrix AddConstant(const FloatMatrix& matrix, float constant) {
  FloatMatrix out = matrix;
  for (auto& v : out.data()) v += constant;
  return out;
}

namespace {

Result<EncodedMatrix> EncodeFixedPoint(const FloatMatrix& matrix, int bits) {
  if (bits < kMinPackBits || bits > kMaxPackBits) {
    return Status::InvalidArgument("fixed point bits must be in [2,24]");
  }
  EncodedMatrix out;
  out.scheme = {FloatSchemeKind::kFixedPoint, bits};
  out.rows = matrix.rows();
  out.cols = matrix.cols();
  float max_abs = 0.0f;
  for (float v : matrix.data()) max_abs = std::max(max_abs, std::fabs(v));
  const int64_t max_mantissa = (int64_t{1} << (bits - 1)) - 1;
  // Choose exponent so max_abs maps near max_mantissa.
  int32_t exponent = 0;
  if (max_abs > 0.0f) {
    exponent = static_cast<int32_t>(std::ceil(
        std::log2(max_abs / static_cast<double>(max_mantissa))));
  }
  out.exponent = exponent;
  const double scale = std::pow(2.0, -exponent);
  BitWriter writer(&out.payload);
  for (float v : matrix.data()) {
    int64_t mantissa = static_cast<int64_t>(std::llround(v * scale));
    mantissa = std::clamp(mantissa, -max_mantissa, max_mantissa);
    // Offset encoding keeps the packed value non-negative.
    writer.Write(static_cast<uint32_t>(mantissa + max_mantissa), bits);
  }
  writer.Finish();
  return out;
}

Result<FloatMatrix> DecodeFixedPoint(const EncodedMatrix& encoded) {
  const int bits = encoded.scheme.bits;
  const int64_t max_mantissa = (int64_t{1} << (bits - 1)) - 1;
  const double scale = std::pow(2.0, encoded.exponent);
  FloatMatrix out(encoded.rows, encoded.cols);
  BitReader reader(Slice(encoded.payload));
  for (int64_t i = 0; i < out.size(); ++i) {
    int64_t raw = 0;
    for (int b = 0; b < bits; ++b) {
      const int bit = reader.ReadBit();
      if (bit < 0) return Status::Corruption("fixed point: short payload");
      raw = (raw << 1) | bit;
    }
    out.data()[static_cast<size_t>(i)] =
        static_cast<float>((raw - max_mantissa) * scale);
  }
  return out;
}

Result<EncodedMatrix> EncodeQuantized(const FloatMatrix& matrix, int bits,
                                      bool random, Rng* rng) {
  if (bits < 1 || bits > 8) {
    return Status::InvalidArgument("quantization bits must be in [1,8]");
  }
  if (matrix.empty()) {
    return Status::InvalidArgument("cannot quantize an empty matrix");
  }
  if (random && rng == nullptr) {
    return Status::InvalidArgument("random quantization requires an Rng");
  }
  EncodedMatrix out;
  out.scheme = {random ? FloatSchemeKind::kQuantRandom
                       : FloatSchemeKind::kQuantUniform,
                bits};
  out.rows = matrix.rows();
  out.cols = matrix.cols();
  const int64_t levels = int64_t{1} << bits;
  const float lo = matrix.Min();
  const float hi = matrix.Max();
  out.codebook.resize(static_cast<size_t>(levels));
  if (random) {
    // Random codebook: sample levels distinct-ish values from the data.
    for (auto& c : out.codebook) {
      c = matrix.data()[rng->Uniform(matrix.data().size())];
    }
    std::sort(out.codebook.begin(), out.codebook.end());
  } else {
    // Uniform: bin midpoints over [lo, hi].
    const double width =
        (static_cast<double>(hi) - lo) / static_cast<double>(levels);
    for (int64_t i = 0; i < levels; ++i) {
      out.codebook[static_cast<size_t>(i)] =
          static_cast<float>(lo + width * (i + 0.5));
    }
  }
  BitWriter writer(&out.payload);
  for (float v : matrix.data()) {
    // Nearest codebook entry (codebook is sorted).
    const auto it =
        std::lower_bound(out.codebook.begin(), out.codebook.end(), v);
    int64_t idx = it - out.codebook.begin();
    if (idx == levels) {
      idx = levels - 1;
    } else if (idx > 0 &&
               std::fabs(out.codebook[static_cast<size_t>(idx - 1)] - v) <=
                   std::fabs(out.codebook[static_cast<size_t>(idx)] - v)) {
      --idx;
    }
    writer.Write(static_cast<uint32_t>(idx), bits);
  }
  writer.Finish();
  return out;
}

Result<FloatMatrix> DecodeQuantized(const EncodedMatrix& encoded) {
  const int bits = encoded.scheme.bits;
  const size_t levels = size_t{1} << bits;
  if (encoded.codebook.size() != levels) {
    return Status::Corruption("quantized matrix has wrong codebook size");
  }
  FloatMatrix out(encoded.rows, encoded.cols);
  BitReader reader(Slice(encoded.payload));
  for (int64_t i = 0; i < out.size(); ++i) {
    uint32_t code = 0;
    for (int b = 0; b < bits; ++b) {
      const int bit = reader.ReadBit();
      if (bit < 0) return Status::Corruption("quantized: short payload");
      code = (code << 1) | static_cast<uint32_t>(bit);
    }
    out.data()[static_cast<size_t>(i)] = encoded.codebook[code];
  }
  return out;
}

}  // namespace

Result<EncodedMatrix> EncodeMatrix(const FloatMatrix& matrix,
                                   const FloatScheme& scheme, Rng* rng) {
  switch (scheme.kind) {
    case FloatSchemeKind::kFloat32: {
      EncodedMatrix out;
      out.scheme = {FloatSchemeKind::kFloat32, 32};
      out.rows = matrix.rows();
      out.cols = matrix.cols();
      out.payload = matrix.ToBytes();
      return out;
    }
    case FloatSchemeKind::kFloat16:
    case FloatSchemeKind::kBFloat16: {
      EncodedMatrix out;
      out.scheme = {scheme.kind, 16};
      out.rows = matrix.rows();
      out.cols = matrix.cols();
      out.payload.reserve(static_cast<size_t>(matrix.size()) * 2);
      for (float v : matrix.data()) {
        const uint16_t h = scheme.kind == FloatSchemeKind::kFloat16
                               ? FloatToHalf(v)
                               : FloatToBfloat16(v);
        out.payload.push_back(static_cast<char>(h & 0xFF));
        out.payload.push_back(static_cast<char>(h >> 8));
      }
      return out;
    }
    case FloatSchemeKind::kFixedPoint:
      return EncodeFixedPoint(matrix, scheme.bits);
    case FloatSchemeKind::kQuantUniform:
      return EncodeQuantized(matrix, scheme.bits, /*random=*/false, rng);
    case FloatSchemeKind::kQuantRandom:
      return EncodeQuantized(matrix, scheme.bits, /*random=*/true, rng);
  }
  return Status::InvalidArgument("unknown float scheme");
}

Result<FloatMatrix> DecodeMatrix(const EncodedMatrix& encoded) {
  switch (encoded.scheme.kind) {
    case FloatSchemeKind::kFloat32:
      return FloatMatrix::FromBytes(encoded.rows, encoded.cols,
                                    Slice(encoded.payload));
    case FloatSchemeKind::kFloat16:
    case FloatSchemeKind::kBFloat16: {
      const size_t expected = static_cast<size_t>(encoded.rows) *
                              static_cast<size_t>(encoded.cols) * 2;
      if (encoded.payload.size() != expected) {
        return Status::Corruption("16-bit float payload size mismatch");
      }
      FloatMatrix out(encoded.rows, encoded.cols);
      for (int64_t i = 0; i < out.size(); ++i) {
        const uint16_t h = static_cast<uint8_t>(encoded.payload[2 * i]) |
                           (static_cast<uint16_t>(static_cast<uint8_t>(
                                encoded.payload[2 * i + 1]))
                            << 8);
        out.data()[static_cast<size_t>(i)] =
            encoded.scheme.kind == FloatSchemeKind::kFloat16
                ? HalfToFloat(h)
                : Bfloat16ToFloat(h);
      }
      return out;
    }
    case FloatSchemeKind::kFixedPoint:
      return DecodeFixedPoint(encoded);
    case FloatSchemeKind::kQuantUniform:
    case FloatSchemeKind::kQuantRandom:
      return DecodeQuantized(encoded);
  }
  return Status::InvalidArgument("unknown float scheme");
}

}  // namespace modelhub
