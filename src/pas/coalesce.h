#ifndef MODELHUB_PAS_COALESCE_H_
#define MODELHUB_PAS_COALESCE_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "common/result.h"

namespace modelhub {

/// Single-flight retrieval coalescing (DESIGN.md §9): concurrent requests
/// for the same (snapshot key, planes) share ONE underlying PAS retrieval
/// instead of re-decoding the delta chain once per caller. The first
/// caller of a key becomes the leader and runs the fetcher; everyone who
/// arrives while that flight is open blocks on it and receives the shared
/// immutable payload. Archives are immutable once opened, so an optional
/// linger window keeps a completed flight joinable for `linger_ms` more —
/// a burst of N identical pulls then costs one retrieval deterministically
/// (nginx-style request coalescing with a micro-TTL). Errors never
/// linger: a failed flight wakes its waiters with the error and is
/// dropped, so transient faults are retried by the next caller.
///
/// Metrics: server.coalesce.hit.count (joined an existing flight),
/// server.coalesce.miss.count (became leader).
class SnapshotCoalescer {
 public:
  /// Runs the actual retrieval for (key, planes) and returns the
  /// serialized response payload. Called outside all coalescer locks.
  using Fetcher =
      std::function<Result<std::string>(const std::string& key, int planes)>;

  explicit SnapshotCoalescer(Fetcher fetch, int linger_ms = 0)
      : fetch_(std::move(fetch)), linger_ms_(linger_ms) {}

  /// Returns the shared payload for (key, planes), coalescing with any
  /// in-flight or lingering identical request.
  Result<std::shared_ptr<const std::string>> Fetch(const std::string& key,
                                                   int planes);

  /// Exact per-instance counters (the MH_ counters are process-global).
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  using Key = std::pair<std::string, int>;

  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;                            ///< Guarded by mu.
    std::shared_ptr<const std::string> value; ///< Guarded by mu.
    std::chrono::steady_clock::time_point completed_at;  ///< Guarded by mu.
  };

  /// Drops completed flights whose linger window has passed. Requires mu_.
  void PurgeExpiredLocked();

  Fetcher fetch_;
  const int linger_ms_;

  mutable std::mutex mu_;
  std::map<Key, std::shared_ptr<Flight>> flights_;  ///< Guarded by mu_.
  uint64_t hits_ = 0;    ///< Guarded by mu_.
  uint64_t misses_ = 0;  ///< Guarded by mu_.
};

}  // namespace modelhub

#endif  // MODELHUB_PAS_COALESCE_H_
