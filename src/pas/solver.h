#ifndef MODELHUB_PAS_SOLVER_H_
#define MODELHUB_PAS_SOLVER_H_

#include "common/result.h"
#include "pas/storage_graph.h"

namespace modelhub {

/// Solvers for the Optimal Parameter Archival Storage problem (Problem 1):
/// choose a spanning tree of the matrix storage graph minimizing total
/// storage cost subject to per-snapshot recreation budgets. The problem is
/// NP-hard (Theorem 1); these are the heuristics evaluated in Fig 6(c).

/// Minimum spanning tree on storage cost (Prim from v0) — the best
/// possible storage footprint, ignoring recreation budgets entirely.
Result<StoragePlan> SolveMst(const MatrixStorageGraph& graph);

/// Shortest path tree on recreation cost (Dijkstra from v0) — the best
/// possible recreation, ignoring storage (full materialization when every
/// direct v0 edge is the fastest path).
Result<StoragePlan> SolveSpt(const MatrixStorageGraph& graph);

/// The LAST balanced tree of Khuller, Raghavachari & Young (the paper's
/// baseline): starts from the MST and re-parents any vertex whose tree
/// path exceeds alpha times its shortest-path distance. Per-vertex bounds
/// only — it cannot see the co-usage groups.
Result<StoragePlan> SolveLast(const MatrixStorageGraph& graph, double alpha);

/// PAS-MT (Sec. IV-C): iterative refinement. Starts from the MST and
/// repeatedly applies the edge swap with the best marginal
/// recreation-gain/storage-increase ratio (Eq. 1 for independent, Eq. 2
/// for parallel) until all group budgets hold or no helpful swap remains.
Result<StoragePlan> SolvePasMt(const MatrixStorageGraph& graph,
                               RetrievalScheme scheme);

/// PAS-PT (Sec. IV-C): priority-based construction. Grows the tree from
/// v0 taking candidate edges in increasing storage cost, skipping edges
/// whose addition would (by lower-bound estimate) break a group budget;
/// stranded vertices are attached afterwards and the plan is refined.
Result<StoragePlan> SolvePasPt(const MatrixStorageGraph& graph,
                               RetrievalScheme scheme);

/// The shared budget-repair loop used by PAS-MT (from the MST) and as the
/// PAS-PT fallback: greedy best-ratio swaps until feasible or stuck.
Status RefineForBudgets(StoragePlan* plan, RetrievalScheme scheme);

}  // namespace modelhub

#endif  // MODELHUB_PAS_SOLVER_H_
