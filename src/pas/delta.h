#ifndef MODELHUB_PAS_DELTA_H_
#define MODELHUB_PAS_DELTA_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "tensor/float_matrix.h"

namespace modelhub {

/// Delta operators between parameter matrices (Sec. IV-B). Materialized
/// means "no base": the matrix is stored in its entirety. The adaptive
/// variants difference matrices of *different* shapes (the paper's
/// footnote 3, deferred to its long version): the overlapping top-left
/// region is differenced against the base, cells outside the overlap
/// carry the target's values verbatim. Fine-tuned models that re-target
/// their final layer produce exactly such pairs.
enum class DeltaKind : uint8_t {
  kMaterialized = 0,
  kSub = 1,  ///< Arithmetic subtraction: delta = target - base.
  kXor = 2,  ///< Bitwise XOR of IEEE-754 representations (bit-exact).
  kAdaptiveSub = 3,  ///< kSub on the overlap, target verbatim elsewhere.
  kAdaptiveXor = 4,  ///< kXor on the overlap, target verbatim elsewhere.
};

/// True for the shape-tolerant variants.
bool IsAdaptive(DeltaKind kind);

/// Maps kSub -> kAdaptiveSub, kXor -> kAdaptiveXor (identity otherwise).
DeltaKind ToAdaptive(DeltaKind kind);

std::string_view DeltaKindToString(DeltaKind kind);
Result<DeltaKind> DeltaKindFromString(std::string_view name);

/// delta such that ApplyDelta(base, delta) == target (exactly for kXor /
/// kAdaptiveXor, up to float rounding for the subtractive kinds).
/// kMaterialized returns `target` itself and ignores `base`. The exact
/// kinds require matching shapes; the adaptive kinds accept any base
/// shape, and the delta always has the target's shape.
Result<FloatMatrix> ComputeDelta(const FloatMatrix& target,
                                 const FloatMatrix& base, DeltaKind kind);

/// Row-range delta kernel: writes rows [row_begin, row_end) of the delta
/// into `out`, a row-major slab of (row_end - row_begin) * target.cols()
/// floats. `base == nullptr` means materialized (target stored verbatim).
/// Element-for-element identical to ComputeDelta — ComputeDelta is
/// implemented on top of this kernel, which is what lets the tiled
/// archival pipeline produce byte-identical planes for every tile size.
/// The caller must pre-validate shapes via ValidateDeltaShapes.
void ComputeDeltaRows(const FloatMatrix& target, const FloatMatrix* base,
                      DeltaKind kind, int64_t row_begin, int64_t row_end,
                      float* out);

/// Shape/kind validation for ComputeDeltaRows (and ComputeDelta): the
/// exact kinds need matching shapes; adaptive kinds accept any base.
Status ValidateDeltaShapes(const FloatMatrix& target, const FloatMatrix* base,
                           DeltaKind kind);

/// Inverse of ComputeDelta. For adaptive kinds the target shape is the
/// delta's shape.
Result<FloatMatrix> ApplyDelta(const FloatMatrix& base,
                               const FloatMatrix& delta, DeltaKind kind);

}  // namespace modelhub

#endif  // MODELHUB_PAS_DELTA_H_
