#include "pas/chunk_index.h"

#include <algorithm>
#include <cstring>

#include "common/checked_io.h"
#include "common/coding.h"
#include "common/macros.h"
#include "common/metrics.h"

namespace modelhub {

namespace {

constexpr char kIndexMagic[] = "MHCI1\n";
constexpr size_t kIndexMagicSize = 6;

inline uint64_t RotL64(uint64_t x, int8_t r) {
  return (x << r) | (x >> (64 - r));
}

inline uint64_t FMix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDull;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ull;
  k ^= k >> 33;
  return k;
}

inline uint64_t LoadLE64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);  // Little-endian hosts only (matches the codebase).
  return v;
}

}  // namespace

// MurmurHash3 x64/128 construction (Austin Appleby's public-domain
// algorithm): strong 128-bit mixing at memcpy-like speed, no dependency.
Hash128 ContentHash128(const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  const size_t nblocks = size / 16;
  uint64_t h1 = 0x9368E53C2F6AF274ull;  // Fixed seed: hashes are stable
  uint64_t h2 = 0x586DCD208F7CD3FDull;  // across processes and versions.
  const uint64_t c1 = 0x87C37B91114253D5ull;
  const uint64_t c2 = 0x4CF5AD432745937Full;

  for (size_t i = 0; i < nblocks; ++i) {
    uint64_t k1 = LoadLE64(bytes + i * 16);
    uint64_t k2 = LoadLE64(bytes + i * 16 + 8);
    k1 *= c1;
    k1 = RotL64(k1, 31);
    k1 *= c2;
    h1 ^= k1;
    h1 = RotL64(h1, 27);
    h1 += h2;
    h1 = h1 * 5 + 0x52DCE729;
    k2 *= c2;
    k2 = RotL64(k2, 33);
    k2 *= c1;
    h2 ^= k2;
    h2 = RotL64(h2, 31);
    h2 += h1;
    h2 = h2 * 5 + 0x38495AB5;
  }

  const uint8_t* tail = bytes + nblocks * 16;
  uint64_t k1 = 0;
  uint64_t k2 = 0;
  switch (size & 15) {
    case 15: k2 ^= static_cast<uint64_t>(tail[14]) << 48; [[fallthrough]];
    case 14: k2 ^= static_cast<uint64_t>(tail[13]) << 40; [[fallthrough]];
    case 13: k2 ^= static_cast<uint64_t>(tail[12]) << 32; [[fallthrough]];
    case 12: k2 ^= static_cast<uint64_t>(tail[11]) << 24; [[fallthrough]];
    case 11: k2 ^= static_cast<uint64_t>(tail[10]) << 16; [[fallthrough]];
    case 10: k2 ^= static_cast<uint64_t>(tail[9]) << 8; [[fallthrough]];
    case 9:
      k2 ^= static_cast<uint64_t>(tail[8]);
      k2 *= c2;
      k2 = RotL64(k2, 33);
      k2 *= c1;
      h2 ^= k2;
      [[fallthrough]];
    case 8: k1 ^= static_cast<uint64_t>(tail[7]) << 56; [[fallthrough]];
    case 7: k1 ^= static_cast<uint64_t>(tail[6]) << 48; [[fallthrough]];
    case 6: k1 ^= static_cast<uint64_t>(tail[5]) << 40; [[fallthrough]];
    case 5: k1 ^= static_cast<uint64_t>(tail[4]) << 32; [[fallthrough]];
    case 4: k1 ^= static_cast<uint64_t>(tail[3]) << 24; [[fallthrough]];
    case 3: k1 ^= static_cast<uint64_t>(tail[2]) << 16; [[fallthrough]];
    case 2: k1 ^= static_cast<uint64_t>(tail[1]) << 8; [[fallthrough]];
    case 1:
      k1 ^= static_cast<uint64_t>(tail[0]);
      k1 *= c1;
      k1 = RotL64(k1, 31);
      k1 *= c2;
      h1 ^= k1;
      break;
    case 0:
      break;
  }

  h1 ^= static_cast<uint64_t>(size);
  h2 ^= static_cast<uint64_t>(size);
  h1 += h2;
  h2 += h1;
  h1 = FMix64(h1);
  h2 = FMix64(h2);
  h1 += h2;
  h2 += h1;
  return Hash128{h1, h2};
}

Result<ChunkIndex> ChunkIndex::Load(Env* env, const std::string& dir) {
  MH_ASSIGN_OR_RETURN(const std::string payload,
                      ReadChecked(env, JoinPath(dir, kFileName)));
  if (payload.size() < kIndexMagicSize ||
      payload.compare(0, kIndexMagicSize, kIndexMagic) != 0) {
    return Status::Corruption("bad chunk index magic");
  }
  Slice in(payload);
  in.RemovePrefix(kIndexMagicSize);
  ChunkIndex index;
  MH_RETURN_IF_ERROR(GetVarint64(&in, &index.generation_));
  uint64_t count = 0;
  MH_RETURN_IF_ERROR(GetVarint64(&in, &count));
  index.entries_.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    ChunkIndexEntry entry;
    MH_RETURN_IF_ERROR(GetFixed64(&in, &entry.hash.hi));
    MH_RETURN_IF_ERROR(GetFixed64(&in, &entry.hash.lo));
    Slice file;
    MH_RETURN_IF_ERROR(GetLengthPrefixed(&in, &file));
    entry.file = file.ToString();
    uint64_t chunk_id = 0;
    MH_RETURN_IF_ERROR(GetVarint64(&in, &chunk_id));
    if (chunk_id > UINT32_MAX) {
      return Status::Corruption("chunk index id out of range");
    }
    entry.chunk_id = static_cast<uint32_t>(chunk_id);
    MH_RETURN_IF_ERROR(GetVarint64(&in, &entry.refcount));
    MH_RETURN_IF_ERROR(GetVarint64(&in, &entry.stored_size));
    if (!index.entries_.emplace(entry.hash, entry).second) {
      return Status::Corruption("chunk index duplicate hash");
    }
  }
  if (!in.empty()) return Status::Corruption("chunk index trailing bytes");
  return index;
}

Status ChunkIndex::Save(Env* env, const std::string& dir) const {
  std::string payload;
  payload.append(kIndexMagic, kIndexMagicSize);
  PutVarint64(&payload, generation_);
  PutVarint64(&payload, entries_.size());
  for (const ChunkIndexEntry& entry : SortedEntries()) {
    PutFixed64(&payload, entry.hash.hi);
    PutFixed64(&payload, entry.hash.lo);
    PutLengthPrefixed(&payload, Slice(entry.file));
    PutVarint64(&payload, entry.chunk_id);
    PutVarint64(&payload, entry.refcount);
    PutVarint64(&payload, entry.stored_size);
  }
  MH_GAUGE("pas.dedup.index.entries")
      ->Set(static_cast<int64_t>(entries_.size()));
  return WriteChecked(env, JoinPath(dir, kFileName), payload);
}

void ChunkIndex::AddRef(const Hash128& hash, const std::string& file,
                        uint32_t chunk_id, uint64_t stored_size,
                        uint64_t refs) {
  auto it = entries_.find(hash);
  if (it == entries_.end()) {
    ChunkIndexEntry entry;
    entry.hash = hash;
    entry.file = file;
    entry.chunk_id = chunk_id;
    entry.stored_size = stored_size;
    entry.refcount = refs;
    entries_.emplace(hash, std::move(entry));
    return;
  }
  it->second.refcount += refs;
}

const ChunkIndexEntry* ChunkIndex::Find(const Hash128& hash) const {
  auto it = entries_.find(hash);
  return it == entries_.end() ? nullptr : &it->second;
}

uint64_t ChunkIndex::PruneFiles(
    const std::function<bool(const std::string&)>& keep) {
  uint64_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (keep(it->second.file)) {
      ++it;
    } else {
      it = entries_.erase(it);
      ++removed;
    }
  }
  return removed;
}

std::vector<ChunkIndexEntry> ChunkIndex::SortedEntries() const {
  std::vector<ChunkIndexEntry> out;
  out.reserve(entries_.size());
  for (const auto& [hash, entry] : entries_) out.push_back(entry);
  std::sort(out.begin(), out.end(),
            [](const ChunkIndexEntry& a, const ChunkIndexEntry& b) {
              return a.hash < b.hash;
            });
  return out;
}

uint64_t ChunkIndex::TotalRefs() const {
  uint64_t total = 0;
  for (const auto& [hash, entry] : entries_) total += entry.refcount;
  return total;
}

}  // namespace modelhub
