#ifndef MODELHUB_PAS_PROGRESSIVE_H_
#define MODELHUB_PAS_PROGRESSIVE_H_

#include <array>
#include <string>
#include <vector>

#include "common/result.h"
#include "nn/network_def.h"
#include "pas/archive.h"
#include "pas/segment.h"
#include "tensor/tensor.h"

namespace modelhub {

/// Progressive evaluation knobs.
struct ProgressiveOptions {
  /// A sample is resolved once its top-k classes are determined (Lemma 4 /
  /// its top-k generalization). The paper evaluates k = 1 and k = 5.
  int top_k = 1;
  /// How many high-order byte planes the first round retrieves.
  int initial_planes = 1;
};

/// Outcome of one progressive batch evaluation.
struct ProgressiveResult {
  /// Predicted label per sample (argmax; exact once resolved).
  std::vector<int> labels;
  /// Byte planes that were needed to resolve each sample.
  std::vector<int> planes_needed;
  /// Histogram: resolved_at[p] = samples resolved with exactly p planes
  /// (index 1..4).
  std::array<int, kNumPlanes + 1> resolved_at = {0, 0, 0, 0, 0};
  /// Compressed bytes fetched across all escalation rounds (incremental:
  /// already-fetched planes are cached).
  uint64_t bytes_read = 0;
  /// Compressed bytes a non-progressive exact retrieval would fetch.
  uint64_t full_bytes = 0;
};

/// The dlv-eval query engine over a PAS archive (Sec. IV-D): evaluates a
/// snapshot on a batch using high-order weight bytes only, escalating to
/// less-significant planes solely for samples whose prediction is not yet
/// determined. Guarantees the returned labels equal full-precision
/// evaluation labels.
class ProgressiveQueryEvaluator {
 public:
  /// `reader` must outlive the evaluator; the chunk cache is enabled on it.
  ProgressiveQueryEvaluator(ArchiveReader* reader, NetworkDef def)
      : reader_(reader), def_(std::move(def)) {
    reader_->EnableChunkCache(true);
  }

  /// Evaluates `snapshot` on `input` progressively.
  Result<ProgressiveResult> Evaluate(const std::string& snapshot,
                                     const Tensor& input,
                                     const ProgressiveOptions& options) const;

 private:
  ArchiveReader* reader_;
  NetworkDef def_;
};

}  // namespace modelhub

#endif  // MODELHUB_PAS_PROGRESSIVE_H_
