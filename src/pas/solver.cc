#include "pas/solver.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"

namespace modelhub {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-solve instrumentation: `pas.solver.solve.count/us` plus a span
/// named after the solver, annotated with nodes expanded and edges
/// considered by the search.
class SolverScope {
 public:
  explicit SolverScope(const char* name) : span_(name) {
    MH_COUNTER("pas.solver.solve.count")->Increment();
  }

  ~SolverScope() {
    MH_COUNTER("pas.solver.nodes.expanded")->Add(nodes_expanded);
    MH_COUNTER("pas.solver.edges.considered")->Add(edges_considered);
    MH_HISTOGRAM("pas.solver.solve.us")
        ->Record(static_cast<uint64_t>(watch_.ElapsedMillis() * 1000.0));
    if (span_.recording()) {
      span_.Annotate("nodes_expanded", nodes_expanded);
      span_.Annotate("edges_considered", edges_considered);
    }
  }

  uint64_t nodes_expanded = 0;
  uint64_t edges_considered = 0;

 private:
  TraceSpan span_;
  Stopwatch watch_;
};

/// Prim / Dijkstra unified: grows a tree from v0 minimizing either the
/// connecting edge weight (MST) or the root path length (SPT).
Result<StoragePlan> GrowTree(const MatrixStorageGraph& graph, bool shortest_path) {
  if (!graph.IsConnected()) {
    return Status::InvalidArgument("storage graph is not connected");
  }
  SolverScope scope(shortest_path ? "pas.solver.spt" : "pas.solver.mst");
  const int n = graph.num_vertices();
  std::vector<double> key(static_cast<size_t>(n), kInf);
  std::vector<int> parent_edge(static_cast<size_t>(n), -1);
  std::vector<bool> done(static_cast<size_t>(n), false);
  key[0] = 0.0;
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  heap.push({0.0, 0});
  while (!heap.empty()) {
    const auto [k, v] = heap.top();
    heap.pop();
    if (done[static_cast<size_t>(v)]) continue;
    done[static_cast<size_t>(v)] = true;
    ++scope.nodes_expanded;
    for (int eid : graph.IncidentEdges(v)) {
      ++scope.edges_considered;
      const StorageEdge& e = graph.edge(eid);
      const int other = e.u == v ? e.v : e.u;
      if (done[static_cast<size_t>(other)]) continue;
      const double weight = shortest_path
                                ? key[static_cast<size_t>(v)] + e.recreation_cost
                                : e.storage_cost;
      if (weight < key[static_cast<size_t>(other)]) {
        key[static_cast<size_t>(other)] = weight;
        parent_edge[static_cast<size_t>(other)] = eid;
        heap.push({weight, other});
      }
    }
  }
  return StoragePlan::FromParentEdges(&graph, std::move(parent_edge));
}

/// Euler-tour intervals for O(1) is-descendant checks on the current tree.
struct TourIndex {
  std::vector<int> tin;
  std::vector<int> tout;

  explicit TourIndex(const StoragePlan& plan) {
    const int n = plan.graph().num_vertices();
    tin.assign(static_cast<size_t>(n), 0);
    tout.assign(static_cast<size_t>(n), 0);
    std::vector<std::vector<int>> children(static_cast<size_t>(n));
    for (int v = 1; v < n; ++v) {
      children[static_cast<size_t>(plan.Parent(v))].push_back(v);
    }
    int clock = 0;
    // Iterative DFS with explicit post-visit records.
    std::vector<std::pair<int, bool>> stack = {{0, false}};
    while (!stack.empty()) {
      auto [v, post] = stack.back();
      stack.pop_back();
      if (post) {
        tout[static_cast<size_t>(v)] = clock++;
        continue;
      }
      tin[static_cast<size_t>(v)] = clock++;
      stack.push_back({v, true});
      for (int c : children[static_cast<size_t>(v)]) {
        stack.push_back({c, false});
      }
    }
  }

  bool IsDescendant(int candidate, int ancestor) const {
    return tin[static_cast<size_t>(candidate)] >=
               tin[static_cast<size_t>(ancestor)] &&
           tout[static_cast<size_t>(candidate)] <=
               tout[static_cast<size_t>(ancestor)];
  }
};

}  // namespace

Result<StoragePlan> SolveMst(const MatrixStorageGraph& graph) {
  return GrowTree(graph, /*shortest_path=*/false);
}

Result<StoragePlan> SolveSpt(const MatrixStorageGraph& graph) {
  return GrowTree(graph, /*shortest_path=*/true);
}

Result<StoragePlan> SolveLast(const MatrixStorageGraph& graph, double alpha) {
  if (alpha < 1.0) {
    return Status::InvalidArgument("LAST requires alpha >= 1");
  }
  MH_ASSIGN_OR_RETURN(StoragePlan mst, SolveMst(graph));
  MH_ASSIGN_OR_RETURN(StoragePlan spt, SolveSpt(graph));
  SolverScope scope("pas.solver.last");
  const int n = graph.num_vertices();

  // DFS over the MST; dist[] tracks root-path recreation cost in the tree
  // under construction (MST edges with some parents relaxed to SPT edges).
  std::vector<int> parent_edge(static_cast<size_t>(n), -1);
  std::vector<std::vector<int>> children(static_cast<size_t>(n));
  for (int v = 1; v < n; ++v) {
    parent_edge[static_cast<size_t>(v)] = mst.ParentEdge(v);
    children[static_cast<size_t>(mst.Parent(v))].push_back(v);
  }
  std::vector<double> dist(static_cast<size_t>(n), 0.0);
  std::vector<int> stack = {0};
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    if (v != 0) {
      const int eid = parent_edge[static_cast<size_t>(v)];
      const StorageEdge& e = graph.edge(eid);
      const int p = e.u == v ? e.v : e.u;
      dist[static_cast<size_t>(v)] =
          dist[static_cast<size_t>(p)] + e.recreation_cost;
      const double d_min = spt.PathRecreationCost(v);
      if (dist[static_cast<size_t>(v)] > alpha * d_min) {
        // Relax: adopt the shortest-path parent.
        parent_edge[static_cast<size_t>(v)] = spt.ParentEdge(v);
        dist[static_cast<size_t>(v)] = d_min;
      }
    }
    for (int c : children[static_cast<size_t>(v)]) stack.push_back(c);
  }
  // Note: relaxing to SPT parents cannot create cycles because SPT root
  // paths only pass through vertices with strictly smaller SPT distance.
  return StoragePlan::FromParentEdges(&graph, std::move(parent_edge));
}

Status RefineForBudgets(StoragePlan* plan, RetrievalScheme scheme) {
  const MatrixStorageGraph& graph = plan->graph();
  const int max_iterations = static_cast<int>(graph.edges().size()) + 16;

  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    MH_COUNTER("pas.solver.refine.iterations")->Increment();
    // Collect violated groups.
    std::vector<const CoUsageGroup*> violated;
    for (const CoUsageGroup& group : graph.groups()) {
      if (group.budget > 0.0 &&
          plan->GroupRecreationCost(group, scheme) >
              group.budget * (1 + 1e-9)) {
        violated.push_back(&group);
      }
    }
    if (violated.empty()) return Status::OK();

    const TourIndex tour(*plan);
    double best_gain = 0.0;
    double best_numerator = 0.0;
    int best_vertex = -1;
    int best_edge = -1;

    for (const StorageEdge& e : graph.edges()) {
      // Each undirected edge yields two candidate re-parentings.
      for (int orientation = 0; orientation < 2; ++orientation) {
        const int vi = orientation == 0 ? e.v : e.u;
        const int vs = orientation == 0 ? e.u : e.v;
        if (vi == 0) continue;
        if (plan->ParentEdge(vi) == e.id) continue;
        if (tour.IsDescendant(vs, vi)) continue;  // Would create a cycle.
        // Per-vertex recreation decrease for vi and all its descendants.
        const double delta = plan->PathRecreationCost(vi) -
                             plan->PathRecreationCost(vs) -
                             e.recreation_cost;
        if (delta <= 0.0) continue;
        double numerator = 0.0;
        for (const CoUsageGroup* group : violated) {
          int members_in_subtree = 0;
          for (int m : group->members) {
            if (tour.IsDescendant(m, vi)) ++members_in_subtree;
          }
          if (members_in_subtree == 0) continue;
          if (scheme == RetrievalScheme::kIndependent) {
            numerator += static_cast<double>(members_in_subtree) * delta;
          } else {
            numerator += delta;  // Eq. 2: max-based change per group.
          }
        }
        if (numerator <= 0.0) continue;
        const double storage_increase =
            e.storage_cost -
            graph.edge(plan->ParentEdge(vi)).storage_cost;
        const double gain =
            storage_increase <= 0.0 ? kInf : numerator / storage_increase;
        if (gain > best_gain ||
            (gain == best_gain && numerator > best_numerator)) {
          best_gain = gain;
          best_numerator = numerator;
          best_vertex = vi;
          best_edge = e.id;
        }
      }
    }
    if (best_vertex < 0) {
      return Status::FailedPrecondition(
          "refinement stuck: no swap improves the violated budgets");
    }
    MH_RETURN_IF_ERROR(plan->Swap(best_vertex, best_edge));
    MH_COUNTER("pas.solver.refine.swaps")->Increment();
  }
  return Status::FailedPrecondition("refinement did not converge");
}

Result<StoragePlan> SolvePasMt(const MatrixStorageGraph& graph,
                               RetrievalScheme scheme) {
  MH_ASSIGN_OR_RETURN(StoragePlan plan, SolveMst(graph));
  // Best-effort: a stuck refinement still returns the improved plan; the
  // caller checks SatisfiesBudgets.
  (void)RefineForBudgets(&plan, scheme);
  return plan;
}

Result<StoragePlan> SolvePasPt(const MatrixStorageGraph& graph,
                               RetrievalScheme scheme) {
  if (!graph.IsConnected()) {
    return Status::InvalidArgument("storage graph is not connected");
  }
  SolverScope scope("pas.solver.pas-pt");
  const int n = graph.num_vertices();

  // Lower bound on any vertex's recreation cost: its cheapest-recreation
  // incident edge (at best, one hop from an already-recreated neighbor).
  std::vector<double> lower_bound(static_cast<size_t>(n), 0.0);
  for (int v = 1; v < n; ++v) {
    double lb = kInf;
    for (int eid : graph.IncidentEdges(v)) {
      lb = std::min(lb, graph.edge(eid).recreation_cost);
    }
    lower_bound[static_cast<size_t>(v)] = lb;
  }

  std::vector<bool> in_tree(static_cast<size_t>(n), false);
  std::vector<int> parent_edge(static_cast<size_t>(n), -1);
  std::vector<double> path_cost(static_cast<size_t>(n), 0.0);
  in_tree[0] = true;

  // Group bookkeeping for feasibility estimates.
  const auto& groups = graph.groups();
  std::vector<std::vector<int>> groups_of_vertex(static_cast<size_t>(n));
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    for (int m : groups[gi].members) {
      groups_of_vertex[static_cast<size_t>(m)].push_back(
          static_cast<int>(gi));
    }
  }

  auto estimate_ok = [&](int vj, double vj_cost) {
    for (int gi : groups_of_vertex[static_cast<size_t>(vj)]) {
      const CoUsageGroup& group = groups[static_cast<size_t>(gi)];
      if (group.budget <= 0.0) continue;
      double estimate = 0.0;
      for (int m : group.members) {
        double member_cost;
        if (m == vj) {
          member_cost = vj_cost;
        } else if (in_tree[static_cast<size_t>(m)]) {
          member_cost = path_cost[static_cast<size_t>(m)];
        } else {
          member_cost = lower_bound[static_cast<size_t>(m)];
        }
        if (scheme == RetrievalScheme::kIndependent) {
          estimate += member_cost;
        } else {
          estimate = std::max(estimate, member_cost);
        }
      }
      if (estimate > group.budget * (1 + 1e-9)) return false;
    }
    return true;
  };

  // Min-heap of candidate edges by storage cost.
  auto cmp = [&graph](int a, int b) {
    if (graph.edge(a).storage_cost != graph.edge(b).storage_cost) {
      return graph.edge(a).storage_cost > graph.edge(b).storage_cost;
    }
    return a > b;
  };
  std::priority_queue<int, std::vector<int>, decltype(cmp)> heap(cmp);
  for (int eid : graph.IncidentEdges(0)) heap.push(eid);

  int added = 1;
  while (!heap.empty() && added < n) {
    const int eid = heap.top();
    heap.pop();
    ++scope.edges_considered;
    const StorageEdge& e = graph.edge(eid);
    const bool u_in = in_tree[static_cast<size_t>(e.u)];
    const bool v_in = in_tree[static_cast<size_t>(e.v)];
    if (u_in && v_in) {
      // Inner edge: adopt it if it lowers some endpoint's storage without
      // raising its recreation cost (the paper's improvement step).
      for (int orientation = 0; orientation < 2; ++orientation) {
        const int vk = orientation == 0 ? e.u : e.v;
        const int vj = orientation == 0 ? e.v : e.u;
        if (vk == 0) continue;
        const double old_cs =
            graph.edge(parent_edge[static_cast<size_t>(vk)]).storage_cost;
        const double new_cost =
            path_cost[static_cast<size_t>(vj)] + e.recreation_cost;
        if (e.storage_cost < old_cs &&
            new_cost <= path_cost[static_cast<size_t>(vk)]) {
          // Cycle guard: vj must not descend from vk.
          bool descends = false;
          int cur = vj;
          while (cur != 0) {
            if (cur == vk) {
              descends = true;
              break;
            }
            const StorageEdge& pe =
                graph.edge(parent_edge[static_cast<size_t>(cur)]);
            cur = pe.u == cur ? pe.v : pe.u;
          }
          if (descends) continue;
          parent_edge[static_cast<size_t>(vk)] = eid;
          path_cost[static_cast<size_t>(vk)] = new_cost;
          break;
        }
      }
      continue;
    }
    if (!u_in && !v_in) continue;  // Stale; re-enqueued when reachable.
    const int vi = u_in ? e.u : e.v;
    const int vj = u_in ? e.v : e.u;
    const double vj_cost =
        path_cost[static_cast<size_t>(vi)] + e.recreation_cost;
    if (!estimate_ok(vj, vj_cost)) continue;  // Skip this edge.
    in_tree[static_cast<size_t>(vj)] = true;
    parent_edge[static_cast<size_t>(vj)] = eid;
    path_cost[static_cast<size_t>(vj)] = vj_cost;
    ++added;
    ++scope.nodes_expanded;
    for (int out_eid : graph.IncidentEdges(vj)) {
      if (out_eid != eid) heap.push(out_eid);
    }
  }

  // Adjustment phase: attach stranded vertices by their cheapest-recreation
  // edge into the tree (greedy, repeated until all attached).
  while (added < n) {
    int best_vertex = -1;
    int best_edge = -1;
    double best_cr = kInf;
    for (int v = 1; v < n; ++v) {
      if (in_tree[static_cast<size_t>(v)]) continue;
      for (int eid : graph.IncidentEdges(v)) {
        const StorageEdge& e = graph.edge(eid);
        const int other = e.u == v ? e.v : e.u;
        if (!in_tree[static_cast<size_t>(other)]) continue;
        const double cost =
            path_cost[static_cast<size_t>(other)] + e.recreation_cost;
        if (cost < best_cr) {
          best_cr = cost;
          best_vertex = v;
          best_edge = eid;
        }
      }
    }
    if (best_vertex < 0) {
      return Status::Internal("connected graph left stranded vertices");
    }
    in_tree[static_cast<size_t>(best_vertex)] = true;
    parent_edge[static_cast<size_t>(best_vertex)] = best_edge;
    path_cost[static_cast<size_t>(best_vertex)] = best_cr;
    ++added;
  }

  MH_ASSIGN_OR_RETURN(StoragePlan plan, StoragePlan::FromParentEdges(
                                            &graph, std::move(parent_edge)));
  if (!plan.SatisfiesBudgets(scheme)) {
    (void)RefineForBudgets(&plan, scheme);  // Best effort.
  }
  return plan;
}

}  // namespace modelhub
