#ifndef MODELHUB_PAS_CHUNK_INDEX_H_
#define MODELHUB_PAS_CHUNK_INDEX_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/env.h"
#include "common/result.h"
#include "common/slice.h"

namespace modelhub {

/// A 128-bit content hash of one stored (compressed) chunk payload. Two
/// chunks with equal hashes are treated as identical content; the intra-
/// build dedup path additionally byte-compares before sharing, so a
/// collision inside one build is impossible, and cross-generation reuse
/// rides on the 128-bit space (collision odds are negligible next to disk
/// corruption rates, and every chunk still carries its own CRC).
struct Hash128 {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const Hash128& other) const {
    return hi == other.hi && lo == other.lo;
  }
  bool operator!=(const Hash128& other) const { return !(*this == other); }
  bool operator<(const Hash128& other) const {
    return hi != other.hi ? hi < other.hi : lo < other.lo;
  }
};

struct Hash128Hasher {
  size_t operator()(const Hash128& h) const {
    return static_cast<size_t>(h.hi ^ (h.lo * 0x9E3779B97F4A7C15ull));
  }
};

/// 128-bit content hash of `data` (MurmurHash3 x64/128 construction).
Hash128 ContentHash128(const void* data, size_t size);
inline Hash128 ContentHash128(Slice data) {
  return ContentHash128(data.data(), data.size());
}

/// One content-addressed chunk the committed archive generation references:
/// where the canonical copy lives and how many manifest plane references
/// point at it. refcount == 0 never appears in a freshly written index;
/// GC uses the absence of an entry's file from the manifest's file list to
/// recognize reclaimable storage.
struct ChunkIndexEntry {
  Hash128 hash;
  std::string file;       ///< Data file name, relative to the archive dir.
  uint32_t chunk_id = 0;  ///< Chunk id inside `file`.
  uint64_t refcount = 0;  ///< Plane references from the committed manifest.
  uint64_t stored_size = 0;  ///< Compressed payload bytes of the chunk.
};

/// The hub-wide content-addressed chunk index of one archive directory
/// (`chunk_index.bin`): hash -> (file, chunk id, refcount) for every chunk
/// the committed manifest references. The index is **derived state**: the
/// CRC-framed manifest stays the single commit point, and the index is
/// rewritten (best effort) after each commit. A torn, stale or missing
/// index is rebuilt from the manifest + chunk stores (RebuildChunkIndex in
/// pas/archive.h) — `dlv fsck` does this as a repair. Retrieval never
/// consults the index; only the builder (cross-generation dedup), GC
/// (refcount-0 reclamation) and reporting do.
class ChunkIndex {
 public:
  static constexpr char kFileName[] = "chunk_index.bin";

  /// Reads `<dir>/chunk_index.bin`. Corruption (torn write, bad CRC) and
  /// absence both surface as errors — callers fall back to
  /// RebuildChunkIndex or an empty index.
  static Result<ChunkIndex> Load(Env* env, const std::string& dir);

  /// Atomically writes `<dir>/chunk_index.bin` (CRC-framed, tmp + rename
  /// via Env::WriteFile).
  Status Save(Env* env, const std::string& dir) const;

  /// Adds `refs` references to the entry for `hash`, creating it with the
  /// given location on first sight. An existing entry keeps its original
  /// location (first writer wins — that is the canonical copy).
  void AddRef(const Hash128& hash, const std::string& file, uint32_t chunk_id,
              uint64_t stored_size, uint64_t refs = 1);

  /// Entry for `hash`, or nullptr.
  const ChunkIndexEntry* Find(const Hash128& hash) const;

  /// Drops every entry whose file `keep` rejects; returns how many were
  /// removed (the GC's refcount-0 purge).
  uint64_t PruneFiles(const std::function<bool(const std::string&)>& keep);

  /// Entries in deterministic (hash) order — serialization and tests.
  std::vector<ChunkIndexEntry> SortedEntries() const;

  size_t size() const { return entries_.size(); }
  uint64_t generation() const { return generation_; }
  void set_generation(uint64_t gen) { generation_ = gen; }

  /// Sum of refcounts across all entries (plane references).
  uint64_t TotalRefs() const;

 private:
  uint64_t generation_ = 0;
  std::unordered_map<Hash128, ChunkIndexEntry, Hash128Hasher> entries_;
};

}  // namespace modelhub

#endif  // MODELHUB_PAS_CHUNK_INDEX_H_
