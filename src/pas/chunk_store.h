#ifndef MODELHUB_PAS_CHUNK_STORE_H_
#define MODELHUB_PAS_CHUNK_STORE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/env.h"
#include "common/result.h"
#include "compress/codec.h"

namespace modelhub {

/// Location and integrity metadata of one stored chunk.
struct ChunkRef {
  uint64_t offset = 0;       ///< Byte offset of the payload in the file.
  uint64_t stored_size = 0;  ///< Compressed payload size.
  uint64_t raw_size = 0;     ///< Decompressed size.
  uint32_t crc = 0;          ///< CRC-32 of the compressed payload.
  CodecType codec = CodecType::kNull;
};

/// Read-side counters of one chunk store (monotonic except cache_bytes).
/// `bytes_read`/`chunk_fetches` count only real disk fetches; cache hits
/// are free once a chunk is in memory.
struct ChunkStoreStats {
  uint64_t bytes_read = 0;      ///< Compressed bytes fetched from disk.
  uint64_t chunk_fetches = 0;   ///< Get calls that went to disk.
  uint64_t cache_hits = 0;      ///< Get calls served from the cache.
  uint64_t cache_evictions = 0; ///< Chunks evicted to honor the bound.
  uint64_t cache_bytes = 0;     ///< Decompressed bytes currently cached.
};

/// Write-once chunk file builder. PAS archives are built in one pass and
/// then read many times, so the store is append-only with a trailing
/// index (the LevelDB/RocksDB table layout, reduced to whole chunks):
///
///   "MHCS1\n" | payload_0 | ... | payload_{n-1} | index | fixed64
///   index_offset | fixed64 chunk_count | "MHCSEND1"
class ChunkStoreWriter {
 public:
  ChunkStoreWriter(Env* env, std::string path);

  /// Compresses `raw` with `codec` and schedules it; returns the chunk id.
  Result<uint32_t> Put(Slice raw, CodecType codec);

  /// Appends an already-compressed chunk. `compressed` must be exactly what
  /// `Codec::Get(codec)->Compress` produces for a `raw_size`-byte payload:
  /// the resulting file is byte-identical to Put(raw, codec). This is the
  /// committer half of the parallel archival pipeline — workers compress
  /// off-thread, ordered appends stay on one thread.
  Result<uint32_t> PutCompressed(Slice compressed, uint64_t raw_size,
                                 CodecType codec);

  /// Number of chunks scheduled so far.
  uint32_t num_chunks() const { return static_cast<uint32_t>(refs_.size()); }

  /// Compressed size of a scheduled chunk (for cost models).
  uint64_t StoredSize(uint32_t id) const { return refs_[id].stored_size; }

  /// Compressed payload bytes of a scheduled chunk, viewing the in-memory
  /// file image. Valid until the next Put/PutCompressed (the buffer may
  /// reallocate). The dedup committer byte-compares hash-equal chunks
  /// through this before sharing, so a 128-bit collision can never alias
  /// two different payloads within one build.
  Slice payload(uint32_t id) const {
    const ChunkRef& ref = refs_[id];
    return Slice(data_.data() + ref.offset,
                 static_cast<size_t>(ref.stored_size));
  }

  /// Writes the file. No Put may follow.
  Status Finish();

 private:
  Env* env_;
  std::string path_;
  std::string data_;
  std::vector<ChunkRef> refs_;
  bool finished_ = false;
};

/// Reader over a finished chunk file. Reads are ranged, so fetching only
/// high-order plane chunks touches only their bytes (the premise of
/// progressive queries).
class ChunkStoreReader {
 public:
  /// Default byte bound of the decompressed-chunk cache. Keeps a working
  /// set of hot delta-chain prefixes resident without letting a whole
  /// archive's planes pin RAM (ProgressiveQueryEvaluator force-enables
  /// the cache for every evaluated snapshot).
  static constexpr uint64_t kDefaultCacheCapacity = 64ull << 20;  // 64 MiB

  /// A single chunk may occupy at most 1/kCacheAdmitFraction of the cache
  /// bound. Admitting anything up to the full bound lets one large plane
  /// evict the entire resident working set for a payload that is often
  /// read exactly once.
  static constexpr uint64_t kCacheAdmitFraction = 8;

  /// Opens the chunk file and, when the Env supports it (PosixEnv), maps
  /// it read-only so Get/Verify checksum and decompress straight out of
  /// the page cache. Envs without MapFile (MemEnv, FaultInjectionEnv)
  /// fall back to ranged read() fetches — the crash-injection sweeps
  /// exercise that path by construction. Chunk files are write-once
  /// (tmp + rename), so an open mapping never observes a rewrite.
  static Result<ChunkStoreReader> Open(Env* env, const std::string& path);

  uint32_t num_chunks() const { return static_cast<uint32_t>(refs_.size()); }
  const ChunkRef& ref(uint32_t id) const { return refs_[id]; }

  /// Fetches, verifies (CRC) and decompresses chunk `id`. With an active
  /// mapping the payload is checksummed and decompressed zero-copy from
  /// the mapped file; a CRC mismatch there (or any Env without mmap)
  /// falls back to ranged reads, where a checksum mismatch or short read
  /// is retried once (transient read faults) and a second failure is
  /// reported as Corruption. Thread-safe; counters and cache are
  /// mutex-guarded.
  Result<std::string> Get(uint32_t id) const;

  /// Integrity check of chunk `id` without decompression: re-reads the
  /// payload and verifies its CRC. Used by `dlv fsck`.
  Status Verify(uint32_t id) const;

  /// Fetches and CRC-verifies the *compressed* payload of chunk `id`
  /// without decompressing it — the content-hash input for chunk-index
  /// rebuilds (RebuildChunkIndex hashes stored bytes, not raw floats).
  Result<std::string> GetCompressed(uint32_t id) const;

  const std::string& path() const { return path_; }

  /// Total compressed bytes fetched by Get since construction/reset.
  /// Cache hits do not count: once fetched, a chunk is in memory.
  uint64_t bytes_read() const {
    return stats_->bytes_read.load(std::memory_order_relaxed);
  }
  void ResetByteCounter() {
    stats_->bytes_read.store(0, std::memory_order_relaxed);
    stats_->chunk_fetches.store(0, std::memory_order_relaxed);
  }

  /// Snapshot of the read-side counters. Lock-free: counters are relaxed
  /// atomics, so worker threads in RetrieveSnapshotsParallel update and
  /// read them without touching the cache mutex. Each field is exact;
  /// cross-field consistency is quiescent (stable once workers drain).
  ChunkStoreStats stats() const {
    ChunkStoreStats out;
    out.bytes_read = stats_->bytes_read.load(std::memory_order_relaxed);
    out.chunk_fetches = stats_->chunk_fetches.load(std::memory_order_relaxed);
    out.cache_hits = stats_->cache_hits.load(std::memory_order_relaxed);
    out.cache_evictions =
        stats_->cache_evictions.load(std::memory_order_relaxed);
    out.cache_bytes = stats_->cache_bytes.load(std::memory_order_relaxed);
    return out;
  }

  /// Enables the in-memory decompressed-chunk cache (LRU, byte-bounded by
  /// SetCacheCapacity). Progressive query evaluation uses this so
  /// escalating from k to k+1 planes fetches only the new plane chunks
  /// (Sec. IV-D's "progressively uncompress" behavior). Disabling drops
  /// all cached chunks.
  void EnableCache(bool enable);

  /// Sets the cache bound in decompressed bytes and evicts down to it.
  /// Chunks larger than bound / kCacheAdmitFraction are never cached.
  void SetCacheCapacity(uint64_t bytes);

 private:
  struct CacheEntry {
    std::string data;
    std::list<uint32_t>::iterator lru_it;
  };

  /// Evicts least-recently-used entries until the bound holds. Caller
  /// must hold *mutex_.
  void EvictToCapacityLocked() const;

  /// Atomic mirror of ChunkStoreStats. Held via pointer (atomics are not
  /// movable) so the reader stays movable, like mutex_ below.
  struct AtomicStats {
    std::atomic<uint64_t> bytes_read{0};
    std::atomic<uint64_t> chunk_fetches{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> cache_evictions{0};
    std::atomic<uint64_t> cache_bytes{0};
  };

  Env* env_ = nullptr;
  std::string path_;
  std::vector<ChunkRef> refs_;
  /// Read-only mapping of the whole chunk file, when the Env supports it.
  /// shared_ptr keeps the reader movable/copy-cheap and the mapping alive
  /// for as long as any reader clone references it.
  std::shared_ptr<const FileMapping> mapping_;
  // Owned via pointer so the reader stays movable.
  std::unique_ptr<std::mutex> mutex_ = std::make_unique<std::mutex>();
  std::unique_ptr<AtomicStats> stats_ = std::make_unique<AtomicStats>();
  bool cache_enabled_ = false;
  uint64_t cache_capacity_ = kDefaultCacheCapacity;
  /// Front = most recently used. Guarded by *mutex_.
  mutable std::list<uint32_t> lru_;
  mutable std::unordered_map<uint32_t, CacheEntry> cache_;
};

}  // namespace modelhub

#endif  // MODELHUB_PAS_CHUNK_STORE_H_
