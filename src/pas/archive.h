#ifndef MODELHUB_PAS_ARCHIVE_H_
#define MODELHUB_PAS_ARCHIVE_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/env.h"
#include "common/thread_pool.h"
#include "common/result.h"
#include "nn/network.h"
#include "pas/chunk_index.h"
#include "pas/chunk_store.h"
#include "pas/delta.h"
#include "pas/generation_pins.h"
#include "pas/float_encoding.h"
#include "pas/parallel_archiver.h"
#include "pas/segment.h"
#include "pas/solver.h"
#include "pas/storage_graph.h"
#include "tensor/interval.h"

namespace modelhub {

/// Which Problem-1 solver lays out the archive.
enum class ArchiveSolver { kMst, kSpt, kLast, kPasMt, kPasPt };

std::string_view ArchiveSolverToString(ArchiveSolver solver);

/// Archive construction knobs.
struct ArchiveOptions {
  ArchiveSolver solver = ArchiveSolver::kPasPt;
  RetrievalScheme scheme = RetrievalScheme::kIndependent;
  /// Per-snapshot recreation budget = budget_alpha x that snapshot's SPT
  /// recreation cost. <= 0 disables budgets (pure storage minimization).
  double budget_alpha = 0.0;
  /// LAST's path-stretch bound (used only by ArchiveSolver::kLast).
  double last_alpha = 2.0;
  CodecType codec = CodecType::kDeflateLite;
  DeltaKind delta_kind = DeltaKind::kSub;
  /// Float representation the archive stores (Sec. IV-B: lossyness traded
  /// for footprint per snapshot instead of deleting snapshots). Non-
  /// float32 schemes round every matrix through the scheme before
  /// archiving; retrieval returns the (lossy) decoded values.
  FloatScheme storage_scheme = {FloatSchemeKind::kFloat32, 32};
  /// Seed for kQuantRandom storage schemes.
  uint64_t scheme_seed = 1;
  /// Recreation cost model: cr(edge) = stored_bytes + weight * raw_bytes
  /// (read + decompress-and-apply).
  double recreation_raw_weight = 0.25;
  /// Tiered storage (Sec. IV-C: "one edge corresponding to a remote
  /// storage option, where the storage cost is lower and the recreation
  /// cost is higher"). When enabled, every candidate edge gets a remote
  /// twin with discounted storage cost and penalized recreation cost; the
  /// solver picks per matrix, so cold checkpoints drift remote while
  /// budget-constrained snapshots stay local. Remote payloads are written
  /// to a separate chunk file (remote.bin) standing in for the remote
  /// store.
  bool enable_remote_tier = false;
  double remote_storage_discount = 0.5;
  double remote_read_penalty = 4.0;
  /// Encode workers for the archival write pipeline. >= 1 is literal
  /// (1 = the serial reference path), anything else means auto
  /// (ResolveArchiveThreads). The archive bytes are identical for every
  /// value — parallelism only changes wall time.
  int archive_threads = 0;
  /// Rows per delta+segment tile in the write pipeline. >= 1 is literal,
  /// anything else means auto (ResolveTileRows: ~64 KiB of floats per
  /// tile). Like archive_threads, the archive bytes are identical for
  /// every value.
  int tile_rows = 0;
  /// Per-snapshot budget_alpha overrides keyed by snapshot name (the
  /// lifecycle daemon's access-aware knob: hot snapshots get a tight
  /// alpha so their recreation stays cheap, cold ones a loose alpha so
  /// they compress harder). Snapshots not listed use budget_alpha.
  std::map<std::string, double> group_budget_alpha;
  /// Content-addressed chunk dedup (DESIGN.md §15). The committer hashes
  /// every compressed plane chunk and stores identical content once —
  /// within the build, and across generations via the persistent chunk
  /// index (`chunk_index.bin`). Dedup only changes *where* chunks live,
  /// never the storage plan or any retrieved byte; retrieval never
  /// consults the index. Disabling also deletes the on-disk index.
  bool enable_dedup = true;
  /// Similarity-based delta pairing: per-parameter minhash sketches over
  /// the high-order float bytes propose delta parents by content distance
  /// in addition to declared lineage candidates. The solver takes a
  /// similarity edge only when it is measurably cheaper, so lineage (or
  /// materialization) remains the fallback. Unlike enable_dedup this
  /// changes the storage plan — the differential dedup tests hold it
  /// fixed while toggling dedup.
  bool enable_similarity_pairing = true;
  /// Max similarity delta-parent candidates proposed per matrix.
  int similarity_fanout = 2;
  /// Minimum sketch similarity (estimated Jaccard of high-byte block
  /// tokens, in [0,1]) for a proposed pairing.
  double similarity_threshold = 0.25;
};

/// What Build measured — the quantities Fig 6(c) plots.
struct ArchiveBuildReport {
  int num_vertices = 0;
  int num_edges = 0;
  double storage_cost = 0.0;         ///< Chosen plan Cs.
  double mst_storage_cost = 0.0;     ///< Lower bound (best compression).
  double spt_storage_cost = 0.0;     ///< Full-materialization-ish plan Cs.
  bool budgets_satisfied = true;
  /// Matrices whose payload the plan placed on the remote tier.
  int remote_payloads = 0;
  /// Per-snapshot recreation costs of the chosen plan, in snapshot order.
  std::vector<double> group_recreation_costs;
  std::vector<double> group_budgets;
  /// What the write pipeline did (threads used, bytes, stage latencies,
  /// dedup hit counts — see ArchivePipelineStats.dedup_*).
  ArchivePipelineStats pipeline;
  /// Candidate delta edges contributed by similarity pairing (sketch
  /// matches not already covered by declared lineage).
  int similarity_edges = 0;
  /// Matrices whose chosen delta parent came from a similarity edge
  /// rather than lineage or materialization.
  int similarity_parents = 0;
};

/// A named snapshot to archive (non-owning view over its parameters).
struct SnapshotSpec {
  std::string name;
  const std::vector<NamedParam>* params = nullptr;
};

/// Tier knobs for BuildMatrixStorageGraph (see ArchiveOptions).
struct TierOptions {
  bool enable_remote = false;
  double storage_discount = 0.5;
  double read_penalty = 4.0;
};

/// Constructs the matrix storage graph (Definition 1) for a set of
/// snapshots: vertex ids are assigned 1..N in (snapshot, param) order;
/// every matrix gets a materialization edge from v0, every candidate pair
/// contributes delta edges for same-name same-shape parameters (shape
/// changes fall back to adaptive deltas), and each snapshot becomes one
/// co-usage group (budgets 0 — set them afterwards). With tiers enabled,
/// every edge gets a remote twin. Exposed so benchmarks can solve one
/// graph under many budget settings. When `pool` is non-null the per-edge
/// cost model (trial delta + compression per candidate edge) is evaluated
/// on it; edges are still added in deterministic candidate order, so the
/// graph is identical with or without a pool.
/// A matrix-level delta-parent candidate (similarity pairing's output):
/// `to` considers `from` as a delta base. Both must name registered
/// (snapshot, param) matrices of equal shape.
struct MatrixPairCandidate {
  std::string from_snapshot;
  std::string from_param;
  std::string to_snapshot;
  std::string to_param;
};

Result<MatrixStorageGraph> BuildMatrixStorageGraph(
    const std::vector<SnapshotSpec>& snapshots,
    const std::vector<std::pair<int, int>>& candidate_pairs,
    CodecType codec, DeltaKind delta_kind, double recreation_raw_weight,
    const TierOptions& tiers = {}, ThreadPool* pool = nullptr,
    const std::vector<MatrixPairCandidate>& matrix_pairs = {},
    int* first_similarity_edge = nullptr);

/// Generation number the committed manifest names, without opening the
/// chunk stores (the lifecycle GC's "current generation" probe).
Result<uint64_t> ReadArchiveGeneration(Env* env, const std::string& dir);

/// Parses a generation-numbered archive data file name
/// (`chunks-<gen>.bin` / `remote-<gen>.bin`); false for any other name.
bool ParseArchiveDataFileName(const std::string& name, uint64_t* gen);

/// Every data file the committed manifest references — the current
/// generation's own files plus any prior-generation files it reuses
/// chunks from (cross-generation dedup). The GC must never delete these,
/// whatever generation number they carry. Parses only the manifest
/// header; no chunk store is opened.
Result<std::vector<std::string>> ReadArchiveManifestFiles(
    Env* env, const std::string& dir);

/// Rebuilds the content-addressed chunk index from the committed manifest
/// and chunk stores: every referenced plane chunk is re-read, content-
/// hashed and ref-counted. This is the recovery path for a missing, torn
/// or stale `chunk_index.bin` (the index is derived state — the manifest
/// is the commit point), used by `dlv fsck` as a repair and by the
/// builder when the stored index cannot be trusted. The result is NOT
/// saved; callers decide (fsck saves, a dedup-off build does not).
Result<ChunkIndex> RebuildChunkIndex(Env* env, const std::string& dir);

/// Builds a PAS archive on disk: registers snapshots (co-usage groups),
/// delta candidates, solves Problem 1, and writes segmented + compressed
/// chunks plus a manifest.
///
/// Layout under `dir`: chunks-<gen>.bin (ChunkStore), optional
/// remote-<gen>.bin, manifest.bin (CRC-framed, names the data files of the
/// committed generation). Build writes a fresh generation of data files and
/// publishes it by atomically replacing the manifest — the commit point —
/// so a crash mid-build leaves the previous archive fully readable.
class ArchiveBuilder {
 public:
  ArchiveBuilder(Env* env, std::string dir);

  /// Registers a snapshot (its matrices become one co-usage group).
  /// Snapshot names must be unique; parameter names unique per snapshot.
  Status AddSnapshot(const std::string& name,
                     const std::vector<NamedParam>& params);

  /// Marks `from` -> `to` as a delta candidate pair: every parameter
  /// appearing in both with equal shape gets a candidate delta edge.
  /// Typically called for adjacent checkpoints and fine-tuned pairs.
  Status AddDeltaCandidate(const std::string& from_snapshot,
                           const std::string& to_snapshot);

  /// Solves the archival problem and writes the archive.
  Result<ArchiveBuildReport> Build(const ArchiveOptions& options);

 private:
  struct MatrixEntry {
    std::string snapshot;
    std::string param;
    FloatMatrix value;
  };

  int FindMatrix(const std::string& snapshot, const std::string& param) const;

  Env* env_;
  std::string dir_;
  std::vector<MatrixEntry> matrices_;
  std::vector<std::string> snapshot_names_;
  std::vector<std::vector<int>> snapshot_members_;  // Indices into matrices_.
  std::vector<std::pair<int, int>> candidate_pairs_;  // Snapshot index pairs.
  bool built_ = false;
};

/// What one retrieval call actually did (Table III instrumentation):
/// chunk fetches, cache behavior, bytes moved, chain vertices decoded,
/// and wall time. Computed from chunk-store counter deltas, so the
/// numbers are exact for a quiescent reader and approximate when other
/// retrievals run concurrently on the same reader.
struct RetrievalStats {
  uint64_t chunk_fetches = 0;      ///< Disk chunk fetches (both stores).
  uint64_t cache_hits = 0;         ///< Chunk cache hits.
  uint64_t cache_evictions = 0;    ///< LRU evictions during the call.
  uint64_t bytes_read = 0;         ///< Compressed bytes fetched.
  uint64_t vertices_resolved = 0;  ///< Delta-chain vertices decoded.
  double wall_ms = 0.0;            ///< Wall time of the call.
};

/// Which parallel execution strategy RetrieveSnapshotsParallel uses
/// (Table III's parallel vs. computation-sharing columns).
enum class ParallelScheme {
  /// One task per requested matrix, each re-decoding its whole delta
  /// chain with a private memo — shared chain prefixes are re-read and
  /// re-applied once per descendant matrix.
  kIndependent,
  /// One dependency-counted task per delta-chain vertex: a vertex is
  /// decoded once, when its parent resolves, and the decoded value is
  /// shared by all descendants.
  kShared,
};

/// Dedup accounting of one committed archive, derived purely from the
/// manifest + chunk stores (never from chunk_index.bin — reporting stays
/// correct even with a stale index). "Logical" bytes count every plane
/// reference at its chunk's stored size; "stored" counts each referenced
/// chunk once — their ratio is the dedup factor.
struct ArchiveDedupStats {
  uint64_t plane_refs = 0;      ///< Plane references in the manifest.
  uint64_t unique_chunks = 0;   ///< Distinct (file, chunk) referenced.
  uint64_t shared_refs = 0;     ///< plane_refs - unique_chunks.
  uint64_t cross_file_refs = 0; ///< Refs into prior-generation files.
  uint64_t logical_bytes = 0;   ///< Sum of stored size over all refs.
  uint64_t stored_bytes = 0;    ///< Sum of stored size over unique chunks.
  double ratio() const {
    return stored_bytes == 0
               ? 1.0
               : static_cast<double>(logical_bytes) /
                     static_cast<double>(stored_bytes);
  }
};

/// Read side of a PAS archive. Full-precision retrieval follows delta
/// chains; partial retrieval reads only the first k byte planes of every
/// chunk on the chain and returns sound per-weight IntervalMatrix bounds
/// (Sec. IV-D), which feed IntervalEvaluator.
class ArchiveReader {
 public:
  static Result<ArchiveReader> Open(Env* env, const std::string& dir);

  const std::vector<std::string>& snapshot_names() const {
    return snapshot_names_;
  }

  /// Parameter names of one snapshot, in archived order.
  Result<std::vector<std::string>> ParamNames(
      const std::string& snapshot) const;

  /// Exact retrieval of one matrix (all four planes, whole delta chain).
  Result<FloatMatrix> RetrieveMatrix(const std::string& snapshot,
                                     const std::string& param) const;

  /// Exact retrieval of all matrices of a snapshot, sharing delta-chain
  /// work within the call (the reusable scheme's computation sharing).
  Result<std::vector<NamedParam>> RetrieveSnapshot(
      const std::string& snapshot, RetrievalStats* stats = nullptr) const;

  /// Parallel retrieval of one snapshot on `pool` using the
  /// computation-sharing scheduler (ParallelScheme::kShared). Requires a
  /// thread-safe Env. Safe to call concurrently from several threads on
  /// one shared pool: completion is tracked per call with a WaitGroup,
  /// never with ThreadPool::Wait().
  Result<std::vector<NamedParam>> RetrieveSnapshotParallel(
      const std::string& snapshot, ThreadPool* pool,
      RetrievalStats* stats = nullptr) const;

  /// Parallel retrieval of a set of snapshots (e.g. adjacent checkpoints
  /// for comparison or an ensemble) in one scheduled batch. Under
  /// kShared, the union of all delta chains is resolved as one forest:
  /// each vertex is read, decompressed and delta-applied exactly once,
  /// no matter how many requested matrices descend from it. Under
  /// kIndependent every requested matrix privately re-decodes its chain
  /// (the Table III baseline). Results are returned in `snapshots`
  /// order.
  Result<std::vector<std::vector<NamedParam>>> RetrieveSnapshotsParallel(
      const std::vector<std::string>& snapshots, ThreadPool* pool,
      ParallelScheme scheme = ParallelScheme::kShared,
      RetrievalStats* stats = nullptr) const;

  /// Sound bounds using only the first `planes` byte planes of every chunk
  /// involved. planes == 4 gives exact (degenerate) bounds. Requires every
  /// delta on the chains to be kSub or kMaterialized (XOR does not
  /// propagate intervals).
  Result<std::map<std::string, IntervalMatrix>> RetrieveSnapshotBounds(
      const std::string& snapshot, int planes) const;

  /// Compressed bytes fetched since the last reset (partial reads fetch
  /// only the requested plane chunks — the Fig 6(d) x-axis).
  uint64_t bytes_read() const {
    uint64_t total = 0;
    for (const auto& store : stores_) {
      if (store != nullptr) total += store->bytes_read();
    }
    return total;
  }
  void ResetByteCounter() {
    for (const auto& store : stores_) {
      if (store != nullptr) store->ResetByteCounter();
    }
  }

  /// Enables the chunk cache so progressive escalation from k to k+1
  /// planes fetches only the new plane chunks. The cache is a byte-
  /// bounded LRU (ChunkStoreReader::kDefaultCacheCapacity per store);
  /// see SetChunkCacheCapacity.
  void EnableChunkCache(bool enable) {
    for (const auto& store : stores_) {
      if (store != nullptr) store->EnableCache(enable);
    }
  }

  /// Bounds each underlying store's decompressed-chunk cache to `bytes`,
  /// evicting least-recently-used chunks beyond it.
  void SetChunkCacheCapacity(uint64_t bytes) {
    for (const auto& store : stores_) {
      if (store != nullptr) store->SetCacheCapacity(bytes);
    }
  }

  /// Aggregated read-side counters of the local + remote chunk stores.
  ChunkStoreStats store_stats() const;

  /// Total compressed payload bytes attributable to this archive: every
  /// chunk the manifest references, counted once. Equals the sum of all
  /// chunks of the generation's own data files plus the referenced subset
  /// of any prior-generation files reused via dedup.
  uint64_t TotalStoredBytes() const;

  /// Dedup accounting derived from the manifest + chunk stores.
  ArchiveDedupStats ComputeDedupStats() const;

  /// Generation number the manifest committed.
  uint64_t generation() const { return generation_; }

  /// The pins keeping this reader's referenced generations alive (its
  /// own, plus prior generations borrowed through dedup; shared across
  /// copies of the reader — see GenerationPinRegistry).
  const std::vector<std::shared_ptr<GenerationPin>>& generation_pins() const {
    return pins_;
  }

  /// Data file names (relative to the archive dir) the manifest references.
  const std::vector<std::string>& data_files() const { return data_files_; }

  /// Full integrity scan for `dlv fsck`: verifies every chunk's CRC in
  /// every referenced store and checks that all delta chains terminate.
  /// Returns one human-readable line per defect (empty = healthy).
  std::vector<std::string> VerifyIntegrity() const;

 private:
  friend Result<ChunkIndex> RebuildChunkIndex(Env* env,
                                              const std::string& dir);

  struct VertexMeta {
    std::string snapshot;
    std::string param;
    int64_t rows = 0;
    int64_t cols = 0;
    DeltaKind delta_kind = DeltaKind::kMaterialized;
    int parent = 0;  ///< Vertex id of the delta base; 0 = materialized.
    int tier = 0;    ///< 0 = local chunk store, 1 = remote (cost model).
    uint32_t chunk_ids[kNumPlanes] = {0, 0, 0, 0};
    /// Store slot per plane, indexing stores_: 0 = the generation's local
    /// chunk file, 1 = its remote file, 2+k = the k-th prior-generation
    /// file the manifest references (dedup). Pre-dedup manifests (v2)
    /// always have slot == tier.
    uint32_t slots[kNumPlanes] = {0, 0, 0, 0};
  };

  /// Resolves `vertex`'s full-precision value into `memo` and returns a
  /// pointer to the memoized matrix (std::map references are stable), so
  /// delta chains are decoded with zero redundant matrix copies. Callers
  /// may move the value out of the memo once all resolution is done.
  Result<const FloatMatrix*> ResolveExact(
      int vertex, std::map<int, FloatMatrix>* memo) const;
  /// Same contract for partial bounds. `exact_memo` carries full-
  /// precision values across every XOR vertex of the call, so one chain
  /// prefix is never exactly re-read per XOR descendant.
  Result<const IntervalMatrix*> ResolveBounds(
      int vertex, int planes, std::map<int, IntervalMatrix>* memo,
      std::map<int, FloatMatrix>* exact_memo) const;
  Result<FloatMatrix> ReadPayload(const VertexMeta& meta) const;

  /// Index of `snapshot` in snapshot_members_, or -1.
  int FindSnapshot(const std::string& snapshot) const;
  /// Vertex id of (snapshot, param), or -1.
  int FindVertex(const std::string& snapshot, const std::string& param) const;

  std::vector<VertexMeta> vertices_;  // Index 0 unused (v0).
  std::vector<std::string> snapshot_names_;
  std::vector<std::vector<int>> snapshot_members_;  // Vertex ids.
  /// Lookup indexes built once in Open (retrievals used to linear-scan
  /// all vertices with per-entry string compares on every call).
  std::map<std::string, int> snapshot_index_;
  std::map<std::pair<std::string, std::string>, int> vertex_index_;
  uint64_t generation_ = 0;
  std::vector<std::string> data_files_;
  /// Keep every generation this reader reads from on disk: generation_
  /// itself plus the generations of dedup-shared prior files.
  std::vector<std::shared_ptr<GenerationPin>> pins_;
  /// Open stores by slot: [0] local, [1] remote (null when the manifest
  /// names none), [2+k] prior-generation files referenced via dedup.
  std::vector<std::shared_ptr<ChunkStoreReader>> stores_;
  /// File name per slot, aligned with stores_ ("" for the null remote
  /// slot). data_files_ is the compacted (non-empty) view for fsck.
  std::vector<std::string> store_names_;
};

}  // namespace modelhub

#endif  // MODELHUB_PAS_ARCHIVE_H_
