#ifndef MODELHUB_PAS_GENERATION_PINS_H_
#define MODELHUB_PAS_GENERATION_PINS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

namespace modelhub {

class GenerationPinRegistry;

/// RAII hold on one archive generation's data files. While any pin on
/// (env, dir, generation) is alive, neither ArchiveBuilder::Build's
/// superseded-generation cleanup nor the lifecycle GC sweep will delete
/// that generation's chunk files — an in-flight retrieval can never have
/// its bytes freed underneath it.
class GenerationPin {
 public:
  ~GenerationPin();

  GenerationPin(const GenerationPin&) = delete;
  GenerationPin& operator=(const GenerationPin&) = delete;

  uint64_t generation() const { return generation_; }
  /// Sweep epoch at the time the pin was taken (diagnostics only).
  uint64_t epoch() const { return epoch_; }

 private:
  friend class GenerationPinRegistry;
  GenerationPin(GenerationPinRegistry* registry, const void* env,
                std::string dir, uint64_t generation, uint64_t epoch)
      : registry_(registry),
        env_(env),
        dir_(std::move(dir)),
        generation_(generation),
        epoch_(epoch) {}

  GenerationPinRegistry* registry_;
  const void* env_;
  std::string dir_;
  uint64_t generation_;
  uint64_t epoch_;
};

/// Process-wide refcounts of in-use archive generations, keyed by
/// (Env*, archive dir, generation). This is the "mark" side of the
/// lifecycle GC's mark-epoch scheme (DESIGN.md §14):
///
///   * ArchiveReader::Open pins every generation its manifest references
///     (its own, plus prior generations whose chunks the manifest shares
///     through dedup) and re-verifies the manifest afterwards, so the
///     pins either cover files that are still live or the open retries
///     against the newer generation — there is no window where a reader
///     holds unpinned files.
///   * Sweepers (Build cleanup, `dlv gc`, the maintenance daemon) bump
///     the sweep epoch, then delete only files that are older than the
///     committed manifest, not referenced by it, AND unpinned. Readers
///     only ever pin generations the committed manifest references, so a
///     file observed unreferenced and unpinned can never gain a new pin
///     mid-sweep: observing it once is conclusive.
class GenerationPinRegistry {
 public:
  /// Leaked process singleton (safe during static destruction).
  static GenerationPinRegistry* Global();

  /// Takes a shared hold on (env, dir, generation).
  std::shared_ptr<GenerationPin> Pin(const void* env, const std::string& dir,
                                     uint64_t generation);

  bool IsPinned(const void* env, const std::string& dir,
                uint64_t generation) const;

  /// Live pins across all generations of one archive dir.
  uint64_t PinCount(const void* env, const std::string& dir) const;

  /// Starts a new sweep epoch and returns its number (monotonic).
  uint64_t BeginSweepEpoch();
  uint64_t current_epoch() const;

 private:
  friend class GenerationPin;
  using Key = std::tuple<const void*, std::string, uint64_t>;

  void Release(const void* env, const std::string& dir, uint64_t generation);

  mutable std::mutex mu_;
  std::map<Key, uint64_t> refs_;  ///< Guarded by mu_.
  uint64_t epoch_ = 0;           ///< Guarded by mu_.
};

}  // namespace modelhub

#endif  // MODELHUB_PAS_GENERATION_PINS_H_
