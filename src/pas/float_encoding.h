#ifndef MODELHUB_PAS_FLOAT_ENCODING_H_
#define MODELHUB_PAS_FLOAT_ENCODING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "tensor/float_matrix.h"

namespace modelhub {

/// The float representation schemes PAS offers (Sec. IV-B, "Float Data
/// Type Schemes"): lossless float32, two 16-bit float formats, fixed-point
/// with a per-matrix exponent, and k-bit quantization with a coding table.
/// Users trade storage for lossyness per snapshot instead of deleting
/// snapshots.
enum class FloatSchemeKind : uint8_t {
  kFloat32 = 0,       ///< IEEE 754 single precision (lossless).
  kFloat16 = 1,       ///< IEEE 754 half precision.
  kBFloat16 = 2,      ///< Truncated 16-bit float (tensorflow-style).
  kFixedPoint = 3,    ///< Global exponent; k-bit sign+mantissa per value.
  kQuantUniform = 4,  ///< k-bit codes, equal-width bins over [min, max].
  kQuantRandom = 5,   ///< k-bit codes, random codebook sampled from data.
};

/// A scheme instance: the kind plus the bit width (meaningful for fixed
/// point and quantization; float kinds carry their natural widths).
struct FloatScheme {
  FloatSchemeKind kind = FloatSchemeKind::kFloat32;
  int bits = 32;

  std::string ToString() const;
  /// Bits consumed per value under this scheme (excluding tables).
  int BitsPerValue() const;
};

/// A matrix encoded under some scheme: shape, scheme, the packed payload,
/// and any side table (codebook for quantization, exponent for fixed
/// point). The payload is what PAS segments / compresses / archives.
struct EncodedMatrix {
  FloatScheme scheme;
  int64_t rows = 0;
  int64_t cols = 0;
  std::string payload;
  /// Quantization codebook (2^bits floats), empty otherwise.
  std::vector<float> codebook;
  /// Fixed point: power-of-two scale exponent such that
  /// value ~= mantissa * 2^exponent.
  int32_t exponent = 0;

  int64_t PayloadBytes() const { return static_cast<int64_t>(payload.size()); }
};

/// Encodes a matrix. `rng` is required for kQuantRandom, ignored otherwise.
Result<EncodedMatrix> EncodeMatrix(const FloatMatrix& matrix,
                                   const FloatScheme& scheme,
                                   Rng* rng = nullptr);

/// Decodes back to float32 (identical bits only for kFloat32).
Result<FloatMatrix> DecodeMatrix(const EncodedMatrix& encoded);

/// IEEE 754 binary16 conversions (round-to-nearest-even on encode).
uint16_t FloatToHalf(float value);
float HalfToFloat(uint16_t half);

/// bfloat16: the high 16 bits of the float32 representation
/// (round-to-nearest on encode).
uint16_t FloatToBfloat16(float value);
float Bfloat16ToFloat(uint16_t bits);

/// Adds `constant` to every element — the paper's "normalization" pre-pass
/// (Table IV) that aligns radixes and signs before delta encoding.
FloatMatrix AddConstant(const FloatMatrix& matrix, float constant);

}  // namespace modelhub

#endif  // MODELHUB_PAS_FLOAT_ENCODING_H_
