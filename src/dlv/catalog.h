#ifndef MODELHUB_DLV_CATALOG_H_
#define MODELHUB_DLV_CATALOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "common/env.h"
#include "common/result.h"

namespace modelhub {

/// Column types of the embedded catalog (the from-scratch stand-in for the
/// sqlite3 backend the paper uses for structured artifacts: network
/// definitions, training logs, lineage — Sec. III-A).
enum class ColumnType : uint8_t { kInt = 0, kReal = 1, kText = 2 };

/// A dynamically typed cell value.
class Value {
 public:
  Value() : value_(int64_t{0}) {}
  Value(int64_t v) : value_(v) {}                  // NOLINT
  Value(double v) : value_(v) {}                   // NOLINT
  Value(std::string v) : value_(std::move(v)) {}   // NOLINT
  Value(const char* v) : value_(std::string(v)) {} // NOLINT

  ColumnType type() const {
    if (std::holds_alternative<int64_t>(value_)) return ColumnType::kInt;
    if (std::holds_alternative<double>(value_)) return ColumnType::kReal;
    return ColumnType::kText;
  }

  int64_t AsInt() const { return std::get<int64_t>(value_); }
  double AsReal() const { return std::get<double>(value_); }
  const std::string& AsText() const { return std::get<std::string>(value_); }

  bool operator==(const Value& other) const { return value_ == other.value_; }

 private:
  std::variant<int64_t, double, std::string> value_;
};

using Row = std::vector<Value>;

struct ColumnSpec {
  std::string name;
  ColumnType type;
  bool operator==(const ColumnSpec& other) const {
    return name == other.name && type == other.type;
  }
};

struct TableSchema {
  std::string name;
  std::vector<ColumnSpec> columns;

  /// Index of a column by name, -1 if absent.
  int ColumnIndex(const std::string& column) const;
};

/// A tiny embedded relational store: named tables with typed columns,
/// full-scan queries with arbitrary predicates, single-file persistence.
/// Deliberately minimal — DLV's catalog workload is inserts plus scans.
class Catalog {
 public:
  /// Opens (or creates) the catalog persisted at `path`.
  static Result<Catalog> Open(Env* env, const std::string& path);

  /// Creates a table. OK if it already exists with the same schema.
  Status CreateTable(const TableSchema& schema);

  bool HasTable(const std::string& table) const;
  Result<TableSchema> GetSchema(const std::string& table) const;

  /// Appends a row (types must match the schema); returns its rowid.
  Result<int64_t> Insert(const std::string& table, Row row);

  /// Full scan; `predicate` may be null (all rows). The row passed to the
  /// predicate includes values only (rowid not included).
  Result<std::vector<Row>> Scan(
      const std::string& table,
      const std::function<bool(const Row&)>& predicate = nullptr) const;

  /// In-place update of all rows matching `predicate` via `update`.
  /// Returns the number of rows updated.
  Result<int64_t> Update(const std::string& table,
                         const std::function<bool(const Row&)>& predicate,
                         const std::function<void(Row*)>& update);

  /// Monotonic sequence numbers (used for ids and logical commit times).
  int64_t NextSequence();

  /// Persists to the path given at Open (atomic whole-file write).
  Status Flush();

  /// The exact bytes Flush would write (CRC-framed). The crash-safe commit
  /// protocol stages these bytes and publishes them with one atomic
  /// WriteFile — the commit point.
  std::string SerializeForDisk() const;

 private:
  struct Table {
    TableSchema schema;
    std::vector<Row> rows;
  };

  Table* FindTable(const std::string& table);
  const Table* FindTable(const std::string& table) const;
  Status Load(const std::string& serialized);
  std::string Serialize() const;

  Env* env_ = nullptr;
  std::string path_;
  std::vector<Table> tables_;
  int64_t sequence_ = 1;
};

}  // namespace modelhub

#endif  // MODELHUB_DLV_CATALOG_H_
