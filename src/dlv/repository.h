#ifndef MODELHUB_DLV_REPOSITORY_H_
#define MODELHUB_DLV_REPOSITORY_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/result.h"
#include "dlv/catalog.h"
#include "nn/network.h"
#include "nn/network_def.h"
#include "nn/trainer.h"
#include "pas/archive.h"

namespace modelhub {

/// Everything one `dlv commit` records for a model version (Sec. III-A:
/// the tuple (name, id, N, W, M, F)).
struct CommitRequest {
  std::string name;                 ///< Human-readable version name.
  NetworkDef network;               ///< N.
  std::vector<TrainSnapshot> snapshots;  ///< W: checkpointed parameters.
  std::vector<TrainLogEntry> log;   ///< M: per-iteration measurements.
  std::map<std::string, std::string> hyperparams;  ///< M: training config.
  std::string parent;   ///< Version name this derives from ("" = root).
  std::string message;  ///< Commit message (lineage annotation).
  /// F: associated files (scripts, configs) stored content-addressed.
  std::vector<std::pair<std::string, std::string>> files;
};

/// Summary row returned by `dlv list`.
struct ModelVersionInfo {
  int64_t id = 0;
  std::string name;
  int64_t created_at = 0;  ///< Logical commit clock.
  std::string parent;
  int64_t num_snapshots = 0;
  double best_accuracy = -1.0;
  bool archived = false;
};

/// A DLV repository: the local model-versioning store of ModelHub. Layout
/// under the repository root (see dlv/layout.h):
///
///   catalog.bin   relational catalog (versions, lineage, logs, files),
///                 CRC-framed, replaced with one atomic write
///   journal.bin   commit journal, present only mid-publish (or post-crash)
///   staging/      raw snapshot parameters awaiting archival (CRC-framed)
///   pas/          the PAS archive after `dlv archive`
///   objects/      content-addressed associated files
///   quarantine/   artifacts set aside by crash recovery or `dlv fsck`
///
/// Commit and Archive are crash-consistent: payloads are written to `*.tmp`
/// paths and published via journaled renames, with the catalog write as the
/// atomic commit point. Open replays or rolls back any interrupted publish
/// (dlv/recovery.h), so readers always see a fully-old or fully-new state.
///
/// Mirrors the dlv command set of Table II: Init/Open (init), Commit
/// (add+commit), Copy (copy), Archive (archive), List/Describe/Diff
/// (exploration), Eval (eval).
class Repository {
 public:
  /// `dlv init` — creates a fresh repository at `root`.
  static Result<Repository> Init(Env* env, const std::string& root);

  /// Opens an existing repository.
  static Result<Repository> Open(Env* env, const std::string& root);

  const std::string& root() const { return root_; }

  /// `dlv add` + `dlv commit` — records a model version. Snapshot
  /// parameters go to staging until Archive() is run.
  Result<int64_t> Commit(const CommitRequest& request);

  /// `dlv copy` — scaffolds a new version from an existing one: copies
  /// the network and hyperparameters, records lineage, no snapshots.
  Result<int64_t> Copy(const std::string& source_name,
                       const std::string& new_name);

  /// `dlv list` — all versions with lineage summary.
  Result<std::vector<ModelVersionInfo>> List() const;

  /// `dlv desc` — human-readable description of one version.
  Result<std::string> Describe(const std::string& name) const;

  /// `dlv diff` — side-by-side comparison of two versions: network nodes
  /// added/removed/changed, hyperparameter differences, accuracy.
  Result<std::string> Diff(const std::string& a, const std::string& b) const;

  /// Structured accessors (used by DQL and the hub).
  Result<ModelVersionInfo> GetInfo(const std::string& name) const;
  Result<NetworkDef> GetNetwork(const std::string& name) const;
  Result<std::vector<TrainLogEntry>> GetLog(const std::string& name) const;
  Result<std::map<std::string, std::string>> GetHyperparams(
      const std::string& name) const;
  Result<std::string> GetFile(const std::string& name,
                              const std::string& file_name) const;
  std::vector<std::pair<std::string, std::string>> GetLineage() const;

  /// Snapshot parameters; `sequence` = -1 means the latest snapshot.
  /// Reads staging or the PAS archive transparently.
  Result<std::vector<NamedParam>> GetSnapshotParams(const std::string& name,
                                                    int64_t sequence = -1) const;

  /// Snapshot count of a version.
  Result<int64_t> NumSnapshots(const std::string& name) const;

  /// `dlv eval` — runs the latest snapshot of a version on `input`,
  /// returning predicted labels.
  Result<std::vector<int>> Eval(const std::string& name,
                                const Tensor& input) const;

  /// Parameter-level diff between the latest snapshots of two versions
  /// (Sec. IV-A query (c): "comparing parameters of different models").
  /// For every parameter name present in both with equal shape, reports
  /// the L2 norm of the difference and the relative distance
  /// ||a - b|| / ||a||; shape changes and one-sided parameters are listed.
  struct ParamDiffEntry {
    std::string name;
    double l2_distance = 0.0;
    double relative_distance = 0.0;
    bool shape_changed = false;
    bool only_in_a = false;
    bool only_in_b = false;
  };
  Result<std::vector<ParamDiffEntry>> DiffParameters(
      const std::string& a, const std::string& b) const;

  /// Runs two versions on the same batch and reports agreement (Sec. IV-A
  /// query (d): "comparing the results of different models on a dataset").
  struct ComparisonResult {
    std::vector<int> labels_a;
    std::vector<int> labels_b;
    double agreement = 0.0;  ///< Fraction of samples with equal argmax.
  };
  Result<ComparisonResult> CompareOnData(const std::string& a,
                                         const std::string& b,
                                         const Tensor& input) const;

  /// `dlv archive` — migrates ALL staged snapshots into a PAS archive
  /// built with `options` (delta candidates: adjacent snapshots within a
  /// version, and parent-latest -> child-first across lineage).
  Result<ArchiveBuildReport> Archive(const ArchiveOptions& options);

  /// Opens (and caches) the PAS archive reader. Fails until `dlv
  /// archive` has run. Snapshot names inside the archive follow the
  /// `<version>/s<sequence>` key format (see SnapshotKey). The pointer
  /// stays valid until ReloadArchive() swaps the cache — fine for the
  /// single-threaded CLI; concurrent readers use SharedArchive().
  Result<ArchiveReader*> OpenArchive() const;

  /// Opens (and caches) the archive, returning a shared handle that
  /// stays valid — and keeps its generation's chunk files pinned — even
  /// if the cache is concurrently swapped by ReloadArchive(). This is
  /// the serving path's accessor.
  Result<std::shared_ptr<ArchiveReader>> SharedArchive() const;

  /// The cached reader, without attempting to open one (null if none).
  std::shared_ptr<ArchiveReader> CachedArchive() const;

  /// Re-opens the archive from disk and atomically swaps the cache:
  /// the plan-swap step after a rebuild published a new generation.
  /// In-flight retrievals on the old reader finish safely on their own
  /// shared handle (its generation stays pinned until they drop it).
  Result<std::shared_ptr<ArchiveReader>> ReloadArchive() const;

  /// Persists catalog state.
  Status Flush();

  Env* env() const { return env_; }

 private:
  Repository() = default;

  Status InitSchema();
  Result<int64_t> VersionId(const std::string& name) const;
  std::string StagingPath(const std::string& version, int64_t sequence) const;

  /// Shared, mutex-guarded cache of the open archive reader. Behind a
  /// shared_ptr so Repository stays movable and copies observe reloads.
  struct ArchiveHandle {
    std::mutex mu;
    std::shared_ptr<ArchiveReader> reader;  ///< Guarded by mu.
  };

  Env* env_ = nullptr;
  std::string root_;
  std::shared_ptr<Catalog> catalog_;
  mutable std::shared_ptr<ArchiveHandle> archive_;
};

/// Serializes snapshot parameters to bytes (staging file format) and back.
std::string SerializeParams(const std::vector<NamedParam>& params);
Result<std::vector<NamedParam>> ParseParams(Slice bytes);

}  // namespace modelhub

#endif  // MODELHUB_DLV_REPOSITORY_H_
