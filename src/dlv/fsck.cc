#include "dlv/fsck.h"

#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "common/checked_io.h"
#include "common/crc32.h"
#include "common/macros.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "dlv/catalog.h"
#include "dlv/layout.h"
#include "dlv/recovery.h"
#include "dlv/repository.h"
#include "nn/network_def.h"
#include "pas/archive.h"
#include "pas/chunk_index.h"

namespace modelhub {

namespace {

std::string SnapshotKey(const std::string& version, int64_t sequence) {
  return version + "/s" + std::to_string(sequence);
}

/// Parses a content-addressed object name ("%08x-%zu": payload CRC and
/// size). Returns false for names the repository never generates.
bool ParseObjectName(const std::string& name, uint32_t* crc, size_t* size) {
  unsigned int parsed_crc = 0;
  size_t parsed_size = 0;
  if (std::sscanf(name.c_str(), "%8x-%zu", &parsed_crc, &parsed_size) != 2) {
    return false;
  }
  char round_trip[32];
  std::snprintf(round_trip, sizeof(round_trip), "%08x-%zu", parsed_crc,
                parsed_size);
  if (name != round_trip) return false;
  *crc = parsed_crc;
  *size = parsed_size;
  return true;
}

/// Reports files in `dir` that `referenced` does not name; optionally
/// quarantines them.
void CheckOrphans(Env* env, const std::string& root, const std::string& dir,
                  const std::set<std::string>& referenced,
                  const std::string& label, const FsckOptions& options,
                  FsckReport* report) {
  if (!env->DirExists(dir)) return;
  auto names = env->ListDir(dir);
  if (!names.ok()) return;
  for (const std::string& name : *names) {
    const std::string path = JoinPath(dir, name);
    if (env->DirExists(path) || referenced.count(name)) continue;
    report->defects.push_back("orphaned " + label + " file: " + path);
    if (options.quarantine) {
      auto moved = QuarantineFile(env, root, path);
      if (moved.ok()) {
        report->repairs.push_back("quarantined " + path);
      }
    }
  }
}

}  // namespace

std::string FsckReport::ToString() const {
  std::ostringstream out;
  for (const std::string& line : notes) out << "note: " << line << "\n";
  for (const std::string& line : repairs) out << "repair: " << line << "\n";
  for (const std::string& line : defects) out << "defect: " << line << "\n";
  if (clean()) {
    out << "fsck: repository is clean\n";
  } else {
    out << "fsck: " << defects.size() << " defect(s) found\n";
  }
  return out.str();
}

Result<FsckReport> RunFsck(Env* env, const std::string& root,
                           const FsckOptions& options) {
  if (!env->FileExists(repo_layout::CatalogPath(root))) {
    return Status::NotFound("no repository at " + root);
  }
  TraceSpan span("dlv.fsck");
  FsckReport report;

  // --- Phase 1: resolve any interrupted commit publish, exactly as Open
  // would, so the remaining checks see a crash-consistent state.
  auto recovery = RecoverRepository(env, root);
  if (!recovery.ok()) {
    report.defects.push_back("crash recovery failed: " +
                             recovery.status().ToString());
  } else {
    for (const std::string& action : recovery->actions) {
      report.repairs.push_back(action);
    }
  }

  // --- Phase 2: the catalog. Everything else hangs off it; if it does not
  // load there is nothing further to cross-check.
  auto catalog = Catalog::Open(env, repo_layout::CatalogPath(root));
  if (!catalog.ok()) {
    report.defects.push_back("catalog unreadable: " +
                             catalog.status().ToString());
    return report;
  }
  report.notes.push_back("catalog loaded");

  auto scan = [&](const char* table) {
    auto rows = catalog->Scan(table);
    if (!rows.ok()) {
      report.defects.push_back(std::string("catalog table missing: ") + table);
      return std::vector<Row>{};
    }
    return *rows;
  };
  const std::vector<Row> versions = scan("versions");
  const std::vector<Row> snapshots = scan("snapshots");
  const std::vector<Row> files = scan("files");
  const std::vector<Row> lineage = scan("lineage");

  // --- Phase 3: versions — every stored network definition must parse.
  std::map<int64_t, std::string> version_names;
  std::set<std::string> name_set;
  for (const Row& row : versions) {
    const std::string& name = row[1].AsText();
    version_names[row[0].AsInt()] = name;
    name_set.insert(name);
    auto network = NetworkDef::Parse(row[3].AsText());
    if (!network.ok()) {
      report.defects.push_back("version " + name +
                               " has an unparseable network definition: " +
                               network.status().ToString());
    }
  }
  report.notes.push_back(std::to_string(versions.size()) +
                         " version(s) checked");

  // --- Phase 4: snapshots. Staged ones must have a CRC-clean parseable
  // staging file; archived ones must be present in the PAS manifest.
  std::set<std::string> referenced_staging;
  std::vector<std::pair<std::string, int64_t>> archived;
  for (const Row& row : snapshots) {
    auto it = version_names.find(row[0].AsInt());
    if (it == version_names.end()) {
      report.defects.push_back("snapshot row references unknown version id " +
                               std::to_string(row[0].AsInt()));
      continue;
    }
    const std::string& version = it->second;
    const int64_t sequence = row[1].AsInt();
    const std::string& location = row[3].AsText();
    if (location == "staging") {
      referenced_staging.insert(
          repo_layout::StagingFileName(version, sequence));
      const std::string path =
          repo_layout::StagingFile(root, version, sequence);
      auto bytes = ReadChecked(env, path);
      if (!bytes.ok()) {
        report.defects.push_back("staged snapshot " +
                                 SnapshotKey(version, sequence) + ": " +
                                 bytes.status().ToString());
        continue;
      }
      if (auto params = ParseParams(Slice(*bytes)); !params.ok()) {
        report.defects.push_back("staged snapshot " +
                                 SnapshotKey(version, sequence) +
                                 " does not parse: " +
                                 params.status().ToString());
      }
    } else if (location == "pas") {
      archived.emplace_back(version, sequence);
    } else {
      report.defects.push_back("snapshot " + SnapshotKey(version, sequence) +
                               " has unknown location '" + location + "'");
    }
  }
  report.notes.push_back(std::to_string(snapshots.size()) +
                         " snapshot(s) checked");

  // --- Phase 5: the PAS archive — chunk CRCs, delta-chain resolvability,
  // and membership of every archived snapshot.
  const std::string pas_dir = repo_layout::PasDir(root);
  std::set<std::string> referenced_pas;
  uint64_t archive_generation = 0;
  const bool have_manifest =
      env->FileExists(JoinPath(pas_dir, "manifest.bin"));
  if (have_manifest || !archived.empty()) {
    auto reader = ArchiveReader::Open(env, pas_dir);
    if (!reader.ok()) {
      report.defects.push_back("archive unreadable: " +
                               reader.status().ToString());
    } else {
      referenced_pas.insert("manifest.bin");
      for (const std::string& name : reader->data_files()) {
        referenced_pas.insert(name);
      }
      for (const std::string& defect : reader->VerifyIntegrity()) {
        report.defects.push_back("archive: " + defect);
      }
      const auto& names = reader->snapshot_names();
      const std::set<std::string> in_manifest(names.begin(), names.end());
      for (const auto& [version, sequence] : archived) {
        if (!in_manifest.count(SnapshotKey(version, sequence))) {
          report.defects.push_back("archived snapshot " +
                                   SnapshotKey(version, sequence) +
                                   " is missing from the archive manifest");
        }
      }
      archive_generation = reader->generation();
      report.notes.push_back("archive generation " +
                             std::to_string(archive_generation) +
                             " verified");
      // The content-addressed chunk index is derived state (DESIGN.md
      // §15): a missing, stale, or inconsistent index is never a defect —
      // fsck rebuilds it from the manifest + chunk stores and saves the
      // rebuilt copy as a repair. It is compared entry-for-entry against
      // a fresh rebuild so silently wrong refcounts or locations (e.g. a
      // torn append) are caught, not just unreadable files.
      referenced_pas.insert(ChunkIndex::kFileName);
      auto rebuilt = RebuildChunkIndex(env, pas_dir);
      if (!rebuilt.ok()) {
        report.defects.push_back("chunk index rebuild failed: " +
                                 rebuilt.status().ToString());
      } else {
        bool index_ok = false;
        auto loaded = ChunkIndex::Load(env, pas_dir);
        if (loaded.ok() && loaded->generation() == rebuilt->generation()) {
          const auto want = rebuilt->SortedEntries();
          const auto have = loaded->SortedEntries();
          index_ok = want.size() == have.size();
          for (size_t i = 0; index_ok && i < want.size(); ++i) {
            index_ok = want[i].hash == have[i].hash &&
                       want[i].file == have[i].file &&
                       want[i].chunk_id == have[i].chunk_id &&
                       want[i].refcount == have[i].refcount &&
                       want[i].stored_size == have[i].stored_size;
          }
        }
        if (index_ok) {
          report.notes.push_back(
              "chunk index consistent: " + std::to_string(rebuilt->size()) +
              " entry(s), " + std::to_string(rebuilt->TotalRefs()) +
              " plane reference(s)");
        } else {
          const Status saved = rebuilt->Save(env, pas_dir);
          if (saved.ok()) {
            report.repairs.push_back(
                "rebuilt chunk index from the manifest (" +
                std::to_string(rebuilt->size()) + " entry(s))");
          } else {
            report.defects.push_back("chunk index rebuild could not be " +
                                     std::string("saved: ") +
                                     saved.ToString());
          }
        }
      }
    }
  }

  // --- Phase 6: content-addressed objects — size and CRC must match the
  // name for every referenced object.
  std::set<std::string> referenced_objects;
  for (const Row& row : files) {
    auto it = version_names.find(row[0].AsInt());
    const std::string owner =
        it == version_names.end() ? "<unknown version>" : it->second;
    const std::string& object = row[2].AsText();
    referenced_objects.insert(object);
    uint32_t expected_crc = 0;
    size_t expected_size = 0;
    if (!ParseObjectName(object, &expected_crc, &expected_size)) {
      report.defects.push_back("file '" + row[1].AsText() + "' of " + owner +
                               " references malformed object name " + object);
      continue;
    }
    auto bytes = env->ReadFile(repo_layout::ObjectFile(root, object));
    if (!bytes.ok()) {
      report.defects.push_back("object " + object + " (file '" +
                               row[1].AsText() + "' of " + owner +
                               "): " + bytes.status().ToString());
      continue;
    }
    if (bytes->size() != expected_size ||
        Crc32(Slice(*bytes)) != expected_crc) {
      report.defects.push_back("object " + object +
                               " content does not match its name (file '" +
                               row[1].AsText() + "' of " + owner + ")");
    }
  }
  report.notes.push_back(std::to_string(files.size()) + " object(s) checked");

  // --- Phase 7: lineage — both endpoints must be real versions.
  for (const Row& row : lineage) {
    for (int col = 0; col < 2; ++col) {
      const std::string& endpoint = row[col].AsText();
      if (!name_set.count(endpoint)) {
        report.defects.push_back("lineage edge references unknown version " +
                                 endpoint);
      }
    }
  }

  // --- Phase 8: orphans — files no catalog row references.
  CheckOrphans(env, root, repo_layout::StagingDir(root), referenced_staging,
               "staging", options, &report);
  CheckOrphans(env, root, repo_layout::ObjectsDir(root), referenced_objects,
               "object", options, &report);
  // The archive directory gets a GC-aware pass instead of CheckOrphans:
  // generation-numbered data files that the manifest does not reference
  // are lifecycle state, not corruption. Superseded generations are
  // pending GC (possibly pinned by in-flight retrievals); generations
  // newer than the manifest are an interrupted rebuild that the next
  // compaction supersedes. Both are notes. Files the archive never
  // writes remain orphan defects.
  if (!referenced_pas.empty()) {
    auto pas_names = env->ListDir(pas_dir);
    if (pas_names.ok()) {
      std::map<uint64_t, std::pair<uint64_t, uint64_t>> stale_generations;
      for (const std::string& name : *pas_names) {
        const std::string path = JoinPath(pas_dir, name);
        if (env->DirExists(path) || referenced_pas.count(name)) continue;
        uint64_t gen = 0;
        if (ParseArchiveDataFileName(name, &gen)) {
          uint64_t bytes = 0;
          if (auto size = env->FileSize(path); size.ok()) bytes = *size;
          auto& entry = stale_generations[gen];
          ++entry.first;
          entry.second += bytes;
          continue;
        }
        report.defects.push_back("orphaned archive file: " + path);
        if (options.quarantine) {
          auto moved = QuarantineFile(env, root, path);
          if (moved.ok()) {
            report.repairs.push_back("quarantined " + path);
          }
        }
      }
      for (const auto& [gen, counts] : stale_generations) {
        std::ostringstream note;
        if (gen < archive_generation) {
          note << "pending-GC generation " << gen << ": " << counts.first
               << " file(s), " << counts.second
               << " byte(s) awaiting sweep (dlv gc)";
        } else {
          note << "interrupted rebuild generation " << gen << ": "
               << counts.first << " file(s), " << counts.second
               << " byte(s); the next compaction supersedes it";
        }
        report.notes.push_back(note.str());
      }
    }
  }
  MH_COUNTER("dlv.fsck.count")->Increment();
  MH_COUNTER("dlv.fsck.defects")->Add(report.defects.size());
  MH_COUNTER("dlv.fsck.repairs")->Add(report.repairs.size());
  return report;
}

}  // namespace modelhub
