#include "dlv/catalog.h"

#include <cstring>

#include "common/checked_io.h"
#include "common/coding.h"
#include "common/macros.h"

namespace modelhub {

namespace {
constexpr char kMagic[] = "MHCAT1\n";
constexpr size_t kMagicSize = 7;
}  // namespace

int TableSchema::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column) return static_cast<int>(i);
  }
  return -1;
}

Result<Catalog> Catalog::Open(Env* env, const std::string& path) {
  Catalog catalog;
  catalog.env_ = env;
  catalog.path_ = path;
  if (env->FileExists(path)) {
    MH_ASSIGN_OR_RETURN(std::string contents, ReadChecked(env, path));
    MH_RETURN_IF_ERROR(catalog.Load(contents));
  }
  return catalog;
}

Catalog::Table* Catalog::FindTable(const std::string& table) {
  for (auto& t : tables_) {
    if (t.schema.name == table) return &t;
  }
  return nullptr;
}

const Catalog::Table* Catalog::FindTable(const std::string& table) const {
  for (const auto& t : tables_) {
    if (t.schema.name == table) return &t;
  }
  return nullptr;
}

Status Catalog::CreateTable(const TableSchema& schema) {
  if (schema.name.empty() || schema.columns.empty()) {
    return Status::InvalidArgument("table needs a name and columns");
  }
  if (const Table* existing = FindTable(schema.name)) {
    if (existing->schema.columns == schema.columns) return Status::OK();
    return Status::AlreadyExists("table exists with different schema: " +
                                 schema.name);
  }
  tables_.push_back(Table{schema, {}});
  return Status::OK();
}

bool Catalog::HasTable(const std::string& table) const {
  return FindTable(table) != nullptr;
}

Result<TableSchema> Catalog::GetSchema(const std::string& table) const {
  const Table* t = FindTable(table);
  if (t == nullptr) return Status::NotFound("no table: " + table);
  return t->schema;
}

Result<int64_t> Catalog::Insert(const std::string& table, Row row) {
  Table* t = FindTable(table);
  if (t == nullptr) return Status::NotFound("no table: " + table);
  if (row.size() != t->schema.columns.size()) {
    return Status::InvalidArgument("row arity mismatch for " + table);
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].type() != t->schema.columns[i].type) {
      return Status::InvalidArgument("type mismatch in column " +
                                     t->schema.columns[i].name);
    }
  }
  t->rows.push_back(std::move(row));
  return static_cast<int64_t>(t->rows.size()) - 1;
}

Result<std::vector<Row>> Catalog::Scan(
    const std::string& table,
    const std::function<bool(const Row&)>& predicate) const {
  const Table* t = FindTable(table);
  if (t == nullptr) return Status::NotFound("no table: " + table);
  std::vector<Row> out;
  for (const Row& row : t->rows) {
    if (!predicate || predicate(row)) out.push_back(row);
  }
  return out;
}

Result<int64_t> Catalog::Update(
    const std::string& table,
    const std::function<bool(const Row&)>& predicate,
    const std::function<void(Row*)>& update) {
  Table* t = FindTable(table);
  if (t == nullptr) return Status::NotFound("no table: " + table);
  int64_t count = 0;
  for (Row& row : t->rows) {
    if (!predicate || predicate(row)) {
      update(&row);
      ++count;
    }
  }
  return count;
}

int64_t Catalog::NextSequence() { return sequence_++; }

std::string Catalog::Serialize() const {
  std::string out(kMagic, kMagicSize);
  PutVarint64(&out, static_cast<uint64_t>(sequence_));
  PutVarint64(&out, tables_.size());
  for (const Table& t : tables_) {
    PutLengthPrefixed(&out, Slice(t.schema.name));
    PutVarint64(&out, t.schema.columns.size());
    for (const ColumnSpec& col : t.schema.columns) {
      PutLengthPrefixed(&out, Slice(col.name));
      out.push_back(static_cast<char>(col.type));
    }
    PutVarint64(&out, t.rows.size());
    for (const Row& row : t.rows) {
      for (const Value& value : row) {
        switch (value.type()) {
          case ColumnType::kInt:
            PutVarint64(&out, static_cast<uint64_t>(value.AsInt()));
            break;
          case ColumnType::kReal: {
            uint64_t bits;
            const double d = value.AsReal();
            static_assert(sizeof(bits) == sizeof(d));
            std::memcpy(&bits, &d, 8);
            PutFixed64(&out, bits);
            break;
          }
          case ColumnType::kText:
            PutLengthPrefixed(&out, Slice(value.AsText()));
            break;
        }
      }
    }
  }
  return out;
}

Status Catalog::Load(const std::string& serialized) {
  if (serialized.size() < kMagicSize ||
      serialized.compare(0, kMagicSize, kMagic) != 0) {
    return Status::Corruption("bad catalog magic");
  }
  Slice in(serialized);
  in.RemovePrefix(kMagicSize);
  uint64_t sequence = 0;
  MH_RETURN_IF_ERROR(GetVarint64(&in, &sequence));
  sequence_ = static_cast<int64_t>(sequence);
  uint64_t num_tables = 0;
  MH_RETURN_IF_ERROR(GetVarint64(&in, &num_tables));
  tables_.clear();
  for (uint64_t ti = 0; ti < num_tables; ++ti) {
    Table t;
    Slice name;
    MH_RETURN_IF_ERROR(GetLengthPrefixed(&in, &name));
    t.schema.name = name.ToString();
    uint64_t num_columns = 0;
    MH_RETURN_IF_ERROR(GetVarint64(&in, &num_columns));
    for (uint64_t ci = 0; ci < num_columns; ++ci) {
      ColumnSpec col;
      Slice col_name;
      MH_RETURN_IF_ERROR(GetLengthPrefixed(&in, &col_name));
      col.name = col_name.ToString();
      if (in.empty()) return Status::Corruption("catalog truncated");
      if (in[0] > 2) return Status::Corruption("bad column type");
      col.type = static_cast<ColumnType>(in[0]);
      in.RemovePrefix(1);
      t.schema.columns.push_back(std::move(col));
    }
    uint64_t num_rows = 0;
    MH_RETURN_IF_ERROR(GetVarint64(&in, &num_rows));
    for (uint64_t ri = 0; ri < num_rows; ++ri) {
      Row row;
      for (const ColumnSpec& col : t.schema.columns) {
        switch (col.type) {
          case ColumnType::kInt: {
            uint64_t v = 0;
            MH_RETURN_IF_ERROR(GetVarint64(&in, &v));
            row.emplace_back(static_cast<int64_t>(v));
            break;
          }
          case ColumnType::kReal: {
            uint64_t bits = 0;
            MH_RETURN_IF_ERROR(GetFixed64(&in, &bits));
            double d;
            std::memcpy(&d, &bits, 8);
            row.emplace_back(d);
            break;
          }
          case ColumnType::kText: {
            Slice text;
            MH_RETURN_IF_ERROR(GetLengthPrefixed(&in, &text));
            row.emplace_back(text.ToString());
            break;
          }
        }
      }
      t.rows.push_back(std::move(row));
    }
    tables_.push_back(std::move(t));
  }
  return Status::OK();
}

std::string Catalog::SerializeForDisk() const {
  return WithCrcFooter(Serialize());
}

Status Catalog::Flush() { return env_->WriteFile(path_, SerializeForDisk()); }

}  // namespace modelhub
