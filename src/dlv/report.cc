#include "dlv/report.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "common/macros.h"

namespace modelhub {

namespace {

/// Inline SVG polyline of the loss curve, scaled into a fixed viewbox.
std::string LossCurveSvg(const std::vector<TrainLogEntry>& log) {
  if (log.size() < 2) return "";
  const double width = 320.0;
  const double height = 90.0;
  const double pad = 6.0;
  double min_loss = log[0].loss;
  double max_loss = log[0].loss;
  for (const auto& entry : log) {
    min_loss = std::min(min_loss, entry.loss);
    max_loss = std::max(max_loss, entry.loss);
  }
  if (max_loss - min_loss < 1e-12) max_loss = min_loss + 1e-12;
  const double min_iter = static_cast<double>(log.front().iteration);
  const double max_iter = static_cast<double>(log.back().iteration);
  std::ostringstream out;
  out << "<svg class=\"loss\" width=\"" << width << "\" height=\"" << height
      << "\" viewBox=\"0 0 " << width << " " << height << "\">";
  out << "<polyline fill=\"none\" stroke=\"#2266cc\" stroke-width=\"1.5\" "
         "points=\"";
  for (const auto& entry : log) {
    const double x =
        pad + (width - 2 * pad) * (static_cast<double>(entry.iteration) -
                                   min_iter) /
                  std::max(1.0, max_iter - min_iter);
    const double y = height - pad -
                     (height - 2 * pad) * (entry.loss - min_loss) /
                         (max_loss - min_loss);
    out << x << "," << y << " ";
  }
  out << "\"/></svg>";
  return out.str();
}

/// Inline SVG of the lineage DAG: versions as labelled boxes in commit
/// order, parent -> child edges as elbow connectors.
std::string LineageSvg(const std::vector<ModelVersionInfo>& versions) {
  const double row_height = 30.0;
  const double box_width = 180.0;
  const double box_height = 22.0;
  const double left = 160.0;
  const double height = row_height * versions.size() + 10;
  std::map<std::string, int> row_of;
  for (size_t i = 0; i < versions.size(); ++i) {
    row_of[versions[i].name] = static_cast<int>(i);
  }
  std::ostringstream out;
  out << "<svg class=\"lineage\" width=\"" << (left + box_width + 40)
      << "\" height=\"" << height << "\">";
  // Edges first (under the boxes).
  for (const auto& info : versions) {
    if (info.parent.empty() || row_of.count(info.parent) == 0) continue;
    const double y1 =
        row_of[info.parent] * row_height + 5 + box_height / 2;
    const double y2 = row_of[info.name] * row_height + 5 + box_height / 2;
    const double x = left - 12 - 6.0 * ((row_of[info.name] -
                                          row_of[info.parent]) %
                                         5);
    out << "<path fill=\"none\" stroke=\"#999\" d=\"M " << left << " " << y1
        << " H " << x << " V " << y2 << " H " << left << "\"/>";
  }
  for (size_t i = 0; i < versions.size(); ++i) {
    const double y = i * row_height + 5;
    out << "<rect x=\"" << left << "\" y=\"" << y << "\" width=\""
        << box_width << "\" height=\"" << box_height
        << "\" rx=\"4\" fill=\"#eef4ff\" stroke=\"#2266cc\"/>";
    out << "<text x=\"" << (left + 8) << "\" y=\"" << (y + 15)
        << "\" font-size=\"12\">" << HtmlEscape(versions[i].name)
        << "</text>";
  }
  out << "</svg>";
  return out.str();
}

}  // namespace

std::string HtmlEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

Result<std::string> RenderHtmlReport(const Repository& repo) {
  MH_ASSIGN_OR_RETURN(auto versions, repo.List());
  std::ostringstream out;
  out << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n"
         "<title>dlv repository report</title>\n<style>\n"
         "body{font-family:sans-serif;margin:2em;color:#222}\n"
         "table{border-collapse:collapse;margin:1em 0}\n"
         "th,td{border:1px solid #ccc;padding:4px 10px;font-size:13px}\n"
         "th{background:#f0f4fa;text-align:left}\n"
         "h2{border-bottom:2px solid #2266cc;padding-bottom:4px}\n"
         ".muted{color:#888}\n"
         "</style></head><body>\n";
  out << "<h1>dlv repository report</h1>\n";
  out << "<p class=\"muted\">" << versions.size()
      << " model version(s) at " << HtmlEscape(repo.root()) << "</p>\n";

  // dlv list table.
  out << "<h2>Model versions</h2>\n<table>\n"
         "<tr><th>name</th><th>parent</th><th>snapshots</th>"
         "<th>best accuracy</th><th>state</th></tr>\n";
  for (const auto& info : versions) {
    out << "<tr><td>" << HtmlEscape(info.name) << "</td><td>"
        << HtmlEscape(info.parent.empty() ? "-" : info.parent)
        << "</td><td>" << info.num_snapshots << "</td><td>";
    if (info.best_accuracy >= 0) {
      out << std::round(info.best_accuracy * 1000) / 10 << "%";
    } else {
      out << "-";
    }
    out << "</td><td>" << (info.archived ? "archived" : "staged")
        << "</td></tr>\n";
  }
  out << "</table>\n";

  // Lineage graph.
  out << "<h2>Lineage</h2>\n" << LineageSvg(versions) << "\n";

  // Per-version details.
  for (const auto& info : versions) {
    out << "<h2>" << HtmlEscape(info.name) << "</h2>\n";
    auto network = repo.GetNetwork(info.name);
    if (network.ok()) {
      auto params = network->ParameterCount();
      out << "<p>network: " << network->nodes().size() << " nodes";
      if (params.ok()) out << ", " << *params << " parameters";
      out << "</p>\n";
    }
    auto hyperparams = repo.GetHyperparams(info.name);
    if (hyperparams.ok() && !hyperparams->empty()) {
      out << "<table><tr><th>hyperparameter</th><th>value</th></tr>\n";
      for (const auto& [key, value] : *hyperparams) {
        out << "<tr><td>" << HtmlEscape(key) << "</td><td>"
            << HtmlEscape(value) << "</td></tr>\n";
      }
      out << "</table>\n";
    }
    auto log = repo.GetLog(info.name);
    if (log.ok() && !log->empty()) {
      out << LossCurveSvg(*log) << "\n";
      out << "<table><tr><th>iteration</th><th>loss</th>"
             "<th>train accuracy</th><th>learning rate</th></tr>\n";
      for (const auto& entry : *log) {
        out << "<tr><td>" << entry.iteration << "</td><td>" << entry.loss
            << "</td><td>" << entry.train_accuracy << "</td><td>"
            << entry.learning_rate << "</td></tr>\n";
      }
      out << "</table>\n";
    }
  }
  out << "</body></html>\n";
  return out.str();
}

}  // namespace modelhub
