#include "dlv/repository.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

#include "common/checked_io.h"
#include "common/coding.h"
#include "common/crc32.h"
#include "common/macros.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "dlv/layout.h"
#include "dlv/recovery.h"

namespace modelhub {

namespace {

std::string SnapshotKey(const std::string& version, int64_t sequence) {
  return version + "/s" + std::to_string(sequence);
}

}  // namespace

std::string SerializeParams(const std::vector<NamedParam>& params) {
  std::string out;
  PutVarint64(&out, params.size());
  for (const auto& param : params) {
    PutLengthPrefixed(&out, Slice(param.name));
    PutVarint64(&out, static_cast<uint64_t>(param.value.rows()));
    PutVarint64(&out, static_cast<uint64_t>(param.value.cols()));
    PutLengthPrefixed(&out, Slice(param.value.ToBytes()));
  }
  return out;
}

Result<std::vector<NamedParam>> ParseParams(Slice bytes) {
  uint64_t count = 0;
  MH_RETURN_IF_ERROR(GetVarint64(&bytes, &count));
  std::vector<NamedParam> out;
  for (uint64_t i = 0; i < count; ++i) {
    Slice name;
    MH_RETURN_IF_ERROR(GetLengthPrefixed(&bytes, &name));
    uint64_t rows = 0;
    uint64_t cols = 0;
    MH_RETURN_IF_ERROR(GetVarint64(&bytes, &rows));
    MH_RETURN_IF_ERROR(GetVarint64(&bytes, &cols));
    Slice data;
    MH_RETURN_IF_ERROR(GetLengthPrefixed(&bytes, &data));
    MH_ASSIGN_OR_RETURN(FloatMatrix value,
                        FloatMatrix::FromBytes(static_cast<int64_t>(rows),
                                               static_cast<int64_t>(cols),
                                               data));
    out.push_back({name.ToString(), std::move(value)});
  }
  return out;
}

Status Repository::InitSchema() {
  MH_RETURN_IF_ERROR(catalog_->CreateTable(
      {"versions",
       {{"id", ColumnType::kInt},
        {"name", ColumnType::kText},
        {"created_at", ColumnType::kInt},
        {"network", ColumnType::kText},
        {"parent", ColumnType::kText},
        {"message", ColumnType::kText}}}));
  MH_RETURN_IF_ERROR(catalog_->CreateTable(
      {"snapshots",
       {{"version_id", ColumnType::kInt},
        {"sequence", ColumnType::kInt},
        {"iteration", ColumnType::kInt},
        {"location", ColumnType::kText}}}));
  MH_RETURN_IF_ERROR(catalog_->CreateTable(
      {"logs",
       {{"version_id", ColumnType::kInt},
        {"iteration", ColumnType::kInt},
        {"loss", ColumnType::kReal},
        {"accuracy", ColumnType::kReal},
        {"learning_rate", ColumnType::kReal}}}));
  MH_RETURN_IF_ERROR(catalog_->CreateTable(
      {"hyperparams",
       {{"version_id", ColumnType::kInt},
        {"key", ColumnType::kText},
        {"value", ColumnType::kText}}}));
  MH_RETURN_IF_ERROR(catalog_->CreateTable(
      {"files",
       {{"version_id", ColumnType::kInt},
        {"name", ColumnType::kText},
        {"object", ColumnType::kText}}}));
  return catalog_->CreateTable({"lineage",
                                {{"base", ColumnType::kText},
                                 {"derived", ColumnType::kText},
                                 {"message", ColumnType::kText}}});
}

Result<Repository> Repository::Init(Env* env, const std::string& root) {
  if (env->FileExists(repo_layout::CatalogPath(root))) {
    return Status::AlreadyExists("repository already exists at " + root);
  }
  MH_RETURN_IF_ERROR(env->CreateDirs(root));
  MH_RETURN_IF_ERROR(env->CreateDirs(repo_layout::StagingDir(root)));
  MH_RETURN_IF_ERROR(env->CreateDirs(repo_layout::ObjectsDir(root)));
  Repository repo;
  repo.env_ = env;
  repo.root_ = root;
  MH_ASSIGN_OR_RETURN(Catalog catalog,
                      Catalog::Open(env, repo_layout::CatalogPath(root)));
  repo.catalog_ = std::make_shared<Catalog>(std::move(catalog));
  repo.archive_ = std::make_shared<ArchiveHandle>();
  MH_RETURN_IF_ERROR(repo.InitSchema());
  MH_RETURN_IF_ERROR(repo.Flush());
  return repo;
}

Result<Repository> Repository::Open(Env* env, const std::string& root) {
  if (!env->FileExists(repo_layout::CatalogPath(root))) {
    return Status::NotFound("no repository at " + root);
  }
  // Resolve any interrupted commit publish (roll forward past the commit
  // point, roll back otherwise) before trusting the on-disk state.
  MH_RETURN_IF_ERROR(RecoverRepository(env, root).status());
  Repository repo;
  repo.env_ = env;
  repo.root_ = root;
  MH_ASSIGN_OR_RETURN(Catalog catalog,
                      Catalog::Open(env, repo_layout::CatalogPath(root)));
  repo.catalog_ = std::make_shared<Catalog>(std::move(catalog));
  repo.archive_ = std::make_shared<ArchiveHandle>();
  MH_RETURN_IF_ERROR(repo.InitSchema());
  return repo;
}

Result<int64_t> Repository::VersionId(const std::string& name) const {
  MH_ASSIGN_OR_RETURN(auto rows,
                      catalog_->Scan("versions", [&](const Row& row) {
                        return row[1].AsText() == name;
                      }));
  if (rows.empty()) return Status::NotFound("no model version: " + name);
  return rows[0][0].AsInt();
}

std::string Repository::StagingPath(const std::string& version,
                                    int64_t sequence) const {
  return repo_layout::StagingFile(root_, version, sequence);
}

Result<int64_t> Repository::Commit(const CommitRequest& request) {
  TraceSpan span("dlv.commit");
  span.Annotate("version", request.name);
  Stopwatch watch;
  if (request.name.empty()) {
    return Status::InvalidArgument("model version needs a name");
  }
  if (VersionId(request.name).ok()) {
    return Status::AlreadyExists("model version exists: " + request.name);
  }
  MH_RETURN_IF_ERROR(request.network.Validate());
  if (!request.parent.empty()) {
    MH_RETURN_IF_ERROR(VersionId(request.parent).status());
  }
  // Stage every catalog mutation on a copy: a failed or interrupted commit
  // must leave both the in-memory catalog and the on-disk state untouched.
  Catalog staged = *catalog_;
  const int64_t id = staged.NextSequence();
  const int64_t created_at = staged.NextSequence();
  MH_RETURN_IF_ERROR(staged
                         .Insert("versions",
                                 {id, request.name, created_at,
                                  request.network.Serialize(), request.parent,
                                  request.message})
                         .status());
  if (!request.parent.empty()) {
    MH_RETURN_IF_ERROR(
        staged
            .Insert("lineage", {request.parent, request.name, request.message})
            .status());
  }
  // Payloads to publish, keyed by root-relative final path. The journal
  // identifies each artifact by the CRC of its logical payload — the bytes
  // under the CRC footer for framed files — because the whole-file CRC of
  // a framed file is the fixed CRC-32 residue (see recovery.h).
  struct PendingFile {
    std::string rel_path;
    std::string bytes;         ///< Exact file bytes written to disk.
    uint32_t payload_crc = 0;  ///< CRC-32 of the logical payload.
    bool framed = false;
  };
  std::vector<PendingFile> pending;
  for (size_t s = 0; s < request.snapshots.size(); ++s) {
    const auto& snapshot = request.snapshots[s];
    MH_RETURN_IF_ERROR(staged
                           .Insert("snapshots",
                                   {id, static_cast<int64_t>(s),
                                    snapshot.iteration, "staging"})
                           .status());
    const std::string payload = SerializeParams(snapshot.params);
    pending.push_back({JoinPath("staging",
                                repo_layout::StagingFileName(
                                    request.name, static_cast<int64_t>(s))),
                       WithCrcFooter(payload), Crc32(Slice(payload)),
                       /*framed=*/true});
  }
  for (const auto& entry : request.log) {
    MH_RETURN_IF_ERROR(staged
                           .Insert("logs", {id, entry.iteration, entry.loss,
                                            entry.train_accuracy,
                                            entry.learning_rate})
                           .status());
  }
  for (const auto& [key, value] : request.hyperparams) {
    MH_RETURN_IF_ERROR(staged.Insert("hyperparams", {id, key, value}).status());
  }
  for (const auto& [file_name, contents] : request.files) {
    const uint32_t content_crc = Crc32(Slice(contents));
    char object[32];
    std::snprintf(object, sizeof(object), "%08x-%zu", content_crc,
                  contents.size());
    // Objects are content-addressed: an existing file with this name already
    // has these bytes, and may be shared with earlier versions — never
    // republish it (a rollback would otherwise quarantine shared data).
    if (!env_->FileExists(repo_layout::ObjectFile(root_, object))) {
      pending.push_back({JoinPath("objects", object), contents, content_crc,
                         /*framed=*/false});
    }
    MH_RETURN_IF_ERROR(
        staged.Insert("files", {id, file_name, std::string(object)}).status());
  }
  // Publish protocol: journal the intent, write tmps, rename into place,
  // then atomically replace the catalog — the commit point. A crash at any
  // step is resolved by RecoverRepository to fully-old or fully-new state.
  const std::string catalog_image = staged.SerializeForDisk();
  CommitJournal journal;
  journal.new_catalog_crc = Crc32(Slice(*StripCrcFooter(catalog_image)));
  for (const auto& p : pending) {
    journal.entries.push_back(
        {p.rel_path + ".tmp", p.rel_path, p.payload_crc, p.framed});
  }
  const Status publish = [&]() -> Status {
    MH_RETURN_IF_ERROR(WriteChecked(env_,
                                    repo_layout::CommitJournalPath(root_),
                                    SerializeCommitJournal(journal)));
    for (const auto& p : pending) {
      MH_RETURN_IF_ERROR(
          env_->WriteFile(JoinPath(root_, p.rel_path) + ".tmp", p.bytes));
    }
    for (const auto& p : pending) {
      MH_RETURN_IF_ERROR(env_->RenameFile(JoinPath(root_, p.rel_path) + ".tmp",
                                          JoinPath(root_, p.rel_path)));
    }
    return env_->WriteFile(repo_layout::CatalogPath(root_), catalog_image);
  }();
  if (!publish.ok()) {
    // Best-effort immediate rollback; a crash before this runs is handled
    // identically by the next Open.
    (void)RecoverRepository(env_, root_);
    MH_COUNTER("dlv.commit.errors")->Increment();
    return publish;
  }
  // Past the commit point: a leftover journal merely rolls forward (to a
  // no-op) at the next Open, so a failed delete is not an error.
  (void)env_->DeleteFile(repo_layout::CommitJournalPath(root_));
  *catalog_ = std::move(staged);
  uint64_t published_bytes = 0;
  for (const auto& p : pending) published_bytes += p.bytes.size();
  MH_COUNTER("dlv.commit.count")->Increment();
  MH_COUNTER("dlv.commit.snapshots")->Add(request.snapshots.size());
  MH_COUNTER("dlv.commit.bytes")->Add(published_bytes);
  MH_HISTOGRAM("dlv.commit.us")
      ->Record(static_cast<uint64_t>(watch.ElapsedMillis() * 1000.0));
  span.Annotate("bytes", published_bytes);
  return id;
}

Result<int64_t> Repository::Copy(const std::string& source_name,
                                 const std::string& new_name) {
  MH_ASSIGN_OR_RETURN(NetworkDef network, GetNetwork(source_name));
  MH_ASSIGN_OR_RETURN(auto hyperparams, GetHyperparams(source_name));
  CommitRequest request;
  request.name = new_name;
  network.set_name(new_name);
  request.network = std::move(network);
  request.hyperparams = hyperparams;
  request.parent = source_name;
  request.message = "copy of " + source_name;
  return Commit(request);
}

Result<std::vector<ModelVersionInfo>> Repository::List() const {
  MH_ASSIGN_OR_RETURN(auto rows, catalog_->Scan("versions"));
  std::vector<ModelVersionInfo> out;
  for (const Row& row : rows) {
    ModelVersionInfo info;
    info.id = row[0].AsInt();
    info.name = row[1].AsText();
    info.created_at = row[2].AsInt();
    info.parent = row[4].AsText();
    MH_ASSIGN_OR_RETURN(auto snapshot_rows,
                        catalog_->Scan("snapshots", [&](const Row& r) {
                          return r[0].AsInt() == info.id;
                        }));
    info.num_snapshots = static_cast<int64_t>(snapshot_rows.size());
    info.archived = !snapshot_rows.empty();
    for (const Row& r : snapshot_rows) {
      if (r[3].AsText() == "staging") info.archived = false;
    }
    MH_ASSIGN_OR_RETURN(auto log_rows,
                        catalog_->Scan("logs", [&](const Row& r) {
                          return r[0].AsInt() == info.id;
                        }));
    for (const Row& r : log_rows) {
      info.best_accuracy = std::max(info.best_accuracy, r[3].AsReal());
    }
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const ModelVersionInfo& a, const ModelVersionInfo& b) {
              return a.created_at < b.created_at;
            });
  return out;
}

Result<ModelVersionInfo> Repository::GetInfo(const std::string& name) const {
  MH_ASSIGN_OR_RETURN(auto all, List());
  for (const auto& info : all) {
    if (info.name == name) return info;
  }
  return Status::NotFound("no model version: " + name);
}

Result<NetworkDef> Repository::GetNetwork(const std::string& name) const {
  MH_ASSIGN_OR_RETURN(const int64_t id, VersionId(name));
  MH_ASSIGN_OR_RETURN(auto rows, catalog_->Scan("versions", [&](const Row& r) {
                        return r[0].AsInt() == id;
                      }));
  return NetworkDef::Parse(rows[0][3].AsText());
}

Result<std::vector<TrainLogEntry>> Repository::GetLog(
    const std::string& name) const {
  MH_ASSIGN_OR_RETURN(const int64_t id, VersionId(name));
  MH_ASSIGN_OR_RETURN(auto rows, catalog_->Scan("logs", [&](const Row& r) {
                        return r[0].AsInt() == id;
                      }));
  std::vector<TrainLogEntry> out;
  for (const Row& row : rows) {
    TrainLogEntry entry;
    entry.iteration = row[1].AsInt();
    entry.loss = row[2].AsReal();
    entry.train_accuracy = row[3].AsReal();
    entry.learning_rate = row[4].AsReal();
    out.push_back(entry);
  }
  std::sort(out.begin(), out.end(),
            [](const TrainLogEntry& a, const TrainLogEntry& b) {
              return a.iteration < b.iteration;
            });
  return out;
}

Result<std::map<std::string, std::string>> Repository::GetHyperparams(
    const std::string& name) const {
  MH_ASSIGN_OR_RETURN(const int64_t id, VersionId(name));
  MH_ASSIGN_OR_RETURN(auto rows,
                      catalog_->Scan("hyperparams", [&](const Row& r) {
                        return r[0].AsInt() == id;
                      }));
  std::map<std::string, std::string> out;
  for (const Row& row : rows) {
    out[row[1].AsText()] = row[2].AsText();
  }
  return out;
}

Result<std::string> Repository::GetFile(const std::string& name,
                                        const std::string& file_name) const {
  MH_ASSIGN_OR_RETURN(const int64_t id, VersionId(name));
  MH_ASSIGN_OR_RETURN(auto rows, catalog_->Scan("files", [&](const Row& r) {
                        return r[0].AsInt() == id && r[1].AsText() == file_name;
                      }));
  if (rows.empty()) {
    return Status::NotFound("no file " + file_name + " in " + name);
  }
  return env_->ReadFile(repo_layout::ObjectFile(root_, rows[0][2].AsText()));
}

std::vector<std::pair<std::string, std::string>> Repository::GetLineage()
    const {
  auto rows = catalog_->Scan("lineage");
  std::vector<std::pair<std::string, std::string>> out;
  if (!rows.ok()) return out;
  for (const Row& row : *rows) {
    out.emplace_back(row[0].AsText(), row[1].AsText());
  }
  return out;
}

Result<int64_t> Repository::NumSnapshots(const std::string& name) const {
  MH_ASSIGN_OR_RETURN(const int64_t id, VersionId(name));
  MH_ASSIGN_OR_RETURN(auto rows, catalog_->Scan("snapshots", [&](const Row& r) {
                        return r[0].AsInt() == id;
                      }));
  return static_cast<int64_t>(rows.size());
}

Result<std::vector<NamedParam>> Repository::GetSnapshotParams(
    const std::string& name, int64_t sequence) const {
  MH_ASSIGN_OR_RETURN(const int64_t id, VersionId(name));
  MH_ASSIGN_OR_RETURN(auto rows, catalog_->Scan("snapshots", [&](const Row& r) {
                        return r[0].AsInt() == id;
                      }));
  if (rows.empty()) {
    return Status::NotFound("version has no snapshots: " + name);
  }
  if (sequence < 0) {
    for (const Row& row : rows) {
      sequence = std::max(sequence, row[1].AsInt());
    }
  }
  const Row* found = nullptr;
  for (const Row& row : rows) {
    if (row[1].AsInt() == sequence) found = &row;
  }
  if (found == nullptr) {
    return Status::NotFound("no snapshot " + std::to_string(sequence) +
                            " in " + name);
  }
  TraceSpan span("dlv.checkout");
  span.Annotate("snapshot", SnapshotKey(name, sequence));
  MH_COUNTER("dlv.checkout.count")->Increment();
  if ((*found)[3].AsText() == "staging") {
    MH_COUNTER("dlv.checkout.staging")->Increment();
    MH_ASSIGN_OR_RETURN(std::string bytes,
                        ReadChecked(env_, StagingPath(name, sequence)));
    return ParseParams(Slice(bytes));
  }
  // Archived in PAS: lazily open the archive reader.
  MH_COUNTER("dlv.checkout.archived")->Increment();
  MH_ASSIGN_OR_RETURN(ArchiveReader * archive, OpenArchive());
  return archive->RetrieveSnapshot(SnapshotKey(name, sequence));
}

Result<ArchiveReader*> Repository::OpenArchive() const {
  MH_ASSIGN_OR_RETURN(std::shared_ptr<ArchiveReader> reader, SharedArchive());
  return reader.get();
}

Result<std::shared_ptr<ArchiveReader>> Repository::SharedArchive() const {
  {
    std::lock_guard<std::mutex> lock(archive_->mu);
    if (archive_->reader != nullptr) return archive_->reader;
  }
  return ReloadArchive();
}

std::shared_ptr<ArchiveReader> Repository::CachedArchive() const {
  std::lock_guard<std::mutex> lock(archive_->mu);
  return archive_->reader;
}

Result<std::shared_ptr<ArchiveReader>> Repository::ReloadArchive() const {
  MH_ASSIGN_OR_RETURN(ArchiveReader reader,
                      ArchiveReader::Open(env_, repo_layout::PasDir(root_)));
  auto shared = std::make_shared<ArchiveReader>(std::move(reader));
  std::lock_guard<std::mutex> lock(archive_->mu);
  archive_->reader = shared;
  return shared;
}

Result<std::vector<int>> Repository::Eval(const std::string& name,
                                          const Tensor& input) const {
  MH_ASSIGN_OR_RETURN(NetworkDef def, GetNetwork(name));
  MH_ASSIGN_OR_RETURN(Network net, Network::Create(def));
  MH_ASSIGN_OR_RETURN(std::vector<NamedParam> params, GetSnapshotParams(name));
  MH_RETURN_IF_ERROR(net.SetParameters(params));
  return net.Predict(input);
}

Result<std::vector<Repository::ParamDiffEntry>> Repository::DiffParameters(
    const std::string& a, const std::string& b) const {
  MH_ASSIGN_OR_RETURN(auto params_a, GetSnapshotParams(a));
  MH_ASSIGN_OR_RETURN(auto params_b, GetSnapshotParams(b));
  std::vector<ParamDiffEntry> out;
  for (const auto& pa : params_a) {
    ParamDiffEntry entry;
    entry.name = pa.name;
    const NamedParam* pb = nullptr;
    for (const auto& candidate : params_b) {
      if (candidate.name == pa.name) {
        pb = &candidate;
        break;
      }
    }
    if (pb == nullptr) {
      entry.only_in_a = true;
    } else if (pb->value.rows() != pa.value.rows() ||
               pb->value.cols() != pa.value.cols()) {
      entry.shape_changed = true;
    } else {
      MH_ASSIGN_OR_RETURN(FloatMatrix diff, pa.value.Sub(pb->value));
      entry.l2_distance = diff.L2Norm();
      const double base = pa.value.L2Norm();
      entry.relative_distance = base > 0 ? entry.l2_distance / base : 0.0;
    }
    out.push_back(std::move(entry));
  }
  for (const auto& pb : params_b) {
    bool seen = false;
    for (const auto& pa : params_a) {
      if (pa.name == pb.name) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      ParamDiffEntry entry;
      entry.name = pb.name;
      entry.only_in_b = true;
      out.push_back(std::move(entry));
    }
  }
  return out;
}

Result<Repository::ComparisonResult> Repository::CompareOnData(
    const std::string& a, const std::string& b, const Tensor& input) const {
  ComparisonResult result;
  MH_ASSIGN_OR_RETURN(result.labels_a, Eval(a, input));
  MH_ASSIGN_OR_RETURN(result.labels_b, Eval(b, input));
  int agree = 0;
  for (size_t i = 0; i < result.labels_a.size(); ++i) {
    if (result.labels_a[i] == result.labels_b[i]) ++agree;
  }
  result.agreement = result.labels_a.empty()
                         ? 0.0
                         : static_cast<double>(agree) /
                               static_cast<double>(result.labels_a.size());
  return result;
}

Result<ArchiveBuildReport> Repository::Archive(const ArchiveOptions& options) {
  TraceSpan span("dlv.archive");
  Stopwatch watch;
  MH_COUNTER("dlv.archive.count")->Increment();
  MH_ASSIGN_OR_RETURN(auto versions, List());
  ArchiveBuilder builder(env_, repo_layout::PasDir(root_));
  struct SnapshotRef {
    std::string version;
    int64_t sequence;
  };
  std::vector<SnapshotRef> all;
  std::map<std::string, int64_t> last_sequence;
  for (const auto& info : versions) {
    MH_ASSIGN_OR_RETURN(const int64_t count, NumSnapshots(info.name));
    for (int64_t s = 0; s < count; ++s) {
      MH_ASSIGN_OR_RETURN(auto params, GetSnapshotParams(info.name, s));
      MH_RETURN_IF_ERROR(
          builder.AddSnapshot(SnapshotKey(info.name, s), params));
      all.push_back({info.name, s});
      if (s > 0) {
        MH_RETURN_IF_ERROR(
            builder.AddDeltaCandidate(SnapshotKey(info.name, s - 1),
                                      SnapshotKey(info.name, s)));
      }
    }
    if (count > 0) last_sequence[info.name] = count - 1;
  }
  if (all.empty()) {
    return Status::FailedPrecondition("repository has no snapshots");
  }
  // Cross-version candidates: parent's latest snapshot -> child's first
  // (fine-tuned models start from the parent's weights, Sec. IV-B).
  for (const auto& info : versions) {
    if (info.parent.empty()) continue;
    auto parent_it = last_sequence.find(info.parent);
    auto child_it = last_sequence.find(info.name);
    if (parent_it == last_sequence.end() || child_it == last_sequence.end()) {
      continue;
    }
    MH_RETURN_IF_ERROR(builder.AddDeltaCandidate(
        SnapshotKey(info.parent, parent_it->second),
        SnapshotKey(info.name, 0)));
  }
  // Drop our own cached reader BEFORE the rebuild so its generation pin
  // doesn't force Build to leave the superseded files behind. Readers in
  // other processes / Repository instances keep their own pins and stay
  // safe; their generations are swept by the lifecycle GC later.
  {
    std::lock_guard<std::mutex> lock(archive_->mu);
    archive_->reader.reset();
  }
  MH_ASSIGN_OR_RETURN(ArchiveBuildReport report, builder.Build(options));
  span.Annotate("threads", static_cast<uint64_t>(report.pipeline.threads));
  span.Annotate("raw_bytes", report.pipeline.raw_bytes);
  // The archive publish above is internally atomic (manifest-last). Flip the
  // snapshot locations on a staged catalog copy and publish it with one
  // atomic write before touching the staging files: a crash in between
  // leaves either the old state (archive generation unreferenced — garbage,
  // collected by the next Build) or the new state (staging files garbage,
  // swept up below or reported by fsck).
  Catalog staged = *catalog_;
  MH_RETURN_IF_ERROR(staged
                         .Update(
                             "snapshots",
                             [](const Row& r) {
                               return r[3].AsText() == "staging";
                             },
                             [](Row* r) { (*r)[3] = "pas"; })
                         .status());
  MH_RETURN_IF_ERROR(env_->WriteFile(repo_layout::CatalogPath(root_),
                                     staged.SerializeForDisk()));
  *catalog_ = std::move(staged);
  // Best effort: the archive already holds these snapshots, so leftover
  // staging files are merely unreferenced (fsck reports them).
  for (const auto& ref : all) {
    const std::string path = StagingPath(ref.version, ref.sequence);
    if (env_->FileExists(path)) {
      (void)env_->DeleteFile(path);
    }
  }
  MH_COUNTER("dlv.archive.snapshots")->Add(all.size());
  MH_HISTOGRAM("dlv.archive.us")
      ->Record(static_cast<uint64_t>(watch.ElapsedMillis() * 1000.0));
  span.Annotate("snapshots", static_cast<uint64_t>(all.size()));
  return report;
}

Result<std::string> Repository::Describe(const std::string& name) const {
  MH_ASSIGN_OR_RETURN(ModelVersionInfo info, GetInfo(name));
  MH_ASSIGN_OR_RETURN(NetworkDef network, GetNetwork(name));
  MH_ASSIGN_OR_RETURN(auto hyperparams, GetHyperparams(name));
  MH_ASSIGN_OR_RETURN(auto log, GetLog(name));
  std::ostringstream out;
  out << "model version: " << info.name << " (id " << info.id << ")\n";
  out << "created_at: " << info.created_at << "\n";
  if (!info.parent.empty()) out << "parent: " << info.parent << "\n";
  out << "snapshots: " << info.num_snapshots
      << (info.archived ? " (archived)" : " (staged)") << "\n";
  out << "network: " << network.name() << ", " << network.nodes().size()
      << " nodes, input " << network.in_channels() << "x"
      << network.in_height() << "x" << network.in_width() << "\n";
  auto params = network.ParameterCount();
  if (params.ok()) out << "parameters: " << *params << "\n";
  if (!hyperparams.empty()) {
    out << "hyperparameters:\n";
    for (const auto& [key, value] : hyperparams) {
      out << "  " << key << " = " << value << "\n";
    }
  }
  if (!log.empty()) {
    out << "training log (" << log.size() << " entries), final loss "
        << log.back().loss << ", final accuracy " << log.back().train_accuracy
        << "\n";
  }
  return out.str();
}

Result<std::string> Repository::Diff(const std::string& a,
                                     const std::string& b) const {
  MH_ASSIGN_OR_RETURN(NetworkDef net_a, GetNetwork(a));
  MH_ASSIGN_OR_RETURN(NetworkDef net_b, GetNetwork(b));
  MH_ASSIGN_OR_RETURN(auto hyper_a, GetHyperparams(a));
  MH_ASSIGN_OR_RETURN(auto hyper_b, GetHyperparams(b));
  MH_ASSIGN_OR_RETURN(ModelVersionInfo info_a, GetInfo(a));
  MH_ASSIGN_OR_RETURN(ModelVersionInfo info_b, GetInfo(b));
  std::ostringstream out;
  out << "diff " << a << " .. " << b << "\n";
  // Network node diff by name.
  for (const auto& node : net_a.nodes()) {
    if (!net_b.HasNode(node.name)) {
      out << "- node " << node.name << " (" << LayerKindToString(node.kind)
          << ")\n";
    } else {
      auto other = net_b.GetNode(node.name);
      if (other.ok() && !(*other == node)) {
        out << "~ node " << node.name << ": " << node.AttributesString()
            << " -> " << other->AttributesString() << "\n";
      }
    }
  }
  for (const auto& node : net_b.nodes()) {
    if (!net_a.HasNode(node.name)) {
      out << "+ node " << node.name << " (" << LayerKindToString(node.kind)
          << ")\n";
    }
  }
  // Hyperparameter diff.
  std::set<std::string> keys;
  for (const auto& [key, value] : hyper_a) keys.insert(key);
  for (const auto& [key, value] : hyper_b) keys.insert(key);
  for (const auto& key : keys) {
    const auto it_a = hyper_a.find(key);
    const auto it_b = hyper_b.find(key);
    const std::string va = it_a == hyper_a.end() ? "<unset>" : it_a->second;
    const std::string vb = it_b == hyper_b.end() ? "<unset>" : it_b->second;
    if (va != vb) {
      out << "~ hyperparam " << key << ": " << va << " -> " << vb << "\n";
    }
  }
  out << "accuracy: " << info_a.best_accuracy << " vs " << info_b.best_accuracy
      << "\n";
  return out.str();
}

Status Repository::Flush() { return catalog_->Flush(); }

}  // namespace modelhub
